(* Adversarial channel & fault injection (see the .mli for the model and
   the determinism contract).

   Implementation notes:

   - Channel randomness is hash-indexed, not drawn sequentially: the gain
     of link (v,u) in slot s depends only on (seed, s, v*n+u).  This keeps
     a run bit-identical whatever order (or how often) the engine evaluates
     the perturbation, and costs O(1) with no state allocation per draw
     (Rng.hash_unit / hash_gaussian).

   - Fault schedules (crash–recover) are materialized at construction time
     from the adversary's own stream, then replayed by slot; the only
     mutable state is the replay cursor, advanced once per slot by [tick].

   - Telemetry (when Sinr_obs.Metrics is enabled): chaos.jam_slots,
     chaos.crashes, chaos.recoveries, chaos.forced_aborts. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_obs

let m_jam_slots = Metrics.counter "chaos.jam_slots"
let m_crashes = Metrics.counter "chaos.crashes"
let m_recoveries = Metrics.counter "chaos.recoveries"
let m_forced_aborts = Metrics.counter "chaos.forced_aborts"

type sim = {
  n : int;
  slot : unit -> int;
  crash : int -> unit;
  revive : int -> unit;
  is_crashed : int -> bool;
  busy : int -> bool;
  abort : int -> unit;
}

let sim_of_engine ?(busy = fun _ -> false) ?(abort = fun _ -> ()) engine =
  { n = Engine.n engine;
    slot = (fun () -> Engine.slot engine);
    crash = Engine.crash engine;
    revive = Engine.revive engine;
    is_crashed = Engine.is_crashed engine;
    busy;
    abort }

type t = {
  name : string;
  on_slot : sim -> slot:int -> unit;
  perturb : slot:int -> Sinr.perturb option;
}

let none =
  { name = "none";
    on_slot = (fun _ ~slot:_ -> ());
    perturb = (fun ~slot:_ -> None) }

(* Multiplicative composition of two slot perturbations. *)
let compose_perturb a b =
  { Sinr.noise_factor = (fun u -> a.Sinr.noise_factor u *. b.Sinr.noise_factor u);
    gain =
      (fun ~sender ~receiver ->
        a.Sinr.gain ~sender ~receiver *. b.Sinr.gain ~sender ~receiver) }

let all ts =
  match ts with
  | [] -> none
  | [ t ] -> t
  | ts ->
    { name = String.concat "+" (List.map (fun t -> t.name) ts);
      on_slot = (fun sim ~slot -> List.iter (fun t -> t.on_slot sim ~slot) ts);
      perturb =
        (fun ~slot ->
          List.fold_left
            (fun acc t ->
              match (acc, t.perturb ~slot) with
              | None, p | p, None -> p
              | Some a, Some b -> Some (compose_perturb a b))
            None ts) }

let install t _sim engine = Engine.set_perturb engine t.perturb

let tick t sim = t.on_slot sim ~slot:(sim.slot ())

(* ------------------------------------------------------------------ *)
(* Jamming                                                             *)
(* ------------------------------------------------------------------ *)

let jam ?(period = 64) ?disk ~rng ~duty ~mult points =
  if period <= 0 then invalid_arg "Chaos.jam: period must be positive";
  let rng = Rng.split_name rng ~name:"chaos.jam" in
  let burst = int_of_float (duty *. float_of_int period) in
  let in_disk =
    match disk with
    | None -> fun _ -> true
    | Some (center, radius) ->
      fun u -> Point.dist points.(u) center <= radius
  in
  let jammed slot =
    if duty >= 1. || burst >= period then true
    else if duty <= 0. || burst <= 0 then false
    else begin
      (* Burst of [burst] consecutive slots at a random phase per window:
         bursty rather than striped, deterministic per (seed, window). *)
      let window = slot / period in
      let phase =
        int_of_float (Rng.hash_unit rng window 0 *. float_of_int (period - burst + 1))
      in
      let off = slot mod period in
      off >= phase && off < phase + burst
    end
  in
  { name = Fmt.str "jam(duty=%.2f,x%.0f)" duty mult;
    on_slot = (fun _ ~slot:_ -> ());
    perturb =
      (fun ~slot ->
        if jammed slot then begin
          Metrics.incr m_jam_slots;
          Some
            { Sinr.noise_factor =
                (fun u -> if in_disk u then mult else 1.);
              gain = (fun ~sender:_ ~receiver:_ -> 1.) }
        end
        else None) }

(* ------------------------------------------------------------------ *)
(* Fading                                                              *)
(* ------------------------------------------------------------------ *)

let fading ~rng ~sigma ~n =
  let rng = Rng.split_name rng ~name:"chaos.fading" in
  { name = Fmt.str "fading(sigma=%.2f)" sigma;
    on_slot = (fun _ ~slot:_ -> ());
    perturb =
      (fun ~slot ->
        if sigma <= 0. then None
        else
          Some
            { Sinr.noise_factor = (fun _ -> 1.);
              gain =
                (fun ~sender ~receiver ->
                  exp
                    (sigma
                     *. Rng.hash_gaussian rng slot ((sender * n) + receiver))) }) }

(* ------------------------------------------------------------------ *)
(* Crash / crash–recover schedules                                     *)
(* ------------------------------------------------------------------ *)

type fault_action = Crash_node of int | Revive_node of int

(* Replay a (slot, action) schedule, applying everything due at or before
   the current slot.  The schedule is sorted and consumed in order; the
   cursor is the adversary's only mutable state. *)
let of_schedule name schedule =
  let pending = ref (List.sort compare schedule) in
  { name;
    on_slot =
      (fun sim ~slot ->
        let due, later = List.partition (fun (s, _) -> s <= slot) !pending in
        pending := later;
        List.iter
          (fun (_, action) ->
            match action with
            | Crash_node v ->
              if not (sim.is_crashed v) then begin
                Metrics.incr m_crashes;
                sim.crash v
              end
            | Revive_node v ->
              if sim.is_crashed v then begin
                Metrics.incr m_recoveries;
                sim.revive v
              end)
          due);
    perturb = (fun ~slot:_ -> None) }

let crash_recover ~rng ~n ~frac ~horizon ~downtime ?(protect = []) () =
  let rng = Rng.split_name rng ~name:"chaos.crash" in
  let protected_ = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Chaos.crash_recover: protected node out of range";
      protected_.(v) <- true)
    protect;
  let eligible = ref [] in
  for v = n - 1 downto 0 do
    if not protected_.(v) then eligible := v :: !eligible
  done;
  let eligible = Array.of_list !eligible in
  let count = int_of_float (frac *. float_of_int n) in
  if count > Array.length eligible then
    invalid_arg
      (Fmt.str "Chaos.crash_recover: %d victims exceed the %d unprotected nodes"
         count (Array.length eligible));
  Rng.shuffle rng eligible;
  let schedule = ref [] in
  for i = 0 to count - 1 do
    let v = eligible.(i) in
    let down_at = Rng.int rng (max 1 horizon) in
    schedule := (down_at, Crash_node v) :: !schedule;
    if downtime > 0 then
      schedule := (down_at + downtime, Revive_node v) :: !schedule
  done;
  of_schedule
    (Fmt.str "crash(frac=%.2f,down=%d)" frac downtime)
    !schedule

let crash_plan plan =
  of_schedule "crash-plan" (List.map (fun (s, v) -> (s, Crash_node v)) plan)

(* ------------------------------------------------------------------ *)
(* Abort pressure                                                      *)
(* ------------------------------------------------------------------ *)

let abort_pressure ~rng ~rate =
  let rng = Rng.split_name rng ~name:"chaos.abort" in
  { name = Fmt.str "abort(rate=%.3f)" rate;
    on_slot =
      (fun sim ~slot ->
        if rate > 0. then
          for v = 0 to sim.n - 1 do
            if
              sim.busy v
              && (not (sim.is_crashed v))
              && Rng.hash_unit rng slot v < rate
            then begin
              Metrics.incr m_forced_aborts;
              sim.abort v
            end
          done);
    perturb = (fun ~slot:_ -> None) }

(* ------------------------------------------------------------------ *)
(* Process-level failpoints                                            *)
(* ------------------------------------------------------------------ *)

(* The adversaries above attack the simulated channel; the serve daemon
   (lib/serve) needs the same treatment for the *process* substrate —
   cells that throw, cells that stall past their budget — without bespoke
   test-only experiment registrations.  A failpoint is a named hook
   compiled into production code paths (Registry cells call
   [hit "serve.cell"]); disarmed it costs one atomic load, armed it
   injects a failure or a stall for the next N passes.  Arming is
   process-global and mutex-protected because cells run on pool domains. *)

module Failpoint = struct
  exception Injected of string

  type arming =
    | Always
    | Times of int
    | Delay of float

  let m_injected = Metrics.counter "chaos.failpoint.injected"
  let m_delayed = Metrics.counter "chaos.failpoint.delayed"

  let mutex = Mutex.create ()
  let table : (string, arming) Hashtbl.t = Hashtbl.create 8

  (* Fast path: a single load says "nothing armed anywhere" without
     touching the mutex, so shipping hits in hot cells is free. *)
  let any_armed = Atomic.make false

  let locked f =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

  let arm name arming =
    locked (fun () ->
        (match arming with
         | Times n when n <= 0 -> Hashtbl.remove table name
         | _ -> Hashtbl.replace table name arming);
        Atomic.set any_armed (Hashtbl.length table > 0))

  let disarm name =
    locked (fun () ->
        Hashtbl.remove table name;
        Atomic.set any_armed (Hashtbl.length table > 0))

  let clear () =
    locked (fun () ->
        Hashtbl.reset table;
        Atomic.set any_armed false)

  let armed name = locked (fun () -> Hashtbl.find_opt table name)

  let hit name =
    if Atomic.get any_armed then begin
      let action =
        locked (fun () ->
            match Hashtbl.find_opt table name with
            | None -> `Pass
            | Some Always -> `Raise
            | Some (Times n) ->
              if n <= 1 then Hashtbl.remove table name
              else Hashtbl.replace table name (Times (n - 1));
              Atomic.set any_armed (Hashtbl.length table > 0);
              `Raise
            | Some (Delay s) -> `Delay s)
      in
      match action with
      | `Pass -> ()
      | `Raise ->
        Metrics.incr m_injected;
        raise (Injected name)
      | `Delay s ->
        (* sleep outside the lock: a stalled cell must not stall arming *)
        Metrics.incr m_delayed;
        Unix.sleepf s
    end

  (* "name=always,name=3,name=sleep:0.05" — malformed entries are
     ignored rather than fatal: failpoints are a test/ops knob, and a
     typo must never take the daemon down. *)
  let parse_spec spec =
    List.filter_map
      (fun entry ->
        match String.index_opt entry '=' with
        | None -> None
        | Some i ->
          let name = String.trim (String.sub entry 0 i) in
          let v =
            String.trim
              (String.sub entry (i + 1) (String.length entry - i - 1))
          in
          if name = "" then None
          else if v = "always" then Some (name, Always)
          else if String.length v > 6 && String.sub v 0 6 = "sleep:" then
            match
              float_of_string_opt
                (String.sub v 6 (String.length v - 6))
            with
            | Some s when s >= 0. -> Some (name, Delay s)
            | _ -> None
          else
            match int_of_string_opt v with
            | Some n when n > 0 -> Some (name, Times n)
            | _ -> None)
      (String.split_on_char ',' spec)

  let from_env ?(var = "SINR_FAILPOINTS") () =
    match Sys.getenv_opt var with
    | None -> 0
    | Some spec ->
      let entries = parse_spec spec in
      List.iter (fun (name, arming) -> arm name arming) entries;
      List.length entries
end
