(** Adversarial channel and fault injection for the absMAC stack.

    The guarantees we reproduce (Theorems 5.1, 9.1, 11.1) are proved for a
    clean SINR channel with fixed background noise and crash-free nodes.
    This module supplies the adversaries the surrounding literature studies
    (Ghaffari–Kantor–Lynch–Newport's unreliable links, Newport's crashes):
    per-slot channel perturbations (jamming, multiplicative fading), crash
    and crash–recover schedules, and abort pressure on ongoing broadcasts.
    The chaos experiments ({!Sinr_expt.Exp_chaos}) measure how gracefully
    the stack degrades under them.

    {b Determinism contract.} Every adversary is built from an explicit
    {!Sinr_geom.Rng.t} and draws its per-slot randomness through pure hash
    functions of [(seed, slot, node)] ({!Sinr_geom.Rng.hash_unit}), never
    from a shared mutable stream — so a run is bit-identical for a fixed
    seed whatever the [--jobs] setting, matching the [lib/par] contract. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine

(** The narrow handle an adversary acts through. Wrapping the engine (and
    optionally the MAC layer) behind first-order functions keeps the
    adversary type monomorphic even though ['m Engine.t] is not. *)
type sim = {
  n : int;
  slot : unit -> int;
  crash : int -> unit;
  revive : int -> unit;
  is_crashed : int -> bool;
  busy : int -> bool;  (** MAC-level: node has an ongoing broadcast *)
  abort : int -> unit; (** MAC-level: force-abort the node's broadcast *)
}

val sim_of_engine :
  ?busy:(int -> bool) -> ?abort:(int -> unit) -> 'm Engine.t -> sim
(** Engine-backed handle. [busy]/[abort] default to "never busy" / no-op;
    pass the MAC layer's to let abort-pressure adversaries reach it. *)

(** A composable adversary: [on_slot] performs fault actions (crash,
    revive, forced abort) before the slot runs; [perturb] supplies the
    slot's channel state to {!Engine.set_perturb}. *)
type t = {
  name : string;
  on_slot : sim -> slot:int -> unit;
  perturb : slot:int -> Sinr.perturb option;
}

val none : t
(** The empty adversary: clean channel, no faults. *)

val all : t list -> t
(** Compose: fault actions apply in order; channel perturbations compose
    multiplicatively (noise factors and link gains multiply). *)

val install : t -> sim -> 'm Engine.t -> unit
(** Hook the adversary's channel perturbation into the engine. Fault
    actions still need {!tick} before every slot. *)

val tick : t -> sim -> unit
(** Apply the adversary's fault actions for the current slot. Call once
    per slot, before stepping the engine/MAC. *)

(** {1 Concrete adversaries} *)

val jam :
  ?period:int -> ?disk:(Point.t * float) -> rng:Rng.t -> duty:float ->
  mult:float -> Point.t array -> t
(** Bursty jamming: in every window of [period] slots (default 64) a burst
    of [duty]·[period] consecutive slots is jammed, at a per-window phase
    drawn from the adversary's stream. During a burst the ambient noise N
    seen by every receiver — or only receivers inside [disk] (center,
    radius) — is multiplied by [mult]. [duty] ≤ 0 disables; ≥ 1 jams every
    slot. *)

val fading :
  rng:Rng.t -> sigma:float -> n:int -> t
(** Per-slot log-normal multiplicative fading: link (v → u) in slot s has
    its received power multiplied by exp(σ·Z) with Z a standard normal
    hash-drawn from (seed, s, v·n+u) — median gain 1, independent across
    slots and links. σ flaps exactly the gray-zone links
    G₁₋ε \ G₁₋₂ε whose SINR margin is small. [sigma] ≤ 0 disables. *)

val crash_recover :
  rng:Rng.t -> n:int -> frac:float -> horizon:int -> downtime:int ->
  ?protect:int list -> unit -> t
(** Crash ⌊[frac]·n⌋ distinct victims outside [protect] (exact shuffle
    sampling, like {!Fault.random_crashes}) at uniform slots in
    [0, horizon); each recovers [downtime] slots later ([downtime] ≤ 0:
    never — the crash-only plan of old). Raises [Invalid_argument] when the
    victim count exceeds the unprotected population. *)

val crash_plan : Fault.plan -> t
(** Lift an existing crash-only {!Fault.plan} into an adversary. *)

val abort_pressure : rng:Rng.t -> rate:float -> t
(** Message-abort pressure: each slot, each busy node's broadcast is
    force-aborted with probability [rate] (hash-drawn per (slot, node)).
    Models an environment that keeps cancelling in-flight broadcasts; the
    {!Sinr_proto.Mac_driver.with_retry} wrapper measures recovery from it. *)

(** {1 Process-level failpoints}

    The serve daemon treats its own process as an unreliable substrate,
    in the same spirit as the channel adversaries above.  A failpoint is
    a named hook compiled into production paths (e.g. the daemon's
    registry cells call [hit "serve.cell"]); disarmed it costs one atomic
    load, armed it injects an exception or a stall.  Tests and operators
    arm them directly or through the [SINR_FAILPOINTS] environment
    variable. *)
module Failpoint : sig
  exception Injected of string
  (** Raised by {!hit} at an armed failpoint. *)

  type arming =
    | Always        (** every hit raises — a poison cell *)
    | Times of int  (** the next [n] hits raise, then auto-disarm — a
                        transient fault *)
    | Delay of float  (** every hit sleeps [s] seconds (never raises) — a
                          stalled cell for timeout tests *)

  val arm : string -> arming -> unit
  val disarm : string -> unit
  val clear : unit -> unit
  val armed : string -> arming option

  val hit : string -> unit
  (** Call at the instrumented site.  No-op unless [name] is armed
      (checked with one atomic load when nothing is armed anywhere). *)

  val parse_spec : string -> (string * arming) list
  (** Parse ["name=always,name=3,name=sleep:0.05"]; malformed entries are
      dropped, never fatal. *)

  val from_env : ?var:string -> unit -> int
  (** Arm every entry of [$SINR_FAILPOINTS] (or [var]); returns how many
      were armed. *)
end
