(* Flight recorder: the dump side of the span ring.

   Span keeps the bounded ring of finished spans + events; this module
   owns when and where that ring hits disk.  Dump triggers (see the
   call sites):

   - Spec_check reports a violation     -> Exp_chaos.run_scenario
   - a node crashes mid-broadcast       -> Combined_mac.step
   - the caller asks                    -> sinr_sim --trace-out, tests

   [dump_once] deduplicates per reason so a crashy run produces one dump
   per failure class instead of one per crash; [clear] re-arms them.

   A dump is JSONL: a header line, then still-open spans (what was in
   flight when the failure hit), then the ring oldest-first.  Files are
   written via Sink.write_file, i.e. atomically. *)

(* The recorder shares Span's enable flag: one switch arms the whole
   tracing layer, so "is tracing on" is a single atomic load everywhere. *)
let set_enabled = Span.set_enabled
let is_enabled = Span.is_enabled
let with_enabled = Span.with_enabled

let mutex = Mutex.create ()
let dump_dir = ref "."
let dumped : (string, unit) Hashtbl.t = Hashtbl.create 8

let configure ?capacity ?dir () =
  (match capacity with Some c -> Span.set_capacity c | None -> ());
  match dir with
  | Some d ->
    Mutex.lock mutex;
    dump_dir := d;
    Mutex.unlock mutex
  | None -> ()

let event ~slot body = Span.record_event ~slot body

let clear () =
  Span.clear ();
  Mutex.lock mutex;
  Hashtbl.reset dumped;
  Mutex.unlock mutex

(* File-name-safe version of a dump reason. *)
let sanitize reason =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    reason

(* Does a span / loose event belong to job [id]?  Spans carry the ambient
   ["job_id"] attribute (Span.with_context in the daemon runner); events
   match on a top-level ["job_id"] field. *)
let span_has_job id (sp : Span.t) =
  match List.assoc_opt "job_id" sp.Span.attrs with
  | Some j -> Json.to_int j = Some id
  | None -> false

let entry_has_job id = function
  | Span.Span_entry sp -> span_has_job id sp
  | Span.Event_entry { body; _ } ->
    (match Option.bind (Json.member "job_id" body) Json.to_int with
     | Some j -> j = id
     | None -> false)

(* Keep the last [n] elements of [l]. *)
let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let to_jsonl ?last ?job ~reason () =
  let open_spans = Span.open_spans () in
  let entries = Span.entries () in
  let total_entries = List.length entries in
  let open_spans, entries =
    match job with
    | None -> (open_spans, entries)
    | Some id ->
      (List.filter (span_has_job id) open_spans,
       List.filter (entry_has_job id) entries)
  in
  let entries = match last with None -> entries | Some n -> last_n (max 0 n) entries in
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string_json j);
    Buffer.add_char buf '\n'
  in
  let served = List.length entries in
  line
    (Json.Obj
       ([ ("flight", Json.Str reason);
          ("open", Json.int (List.length open_spans));
          ("entries", Json.int served);
          ("dropped", Json.int (Span.dropped_count ())) ]
        @ (if served < total_entries then
             [ ("total_entries", Json.int total_entries) ]
           else [])
        @ (match job with
           | Some id -> [ ("job_id", Json.int id) ]
           | None -> [])));
  List.iter (fun sp -> line (Span.span_to_json sp)) open_spans;
  List.iter (fun e -> line (Span.entry_to_json e)) entries;
  Buffer.contents buf

let dump ?path ~reason () =
  let path =
    match path with
    | Some p -> p
    | None ->
      Mutex.lock mutex;
      let d = !dump_dir in
      Mutex.unlock mutex;
      Filename.concat d ("flight-" ^ sanitize reason ^ ".jsonl")
  in
  Sink.write_file path (to_jsonl ~reason ());
  path

let dump_once ?path ~reason () =
  let fresh =
    Mutex.lock mutex;
    let fresh = not (Hashtbl.mem dumped reason) in
    if fresh then Hashtbl.replace dumped reason ();
    Mutex.unlock mutex;
    fresh
  in
  if fresh then Some (dump ?path ~reason ()) else None
