(* Process-level resource telemetry for the scale benchmarks.

   The million-node acceptance gate is a peak-RSS budget, and the kernel
   already tracks the high-water mark: /proc/self/status VmHWM.  Reading
   it is portable across the Linux hosts CI runs on and free of libc
   bindings; on platforms without procfs the readers return None and the
   callers skip the gauge rather than guessing. *)

let status_field name =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let prefix = name ^ ":" in
        let plen = String.length prefix in
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > plen && String.sub line 0 plen = prefix
            then Some (String.sub line plen (String.length line - plen))
            else scan ()
        in
        scan ())

(* "   123456 kB" -> 123456 *)
let parse_kb s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> int_of_string_opt s
  | Some i -> int_of_string_opt (String.sub s 0 i)

let peak_rss_kb () = Option.bind (status_field "VmHWM") parse_kb

let peak_rss_mb () =
  Option.map (fun kb -> float_of_int kb /. 1024.) (peak_rss_kb ())

let rss_kb () = Option.bind (status_field "VmRSS") parse_kb

(* ------------------------------------------------------------------ *)
(* Gauge ticker                                                        *)
(* ------------------------------------------------------------------ *)

(* A background domain that republishes process stats as gauges while a
   server is up, so a /metrics scrape of a long daemon run shows live
   memory instead of requiring a scale-bench-style one-shot sample.  The
   loop sleeps in 100 ms steps so [stop_ticker] returns promptly. *)

type ticker = {
  tk_stop : bool Atomic.t;
  tk_domain : unit Domain.t;
}

let default_tick_period = 2.0

let start_ticker ?(period_s = default_tick_period) () =
  let stop = Atomic.make false in
  let g_rss = Metrics.gauge "proc.rss_kb" in
  let g_hwm = Metrics.gauge "proc.hwm_kb" in
  let g_heap = Metrics.gauge "gc.heap_words" in
  let sample () =
    (match rss_kb () with
     | Some kb -> Metrics.set g_rss (float_of_int kb)
     | None -> ());
    (match peak_rss_kb () with
     | Some kb -> Metrics.set g_hwm (float_of_int kb)
     | None -> ());
    Metrics.set g_heap (float_of_int (Gc.quick_stat ()).Gc.heap_words)
  in
  let domain =
    Domain.spawn (fun () ->
      sample ();
      let rec loop elapsed =
        if not (Atomic.get stop) then begin
          Unix.sleepf 0.1;
          let elapsed = elapsed +. 0.1 in
          if elapsed >= period_s then begin
            sample ();
            loop 0.
          end
          else loop elapsed
        end
      in
      loop 0.)
  in
  { tk_stop = stop; tk_domain = domain }

(* Idempotent: only the call that flips the flag joins the domain. *)
let stop_ticker tk =
  if not (Atomic.exchange tk.tk_stop true) then Domain.join tk.tk_domain
