(* Process-level resource telemetry for the scale benchmarks.

   The million-node acceptance gate is a peak-RSS budget, and the kernel
   already tracks the high-water mark: /proc/self/status VmHWM.  Reading
   it is portable across the Linux hosts CI runs on and free of libc
   bindings; on platforms without procfs the readers return None and the
   callers skip the gauge rather than guessing. *)

let status_field name =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let prefix = name ^ ":" in
        let plen = String.length prefix in
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > plen && String.sub line 0 plen = prefix
            then Some (String.sub line plen (String.length line - plen))
            else scan ()
        in
        scan ())

(* "   123456 kB" -> 123456 *)
let parse_kb s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> int_of_string_opt s
  | Some i -> int_of_string_opt (String.sub s 0 i)

let peak_rss_kb () = Option.bind (status_field "VmHWM") parse_kb

let peak_rss_mb () =
  Option.map (fun kb -> float_of_int kb /. 1024.) (peak_rss_kb ())

let rss_kb () = Option.bind (status_field "VmRSS") parse_kb
