(* Process-global metrics registry.

   Instrumented modules create their handles once at module-init time
   ([counter]/[gauge]/[histogram] are get-or-create), so the hot path never
   touches the registry: an update is a single branch on the global enable
   flag plus one atomic (or mutex-protected, for histograms) write.  With
   the switch off the whole subsystem costs one load-and-branch per call
   site, which is what lets the instrumentation live inside [Engine.step]
   and the per-slot MAC machines without a measurable tax (acceptance: < 2%
   on the sinr_resolve kernel).

   Domain safety: instrumented kernels run inside [Sinr_par.Pool] workers,
   so every update must tolerate concurrent writers from several domains.
   Counters and gauges live in [Atomic.t] cells (an update is one RMW / one
   store, never torn); each histogram carries its own mutex because an
   observation touches five fields that must move together; and the
   registry table itself is guarded by a global mutex (registration is
   module-init-time cold path, snapshot/reset are tooling paths).

   Histograms are log2-bucketed: bucket 0 holds values in [0, 1), bucket i
   (i >= 1) holds [2^(i-1), 2^i).  Quantiles are estimated by linear
   interpolation inside the bucket that crosses the requested rank, clamped
   to the exact observed min/max.  That gives factor-2 worst-case error on
   arbitrary data and exact answers for the small-integer distributions
   (per-slot delivery counts, MIS winner counts) we mostly observe. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let is_enabled () = Atomic.get on

(* Run [f] with the registry enabled, restoring the previous state. *)
let with_enabled f =
  let prev = Atomic.get on in
  Atomic.set on true;
  Fun.protect ~finally:(fun () -> Atomic.set on prev) f

type counter = { c_name : string; count : int Atomic.t }

type gauge = {
  g_name : string;
  value : float Atomic.t;
  g_set : bool Atomic.t;
}

let nbuckets = 64

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array; (* log2 buckets, length [nbuckets] *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name wrap make unwrap =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match unwrap m with
     | Some h -> h
     | None ->
       invalid_arg
         (Printf.sprintf "Metrics: %s already registered as a %s" name
            (kind_name m)))
  | None ->
    let h = make () in
    Hashtbl.replace registry name (wrap h);
    h

let counter name =
  register name
    (fun c -> Counter c)
    (fun () -> { c_name = name; count = Atomic.make 0 })
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge name =
  register name
    (fun g -> Gauge g)
    (fun () ->
      { g_name = name; value = Atomic.make 0.; g_set = Atomic.make false })
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let histogram name =
  register name
    (fun h -> Histogram h)
    (fun () ->
      { h_name = name;
        h_mutex = Mutex.create ();
        h_count = 0;
        h_sum = 0.;
        h_min = infinity;
        h_max = neg_infinity;
        buckets = Array.make nbuckets 0 })
    (function Histogram h -> Some h | Counter _ | Gauge _ -> None)

(* ------------------------------------------------------------------ *)
(* Hot-path updates                                                    *)
(* ------------------------------------------------------------------ *)

let incr c = if Atomic.get on then Atomic.incr c.count

let add c k =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.count k)

let set g v =
  if Atomic.get on then begin
    Atomic.set g.value v;
    Atomic.set g.g_set true
  end

(* Index of the log2 bucket holding [v] (clamped to the top bucket). *)
let bucket_of v =
  if v < 1. then 0
  else
    let i = 1 + int_of_float (Float.log2 v) in
    if i >= nbuckets then nbuckets - 1 else i

(* Lower / upper bound of bucket [i]: [0,1) for 0, [2^(i-1), 2^i) above. *)
let bucket_lo i = if i = 0 then 0. else Float.pow 2. (float_of_int (i - 1))
let bucket_hi i = Float.pow 2. (float_of_int i)

let observe h v =
  if Atomic.get on then begin
    let v = if Float.is_nan v then 0. else Float.max 0. v in
    (* Nothing below can raise: plain float/int field updates. *)
    Mutex.lock h.h_mutex;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    Mutex.unlock h.h_mutex
  end

let observe_int h k = observe h (float_of_int k)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let counter_value c = Atomic.get c.count
let gauge_value g = Atomic.get g.value
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* Estimate the [q]-quantile (q in [0,1]) of a log2-bucketed count array by
   walking the cumulative counts and interpolating linearly inside the
   crossing bucket, then clamping to the observed [lo]/[hi].  Standalone so
   tools that build their own bucket arrays (trace-report's latency
   percentiles) share the estimator and its tests. *)
let estimate_quantile ~counts ~total ~lo ~hi q =
  if total = 0 then nan
  else begin
    let n = Array.length counts in
    let rank = q *. float_of_int total in
    let rec walk i seen =
      if i >= n then hi
      else
        let seen' = seen +. float_of_int counts.(i) in
        if seen' >= rank && counts.(i) > 0 then begin
          let blo = bucket_lo i and bhi = bucket_hi i in
          let frac = (rank -. seen) /. float_of_int counts.(i) in
          blo +. (Float.max 0. (Float.min 1. frac) *. (bhi -. blo))
        end
        else walk (i + 1) seen'
    in
    let est = walk 0 0. in
    Float.max lo (Float.min hi est)
  end

(* Histogram wrapper: the walk happens under the histogram's mutex so a
   concurrent [observe] cannot tear the count/bucket pair mid-scan. *)
let quantile h q =
  Mutex.lock h.h_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.h_mutex) @@ fun () ->
  estimate_quantile ~counts:h.buckets ~total:h.h_count ~lo:h.h_min
    ~hi:h.h_max q

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

type snapshot = (string * value) list

let summarize h =
  { count = h.h_count;
    sum = h.h_sum;
    min = (if h.h_count = 0 then 0. else h.h_min);
    max = (if h.h_count = 0 then 0. else h.h_max);
    p50 = quantile h 0.5;
    p90 = quantile h 0.9;
    p99 = quantile h 0.99 }

(* Metrics that never fired are omitted: a snapshot describes what the run
   actually did, and sinks need not special-case empty histograms. *)
let live = function
  | Counter c -> Atomic.get c.count > 0
  | Gauge g -> Atomic.get g.g_set
  | Histogram h -> h.h_count > 0

let snapshot () =
  let metrics =
    Mutex.lock registry_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  in
  List.fold_left
    (fun acc (name, m) ->
      if live m then
        let v =
          match m with
          | Counter c -> Counter_v (Atomic.get c.count)
          | Gauge g -> Gauge_v (Atomic.get g.value)
          | Histogram h -> Histogram_v (summarize h)
        in
        (name, v) :: acc
      else acc)
    [] metrics
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g ->
        Atomic.set g.value 0.;
        Atomic.set g.g_set false
      | Histogram h ->
        Mutex.lock h.h_mutex;
        h.h_count <- 0;
        h.h_sum <- 0.;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.buckets 0 nbuckets 0;
        Mutex.unlock h.h_mutex)
    registry

(* Test/tooling escape hatch: value of a named counter in this process. *)
let counter_peek name =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some (Atomic.get c.count)
  | Some (Gauge _ | Histogram _) | None -> None
