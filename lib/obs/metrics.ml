(* Process-global metrics registry.

   Instrumented modules create their handles once at module-init time
   ([counter]/[gauge]/[histogram] are get-or-create), so the hot path never
   touches the registry: an update is a single branch on the global enable
   flag plus one atomic RMW (counters/gauges) or a handful of plain writes
   into a per-domain shard (histograms).  With the switch off the whole
   subsystem costs one load-and-branch per call site, which is what lets
   the instrumentation live inside [Engine.step] and the per-slot MAC
   machines without a measurable tax (acceptance: < 2% on the sinr_resolve
   kernel).

   Domain safety: instrumented kernels run inside [Sinr_par.Pool] workers,
   so every update must tolerate concurrent writers from several domains.
   Counters and gauges live in [Atomic.t] cells (an update is one RMW / one
   store, never torn).  Histograms are *sharded*: each domain that observes
   into a histogram owns a private shard (bucket array + count + sum/min/
   max, reached through [Domain.DLS] like the per-domain scratch in
   lib/phys), so the hot path is mutex-free — no lock, no RMW, no false
   sharing between domains.  Shards are merged lock-free at read time
   (snapshot/quantile): the merge walks the shard list in creation order,
   so the merged result — including the float sum — is deterministic for a
   given set of quiescent shards.  A snapshot taken *while* other domains
   observe is a consistent-enough live view (each shard is read once; a
   concurrent observation is either fully missed or fully seen per field),
   which is exactly what a /metrics scrape of a running sweep needs; exact
   totals are guaranteed once writers have quiesced (e.g. after
   [Domain.join], which publishes the writers' plain stores).

   [reset] bumps a global shard epoch instead of zeroing in place: stale
   shards become invisible to the merge immediately, and each writing
   domain lazily re-shards on its next observation.  The registry table
   itself is guarded by a global mutex (registration is module-init-time
   cold path, snapshot/reset are tooling paths).

   Histograms are log2-bucketed: bucket 0 holds values in [0, 1), bucket i
   (i >= 1) holds [2^(i-1), 2^i).  Quantiles are estimated by linear
   interpolation inside the bucket that crosses the requested rank, clamped
   to the exact observed min/max.  That gives factor-2 worst-case error on
   arbitrary data and exact answers for the small-integer distributions
   (per-slot delivery counts, MIS winner counts) we mostly observe. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let is_enabled () = Atomic.get on

(* Run [f] with the registry enabled, restoring the previous state. *)
let with_enabled f =
  let prev = Atomic.get on in
  Atomic.set on true;
  Fun.protect ~finally:(fun () -> Atomic.set on prev) f

type counter = { c_name : string; count : int Atomic.t }

type gauge = {
  g_name : string;
  value : float Atomic.t;
  g_set : bool Atomic.t;
}

let nbuckets = 64

(* One domain's private slice of a histogram.  [sh_stats] is a floatarray
   (sum at 0, min at 1, max at 2) so the float updates are unboxed stores —
   a mutable float field in this mixed record would re-box on every
   observation.  Only the owning domain ever writes a shard; readers merge
   without locks. *)
type hshard = {
  sh_epoch : int; (* shard generation; stale shards are invisible *)
  sh_seq : int; (* creation order, fixes the merge (float-sum) order *)
  mutable sh_count : int;
  sh_buckets : int array; (* log2 buckets, length [nbuckets] *)
  sh_stats : floatarray; (* 0: sum, 1: min, 2: max *)
}

type histogram = {
  h_name : string;
  h_key : hshard ref Domain.DLS.key;
      (* per-domain cache of this domain's current shard *)
  h_shards : hshard list Atomic.t;
      (* every shard of the current epoch (plus, transiently, stale ones
         filtered out at merge time) *)
}

(* Bumped by [reset]; a shard is live iff its epoch matches. *)
let shard_epoch = Atomic.make 0
let shard_seq = Atomic.make 0

(* DLS initial value: an empty shard with an impossible epoch, so the
   first observation (and the first after a reset) takes the slow
   re-shard path. *)
let dead_shard =
  { sh_epoch = -1;
    sh_seq = -1;
    sh_count = 0;
    sh_buckets = [||];
    sh_stats = Float.Array.create 0 }

(* Cold path: make this domain a fresh shard for [h], publish it for the
   mergers (CAS push), and cache it in the domain-local cell.  Raced by
   [reset]: a shard pushed with a stale epoch is simply never merged and
   gets replaced on the next observation. *)
let fresh_shard h cell =
  let stats = Float.Array.create 3 in
  Float.Array.set stats 0 0.;
  Float.Array.set stats 1 infinity;
  Float.Array.set stats 2 neg_infinity;
  let s =
    { sh_epoch = Atomic.get shard_epoch;
      sh_seq = Atomic.fetch_and_add shard_seq 1;
      sh_count = 0;
      sh_buckets = Array.make nbuckets 0;
      sh_stats = stats }
  in
  let rec push () =
    let cur = Atomic.get h.h_shards in
    if not (Atomic.compare_and_set h.h_shards cur (s :: cur)) then push ()
  in
  push ();
  cell := s;
  s

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name wrap make unwrap =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match unwrap m with
     | Some h -> h
     | None ->
       invalid_arg
         (Printf.sprintf "Metrics: %s already registered as a %s" name
            (kind_name m)))
  | None ->
    let h = make () in
    Hashtbl.replace registry name (wrap h);
    h

let counter name =
  register name
    (fun c -> Counter c)
    (fun () -> { c_name = name; count = Atomic.make 0 })
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge name =
  register name
    (fun g -> Gauge g)
    (fun () ->
      { g_name = name; value = Atomic.make 0.; g_set = Atomic.make false })
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let histogram name =
  register name
    (fun h -> Histogram h)
    (fun () ->
      { h_name = name;
        h_key = Domain.DLS.new_key (fun () -> ref dead_shard);
        h_shards = Atomic.make [] })
    (function Histogram h -> Some h | Counter _ | Gauge _ -> None)

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

(* A label set is canonicalized once, at handle-creation time, into a
   [{k="v",...}] suffix appended to the registry name (keys sorted,
   values escaped Prometheus-style).  Labeled handles are therefore
   interned through the same get-or-create registry as unlabeled ones,
   and the hot-path update functions below never see labels at all —
   an [observe] on a labeled histogram is byte-for-byte the same code
   as on an unlabeled one.  Sinks recover the structure with
   {!split_name}. *)

type labels = string (* "" (none) or a canonical "{k=\"v\",...}" suffix *)

let no_labels = ""

let valid_label_key k =
  String.length k > 0
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

(* Prometheus label-value escaping: backslash, double-quote, newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels pairs =
  match pairs with
  | [] -> ""
  | _ ->
    let pairs =
      List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
    in
    let rec check = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Metrics.labels: duplicate key %S" a);
        check rest
      | _ -> ()
    in
    check pairs;
    List.iter
      (fun (k, _) ->
        if not (valid_label_key k) then
          invalid_arg (Printf.sprintf "Metrics.labels: invalid key %S" k))
      pairs;
    let buf = Buffer.create 32 in
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      pairs;
    Buffer.add_char buf '}';
    Buffer.contents buf

let labeled_name name ls =
  if String.contains name '{' then
    invalid_arg
      (Printf.sprintf "Metrics: base metric name %S may not contain '{'" name);
  name ^ ls

let counter_with name ls = counter (labeled_name name ls)
let gauge_with name ls = gauge (labeled_name name ls)
let histogram_with name ls = histogram (labeled_name name ls)

(* Inverse of the encoding above: recover (family, pairs) from a registry
   name.  Malformed suffixes (which only arise if someone registers a raw
   name containing '{' by hand) degrade to the whole string as the family
   with no labels, so sinks never raise on a snapshot. *)
let split_name name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i ->
    let n = String.length name in
    let fam = String.sub name 0 i in
    let buf = Buffer.create 16 in
    let exception Malformed in
    (try
       if name.[n - 1] <> '}' then raise Malformed;
       let pos = ref (i + 1) in
       let pairs = ref [] in
       (* empty label set "{}" never produced by [labels]; treat as none *)
       if !pos = n - 1 then (fam, [])
       else begin
         let rec pair () =
           (* key *)
           let kstart = !pos in
           while !pos < n && name.[!pos] <> '=' do incr pos done;
           if !pos >= n - 1 then raise Malformed;
           let k = String.sub name kstart (!pos - kstart) in
           incr pos;
           if !pos >= n - 1 || name.[!pos] <> '"' then raise Malformed;
           incr pos;
           (* value, with escapes *)
           Buffer.clear buf;
           let rec value () =
             if !pos >= n - 1 then raise Malformed;
             match name.[!pos] with
             | '"' -> incr pos
             | '\\' ->
               if !pos + 1 >= n - 1 then raise Malformed;
               (match name.[!pos + 1] with
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | 'n' -> Buffer.add_char buf '\n'
                | _ -> raise Malformed);
               pos := !pos + 2;
               value ()
             | c ->
               Buffer.add_char buf c;
               incr pos;
               value ()
           in
           value ();
           pairs := (k, Buffer.contents buf) :: !pairs;
           if !pos = n - 1 then ()
           else if name.[!pos] = ',' then begin
             incr pos;
             pair ()
           end
           else raise Malformed
         in
         pair ();
         (fam, List.rev !pairs)
       end
     with Malformed | Invalid_argument _ -> (name, []))

(* ------------------------------------------------------------------ *)
(* Hot-path updates                                                    *)
(* ------------------------------------------------------------------ *)

let incr c = if Atomic.get on then Atomic.incr c.count

let add c k =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.count k)

let set g v =
  if Atomic.get on then begin
    Atomic.set g.value v;
    Atomic.set g.g_set true
  end

(* Index of the log2 bucket holding [v] (clamped to the top bucket).  For
   v >= 1, floor(log2 v) is exactly the IEEE-754 biased exponent minus the
   bias — a couple of integer ops on the hot path instead of a libm log2
   call (and immune to the round-below-integer hazard log2 has at exact
   powers of two).  Infinities land in the top bucket via the clamp. *)
let bucket_of v =
  if v < 1. then 0
  else
    let e =
      (Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) 52)
       land 0x7ff)
      - 1023
    in
    if e + 1 >= nbuckets then nbuckets - 1 else e + 1

(* Lower / upper bound of bucket [i]: [0,1) for 0, [2^(i-1), 2^i) above. *)
let bucket_lo i = if i = 0 then 0. else Float.pow 2. (float_of_int (i - 1))
let bucket_hi i = Float.pow 2. (float_of_int i)

(* Mutex-free: a DLS load, an epoch check, then plain stores into this
   domain's own shard. *)
let observe h v =
  if Atomic.get on then begin
    let v = if Float.is_nan v then 0. else Float.max 0. v in
    let cell = Domain.DLS.get h.h_key in
    let s = !cell in
    let s =
      if s.sh_epoch = Atomic.get shard_epoch then s else fresh_shard h cell
    in
    s.sh_count <- s.sh_count + 1;
    let st = s.sh_stats in
    Float.Array.unsafe_set st 0 (Float.Array.unsafe_get st 0 +. v);
    if v < Float.Array.unsafe_get st 1 then Float.Array.unsafe_set st 1 v;
    if v > Float.Array.unsafe_get st 2 then Float.Array.unsafe_set st 2 v;
    let i = bucket_of v in
    Array.unsafe_set s.sh_buckets i (Array.unsafe_get s.sh_buckets i + 1)
  end

let observe_int h k = observe h (float_of_int k)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type merged = {
  m_count : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_buckets : int array;
}

(* Lock-free merge of a histogram's live shards.  Shards are walked in
   creation order (sh_seq), so the float accumulation — and therefore the
   merged result — is deterministic for a given shard population. *)
let merge h =
  let e = Atomic.get shard_epoch in
  let shards =
    Atomic.get h.h_shards
    |> List.filter (fun s -> s.sh_epoch = e)
    |> List.sort (fun a b -> compare a.sh_seq b.sh_seq)
  in
  let buckets = Array.make nbuckets 0 in
  let count = ref 0 in
  let sum = ref 0. in
  let mn = ref infinity in
  let mx = ref neg_infinity in
  List.iter
    (fun s ->
      count := !count + s.sh_count;
      sum := !sum +. Float.Array.get s.sh_stats 0;
      let smin = Float.Array.get s.sh_stats 1 in
      let smax = Float.Array.get s.sh_stats 2 in
      if smin < !mn then mn := smin;
      if smax > !mx then mx := smax;
      for i = 0 to nbuckets - 1 do
        buckets.(i) <- buckets.(i) + s.sh_buckets.(i)
      done)
    shards;
  { m_count = !count; m_sum = !sum; m_min = !mn; m_max = !mx;
    m_buckets = buckets }

let counter_value c = Atomic.get c.count
let gauge_value g = Atomic.get g.value
let histogram_count h = (merge h).m_count
let histogram_sum h = (merge h).m_sum
let histogram_buckets h = (merge h).m_buckets

(* Estimate the [q]-quantile (q in [0,1]) of a log2-bucketed count array by
   walking the cumulative counts and interpolating linearly inside the
   crossing bucket, then clamping to the observed [lo]/[hi].  Standalone so
   tools that build their own bucket arrays (trace-report's latency
   percentiles) share the estimator and its tests. *)
let estimate_quantile ~counts ~total ~lo ~hi q =
  if total = 0 then nan
  else begin
    let n = Array.length counts in
    let rank = q *. float_of_int total in
    let rec walk i seen =
      if i >= n then hi
      else
        let seen' = seen +. float_of_int counts.(i) in
        if seen' >= rank && counts.(i) > 0 then begin
          let blo = bucket_lo i and bhi = bucket_hi i in
          let frac = (rank -. seen) /. float_of_int counts.(i) in
          blo +. (Float.max 0. (Float.min 1. frac) *. (bhi -. blo))
        end
        else walk (i + 1) seen'
    in
    let est = walk 0 0. in
    Float.max lo (Float.min hi est)
  end

let quantile h q =
  let m = merge h in
  estimate_quantile ~counts:m.m_buckets ~total:m.m_count ~lo:m.m_min
    ~hi:m.m_max q

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

type snapshot = (string * value) list

let summarize_merged m =
  let q p =
    estimate_quantile ~counts:m.m_buckets ~total:m.m_count ~lo:m.m_min
      ~hi:m.m_max p
  in
  { count = m.m_count;
    sum = m.m_sum;
    min = (if m.m_count = 0 then 0. else m.m_min);
    max = (if m.m_count = 0 then 0. else m.m_max);
    p50 = q 0.5;
    p90 = q 0.9;
    p99 = q 0.99 }

let summarize h = summarize_merged (merge h)

let snapshot () =
  let metrics =
    Mutex.lock registry_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  in
  (* Metrics that never fired are omitted: a snapshot describes what the
     run actually did, and sinks need not special-case empty histograms.
     Each histogram is merged exactly once. *)
  List.fold_left
    (fun acc (name, m) ->
      match m with
      | Counter c ->
        let v = Atomic.get c.count in
        if v > 0 then (name, Counter_v v) :: acc else acc
      | Gauge g ->
        if Atomic.get g.g_set then (name, Gauge_v (Atomic.get g.value)) :: acc
        else acc
      | Histogram h ->
        let m = merge h in
        if m.m_count > 0 then (name, Histogram_v (summarize_merged m)) :: acc
        else acc)
    [] metrics
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  (* Invalidate every histogram shard in one step: bump the epoch first so
     writers re-shard, then drop the stale shard lists so they can be
     collected. *)
  Atomic.incr shard_epoch;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g ->
        Atomic.set g.value 0.;
        Atomic.set g.g_set false
      | Histogram h -> Atomic.set h.h_shards [])
    registry

(* Test isolation: zero every metric, invalidate all per-domain shards
   (including those owned by domains spawned in earlier test cases), and
   leave the registry disabled.  Handles stay valid — module-init handles
   keep working — so a test that enables the registry starts from a clean,
   fully deterministic state regardless of what ran before it. *)
let reset_for_tests () =
  set_enabled false;
  reset ()

(* Test/tooling escape hatch: value of a named counter in this process. *)
let counter_peek name =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some (Atomic.get c.count)
  | Some (Gauge _ | Histogram _) | None -> None
