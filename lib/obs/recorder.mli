(** Flight recorder: bounded in-memory history of spans + events, dumped to
    JSONL on failure or on request.

    Storage is {!Span}'s ring; this module owns the dump policy. Dumps are
    triggered by Spec_check violations (Exp_chaos), crash-mid-broadcast
    (Combined_mac), or the caller ([sinr_sim --trace-out]). Shares Span's
    enable flag — {!set_enabled}[ true] arms both spans and events. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool
val with_enabled : (unit -> 'a) -> 'a

val configure : ?capacity:int -> ?dir:string -> unit -> unit
(** [capacity]: ring size in entries (resets ring contents; default
    {!Span.default_capacity}). [dir]: directory for default dump paths
    (default ["."]). *)

val event : slot:int -> Json.t -> unit
(** Record a loose event (= {!Span.record_event}); no-op when disabled. *)

val clear : unit -> unit
(** Drop ring + open spans and re-arm {!dump_once} reasons. *)

val to_jsonl : ?last:int -> ?job:int -> reason:string -> unit -> string
(** The dump text: a header line
    [{"flight":reason,"open":..,"entries":..,"dropped":..}], then
    still-open spans (oldest start first), then ring entries oldest-first,
    one JSON object per line. [?last] keeps only the newest [n] ring
    entries (the header's ["entries"] counts what is served and a
    ["total_entries"] field reports the pre-cap total when truncated).
    [?job] keeps only spans whose ["job_id"] attribute — stamped by
    {!Span.with_context} in the daemon — and events whose ["job_id"]
    field match. *)

val dump : ?path:string -> reason:string -> unit -> string
(** Write {!to_jsonl} atomically and return the path written. Default path
    is [<dir>/flight-<sanitized reason>.jsonl]. Works regardless of the
    enable flag (dumping whatever history exists). *)

val dump_once : ?path:string -> reason:string -> unit -> string option
(** Like {!dump} but at most once per [reason] until {!clear}: [None] when
    this reason already dumped. Failure hooks use this so a crashy run
    yields one dump per failure class. *)
