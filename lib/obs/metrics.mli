(** Process-global metrics registry: named counters, gauges and log2-bucketed
    histograms with O(1) hot-path updates.

    All updates are gated on a single global flag (default {e off}); with the
    flag off every instrumentation call site costs one load-and-branch, so
    the registry can live inside per-slot simulation kernels. Handles are
    get-or-create by name, intended to be created once at module-init time.

    The registry is domain-safe and the hot path is mutex-free: counters and
    gauges are atomic, and each histogram is {e sharded} per domain — every
    observing domain writes a private [Domain.DLS]-held bucket array, so an
    observation is a handful of plain stores with no lock and no cross-domain
    cache traffic. Readers ({!snapshot}, {!quantile}, {!summarize}) merge the
    shards lock-free in shard-creation order, so the merged result is
    deterministic for a quiescent histogram. A snapshot taken while other
    domains are still observing (a live [/metrics] scrape) is a consistent
    per-shard view that may trail in-flight observations; exact totals are
    guaranteed once the writers have been joined. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Run with the registry enabled, restoring the previous state after. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create. Raises [Invalid_argument] if [name] is already registered
    as a different kind (same for {!gauge} and {!histogram}). *)

val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Labels}

    A cheap label dimension: a label set is canonicalized once (keys
    sorted, values escaped) into a [name{k="v",...}] registry entry, so
    labeled handles are interned through the same get-or-create table as
    unlabeled ones and the hot-path updates ({!incr}, {!set}, {!observe})
    are byte-for-byte identical — no lock, no extra indirection. Create
    the labeled handle once per label set (e.g. per job) and hold on to
    it. Sinks recover the structure with {!split_name}. *)

type labels = private string
(** The canonical [{k="v",...}] suffix ([""] for {!no_labels}) — readable
    (it coerces to [string]) but only constructible through {!labels}. *)

val no_labels : labels

val labels : (string * string) list -> labels
(** Canonicalize a label set: keys are sorted; values may be arbitrary
    strings. Raises [Invalid_argument] on duplicate keys or keys that are
    not [\[a-zA-Z_\]\[a-zA-Z0-9_\]*]. *)

val counter_with : string -> labels -> counter
(** Get or create the child of [name] carrying the given label set.
    Raises [Invalid_argument] if [name] contains ['{'] (reserved for the
    label encoding). Same-kind collision rules as {!counter}. *)

val gauge_with : string -> labels -> gauge
val histogram_with : string -> labels -> histogram

val split_name : string -> string * (string * string) list
(** [split_name n] recovers [(family, pairs)] from a registry/snapshot
    name; [(n, \[\])] when [n] is unlabeled. Total: malformed suffixes
    degrade to no labels rather than raising. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Negative and NaN observations are clamped to 0. Mutex-free: writes go to
    the calling domain's private shard. *)

val observe_int : histogram -> int -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> int array
(** Fresh copy of the merged per-bucket counts (length {!nbuckets}), summed
    across all live shards. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: estimated from the log2 buckets by
    linear interpolation, clamped to the observed min/max; [nan] when the
    histogram is empty. Exact for distributions within one bucket, at most
    a factor-2 off otherwise. *)

(** {1 The bucket scheme, exposed}

    Tools that aggregate their own samples (trace-report's latency
    percentiles) reuse the registry's log2 bucketing and estimator instead
    of reinventing them. *)

val nbuckets : int
(** Buckets per histogram: bucket 0 holds [\[0,1)], bucket [i >= 1] holds
    [\[2^(i-1), 2^i)], the top bucket absorbs everything above. *)

val bucket_of : float -> int
(** Index of the bucket holding a (non-negative) value. *)

val estimate_quantile :
  counts:int array -> total:int -> lo:float -> hi:float -> float -> float
(** [estimate_quantile ~counts ~total ~lo ~hi q]: the [q]-quantile of a
    log2-bucketed count array with [total] samples whose observed extremes
    are [lo]/[hi]; linear interpolation inside the crossing bucket, result
    clamped to [\[lo, hi\]], [nan] when [total = 0]. Monotone in [q]. *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

val summarize : histogram -> hist_summary
(** Merged summary of a single histogram (count/sum/min/max and estimated
    p50/p90/p99); zeros and [nan] quantiles when empty. *)

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot
(** Current values of every metric that has been touched since the last
    {!reset} (never-updated metrics are omitted). *)

val reset : unit -> unit
(** Zero all values and invalidate every histogram shard; registrations (and
    handles) stay valid. *)

val reset_for_tests : unit -> unit
(** Test-case isolation: {!reset} plus [set_enabled false], discarding shard
    state accumulated by domains spawned in earlier cases. Handles created at
    module-init time keep working, so tests no longer depend on registration
    order or on what ran before them. *)

val counter_peek : string -> int option
(** Current value of a named counter, if registered ([None] otherwise). *)
