(* Embedded HTTP endpoint: a minimal, dependency-free HTTP/1.1 server on a
   background domain.  PR 6 used it as a read-only scrape surface
   (/metrics, /healthz, /spans); the serve daemon now mounts a job-control
   handler on the same listener, so the server routes GET, POST and DELETE
   and reads request bodies.

   Scope stays deliberately small — one connection at a time,
   Connection: close on every response — because the clients are curl, a
   Prometheus scraper and the sweep daemon's own smoke tests, all of which
   retry.  Serving stays safe while the simulation runs on other domains:
   the built-in routes render lock-free structures (sharded histograms,
   the span ring), and a mounted handler is responsible for its own
   locking (the serve daemon's job queue takes a non-hot-path mutex).

   Bounds: the request line + headers must fit [max_header] bytes (else
   431) and a declared body must fit [max_body] (else 413).  Methods other
   than GET/POST/DELETE get a clean 405 with an Allow header instead of a
   dropped socket; every error response carries Content-Length and
   Connection: close so non-smoke clients can parse it.

   Shutdown: [stop] shuts the listening socket down, which makes the
   blocked [Unix.accept] in the server domain fail; the accept loop treats
   any listen-socket error as the exit signal and the domain is joined.
   Binds the loopback interface only — this is a local control port, not a
   public API. *)

type request = {
  meth : string;
  path : string;
  query : string;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;
}

type handler = request -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  handler : handler option;
  read_timeout : float;
  stopping : bool Atomic.t;
  mutable worker : unit Domain.t option;
}

let max_header = 8192
let max_body = 1 lsl 20 (* 1 MiB: job specs are small; anything bigger is noise *)
let default_read_timeout = 5.0

(* ------------------------------------------------------------------ *)
(* Request handling (pure: request text in, response text out)         *)
(* ------------------------------------------------------------------ *)

let response ?(content_type = "application/json") ?(headers = []) status body =
  { status; content_type; body; headers }

let status_text = function
  | 200 -> "200 OK"
  | 202 -> "202 Accepted"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 408 -> "408 Request Timeout"
  | 409 -> "409 Conflict"
  | 413 -> "413 Content Too Large"
  | 429 -> "429 Too Many Requests"
  | 431 -> "431 Request Header Fields Too Large"
  | 500 -> "500 Internal Server Error"
  | 503 -> "503 Service Unavailable"
  | other -> string_of_int other ^ " Status"

let render (r : response) =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: \
     close\r\n\r\n%s"
    (status_text r.status) r.content_type (String.length r.body) extra r.body

let respond ~status ~content_type body =
  render (response ~content_type status body)

(* The read-only observability routes, served whether or not a handler is
   mounted. *)
let body_for path =
  match path with
  | "/metrics" ->
    Some
      ( "text/plain; version=0.0.4",
        Sink.snapshot_to_prometheus (Metrics.snapshot ()) )
  | "/healthz" -> Some ("text/plain", "ok\n")
  | "/spans" ->
    Some ("application/jsonl", Recorder.to_jsonl ~reason:"http-scrape" ())
  | _ -> None

let text_response status body =
  render (response ~content_type:"text/plain" status body)

(* Header-block terminator: "\r\n\r\n" or a bare "\n\n" from hand-typed
   clients.  Returns the offset just past the terminator. *)
let header_end s =
  let n = String.length s in
  let rec scan i =
    if i + 1 >= n then None
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
    else if
      s.[i] = '\n' && i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'
    then Some (i + 3)
    else scan (i + 1)
  in
  scan 0

(* Case-insensitive header lookup over the raw header block; headers that
   don't parse as "name: value" are skipped rather than fatal. *)
let header_value block name =
  let lower = String.lowercase_ascii in
  let name = lower name in
  let lines = String.split_on_char '\n' block in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None -> (
        match String.index_opt line ':' with
        | None -> None
        | Some i ->
          let k = lower (String.trim (String.sub line 0 i)) in
          if k = name then
            Some
              (String.trim
                 (String.sub line (i + 1) (String.length line - i - 1)))
          else None))
    None lines

let split_target target =
  match String.index_opt target '?' with
  | Some i ->
    ( String.sub target 0 i,
      String.sub target (i + 1) (String.length target - i - 1) )
  | None -> (target, "")

let known_methods = [ "GET"; "POST"; "DELETE" ]

let other_methods =
  [ "HEAD"; "PUT"; "PATCH"; "OPTIONS"; "TRACE"; "CONNECT" ]

(* Route one parsed request.  Handler first (it may shadow nothing — the
   built-in routes answer GETs the handler declined); without a handler the
   server is the PR 6 read-only surface and non-GET methods are refused. *)
let route ?handler (req : request) =
  let fallback () =
    if req.meth = "GET" then
      match body_for req.path with
      | Some (content_type, body) -> respond ~status:200 ~content_type body
      | None -> text_response 404 "not found\n"
    else if handler <> None then text_response 404 "not found\n"
    else
      render
        (response ~content_type:"text/plain"
           ~headers:[ ("Allow", "GET") ]
           405 "only GET is served\n")
  in
  match handler with
  | None -> fallback ()
  | Some h -> (
    match h req with
    | Some r -> render r
    | None -> fallback ()
    | exception _ -> text_response 500 "internal error\n")

let handle_headers ?handler raw body_off =
  let head = String.sub raw 0 body_off in
  let line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> (
      match String.index_opt head '\n' with
      | Some i -> String.sub head 0 i
      | None -> head)
  in
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] when List.mem meth known_methods ->
    let path, query = split_target target in
    let declared =
      match header_value head "content-length" with
      | Some v -> int_of_string_opt v
      | None -> None
    in
    (match declared with
     | Some len when len > max_body ->
       text_response 413 "request body too large\n"
     | Some len when len < 0 -> text_response 400 "bad request\n"
     | _ ->
       let avail = String.length raw - body_off in
       let body =
         match declared with
         | None -> String.sub raw body_off avail
         | Some len -> String.sub raw body_off (min len avail)
       in
       route ?handler { meth; path; query; body })
  | meth :: _ when List.mem meth other_methods ->
    render
      (response ~content_type:"text/plain"
         ~headers:[ ("Allow", String.concat ", " known_methods) ]
         405 "method not allowed\n")
  | _ -> text_response 400 "bad request\n"

(* [handle raw] is the full response text for a raw request string (request
   line + headers + body).  Applies the same bounds as the socket path so
   the hardening is unit-testable. *)
let handle ?handler raw =
  match header_end raw with
  | None ->
    if String.length raw >= max_header then
      text_response 431 "request header block too large\n"
    else
      (* No terminator in a complete request: treat everything as the
         header block (hand-typed one-liners land here). *)
      handle_headers ?handler raw (String.length raw)
  | Some body_off ->
    if body_off > max_header then
      text_response 431 "request header block too large\n"
    else handle_headers ?handler raw body_off

let response_for request = handle request

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type read_outcome =
  | Complete of string
  | Header_overflow
  | Body_overflow
  | Timed_out
  | Empty

exception Read_deadline

(* One bounded read against a wall-clock deadline: the remaining budget
   becomes the socket receive timeout before every read(2), so a client
   trickling one byte per second (slowloris) cannot reset the clock and
   pin the single-threaded accept loop — the whole request must arrive
   inside the budget. *)
let read_within ~deadline fd chunk =
  let remaining = deadline -. Unix.gettimeofday () in
  if remaining <= 0. then raise Read_deadline;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO remaining;
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | n -> n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    raise Read_deadline

(* Read the header block (bounded by [max_header]), then the declared body
   (bounded by [max_body]), the whole request bounded by [deadline]. *)
let read_request ~deadline fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec read_head () =
    match header_end (Buffer.contents buf) with
    | Some off -> Some off
    | None ->
      if Buffer.length buf >= max_header then None
      else
        let n = read_within ~deadline fd chunk in
        if n = 0 then Some (Buffer.length buf) (* EOF: headers-only request *)
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          read_head ()
        end
  in
  match read_head () with
  | None -> Header_overflow
  | Some body_off ->
    if Buffer.length buf = 0 then Empty
    else begin
      let declared =
        match header_value (Buffer.contents buf) "content-length" with
        | Some v -> Option.value ~default:0 (int_of_string_opt v)
        | None -> 0
      in
      if declared > max_body then Body_overflow
      else begin
        let rec read_body () =
          if Buffer.length buf - body_off >= declared then ()
          else
            let n = read_within ~deadline fd chunk in
            if n = 0 then ()
            else begin
              Buffer.add_subbytes buf chunk 0 n;
              read_body ()
            end
        in
        read_body ();
        Complete (Buffer.contents buf)
      end
    end

let read_request ~deadline fd =
  try read_request ~deadline fd with Read_deadline -> Timed_out

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

let handle_client ?handler ~read_timeout fd =
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  let deadline = Unix.gettimeofday () +. read_timeout in
  match read_request ~deadline fd with
  | Empty -> ()
  | Timed_out ->
    (* slowloris guard: a socket that dribbles (or never completes) its
       request inside the idle budget gets a clean 408, not a pinned
       accept loop *)
    write_all fd (text_response 408 "request read timeout\n")
  | Header_overflow ->
    write_all fd (text_response 431 "request header block too large\n")
  | Body_overflow -> write_all fd (text_response 413 "request body too large\n")
  | Complete raw -> write_all fd (handle ?handler raw)

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | fd, _addr ->
      (try handle_client ?handler:t.handler ~read_timeout:t.read_timeout fd
       with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error _ ->
      (* The listening socket was closed (stop) or is unusable; either way
         the server's life is over. *)
      ()
  in
  loop ()

let serve ?(addr = "127.0.0.1") ?handler ?(read_timeout = default_read_timeout)
    ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    (* With port 0 the kernel picked one; report the real port either way. *)
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    { sock; port; handler; read_timeout; stopping = Atomic.make false;
      worker = None }
  in
  t.worker <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* shutdown(2) — not close — wakes a thread blocked in accept(2) on
       Linux; close only marks the fd and leaves the accept sleeping.  The
       fd itself is closed after the join, so its number cannot be reused
       under the still-running server domain. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.worker with
    | Some d ->
      t.worker <- None;
      Domain.join d
    | None -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
