(* Embedded scrape endpoint: a minimal, dependency-free HTTP/1.1 server on
   a background domain, so a long chaos/reliability sweep can be watched
   live instead of post-mortem.

   Scope is deliberately tiny — GET only, one connection at a time,
   Connection: close — because the only clients are curl and a Prometheus
   scraper, both of which retry.  Serving stays safe while the simulation
   runs on other domains: /metrics renders [Metrics.snapshot] (a lock-free
   shard merge), /spans renders the flight-recorder ring, and neither takes
   a lock the hot path could hold.

   Shutdown: [stop] shuts the listening socket down, which makes the
   blocked [Unix.accept] in the server domain fail; the accept loop treats
   any listen-socket error as the exit signal and the domain is joined.
   Binds the loopback interface only — this is a local observability port,
   not a public API. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  mutable worker : unit Domain.t option;
}

(* ------------------------------------------------------------------ *)
(* Request handling (pure: request text in, response text out)         *)
(* ------------------------------------------------------------------ *)

let body_for path =
  match path with
  | "/metrics" ->
    Some
      ( "text/plain; version=0.0.4",
        Sink.snapshot_to_prometheus (Metrics.snapshot ()) )
  | "/healthz" -> Some ("text/plain", "ok\n")
  | "/spans" ->
    Some ("application/jsonl", Recorder.to_jsonl ~reason:"http-scrape" ())
  | _ -> None

let respond ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* [request] is everything up to the header terminator; only the request
   line matters to us. *)
let response_for request =
  let line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> (
      match String.index_opt request '\n' with
      | Some i -> String.sub request 0 i
      | None -> request)
  in
  match String.split_on_char ' ' line with
  | [ "GET"; path; _version ] -> (
    (* Strip any query string: /metrics?x=y scrapes the same as /metrics. *)
    let path =
      match String.index_opt path '?' with
      | Some i -> String.sub path 0 i
      | None -> path
    in
    match body_for path with
    | Some (content_type, body) -> respond ~status:"200 OK" ~content_type body
    | None ->
      respond ~status:"404 Not Found" ~content_type:"text/plain"
        "not found\n")
  | (("HEAD" | "POST" | "PUT" | "DELETE" | "PATCH" | "OPTIONS") :: _) ->
    respond ~status:"405 Method Not Allowed" ~content_type:"text/plain"
      "only GET is served\n"
  | _ ->
    respond ~status:"400 Bad Request" ~content_type:"text/plain"
      "bad request\n"

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let max_request = 8192

(* Read until the blank line ending the header block, EOF, or the size
   cap.  A per-socket receive timeout (set by the caller) bounds how long a
   stalled client can hold the single-threaded accept loop. *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf >= max_request then Buffer.contents buf
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let has_terminator =
          (* "\r\n\r\n" or a bare "\n\n" from hand-typed clients *)
          let rec scan i =
            if i + 1 >= String.length s then false
            else if s.[i] = '\n' && (s.[i + 1] = '\n'
                                     || (i + 2 < String.length s
                                         && s.[i + 1] = '\r'
                                         && s.[i + 2] = '\n'))
            then true
            else scan (i + 1)
          in
          scan 0
        in
        if has_terminator then s else loop ()
      end
  in
  loop ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

let handle_client fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  let request = read_request fd in
  if String.length request > 0 then write_all fd (response_for request)

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | fd, _addr ->
      (try handle_client fd with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error _ ->
      (* The listening socket was closed (stop) or is unusable; either way
         the server's life is over. *)
      ()
  in
  loop ()

let serve ?(addr = "127.0.0.1") ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    (* With port 0 the kernel picked one; report the real port either way. *)
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t = { sock; port; stopping = Atomic.make false; worker = None } in
  t.worker <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* shutdown(2) — not close — wakes a thread blocked in accept(2) on
       Linux; close only marks the fd and leaves the accept sleeping.  The
       fd itself is closed after the join, so its number cannot be reused
       under the still-running server domain. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.worker with
    | Some d ->
      t.worker <- None;
      Domain.join d
    | None -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
