(* Embedded HTTP endpoint: a minimal, dependency-free HTTP/1.1 server on a
   background domain.  PR 6 used it as a read-only scrape surface
   (/metrics, /healthz, /spans); the serve daemon now mounts a job-control
   handler on the same listener, so the server routes GET, POST and DELETE
   and reads request bodies.

   Scope stays deliberately small — one connection at a time,
   Connection: close on every response — because the clients are curl, a
   Prometheus scraper and the sweep daemon's own smoke tests, all of which
   retry.  Serving stays safe while the simulation runs on other domains:
   the built-in routes render lock-free structures (sharded histograms,
   the span ring), and a mounted handler is responsible for its own
   locking (the serve daemon's job queue takes a non-hot-path mutex).

   Bounds: the request line + headers must fit [max_header] bytes (else
   431) and a declared body must fit [max_body] (else 413).  Methods other
   than GET/POST/DELETE get a clean 405 with an Allow header instead of a
   dropped socket; every error response carries Content-Length and
   Connection: close so non-smoke clients can parse it.

   Shutdown: [stop] shuts the listening socket down, which makes the
   blocked [Unix.accept] in the server domain fail; the accept loop treats
   any listen-socket error as the exit signal and the domain is joined.
   Binds the loopback interface only — this is a local control port, not a
   public API. *)

type request = {
  meth : string;
  path : string;
  query : string;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;
}

type handler = request -> response option

(* A streaming response: headers are sent immediately, then [s_write]
   drives the body through chunked transfer-encoding for as long as it
   likes (SSE event streams).  [push] returns false once the client is
   gone or the server is stopping — the writer must then return.  Each
   accepted stream gets its own domain so the single-threaded request
   loop stays free for scrapes and job control. *)
type stream = {
  s_status : int;
  s_content_type : string;
  s_headers : (string * string) list;
  s_write : push:(string -> bool) -> should_stop:(unit -> bool) -> unit;
}

type stream_handler = request -> stream option

(* A live streaming connection: [done] flips when its domain is about to
   exit, letting the accept path prune-join finished streams without
   blocking on live ones. *)
type stream_slot = {
  sl_done : bool Atomic.t;
  sl_domain : unit Domain.t;
}

type t = {
  sock : Unix.file_descr;
  port : int;
  handler : handler option;
  stream_handler : stream_handler option;
  read_timeout : float;
  stopping : bool Atomic.t;
  mutable worker : unit Domain.t option;
  streams_mutex : Mutex.t;
  mutable streams : stream_slot list;
  ticker : Procstat.ticker;
}

let max_header = 8192
let max_body = 1 lsl 20 (* 1 MiB: job specs are small; anything bigger is noise *)
let default_read_timeout = 5.0

let max_streams = 16
(* concurrent streaming clients; one domain each, 503 beyond *)

let default_spans_last = 2048
(* /spans response cap: a full 32k-entry ring is megabytes per scrape *)

(* ------------------------------------------------------------------ *)
(* Request handling (pure: request text in, response text out)         *)
(* ------------------------------------------------------------------ *)

let response ?(content_type = "application/json") ?(headers = []) status body =
  { status; content_type; body; headers }

let status_text = function
  | 200 -> "200 OK"
  | 202 -> "202 Accepted"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 408 -> "408 Request Timeout"
  | 409 -> "409 Conflict"
  | 413 -> "413 Content Too Large"
  | 429 -> "429 Too Many Requests"
  | 431 -> "431 Request Header Fields Too Large"
  | 500 -> "500 Internal Server Error"
  | 503 -> "503 Service Unavailable"
  | other -> string_of_int other ^ " Status"

let render (r : response) =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: \
     close\r\n\r\n%s"
    (status_text r.status) r.content_type (String.length r.body) extra r.body

let respond ~status ~content_type body =
  render (response ~content_type status body)

(* Decode "a=1&b=2" into an assoc list; valueless keys map to "". *)
let query_params q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
           ( String.sub kv 0 i,
             String.sub kv (i + 1) (String.length kv - i - 1) )
         | None -> (kv, ""))

let query_int q name =
  Option.bind (List.assoc_opt name (query_params q)) int_of_string_opt

(* Process start, for /healthz uptime (module init runs at load time). *)
let started_at = Unix.gettimeofday ()

let healthz_body () =
  let now = Unix.gettimeofday () in
  Json.to_string_json
    (Json.Obj
       [ ("status", Json.Str "ok");
         ("version", Json.Str Build_info.version);
         ("started_at", Json.Num started_at);
         ("uptime_s", Json.Num (now -. started_at)) ])
  ^ "\n"

(* The read-only observability routes, served whether or not a handler is
   mounted. *)
let body_for ?(query = "") path =
  match path with
  | "/metrics" ->
    Some
      ( "text/plain; version=0.0.4",
        Sink.snapshot_to_prometheus (Metrics.snapshot ()) )
  | "/healthz" -> Some ("application/json", healthz_body ())
  | "/spans" ->
    let last =
      match query_int query "last" with
      | Some n when n >= 0 -> n
      | Some _ | None -> default_spans_last
    in
    let job = query_int query "job" in
    Some
      ( "application/jsonl",
        Recorder.to_jsonl ~last ?job ~reason:"http-scrape" () )
  | _ -> None

let text_response status body =
  render (response ~content_type:"text/plain" status body)

(* Header-block terminator: "\r\n\r\n" or a bare "\n\n" from hand-typed
   clients.  Returns the offset just past the terminator. *)
let header_end s =
  let n = String.length s in
  let rec scan i =
    if i + 1 >= n then None
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
    else if
      s.[i] = '\n' && i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'
    then Some (i + 3)
    else scan (i + 1)
  in
  scan 0

(* Case-insensitive header lookup over the raw header block; headers that
   don't parse as "name: value" are skipped rather than fatal. *)
let header_value block name =
  let lower = String.lowercase_ascii in
  let name = lower name in
  let lines = String.split_on_char '\n' block in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None -> (
        match String.index_opt line ':' with
        | None -> None
        | Some i ->
          let k = lower (String.trim (String.sub line 0 i)) in
          if k = name then
            Some
              (String.trim
                 (String.sub line (i + 1) (String.length line - i - 1)))
          else None))
    None lines

let split_target target =
  match String.index_opt target '?' with
  | Some i ->
    ( String.sub target 0 i,
      String.sub target (i + 1) (String.length target - i - 1) )
  | None -> (target, "")

let known_methods = [ "GET"; "POST"; "DELETE" ]

let other_methods =
  [ "HEAD"; "PUT"; "PATCH"; "OPTIONS"; "TRACE"; "CONNECT" ]

(* Route one parsed request.  Handler first (it may shadow nothing — the
   built-in routes answer GETs the handler declined); without a handler the
   server is the PR 6 read-only surface and non-GET methods are refused. *)
let route ?handler (req : request) =
  let fallback () =
    if req.meth = "GET" then
      match body_for ~query:req.query req.path with
      | Some (content_type, body) -> respond ~status:200 ~content_type body
      | None -> text_response 404 "not found\n"
    else if handler <> None then text_response 404 "not found\n"
    else
      render
        (response ~content_type:"text/plain"
           ~headers:[ ("Allow", "GET") ]
           405 "only GET is served\n")
  in
  match handler with
  | None -> fallback ()
  | Some h -> (
    match h req with
    | Some r -> render r
    | None -> fallback ()
    | exception _ -> text_response 500 "internal error\n")

(* Outcome of parsing a raw request: either a structured request to
   route, or the error response text to write as-is.  Split from routing
   so the socket path can consult the stream handler on the parsed
   request before falling back to [route]. *)
type parsed = P_req of request | P_error of string

let parse_headers raw body_off =
  let head = String.sub raw 0 body_off in
  let line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> (
      match String.index_opt head '\n' with
      | Some i -> String.sub head 0 i
      | None -> head)
  in
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] when List.mem meth known_methods ->
    let path, query = split_target target in
    let declared =
      match header_value head "content-length" with
      | Some v -> int_of_string_opt v
      | None -> None
    in
    (match declared with
     | Some len when len > max_body ->
       P_error (text_response 413 "request body too large\n")
     | Some len when len < 0 -> P_error (text_response 400 "bad request\n")
     | _ ->
       let avail = String.length raw - body_off in
       let body =
         match declared with
         | None -> String.sub raw body_off avail
         | Some len -> String.sub raw body_off (min len avail)
       in
       P_req { meth; path; query; body })
  | meth :: _ when List.mem meth other_methods ->
    P_error
      (render
         (response ~content_type:"text/plain"
            ~headers:[ ("Allow", String.concat ", " known_methods) ]
            405 "method not allowed\n"))
  | _ -> P_error (text_response 400 "bad request\n")

let parse raw =
  match header_end raw with
  | None ->
    if String.length raw >= max_header then
      P_error (text_response 431 "request header block too large\n")
    else
      (* No terminator in a complete request: treat everything as the
         header block (hand-typed one-liners land here). *)
      parse_headers raw (String.length raw)
  | Some body_off ->
    if body_off > max_header then
      P_error (text_response 431 "request header block too large\n")
    else parse_headers raw body_off

(* [handle raw] is the full response text for a raw request string (request
   line + headers + body).  Applies the same bounds as the socket path so
   the hardening is unit-testable. *)
let handle ?handler raw =
  match parse raw with
  | P_error resp -> resp
  | P_req req -> route ?handler req

let response_for request = handle request

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type read_outcome =
  | Complete of string
  | Header_overflow
  | Body_overflow
  | Timed_out
  | Empty

exception Read_deadline

(* One bounded read against a wall-clock deadline: the remaining budget
   becomes the socket receive timeout before every read(2), so a client
   trickling one byte per second (slowloris) cannot reset the clock and
   pin the single-threaded accept loop — the whole request must arrive
   inside the budget. *)
let read_within ~deadline fd chunk =
  let remaining = deadline -. Unix.gettimeofday () in
  if remaining <= 0. then raise Read_deadline;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO remaining;
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | n -> n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    raise Read_deadline

(* Read the header block (bounded by [max_header]), then the declared body
   (bounded by [max_body]), the whole request bounded by [deadline]. *)
let read_request ~deadline fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec read_head () =
    match header_end (Buffer.contents buf) with
    | Some off -> Some off
    | None ->
      if Buffer.length buf >= max_header then None
      else
        let n = read_within ~deadline fd chunk in
        if n = 0 then Some (Buffer.length buf) (* EOF: headers-only request *)
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          read_head ()
        end
  in
  match read_head () with
  | None -> Header_overflow
  | Some body_off ->
    if Buffer.length buf = 0 then Empty
    else begin
      let declared =
        match header_value (Buffer.contents buf) "content-length" with
        | Some v -> Option.value ~default:0 (int_of_string_opt v)
        | None -> 0
      in
      if declared > max_body then Body_overflow
      else begin
        let rec read_body () =
          if Buffer.length buf - body_off >= declared then ()
          else
            let n = read_within ~deadline fd chunk in
            if n = 0 then ()
            else begin
              Buffer.add_subbytes buf chunk 0 n;
              read_body ()
            end
        in
        read_body ();
        Complete (Buffer.contents buf)
      end
    end

let read_request ~deadline fd =
  try read_request ~deadline fd with Read_deadline -> Timed_out

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

(* One chunk of a chunked transfer-encoded body. *)
let write_chunk fd s =
  if String.length s > 0 then
    write_all fd (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

(* Body of a streaming connection's domain: send the status line and
   headers, hand [push]/[should_stop] to the writer, then terminate the
   chunked body and close.  A client that stops reading blocks the write
   for at most the SO_SNDTIMEO budget (set at accept), after which the
   failed write turns [push] false and the writer winds down — a stalled
   watcher can never wedge anything but its own stream. *)
let run_stream t fd (st : stream) =
  let ok = ref true in
  let guarded f = try f () with _ -> ok := false in
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) st.s_headers)
  in
  guarded (fun () ->
    write_all fd
      (Printf.sprintf
         "HTTP/1.1 %s\r\nContent-Type: %s\r\nTransfer-Encoding: \
          chunked\r\nCache-Control: no-cache\r\n%sConnection: close\r\n\r\n"
         (status_text st.s_status) st.s_content_type extra));
  let push s =
    if !ok && not (Atomic.get t.stopping) then begin
      guarded (fun () -> write_chunk fd s);
      !ok
    end
    else false
  in
  let should_stop () = (not !ok) || Atomic.get t.stopping in
  (try st.s_write ~push ~should_stop with _ -> ());
  if !ok && not (Atomic.get t.stopping) then
    guarded (fun () -> write_all fd "0\r\n\r\n")

(* Join streams whose domains have announced completion; caller holds
   [streams_mutex].  Joining a finished domain returns immediately, so
   this never blocks the accept path on a live client. *)
let prune_streams_locked t =
  let live, finished =
    List.partition (fun sl -> not (Atomic.get sl.sl_done)) t.streams
  in
  List.iter (fun sl -> Domain.join sl.sl_domain) finished;
  t.streams <- live

let spawn_stream t fd st =
  Mutex.lock t.streams_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.streams_mutex) @@ fun () ->
  prune_streams_locked t;
  if List.length t.streams >= max_streams then false
  else begin
    let done_flag = Atomic.make false in
    let domain =
      Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Atomic.set done_flag true)
          (fun () -> run_stream t fd st))
    in
    t.streams <- { sl_done = done_flag; sl_domain = domain } :: t.streams;
    true
  end

(* Returns [`Close] when the accept loop still owns the fd, [`Handed_off]
   when a stream domain took it over. *)
let handle_client t fd =
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  let deadline = Unix.gettimeofday () +. t.read_timeout in
  match read_request ~deadline fd with
  | Empty -> `Close
  | Timed_out ->
    (* slowloris guard: a socket that dribbles (or never completes) its
       request inside the idle budget gets a clean 408, not a pinned
       accept loop *)
    write_all fd (text_response 408 "request read timeout\n");
    `Close
  | Header_overflow ->
    write_all fd (text_response 431 "request header block too large\n");
    `Close
  | Body_overflow ->
    write_all fd (text_response 413 "request body too large\n");
    `Close
  | Complete raw -> (
    match parse raw with
    | P_error resp ->
      write_all fd resp;
      `Close
    | P_req req -> (
      let stream =
        match t.stream_handler with
        | Some sh when req.meth = "GET" -> ( try sh req with _ -> None)
        | _ -> None
      in
      match stream with
      | Some st ->
        if spawn_stream t fd st then `Handed_off
        else begin
          write_all fd (text_response 503 "too many streaming clients\n");
          `Close
        end
      | None ->
        write_all fd (route ?handler:t.handler req);
        `Close))

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | fd, _addr ->
      let outcome = try handle_client t fd with _ -> `Close in
      (match outcome with
       | `Close -> ( try Unix.close fd with Unix.Unix_error _ -> ())
       | `Handed_off -> ());
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error _ ->
      (* The listening socket was closed (stop) or is unusable; either way
         the server's life is over. *)
      ()
  in
  loop ()

let serve ?(addr = "127.0.0.1") ?handler ?stream_handler
    ?(read_timeout = default_read_timeout) ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    (* With port 0 the kernel picked one; report the real port either way. *)
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (* Deploy marker: a constant-1 gauge whose version label identifies the
     running build on every scrape of this server. *)
  Metrics.set
    (Metrics.gauge_with "build.info"
       (Metrics.labels [ ("version", Build_info.version) ]))
    1.0;
  let t =
    { sock; port; handler; stream_handler; read_timeout;
      stopping = Atomic.make false; worker = None;
      streams_mutex = Mutex.create (); streams = [];
      ticker = Procstat.start_ticker () }
  in
  t.worker <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* shutdown(2) — not close — wakes a thread blocked in accept(2) on
       Linux; close only marks the fd and leaves the accept sleeping.  The
       fd itself is closed after the join, so its number cannot be reused
       under the still-running server domain. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.worker with
    | Some d ->
      t.worker <- None;
      Domain.join d
    | None -> ());
    (* Streaming writers poll [should_stop] (now true) between events and
       their pushes start failing, so every stream domain is on its way
       out; join them all before releasing the listener fd. *)
    Mutex.lock t.streams_mutex;
    let streams = t.streams in
    t.streams <- [];
    Mutex.unlock t.streams_mutex;
    List.iter (fun sl -> Domain.join sl.sl_domain) streams;
    Procstat.stop_ticker t.ticker;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
