(* Bench regression gate: compare a fresh BENCH_*.json snapshot against a
   committed baseline with per-metric tolerance bands.

   The direction of "worse" is inferred from the metric name — durations
   regress upward, throughputs and speedups regress downward, everything
   else is held to a symmetric band.  Machine-dependent absolutes
   (wall-clock seconds, slots/s) should be excluded by the caller via
   ignore globs; the committed baselines gate ratios (speedups), which
   transfer across hosts.  Exit policy lives in bench/main.ml: any
   Regressed or Missing finding fails the gate, New metrics do not. *)

type direction = Higher_better | Lower_better | Band

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let direction_of_name name =
  if
    has_suffix name ".seconds" || has_suffix name ".ns"
    || has_suffix name ".minor_w" || contains name "latency"
    || contains name "delay"
  then Lower_better
  else if
    contains name "speedup" || contains name "throughput"
    || has_suffix name ".slots_per_s" || has_suffix name ".per_s"
    || has_suffix name ".ok"
  then Higher_better
  else Band

(* Minimal glob for --ignore: '*' matches any run of characters (including
   none), everything else is literal.  Backtracking is fine at metric-name
   lengths. *)
let glob_match pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pattern.[i] with
      | '*' ->
        let rec try_tail j' = j' <= ns && (go (i + 1) j' || try_tail (j' + 1)) in
        try_tail j
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

type status = Ok | Regressed | Missing | New_metric | Ignored

type finding = {
  metric : string;
  base : float option;
  cur : float option;
  status : status;
  note : string;
}

(* Scalar view of a metric for comparison: histograms compare on p50. *)
let scalar = function
  | Metrics.Counter_v n -> float_of_int n
  | Metrics.Gauge_v v -> v
  | Metrics.Histogram_v h -> h.Metrics.p50

let compare_one ~tolerance name b c =
  let fmt = Printf.sprintf in
  if Float.is_nan b || Float.is_nan c then
    (Ok, fmt "baseline=%g current=%g (nan skipped)" b c)
  else
    let ok, dir_name =
      match direction_of_name name with
      | Higher_better ->
        (c >= b -. (tolerance *. Float.abs b), "higher-better")
      | Lower_better ->
        (c <= b +. (tolerance *. Float.abs b), "lower-better")
      | Band ->
        (Float.abs (c -. b) <= tolerance *. Float.max (Float.abs b) 1., "band")
    in
    ( (if ok then Ok else Regressed),
      fmt "baseline=%g current=%g tol=%g (%s)" b c tolerance dir_name )

let diff ?(tolerance = 0.25) ?(ignores = [])
    ~(baseline : Metrics.snapshot) ~(current : Metrics.snapshot) () =
  let ignored name = List.exists (fun p -> glob_match p name) ignores in
  let base_findings =
    List.map
      (fun (name, bv) ->
        let b = scalar bv in
        if ignored name then
          { metric = name; base = Some b; cur = None; status = Ignored;
            note = "ignored" }
        else
          match List.assoc_opt name current with
          | None ->
            { metric = name; base = Some b; cur = None; status = Missing;
              note = "metric missing from current run" }
          | Some cv ->
            let c = scalar cv in
            let status, note = compare_one ~tolerance name b c in
            { metric = name; base = Some b; cur = Some c; status; note })
      baseline
  in
  let new_findings =
    List.filter_map
      (fun (name, cv) ->
        if List.mem_assoc name baseline || ignored name then None
        else
          Some
            { metric = name; base = None; cur = Some (scalar cv);
              status = New_metric; note = "not in baseline" })
      current
  in
  base_findings @ new_findings

(* The current snapshot never materialized — the workload crashed or was
   skipped before writing its file.  That is a regression of every gated
   metric, not a usage error: one Missing finding per non-ignored
   baseline metric, so the gate fails with a per-file account (exit 1 in
   bench/main.ml) instead of an exit-2 "cannot open" that CI configs
   routinely misread as infrastructure flake. *)
let missing_current ?(ignores = []) ~(baseline : Metrics.snapshot) () =
  let ignored name = List.exists (fun p -> glob_match p name) ignores in
  List.map
    (fun (name, bv) ->
      let b = scalar bv in
      if ignored name then
        { metric = name; base = Some b; cur = None; status = Ignored;
          note = "ignored" }
      else
        { metric = name; base = Some b; cur = None; status = Missing;
          note = "current snapshot file missing" })
    baseline

let regressions findings =
  List.filter
    (fun f -> match f.status with Regressed | Missing -> true
                                | Ok | New_metric | Ignored -> false)
    findings

(* Load a snapshot file as written by Sink.write_snapshot: one JSONL line
   (trailing lines, e.g. from appended runs, are rejected — the gate wants
   an unambiguous single snapshot). *)
let load_snapshot path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [ line ] -> (
    match Sink.snapshot_of_json (Json.parse line) with
    | Some snap -> snap
    | None -> failwith (path ^ ": not a metrics snapshot"))
  | [] -> failwith (path ^ ": empty snapshot file")
  | _ -> failwith (path ^ ": expected exactly one snapshot line")

let status_name = function
  | Ok -> "ok"
  | Regressed -> "REGRESSED"
  | Missing -> "MISSING"
  | New_metric -> "new"
  | Ignored -> "ignored"

let pp_finding ppf f =
  Fmt.pf ppf "%-10s %-40s %s" (status_name f.status) f.metric f.note

let pp_findings ppf findings =
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_finding f) findings
