(* Wall-clock spans paired with allocation deltas from [Gc.quick_stat]
   (which reads mutable counters without walking the heap, so a span costs
   two quick_stats and a gettimeofday).  Used to profile the [Sinr.resolve]
   kernel and the per-experiment phases of the bench harness. *)

type span = {
  wall_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

(* [Gc.minor_words ()] reads the domain's allocation pointer directly; the
   [minor_words] field of [quick_stat] is only refreshed at minor
   collections on OCaml 5 and would report 0 for short spans. *)
type running = { t0 : float; minor0 : float; gc0 : Gc.stat }

let start () =
  { t0 = Unix.gettimeofday ();
    minor0 = Gc.minor_words ();
    gc0 = Gc.quick_stat () }

let stop r =
  let t1 = Unix.gettimeofday () in
  let minor1 = Gc.minor_words () in
  let gc1 = Gc.quick_stat () in
  { wall_s = t1 -. r.t0;
    minor_words = minor1 -. r.minor0;
    major_words = gc1.Gc.major_words -. r.gc0.Gc.major_words;
    promoted_words = gc1.Gc.promoted_words -. r.gc0.Gc.promoted_words }

let time f =
  let r = start () in
  let x = f () in
  (x, stop r)

(* Record a span into histograms under [prefix]: wall time in nanoseconds
   ([<prefix>.ns]) and minor-heap allocation in words ([<prefix>.minor_w]).
   The histogram handles are get-or-create, so repeated calls with the same
   prefix share metrics; call sites on hot paths should keep their own
   handles and use [observe_span] instead. *)
let observe_span ~ns ~minor_w span =
  Metrics.observe ns (span.wall_s *. 1e9);
  Metrics.observe minor_w span.minor_words

let record ~prefix f =
  if Metrics.is_enabled () then begin
    let x, span = time f in
    observe_span
      ~ns:(Metrics.histogram (prefix ^ ".ns"))
      ~minor_w:(Metrics.histogram (prefix ^ ".minor_w"))
      span;
    x
  end
  else f ()

let pp_span ppf s =
  Fmt.pf ppf "%.3fms minor=%.0fw major=%.0fw promoted=%.0fw" (s.wall_s *. 1e3)
    s.minor_words s.major_words s.promoted_words
