(** Minimal JSON values, printing and parsing — just enough for the
    telemetry sink's JSONL documents and their round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t

val member : string -> t -> t option
(** Field lookup on objects; [None] on any other constructor. *)

val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option

val to_string_json : t -> string
(** Compact (single-line) rendering; integers print without a decimal
    point, NaN prints as [null]. *)

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val parse_opt : string -> t option
