(** Slot-phase profiler: attributes wall time per [Engine.step] stage
    (decide, chaos perturb, SINR resolve — with the far-field aggregation
    as a sub-stage — delivery fan-out, metrics/trace overhead) into log2
    histograms named [profile.<stage>.ns].

    The histograms live in the normal {!Metrics} registry, so profile rows
    flow through every sink (snapshot files, Prometheus, the [/metrics]
    endpoint). Gated on a process-global flag, default {e off}: a disabled
    hook pair costs one atomic load plus one float compare, cheap enough to
    sit permanently inside the engine's slot loop. Recording goes through
    {!Metrics.observe}, so the metrics registry must be enabled as well —
    {!with_enabled} arms both. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Run with {e both} the profiler and the metrics registry enabled,
    restoring both flags after. *)

type stage =
  | Step  (** the whole-slot envelope that shares are measured against *)
  | Decide
  | Perturb
  | Resolve
  | Farfield  (** sub-stage of [Resolve], timed inside [Sinr.resolve] *)
  | Delivery
  | Telemetry

val start : unit -> float
(** Begin timing a stage: the current time, or [0.] when the profiler is
    off (which makes the matching {!stop} a no-op). *)

val stop : stage -> float -> unit
(** [stop stage t0] records [now - t0] (ns) into [profile.<stage>.ns];
    no-op when [t0 = 0.]. *)

(** {1 Reporting} *)

type row = {
  r_stage : string;
  r_share : float;  (** percent of total profiled slot time *)
  r_total_ns : float;
  r_count : int;
  r_p50 : float;  (** ns; [nan] for the synthetic "other" row *)
  r_p99 : float;
}

type report = {
  slots : int;
  step_ns : float;  (** total profiled wall time, ns *)
  rows : row list;
      (** top-level stages plus a synthetic "other" (unattributed loop
          scaffolding + profiler overhead); shares sum to ~100% *)
  farfield : row option;
      (** the [Farfield] sub-stage when the fast path ran; counted inside
          resolve, not added to the share sum *)
}

val report : unit -> report option
(** Aggregate the [profile.*] histograms; [None] when no slot was profiled
    since the last {!Metrics.reset}. *)

val pp_report : Format.formatter -> report -> unit
(** The per-stage table printed by [sinr_sim profile-report]. *)
