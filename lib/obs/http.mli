(** Embedded HTTP endpoint: a minimal dependency-free HTTP/1.1 server
    (loopback-only, one background domain).

    Two layers share the listener:

    - the {b built-in read-only routes} — [GET /metrics] (the current
      {!Metrics.snapshot} as Prometheus text), [GET /healthz] (["ok"]) and
      [GET /spans] (the flight-recorder ring as JSONL) — always served;
    - an optional {b mounted handler} (the sweep daemon's job-control
      plane): consulted first for every GET/POST/DELETE; a [None] return
      falls through to the built-in routes.

    Request handling is bounded and non-smoke-client-safe: the request
    line + headers must fit {!max_header} bytes (431 otherwise), a
    declared body must fit {!max_body} (413), methods other than
    GET/POST/DELETE get a 405 with an [Allow] header, and every response
    — errors included — carries [Content-Length] and
    [Connection: close].

    Reading the built-in routes is safe while the simulation runs on
    other domains: they render from lock-free structures (sharded
    histograms, the span ring), so a scrape can never block the per-slot
    hot path. A mounted handler runs on the server domain and owns its
    own synchronization.

    Enabled from the CLI with [sinr_sim <cmd> --serve PORT] (read-only)
    or [sinr_sim serve] (job control). *)

type request = {
  meth : string;  (** ["GET"], ["POST"] or ["DELETE"] — no other method
                      reaches a handler *)
  path : string;  (** target with any query string stripped *)
  query : string; (** raw query string, [""] when absent *)
  body : string;  (** request body (clipped to [Content-Length]) *)
}

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;  (** extra headers, e.g. [Allow] *)
}

type handler = request -> response option
(** A route table: [Some response] serves it, [None] falls through to the
    built-in routes (404/405 if nothing matches). An exception becomes a
    500. *)

type stream = {
  s_status : int;
  s_content_type : string;  (** e.g. ["text/event-stream"] *)
  s_headers : (string * string) list;
  s_write : push:(string -> bool) -> should_stop:(unit -> bool) -> unit;
      (** Runs on a dedicated domain. [push] sends one chunk
          (chunked transfer-encoding) and returns [false] once the client
          disconnected or the server is stopping; the writer must then
          return promptly. Long-lived writers should also poll
          [should_stop] while idle. *)
}
(** A streaming response: status + headers sent immediately, body written
    incrementally for as long as the writer likes. Used for SSE event
    streams. *)

type stream_handler = request -> stream option
(** Consulted (GET only) before the regular [handler]; [Some stream]
    upgrades the connection to a streaming response served on its own
    domain — at most {!max_streams} at a time (503 beyond). [None] falls
    through to normal routing. *)

val response :
  ?content_type:string -> ?headers:(string * string) list -> int -> string
  -> response
(** Response constructor; [content_type] defaults to
    ["application/json"]. *)

type t
(** A running server (listening socket + accept-loop domain). *)

val max_header : int
(** Bound on the request line + header block, in bytes (431 past it). *)

val max_body : int
(** Bound on a declared request body, in bytes (413 past it). *)

val default_read_timeout : float
(** Per-connection request-read budget, in seconds (5.0). *)

val max_streams : int
(** Concurrent streaming connections (one domain each); 503 beyond. *)

val default_spans_last : int
(** Default cap on ring entries served by [GET /spans]; override with
    [?last=N] (the header line reports [total_entries] when truncated). *)

val serve :
  ?addr:string -> ?handler:handler -> ?stream_handler:stream_handler
  -> ?read_timeout:float -> port:int -> unit -> t
(** Bind [addr] (default ["127.0.0.1"]) on [port] and serve until {!stop},
    consulting [stream_handler] (GET only), then [handler], on every
    request. [port = 0] lets the kernel pick a free port — read it back
    with {!port}. Raises [Unix.Unix_error] if the bind fails (port
    taken). Starting a server also publishes the [build.info] gauge
    (constant 1, [version] label) and spins up a {!Procstat} ticker so
    [proc.rss_kb] / [proc.hwm_kb] / [gc.heap_words] gauges stay live on
    every scrape; {!stop} stops the ticker.

    [read_timeout] (default {!default_read_timeout}) is the slowloris
    guard: a wall-clock budget covering the {e whole} request read —
    request line, headers and body together. A client that opens a
    socket and dribbles (or never completes) its request gets a 408 and
    the connection is closed, so it can never pin the accept loop. *)

val port : t -> int
(** The actual bound port (useful after [serve ~port:0]). *)

val stop : t -> unit
(** Shut down the listener and join the server domain. Idempotent. *)

val handle : ?handler:handler -> string -> string
(** [handle raw] is the full HTTP response text for a raw request string
    (request line, headers, body) — the routing, bounds and method
    checks without the socket, exposed for tests. *)

val response_for : string -> string
(** [handle] without a handler: the PR 6 read-only surface (non-GET
    methods are 405). Kept for existing tests and callers. *)
