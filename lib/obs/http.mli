(** Embedded observability endpoint: a minimal dependency-free HTTP server
    (GET-only, loopback-only, one background domain) exposing the live
    state of a running simulation:

    - [/metrics] — the current {!Metrics.snapshot} in Prometheus text
      exposition format ({!Sink.snapshot_to_prometheus});
    - [/healthz] — ["ok"], for liveness probes and smoke tests;
    - [/spans] — the flight-recorder ring as JSONL
      ({!Recorder.to_jsonl}).

    Reading is safe while the simulation runs on other domains: both
    endpoints render from lock-free structures (sharded histograms, the
    span ring), so a scrape can never block the per-slot hot path.

    Enabled from the CLI with [sinr_sim <cmd> --serve PORT]. *)

type t
(** A running server (listening socket + accept-loop domain). *)

val serve : ?addr:string -> port:int -> unit -> t
(** Bind [addr] (default ["127.0.0.1"]) on [port] and serve until {!stop}.
    [port = 0] lets the kernel pick a free port — read it back with
    {!port}. Raises [Unix.Unix_error] if the bind fails (port taken). *)

val port : t -> int
(** The actual bound port (useful after [serve ~port:0]). *)

val stop : t -> unit
(** Shut down the listener and join the server domain. Idempotent. *)

val response_for : string -> string
(** [response_for request] is the full HTTP response (status line, headers,
    body) for a raw request string — the routing logic without the socket,
    exposed for tests. *)
