(* Slot-phase profiler: where does a simulated slot's wall time go?

   The engine wraps each stage of [Engine.step] (decide callbacks, chaos
   perturbation, SINR resolution, delivery fan-out, metrics/trace
   bookkeeping) in [start]/[stop] hooks; each stage's duration lands in a
   log2 histogram named [profile.<stage>.ns], which therefore flows through
   every normal sink (snapshot, JSONL, Prometheus, /metrics).  [Farfield]
   is a sub-stage timed inside [Sinr.resolve]'s far-field branch and is
   reported inside Resolve, not beside it.

   Gating mirrors the other obs layers: one process-global atomic flag,
   default off.  [start] returns 0. when disabled so the matching [stop]
   is a single float compare — the engine hooks cost a handful of
   load-and-branch per slot when the profiler is off.  Durations are
   recorded through {!Metrics.observe}, so the registry must be enabled
   too; [with_enabled] arms both.

   The report divides each top-level stage's total by the total of
   [profile.step.ns] (the whole-slot envelope); the remainder — loop
   scaffolding plus the profiler's own clock reads — appears as "other",
   so the shares sum to ~100% by construction. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let is_enabled () = Atomic.get on

let with_enabled f =
  let prev_p = Atomic.get on in
  let prev_m = Metrics.is_enabled () in
  Atomic.set on true;
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set on prev_p;
      Metrics.set_enabled prev_m)
    f

type stage =
  | Step (* the whole-slot envelope the shares are relative to *)
  | Decide
  | Perturb
  | Resolve
  | Farfield (* sub-stage of Resolve, timed inside lib/phys *)
  | Delivery
  | Telemetry

let stage_name = function
  | Step -> "step"
  | Decide -> "decide"
  | Perturb -> "perturb"
  | Resolve -> "resolve"
  | Farfield -> "farfield"
  | Delivery -> "delivery"
  | Telemetry -> "telemetry"

let hist_of =
  let h s = Metrics.histogram (Printf.sprintf "profile.%s.ns" (stage_name s)) in
  let step = h Step
  and decide = h Decide
  and perturb = h Perturb
  and resolve = h Resolve
  and farfield = h Farfield
  and delivery = h Delivery
  and telemetry = h Telemetry in
  function
  | Step -> step
  | Decide -> decide
  | Perturb -> perturb
  | Resolve -> resolve
  | Farfield -> farfield
  | Delivery -> delivery
  | Telemetry -> telemetry

let start () = if Atomic.get on then Unix.gettimeofday () else 0.

let stop stage t0 =
  if t0 <> 0. then
    Metrics.observe (hist_of stage) ((Unix.gettimeofday () -. t0) *. 1e9)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type row = {
  r_stage : string;
  r_share : float; (* percent of total slot time *)
  r_total_ns : float;
  r_count : int;
  r_p50 : float; (* ns *)
  r_p99 : float; (* ns *)
}

type report = {
  slots : int; (* profiled slots (= count of profile.step.ns) *)
  step_ns : float; (* total profiled wall time, ns *)
  rows : row list; (* top-level stages + "other"; shares sum to ~100 *)
  farfield : row option; (* sub-stage of resolve, when the fast path ran *)
}

let top_stages = [ Decide; Perturb; Resolve; Delivery; Telemetry ]

let row_of ~step_ns stage =
  let s = Metrics.summarize (hist_of stage) in
  { r_stage = stage_name stage;
    r_share = (if step_ns > 0. then 100. *. s.Metrics.sum /. step_ns else 0.);
    r_total_ns = s.Metrics.sum;
    r_count = s.Metrics.count;
    r_p50 = s.Metrics.p50;
    r_p99 = s.Metrics.p99 }

let report () =
  let step = Metrics.summarize (hist_of Step) in
  if step.Metrics.count = 0 then None
  else begin
    let step_ns = step.Metrics.sum in
    let rows = List.map (row_of ~step_ns) top_stages in
    let accounted =
      List.fold_left (fun acc r -> acc +. r.r_total_ns) 0. rows
    in
    (* Loop scaffolding, allocation, and the profiler's own clock reads.
       Clock noise can push [accounted] past the envelope; clamp at 0. *)
    let other_ns = Float.max 0. (step_ns -. accounted) in
    let other =
      { r_stage = "other";
        r_share = (if step_ns > 0. then 100. *. other_ns /. step_ns else 0.);
        r_total_ns = other_ns;
        r_count = step.Metrics.count;
        r_p50 = nan;
        r_p99 = nan }
    in
    let farfield =
      let ff = row_of ~step_ns Farfield in
      if ff.r_count = 0 then None else Some ff
    in
    Some { slots = step.Metrics.count; step_ns; rows = rows @ [ other ];
           farfield }
  end

let pp_ns ppf v =
  if Float.is_nan v then Fmt.pf ppf "%8s" "-"
  else if v >= 1e6 then Fmt.pf ppf "%6.2fms" (v /. 1e6)
  else if v >= 1e3 then Fmt.pf ppf "%6.2fus" (v /. 1e3)
  else Fmt.pf ppf "%6.0fns" v

let pp_report ppf r =
  Fmt.pf ppf "profiled %d slots, %.3f ms total (%.0f ns/slot)@." r.slots
    (r.step_ns /. 1e6)
    (r.step_ns /. float_of_int (Stdlib.max 1 r.slots));
  Fmt.pf ppf "%-10s %7s %12s %10s %10s@." "stage" "share" "total" "p50"
    "p99";
  let line row =
    Fmt.pf ppf "%-10s %6.1f%% %9.3f ms %a %a@." row.r_stage row.r_share
      (row.r_total_ns /. 1e6) pp_ns row.r_p50 pp_ns row.r_p99
  in
  List.iter line r.rows;
  match r.farfield with
  | None -> ()
  | Some ff ->
    Fmt.pf ppf "  (within resolve)@.";
    line ff
