(** Process resource readings from /proc (Linux).

    Used by the scale benchmarks to record peak memory against the
    million-node budget. All readers return [None] where procfs is
    unavailable, so callers degrade to "gauge not recorded" instead of
    fabricating a number. *)

val peak_rss_kb : unit -> int option
(** VmHWM — the process's peak resident set, in kB. Monotone over the
    process lifetime: when benching several sizes, run them ascending so
    each reading reflects the largest run so far. *)

val peak_rss_mb : unit -> float option
(** {!peak_rss_kb} in MiB. *)

val rss_kb : unit -> int option
(** VmRSS — the current resident set, in kB. *)
