(** Process resource readings from /proc (Linux).

    Used by the scale benchmarks to record peak memory against the
    million-node budget. All readers return [None] where procfs is
    unavailable, so callers degrade to "gauge not recorded" instead of
    fabricating a number. *)

val peak_rss_kb : unit -> int option
(** VmHWM — the process's peak resident set, in kB. Monotone over the
    process lifetime: when benching several sizes, run them ascending so
    each reading reflects the largest run so far. *)

val peak_rss_mb : unit -> float option
(** {!peak_rss_kb} in MiB. *)

val rss_kb : unit -> int option
(** VmRSS — the current resident set, in kB. *)

(** {1 Gauge ticker}

    Live process stats for long-running servers: a small background
    domain that periodically publishes [proc.rss_kb], [proc.hwm_kb] and
    [gc.heap_words] gauges. Started by {!Http.serve} so the stats are
    visible on any [/metrics] scrape whenever [--serve] or the daemon is
    up. On platforms without procfs only the GC gauge is published. *)

type ticker

val default_tick_period : float
(** Seconds between samples (2.0). *)

val start_ticker : ?period_s:float -> unit -> ticker
(** Spawn the sampling domain; the first sample is taken immediately.
    Gauge updates respect the global {!Metrics} enable flag. *)

val stop_ticker : ticker -> unit
(** Stop and join the sampling domain. Idempotent. *)
