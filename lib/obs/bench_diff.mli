(** Bench regression gate: compare a fresh metrics snapshot against a
    committed baseline with per-metric tolerance bands.

    "Worse" is inferred from the metric name: [.seconds]/[.ns]/[.minor_w]/
    [*latency*]/[*delay*] regress upward, [*speedup*]/[*throughput*]/
    [.slots_per_s]/[.per_s]/[.ok] regress downward, anything else is held
    to a symmetric band of [tolerance * max(|baseline|, 1)]. Histograms
    compare on their p50. Machine-dependent absolutes belong in [ignores]
    — the committed baselines gate ratios, which transfer across hosts. *)

type direction = Higher_better | Lower_better | Band

val direction_of_name : string -> direction

val glob_match : string -> string -> bool
(** ['*'] matches any (possibly empty) run of characters; all else is
    literal. *)

type status = Ok | Regressed | Missing | New_metric | Ignored

type finding = {
  metric : string;
  base : float option;
  cur : float option;
  status : status;
  note : string;
}

val diff :
  ?tolerance:float ->
  ?ignores:string list ->
  baseline:Metrics.snapshot ->
  current:Metrics.snapshot ->
  unit ->
  finding list
(** One finding per baseline metric (plus [New_metric] rows for current
    metrics absent from the baseline). [tolerance] defaults to 0.25 —
    a relative band of 25%. *)

val missing_current :
  ?ignores:string list -> baseline:Metrics.snapshot -> unit -> finding list
(** The report for a current snapshot file that never materialized: one
    [Missing] finding per non-ignored baseline metric ([Ignored]
    otherwise), so the gate fails per-file with exit 1 rather than
    treating a crashed workload as a usage error. *)

val regressions : finding list -> finding list
(** The gate-failing subset: [Regressed] and [Missing]. *)

val load_snapshot : string -> Metrics.snapshot
(** Read a [Sink.write_snapshot] file (exactly one JSONL snapshot line).
    Raises [Failure] / [Json.Parse_error] / [Sys_error] on anything
    else. *)

val pp_finding : finding Fmt.t
val pp_findings : finding list Fmt.t
