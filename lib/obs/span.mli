(** Causal spans over engine slots, feeding the flight recorder.

    A span is a named slot interval with an optional parent span,
    attributes and slot-stamped text annotations. The MAC stack opens a
    root span per broadcast and hangs Hm_ack / Approx_progress
    epoch/phase/stage children off it; {!Recorder} dumps them (plus loose
    events) as JSONL.

    Everything is gated on one process-global flag, default {e off}: with
    tracing off {!start} returns {!none} without allocating, and all other
    operations cost one branch, so the hooks can sit inside per-slot
    kernels. Enable with {!set_enabled} or {!with_enabled}.

    Domain-safe but intended for single-run debugging: all domains share
    one ring. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Run with tracing enabled, restoring the previous state after. *)

type id = private int
(** Handle to a span; process-unique, never reused. *)

val none : id
(** The null span: returned by {!start} when tracing is off; every
    operation on it is a no-op. Test with [(id :> int) = (none :> int)] or
    just pass it around — all operations guard themselves. *)

val start : ?parent:id -> name:string -> slot:int -> unit -> id
(** Open a span at [slot]. Returns {!none} when tracing is disabled (a
    {!none} [parent] means root). The span's initial attributes are the
    current ambient context (see {!with_context}). *)

val set_context : (string * Json.t) list -> unit
(** Set the process-global ambient context: attributes stamped onto every
    span subsequently opened, in any domain. Used by the sweep daemon to
    tag all spans of a running job with its [job_id]. Prefer
    {!with_context} for scoped use. *)

val with_context : (string * Json.t) list -> (unit -> 'a) -> 'a
(** Prepend attributes to the ambient context for the duration of [f],
    restoring the previous context after (even on exceptions). *)

val set_attr : id -> string -> Json.t -> unit
(** Set (or replace) an attribute on a still-open span. *)

val annotate : id -> slot:int -> string -> unit
(** Append a slot-stamped note to a still-open span. *)

val finish : id -> slot:int -> unit
(** Close the span and move it into the ring. Works even if tracing was
    disabled after {!start}, so enabled-phase spans cannot leak. *)

val record_event : slot:int -> Json.t -> unit
(** Push a loose (span-less) event into the ring; no-op when disabled.
    Exposed to {!Recorder} and the engine hooks. *)

(** {1 Ring management} *)

val default_capacity : int

val set_capacity : int -> unit
(** Re-allocate the ring (clamped to >= 16). Discards current entries. *)

val capacity : unit -> int

val clear : unit -> unit
(** Drop all ring entries, open spans and the dropped count. Ids are not
    reset, so parent links stay unambiguous across clears. *)

val dropped_count : unit -> int
(** Entries overwritten since the last {!clear}/{!set_capacity}. *)

(** {1 Reading — used by {!Recorder} and the tests} *)

type t = private {
  id : id;
  parent : id;
  name : string;
  start_slot : int;
  mutable end_slot : int;  (** -1 while open *)
  mutable attrs : (string * Json.t) list;  (** newest first *)
  mutable notes : (int * string) list;  (** (slot, text), newest first *)
}

type entry = Span_entry of t | Event_entry of { slot : int; body : Json.t }

val entries : unit -> entry list
(** Ring contents, oldest first. *)

val open_spans : unit -> t list
(** Spans started but not finished, by start slot then id. *)

val span_to_json : t -> Json.t
val entry_to_json : entry -> Json.t
(** One JSONL line per entry: spans as
    [{"kind":"span","id":..,"parent":..,"name":..,"start":..,"end":..,
    "attrs":{..},"notes":[[slot,text],..]}], events as
    [{"kind":"event","slot":..,<body fields>}]. *)
