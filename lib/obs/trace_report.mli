(** Analysis of flight-recorder dumps ({!Recorder.to_jsonl} output):
    per-message ack / progress latency percentiles against the bounds the
    MAC embedded in the [mac.bcast] span attributes, flagging messages
    that exceed them, with the overlapping Algorithm 9.1 epoch/phase spans
    printed per offender.

    Progress here is the first rcv of the message anywhere (the debugging
    view); the per-listener windows of Definition 7.1 remain Spec_check's
    job. *)

type span_rec = {
  s_id : int;
  s_parent : int option;
  s_name : string;
  s_start : int;
  s_end : int option;  (** [None] = still open when dumped *)
  s_attrs : (string * Json.t) list;
  s_notes : (int * string) list;
}

type event_rec = { e_slot : int; e_fields : (string * Json.t) list }

type trace = {
  header : (string * Json.t) list;
  spans : span_rec list;
  events : event_rec list;
}

val of_lines : string list -> trace
(** Parse dump lines. Raises [Json.Parse_error] on malformed JSON and
    [Failure] on lines that are neither header, span nor event. Blank
    lines are skipped. *)

val load_file : string -> trace
(** {!of_lines} over a file; raises [Sys_error] on IO failure. *)

type msg_report = {
  m_node : int;
  m_seq : int;
  m_start : int;
  m_end : int option;
  m_outcome : string;  (** ack | ack_capped | abort | crash_drop | open *)
  m_ack_delay : int option;
  m_f_ack : int option;
  m_first_rcv : int option;
  m_prog_delay : int option;
  m_f_approg : int option;
  m_late_ack : bool;   (** ack delay > f_ack (Thm 5.1 cap) *)
  m_late_prog : bool;  (** first rcv > f_approg (Thm 9.1 window) *)
}

type report = {
  messages : msg_report list;  (** by start slot *)
  horizon : int;               (** last slot seen in the dump *)
  ack_pcts : (float * float * float) option;   (** p50, p90, p99 *)
  prog_pcts : (float * float * float) option;
  flagged : msg_report list;   (** late_ack or late_prog *)
  stages : (string * int * int) list;
      (** per approg stage span name: (name, span count, total slots) *)
  approg_spans : span_rec list;
}

val analyze : trace -> report

val flagged : report -> int
(** Number of bound-exceeding messages ([trace-report --strict] exit). *)

val pp : report Fmt.t
