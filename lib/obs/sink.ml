(* Serialisation of metric snapshots (and arbitrary JSON events) to the two
   formats the tooling around the simulator wants:

   - JSONL: one self-contained JSON object per line, suitable for appending
     run after run to the same file and for jq/pandas post-processing;
   - Prometheus text exposition (version 0.0.4 subset): counters, gauges,
     and histogram summaries rendered as <name>_count/_sum plus
     {quantile="..."} sample lines, for scraping a long-lived run. *)

let value_to_json (v : Metrics.value) =
  match v with
  | Metrics.Counter_v n -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.int n) ]
  | Metrics.Gauge_v f -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num f) ]
  | Metrics.Histogram_v h ->
    Json.Obj
      [ ("type", Json.Str "histogram");
        ("count", Json.int h.Metrics.count);
        ("sum", Json.Num h.Metrics.sum);
        ("min", Json.Num h.Metrics.min);
        ("max", Json.Num h.Metrics.max);
        ("p50", Json.Num h.Metrics.p50);
        ("p90", Json.Num h.Metrics.p90);
        ("p99", Json.Num h.Metrics.p99) ]

let snapshot_to_json ?label (snap : Metrics.snapshot) =
  let metrics =
    Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)
  in
  let header =
    match label with None -> [] | Some l -> [ ("label", Json.Str l) ]
  in
  Json.Obj (header @ [ ("metrics", metrics) ])

let snapshot_to_jsonl ?label snap =
  Json.to_string_json (snapshot_to_json ?label snap) ^ "\n"

(* Inverse of [snapshot_to_json] (up to quantile-estimate precision); used
   by the round-trip tests and by any tool re-reading its own output. *)
let snapshot_of_json j =
  match Json.member "metrics" j with
  | Some (Json.Obj fields) ->
    let num name o = Option.bind (Json.member name o) Json.to_float in
    let int' name o = Option.bind (Json.member name o) Json.to_int in
    let parse_one (name, o) =
      match Option.bind (Json.member "type" o) Json.to_string with
      | Some "counter" ->
        Option.map (fun v -> (name, Metrics.Counter_v v)) (int' "value" o)
      | Some "gauge" ->
        Option.map (fun v -> (name, Metrics.Gauge_v v)) (num "value" o)
      | Some "histogram" ->
        (match (int' "count" o, num "sum" o, num "min" o, num "max" o,
                num "p50" o, num "p90" o, num "p99" o)
         with
         | Some count, Some sum, Some min, Some max, Some p50, Some p90,
           Some p99 ->
           Some
             (name, Metrics.Histogram_v { count; sum; min; max; p50; p90; p99 })
         | _ -> None)
      | Some _ | None -> None
    in
    (try Some (List.map (fun f -> Option.get (parse_one f)) fields)
     with Invalid_argument _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Prometheus names allow [a-zA-Z0-9_:]; our dotted names map '.' to '_'. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* Exposition-format escaping.  Label values escape backslash, double quote
   and newline; HELP text escapes backslash and newline (quotes are legal
   there).  Without these, a metric name or label containing '"' or '\n'
   corrupts the whole scrape. *)
let prom_escape ~quote s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_escape_label s = prom_escape ~quote:true s
let prom_escape_help s = prom_escape ~quote:false s

(* Render a label set as "{k=\"v\",...}" ("" when empty).  [extra] pairs
   (e.g. quantile) are appended after the metric's own labels. *)
let prom_labels ?(extra = []) pairs =
  match pairs @ extra with
  | [] -> ""
  | all ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_escape_label v))
           all)
    ^ "}"

let snapshot_to_prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  (* Distinct dotted names can collapse to one exposition family
     (e.g. "a.b" and "a_b"); HELP/TYPE must still appear exactly once per
     family even when several labeled children share it, so track the
     families already introduced. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header n ~help ~typ =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" n (prom_escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n typ)
    end
  in
  List.iter
    (fun (name, v) ->
      let family, pairs = Metrics.split_name name in
      let n = prom_name family in
      let lbls = prom_labels pairs in
      let help = Printf.sprintf "sinr_sim metric %s" family in
      match v with
      | Metrics.Counter_v c ->
        header n ~help ~typ:"counter";
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" n lbls c)
      | Metrics.Gauge_v g ->
        header n ~help ~typ:"gauge";
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" n lbls (prom_float g))
      | Metrics.Histogram_v h ->
        header n ~help ~typ:"summary";
        List.iter
          (fun (q, value) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" n
                 (prom_labels ~extra:[ ("quantile", q) ] pairs)
                 (prom_float value)))
          [ ("0.5", h.Metrics.p50); ("0.9", h.Metrics.p90); ("0.99", h.Metrics.p99) ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n%s_count%s %d\n" n lbls
             (prom_float h.Metrics.sum) n lbls h.Metrics.count))
    snap;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Files and pretty-printing                                           *)
(* ------------------------------------------------------------------ *)

(* Atomic write: land the bytes in a sibling temp file, then rename over
   the destination.  rename(2) within one directory is atomic on POSIX, so
   an interrupted run leaves either the old file or the new one — never a
   torn BENCH_*.json.  The pid suffix keeps concurrent writers (bench
   under --jobs, tests) off each other's temp files. *)
let write_file path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let append_line path line =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc line;
      if String.length line = 0 || line.[String.length line - 1] <> '\n' then
        output_char oc '\n')

let write_snapshot ?label path snap =
  write_file path (snapshot_to_jsonl ?label snap)

let pp_snapshot ppf (snap : Metrics.snapshot) =
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_v c -> Fmt.pf ppf "%-32s %d@." name c
      | Metrics.Gauge_v g -> Fmt.pf ppf "%-32s %g@." name g
      | Metrics.Histogram_v h ->
        Fmt.pf ppf
          "%-32s count=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g@." name
          h.Metrics.count h.Metrics.sum h.Metrics.min h.Metrics.p50
          h.Metrics.p90 h.Metrics.p99 h.Metrics.max)
    snap
