(** Wall-clock spans with [Gc.quick_stat] allocation deltas, for profiling
    simulation kernels. *)

type span = {
  wall_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type running

val start : unit -> running
val stop : running -> span

val time : (unit -> 'a) -> 'a * span

val observe_span :
  ns:Metrics.histogram -> minor_w:Metrics.histogram -> span -> unit
(** Record a span's wall time (nanoseconds) and minor allocation (words)
    into pre-created histogram handles — the hot-path form. *)

val record : prefix:string -> (unit -> 'a) -> 'a
(** [record ~prefix f] runs [f], recording into [<prefix>.ns] and
    [<prefix>.minor_w] when metrics are enabled; with metrics disabled it
    is just [f ()]. *)

val pp_span : span Fmt.t
