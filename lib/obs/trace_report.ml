(* Analysis of flight-recorder dumps: per-message latency against the
   theorem bounds.

   A dump (Recorder.to_jsonl) carries mac.bcast spans whose attributes
   embed the bounds the MAC computed for the run — f_ack engine slots
   (Theorem 5.1 via the Algorithm 11.1 interleaving) and f_approg
   (Theorem 9.1's two-epoch window, doubled for interleaving).  This
   module rebuilds per-message records from the spans, measures

     ack delay      = span end - span start        (outcome ack/ack_capped)
     progress delay = first rcv of the message - span start

   and reports p50/p90/p99 of both (via Metrics' log2-bucket estimator)
   plus every message exceeding its own bound, with the approg
   epoch/phase spans overlapping the offender so the reader sees where
   the slots went.  The progress delay is listener-agnostic (first rcv
   anywhere); Definition 7.1's per-listener windows are what Spec_check
   scores — this report is the debugging view, not the spec oracle. *)

type span_rec = {
  s_id : int;
  s_parent : int option;
  s_name : string;
  s_start : int;
  s_end : int option;  (* None = still open when dumped *)
  s_attrs : (string * Json.t) list;
  s_notes : (int * string) list;
}

type event_rec = { e_slot : int; e_fields : (string * Json.t) list }

type trace = {
  header : (string * Json.t) list;
  spans : span_rec list;
  events : event_rec list;
}

let span_of_json j =
  let int' name = Option.bind (Json.member name j) Json.to_int in
  let req name =
    match int' name with
    | Some v -> v
    | None -> failwith (Printf.sprintf "span line missing %S" name)
  in
  let name =
    match Option.bind (Json.member "name" j) Json.to_string with
    | Some s -> s
    | None -> failwith "span line missing \"name\""
  in
  let attrs =
    match Json.member "attrs" j with Some (Json.Obj fs) -> fs | _ -> []
  in
  let notes =
    match Json.member "notes" j with
    | Some (Json.List items) ->
      List.filter_map
        (function
          | Json.List [ s; Json.Str text ] ->
            Option.map (fun slot -> (slot, text)) (Json.to_int s)
          | _ -> None)
        items
    | _ -> []
  in
  { s_id = req "id";
    s_parent = int' "parent";
    s_name = name;
    s_start = req "start";
    s_end = int' "end";
    s_attrs = attrs;
    s_notes = notes }

let of_lines lines =
  let header = ref [] in
  let spans = ref [] in
  let events = ref [] in
  List.iter
    (fun line ->
      if String.trim line <> "" then begin
        let j = Json.parse line in
        match Option.bind (Json.member "kind" j) Json.to_string with
        | Some "span" -> spans := span_of_json j :: !spans
        | Some "event" ->
          let fields = match j with Json.Obj fs -> fs | _ -> [] in
          let slot =
            Option.value ~default:0
              (Option.bind (Json.member "slot" j) Json.to_int)
          in
          events := { e_slot = slot; e_fields = fields } :: !events
        | Some k -> failwith (Printf.sprintf "unknown line kind %S" k)
        | None ->
          if Json.member "flight" j <> None then
            header := (match j with Json.Obj fs -> fs | _ -> [])
          else failwith "line is neither a header, a span nor an event"
      end)
    lines;
  { header = !header; spans = List.rev !spans; events = List.rev !events }

let load_file path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  of_lines lines

(* ------------------------------------------------------------------ *)
(* Per-message reconstruction                                          *)
(* ------------------------------------------------------------------ *)

type msg_report = {
  m_node : int;
  m_seq : int;
  m_start : int;
  m_end : int option;
  m_outcome : string;  (* ack | ack_capped | abort | crash_drop | open *)
  m_ack_delay : int option;   (* for ack/ack_capped outcomes *)
  m_f_ack : int option;
  m_first_rcv : int option;   (* slot of the first rcv of this message *)
  m_prog_delay : int option;
  m_f_approg : int option;
  m_late_ack : bool;
  m_late_prog : bool;
}

type report = {
  messages : msg_report list;
  horizon : int;
  ack_pcts : (float * float * float) option;   (* p50/p90/p99, acked msgs *)
  prog_pcts : (float * float * float) option;
  flagged : msg_report list;      (* late_ack or late_prog *)
  stages : (string * int * int) list;  (* approg span name, count, slots *)
  approg_spans : span_rec list;   (* epoch + phase spans, for breakdowns *)
}

let attr_int name sp =
  Option.bind (List.assoc_opt name sp.s_attrs) Json.to_int

let attr_str name sp =
  Option.bind (List.assoc_opt name sp.s_attrs) Json.to_string

(* p50/p90/p99 through the registry's log2-bucket estimator (the same code
   path the histograms use, so report numbers and metric numbers agree). *)
let percentiles = function
  | [] -> None
  | xs ->
    let counts = Array.make Metrics.nbuckets 0 in
    let lo = ref infinity and hi = ref neg_infinity in
    List.iter
      (fun x ->
        let v = float_of_int x in
        if v < !lo then lo := v;
        if v > !hi then hi := v;
        let i = Metrics.bucket_of v in
        counts.(i) <- counts.(i) + 1)
      xs;
    let total = List.length xs in
    let q p =
      Metrics.estimate_quantile ~counts ~total ~lo:!lo ~hi:!hi p
    in
    Some (q 0.5, q 0.9, q 0.99)

let analyze tr =
  let horizon =
    List.fold_left
      (fun acc sp ->
        max acc (max sp.s_start (Option.value sp.s_end ~default:sp.s_start)))
      (List.fold_left (fun acc e -> max acc e.e_slot) 0 tr.events)
      tr.spans
  in
  (* First reception slot per (origin, seq), from the mirrored rcv events. *)
  let first_rcv : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match Option.bind (List.assoc_opt "ev" e.e_fields) Json.to_string with
      | Some "rcv" ->
        let f name = Option.bind (List.assoc_opt name e.e_fields) Json.to_int in
        (match (f "from", f "msg") with
         | Some from, Some msg ->
           let key = (from, msg) in
           (match Hashtbl.find_opt first_rcv key with
            | Some s when s <= e.e_slot -> ()
            | _ -> Hashtbl.replace first_rcv key e.e_slot)
         | _ -> ())
      | _ -> ())
    tr.events;
  let messages =
    List.filter_map
      (fun sp ->
        if sp.s_name <> "mac.bcast" then None
        else
          match (attr_int "node" sp, attr_int "seq" sp) with
          | Some node, Some seq ->
            let outcome =
              Option.value (attr_str "outcome" sp)
                ~default:(if sp.s_end = None then "open" else "?")
            in
            let f_ack = attr_int "f_ack" sp in
            let f_approg = attr_int "f_approg" sp in
            let ack_delay =
              match (outcome, sp.s_end) with
              | (("ack" | "ack_capped"), Some e) -> Some (e - sp.s_start)
              | _ -> None
            in
            let first = Hashtbl.find_opt first_rcv (node, seq) in
            let prog_delay = Option.map (fun s -> s - sp.s_start) first in
            let late v bound =
              match (v, bound) with
              | Some d, Some b -> d > b
              | _ -> false
            in
            Some
              { m_node = node;
                m_seq = seq;
                m_start = sp.s_start;
                m_end = sp.s_end;
                m_outcome = outcome;
                m_ack_delay = ack_delay;
                m_f_ack = f_ack;
                m_first_rcv = first;
                m_prog_delay = prog_delay;
                m_f_approg = f_approg;
                m_late_ack = late ack_delay f_ack;
                m_late_prog = late prog_delay f_approg }
          | _ -> None)
      tr.spans
    |> List.sort (fun a b ->
      match compare a.m_start b.m_start with
      | 0 -> compare (a.m_node, a.m_seq) (b.m_node, b.m_seq)
      | c -> c)
  in
  let stages =
    let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun sp ->
        match sp.s_name with
        | "approg.probe" | "approg.list" | "approg.mis" | "approg.data" ->
          let dur = Option.value sp.s_end ~default:horizon - sp.s_start in
          let c, s = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl sp.s_name) in
          Hashtbl.replace tbl sp.s_name (c + 1, s + max 0 dur)
        | _ -> ())
      tr.spans;
    Hashtbl.fold (fun name (c, s) acc -> (name, c, s) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  { messages;
    horizon;
    ack_pcts = percentiles (List.filter_map (fun m -> m.m_ack_delay) messages);
    prog_pcts =
      percentiles (List.filter_map (fun m -> m.m_prog_delay) messages);
    flagged = List.filter (fun m -> m.m_late_ack || m.m_late_prog) messages;
    stages;
    approg_spans =
      List.filter
        (fun sp -> sp.s_name = "approg.epoch" || sp.s_name = "approg.phase")
        tr.spans }

let flagged r = List.length r.flagged

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let overlapping r m =
  let m_end = Option.value m.m_end ~default:r.horizon in
  List.filter
    (fun sp ->
      let e = Option.value sp.s_end ~default:r.horizon in
      sp.s_start <= m_end && e >= m.m_start)
    r.approg_spans

let pp_pcts ppf (label, bound, pcts) =
  match pcts with
  | None -> Fmt.pf ppf "%-9s no samples@." label
  | Some (p50, p90, p99) ->
    Fmt.pf ppf "%-9s p50=%.0f p90=%.0f p99=%.0f%s@." label p50 p90 p99
      (match bound with
       | Some b -> Fmt.str "  (bound %d)" b
       | None -> "")

let pp ppf r =
  Fmt.pf ppf "trace-report: %d message(s), horizon slot %d@."
    (List.length r.messages) r.horizon;
  (* The bounds are per-message attributes but constant within one run;
     print the max so mixed dumps stay honest. *)
  let max_bound f =
    List.fold_left
      (fun acc m -> match f m with Some b -> Some (max b (Option.value acc ~default:b)) | None -> acc)
      None r.messages
  in
  pp_pcts ppf ("ack", max_bound (fun m -> m.m_f_ack), r.ack_pcts);
  pp_pcts ppf ("progress", max_bound (fun m -> m.m_f_approg), r.prog_pcts);
  if r.stages <> [] then begin
    Fmt.pf ppf "approg stages:@.";
    List.iter
      (fun (name, count, slots) ->
        Fmt.pf ppf "  %-14s spans=%d slots=%d@." name count slots)
      r.stages
  end;
  Fmt.pf ppf
    "%5s %4s %7s %10s %6s %6s %6s %8s@." "node" "seq" "start" "outcome"
    "ack" "f_ack" "prog" "f_approg";
  List.iter
    (fun m ->
      let opt = function Some v -> string_of_int v | None -> "-" in
      Fmt.pf ppf "%5d %4d %7d %10s %6s %6s %6s %8s%s@." m.m_node m.m_seq
        m.m_start m.m_outcome (opt m.m_ack_delay) (opt m.m_f_ack)
        (opt m.m_prog_delay) (opt m.m_f_approg)
        (if m.m_late_ack || m.m_late_prog then "  <-- EXCEEDS BOUND" else ""))
    r.messages;
  if r.flagged <> [] then begin
    Fmt.pf ppf "@.%d message(s) exceed their bound:@." (List.length r.flagged);
    List.iter
      (fun m ->
        Fmt.pf ppf "  node %d seq %d [%d, %s] outcome=%s%s%s@." m.m_node
          m.m_seq m.m_start
          (match m.m_end with Some e -> string_of_int e | None -> "open")
          m.m_outcome
          (if m.m_late_ack then " late-ack" else "")
          (if m.m_late_prog then " late-progress" else "");
        List.iter
          (fun sp ->
            let phase =
              match
                Option.bind (List.assoc_opt "phase" sp.s_attrs) Json.to_int
              with
              | Some p -> Fmt.str " phase=%d" p
              | None -> ""
            in
            let epoch =
              match
                Option.bind (List.assoc_opt "epoch" sp.s_attrs) Json.to_int
              with
              | Some e -> Fmt.str " epoch=%d" e
              | None -> ""
            in
            Fmt.pf ppf "    %-13s [%d, %s]%s%s@." sp.s_name sp.s_start
              (match sp.s_end with
               | Some e -> string_of_int e
               | None -> "open")
              epoch phase)
          (overlapping r m))
      r.flagged
  end
