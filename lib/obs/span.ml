(* Causal spans: the per-message half of the observability layer.

   A span is an interval of engine slots with a name, an optional parent,
   attributes, and slot-stamped annotations.  [Combined_mac.bcast] opens a
   root span per message; the Hm_ack and Approx_progress machines hang
   epoch/phase/stage children off it, so a dump reconstructs where a
   message spent its slots (see DESIGN.md "Causal tracing").

   Like Metrics, the whole subsystem sits behind one process-global atomic
   flag: with tracing off, [start] returns [none] without allocating and
   every other operation is a load-and-branch (or an integer compare
   against [none]), so the hooks can live inside per-slot kernels.

   Finished spans and loose events land in a bounded ring (the flight
   recorder's storage): the last [capacity] entries are retained, older
   ones are overwritten and counted in [dropped].  Spans still open live
   in a side table until [finish] moves them into the ring, so a dump can
   also show what was in flight at the moment of failure.

   Domain safety mirrors Metrics: the id counter and enable flag are
   atomic, everything else is guarded by one mutex.  Tracing is intended
   for single-run debugging, not for [Sweep.grid] fan-outs — all domains
   share the one ring. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let is_enabled () = Atomic.get on

let with_enabled f =
  let prev = Atomic.get on in
  Atomic.set on true;
  Fun.protect ~finally:(fun () -> Atomic.set on prev) f

type id = int

let none : id = 0

type t = {
  id : id;
  parent : id;  (* [none] for roots *)
  name : string;
  start_slot : int;
  mutable end_slot : int;  (* -1 while open *)
  mutable attrs : (string * Json.t) list;  (* newest first *)
  mutable notes : (int * string) list;  (* (slot, text), newest first *)
}

type entry = Span_entry of t | Event_entry of { slot : int; body : Json.t }

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Span ids are process-unique and never reused, so a dump's parent links
   are unambiguous even across [clear]s. *)
let next_id = Atomic.make 1
let active : (id, t) Hashtbl.t = Hashtbl.create 64

let default_capacity = 32_768

(* The ring: [head] is the next write position, [size] the live prefix. *)
let ring = ref (Array.make default_capacity None)
let head = ref 0
let size = ref 0
let dropped = ref 0

let set_capacity cap =
  let cap = max 16 cap in
  locked (fun () ->
    ring := Array.make cap None;
    head := 0;
    size := 0;
    dropped := 0)

let capacity () = locked (fun () -> Array.length !ring)

let clear () =
  locked (fun () ->
    Array.fill !ring 0 (Array.length !ring) None;
    head := 0;
    size := 0;
    dropped := 0;
    Hashtbl.reset active)

(* Caller holds the mutex. *)
let push e =
  let r = !ring in
  let cap = Array.length r in
  if !size = cap then incr dropped else incr size;
  r.(!head) <- Some e;
  head := (!head + 1) mod cap

let record_event ~slot body =
  if Atomic.get on then
    locked (fun () -> push (Event_entry { slot; body }))

(* Ambient context: attributes stamped onto every span opened while the
   context is set.  The daemon's runner scopes a [("job_id", ...)] pair
   around each job so every span opened inside the job's cells — engine,
   MAC, physics — carries the job identity without threading it through
   the whole call stack.  One atomic load on [start] when tracing is on;
   nothing at all when it is off. *)
let context : (string * Json.t) list Atomic.t = Atomic.make []

let set_context attrs = Atomic.set context attrs

let with_context attrs f =
  let prev = Atomic.get context in
  Atomic.set context (attrs @ prev);
  Fun.protect ~finally:(fun () -> Atomic.set context prev) f

let start ?(parent = none) ~name ~slot () =
  if not (Atomic.get on) then none
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let sp =
      { id; parent; name; start_slot = slot; end_slot = -1;
        attrs = Atomic.get context; notes = [] }
    in
    locked (fun () -> Hashtbl.replace active id sp);
    id
  end

let set_attr id key v =
  if id <> none then
    locked (fun () ->
      match Hashtbl.find_opt active id with
      | Some sp -> sp.attrs <- (key, v) :: List.remove_assoc key sp.attrs
      | None -> ())

let annotate id ~slot text =
  if id <> none then
    locked (fun () ->
      match Hashtbl.find_opt active id with
      | Some sp -> sp.notes <- (slot, text) :: sp.notes
      | None -> ())

(* [finish] works even with tracing switched off mid-run, so spans opened
   under the flag cannot leak in the active table. *)
let finish id ~slot =
  if id <> none then
    locked (fun () ->
      match Hashtbl.find_opt active id with
      | Some sp ->
        sp.end_slot <- slot;
        Hashtbl.remove active id;
        push (Span_entry sp)
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Reading (for Recorder and tests)                                    *)
(* ------------------------------------------------------------------ *)

let entries () =
  locked (fun () ->
    let r = !ring in
    let cap = Array.length r in
    let n = !size in
    let first = (!head - n + cap) mod cap in
    List.init n (fun i ->
      match r.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false))

let open_spans () =
  locked (fun () -> Hashtbl.fold (fun _ sp acc -> sp :: acc) active [])
  |> List.sort (fun a b ->
    match compare a.start_slot b.start_slot with
    | 0 -> compare a.id b.id
    | c -> c)

let dropped_count () = locked (fun () -> !dropped)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let span_to_json sp =
  Json.Obj
    [ ("kind", Json.Str "span");
      ("id", Json.int sp.id);
      ("parent", if sp.parent = none then Json.Null else Json.int sp.parent);
      ("name", Json.Str sp.name);
      ("start", Json.int sp.start_slot);
      ("end", if sp.end_slot < 0 then Json.Null else Json.int sp.end_slot);
      ("attrs", Json.Obj (List.rev sp.attrs));
      ("notes",
       Json.List
         (List.rev_map
            (fun (slot, text) ->
              Json.List [ Json.int slot; Json.Str text ])
            sp.notes)) ]

let entry_to_json = function
  | Span_entry sp -> span_to_json sp
  | Event_entry { slot; body } ->
    (* Flatten object bodies so event lines read like Trace JSONL with a
       kind discriminator; non-object bodies keep their own field. *)
    let fields =
      match body with
      | Json.Obj fs -> fs
      | other -> [ ("body", other) ]
    in
    Json.Obj
      (("kind", Json.Str "event") :: ("slot", Json.int slot) :: fields)
