(** Serialise metric snapshots to JSONL and Prometheus text exposition. *)

val snapshot_to_json : ?label:string -> Metrics.snapshot -> Json.t
val snapshot_to_jsonl : ?label:string -> Metrics.snapshot -> string
(** One newline-terminated JSON object: [{"label": ..., "metrics": {...}}]. *)

val snapshot_of_json : Json.t -> Metrics.snapshot option
(** Inverse of {!snapshot_to_json} (up to float formatting); [None] if the
    document does not have the expected shape. *)

val snapshot_to_prometheus : Metrics.snapshot -> string
(** Prometheus text format (exposition 0.0.4): counters and gauges as single
    samples, histograms as summaries ([_count], [_sum],
    [{quantile="..."}]). Dots in metric names become underscores; each
    family is introduced by [# HELP]/[# TYPE] exactly once, even when
    distinct dotted names collapse to the same exposition name. *)

val prom_escape_label : string -> string
(** Escape a label value for the exposition format: backslash, double quote
    and newline become backslash-escaped sequences. *)

val prom_escape_help : string -> string
(** Escape HELP text: backslash and newline (quotes are legal in HELP). *)

val write_file : string -> string -> unit
(** Atomic replace: writes a sibling temp file and [rename]s it over
    [path], so readers and interrupted runs never see a torn file. *)

val append_line : string -> string -> unit
(** Append one line (newline added if missing) — the JSONL accumulation
    primitive. *)

val write_snapshot : ?label:string -> string -> Metrics.snapshot -> unit
(** [write_snapshot path snap] = {!write_file} of {!snapshot_to_jsonl}. *)

val pp_snapshot : Metrics.snapshot Fmt.t
(** Human-readable table, one metric per line. *)
