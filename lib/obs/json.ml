(* A deliberately small JSON layer: enough to serialise metric snapshots and
   trace events to JSONL and to parse them back (the round-trip is tested).
   No opam dependency carries its weight for the flat, machine-generated
   documents the telemetry sink emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_string = function Str s -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_nan f then Buffer.add_string buf "null"
  else if f = infinity then Buffer.add_string buf "1e999"
  else if f = neg_infinity then Buffer.add_string buf "-1e999"
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string_json j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let len = String.length word in
  if
    cur.pos + len <= String.length cur.s
    && String.sub cur.s cur.pos len = word
  then begin
    cur.pos <- cur.pos + len;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char buf '"'; advance cur; go ()
       | Some '\\' -> Buffer.add_char buf '\\'; advance cur; go ()
       | Some '/' -> Buffer.add_char buf '/'; advance cur; go ()
       | Some 'n' -> Buffer.add_char buf '\n'; advance cur; go ()
       | Some 'r' -> Buffer.add_char buf '\r'; advance cur; go ()
       | Some 't' -> Buffer.add_char buf '\t'; advance cur; go ()
       | Some 'b' -> Buffer.add_char buf '\b'; advance cur; go ()
       | Some 'f' -> Buffer.add_char buf '\012'; advance cur; go ()
       | Some 'u' ->
         advance cur;
         if cur.pos + 4 > String.length cur.s then fail cur "bad \\u escape";
         let hex = String.sub cur.s cur.pos 4 in
         cur.pos <- cur.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> fail cur "bad \\u escape"
         in
         (* Emit UTF-8 for the BMP code point; surrogate pairs of exotic
            input collapse to their raw code units, which is fine for the
            ASCII-only documents this sink produces. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end;
         go ()
       | _ -> fail cur "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail cur (Printf.sprintf "bad number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws cur;
        expect cur '"';
        let key = parse_string_body cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((key, v) :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' ->
    advance cur;
    Str (parse_string_body cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let parse s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None
