(* Deterministic, splittable random streams.

   Every randomized component in this project draws from an explicit [Rng.t]
   so that simulations are reproducible from a single integer seed and so
   that independent components (e.g. each node of a network) can own
   statistically independent streams derived from the parent seed. *)

type t = { state : Random.State.t; seed : int }

let create seed = { state = Random.State.make [| seed |]; seed }

let seed t = t.seed

(* Mix two integers into a new seed.  A fixed odd multiplier with xor-shift
   finalization (SplitMix64-style) keeps derived streams well separated even
   for consecutive keys. *)
let mix a b =
  let h = ref (a * 0x9E3779B1 + b + 0x85EBCA6B) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x21F0AAAD;
  h := !h lxor (!h lsr 15);
  h := !h * 0x735A2D97;
  h := !h lxor (!h lsr 15);
  !h land max_int

let split t ~key = create (mix t.seed key)

let split_name t ~name = split t ~key:(Hashtbl.hash name)

let int t bound = Random.State.int t.state bound

let float t bound = Random.State.float t.state bound

let bool t = Random.State.bool t.state

(* Bernoulli trial with success probability [p] (clamped to [0,1]). *)
let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t.state 1.0 < p

(* Uniform integer in the inclusive range [lo, hi]. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + Random.State.int t.state (hi - lo + 1)

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(Random.State.int t.state (Array.length arr))

(* ------------------------------------------------------------------ *)
(* Pure (stateless) hash draws                                         *)
(* ------------------------------------------------------------------ *)

(* Per-event draws keyed by integers, with no state allocation: the value
   depends only on (seed, k1, k2).  Channel perturbations (per-slot
   per-link fading, jamming phases) need millions of independent draws per
   run; materializing a [Random.State.t] for each would dominate the
   simulation, and sequential draws would make the value depend on
   evaluation order.  The quality of [mix]'s SplitMix-style finalizer is
   plenty for simulation noise. *)

let hash_unit t k1 k2 =
  float_of_int (mix (mix t.seed k1) k2) /. (float_of_int max_int +. 1.)

(* Standard normal from two independent hash draws (Box-Muller). *)
let hash_gaussian t k1 k2 =
  let u1 = Float.max 1e-12 (hash_unit t k1 (2 * k2)) in
  let u2 = hash_unit t k1 ((2 * k2) + 1) in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

(* Standard normal via Box-Muller; used for jittered placements. *)
let gaussian t =
  let u1 = max 1e-12 (Random.State.float t.state 1.0) in
  let u2 = Random.State.float t.state 1.0 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
