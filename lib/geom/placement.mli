(** Node placement generators.

    All generators maintain the paper's near-field normalization: pairwise
    distances are at least 1 (Section 4.2). The array index of a point is its
    node identifier throughout the project. *)

exception Placement_failed of string

val min_pairwise_dist : Point.t array -> float
(** Smallest pairwise distance ([infinity] for fewer than two points). *)

val max_pairwise_dist : Point.t array -> float
(** Largest pairwise distance (exhaustive; intended for test-sized inputs). *)

val translate : Point.t -> Point.t array -> Point.t array
val rescale : float -> Point.t array -> Point.t array

val uniform : Rng.t -> n:int -> box:Box.t -> min_dist:float -> Point.t array
(** [n] points uniform in [box] with pairwise distance at least [min_dist]
    (dart throwing). Raises {!Placement_failed} if the box is too crowded. *)

val uniform_stream :
  Rng.t -> n:int -> box:Box.t -> min_dist:float ->
  set:(int -> x:float -> y:float -> unit) ->
  x:(int -> float) -> y:(int -> float) -> unit
(** Streaming {!uniform} for the million-node path: accepted positions are
    written through [set] and read back through the unboxed [x]/[y]
    accessors (a [Phys.Soa] column store at the call sites), so no point
    is ever boxed and memory stays O(n) whatever the box size. The
    min-distance invariant holds by construction, so [Sinr.create_soa
    ~check:false] may skip validation. Raises {!Placement_failed} like
    {!uniform}. *)

val jittered_grid :
  Rng.t -> nx:int -> ny:int -> spacing:float -> jitter:float -> Point.t array
(** A grid of [nx*ny] points with per-point uniform jitter in
    [[-jitter, jitter]²]. Requires [2*jitter < spacing - 1] so that the
    min-distance-1 invariant holds. *)

val line : n:int -> spacing:float -> Point.t array
(** [n] collinear points, [spacing >= 1] apart: the diameter-sweep workload. *)

val line_with_blob :
  Rng.t -> line_n:int -> spacing:float -> blob_n:int -> blob_radius:float ->
  Point.t array
(** A line (controls diameter) plus a dense blob near its start (controls
    degree): lets experiments sweep D and Δ independently. *)

val clusters :
  Rng.t -> k:int -> per_cluster:int -> cluster_radius:float ->
  centers_box:Box.t -> Point.t array
(** [k] well-separated clusters of [per_cluster] points each — the workload
    for sweeping the distance ratio Λ. *)

(** {1 Lower-bound constructions} *)

type two_lines = {
  points : Point.t array;
  senders : int array;    (** the V line of Theorem 6.1 *)
  receivers : int array;  (** the U line; [receivers.(i)] pairs [senders.(i)] *)
  link_len : float;       (** separation of the two lines *)
}

val two_lines : delta:int -> spacing:float -> gap:float -> two_lines
(** Theorem 6.1 / Figure 1 construction: two parallel lines of [delta] nodes,
    separated by [gap] (the paper uses [gap = R₁₋ε = 10·delta]). *)

type two_balls = {
  points : Point.t array;
  ball1 : int array;  (** 2 nodes whose progress Decay starves *)
  ball2 : int array;  (** [delta] interfering nodes *)
}

val two_balls :
  Rng.t -> delta:int -> radius:float -> center_dist:float -> two_balls
(** Theorem 8.1 construction: a 2-node ball and a [delta]-node ball of radius
    [radius] (paper: R/4) with centers [center_dist] apart (paper: 2R).
    B1's nodes sit at opposite ends of their ball, distance [2·radius]. *)

type star = {
  points : Point.t array;
  hub : int;
  leaves : int array;
}

val star : Rng.t -> delta:int -> radius:float -> star
(** Remark 5.3 construction: a hub with [delta] leaves within [radius]. *)
