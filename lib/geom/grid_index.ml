(* Spatial hash grid over a fixed point set.

   Interference in the SINR formula is a global sum, but neighborhood
   queries (who is within distance r of p?) dominate graph construction and
   per-round bookkeeping.  Bucketing points into square cells of a chosen
   size makes range queries run in time proportional to the number of cells
   overlapping the query ball rather than to n. *)

type t = {
  cell : float;                       (* side length of a cell *)
  points : Point.t array;             (* indexed by node id *)
  buckets : (int, int list) Hashtbl.t;
}

(* Cell coordinates packed into one immediate int: no tuple boxed (and
   hashed as a block) per bucket lookup — range queries at placement /
   graph-construction scale do millions of them.  The packing is a hash,
   not an injection: cells 0x1fffff7 (~33M) rows apart may share a key,
   which merges their buckets.  Merged candidates still pass the exact
   distance check before being reported, and a query window would need
   ~33M cells on a side for two of *its* cells to collide (so no point is
   ever reported twice in practice) — collisions cost a comparison, not
   correctness. *)
let pack kx ky = (kx * 0x1fffff7) + ky

let key cell (p : Point.t) =
  pack
    (int_of_float (Float.floor (p.x /. cell)))
    (int_of_float (Float.floor (p.y /. cell)))

let create ~cell points =
  if cell <= 0. then invalid_arg "Grid_index.create: cell must be positive";
  let buckets = Hashtbl.create (max 16 (Array.length points)) in
  Array.iteri
    (fun i p ->
      let k = key cell p in
      let prev = Option.value (Hashtbl.find_opt buckets k) ~default:[] in
      Hashtbl.replace buckets k (i :: prev))
    points;
  { cell; points; buckets }

let cell_size t = t.cell

let point t i = t.points.(i)

let length t = Array.length t.points

(* Iterate over all point indices within Euclidean distance [r] of [p]
   (inclusive), visiting each exactly once. *)
let iter_within t ~center:(p : Point.t) ~r f =
  if r < 0. then ()
  else begin
    let cx_lo = int_of_float (Float.floor ((p.x -. r) /. t.cell)) in
    let cx_hi = int_of_float (Float.floor ((p.x +. r) /. t.cell)) in
    let cy_lo = int_of_float (Float.floor ((p.y -. r) /. t.cell)) in
    let cy_hi = int_of_float (Float.floor ((p.y +. r) /. t.cell)) in
    let r2 = r *. r in
    for cx = cx_lo to cx_hi do
      for cy = cy_lo to cy_hi do
        match Hashtbl.find_opt t.buckets (pack cx cy) with
        | None -> ()
        | Some ids ->
          List.iter
            (fun i -> if Point.dist2 t.points.(i) p <= r2 then f i)
            ids
      done
    done
  end

let within t ~center ~r =
  let acc = ref [] in
  iter_within t ~center ~r (fun i -> acc := i :: !acc);
  List.rev !acc

let nearest_other t i =
  let p = t.points.(i) in
  let best = ref (-1) and best_d2 = ref Float.infinity in
  (* Expand the search radius ring by ring until a hit is found. *)
  let rec search r =
    iter_within t ~center:p ~r (fun j ->
        if j <> i then begin
          let d2 = Point.dist2 t.points.(j) p in
          if d2 < !best_d2 then begin
            best := j;
            best_d2 := d2
          end
        end);
    if !best >= 0 && !best_d2 <= r *. r then Some (!best, sqrt !best_d2)
    else if r > 4. *. Box.diagonal (Box.of_points t.points) then None
    else search (2. *. r)
  in
  if Array.length t.points <= 1 then None else search t.cell
