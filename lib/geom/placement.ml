(* Node placement generators.

   The paper assumes nodes live in the Euclidean plane with pairwise distance
   at least 1 (the near-field normalization of Section 4.2).  Every generator
   here maintains that invariant.  Besides generic deployments (uniform,
   jittered grid, line, clusters) this module builds the exact worst-case
   constructions used by the paper's lower bounds:

   - [two_lines]  : Theorem 6.1 / Figure 1  (f_prog >= Delta),
   - [two_balls]  : Theorem 8.1             (Decay needs Omega(Delta log 1/eps)),
   - [star]       : Remark 5.3              (f_ack >= Delta). *)

let min_pairwise_dist pts =
  let n = Array.length pts in
  if n < 2 then Float.infinity
  else begin
    (* Grid-accelerated nearest-neighbor sweep: O(n) expected for the
       bounded-density point sets we generate. *)
    let best = ref Float.infinity in
    let cell =
      let b = Box.of_points pts in
      Float.max 1e-9 (Box.diagonal b /. Float.max 1. (sqrt (float_of_int n)))
    in
    let idx = Grid_index.create ~cell pts in
    Array.iteri
      (fun i _ ->
        match Grid_index.nearest_other idx i with
        | Some (_, d) -> if d < !best then best := d
        | None -> ())
      pts;
    !best
  end

let max_pairwise_dist pts =
  let n = Array.length pts in
  let best = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Point.dist pts.(i) pts.(j) in
      if d > !best then best := d
    done
  done;
  !best

let translate offset pts = Array.map (Point.add offset) pts

let rescale k pts = Array.map (Point.scale k) pts

exception Placement_failed of string

(* Dart throwing with a spatial grid for the min-distance check.  With cell
   size = min_dist, a conflicting earlier point must sit in one of the 3x3
   cells around the candidate. *)
let uniform rng ~n ~box ~min_dist =
  if min_dist <= 0. then invalid_arg "Placement.uniform: min_dist <= 0";
  let cell = min_dist in
  let buckets : (int * int, Point.t list) Hashtbl.t = Hashtbl.create (4 * n) in
  let key (p : Point.t) =
    (int_of_float (Float.floor (p.x /. cell)),
     int_of_float (Float.floor (p.y /. cell)))
  in
  let ok p =
    let kx, ky = key p in
    let clear = ref true in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt buckets (kx + dx, ky + dy) with
        | None -> ()
        | Some others ->
          List.iter
            (fun q -> if Point.dist q p < min_dist then clear := false)
            others
      done
    done;
    !clear
  in
  let pts = Array.make n Point.origin in
  let attempts_per_point = 200 in
  for i = 0 to n - 1 do
    let rec try_once k =
      if k = 0 then
        raise
          (Placement_failed
             (Fmt.str "uniform: could not place point %d of %d in %a \
                       with min_dist %.3g" (i + 1) n Box.pp box min_dist));
      let p = Box.sample rng box in
      if ok p then p else try_once (k - 1)
    in
    let p = try_once attempts_per_point in
    pts.(i) <- p;
    let k = key p in
    let prev = Option.value (Hashtbl.find_opt buckets k) ~default:[] in
    Hashtbl.replace buckets k (p :: prev)
  done;
  pts

(* Streaming dart throwing for the million-node path: accepted positions
   go straight to [set] (a column writer — Phys.Soa at the call sites)
   and are read back through the unboxed [x]/[y] accessors, so no
   [Point.t] is ever boxed and no point array materialized.  The
   min-distance grid is an int-chain over a single-int cell key: one
   [next] slot per node plus one hash entry per occupied cell, O(n)
   memory however large the box.  Distinct cells may share a key (the
   packing is a hash, not an injection); a collision only merges two
   chains, adding distance checks, never admitting a violating point.
   The invariant is guaranteed by construction, so [Sinr.create_soa
   ~check:false] can skip its O(n) validation pass. *)
let uniform_stream rng ~n ~box ~min_dist ~set ~x ~y =
  if min_dist <= 0. then invalid_arg "Placement.uniform_stream: min_dist <= 0";
  let cell = min_dist in
  let cell_key px py =
    let kx = int_of_float (Float.floor (px /. cell))
    and ky = int_of_float (Float.floor (py /. cell)) in
    (kx * 0x1fffff7) + ky
  in
  let heads : (int, int) Hashtbl.t = Hashtbl.create (4 * n) in
  let next = Array.make (max 1 n) (-1) in
  let md2 = min_dist *. min_dist in
  let chain_clear k px py =
    let rec walk id =
      id < 0
      || (let dx = x id -. px and dy = y id -. py in
          ((dx *. dx) +. (dy *. dy) >= md2 && walk next.(id)))
    in
    walk (Option.value (Hashtbl.find_opt heads k) ~default:(-1))
  in
  let ok px py =
    let clear = ref true in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        if !clear then
          let k =
            cell_key (px +. (float_of_int dx *. cell))
              (py +. (float_of_int dy *. cell))
          in
          if not (chain_clear k px py) then clear := false
      done
    done;
    !clear
  in
  let w = Box.width box and h = Box.height box in
  let xmin = box.Box.xmin and ymin = box.Box.ymin in
  let attempts_per_point = 200 in
  for i = 0 to n - 1 do
    let rec try_once k =
      if k = 0 then
        raise
          (Placement_failed
             (Fmt.str "uniform_stream: could not place point %d of %d in %a \
                       with min_dist %.3g" (i + 1) n Box.pp box min_dist));
      let px = xmin +. Rng.float rng w and py = ymin +. Rng.float rng h in
      if ok px py then (px, py) else try_once (k - 1)
    in
    let px, py = try_once attempts_per_point in
    set i ~x:px ~y:py;
    let k = cell_key px py in
    next.(i) <- Option.value (Hashtbl.find_opt heads k) ~default:(-1);
    Hashtbl.replace heads k i
  done

let jittered_grid rng ~nx ~ny ~spacing ~jitter =
  if spacing <= 0. then invalid_arg "Placement.jittered_grid: spacing <= 0";
  if jitter < 0. || 2. *. jitter >= spacing -. 1. then
    invalid_arg "Placement.jittered_grid: jitter too large for min distance 1";
  let pts = Array.make (nx * ny) Point.origin in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      let dx = Rng.float rng (2. *. jitter) -. jitter in
      let dy = Rng.float rng (2. *. jitter) -. jitter in
      pts.((ix * ny) + iy) <-
        Point.make ((float_of_int ix *. spacing) +. dx)
          ((float_of_int iy *. spacing) +. dy)
    done
  done;
  pts

let line ~n ~spacing =
  if spacing < 1. then invalid_arg "Placement.line: spacing < 1";
  Array.init n (fun i -> Point.make (float_of_int i *. spacing) 0.)

(* A long line with a dense blob at one end: the classic workload for
   sweeping diameter D and degree Delta independently (Table 2 bench). *)
let line_with_blob rng ~line_n ~spacing ~blob_n ~blob_radius =
  let backbone = line ~n:line_n ~spacing in
  let blob_box =
    Box.make ~xmin:(-.blob_radius) ~ymin:1.5 ~xmax:blob_radius
      ~ymax:(1.5 +. (2. *. blob_radius))
  in
  let blob = uniform rng ~n:blob_n ~box:blob_box ~min_dist:1. in
  Array.append backbone blob

let clusters rng ~k ~per_cluster ~cluster_radius ~centers_box =
  if cluster_radius < 1. then
    invalid_arg "Placement.clusters: cluster_radius < 1";
  let all = ref [] in
  let attempts = ref 0 in
  while List.length !all < k && !attempts < 1000 do
    incr attempts;
    let c = Box.sample rng centers_box in
    let far_enough =
      List.for_all
        (fun c' -> Point.dist c c' >= 4. *. cluster_radius)
        !all
    in
    if far_enough then all := c :: !all
  done;
  if List.length !all < k then
    raise (Placement_failed "clusters: could not separate cluster centers");
  let groups =
    List.map
      (fun (c : Point.t) ->
        let b =
          Box.make ~xmin:(c.x -. cluster_radius) ~ymin:(c.y -. cluster_radius)
            ~xmax:(c.x +. cluster_radius) ~ymax:(c.y +. cluster_radius)
        in
        uniform rng ~n:per_cluster ~box:b ~min_dist:1.)
      !all
  in
  Array.concat groups

(* ------------------------------------------------------------------ *)
(* Lower-bound constructions                                           *)
(* ------------------------------------------------------------------ *)

type two_lines = {
  points : Point.t array;
  senders : int array;   (* the V line: v_1 ... v_delta *)
  receivers : int array; (* the U line: u_i is the unique G_{1-eps} partner of v_i *)
  link_len : float;      (* distance d(v_i, u_i) = separation of the lines *)
}

(* Theorem 6.1 / Figure 1: two parallel lines of [delta] nodes each, spacing
   [spacing] (>= 1) along each line, the lines separated by [gap].  In the
   paper gap = R_{1-eps} = 10*delta so that each v_i has exactly one
   cross-line neighbor u_i in G_{1-eps}, and any second concurrent sender
   kills every cross-line reception. *)
let two_lines ~delta ~spacing ~gap =
  if delta < 1 then invalid_arg "Placement.two_lines: delta < 1";
  if spacing < 1. then invalid_arg "Placement.two_lines: spacing < 1";
  let v = Array.init delta (fun i -> Point.make (float_of_int i *. spacing) 0.) in
  let u =
    Array.init delta (fun i -> Point.make (float_of_int i *. spacing) gap)
  in
  { points = Array.append v u;
    senders = Array.init delta Fun.id;
    receivers = Array.init delta (fun i -> delta + i);
    link_len = gap }

type two_balls = {
  points : Point.t array;
  ball1 : int array; (* the 2-node ball where progress is starved *)
  ball2 : int array; (* the delta-node interfering ball *)
}

(* Theorem 8.1: ball B1 with 2 nodes and ball B2 with [delta] nodes, ball
   radius [radius] (paper: R/4), centers at distance [center_dist]
   (paper: 2R).  Decay's probability sweep lets B2 drown B1 exactly when
   B1's nodes are likely to transmit.  B1's two nodes sit at opposite ends
   of their ball (distance 2*radius = R/2) so that, as in the paper, every
   relevant distance is Theta(R) and the cross-ball interference actually
   competes with the intra-B1 signal. *)
let two_balls rng ~delta ~radius ~center_dist =
  if delta < 1 then invalid_arg "Placement.two_balls: delta < 1";
  if center_dist <= 2. *. radius then
    invalid_arg "Placement.two_balls: balls overlap";
  if 2. *. radius < 1. then
    invalid_arg "Placement.two_balls: radius too small for min distance 1";
  let c2 = Point.make center_dist 0. in
  let ball_box (c : Point.t) =
    Box.make ~xmin:(c.x -. radius) ~ymin:(c.y -. radius) ~xmax:(c.x +. radius)
      ~ymax:(c.y +. radius)
  in
  let sample_ball c n =
    (* Rejection-sample the box down to the disc, keeping min distance 1. *)
    let pts = ref [] in
    let tries = ref 0 in
    while List.length !pts < n && !tries < 20000 do
      incr tries;
      let p = Box.sample rng (ball_box c) in
      if Point.dist p c <= radius
         && List.for_all (fun q -> Point.dist p q >= 1.) !pts
      then pts := p :: !pts
    done;
    if List.length !pts < n then
      raise (Placement_failed "two_balls: ball too small for node count");
    Array.of_list !pts
  in
  let b1 = [| Point.make (-.radius) 0.; Point.make radius 0. |] in
  let b2 = sample_ball c2 delta in
  { points = Array.append b1 b2;
    ball1 = [| 0; 1 |];
    ball2 = Array.init delta (fun i -> 2 + i) }

type star = {
  points : Point.t array;
  hub : int;
  leaves : int array;
}

(* Remark 5.3: a hub with [delta] leaves inside radius [radius]; when every
   leaf broadcasts, the hub can decode at most one message per slot, so any
   correct ack implementation needs >= delta slots. *)
let star rng ~delta ~radius =
  if delta < 1 then invalid_arg "Placement.star: delta < 1";
  if radius < 2. then invalid_arg "Placement.star: radius too small";
  let leaves = Array.make delta Point.origin in
  let placed = ref [] in
  let tries = ref 0 in
  let i = ref 0 in
  while !i < delta && !tries < 50000 do
    incr tries;
    let theta = Rng.float rng (2. *. Float.pi) in
    let r = 1.5 +. Rng.float rng (radius -. 1.5) in
    let p = Point.on_circle ~center:Point.origin ~r ~theta in
    if List.for_all (fun q -> Point.dist p q >= 1.) !placed then begin
      leaves.(!i) <- p;
      placed := p :: !placed;
      incr i
    end
  done;
  if !i < delta then raise (Placement_failed "star: radius too small for delta");
  { points = Array.append [| Point.origin |] leaves;
    hub = 0;
    leaves = Array.init delta (fun j -> 1 + j) }
