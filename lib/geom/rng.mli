(** Deterministic, splittable random streams.

    All randomized algorithms in this project are parameterized by an explicit
    stream so that experiments are reproducible from a single seed, and so
    that per-node streams are statistically independent of each other. *)

type t

val create : int -> t
(** [create seed] makes a fresh stream deterministically from [seed]. *)

val seed : t -> int
(** The seed this stream was created from. *)

val split : t -> key:int -> t
(** [split t ~key] derives an independent child stream. Distinct keys give
    decorrelated streams; the same [(seed, key)] pair always yields the same
    stream. Splitting does not advance the parent. *)

val split_name : t -> name:string -> t
(** [split_name t ~name] is [split t ~key:(Hashtbl.hash name)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0, 1]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val hash_unit : t -> int -> int -> float
(** [hash_unit t k1 k2] is a uniform draw in [0, 1) that depends only on
    [(seed t, k1, k2)] — a pure hash, no state, no draw order. Intended for
    per-event randomness indexed by integers (e.g. per-slot per-link
    channel noise), where sequential draws would make results depend on
    evaluation order. *)

val hash_gaussian : t -> int -> int -> float
(** Standard normal deviate from two {!hash_unit} draws; pure in
    [(seed t, k1, k2)]. *)
