(** Checkpointing sweep runner: drives one {!Queue.job} through
    [Sweep.run_cursor], snapshotting completed cells to an atomic JSONL
    checkpoint every [checkpoint_every] cells and restoring them on the
    next attempt.

    {b Bit-identity.} Cells are pure in [(param, seed)] and cell JSON
    prints byte-stably through parse/print, so a job killed and resumed
    any number of times yields a final table byte-identical to an
    uninterrupted run, whatever the [jobs] setting. Checkpoint matching
    compares the grid identity (exp, params, seeds) and ignores the
    execution knobs (jobs, tag).

    Metrics: [serve.cells.done], [serve.checkpoints],
    [serve.resume.cells] — each also bumped as a labeled
    [{job_id="<id>"}] child so [/jobs/:id/metrics] can serve a per-job
    scope. Every span opened during an attempt (including inside cells,
    on pool worker domains) carries a [job_id] attribute via
    {!Sinr_obs.Span.with_context}. *)

open Sinr_expt
open Sinr_obs

val checkpoint_path : dir:string -> Queue.job -> string
(** [<dir>/serve-<tag>.ckpt.jsonl], tag defaulting to [job<id>]. *)

val checkpoint_string : Spec.t -> (int, Json.t) Sweep.cursor -> string
(** Header line [{"serve_checkpoint":1,"spec":{...}}] then one
    [{"param":..,"seed":..,"cell":..}] line per completed cell. *)

val save : path:string -> Spec.t -> (int, Json.t) Sweep.cursor -> unit
(** Atomic write ({!Sink.write_file}) of {!checkpoint_string}. *)

val restore : path:string -> Spec.t -> (int, Json.t) Sweep.cursor -> int
(** Fill the cursor from a checkpoint; returns cells restored. Missing
    file, foreign spec, or malformed lines restore nothing/skip. *)

val table_json : Registry.t -> Spec.t -> (int, Json.t) Sweep.cursor -> Json.t
(** The final table: [{"exp","param_name","seeds","rows":[{"param","cells"}]}].
    Raises if the cursor is incomplete. *)

val run_job :
  ?checkpoint_every:int -> ?should_stop:(unit -> bool)
  -> ?wrap_cell:
       (param:int -> seed:int
        -> cell:(int -> int -> Sinr_obs.Json.t) -> Sinr_obs.Json.t)
  -> ?on_fail:(string -> unit) -> ?on_checkpoint:(cells:int -> unit)
  -> ?notify:(typ:string -> Json.t -> unit)
  -> dir:string -> Queue.t -> Queue.job -> unit
(** Run (or resume) one job to a terminal state — or back to Queued if
    [should_stop] fired without the job's cancel flag (drain). Cell
    exceptions mark the job Failed; the checkpoint survives either way.

    Supervision hooks: [wrap_cell] interposes on every cell evaluation
    (the supervisor times cells and raises on budget overrun); [on_fail]
    replaces the default [Failed] disposition — the supervisor decides
    retry vs quarantine and must settle the job before returning;
    [on_checkpoint] fires after each checkpoint lands (the supervisor
    WAL-logs progress).

    [notify] feeds the event stream: ["cell"] start/done around every
    cell (fired from pool worker domains), ["checkpoint"] after each
    checkpoint, and ["row"] with the full cell payload the moment a
    param's last seed lands — cells in seed order, byte-identical to the
    matching {!table_json} row. *)
