(* Checkpointing sweep runner: one [Queue.job] driven through
   [Sweep.run_cursor] with the completed cells snapshotted to disk every
   [checkpoint_every] cells.

   Checkpoint file (JSONL, written atomically via [Sink.write_file]):

     {"serve_checkpoint":1,"spec":{...}}          header
     {"param":4,"seed":1,"cell":{...}}            one line per done cell
     ...

   Resume contract: cells are pure in (param, seed) and cell JSON prints
   byte-stably through a parse/print round trip, so a killed job restored
   from its checkpoint produces a final table bit-identical to an
   uninterrupted run — whatever the jobs setting, chunk size or number of
   interruptions.  The spec match deliberately ignores the [jobs] and
   [tag] fields: they steer execution, not results. *)

open Sinr_expt
open Sinr_obs

let m_cells = Metrics.counter "serve.cells.done"
let m_checkpoints = Metrics.counter "serve.checkpoints"
let m_resumed = Metrics.counter "serve.resume.cells"

let tag_of (job : Queue.job) =
  match job.Queue.spec.Spec.tag with
  | Some t -> t
  | None -> Printf.sprintf "job%d" job.Queue.id

let checkpoint_path ~dir (job : Queue.job) =
  Filename.concat dir (Printf.sprintf "serve-%s.ckpt.jsonl" (tag_of job))

(* Identity for checkpoint matching: the grid, not the knobs. *)
let spec_matches (a : Spec.t) (b : Spec.t) =
  a.Spec.exp = b.Spec.exp
  && a.Spec.params = b.Spec.params
  && a.Spec.seeds = b.Spec.seeds

let checkpoint_string (spec : Spec.t) cursor =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Json.to_string_json
       (Json.Obj
          [ ("serve_checkpoint", Json.int 1);
            ("spec", Spec.to_json spec) ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun (p, s, cell) ->
      Buffer.add_string buf
        (Json.to_string_json
           (Json.Obj
              [ ("param", Json.int p); ("seed", Json.int s);
                ("cell", cell) ]));
      Buffer.add_char buf '\n')
    (Sweep.completed_cells cursor);
  Buffer.contents buf

let save ~path spec cursor =
  Sink.write_file path (checkpoint_string spec cursor);
  Metrics.incr m_checkpoints

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Restore completed cells into [cursor]; the count restored.  A missing
   file, foreign spec or malformed header restores nothing; malformed or
   out-of-grid cell lines are skipped individually ([Sweep.record] already
   rejects foreign cells). *)
let restore ~path spec cursor =
  match read_lines path with
  | exception Sys_error _ -> 0
  | [] -> 0
  | header :: cells -> (
    match Json.parse_opt header with
    | None -> 0
    | Some h -> (
      match
        ( Option.bind (Json.member "serve_checkpoint" h) Json.to_int,
          Option.map Spec.of_json (Json.member "spec" h) )
      with
      | Some 1, Some (Ok ck_spec) when spec_matches spec ck_spec ->
        List.fold_left
          (fun acc line ->
            match Json.parse_opt line with
            | None -> acc
            | Some j -> (
              match
                ( Option.bind (Json.member "param" j) Json.to_int,
                  Option.bind (Json.member "seed" j) Json.to_int,
                  Json.member "cell" j )
              with
              | Some p, Some s, Some cell ->
                if Sweep.record cursor p s cell then acc + 1 else acc
              | _ -> acc))
          0 cells
      | _ -> 0))

let partial_json cursor =
  Json.Obj
    [ ("done", Json.int (Sweep.completed cursor));
      ("total", Json.int (Sweep.total cursor));
      ( "cells",
        Json.List
          (List.map
             (fun (p, s, cell) ->
               Json.Obj
                 [ ("param", Json.int p); ("seed", Json.int s);
                   ("cell", cell) ])
             (Sweep.completed_cells cursor)) ) ]

let table_json (reg : Registry.t) (spec : Spec.t) cursor =
  Json.Obj
    [ ("exp", Json.Str spec.Spec.exp);
      ("param_name", Json.Str reg.Registry.param_name);
      ("seeds", Json.List (List.map Json.int spec.Spec.seeds));
      ( "rows",
        Json.List
          (List.map
             (fun (p, cells) ->
               Json.Obj
                 [ ("param", Json.int p); ("cells", Json.List cells) ])
             (Sweep.results cursor)) ) ]

let run_job ?(checkpoint_every = 4) ?(should_stop = fun () -> false)
    ?wrap_cell ?on_fail ?on_checkpoint ?notify ~dir queue (job : Queue.job) =
  let spec = job.Queue.spec in
  let jid = job.Queue.id in
  (* Ambient job identity: every span opened for the rest of this attempt
     — including engine/MAC/physics spans opened on pool worker domains
     inside cells — carries a job_id attribute, so /spans?job=N and
     trace-report --job isolate one job's trace. *)
  Span.with_context [ ("job_id", Json.int jid) ] @@ fun () ->
  let emit typ body =
    match notify with None -> () | Some f -> f ~typ body
  in
  (* Per-job labeled children of the process-global counters: interned
     once per attempt (registry get-or-create), bumped alongside their
     unlabeled parents, scraped scoped at /jobs/:id/metrics. *)
  let jlabels = Metrics.labels [ ("job_id", string_of_int jid) ] in
  let mj_cells = Metrics.counter_with "serve.cells.done" jlabels in
  let mj_checkpoints = Metrics.counter_with "serve.checkpoints" jlabels in
  let mj_resumed = Metrics.counter_with "serve.resume.cells" jlabels in
  let span = Span.start ~name:"serve.job" ~slot:0 () in
  Span.set_attr span "job" (Json.int job.Queue.id);
  Span.set_attr span "exp" (Json.Str spec.Spec.exp);
  Span.set_attr span "cells" (Json.int job.Queue.cells_total);
  let finish_span () =
    Span.set_attr span "state" (Json.Str (Queue.state_name job.Queue.state));
    Span.finish span ~slot:job.Queue.cells_done
  in
  (* Unsupervised, a failure is terminal; under a supervisor, [on_fail]
     owns the disposition (retry with backoff, or quarantine) and must
     leave the job in a settled state before returning. *)
  let fail msg =
    match on_fail with
    | Some f -> f msg
    | None -> Queue.finish queue job (`Failed msg)
  in
  match Registry.resolve spec with
  | Error msg ->
    (* admission validates, so only a registry change mid-flight lands here *)
    fail msg;
    finish_span ()
  | Ok reg -> (
    let cursor =
      Sweep.cursor ~params:spec.Spec.params ~seeds:spec.Spec.seeds
    in
    let path = checkpoint_path ~dir job in
    let save_ck c =
      save ~path spec c;
      Metrics.incr mj_checkpoints
    in
    let restored = restore ~path spec cursor in
    if restored > 0 then begin
      job.Queue.restored <- restored;
      Metrics.add m_resumed restored;
      Metrics.add mj_resumed restored;
      Span.annotate span ~slot:restored
        (Printf.sprintf "restored %d cells from %s" restored path);
      Queue.progress queue job ~cells_done:restored
        ~partial:(partial_json cursor)
    end;
    (* Row announcements: a param's row is complete once all its seeds'
       cells are in.  Cells come back in canonical grid order, so the
       reassembled row is byte-identical to the matching [table_json]
       row — a watch client can rebuild the final table from row events
       alone. *)
    let seeds_n = List.length spec.Spec.seeds in
    let announced : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let publish_rows c =
      if notify <> None then begin
        let by_param : (int, Json.t list) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (p, _s, cell) ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt by_param p)
            in
            Hashtbl.replace by_param p (cell :: prev))
          (Sweep.completed_cells c);
        List.iter
          (fun p ->
            if not (Hashtbl.mem announced p) then
              match Hashtbl.find_opt by_param p with
              | Some cells when List.length cells = seeds_n ->
                Hashtbl.replace announced p ();
                emit "row"
                  (Json.Obj
                     [ ("job_id", Json.int jid); ("param", Json.int p);
                       ("cells", Json.List (List.rev cells)) ])
              | _ -> ())
          spec.Spec.params
      end
    in
    let counted = ref restored in
    let on_chunk c =
      save_ck c;
      let done_now = Sweep.completed c in
      Metrics.add m_cells (done_now - !counted);
      Metrics.add mj_cells (done_now - !counted);
      counted := done_now;
      Queue.progress queue job ~cells_done:done_now ~partial:(partial_json c);
      emit "checkpoint"
        (Json.Obj
           [ ("job_id", Json.int jid); ("cells_done", Json.int done_now);
             ("cells_total", Json.int job.Queue.cells_total) ]);
      publish_rows c;
      Option.iter (fun f -> f ~cells:done_now) on_checkpoint
    in
    let stop () = should_stop () || Atomic.get job.Queue.cancel in
    let cell =
      let base p s = reg.Registry.cell ~param:p ~seed:s in
      let base =
        match wrap_cell with
        | None -> base
        | Some w -> fun p s -> w ~param:p ~seed:s ~cell:base
      in
      match notify with
      | None -> base
      | Some _ ->
        (* cell events fire from pool worker domains; the broker is
           domain-safe and never blocks the worker *)
        fun p s ->
          let cell_ev phase =
            Json.Obj
              [ ("job_id", Json.int jid); ("param", Json.int p);
                ("seed", Json.int s); ("phase", Json.Str phase) ]
          in
          emit "cell" (cell_ev "start");
          let v = base p s in
          emit "cell" (cell_ev "done");
          v
    in
    match
      Sweep.run_cursor ?jobs:spec.Spec.jobs ~chunk:checkpoint_every
        ~should_stop:stop ~on_chunk cursor cell
    with
    | `Complete ->
      (* an all-restored grid never fires on_chunk; normalize the file *)
      if Sweep.completed cursor = restored then save_ck cursor;
      publish_rows cursor;
      Queue.finish queue job (`Done (table_json reg spec cursor));
      finish_span ()
    | `Stopped ->
      save_ck cursor;
      if Atomic.get job.Queue.cancel then
        Queue.finish queue job `Cancelled
      else Queue.requeue queue job;
      finish_span ()
    | exception exn ->
      save_ck cursor;
      fail (Printexc.to_string exn);
      finish_span ())
