(* Bounded job queue with the daemon's admission control.

   Depth counts Queued plus Running jobs: the pool runs one sweep at a
   time, so a Running job means the pool is saturated and everything
   behind it is waiting — both belong in the backpressure figure.  When
   depth reaches the cap, [submit] rejects and the HTTP layer turns that
   into a 429 rather than letting clients build an unbounded backlog.

   All state transitions happen under one mutex; the only lock-free piece
   is each job's [cancel] flag, which the runner polls from inside the
   sweep at cell boundaries. *)

open Sinr_obs

let m_submitted = Metrics.counter "serve.jobs.submitted"
let m_rejected = Metrics.counter "serve.jobs.rejected"
let m_completed = Metrics.counter "serve.jobs.completed"
let m_failed = Metrics.counter "serve.jobs.failed"
let m_cancelled = Metrics.counter "serve.jobs.cancelled"
let m_recovered = Metrics.counter "serve.jobs.recovered"
let m_retry_scheduled = Metrics.counter "serve.retry.scheduled"
let m_quarantined = Metrics.counter "serve.quarantine.jobs"
let g_depth = Metrics.gauge "serve.queue.depth"

type state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

type job = {
  id : int;
  spec : Spec.t;
  cells_total : int;
  submitted_at : float;
  cancel : bool Atomic.t;
  mutable state : state;
  mutable cells_done : int;
  mutable restored : int;
  mutable attempts : int;
  mutable not_before : float;
  mutable quarantined : bool;
  mutable dump : string option;
  mutable partial : Json.t option;
  mutable table : Json.t option;
  mutable error : string option;
  mutable finished_at : float option;
}

type t = {
  mutex : Mutex.t;
  max_queued : int;
  mutable next_id : int;
  mutable entries : job list; (* newest first; [jobs] reverses *)
  mutable notify : (job -> unit) option;
      (* state-transition hook, fired under the mutex so observers see
         transitions in commit order; must not call back into the queue *)
}

let create ?(max_queued = 8) () =
  { mutex = Mutex.create ();
    max_queued = max 1 max_queued;
    next_id = 1;
    entries = [];
    notify = None }

let on_transition t f = t.notify <- Some f

(* Caller holds the mutex; exceptions in the hook must not poison a
   transition. *)
let notify_locked t job =
  match t.notify with
  | None -> ()
  | Some f -> ( try f job with _ -> ())

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let depth_locked t =
  List.length
    (List.filter (fun j -> j.state = Queued || j.state = Running) t.entries)

let set_depth_gauge t = Metrics.set g_depth (float_of_int (depth_locked t))

let depth t = locked t (fun () -> depth_locked t)
let max_queued t = t.max_queued

let submit t spec =
  locked t (fun () ->
      let d = depth_locked t in
      if d >= t.max_queued then begin
        Metrics.incr m_rejected;
        Error (`Backpressure d)
      end
      else begin
        let job =
          { id = t.next_id;
            spec;
            cells_total = Spec.cells spec;
            submitted_at = Unix.gettimeofday ();
            cancel = Atomic.make false;
            state = Queued;
            cells_done = 0;
            restored = 0;
            attempts = 0;
            not_before = 0.;
            quarantined = false;
            dump = None;
            partial = None;
            table = None;
            error = None;
            finished_at = None }
        in
        t.next_id <- t.next_id + 1;
        t.entries <- job :: t.entries;
        Metrics.incr m_submitted;
        set_depth_gauge t;
        notify_locked t job;
        Ok job
      end)

(* WAL recovery: re-admit a job from a previous process with its id and
   strike count intact.  Bypasses the admission cap — these jobs were
   already admitted once, and refusing them would lose accepted work. *)
let recover t ~id ~spec ~attempts =
  locked t (fun () ->
      let job =
        { id;
          spec;
          cells_total = Spec.cells spec;
          submitted_at = Unix.gettimeofday ();
          cancel = Atomic.make false;
          state = Queued;
          cells_done = 0;
          restored = 0;
          attempts = max 0 attempts;
          not_before = 0.;
          quarantined = false;
          dump = None;
          partial = None;
          table = None;
          error = None;
          finished_at = None }
      in
      t.next_id <- max t.next_id (id + 1);
      (* keep entries newest-first by id so [jobs] lists submission order *)
      t.entries <-
        List.sort (fun a b -> compare b.id a.id) (job :: t.entries);
      Metrics.incr m_recovered;
      set_depth_gauge t;
      notify_locked t job;
      job)

let jobs t = locked t (fun () -> List.rev t.entries)

let find t id =
  locked t (fun () -> List.find_opt (fun j -> j.id = id) t.entries)

let take ?now t =
  let now = match now with Some f -> f | None -> Unix.gettimeofday () in
  locked t (fun () ->
      (* oldest runnable Queued first (entries are newest-first, so scan
         reversed); jobs inside their retry backoff window are skipped *)
      match
        List.find_opt
          (fun j -> j.state = Queued && j.not_before <= now)
          (List.rev t.entries)
      with
      | None -> None
      | Some j ->
        j.state <- Running;
        notify_locked t j;
        Some j)

let cancel t id =
  locked t (fun () ->
      match List.find_opt (fun j -> j.id = id) t.entries with
      | None -> `Not_found
      | Some j -> (
        match j.state with
        | Queued ->
          j.state <- Cancelled;
          j.finished_at <- Some (Unix.gettimeofday ());
          Metrics.incr m_cancelled;
          set_depth_gauge t;
          notify_locked t j;
          `Cancelled
        | Running ->
          Atomic.set j.cancel true;
          `Cancelling
        | Cancelled ->
          (* idempotent: cancelling a cancelled job is success, not
             conflict — retried DELETEs must converge *)
          `Already_cancelled
        | Done | Failed -> `Already_finished))

let progress t job ~cells_done ~partial =
  locked t (fun () ->
      job.cells_done <- cells_done;
      job.partial <- Some partial)

let finish t job outcome =
  locked t (fun () ->
      (match outcome with
       | `Done table ->
         job.state <- Done;
         job.table <- Some table;
         job.error <- None; (* a success after retries clears the scar *)
         Metrics.incr m_completed
       | `Failed msg ->
         job.state <- Failed;
         job.error <- Some msg;
         Metrics.incr m_failed
       | `Quarantined msg ->
         job.state <- Failed;
         job.quarantined <- true;
         job.error <- Some msg;
         Metrics.incr m_failed;
         Metrics.incr m_quarantined
       | `Cancelled ->
         job.state <- Cancelled;
         Metrics.incr m_cancelled);
      job.finished_at <- Some (Unix.gettimeofday ());
      set_depth_gauge t;
      notify_locked t job)

(* Drain path: the runner stopped at a cell boundary for a reason that is
   not this job's cancel flag (process shutdown).  The checkpoint on disk
   holds everything done so far; putting the job back to Queued records
   that it is resumable, not finished. *)
let requeue t job =
  locked t (fun () ->
      job.state <- Queued;
      notify_locked t job)

(* Supervision path: the attempt failed for a reason worth retrying.  The
   job goes back to Queued but [take] will not hand it out before
   [not_before] — the supervisor's capped exponential backoff. *)
let retry t job ~not_before ~error =
  locked t (fun () ->
      job.state <- Queued;
      job.not_before <- not_before;
      job.error <- Some error;
      Metrics.incr m_retry_scheduled;
      set_depth_gauge t;
      notify_locked t job)
