(* The daemon glue: a [Queue] + [Runner] pair behind an [Obs.Http]
   handler.  The handler mounts on the observability server (which keeps
   serving /metrics, /healthz and /spans as fallback GET routes) and only
   claims the /jobs namespace:

     POST   /jobs      submit a sweep spec        202 | 400 | 429
     GET    /jobs      list jobs + queue state    200
     GET    /jobs/:id  status/progress/table      200 | 404
     DELETE /jobs/:id  cancel (cell granularity)  200 | 202 | 404 | 409

   The handler runs on the HTTP accept domain; all job execution happens
   in the owner's [step] loop, so a request never blocks on a sweep.
   Draining flips one atomic that [step] and the runner's should_stop
   both poll: in-flight cells finish, the checkpoint lands, and the job
   goes back to Queued for the next process. *)

open Sinr_obs
open Sinr_par

type t = {
  queue : Queue.t;
  dir : string;
  checkpoint_every : int;
  draining : bool Atomic.t;
}

let create ?(dir = ".") ?(max_queued = 8) ?(checkpoint_every = 4) () =
  { queue = Queue.create ~max_queued ();
    dir;
    checkpoint_every = max 1 checkpoint_every;
    draining = Atomic.make false }

let queue t = t.queue
let dir t = t.dir
let request_drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining

let step t =
  if Atomic.get t.draining then false
  else
    match Queue.take t.queue with
    | None -> false
    | Some job ->
      Runner.run_job ~checkpoint_every:t.checkpoint_every
        ~should_stop:(fun () -> Atomic.get t.draining)
        ~dir:t.dir t.queue job;
      true

(* ------------------------------------------------------------------ *)
(* HTTP handler                                                        *)
(* ------------------------------------------------------------------ *)

let json_response ?headers status j =
  Http.response ?headers status (Json.to_string_json j ^ "\n")

let error_response ?headers status msg =
  json_response ?headers status (Json.Obj [ ("error", Json.Str msg) ])

let opt_field name = function
  | None -> []
  | Some j -> [ (name, j) ]

let job_json ~full (job : Queue.job) =
  Json.Obj
    (List.concat
       [ [ ("id", Json.int job.Queue.id);
           ("exp", Json.Str job.Queue.spec.Spec.exp);
           ("state", Json.Str (Queue.state_name job.Queue.state));
           ("cells_done", Json.int job.Queue.cells_done);
           ("cells_total", Json.int job.Queue.cells_total);
           ("restored", Json.int job.Queue.restored) ];
         (if full then
            List.concat
              [ [ ("spec", Spec.to_json job.Queue.spec) ];
                opt_field "partial" job.Queue.partial;
                opt_field "table" job.Queue.table;
                opt_field "error"
                  (Option.map (fun e -> Json.Str e) job.Queue.error) ]
          else []) ])

let queue_state t =
  [ ("depth", Json.int (Queue.depth t.queue));
    ("cap", Json.int (Queue.max_queued t.queue));
    ("pool_in_flight", Json.int (Pool.in_flight (Pool.get ())));
    ("draining", Json.Bool (Atomic.get t.draining)) ]

let submit t body =
  match Spec.of_string body with
  | Error msg -> error_response 400 msg
  | Ok spec -> (
    match Spec.validate spec with
    | Error msg -> error_response 400 msg
    | Ok () -> (
      match Registry.resolve spec with
      | Error msg -> error_response 400 msg
      | Ok _ -> (
        if Atomic.get t.draining then
          error_response 429 "draining: not accepting jobs"
        else
          match Queue.submit t.queue spec with
          | Error (`Backpressure depth) ->
            json_response 429
              (Json.Obj
                 (("error", Json.Str "queue full")
                 :: ("depth", Json.int depth)
                 :: ("cap", Json.int (Queue.max_queued t.queue))
                 :: ("pool_in_flight",
                     Json.int (Pool.in_flight (Pool.get ())))
                 :: []))
          | Ok job ->
            json_response 202
              (Json.Obj
                 [ ("id", Json.int job.Queue.id);
                   ("state", Json.Str (Queue.state_name job.Queue.state));
                   ("cells", Json.int job.Queue.cells_total);
                   ( "checkpoint",
                     Json.Str (Runner.checkpoint_path ~dir:t.dir job) ) ]))))

let job_by_id t id_str =
  match int_of_string_opt id_str with
  | None -> None
  | Some id -> Queue.find t.queue id

let cancel t id_str =
  match int_of_string_opt id_str with
  | None -> error_response 404 "no such job"
  | Some id -> (
    match Queue.cancel t.queue id with
    | `Not_found -> error_response 404 "no such job"
    | `Already_finished ->
      error_response 409 "job already finished"
    | `Cancelled ->
      json_response 200
        (Json.Obj [ ("id", Json.int id); ("state", Json.Str "cancelled") ])
    | `Cancelling ->
      json_response 202
        (Json.Obj [ ("id", Json.int id); ("state", Json.Str "cancelling") ]))

let handler t (req : Http.request) =
  match String.split_on_char '/' req.Http.path with
  | [ ""; "jobs" ] -> (
    match req.Http.meth with
    | "POST" -> Some (submit t req.Http.body)
    | "GET" ->
      Some
        (json_response 200
           (Json.Obj
              (( "jobs",
                 Json.List
                   (List.map (job_json ~full:false) (Queue.jobs t.queue)) )
              :: queue_state t)))
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET, POST") ] 405
           "method not allowed on /jobs"))
  | [ ""; "jobs"; id ] -> (
    match req.Http.meth with
    | "GET" -> (
      match job_by_id t id with
      | None -> Some (error_response 404 "no such job")
      | Some job -> Some (json_response 200 (job_json ~full:true job)))
    | "DELETE" -> Some (cancel t id)
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET, DELETE") ] 405
           "method not allowed on /jobs/:id"))
  | _ -> None (* /metrics, /healthz, /spans, 404: the builtin routes *)
