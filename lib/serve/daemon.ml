(* The daemon glue: a [Queue] + [Supervisor]-driven [Runner] pair behind
   an [Obs.Http] handler, with a [Wal] underneath making the whole job
   store durable.  The handler mounts on the observability server (which
   keeps serving /metrics, /healthz and /spans as fallback GET routes)
   and claims the /jobs namespace plus /readyz:

     POST   /jobs            submit a sweep spec        202 | 400 | 429
     GET    /jobs            list jobs + queue state    200
     GET    /jobs/:id        status/progress/table      200 | 404
     GET    /jobs/:id/table  bare result table          200 | 404 | 409
     DELETE /jobs/:id        cancel (cell granularity)  200 | 202 | 404 | 409
     GET    /readyz          readiness probe            200 | 503

   /healthz (builtin) stays pure liveness — the process is up and
   serving.  /readyz is honest readiness: draining, a saturated queue,
   or an unwritable WAL answer 503 with a JSON reason, so a load
   balancer or operator script can tell "alive" from "accepting work".

   The handler runs on the HTTP accept domain; all job execution happens
   in the owner's [step] loop, so a request never blocks on a sweep.
   Every admission and terminal transition lands in the WAL before the
   HTTP response; on startup [create] replays the WAL (tolerating a torn
   tail, quarantining real corruption), re-admits live jobs with their
   strike counts, compacts the log, and the next [step]s resume them
   from their checkpoints — bit-identical to an uninterrupted run. *)

open Sinr_obs
open Sinr_par

type t = {
  queue : Queue.t;
  dir : string;
  wal_dir : string;
  wal : Wal.t;
  supervisor : Supervisor.t;
  events : Events.t;
  checkpoint_every : int;
  draining : bool Atomic.t;
  recovered : int;
  wal_recovery : [ `Clean | `Torn_tail | `Quarantined of string ];
}

(* The ["state"] event body: enough for a watcher to render the job line
   without a follow-up GET. Published from the queue's transition hook,
   so every committed transition — admission, take, finish, retry,
   requeue — is narrated in commit order. *)
let state_event (job : Queue.job) =
  Json.Obj
    (List.concat
       [ [ ("job_id", Json.int job.Queue.id);
           ("state", Json.Str (Queue.state_name job.Queue.state));
           ("cells_done", Json.int job.Queue.cells_done);
           ("cells_total", Json.int job.Queue.cells_total);
           ("attempts", Json.int job.Queue.attempts);
           ("quarantined", Json.Bool job.Queue.quarantined) ];
         (match job.Queue.error with
          | Some e -> [ ("error", Json.Str e) ]
          | None -> []) ])

(* Fold the replayed records into per-job state.  [attempts] counts
   Started records not closed by Yielded (graceful drains are not
   strikes) plus any compacted Strikes baseline; a terminal record
   removes the job from the live set. *)
let fold_replay records =
  let tbl = Hashtbl.create 16 in
  (* id -> (spec option, attempts, live) in insertion order via ids *)
  List.iter
    (fun { Wal.job = id; ev } ->
      let spec, attempts, live =
        match Hashtbl.find_opt tbl id with
        | Some s -> s
        | None -> (None, 0, true)
      in
      let entry =
        match ev with
        | Wal.Submitted spec -> (Some spec, attempts, true)
        | Wal.Started _ -> (spec, attempts + 1, live)
        | Wal.Yielded -> (spec, max 0 (attempts - 1), live)
        | Wal.Strikes n -> (spec, attempts + max 0 n, live)
        | Wal.Checkpointed _ -> (spec, attempts, live)
        | Wal.Completed | Wal.Cancelled | Wal.Failed _ | Wal.Quarantined _
          -> (spec, attempts, false)
      in
      Hashtbl.replace tbl id entry)
    records;
  let live =
    Hashtbl.fold
      (fun id entry acc ->
        match entry with
        | Some spec, attempts, true -> (id, spec, attempts) :: acc
        | _ -> acc)
      tbl []
  in
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) live

let create ?(dir = ".") ?wal_dir ?(max_queued = 8) ?(checkpoint_every = 4)
    ?policy () =
  let wal_dir = Option.value wal_dir ~default:dir in
  let supervisor = Supervisor.create ?policy () in
  let replay = Wal.replay ~dir:wal_dir in
  let wal_recovery =
    if replay.Wal.corrupt then
      match Wal.quarantine_file ~dir:wal_dir with
      | Some p -> `Quarantined p
      | None -> `Quarantined "(rename failed)"
    else if replay.Wal.torn_tail then `Torn_tail
    else `Clean
  in
  let live = fold_replay replay.Wal.records in
  (* Compact: the reopened WAL holds exactly the live jobs — their spec
     and strike baseline — instead of the full history. *)
  let wal =
    Wal.reset ~dir:wal_dir
      (List.concat_map
         (fun (id, spec, attempts) ->
           { Wal.job = id; ev = Wal.Submitted spec }
           ::
           (if attempts > 0 then
              [ { Wal.job = id; ev = Wal.Strikes attempts } ]
            else []))
         live)
  in
  let events = Events.create () in
  let queue = Queue.create ~max_queued () in
  Queue.on_transition queue (fun job ->
      Events.publish events ~job:job.Queue.id ~typ:"state" (state_event job));
  let pol = Supervisor.policy supervisor in
  let recovered =
    List.fold_left
      (fun acc (id, spec, attempts) ->
        let job = Queue.recover queue ~id ~spec ~attempts in
        (* a job that took the process down more often than the retry
           budget allows is poison: park it before it wedges the loop
           again *)
        if attempts > pol.Supervisor.max_retries then begin
          Queue.finish queue job
            (`Quarantined
               (Printf.sprintf
                  "quarantined at recovery: %d attempts on record \
                   (crashed or never finished), budget %d"
                  attempts pol.Supervisor.max_retries));
          Wal.append wal
            { Wal.job = id;
              ev = Wal.Quarantined "recovery: strike budget exhausted" }
        end;
        acc + 1)
      0 live
  in
  { queue;
    dir;
    wal_dir;
    wal;
    supervisor;
    events;
    checkpoint_every = max 1 checkpoint_every;
    draining = Atomic.make false;
    recovered;
    wal_recovery }

let queue t = t.queue
let events t = t.events
let dir t = t.dir
let wal_dir t = t.wal_dir
let wal t = t.wal
let recovered t = t.recovered
let wal_recovery t = t.wal_recovery
let request_drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining
let close t = Wal.close t.wal

let step t =
  if Atomic.get t.draining then false
  else
    match Queue.take t.queue with
    | None -> false
    | Some job ->
      Supervisor.run t.supervisor ~wal:t.wal
        ~notify:(fun ~typ body ->
          Events.publish t.events ~job:job.Queue.id ~typ body)
        ~should_stop:(fun () -> Atomic.get t.draining)
        ~checkpoint_every:t.checkpoint_every ~dir:t.dir t.queue job;
      true

(* ------------------------------------------------------------------ *)
(* HTTP handler                                                        *)
(* ------------------------------------------------------------------ *)

let json_response ?headers status j =
  Http.response ?headers status (Json.to_string_json j ^ "\n")

let error_response ?headers status msg =
  json_response ?headers status (Json.Obj [ ("error", Json.Str msg) ])

let opt_field name = function
  | None -> []
  | Some j -> [ (name, j) ]

let job_json ~full (job : Queue.job) =
  Json.Obj
    (List.concat
       [ [ ("id", Json.int job.Queue.id);
           ("exp", Json.Str job.Queue.spec.Spec.exp);
           ("state", Json.Str (Queue.state_name job.Queue.state));
           ("cells_done", Json.int job.Queue.cells_done);
           ("cells_total", Json.int job.Queue.cells_total);
           ("restored", Json.int job.Queue.restored);
           ("attempts", Json.int job.Queue.attempts);
           ("quarantined", Json.Bool job.Queue.quarantined) ];
         opt_field "error"
           (Option.map (fun e -> Json.Str e) job.Queue.error);
         opt_field "dump"
           (Option.map (fun p -> Json.Str p) job.Queue.dump);
         (if full then
            List.concat
              [ [ ("spec", Spec.to_json job.Queue.spec) ];
                opt_field "partial" job.Queue.partial;
                opt_field "table" job.Queue.table ]
          else []) ])

let queue_state t =
  [ ("depth", Json.int (Queue.depth t.queue));
    ("cap", Json.int (Queue.max_queued t.queue));
    ("pool_in_flight", Json.int (Pool.in_flight (Pool.get ())));
    ("draining", Json.Bool (Atomic.get t.draining));
    ("wal_healthy", Json.Bool (Wal.healthy t.wal)) ]

(* Readiness: alive is not the same as accepting.  Each reason is a
   stable token an operator can alert on. *)
let readiness t =
  let reasons =
    List.concat
      [ (if Atomic.get t.draining then [ "draining" ] else []);
        (if Queue.depth t.queue >= Queue.max_queued t.queue then
           [ "saturated" ]
         else []);
        (if not (Wal.healthy t.wal) then [ "wal-unwritable" ] else []) ]
  in
  match reasons with
  | [] -> json_response 200 (Json.Obj [ ("ready", Json.Bool true) ])
  | reasons ->
    json_response 503
      (Json.Obj
         [ ("ready", Json.Bool false);
           ("reasons", Json.List (List.map (fun r -> Json.Str r) reasons)) ])

let submit t body =
  match Spec.of_string body with
  | Error msg -> error_response 400 msg
  | Ok spec -> (
    match Spec.validate spec with
    | Error msg -> error_response 400 msg
    | Ok () -> (
      match Registry.resolve spec with
      | Error msg -> error_response 400 msg
      | Ok _ -> (
        if Atomic.get t.draining then
          error_response 429 "draining: not accepting jobs"
        else
          match Queue.submit t.queue spec with
          | Error (`Backpressure depth) ->
            json_response 429
              (Json.Obj
                 (("error", Json.Str "queue full")
                 :: ("depth", Json.int depth)
                 :: ("cap", Json.int (Queue.max_queued t.queue))
                 :: ("pool_in_flight",
                     Json.int (Pool.in_flight (Pool.get ())))
                 :: []))
          | Ok job ->
            (* durable before the 202: a crash after this response must
               not lose an acknowledged job *)
            Wal.append t.wal
              { Wal.job = job.Queue.id; ev = Wal.Submitted spec };
            json_response 202
              (Json.Obj
                 [ ("id", Json.int job.Queue.id);
                   ("state", Json.Str (Queue.state_name job.Queue.state));
                   ("cells", Json.int job.Queue.cells_total);
                   ( "checkpoint",
                     Json.Str (Runner.checkpoint_path ~dir:t.dir job) ) ]))))

let job_by_id t id_str =
  match int_of_string_opt id_str with
  | None -> None
  | Some id -> Queue.find t.queue id

(* DELETE /jobs/:id is idempotent where idempotence is meaningful:
   cancelling a cancelled job re-answers 200 with the same state, while
   a Done/Failed job is a real conflict (409) — the work is not
   un-doable.  Documented in DESIGN.md §14. *)
let cancel t id_str =
  match int_of_string_opt id_str with
  | None -> error_response 404 "no such job"
  | Some id -> (
    match Queue.cancel t.queue id with
    | `Not_found -> error_response 404 "no such job"
    | `Already_finished ->
      error_response 409 "job already finished"
    | `Cancelled ->
      Wal.append t.wal { Wal.job = id; ev = Wal.Cancelled };
      json_response 200
        (Json.Obj [ ("id", Json.int id); ("state", Json.Str "cancelled") ])
    | `Already_cancelled ->
      json_response 200
        (Json.Obj [ ("id", Json.int id); ("state", Json.Str "cancelled") ])
    | `Cancelling ->
      json_response 202
        (Json.Obj [ ("id", Json.int id); ("state", Json.Str "cancelling") ]))

(* The bare table, for piping and byte-comparison (the crash-smoke
   diffing in CI curls this into a file and cmp(1)s it). *)
let table t id_str =
  match job_by_id t id_str with
  | None -> error_response 404 "no such job"
  | Some job -> (
    match (job.Queue.state, job.Queue.table) with
    | Queue.Done, Some table -> json_response 200 table
    | _ ->
      error_response
        ~headers:[ ("X-Job-State", Queue.state_name job.Queue.state) ]
        409
        (Printf.sprintf "job is %s, table only exists once done"
           (Queue.state_name job.Queue.state)))

(* GET /jobs/:id/metrics — the labeled [{job_id="<id>"}] children of the
   process registry, rendered as Prometheus text.  Two concurrent jobs
   expose disjoint scopes here while /metrics keeps the totals. *)
let job_metrics t id_str =
  match job_by_id t id_str with
  | None -> error_response 404 "no such job"
  | Some job ->
    let want = ("job_id", string_of_int job.Queue.id) in
    let scoped =
      List.filter
        (fun (name, _) ->
          let _, pairs = Metrics.split_name name in
          List.mem want pairs)
        (Metrics.snapshot ())
    in
    Http.response ~content_type:"text/plain; version=0.0.4" 200
      (Sink.snapshot_to_prometheus scoped)

let handler t (req : Http.request) =
  match String.split_on_char '/' req.Http.path with
  | [ ""; "readyz" ] -> (
    match req.Http.meth with
    | "GET" -> Some (readiness t)
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET") ] 405
           "method not allowed on /readyz"))
  | [ ""; "jobs" ] -> (
    match req.Http.meth with
    | "POST" -> Some (submit t req.Http.body)
    | "GET" ->
      Some
        (json_response 200
           (Json.Obj
              (( "jobs",
                 Json.List
                   (List.map (job_json ~full:false) (Queue.jobs t.queue)) )
              :: queue_state t)))
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET, POST") ] 405
           "method not allowed on /jobs"))
  | [ ""; "jobs"; id ] -> (
    match req.Http.meth with
    | "GET" -> (
      match job_by_id t id with
      | None -> Some (error_response 404 "no such job")
      | Some job -> Some (json_response 200 (job_json ~full:true job)))
    | "DELETE" -> Some (cancel t id)
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET, DELETE") ] 405
           "method not allowed on /jobs/:id"))
  | [ ""; "jobs"; id; "table" ] -> (
    match req.Http.meth with
    | "GET" -> Some (table t id)
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET") ] 405
           "method not allowed on /jobs/:id/table"))
  | [ ""; "jobs"; id; "metrics" ] -> (
    match req.Http.meth with
    | "GET" -> Some (job_metrics t id)
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET") ] 405
           "method not allowed on /jobs/:id/metrics"))
  (* GET on the event paths normally never lands here — the stream
     handler intercepts it.  Reaching this arm means the job id is
     unknown (the stream handler fell through) or streaming is not
     mounted on this server. *)
  | [ ""; "jobs"; id; "events" ] -> (
    match req.Http.meth with
    | "GET" ->
      Some
        (match job_by_id t id with
         | None -> error_response 404 "no such job"
         | Some _ -> error_response 503 "event streaming not enabled")
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET") ] 405
           "method not allowed on /jobs/:id/events"))
  | [ ""; "events" ] -> (
    match req.Http.meth with
    | "GET" -> Some (error_response 503 "event streaming not enabled")
    | _ ->
      Some
        (error_response ~headers:[ ("Allow", "GET") ] 405
           "method not allowed on /events"))
  | _ -> None (* /metrics, /healthz, /spans, 404: the builtin routes *)

(* ------------------------------------------------------------------ *)
(* SSE streams                                                         *)
(* ------------------------------------------------------------------ *)

let heartbeat_every = 10.0
let poll_sleep = 0.05

let terminal (job : Queue.job) =
  match job.Queue.state with
  | Queue.Done | Queue.Failed | Queue.Cancelled -> true
  | Queue.Queued | Queue.Running -> false

(* Snapshot greeting for a per-job stream: everything a late-joining
   watcher needs (the grid shape, progress so far) before live events
   resume the story. *)
let hello_json (job : Queue.job) =
  let spec = job.Queue.spec in
  Json.Obj
    (List.concat
       [ [ ("job_id", Json.int job.Queue.id);
           ("exp", Json.Str spec.Spec.exp) ];
         (match Registry.resolve spec with
          | Ok reg ->
            [ ("param_name", Json.Str reg.Registry.param_name) ]
          | Error _ -> []);
         [ ("params", Json.List (List.map Json.int spec.Spec.params));
           ("seeds", Json.List (List.map Json.int spec.Spec.seeds));
           ("cells_done", Json.int job.Queue.cells_done);
           ("cells_total", Json.int job.Queue.cells_total);
           ("state", Json.Str (Queue.state_name job.Queue.state));
           ("attempts", Json.int job.Queue.attempts);
           ("restored", Json.int job.Queue.restored);
           ("quarantined", Json.Bool job.Queue.quarantined) ] ])

(* Backlog replay: rows already complete when the client connected, as
   synthesized ["row"] events — from the final table when the job is
   done, else reassembled from the partial's cells (canonical grid
   order, so seed order within a row is preserved).  A row published
   live between our subscription and this snapshot may be replayed AND
   delivered; watchers dedup by param (cells are deterministic, so the
   duplicates are byte-identical). *)
let replay_rows (job : Queue.job) =
  let mk param cells =
    Json.Obj
      [ ("job_id", Json.int job.Queue.id);
        ("param", Json.int param);
        ("cells", Json.List cells) ]
  in
  match (job.Queue.state, job.Queue.table) with
  | Queue.Done, Some tbl -> (
    match Json.member "rows" tbl with
    | Some (Json.List rows) ->
      List.filter_map
        (fun row ->
          match
            ( Option.bind (Json.member "param" row) Json.to_int,
              Json.member "cells" row )
          with
          | Some p, Some (Json.List cells) -> Some (mk p cells)
          | _ -> None)
        rows
    | _ -> [])
  | _ -> (
    match job.Queue.partial with
    | None -> []
    | Some partial -> (
      match Json.member "cells" partial with
      | Some (Json.List cells) ->
        let seeds_n = List.length job.Queue.spec.Spec.seeds in
        let by_param : (int, Json.t list) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun c ->
            match
              ( Option.bind (Json.member "param" c) Json.to_int,
                Json.member "cell" c )
            with
            | Some p, Some cell ->
              Hashtbl.replace by_param p
                (cell
                 :: Option.value ~default:[] (Hashtbl.find_opt by_param p))
            | _ -> ())
          cells;
        List.filter_map
          (fun p ->
            match Hashtbl.find_opt by_param p with
            | Some cs when List.length cs = seeds_n ->
              Some (mk p (List.rev cs))
            | _ -> None)
          job.Queue.spec.Spec.params
      | _ -> []))

let sse_stream write =
  { Http.s_status = 200;
    s_content_type = "text/event-stream";
    s_headers = [ ("X-Accel-Buffering", "no") ];
    s_write = write }

(* GET /jobs/:id/events.  Subscribe FIRST, then snapshot — an event
   landing in between is delivered twice, never lost.  The stream closes
   itself once it has delivered a terminal state, so [curl -N] exits on
   its own when the job settles. *)
let job_stream t (job : Queue.job) =
  sse_stream @@ fun ~push ~should_stop ->
  let sub = Events.subscribe ~job:job.Queue.id t.events in
  Fun.protect ~finally:(fun () -> Events.unsubscribe t.events sub)
  @@ fun () ->
  let ok = ref (push (Events.sse_event ~typ:"hello" (hello_json job))) in
  List.iter
    (fun row -> if !ok then ok := push (Events.sse_event ~typ:"row" row))
    (replay_rows job);
  if terminal job then begin
    if !ok then
      ignore (push (Events.sse_event ~typ:"state" (state_event job)))
  end
  else begin
    let finished = ref false in
    let last_sent = ref (Unix.gettimeofday ()) in
    while !ok && (not !finished) && not (should_stop ()) do
      match Events.poll sub with
      | [] ->
        Unix.sleepf poll_sleep;
        if Unix.gettimeofday () -. !last_sent > heartbeat_every then begin
          ok := push (Events.sse_comment "heartbeat");
          last_sent := Unix.gettimeofday ()
        end
      | evs ->
        List.iter
          (fun ev ->
            if !ok then begin
              ok := push (Events.sse_frame ev);
              last_sent := Unix.gettimeofday ();
              if ev.Events.typ = "state" then
                match Json.member "state" ev.Events.body with
                | Some (Json.Str ("done" | "failed" | "cancelled")) ->
                  finished := true
                | _ -> ()
            end)
          evs
    done
  end

(* GET /events — the firehose: every job's events, no replay, runs until
   the client hangs up or the server stops. *)
let firehose_stream t =
  sse_stream @@ fun ~push ~should_stop ->
  let sub = Events.subscribe t.events in
  Fun.protect ~finally:(fun () -> Events.unsubscribe t.events sub)
  @@ fun () ->
  let ok = ref (push (Events.sse_comment "firehose: all jobs")) in
  let last_sent = ref (Unix.gettimeofday ()) in
  while !ok && not (should_stop ()) do
    match Events.poll sub with
    | [] ->
      Unix.sleepf poll_sleep;
      if Unix.gettimeofday () -. !last_sent > heartbeat_every then begin
        ok := push (Events.sse_comment "heartbeat");
        last_sent := Unix.gettimeofday ()
      end
    | evs ->
      List.iter
        (fun ev ->
          if !ok then begin
            ok := push (Events.sse_frame ev);
            last_sent := Unix.gettimeofday ()
          end)
        evs
  done

let stream_handler t (req : Http.request) =
  if req.Http.meth <> "GET" then None
  else
    match String.split_on_char '/' req.Http.path with
    | [ ""; "events" ] -> Some (firehose_stream t)
    | [ ""; "jobs"; id; "events" ] ->
      (* unknown id falls through to [handler]'s 404 *)
      Option.map (job_stream t) (job_by_id t id)
    | _ -> None
