(** SSE watch client for the sweep daemon: follow one job through
    [GET /jobs/:id/events] — no polling, no other endpoints — and
    rebuild its final table from the stream alone.

    The stream contract ({!Daemon.stream_handler}) makes this lossless:
    a [hello] greeting fixes the grid shape, replayed and live [row]
    events carry complete rows (duplicates across the replay seam are
    deduped by param; cells print byte-stably, so duplicates are
    byte-identical), and the stream closes after a terminal [state]
    event.  The table assembled here is byte-identical to
    [GET /jobs/:id/table]. *)

open Sinr_obs

type outcome =
  | Completed of Json.t
      (** the final table, byte-identical to [/jobs/:id/table] *)
  | Failed of { quarantined : bool; error : string }
  | Cancelled
  | Stream_error of string
      (** transport or protocol trouble: connect/HTTP failure, receive
          timeout, or the stream ended without a terminal state *)

val default_recv_timeout : float
(** 75 s — generous against the server's ~10 s heartbeat cadence. *)

val watch :
  ?host:string -> ?recv_timeout:float
  -> ?on_event:(typ:string -> Json.t -> unit) -> port:int -> job:int
  -> unit -> outcome
(** Connect to [host] (default [127.0.0.1]) : [port], stream the job's
    events until it settles, and classify. [on_event] sees every
    protocol frame as it arrives ([hello], [state], [cell],
    [checkpoint], [row], [retry], [quarantine]) — the CLI renders live
    progress from it; exceptions it raises are swallowed. *)
