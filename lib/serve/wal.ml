(* Append-only write-ahead log for the sweep daemon's job store.

   Every job transition is one line:

     <crc32 of the JSON, 8 hex chars> <one-line JSON>\n

   appended with a single O_APPEND write(2) so a record is either fully
   present or fully absent — a SIGKILL mid-append can tear at most the
   final line.  Replay applies exactly that model: a bad *final* line
   (CRC mismatch, truncation, parse failure) is a torn tail and is
   skipped; a bad line with valid records after it means real corruption
   and replay stops there, reporting it so the caller can quarantine the
   file and keep the recovered prefix.

   Durability is two-tier: admission and terminal transitions
   (submitted/completed/cancelled/failed/quarantined) fsync before
   [append] returns; high-frequency progress records (started,
   checkpointed, yielded) batch, fsyncing every [fsync_every] appends —
   losing a batched record on a crash only costs re-deriving progress
   from the checkpoint files, never a job.

   Metrics: [serve.wal.appends], [serve.wal.syncs],
   [serve.wal.replayed], [serve.wal.torn_tails], [serve.wal.corrupt],
   and the [serve.wal.bytes] gauge. *)

open Sinr_obs

let m_appends = Metrics.counter "serve.wal.appends"
let m_syncs = Metrics.counter "serve.wal.syncs"
let m_replayed = Metrics.counter "serve.wal.replayed"
let m_torn = Metrics.counter "serve.wal.torn_tails"
let m_corrupt = Metrics.counter "serve.wal.corrupt"
let g_bytes = Metrics.gauge "serve.wal.bytes"

type event =
  | Submitted of Spec.t
  | Started of int
  | Checkpointed of int
  | Yielded
  | Strikes of int
  | Completed
  | Cancelled
  | Failed of string
  | Quarantined of string

type record = { job : int; ev : event }

let file_name = "serve.wal"
let path ~dir = Filename.concat dir file_name

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                        *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Record (de)serialization                                            *)
(* ------------------------------------------------------------------ *)

let event_json = function
  | Submitted spec ->
    [ ("ev", Json.Str "submitted"); ("spec", Spec.to_json spec) ]
  | Started attempt ->
    [ ("ev", Json.Str "started"); ("attempt", Json.int attempt) ]
  | Checkpointed cells ->
    [ ("ev", Json.Str "checkpointed"); ("cells", Json.int cells) ]
  | Yielded -> [ ("ev", Json.Str "yielded") ]
  | Strikes n -> [ ("ev", Json.Str "strikes"); ("n", Json.int n) ]
  | Completed -> [ ("ev", Json.Str "completed") ]
  | Cancelled -> [ ("ev", Json.Str "cancelled") ]
  | Failed reason -> [ ("ev", Json.Str "failed"); ("reason", Json.Str reason) ]
  | Quarantined reason ->
    [ ("ev", Json.Str "quarantined"); ("reason", Json.Str reason) ]

let record_json r =
  Json.Obj (("wal", Json.int 1) :: ("job", Json.int r.job) :: event_json r.ev)

let encode r =
  let payload = Json.to_string_json (record_json r) in
  Printf.sprintf "%08lx %s" (crc32 payload) payload

let event_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string in
  let int k = Option.bind (Json.member k j) Json.to_int in
  match str "ev" with
  | Some "submitted" -> (
    match Option.map Spec.of_json (Json.member "spec" j) with
    | Some (Ok spec) -> Some (Submitted spec)
    | _ -> None)
  | Some "started" -> Option.map (fun a -> Started a) (int "attempt")
  | Some "checkpointed" -> Option.map (fun c -> Checkpointed c) (int "cells")
  | Some "yielded" -> Some Yielded
  | Some "strikes" -> Option.map (fun n -> Strikes n) (int "n")
  | Some "completed" -> Some Completed
  | Some "cancelled" -> Some Cancelled
  | Some "failed" -> Option.map (fun r -> Failed r) (str "reason")
  | Some "quarantined" -> Option.map (fun r -> Quarantined r) (str "reason")
  | _ -> None

let decode line =
  (* "<8 hex> <payload>": CRC first, then shape. *)
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    let crc_hex = String.sub line 0 8 in
    let payload = String.sub line 9 (String.length line - 9) in
    match Int32.of_string_opt ("0x" ^ crc_hex) with
    | None -> None
    | Some crc when crc <> crc32 payload -> None
    | Some _ -> (
      match Json.parse_opt payload with
      | None -> None
      | Some j -> (
        match
          ( Option.bind (Json.member "wal" j) Json.to_int,
            Option.bind (Json.member "job" j) Json.to_int,
            event_of_json j )
        with
        | Some 1, Some job, Some ev -> Some { job; ev }
        | _ -> None))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  wal_path : string;
  fsync_every : int;
  mutable unsynced : int;
  mutable bytes : int;
  mutable healthy : bool;
  mutex : Mutex.t;
}

let open_ ?(fsync_every = 16) ~dir () =
  let wal_path = path ~dir in
  let fd =
    Unix.openfile wal_path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  let bytes = (Unix.fstat fd).Unix.st_size in
  Metrics.set g_bytes (float_of_int bytes);
  { fd;
    wal_path;
    fsync_every = max 1 fsync_every;
    unsynced = 0;
    bytes;
    healthy = true;
    mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let healthy t = locked t (fun () -> t.healthy)

let sync_locked t =
  if t.unsynced > 0 then begin
    Unix.fsync t.fd;
    t.unsynced <- 0;
    Metrics.incr m_syncs
  end

let sync t =
  locked t (fun () -> try sync_locked t with Unix.Unix_error _ -> t.healthy <- false)

(* Admission and terminal records must survive a crash that follows the
   HTTP response; progress records may ride the batch. *)
let durable_event = function
  | Submitted _ | Completed | Cancelled | Failed _ | Quarantined _ -> true
  | Started _ | Checkpointed _ | Yielded | Strikes _ -> false

let append t r =
  let line = encode r ^ "\n" in
  locked t (fun () ->
      try
        let n = Unix.write_substring t.fd line 0 (String.length line) in
        if n <> String.length line then raise (Unix.Unix_error (Unix.EIO, "write", t.wal_path));
        t.bytes <- t.bytes + n;
        t.unsynced <- t.unsynced + 1;
        Metrics.incr m_appends;
        Metrics.set g_bytes (float_of_int t.bytes);
        if durable_event r.ev || t.unsynced >= t.fsync_every then
          sync_locked t;
        t.healthy <- true
      with Unix.Unix_error _ -> t.healthy <- false)

let close t =
  locked t (fun () ->
      (try sync_locked t with Unix.Unix_error _ -> ());
      try Unix.close t.fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type replay = {
  records : record list;
  torn_tail : bool;
  corrupt : bool;
}

let read_lines p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> Some (List.rev acc)
        in
        go [])

let replay ~dir =
  match read_lines (path ~dir) with
  | None -> { records = []; torn_tail = false; corrupt = false }
  | Some lines ->
    let n = List.length lines in
    let rec go i acc = function
      | [] -> { records = List.rev acc; torn_tail = false; corrupt = false }
      | line :: tl -> (
        match decode line with
        | Some r ->
          Metrics.incr m_replayed;
          go (i + 1) (r :: acc) tl
        | None ->
          if i = n - 1 then begin
            (* a torn final append: the expected crash shape *)
            Metrics.incr m_torn;
            { records = List.rev acc; torn_tail = true; corrupt = false }
          end
          else begin
            (* valid records follow a bad one: the file is damaged, keep
               the sound prefix and let the caller quarantine the rest *)
            Metrics.incr m_corrupt;
            { records = List.rev acc; torn_tail = false; corrupt = true }
          end)
    in
    go 0 [] lines

(* Move a damaged WAL aside (serve.wal.corrupt, .corrupt.1, ...) so the
   bytes survive for inspection while the daemon restarts clean. *)
let quarantine_file ~dir =
  let src = path ~dir in
  let rec dst k =
    let p =
      if k = 0 then src ^ ".corrupt" else Printf.sprintf "%s.corrupt.%d" src k
    in
    if Sys.file_exists p then dst (k + 1) else p
  in
  let target = dst 0 in
  match Sys.rename src target with
  | () -> Some target
  | exception Sys_error _ -> None

(* Compaction: atomically rewrite the log as just [records] (the live
   jobs' state), then reopen for appending.  Run at recovery so the WAL
   holds live jobs only, not the full history of every job ever run. *)
let reset ?fsync_every ~dir records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf (encode r);
      Buffer.add_char buf '\n')
    records;
  Sink.write_file (path ~dir) (Buffer.contents buf);
  open_ ?fsync_every ~dir ()
