(* The experiments the daemon knows how to serve, as (param, seed) -> JSON
   cell functions.  Cells must be pure in their pair — all randomness from
   seeded streams, results independent of execution order and of the
   warm-state cache — because the runner records them through the
   [Sweep.cursor] and replays them from checkpoints.

   Cell JSON only uses shapes whose printing round-trips byte-stably
   (integers, %.17g floats, null for missing), so a restored cell prints
   exactly like the fresh one it checkpointed. *)

open Sinr_expt
open Sinr_phys
open Sinr_obs
module Failpoint = Sinr_chaos.Chaos.Failpoint

type t = {
  name : string;
  param_name : string;
  check_param : int -> (unit, string) result;
  cell : param:int -> seed:int -> Json.t;
}

let range name lo hi v =
  if v < lo || v > hi then
    Error (Printf.sprintf "%s %d out of range [%d, %d]" name v lo hi)
  else Ok ()

(* -- ack: Exp_ack's star grid, param = requested Delta ---------------- *)

(* The deployment build is cached; the key encodes everything it reads:
   the (delta, seed) pair and the far-field knob (the one process-global
   physics setting that changes simulator semantics).  The gain-row byte
   cap is deliberately absent — it changes residency, never values. *)
let ack_key ~delta ~seed =
  let ff =
    match Phys_tuning.farfield_eps () with
    | None -> "exact"
    | Some e -> Printf.sprintf "%.17g" e
  in
  Printf.sprintf "ack-star:delta=%d:seed=%d:ff=%s" delta seed ff

let ack_cell ~param:delta ~seed =
  (* the lib/chaos process-level failpoint: disarmed it is one atomic
     load; armed (tests, SINR_FAILPOINTS) it injects a cell failure or a
     stall so the supervisor's retry/quarantine/timeout paths can be
     exercised through the public surface *)
  Failpoint.hit "serve.cell";
  let d, leaves =
    Cache.find_or_build Cache.shared (ack_key ~delta ~seed) (fun () ->
        let d, leaves = Exp_ack.star_instance ~delta ~seed in
        (d, leaves))
  in
  let c = Exp_ack.star_cell_on d ~leaves ~seed in
  Json.Obj
    [ ("delta", Json.int c.Exp_ack.c_delta);
      ("lambda", Json.Num c.Exp_ack.c_lambda);
      ( "mean",
        match c.Exp_ack.c_mean with
        | None -> Json.Null
        | Some m -> Json.Num m );
      ("nice", Json.int c.Exp_ack.c_nice);
      ("total", Json.int c.Exp_ack.c_total) ]

(* -- chaos: one jamming point of E-chaos, param = duty percent -------- *)

let chaos_cell ~param ~seed =
  Failpoint.hit "serve.cell";
  let spec =
    { Exp_chaos.clean with
      Exp_chaos.jam_duty = float_of_int param /. 100. }
  in
  let o = Exp_chaos.run_scenario ~n:36 ~degree:6 ~seed spec in
  Json.Obj
    [ ("senders", Json.int o.Exp_chaos.o_senders);
      ("acked", Json.int o.Exp_chaos.o_acked);
      ("gave_up", Json.int o.Exp_chaos.o_gave_up);
      ("ack_mean", Json.Num o.Exp_chaos.o_ack_mean);
      ("ack_max", Json.int o.Exp_chaos.o_ack_max);
      ("reissues", Json.int o.Exp_chaos.o_reissues);
      ("forced_aborts", Json.int o.Exp_chaos.o_forced_aborts);
      ("prog_violations", Json.int o.Exp_chaos.o_prog_violations);
      ("slots", Json.int o.Exp_chaos.o_slots) ]

let all =
  [ { name = "ack";
      param_name = "delta";
      check_param = range "delta" 1 128;
      cell = ack_cell };
    { name = "chaos";
      param_name = "jam_pct";
      check_param = range "jam_pct" 0 100;
      cell = chaos_cell } ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all

let resolve (spec : Spec.t) =
  match find spec.Spec.exp with
  | None ->
    Error
      (Printf.sprintf "unknown experiment %S (have: %s)" spec.Spec.exp
         (String.concat ", " (names ())))
  | Some e -> (
    match
      List.fold_left
        (fun acc p ->
          match acc with Error _ -> acc | Ok () -> e.check_param p)
        (Ok ()) spec.Spec.params
    with
    | Error msg -> Error msg
    | Ok () -> Ok e)
