(* Supervision for daemon jobs: deadlines, capped-exponential-backoff
   retries, and poison quarantine.

   Every attempt at a job runs through [run]: the attempt is WAL-logged
   (Started), wrapped with a wall-clock deadline (enforced at cell
   boundaries through the runner's should_stop — cells are the atomicity
   unit everywhere in lib/serve) and a per-cell budget (measured at cell
   completion through wrap_cell), and classified afterwards:

     Done / Cancelled            terminal, WAL-logged
     drain (external stop)       job back to Queued, attempt closes with
                                 a Yielded record — not a strike
     failure (exception, cell    a strike: retried with capped
     timeout, deadline)          exponential backoff while strikes <=
                                 max_retries, else quarantined — parked
                                 as Failed with the flight-recorder dump
                                 attached, so one poison spec can never
                                 wedge the queue

   The retry policy mirrors Mac_driver.with_retry (capped exponential
   backoff from a base, a deadline splitting intentional stops from
   failures); what backoff slots are to the MAC layer, wall-clock seconds
   are to the daemon.

   Honesty note on stuck cells: a cell that never returns cannot be
   preempted in-process (cells run as pool tasks; cancellation is
   cooperative at cell boundaries).  The per-cell budget catches slow
   cells when they finish; a truly wedged cell is caught by the
   cross-process path — its WAL Started record has no closing Yielded or
   terminal, so the restart counts it as a strike, and a job that wedges
   the process repeatedly quarantines after max_retries restarts. *)

open Sinr_obs

let m_attempts = Metrics.counter "serve.retry.attempts"
let m_recovered = Metrics.counter "serve.retry.recovered"
let m_gave_up = Metrics.counter "serve.retry.gave_up"
let m_deadline = Metrics.counter "serve.deadline.exceeded"
let m_cell_timeout = Metrics.counter "serve.cell.timeouts"
let h_cell = Metrics.histogram "serve.cell.seconds"

exception Cell_timeout of { param : int; seed : int; elapsed : float }

let () =
  Printexc.register_printer (function
    | Cell_timeout { param; seed; elapsed } ->
      Some
        (Printf.sprintf
           "cell (param=%d, seed=%d) exceeded its budget (ran %.3fs)" param
           seed elapsed)
    | _ -> None)

type policy = {
  deadline_s : float;
  cell_timeout_s : float;
  max_retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
}

let default_policy =
  { deadline_s = 0.;
    cell_timeout_s = 0.;
    max_retries = 2;
    base_backoff_s = 0.25;
    max_backoff_s = 30. }

type t = {
  policy : policy;
  now : unit -> float;
}

let create ?(policy = default_policy) ?(now = Unix.gettimeofday) () =
  { policy =
      { policy with
        max_retries = max 0 policy.max_retries;
        base_backoff_s = max 0.001 policy.base_backoff_s;
        max_backoff_s = max policy.base_backoff_s policy.max_backoff_s };
    now }

let policy t = t.policy

(* Capped exponential: base * 2^(strikes-1), clamped. *)
let backoff t ~strikes =
  let p = t.policy in
  min p.max_backoff_s (p.base_backoff_s *. (2. ** float_of_int (max 0 (strikes - 1))))

let log wal r = Option.iter (fun w -> Wal.append w r) wal

let emit notify typ body =
  match notify with None -> () | Some f -> f ~typ body

(* Quarantine: park the job as Failed with the flight recorder attached.
   The dump is best-effort — a full disk must not turn parking a poison
   job into a crash loop. *)
let quarantine ?wal ?notify ~dir queue (job : Queue.job) reason =
  let msg =
    Printf.sprintf "quarantined after %d strikes: %s" job.Queue.attempts
      reason
  in
  (match
     Recorder.dump
       ~path:
         (Filename.concat dir
            (Printf.sprintf "serve-job%d-quarantine.jsonl" job.Queue.id))
       ~reason:(Printf.sprintf "quarantine job %d" job.Queue.id)
       ()
   with
  | path -> job.Queue.dump <- Some path
  | exception _ -> ());
  Queue.finish queue job (`Quarantined msg);
  Metrics.incr m_gave_up;
  emit notify "quarantine"
    (Json.Obj
       (List.concat
          [ [ ("job_id", Json.int job.Queue.id);
              ("attempts", Json.int job.Queue.attempts);
              ("reason", Json.Str msg) ];
            (match job.Queue.dump with
             | Some p -> [ ("dump", Json.Str p) ]
             | None -> []) ]));
  log wal { Wal.job = job.Queue.id; ev = Wal.Quarantined msg }

(* One failed attempt: retry with backoff while strikes fit the policy,
   quarantine past it. *)
let strike t ?wal ?notify ~dir queue (job : Queue.job) reason =
  if job.Queue.attempts > t.policy.max_retries then
    quarantine ?wal ?notify ~dir queue job reason
  else begin
    let delay = backoff t ~strikes:job.Queue.attempts in
    Queue.retry queue job ~not_before:(t.now () +. delay)
      ~error:
        (Printf.sprintf "attempt %d failed (%s); retrying in %.2gs"
           job.Queue.attempts reason delay);
    emit notify "retry"
      (Json.Obj
         [ ("job_id", Json.int job.Queue.id);
           ("attempt", Json.int job.Queue.attempts);
           ("error", Json.Str reason);
           ("backoff_s", Json.Num delay) ])
  end

let run t ?wal ?notify ?(should_stop = fun () -> false)
    ?(checkpoint_every = 4) ~dir queue (job : Queue.job) =
  let p = t.policy in
  job.Queue.attempts <- job.Queue.attempts + 1;
  Metrics.incr m_attempts;
  log wal { Wal.job = job.Queue.id; ev = Wal.Started job.Queue.attempts };
  let started = t.now () in
  let deadline_hit = ref false in
  let stop () =
    should_stop ()
    ||
    (p.deadline_s > 0.
     && t.now () -. started > p.deadline_s
     &&
     (deadline_hit := true;
      true))
  in
  let failure = ref None in
  let on_fail msg =
    failure := Some msg;
    strike t ?wal ?notify ~dir queue job msg
  in
  let hj_cell =
    Metrics.histogram_with "serve.cell.seconds"
      (Metrics.labels [ ("job_id", string_of_int job.Queue.id) ])
  in
  let wrap_cell ~param ~seed ~cell =
    let c0 = t.now () in
    let v = cell param seed in
    let dt = t.now () -. c0 in
    Metrics.observe h_cell dt;
    Metrics.observe hj_cell dt;
    if p.cell_timeout_s > 0. && dt > p.cell_timeout_s then begin
      Metrics.incr m_cell_timeout;
      raise (Cell_timeout { param; seed; elapsed = dt })
    end;
    v
  in
  Runner.run_job ~checkpoint_every ~should_stop:stop ~wrap_cell ~on_fail
    ~on_checkpoint:(fun ~cells ->
      log wal { Wal.job = job.Queue.id; ev = Wal.Checkpointed cells })
    ?notify ~dir queue job;
  (* classify what the runner left behind *)
  match job.Queue.state with
  | Queue.Done ->
    if job.Queue.attempts > 1 then Metrics.incr m_recovered;
    log wal { Wal.job = job.Queue.id; ev = Wal.Completed }
  | Queue.Cancelled ->
    log wal { Wal.job = job.Queue.id; ev = Wal.Cancelled }
  | Queue.Queued when !failure <> None ->
    (* on_fail already settled the disposition (retry) *)
    ()
  | Queue.Queued when !deadline_hit && not (should_stop ()) ->
    (* the runner read the deadline stop as a drain and requeued; it is
       a strike — checkpointed progress survives into the next attempt,
       so a job that makes headway each attempt still completes *)
    Metrics.incr m_deadline;
    strike t ?wal ?notify ~dir queue job
      (Printf.sprintf "deadline %.2gs exceeded (%d/%d cells done)"
         p.deadline_s job.Queue.cells_done job.Queue.cells_total)
  | Queue.Queued ->
    (* genuine drain: not a strike — close the attempt gracefully *)
    log wal { Wal.job = job.Queue.id; ev = Wal.Yielded }
  | Queue.Failed when !failure <> None ->
    () (* unreachable with our on_fail, kept total *)
  | Queue.Failed | Queue.Running -> ()
