(* SSE watch client: follow one daemon job from `GET /jobs/:id/events`
   alone — no polling, no other endpoints — and rebuild its final table.

   The daemon's stream is a plain HTTP/1.1 chunked response carrying
   Server-Sent-Events frames, so the client is three thin layers:

     socket bytes -> dechunker -> SSE frames -> watch state

   The watch state mirrors the stream contract: a [hello] greeting fixes
   the grid shape (exp, param_name, params, seeds), [row] events land
   complete rows (replayed backlog first, live rows after — duplicates
   possible across the seam, deduped here by param; cells are
   deterministic so duplicates are byte-identical), and a terminal
   [state] event settles the outcome.  Cell JSON prints byte-stably
   through a parse/print round trip, so the table assembled from row
   events alone is byte-identical to `GET /jobs/:id/table`.

   Liveness: the server heartbeats every ~10 s, so SO_RCVTIMEO at 75 s
   separates a dead peer from a long quiet cell. *)

open Sinr_obs

type outcome =
  | Completed of Json.t
  | Failed of { quarantined : bool; error : string }
  | Cancelled
  | Stream_error of string

exception Stream_failed of string

let default_recv_timeout = 75.

(* ------------------------------------------------------------------ *)
(* Socket bytes                                                        *)
(* ------------------------------------------------------------------ *)

type reader = { fd : Unix.file_descr; mutable raw : string }

(* Append whatever the socket has; [false] on orderly EOF.  A receive
   timeout here means no data AND no heartbeat for the whole budget —
   the peer is gone. *)
let fill r =
  let b = Bytes.create 4096 in
  match Unix.read r.fd b 0 4096 with
  | 0 -> false
  | n ->
    r.raw <- r.raw ^ Bytes.sub_string b 0 n;
    true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    raise (Stream_failed "receive timeout (no event or heartbeat)")
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* HTTP header block + chunked transfer decoding                       *)
(* ------------------------------------------------------------------ *)

let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

(* Block until the full header block is buffered; returns
   (status, lowercased headers) and leaves the body bytes in [r.raw]. *)
let read_headers r =
  let rec wait () =
    match find_sub r.raw "\r\n\r\n" 0 with
    | Some i -> i
    | None ->
      if fill r then wait ()
      else raise (Stream_failed "connection closed before headers")
  in
  let hdr_end = wait () in
  let block = String.sub r.raw 0 hdr_end in
  r.raw <-
    String.sub r.raw (hdr_end + 4) (String.length r.raw - hdr_end - 4);
  match String.split_on_char '\r' (block ^ "\r") with
  | [] -> raise (Stream_failed "empty response")
  | status_line :: rest ->
    let status =
      match String.split_on_char ' ' status_line with
      | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> raise (Stream_failed ("bad status line: " ^ status_line)))
      | _ -> raise (Stream_failed ("bad status line: " ^ status_line))
    in
    let headers =
      List.filter_map
        (fun line ->
          let line =
            if String.length line > 0 && line.[0] = '\n' then
              String.sub line 1 (String.length line - 1)
            else line
          in
          match String.index_opt line ':' with
          | None -> None
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub line 0 i),
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)) ))
        rest
    in
    (status, headers)

(* One chunk off the front of [r.raw]: [`Data s], [`End] (terminal
   0-chunk), or [`More] when the chunk is not fully buffered yet. *)
let take_chunk r =
  match String.index_opt r.raw '\n' with
  | None -> `More
  | Some nl -> (
    let line = String.trim (String.sub r.raw 0 nl) in
    let size_str =
      match String.index_opt line ';' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match int_of_string_opt ("0x" ^ size_str) with
    | None -> raise (Stream_failed ("bad chunk size: " ^ line))
    | Some 0 -> `End
    | Some n ->
      let start = nl + 1 in
      if String.length r.raw >= start + n + 2 then begin
        let data = String.sub r.raw start n in
        r.raw <-
          String.sub r.raw (start + n + 2)
            (String.length r.raw - start - n - 2);
        `Data data
      end
      else `More)

(* ------------------------------------------------------------------ *)
(* SSE frames                                                          *)
(* ------------------------------------------------------------------ *)

(* A frame is the lines up to a blank line: optional [id:], [event:],
   one or more [data:] lines, [:]-comments ignored.  Returns
   [(typ, data)] — [typ] defaults to ["message"] per the SSE spec,
   [None] for a pure comment frame (heartbeat). *)
let parse_frame frame =
  let typ = ref None and data = ref [] in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> ':' then
        match String.index_opt line ':' with
        | None -> ()
        | Some i ->
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          let v =
            if String.length v > 0 && v.[0] = ' ' then
              String.sub v 1 (String.length v - 1)
            else v
          in
          (match k with
           | "event" -> typ := Some v
           | "data" -> data := v :: !data
           | _ -> ()))
    (String.split_on_char '\n' frame);
  match (!typ, !data) with
  | None, [] -> None (* comment/heartbeat *)
  | t, ds -> Some (Option.value t ~default:"message", String.concat "\n" (List.rev ds))

(* ------------------------------------------------------------------ *)
(* Watch state                                                         *)
(* ------------------------------------------------------------------ *)

type st = {
  mutable exp : string option;
  mutable param_name : string option;
  mutable params : int list;
  mutable seeds : Json.t list; (* raw, reprinted verbatim into the table *)
  rows : (int, Json.t) Hashtbl.t; (* param -> cells (Json.List ...) *)
  mutable outcome : outcome option;
}

let build_table st =
  match (st.exp, st.param_name) with
  | Some exp, Some pn ->
    let rows =
      List.map
        (fun p ->
          match Hashtbl.find_opt st.rows p with
          | Some cells ->
            Json.Obj [ ("param", Json.int p); ("cells", cells) ]
          | None ->
            raise
              (Stream_failed
                 (Printf.sprintf
                    "job done but row for param %d never arrived \
                     (events dropped?)"
                    p)))
        st.params
    in
    Json.Obj
      [ ("exp", Json.Str exp);
        ("param_name", Json.Str pn);
        ("seeds", Json.List st.seeds);
        ("rows", Json.List rows) ]
  | _ -> raise (Stream_failed "terminal state before any hello greeting")

let ints_of = function
  | Some (Json.List l) -> List.filter_map Json.to_int l
  | _ -> []

let handle_event st ~typ body =
  match typ with
  | "hello" ->
    st.exp <- Option.bind (Json.member "exp" body) (function
      | Json.Str s -> Some s
      | _ -> None);
    st.param_name <-
      Option.bind (Json.member "param_name" body) (function
        | Json.Str s -> Some s
        | _ -> None);
    st.params <- ints_of (Json.member "params" body);
    (match Json.member "seeds" body with
     | Some (Json.List l) -> st.seeds <- l
     | _ -> ())
  | "row" -> (
    match
      ( Option.bind (Json.member "param" body) Json.to_int,
        Json.member "cells" body )
    with
    | Some p, Some cells -> Hashtbl.replace st.rows p cells
    | _ -> ())
  | "state" -> (
    match Json.member "state" body with
    | Some (Json.Str "done") -> st.outcome <- Some (Completed (build_table st))
    | Some (Json.Str "failed") ->
      let quarantined =
        match Json.member "quarantined" body with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      let error =
        match Json.member "error" body with
        | Some (Json.Str e) -> e
        | _ -> "(no error recorded)"
      in
      st.outcome <- Some (Failed { quarantined; error })
    | Some (Json.Str "cancelled") -> st.outcome <- Some Cancelled
    | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The client                                                          *)
(* ------------------------------------------------------------------ *)

let watch ?(host = "127.0.0.1") ?(recv_timeout = default_recv_timeout)
    ?on_event ~port ~job () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Stream_error (Unix.error_message e)
  | fd -> (
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout;
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      send_all fd
        (Printf.sprintf
           "GET /jobs/%d/events HTTP/1.1\r\n\
            Host: %s:%d\r\n\
            Accept: text/event-stream\r\n\
            Connection: close\r\n\r\n"
           job host port);
      let r = { fd; raw = "" } in
      let status, headers = read_headers r in
      if status <> 200 then begin
        (* drain what the server sent so the error carries its body *)
        (try
           while fill r do
             ()
           done
         with _ -> ());
        raise
          (Stream_failed
             (Printf.sprintf "HTTP %d: %s" status (String.trim r.raw)))
      end;
      if List.assoc_opt "transfer-encoding" headers <> Some "chunked" then
        raise (Stream_failed "expected a chunked streaming response");
      let st =
        { exp = None;
          param_name = None;
          params = [];
          seeds = [];
          rows = Hashtbl.create 16;
          outcome = None }
      in
      let sse = ref "" in
      (* Peel complete frames off the decoded text, feed the state. *)
      let drain_frames () =
        let continue = ref true in
        while !continue && st.outcome = None do
          match find_sub !sse "\n\n" 0 with
          | None -> continue := false
          | Some i ->
            let frame = String.sub !sse 0 i in
            sse := String.sub !sse (i + 2) (String.length !sse - i - 2);
            (match parse_frame frame with
             | None -> () (* heartbeat *)
             | Some (typ, data) -> (
               match Json.parse_opt data with
               | None -> () (* not our protocol; skip *)
               | Some body ->
                 (match on_event with
                  | Some f -> ( try f ~typ body with _ -> ())
                  | None -> ());
                 handle_event st ~typ body))
        done
      in
      let finished = ref false in
      while (not !finished) && st.outcome = None do
        match take_chunk r with
        | `Data d ->
          sse := !sse ^ d;
          drain_frames ()
        | `End -> finished := true
        | `More ->
          if not (fill r) then
            (* server closed without the terminal chunk — still decode
               whatever arrived *)
            finished := true
      done;
      drain_frames ();
      match st.outcome with
      | Some o -> o
      | None ->
        Stream_error "stream ended before a terminal state event"
    with
    | Stream_failed msg -> Stream_error msg
    | Unix.Unix_error (e, fn, _) ->
      Stream_error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
