(** Sweep-as-a-service daemon: a bounded {!Queue} and supervised
    checkpointing {!Runner} over a durable {!Wal}, behind an [Obs.Http]
    handler.

    The handler claims the [/jobs] namespace plus [/readyz] —
    [POST /jobs] (202/400/429), [GET /jobs], [GET /jobs/:id],
    [GET /jobs/:id/table] (200/404/409), [GET /jobs/:id/metrics] (the
    job's labeled [{job_id="<id>"}] metric children as Prometheus text),
    [DELETE /jobs/:id] (200/202/404/409, idempotent on an
    already-cancelled job), [GET /readyz] (200, or 503 with JSON
    reasons: draining / saturated / wal-unwritable) — and returns [None]
    elsewhere so the observability server's builtin [/metrics],
    [/healthz] (pure liveness) and [/spans] keep working. Requests never
    run sweeps; the owner drives execution with {!step} from its own
    loop.

    {b Event streams.} Every committed queue transition, plus the
    runner's cell / checkpoint / row hooks and the supervisor's retry /
    quarantine verdicts, is published to an {!Events} broker. Mount
    {!stream_handler} alongside {!handler} to expose them as SSE:
    [GET /events] (firehose) and [GET /jobs/:id/events] (one job:
    synthesized [hello] greeting, replayed [row] backlog, then live
    events; the stream closes itself after a terminal [state] event). A
    slow client loses oldest-first from its own bounded buffer
    ([serve.events.dropped]) and never blocks the runner.

    {b Durability.} Admissions and terminal transitions are WAL-logged
    before the HTTP response. {!create} replays the WAL — skipping a
    torn tail, quarantining a corrupt file and keeping the sound prefix
    — re-admits live jobs with their ids and strike counts, parks jobs
    whose recorded strikes already exhaust the retry budget, and
    compacts the log. Resumed jobs restore from their checkpoints and
    finish with tables byte-identical to an uninterrupted run.

    Drain ({!request_drain}): in-flight cells finish, the checkpoint is
    written, the running job returns to Queued (a [Yielded] WAL record —
    not a strike), {!step} refuses further work and [POST /jobs] answers
    429. *)

open Sinr_obs

type t

val create :
  ?dir:string -> ?wal_dir:string -> ?max_queued:int ->
  ?checkpoint_every:int -> ?policy:Supervisor.policy -> unit -> t
(** [dir] (default ".") holds checkpoints and quarantine dumps;
    [wal_dir] (default [dir]) holds the WAL. Performs WAL recovery —
    replay, re-admission, compaction — before returning. *)

val queue : t -> Queue.t

val events : t -> Events.t
(** The broker behind {!stream_handler} — tests and embedders can
    subscribe directly. *)

val dir : t -> string
val wal_dir : t -> string
val wal : t -> Wal.t

val recovered : t -> int
(** Jobs re-admitted from the WAL at startup. *)

val wal_recovery : t -> [ `Clean | `Torn_tail | `Quarantined of string ]
(** What recovery found: a clean log, a torn final record (skipped), or
    mid-log corruption (the damaged file was moved to the returned
    path; the sound prefix was kept). *)

val handler : t -> Http.request -> Http.response option
(** Mount with [Http.serve ~handler:(Daemon.handler t)]. *)

val stream_handler : t -> Http.request -> Http.stream option
(** SSE routes ([/events], [/jobs/:id/events]); mount with
    [Http.serve ~stream_handler:(Daemon.stream_handler t)]. Unknown job
    ids fall through to {!handler} (404); without this mounted, GET on
    the event paths answers 503. *)

val step : t -> bool
(** Run the oldest runnable queued job through one supervised attempt
    (to a terminal state, a retry backoff, or its drain/cancel
    boundary); [false] when idle, draining, or every queued job is
    inside its backoff window — the caller sleeps then. *)

val request_drain : t -> unit
val draining : t -> bool

val close : t -> unit
(** Sync and close the WAL (the daemon itself needs no other teardown). *)
