(** Sweep-as-a-service daemon: a bounded {!Queue} and checkpointing
    {!Runner} behind an [Obs.Http] handler.

    The handler claims only the [/jobs] namespace —
    [POST /jobs] (202/400/429), [GET /jobs], [GET /jobs/:id],
    [DELETE /jobs/:id] (200/202/404/409) — and returns [None] elsewhere so
    the observability server's builtin [/metrics], [/healthz] and [/spans]
    keep working. Requests never run sweeps; the owner drives execution
    with {!step} from its own loop.

    Drain ({!request_drain}): in-flight cells finish, the checkpoint is
    written, the running job returns to Queued, {!step} refuses further
    work and [POST /jobs] answers 429. *)

open Sinr_obs

type t

val create :
  ?dir:string -> ?max_queued:int -> ?checkpoint_every:int -> unit -> t
(** [dir] (default ".") holds the checkpoint files. *)

val queue : t -> Queue.t
val dir : t -> string

val handler : t -> Http.request -> Http.response option
(** Mount with [Http.serve ~handler:(Daemon.handler t)]. *)

val step : t -> bool
(** Run the oldest queued job to a terminal state (or to its drain/cancel
    boundary); [false] when idle or draining — the caller sleeps then. *)

val request_drain : t -> unit
val draining : t -> bool
