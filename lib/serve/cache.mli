(** Warm-state cache for the sweep daemon: deployment builds (placement +
    already-faulted gain rows) keyed by a string identity, shared across
    jobs, LRU-evicted under the physics byte budget
    ([Phys_tuning.cache_cap_bytes] unless overridden).

    Determinism contract: a cached value must be bit-identical to a fresh
    build of the same key, so the key must encode {e everything} the build
    reads — workload, size parameter, seed, and any process-global physics
    knobs in effect. Concurrent misses on one key may both build; the
    first insert wins and the copies are identical by construction.

    Metrics (when enabled): [serve.cache.hits] / [serve.cache.misses] /
    [serve.cache.evictions] counters and the [serve.cache.bytes] gauge. *)

open Sinr_expt

type t

val create : ?cap_bytes:(unit -> int) -> unit -> t
(** [cap_bytes] is re-read at every insert (default
    [Phys_tuning.cache_cap_bytes]). *)

val shared : t
(** The process-shared instance the experiment registry uses. *)

val find_or_build :
  t -> string -> (unit -> Workloads.deployment * int array)
  -> Workloads.deployment * int array
(** [find_or_build t key build]: the cached entry for [key], or [build ()]
    inserted (evicting LRU entries past the byte cap; the newest entry is
    never evicted). [senders] is the cell's broadcast set, frozen with the
    deployment. *)

val length : t -> int
val bytes : t -> int
(** Current byte estimate: gain-cache residency plus placement overhead —
    it grows as cached deployments fault more rows in. *)

val clear : t -> unit
