(* Warm-state reuse across jobs: a deployment build (placement + the gain
   rows it already faulted in) is fully determined by its key, so two jobs
   sweeping overlapping (param, seed) cells share the expensive half of
   each cell and re-run only the measurement.

   Reads and inserts are mutex-protected but builds happen outside the
   lock: two workers racing on the same key both build, one insert wins,
   and because builds are deterministic in the key the loser's copy was
   identical anyway — determinism is never at stake, only effort.

   Byte accounting rides the physics budget: an entry's cost is its
   gain-cache residency ([Gain_cache.bytes_cached], which grows as rows
   fault in) plus a small placement term, and the total is kept under
   [Phys_tuning.cache_cap_bytes] by LRU eviction at insert time. *)

open Sinr_expt
open Sinr_phys
open Sinr_obs

let m_hits = Metrics.counter "serve.cache.hits"
let m_misses = Metrics.counter "serve.cache.misses"
let m_evictions = Metrics.counter "serve.cache.evictions"
let g_bytes = Metrics.gauge "serve.cache.bytes"

type entry = {
  dep : Workloads.deployment;
  senders : int array;
  mutable last_use : int;
}

type t = {
  mutex : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  cap_bytes : unit -> int;
}

let create ?cap_bytes () =
  { mutex = Mutex.create ();
    tbl = Hashtbl.create 16;
    tick = 0;
    cap_bytes =
      (match cap_bytes with
       | Some f -> f
       | None -> Phys_tuning.cache_cap_bytes) }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let entry_bytes e =
  Gain_cache.bytes_cached (Sinr.gain_cache e.dep.Workloads.sinr)
  + (24 * Sinr.n e.dep.Workloads.sinr) (* points *)
  + (8 * Array.length e.senders)
  + 128 (* record overhead, key, profile *)

let total_bytes t =
  Hashtbl.fold (fun _ e acc -> acc + entry_bytes e) t.tbl 0

(* Evict least-recently-used entries until the total fits the cap, but
   always keep the newest entry even if it alone overflows (otherwise a
   single large deployment would thrash on every cell). *)
let evict_to_cap t ~keep =
  let cap = t.cap_bytes () in
  let rec go () =
    if Hashtbl.length t.tbl > 1 && total_bytes t > cap then begin
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            if k = keep then acc
            else
              match acc with
              | Some (_, best) when best.last_use <= e.last_use -> acc
              | _ -> Some (k, e))
          t.tbl None
      in
      match victim with
      | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        Metrics.incr m_evictions;
        go ()
      | None -> ()
    end
  in
  go ();
  Metrics.set g_bytes (float_of_int (total_bytes t))

let find_or_build t key build =
  let hit =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          Some (e.dep, e.senders)
        | None -> None)
  in
  match hit with
  | Some v ->
    Metrics.incr m_hits;
    v
  | None ->
    Metrics.incr m_misses;
    let dep, senders = build () in
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          (* someone else inserted the identical build first *)
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          (e.dep, e.senders)
        | None ->
          t.tick <- t.tick + 1;
          Hashtbl.replace t.tbl key { dep; senders; last_use = t.tick };
          evict_to_cap t ~keep:key;
          (dep, senders))

let length t = locked t (fun () -> Hashtbl.length t.tbl)
let bytes t = locked t (fun () -> total_bytes t)
let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

(* The process-shared instance used by the registry cells. *)
let shared = create ()
