(** The experiments the sweep daemon serves, as [(param, seed) -> Json]
    cell functions pure in their pair — the property the checkpoint/resume
    machinery rests on.

    ["ack"]: Exp_ack's star grid (param = requested Δ), with the
    deployment build shared through {!Cache.shared}.
    ["chaos"]: one E-chaos jamming point (param = jam duty percent) on the
    fixed [n = 36, degree = 6] scenario. *)

open Sinr_obs

type t = {
  name : string;
  param_name : string;  (** what the integer parameter means, for tables *)
  check_param : int -> (unit, string) result;
  cell : param:int -> seed:int -> Json.t;
}

val all : t list
val find : string -> t option
val names : unit -> string list

val resolve : Spec.t -> (t, string) result
(** Experiment lookup plus per-experiment parameter range checks — the
    second half of admission validation (the caps live in
    {!Spec.validate}). *)
