(** Wire form of one sweep job: experiment name, integer parameter grid,
    seeds, optional pool-size override and checkpoint tag.

    [of_json] is strict (unknown fields rejected); {!validate} applies the
    admission caps ({!max_axis} entries per axis, {!max_cells} grid cells)
    so a single POST cannot ask the daemon for unbounded work. *)

open Sinr_obs

type t = {
  exp : string;          (** experiment name, resolved by [Registry] *)
  params : int list;     (** outer sweep axis *)
  seeds : int list;      (** inner sweep axis *)
  jobs : int option;     (** pool size override; results are unaffected *)
  tag : string option;   (** checkpoint file tag; default [job<id>] *)
}

val max_axis : int
val max_cells : int

val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result
val to_json : t -> Json.t

val cells : t -> int
(** [List.length params * List.length seeds]. *)

val validate : t -> (unit, string) result
(** Caps and well-formedness only — experiment-name resolution is the
    registry's job. *)

val equal : t -> t -> bool
(** Structural equality on the wire form — checkpoint/spec matching. *)
