(** Append-only write-ahead log for the daemon's job store.

    One record per line, [<crc32 hex> <one-line JSON>], appended with a
    single [O_APPEND] write so a crash tears at most the final line.
    Replay distinguishes the two failure shapes:

    - {b torn tail} — the final line fails CRC/parse: skipped silently
      (counted in [serve.wal.torn_tails]); this is the normal
      SIGKILL-mid-append residue;
    - {b corruption} — a bad line with valid records after it: replay
      keeps the sound prefix and reports [corrupt = true] so the caller
      can move the file aside ({!quarantine_file}) and restart clean.

    Durability is two-tier: submitted/terminal records fsync before
    {!append} returns; progress records (started/checkpointed/yielded)
    batch on [fsync_every].  All writer operations are mutex-protected
    (the HTTP accept domain and the job loop both append) and never
    raise: an I/O failure flips {!healthy}, which [/readyz] reports. *)

type event =
  | Submitted of Spec.t  (** job admitted (durable) *)
  | Started of int  (** attempt [n] (1-based) began *)
  | Checkpointed of int  (** [cells] done are on disk *)
  | Yielded  (** attempt closed gracefully (drain) — not a strike *)
  | Strikes of int  (** compaction form: [n] open attempts on record *)
  | Completed  (** terminal (durable) *)
  | Cancelled  (** terminal (durable) *)
  | Failed of string  (** terminal (durable) *)
  | Quarantined of string  (** terminal (durable): poison, parked *)

type record = { job : int; ev : event }

val path : dir:string -> string
(** [<dir>/serve.wal]. *)

val encode : record -> string
(** The on-disk line (without the newline): CRC, space, JSON. *)

val decode : string -> record option
(** Inverse of {!encode}; [None] on CRC mismatch or malformed JSON. *)

val crc32 : string -> int32
(** IEEE CRC-32 of a string (exposed for tests). *)

type t

val open_ : ?fsync_every:int -> dir:string -> unit -> t
(** Open (creating if missing) for appending. [fsync_every] (default 16,
    clamped [>= 1]) batches fsyncs of non-durable records. *)

val append : t -> record -> unit
(** Append one record. Never raises; I/O failure flips {!healthy}. *)

val sync : t -> unit
val healthy : t -> bool
val close : t -> unit

type replay = {
  records : record list;  (** the sound prefix, in append order *)
  torn_tail : bool;
  corrupt : bool;
}

val replay : dir:string -> replay
(** Read the log back; a missing file is an empty replay. *)

val quarantine_file : dir:string -> string option
(** Rename a damaged WAL to [serve.wal.corrupt(.k)]; the new name, or
    [None] if the rename failed. *)

val reset : ?fsync_every:int -> dir:string -> record list -> t
(** Atomically rewrite the log as exactly [records] (compaction at
    recovery), then reopen it for appending. *)
