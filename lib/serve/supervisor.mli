(** Supervision for daemon jobs: wall-clock deadlines, per-cell budgets,
    capped-exponential-backoff retries, and poison quarantine.

    {!run} drives one attempt of a {!Queue.job} through {!Runner.run_job}
    and classifies the outcome: success and cancellation are terminal
    (WAL-logged); a drain closes the attempt gracefully ([Yielded] — not
    a strike); any failure — a cell exception, a cell over its
    [cell_timeout_s] budget, or the job over its [deadline_s] — is a
    strike.  Strikes up to [max_retries] are retried with capped
    exponential backoff ([base_backoff_s] doubling to [max_backoff_s],
    the {!Sinr_proto.Mac_driver.with_retry} policy shape in wall-clock
    seconds); past that the job is {e quarantined}: parked as Failed
    with [quarantined] set and a flight-recorder dump attached, so one
    poison spec can never wedge the queue.

    Deadlines and cancellation are enforced at cell boundaries (cells
    are the atomicity unit); a cell that never returns is caught by the
    cross-process path — its WAL [Started] record has no closing record,
    so the next restart counts the strike.

    Metrics: [serve.retry.{attempts,recovered,gave_up}],
    [serve.deadline.exceeded], [serve.cell.timeouts] and the
    [serve.cell.seconds] histogram — the histogram also observed into a
    labeled [{job_id="<id>"}] child per attempt (plus
    [serve.retry.scheduled] and [serve.quarantine.jobs] from {!Queue}). *)

open Sinr_obs

exception Cell_timeout of { param : int; seed : int; elapsed : float }
(** Raised (by the cell wrapper, at cell completion) when a cell ran
    past [cell_timeout_s]. *)

type policy = {
  deadline_s : float;  (** wall-clock budget per attempt; [<= 0] = none *)
  cell_timeout_s : float;  (** budget per cell; [<= 0] = none *)
  max_retries : int;  (** strikes beyond the first attempt before
                          quarantine: a job is parked on strike
                          [max_retries + 1] *)
  base_backoff_s : float;  (** first retry delay *)
  max_backoff_s : float;  (** backoff cap *)
}

val default_policy : policy
(** No deadline, no cell budget, 2 retries, 0.25 s base backoff capped
    at 30 s. *)

type t

val create : ?policy:policy -> ?now:(unit -> float) -> unit -> t
(** [now] (default [Unix.gettimeofday]) is injectable for tests. *)

val policy : t -> policy

val backoff : t -> strikes:int -> float
(** The delay scheduled after the [strikes]-th failed attempt. *)

val run :
  t -> ?wal:Wal.t -> ?notify:(typ:string -> Json.t -> unit)
  -> ?should_stop:(unit -> bool) -> ?checkpoint_every:int
  -> dir:string -> Queue.t -> Queue.job -> unit
(** Run one supervised attempt.  On return the job is settled: Done,
    Cancelled, Failed (quarantined), Queued inside a backoff window
    (retry scheduled), or Queued cleanly (drain — [should_stop] fired).

    [notify] is forwarded to {!Runner.run_job} (cell / checkpoint / row
    events) and additionally fed supervision outcomes: ["retry"]
    [{job_id, attempt, error, backoff_s}] after a strike schedules a
    backoff, and ["quarantine"] [{job_id, attempts, reason, dump?}] when
    the job is parked. *)
