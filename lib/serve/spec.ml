(* A sweep spec is the wire form of one (experiment x param grid x seeds)
   job.  Parsing is strict — unknown fields are rejected so a typo'd knob
   fails loudly at submission instead of silently running the default —
   and the caps below bound what one POST can ask the daemon to do. *)

open Sinr_obs

type t = {
  exp : string;
  params : int list;
  seeds : int list;
  jobs : int option;
  tag : string option;
}

let max_axis = 64
let max_cells = 1024

let known_fields = [ "exp"; "params"; "seeds"; "jobs"; "tag" ]

let int_list_of_json = function
  | Json.List l ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | j :: tl -> (
        match Json.to_int j with
        | Some i -> go (i :: acc) tl
        | None -> None)
    in
    go [] l
  | _ -> None

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let of_json j =
  match j with
  | Json.Obj fields ->
    let* () =
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
      with
      | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
      | None -> Ok ()
    in
    let member k = Json.member k j in
    let* exp =
      match member "exp" with
      | Some (Json.Str exp) -> Ok exp
      | Some _ -> Error "exp: expected a string"
      | None -> Error "missing field \"exp\""
    in
    let* params =
      match Option.map int_list_of_json (member "params") with
      | Some (Some l) -> Ok l
      | _ -> Error "params: expected a list of integers"
    in
    let* seeds =
      match Option.map int_list_of_json (member "seeds") with
      | Some (Some l) -> Ok l
      | _ -> Error "seeds: expected a list of integers"
    in
    let* jobs =
      match member "jobs" with
      | None -> Ok None
      | Some f -> (
        match Json.to_int f with
        | Some n -> Ok (Some n)
        | None -> Error "jobs: expected an integer")
    in
    let* tag =
      match member "tag" with
      | None -> Ok None
      | Some (Json.Str tag) -> Ok (Some tag)
      | Some _ -> Error "tag: expected a string"
    in
    Ok { exp; params; seeds; jobs; tag }
  | _ -> Error "expected a JSON object"

let of_string s =
  match Json.parse_opt s with
  | None -> Error "malformed JSON"
  | Some j -> of_json j

let to_json t =
  Json.Obj
    (List.concat
       [ [ ("exp", Json.Str t.exp);
           ("params", Json.List (List.map Json.int t.params));
           ("seeds", Json.List (List.map Json.int t.seeds)) ];
         (match t.jobs with
          | None -> []
          | Some n -> [ ("jobs", Json.int n) ]);
         (match t.tag with
          | None -> []
          | Some s -> [ ("tag", Json.Str s) ]) ])

let cells t = List.length t.params * List.length t.seeds

let validate t =
  let axis name l =
    if l = [] then Error (name ^ ": must be non-empty")
    else if List.length l > max_axis then
      Error (Printf.sprintf "%s: at most %d entries" name max_axis)
    else if List.length (List.sort_uniq compare l) <> List.length l then
      Error (name ^ ": duplicate entries")
    else Ok ()
  in
  match axis "params" t.params with
  | Error _ as e -> e
  | Ok () -> (
    match axis "seeds" t.seeds with
    | Error _ as e -> e
    | Ok () ->
      if cells t > max_cells then
        Error (Printf.sprintf "grid too large (%d cells, cap %d)" (cells t)
                 max_cells)
      else
        match t.jobs with
        | Some n when n < 1 -> Error "jobs: must be >= 1"
        | _ -> (
          match t.tag with
          | Some tag
            when not
                   (String.length tag <= 64
                   && String.for_all
                        (fun c ->
                          (c >= 'a' && c <= 'z')
                          || (c >= 'A' && c <= 'Z')
                          || (c >= '0' && c <= '9')
                          || c = '-' || c = '_')
                        tag
                   && tag <> "") ->
            Error "tag: alphanumeric, '-' or '_', at most 64 chars"
          | _ -> Ok ()))

(* Specs are compared structurally when a checkpoint is restored; the
   wire form is the identity. *)
let equal a b = to_json a = to_json b
