(** Bounded job queue for the sweep daemon.

    Lifecycle: [Queued → Running → Done | Failed | Cancelled], plus
    [Running → Queued] on a drain ({!requeue} — the checkpoint makes the
    job resumable) and [Queued → Cancelled] directly. Admission depth
    counts Queued {e and} Running jobs — a Running job saturates the
    one-sweep-at-a-time pool — and {!submit} rejects at the cap, which the
    HTTP layer reports as 429.

    Metrics: [serve.jobs.{submitted,rejected,completed,failed,cancelled}]
    counters and the [serve.queue.depth] gauge. *)

open Sinr_obs

type state = Queued | Running | Done | Failed | Cancelled

val state_name : state -> string

type job = {
  id : int;
  spec : Spec.t;
  cells_total : int;
  submitted_at : float;
  cancel : bool Atomic.t;
      (** polled by the runner at cell boundaries *)
  mutable state : state;
  mutable cells_done : int;
  mutable restored : int;  (** cells restored from a checkpoint *)
  mutable partial : Json.t option;  (** completed cells so far *)
  mutable table : Json.t option;   (** final table once [Done] *)
  mutable error : string option;
  mutable finished_at : float option;
}

type t

val create : ?max_queued:int -> unit -> t
(** [max_queued] (default 8, clamped [>= 1]) caps Queued + Running. *)

val max_queued : t -> int
val depth : t -> int

val submit : t -> Spec.t -> (job, [ `Backpressure of int ]) result
(** Admit or reject; [`Backpressure depth] carries the depth seen. Spec
    and registry validation are the caller's job — the queue only bounds. *)

val take : t -> job option
(** Oldest Queued job, flipped to Running. *)

val find : t -> int -> job option
val jobs : t -> job list
(** Submission order. *)

val cancel :
  t -> int -> [ `Cancelled | `Cancelling | `Already_finished | `Not_found ]
(** Queued jobs cancel immediately; Running jobs get their flag set and
    the runner confirms at the next cell boundary ([`Cancelling]). *)

(** {1 Runner-side transitions} *)

val progress : t -> job -> cells_done:int -> partial:Json.t -> unit

val finish :
  t -> job -> [ `Done of Json.t | `Failed of string | `Cancelled ] -> unit

val requeue : t -> job -> unit
(** Drain: back to Queued, resumable from its checkpoint. *)
