(** Bounded job queue for the sweep daemon.

    Lifecycle: [Queued → Running → Done | Failed | Cancelled], plus
    [Running → Queued] on a drain ({!requeue} — the checkpoint makes the
    job resumable) or a supervised retry ({!retry} — with a backoff
    window that {!take} honors), and [Queued → Cancelled] directly.
    Admission depth counts Queued {e and} Running jobs — a Running job
    saturates the one-sweep-at-a-time pool — and {!submit} rejects at
    the cap, which the HTTP layer reports as 429. {!recover} re-admits
    jobs replayed from the WAL with their id and strike count intact.

    Metrics:
    [serve.jobs.{submitted,rejected,completed,failed,cancelled,recovered}],
    [serve.retry.scheduled], [serve.quarantine.jobs] counters and the
    [serve.queue.depth] gauge. *)

open Sinr_obs

type state = Queued | Running | Done | Failed | Cancelled

val state_name : state -> string

type job = {
  id : int;
  spec : Spec.t;
  cells_total : int;
  submitted_at : float;
  cancel : bool Atomic.t;
      (** polled by the runner at cell boundaries *)
  mutable state : state;
  mutable cells_done : int;
  mutable restored : int;  (** cells restored from a checkpoint *)
  mutable attempts : int;  (** supervision strikes (attempts started) *)
  mutable not_before : float;  (** retry backoff: {!take} skips until then *)
  mutable quarantined : bool;  (** parked as Failed by the supervisor *)
  mutable dump : string option;  (** flight-recorder dump path, if any *)
  mutable partial : Json.t option;  (** completed cells so far *)
  mutable table : Json.t option;   (** final table once [Done] *)
  mutable error : string option;  (** last failure (cleared on Done) *)
  mutable finished_at : float option;
}

type t

val create : ?max_queued:int -> unit -> t
(** [max_queued] (default 8, clamped [>= 1]) caps Queued + Running. *)

val on_transition : t -> (job -> unit) -> unit
(** Install the state-transition hook (the daemon feeds {!Events} with
    it): called after every committed transition — submit, recover,
    take, cancel, finish, requeue, retry — while the queue mutex is
    held, so observers see transitions in commit order. The hook must
    not call back into the queue; exceptions are swallowed. *)

val max_queued : t -> int
val depth : t -> int

val submit : t -> Spec.t -> (job, [ `Backpressure of int ]) result
(** Admit or reject; [`Backpressure depth] carries the depth seen. Spec
    and registry validation are the caller's job — the queue only bounds. *)

val recover : t -> id:int -> spec:Spec.t -> attempts:int -> job
(** Re-admit a WAL-replayed job as Queued, preserving its id and strike
    count; bypasses the admission cap (the job was admitted once
    already) and bumps [next_id] past [id]. *)

val take : ?now:float -> t -> job option
(** Oldest runnable Queued job, flipped to Running. Jobs whose
    [not_before] is after [now] (default [gettimeofday]) are skipped —
    they are serving a retry backoff. *)

val find : t -> int -> job option
val jobs : t -> job list
(** Submission order. *)

val cancel :
  t -> int ->
  [ `Cancelled | `Cancelling | `Already_cancelled | `Already_finished
  | `Not_found ]
(** Queued jobs cancel immediately; Running jobs get their flag set and
    the runner confirms at the next cell boundary ([`Cancelling]).
    Cancelling an already-cancelled job is [`Already_cancelled] —
    idempotent success, the HTTP layer answers 200 — while a Done or
    Failed job is [`Already_finished] (409). *)

(** {1 Runner/supervisor-side transitions} *)

val progress : t -> job -> cells_done:int -> partial:Json.t -> unit

val finish :
  t -> job ->
  [ `Done of Json.t | `Failed of string | `Quarantined of string
  | `Cancelled ] -> unit
(** [`Quarantined] parks the job as Failed with [quarantined] set — the
    supervisor's poison verdict. *)

val requeue : t -> job -> unit
(** Drain: back to Queued, resumable from its checkpoint. *)

val retry : t -> job -> not_before:float -> error:string -> unit
(** Supervised retry: back to Queued, but {!take} will not hand the job
    out before [not_before]. *)
