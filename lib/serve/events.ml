(* Bounded-fan-out event broker: the daemon's job lifecycle, narrated.

   Publishers (Queue state transitions, the Runner's cell/row/checkpoint
   hooks, the Supervisor's retry/quarantine path) push small JSON events
   tagged with a job id; subscribers (one per SSE client) each own a
   bounded FIFO drained by their stream's writer domain.

   The contract that keeps the runner safe from its audience:

   - [publish] NEVER blocks on a subscriber.  A full FIFO drops its
     oldest event (the client is behind; newest state is worth more than
     a complete history), counts it per-subscriber, and bumps the global
     [serve.events.dropped] counter.  A wedged client therefore costs
     the runner one mutex'd queue push per event, nothing more.
   - Sequence numbers are global and assigned under the broker mutex, so
     any two subscribers agree on the order of the events they both see,
     and a per-job subscriber sees its job's events in publish order.
   - [poll] is non-blocking; stream writers alternate poll/sleep so they
     can also watch their client and the server's stop flag.

   Cell events are published from pool worker domains (the runner's
   wrap_cell runs there), so everything here must be domain-safe: the
   broker mutex guards the subscriber list and sequence, each
   subscription's mutex guards its FIFO. *)

open Sinr_obs
module Fifo = Stdlib.Queue

let m_published = Metrics.counter "serve.events.published"
let m_dropped = Metrics.counter "serve.events.dropped"

type event = {
  seq : int; (* global publish order, 1-based *)
  job : int;
  typ : string; (* "state", "cell", "row", "checkpoint", "retry", ... *)
  body : Json.t;
}

type sub = {
  sub_job : int option; (* None = firehose *)
  sub_buffer : int;
  sub_mutex : Mutex.t;
  sub_events : event Fifo.t;
  mutable sub_dropped : int;
  mutable sub_closed : bool;
}

type t = {
  mutex : Mutex.t;
  buffer : int;
  mutable seq : int;
  mutable subs : sub list;
}

let default_buffer = 256

let create ?(buffer = default_buffer) () =
  { mutex = Mutex.create (); buffer = max 1 buffer; seq = 0; subs = [] }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let subscribe ?job t =
  let s =
    { sub_job = job;
      sub_buffer = t.buffer;
      sub_mutex = Mutex.create ();
      sub_events = Fifo.create ();
      sub_dropped = 0;
      sub_closed = false }
  in
  locked t.mutex (fun () -> t.subs <- s :: t.subs);
  s

let unsubscribe t s =
  locked s.sub_mutex (fun () -> s.sub_closed <- true);
  locked t.mutex (fun () -> t.subs <- List.filter (fun x -> x != s) t.subs)

let subscriber_count t = locked t.mutex (fun () -> List.length t.subs)

let publish t ~job ~typ body =
  let ev, subs =
    locked t.mutex (fun () ->
        t.seq <- t.seq + 1;
        ({ seq = t.seq; job; typ; body }, t.subs))
  in
  Metrics.incr m_published;
  List.iter
    (fun s ->
      let interested =
        match s.sub_job with None -> true | Some j -> j = job
      in
      if interested then
        locked s.sub_mutex (fun () ->
            if not s.sub_closed then begin
              if Fifo.length s.sub_events >= s.sub_buffer then begin
                ignore (Fifo.pop s.sub_events);
                s.sub_dropped <- s.sub_dropped + 1;
                Metrics.incr m_dropped
              end;
              Fifo.push ev s.sub_events
            end))
    subs

(* Drain everything currently queued, oldest first; non-blocking. *)
let poll s =
  locked s.sub_mutex (fun () ->
      let acc = ref [] in
      while not (Fifo.is_empty s.sub_events) do
        acc := Fifo.pop s.sub_events :: !acc
      done;
      List.rev !acc)

let dropped s = locked s.sub_mutex (fun () -> s.sub_dropped)
let pending s = locked s.sub_mutex (fun () -> Fifo.length s.sub_events)

(* ------------------------------------------------------------------ *)
(* SSE framing                                                         *)
(* ------------------------------------------------------------------ *)

(* One Server-Sent-Events frame.  Event bodies are single-line JSON
   (Json.to_string_json never emits a newline), so one [data:] line per
   frame suffices. *)
let sse_frame (ev : event) =
  Printf.sprintf "id: %d\nevent: %s\ndata: %s\n\n" ev.seq ev.typ
    (Json.to_string_json ev.body)

(* A synthesized frame (greeting / backlog replay) carries no global
   sequence id. *)
let sse_event ~typ body =
  Printf.sprintf "event: %s\ndata: %s\n\n" typ (Json.to_string_json body)

let sse_comment msg = Printf.sprintf ": %s\n\n" msg
