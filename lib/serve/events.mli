(** Bounded-fan-out event broker behind the daemon's SSE endpoints.

    Publishers tag each JSON event with a job id; each subscriber owns a
    bounded FIFO. {!publish} never blocks: a subscriber that stops
    draining loses its {e oldest} events (counted per-subscriber and in
    the global [serve.events.dropped] counter) while the runner carries
    on untouched. Sequence numbers are global, so a per-job subscriber
    sees its job's events in publish order and any two subscribers agree
    on the relative order of events they both received.

    Domain-safe: cell events are published from pool worker domains and
    drained by per-stream server domains. *)

open Sinr_obs

type t

type event = {
  seq : int;  (** global publish order, 1-based *)
  job : int;
  typ : string;
      (** ["state"], ["cell"], ["row"], ["checkpoint"], ["retry"],
          ["quarantine"] *)
  body : Json.t;
}

type sub
(** One subscription (= one SSE client). *)

val default_buffer : int
(** Events buffered per subscriber before the drop policy kicks in
    (256). *)

val create : ?buffer:int -> unit -> t

val subscribe : ?job:int -> t -> sub
(** Register a subscriber; [?job] filters to one job's events, absent
    means the firehose. Events published before the subscription are not
    replayed — the daemon's stream handler synthesizes a snapshot
    greeting instead. *)

val unsubscribe : t -> sub -> unit
(** Close and detach; pending events are discarded. Idempotent. *)

val publish : t -> job:int -> typ:string -> Json.t -> unit
(** Fan an event out to every interested subscriber, dropping each full
    subscriber's oldest event. Never blocks beyond the (non-hot-path)
    broker and per-subscriber mutexes. *)

val poll : sub -> event list
(** Drain everything currently queued, oldest first; non-blocking and
    empty when nothing is pending. *)

val dropped : sub -> int
(** Events dropped from this subscription so far. *)

val pending : sub -> int
val subscriber_count : t -> int

(** {1 SSE framing} *)

val sse_frame : event -> string
(** [id: <seq>\nevent: <typ>\ndata: <json>\n\n] — bodies are single-line
    JSON so one data line suffices. *)

val sse_event : typ:string -> Json.t -> string
(** A synthesized frame (greeting, backlog replay) without an [id:]
    line. *)

val sse_comment : string -> string
(** [: <msg>\n\n] — keep-alive heartbeat, ignored by SSE clients. *)
