(* Flat per-node engine state: bit-packed fault/wake maps and reusable
   slot scratch.

   The seed engine carried two [bool array]s (a word per node each) and
   allocated a fresh [n]-slot message array plus a sender list every
   slot.  At n = 10^6 that is 16 MB of bitmap traffic and ~8 MB of
   allocation per slot before any physics runs.  Here awake/crashed are
   Bytes-backed bitmaps (a bit per node, 125 KB each at 10^6) and the
   per-slot buffers are allocated once and recycled: the engine clears
   exactly the entries it wrote. *)

module Bits = struct
  type t = { nbits : int; b : Bytes.t }

  let create nbits = { nbits; b = Bytes.make ((nbits + 7) / 8) '\000' }

  let length t = t.nbits

  let[@inline] get t i =
    Char.code (Bytes.unsafe_get t.b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let[@inline] set t i v =
    let byte = i lsr 3 in
    let bit = 1 lsl (i land 7) in
    let cur = Char.code (Bytes.unsafe_get t.b byte) in
    let next = if v then cur lor bit else cur land lnot bit in
    Bytes.unsafe_set t.b byte (Char.unsafe_chr next)

  let clear t = Bytes.fill t.b 0 (Bytes.length t.b) '\000'
end

type 'm t = {
  n : int;
  awake : Bits.t;
  crashed : Bits.t;
  senders : int array;          (* slot scratch: ids of this slot's transmitters *)
  messages : 'm option array;   (* slot scratch: per-node offered message;
                                   all-None between slots (the engine clears
                                   exactly the sender entries it set) *)
}

let create n =
  if n <= 0 then invalid_arg "State.create: n must be positive";
  { n;
    awake = Bits.create n;
    crashed = Bits.create n;
    senders = Array.make n 0;
    messages = Array.make n None }

let n t = t.n
