(** Synchronous-slot SINR network simulator.

    Implements the model assumptions of paper Section 4.6: conditional
    wakeup (Definition 4.4), no collision detection, half-duplex radios,
    exact SINR reception. Polymorphic in the message type. *)

open Sinr_phys

type 'm action = Transmit of 'm | Listen

type 'm delivery = {
  receiver : int;
  sender : int;
  message : 'm;
  power : float;
      (** received power P/d^α of the decoded transmission (the observable
          of Remark 4.6's signal-strength assumption) *)
}

type 'm t

val create : ?wake_on_receive:bool -> ?trace:Trace.t -> Sinr.t -> 'm t
(** Fresh simulation with every node asleep. [wake_on_receive] (default
    true) makes asleep nodes wake when they decode a message, per the
    conditional-wakeup model. [trace] records Wake/Crash/Recover fault
    events as the simulation advances. *)

val set_perturb : 'm t -> (slot:int -> Sinr.perturb option) -> unit
(** Install a per-slot channel-perturbation hook (an adversary from
    [lib/chaos]). Consulted once per slot before SINR resolution; [None]
    keeps the clean-channel fast path. *)

val sinr : 'm t -> Sinr.t
val n : 'm t -> int
val slot : 'm t -> int
(** Slots executed so far (the global clock). *)

val tx_total : 'm t -> int
val delivery_total : 'm t -> int

val is_awake : 'm t -> int -> bool
val is_crashed : 'm t -> int -> bool

val wake : 'm t -> int -> unit
(** Environment wakeup (e.g. a [bcast] input). No effect on crashed nodes. *)

val wake_all : 'm t -> unit
val crash : 'm t -> int -> unit
(** Silence a node (fault injection). Idempotent: double-crash and
    crash-before-wake record a single Crash event. *)

val revive : 'm t -> int -> unit
(** Un-crash a node (crash–recover adversaries). The node rejoins asleep —
    conditional wakeup applies as for a fresh node. No effect on
    non-crashed nodes. *)

val awake_nodes : 'm t -> int list

val step :
  ?on_deliver:('m delivery -> unit) -> 'm t -> decide:(int -> 'm action) ->
  'm delivery list
(** Run one slot. [decide] is consulted only for awake, non-crashed nodes;
    all others listen. Returns the slot's deliveries. *)

val run :
  ?on_deliver:('m delivery -> unit) ->
  ?on_slot:(slot:int -> 'm delivery list -> unit) ->
  'm t -> decide:(int -> 'm action) ->
  stop:(unit -> bool) -> max_slots:int -> int
(** Step until [stop ()] or [max_slots] slots; returns slots executed.
    [on_slot] fires after each slot with its index and deliveries. *)
