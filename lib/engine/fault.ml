(* Crash-fault plans for the consensus experiments.

   The consensus problem (paper Section 4.5, from [44]) requires termination
   of every non-faulty process; these helpers build deterministic crash
   schedules and apply them as the simulation advances. *)

open Sinr_geom

type plan = (int * int) list (* (slot, node), sorted by slot *)

let none : plan = []

(* Crash [count] distinct nodes, avoiding [protect], at uniform slots within
   [0, horizon).  Exact sampling: shuffle the eligible nodes and take a
   prefix, so the plan always has exactly [count] victims — the old
   rejection loop was O(count²) and could silently under-sample when its
   try budget ran out. *)
let random_crashes rng ~n ~count ~horizon ~protect : plan =
  if count < 0 then invalid_arg "Fault.random_crashes: negative count";
  let protected_ = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Fault.random_crashes: protected node out of range";
      protected_.(v) <- true)
    protect;
  let eligible = ref [] in
  for v = n - 1 downto 0 do
    if not protected_.(v) then eligible := v :: !eligible
  done;
  let eligible = Array.of_list !eligible in
  if count > Array.length eligible then
    invalid_arg
      (Fmt.str
         "Fault.random_crashes: count %d exceeds the %d unprotected nodes"
         count (Array.length eligible));
  Rng.shuffle rng eligible;
  let plan =
    List.init count (fun i -> (Rng.int rng (max 1 horizon), eligible.(i)))
  in
  List.sort compare plan

(* Apply every crash scheduled at or before the engine's current slot.
   Returns the nodes crashed by this call. *)
let apply plan engine =
  let now = Engine.slot engine in
  let due, later = List.partition (fun (s, _) -> s <= now) plan in
  List.iter (fun (_, v) -> Engine.crash engine v) due;
  (List.map snd due, later)
