(** Crash-fault schedules for consensus fault-injection experiments. *)

open Sinr_geom

type plan = (int * int) list
(** [(slot, node)] pairs, sorted by slot. *)

val none : plan

val random_crashes :
  Rng.t -> n:int -> count:int -> horizon:int -> protect:int list -> plan
(** Exactly [count] distinct victims outside [protect] (shuffle-based exact
    sampling), each crashing at a uniform slot in [0, horizon). Raises
    [Invalid_argument] when [count] is negative or exceeds the number of
    unprotected nodes. *)

val apply : plan -> 'm Engine.t -> int list * plan
(** Crash every node whose slot has arrived; returns (newly crashed,
    remaining plan). *)
