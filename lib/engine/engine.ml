(* Synchronous-slot SINR network simulator.

   Time advances in discrete slots.  In every slot each awake, non-crashed
   node either transmits one message or listens; receptions are resolved by
   the exact SINR formula (Sinr.resolve).  The engine implements the model
   assumptions of paper Section 4.6:

   - conditional (non-spontaneous) wakeup, Definition 4.4: a node
     participates only after it is woken — by the environment (a bcast
     input, via [wake]) or by decoding its first message (asleep nodes
     listen with their radio on and wake on reception);
   - no collision detection: a listener that decodes nothing learns
     nothing, and cannot distinguish silence from collision;
   - half duplex: transmitters never receive.

   Crash faults (for the consensus experiments) silence a node entirely.

   The engine is polymorphic in the message type so the MAC layer and the
   protocols above it choose their own wire format. *)

open Sinr_phys
open Sinr_obs

(* Telemetry handles (see DESIGN.md "Observability" for the catalogue).
   Updates are single-branch no-ops unless [Metrics.set_enabled true]. *)
let m_slots = Metrics.counter "engine.slots"
let m_tx = Metrics.counter "engine.tx"
let m_listens = Metrics.counter "engine.listens"
let m_deliveries = Metrics.counter "engine.deliveries"
let m_collision_loss = Metrics.counter "engine.collision_loss"
let m_silence = Metrics.counter "engine.silence"
let m_wakeups = Metrics.counter "engine.wakeups"
let m_crashes = Metrics.counter "engine.crashes"
let m_recoveries = Metrics.counter "engine.recoveries"
let m_perturbed_slots = Metrics.counter "engine.perturbed_slots"
let m_slot_tx = Metrics.histogram "engine.slot_tx"
let m_slot_deliveries = Metrics.histogram "engine.slot_deliveries"
let m_resolve_ns = Metrics.histogram "engine.resolve.ns"
let m_resolve_minor = Metrics.histogram "engine.resolve.minor_w"

type 'm action = Transmit of 'm | Listen

type 'm delivery = {
  receiver : int;
  sender : int;
  message : 'm;
  power : float;
      (* received signal power P/d^alpha of the decoded transmission --
         the physical quantity a radio with signal-strength measurement
         (the paper's Remark 4.6 CCA assumption) can observe *)
}

type 'm t = {
  sinr : Sinr.t;
  mutable slot : int;
  state : 'm State.t;
      (* flat node state: bit-packed awake/crashed maps plus the reusable
         per-slot sender/message buffers (no per-slot O(n) allocation) *)
  wake_on_receive : bool;
  mutable tx_total : int;        (* transmissions across all slots *)
  mutable delivery_total : int;  (* successful decodings across all slots *)
  trace : Trace.t option;
      (* fault events (wake/crash/recover) are recorded here so Spec_check
         and the chaos experiments see the full execution *)
  mutable perturb : slot:int -> Sinr.perturb option;
      (* per-slot adversarial channel state (lib/chaos); the default is the
         clean channel *)
}

let create ?(wake_on_receive = true) ?trace sinr =
  let n = Sinr.n sinr in
  { sinr;
    slot = 0;
    state = State.create n;
    wake_on_receive;
    tx_total = 0;
    delivery_total = 0;
    trace;
    perturb = (fun ~slot:_ -> None) }

let set_perturb t f = t.perturb <- f

(* Fault/wake events go to the bounded trace (when one is attached) and,
   with tracing armed, to the flight recorder ring — the recorder check is
   the tracing layer's single load-and-branch. *)
let record t ev =
  (match t.trace with
   | Some tr -> Trace.record tr ~slot:t.slot ev
   | None -> ());
  if Recorder.is_enabled () then
    Recorder.event ~slot:t.slot (Trace.event_to_json ev)

let sinr t = t.sinr
let n t = Sinr.n t.sinr
let slot t = t.slot
let tx_total t = t.tx_total
let delivery_total t = t.delivery_total

let is_awake t v = State.Bits.get t.state.State.awake v
let is_crashed t v = State.Bits.get t.state.State.crashed v

let wake t v =
  let st = t.state in
  if (not (State.Bits.get st.State.crashed v))
     && not (State.Bits.get st.State.awake v)
  then begin
    Metrics.incr m_wakeups;
    State.Bits.set st.State.awake v true;
    record t (Trace.Wake { node = v })
  end

let wake_all t =
  for v = 0 to n t - 1 do
    wake t v
  done

(* Idempotent: a second crash of the same node (double-crash) and a crash
   of a still-asleep node are both no-ops beyond the first effect — exactly
   one Crash trace event and metric tick per node per down-phase. *)
let crash t v =
  let st = t.state in
  if not (State.Bits.get st.State.crashed v) then begin
    Metrics.incr m_crashes;
    State.Bits.set st.State.crashed v true;
    State.Bits.set st.State.awake v false;
    record t (Trace.Crash { node = v })
  end

(* Crash–recover adversaries un-crash a node: it rejoins asleep, so the
   conditional-wakeup rule (Definition 4.4) applies to the recovered node
   like to a fresh one — it participates again only after an environment
   wake or a decoded message. *)
let revive t v =
  if State.Bits.get t.state.State.crashed v then begin
    Metrics.incr m_recoveries;
    State.Bits.set t.state.State.crashed v false;
    record t (Trace.Recover { node = v })
  end

let awake_nodes t =
  let awake = t.state.State.awake in
  let acc = ref [] in
  for v = n t - 1 downto 0 do
    if State.Bits.get awake v then acc := v :: !acc
  done;
  !acc

(* Run one slot.  [decide v] is consulted only for awake, non-crashed nodes;
   everyone else listens.  Returns the deliveries of the slot.  Also calls
   [on_deliver] per delivery if given (before waking the receiver), so
   callers can distinguish "received while asleep". *)
let step ?on_deliver t ~decide =
  let n = n t in
  let st = t.state in
  let awake = st.State.awake and crashed = st.State.crashed in
  (* Reusable slot buffers (State): no per-slot O(n) allocation.  The
     [messages] invariant — all-None between slots — is restored under
     Fun.protect by clearing exactly the sender entries written, so a
     raising [decide]/[on_deliver] cannot poison the next slot. *)
  let messages = st.State.messages and senders = st.State.senders in
  let ntx = ref 0 in
  (* Profiler stage boundaries (profile.<stage>.ns, see lib/obs/profile).
     With the profiler off every [Profile.start] is one atomic load and
     every [Profile.stop] one float compare. *)
  let p_step = Profile.start () in
  Fun.protect
    ~finally:(fun () ->
      for i = 0 to !ntx - 1 do
        messages.(senders.(i)) <- None
      done)
  @@ fun () ->
  let p0 = Profile.start () in
  for v = 0 to n - 1 do
    if State.Bits.get awake v && not (State.Bits.get crashed v) then
      match decide v with
      | Transmit m ->
        messages.(v) <- Some m;
        senders.(!ntx) <- v;
        incr ntx
      | Listen -> ()
  done;
  Profile.stop Profile.Decide p0;
  let ntx = !ntx in
  (* The seed built its sender list by consing an ascending scan, so
     resolution accumulated interference in DESCENDING node order.
     Reverse the ascending prefix to keep every float — and therefore
     every decoding decision — bit-identical to the record-based path. *)
  for i = 0 to (ntx / 2) - 1 do
    let j = ntx - 1 - i in
    let tmp = senders.(i) in
    senders.(i) <- senders.(j);
    senders.(j) <- tmp
  done;
  t.tx_total <- t.tx_total + ntx;
  let telemetry = Metrics.is_enabled () in
  (* Hoisted once per slot, like [telemetry]: with tracing off the whole
     recorder integration is this one load-and-branch. *)
  let tracing = Recorder.is_enabled () in
  if telemetry then begin
    let p0 = Profile.start () in
    Metrics.incr m_slots;
    Metrics.add m_tx ntx;
    Metrics.observe_int m_slot_tx ntx;
    (* Awake, non-crashed nodes that chose (or defaulted) to listen. *)
    let listeners = ref 0 in
    for v = 0 to n - 1 do
      if State.Bits.get awake v
         && (not (State.Bits.get crashed v))
         && messages.(v) = None
      then incr listeners
    done;
    Metrics.add m_listens !listeners;
    Profile.stop Profile.Telemetry p0
  end;
  let deliveries = ref [] in
  let ndeliv = ref 0 in
  if ntx > 0 then begin
    (* The adversary's channel state for this slot; [None] keeps the exact
       clean-channel resolution path. *)
    let p0 = Profile.start () in
    let perturb = t.perturb ~slot:t.slot in
    Profile.stop Profile.Perturb p0;
    if telemetry && Option.is_some perturb then Metrics.incr m_perturbed_slots;
    let p0 = Profile.start () in
    let outcome =
      if telemetry then begin
        let r = Timer.start () in
        let o = Sinr.resolve_array ?perturb t.sinr ~senders ~nsenders:ntx in
        Timer.observe_span ~ns:m_resolve_ns ~minor_w:m_resolve_minor
          (Timer.stop r);
        o
      end
      else Sinr.resolve_array ?perturb t.sinr ~senders ~nsenders:ntx
    in
    Profile.stop Profile.Resolve p0;
    let any_in_range u =
      let rec go i =
        i < ntx && (Sinr.in_range t.sinr senders.(i) u || go (i + 1))
      in
      go 0
    in
    let p0 = Profile.start () in
    for u = 0 to n - 1 do
      if not (State.Bits.get crashed u) then
        match outcome.(u) with
        | Some v ->
          (match messages.(v) with
           | Some m ->
             (* Cached-gain lookup: same value as power_between on the two
                positions, without re-deriving the path loss. *)
             let power = Sinr.power t.sinr ~sender:v ~receiver:u in
             let d = { receiver = u; sender = v; message = m; power } in
             if tracing then
               Recorder.event ~slot:t.slot
                 (Json.Obj
                    [ ("ev", Json.Str "deliver"); ("rx", Json.int u);
                      ("tx", Json.int v) ]);
             (match on_deliver with Some f -> f d | None -> ());
             deliveries := d :: !deliveries;
             t.delivery_total <- t.delivery_total + 1;
             incr ndeliv;
             if t.wake_on_receive then wake t u
           | None -> assert false)
        | None ->
          (* An awake listener that decoded nothing: either some sender was
             within range (collision / interference loss) or none was
             (silence).  The node itself cannot tell (no collision
             detection); the observer can, so split the two. *)
          if telemetry && State.Bits.get awake u && messages.(u) = None then
            if any_in_range u then Metrics.incr m_collision_loss
            else Metrics.incr m_silence
    done;
    Profile.stop Profile.Delivery p0
  end;
  if telemetry then begin
    let p0 = Profile.start () in
    Metrics.add m_deliveries !ndeliv;
    Metrics.observe_int m_slot_deliveries !ndeliv;
    Profile.stop Profile.Telemetry p0
  end;
  t.slot <- t.slot + 1;
  let out = List.rev !deliveries in
  Profile.stop Profile.Step p_step;
  out

(* Drive the simulation until [stop] returns true or [max_slots] elapse.
   Returns the number of slots executed.  [on_slot] fires after every slot
   with that slot's index and deliveries, so observers can hook slot
   boundaries without reimplementing the loop. *)
let run ?on_deliver ?on_slot t ~decide ~stop ~max_slots =
  let start = t.slot in
  let rec loop () =
    if stop () || t.slot - start >= max_slots then t.slot - start
    else begin
      let ds = step ?on_deliver t ~decide in
      (match on_slot with Some f -> f ~slot:(t.slot - 1) ds | None -> ());
      loop ()
    end
  in
  loop ()
