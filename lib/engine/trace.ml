(* Bounded event traces for debugging and for assertions over executions.

   The absMAC specification (Section 4.4) is stated over executions — ordered
   sequences of bcast/rcv/ack events with timing constraints.  Tests record
   executions with this module and then check spec predicates over them. *)

type event =
  | Bcast of { node : int; msg : int }  (* environment handed msg to node *)
  | Rcv of { node : int; msg : int; from : int }
  | Ack of { node : int; msg : int }
  | Abort of { node : int; msg : int }
  | Wake of { node : int }
  | Crash of { node : int }
  | Recover of { node : int } (* crash–recover adversaries revive the node *)
  | Note of string

type entry = { slot : int; event : event }

type t = {
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable size : int;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  { capacity; entries = []; size = 0; dropped = 0 }

(* Tail-recursive prefix-take: the buffer holds up to 100k entries by
   default, well past the point where a non-tail scan risks the stack. *)
let take_prefix k entries =
  let rec go acc k = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | e :: rest -> go (e :: acc) (k - 1) rest
  in
  go [] k entries

let record t ~slot event =
  if t.size >= t.capacity then begin
    (* Drop the oldest half rather than scanning per insert. *)
    let keep = t.capacity / 2 in
    t.dropped <- t.dropped + (t.size - keep);
    t.entries <- take_prefix keep t.entries;
    t.size <- keep
  end;
  t.entries <- { slot; event } :: t.entries;
  t.size <- t.size + 1

let events t = List.rev t.entries

let dropped t = t.dropped

let find_first t pred =
  (* Oldest-first scan; List.rev and the walk are both tail-recursive, so a
     full-capacity buffer cannot blow the stack. *)
  let rec scan = function
    | [] -> None
    | e :: rest -> if pred e then Some e else scan rest
  in
  scan (List.rev t.entries)

let count t pred =
  List.fold_left (fun acc e -> if pred e then acc + 1 else acc) 0 t.entries

let pp_event ppf = function
  | Bcast { node; msg } -> Fmt.pf ppf "bcast(m%d)_%d" msg node
  | Rcv { node; msg; from } -> Fmt.pf ppf "rcv(m%d<-%d)_%d" msg from node
  | Ack { node; msg } -> Fmt.pf ppf "ack(m%d)_%d" msg node
  | Abort { node; msg } -> Fmt.pf ppf "abort(m%d)_%d" msg node
  | Wake { node } -> Fmt.pf ppf "wake_%d" node
  | Crash { node } -> Fmt.pf ppf "crash_%d" node
  | Recover { node } -> Fmt.pf ppf "recover_%d" node
  | Note s -> Fmt.pf ppf "note(%s)" s

let pp_entry ppf e = Fmt.pf ppf "[%6d] %a" e.slot pp_event e.event

(* ------------------------------------------------------------------ *)
(* Structured export (JSONL, one event per line)                       *)
(* ------------------------------------------------------------------ *)

let event_to_json =
  let open Sinr_obs.Json in
  function
  | Bcast { node; msg } ->
    Obj [ ("ev", Str "bcast"); ("node", int node); ("msg", int msg) ]
  | Rcv { node; msg; from } ->
    Obj
      [ ("ev", Str "rcv"); ("node", int node); ("msg", int msg);
        ("from", int from) ]
  | Ack { node; msg } ->
    Obj [ ("ev", Str "ack"); ("node", int node); ("msg", int msg) ]
  | Abort { node; msg } ->
    Obj [ ("ev", Str "abort"); ("node", int node); ("msg", int msg) ]
  | Wake { node } -> Obj [ ("ev", Str "wake"); ("node", int node) ]
  | Crash { node } -> Obj [ ("ev", Str "crash"); ("node", int node) ]
  | Recover { node } -> Obj [ ("ev", Str "recover"); ("node", int node) ]
  | Note s -> Obj [ ("ev", Str "note"); ("text", Str s) ]

let entry_to_json e =
  match event_to_json e.event with
  | Sinr_obs.Json.Obj fields ->
    Sinr_obs.Json.Obj (("slot", Sinr_obs.Json.int e.slot) :: fields)
  | j -> j

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Sinr_obs.Json.to_string_json (entry_to_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let write_jsonl t path = Sinr_obs.Sink.write_file path (to_jsonl t)
