(** Flat per-node engine state: bit-packed wake/fault maps plus reusable
    per-slot buffers (see DESIGN.md §15 — the engine's half of the
    structure-of-arrays refactor). *)

(** Bit-per-node bitmap over [Bytes]. *)
module Bits : sig
  type t

  val create : int -> t
  (** All-false bitmap of the given length. *)

  val length : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val clear : t -> unit
end

type 'm t = {
  n : int;
  awake : Bits.t;
  crashed : Bits.t;
  senders : int array;
      (** slot scratch: the first [ntx] entries are the slot's transmitters *)
  messages : 'm option array;
      (** slot scratch: per-node offered message; all-[None] between slots *)
}

val create : int -> 'm t
val n : 'm t -> int
