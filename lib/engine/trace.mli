(** Bounded traces of absMAC-level events, used by tests to check the
    specification's execution predicates. *)

type event =
  | Bcast of { node : int; msg : int }
  | Rcv of { node : int; msg : int; from : int }
  | Ack of { node : int; msg : int }
  | Abort of { node : int; msg : int }
  | Wake of { node : int }
  | Crash of { node : int }
  | Recover of { node : int }
  | Note of string

type entry = { slot : int; event : event }

type t

val create : ?capacity:int -> unit -> t
(** When full, the oldest half is discarded (see {!dropped}). *)

val record : t -> slot:int -> event -> unit
val events : t -> entry list
(** Oldest first. *)

val dropped : t -> int
val find_first : t -> (entry -> bool) -> entry option
val count : t -> (entry -> bool) -> int
val pp_event : event Fmt.t
val pp_entry : entry Fmt.t

val event_to_json : event -> Sinr_obs.Json.t
(** The event alone, as [{"ev":..., ...}] — the flight recorder mirrors
    events through this without the slot field (the recorder stamps its
    own). *)

val entry_to_json : entry -> Sinr_obs.Json.t
val to_jsonl : t -> string
(** All retained events, oldest first, one JSON object per line. *)

val write_jsonl : t -> string -> unit
(** [write_jsonl t path] dumps {!to_jsonl} to [path]. *)
