(* Execution checking against the absMAC specification.

   The abstract MAC layer spec (paper Section 4.4, plus Definition 12.2's
   "nice" broadcasts and Definition 7.1's approximate progress) is stated
   over executions: sequences of bcast/rcv/ack/abort events with timing
   constraints.  This module replays a recorded {!Trace.t} and scores it
   against the spec, for a given communication graph and bounds:

   - acknowledgment: every un-aborted bcast(m)_i is followed by ack(m)_i
     within f_ack;
   - niceness (Def 12.2): the ack is preceded by rcv(m)_j at every
     G-neighbor j of i;
   - progress (Sec 4.4) / approximate progress (Def 7.1): whenever some
     neighbor of a listener has had an active broadcast for f_prog
     (f_approg) time, the listener has a rcv during that window.

   The ideal MAC must score perfectly with eps = 0; Algorithm 11.1 is
   checked statistically (the spec itself is probabilistic). *)

open Sinr_graph
open Sinr_engine

type broadcast = {
  origin : int;
  msg : int;
  start : int;
  finish : int option;  (* ack or abort slot *)
  acked : bool;
  rcvs : (int * int) list; (* (node, slot), the receptions of this msg *)
}

type report = {
  broadcasts : int;
  acked : int;
  aborted : int;
  unfinished : int;
  ack_delays : int list;
  late_acks : int;     (* acks beyond f_ack *)
  nice : int;          (* acked with rcv at every neighbor first *)
  not_nice : int;
  progress_checks : int;
  progress_violations : int;
}

(* Rebuild per-broadcast histories from the trace.  Payload identity in
   traces is (origin, seq). *)
let broadcasts_of_trace trace =
  let open Trace in
  let tbl : (int * int, broadcast) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun { slot; event } ->
      match event with
      | Bcast { node; msg } ->
        Hashtbl.replace tbl (node, msg)
          { origin = node; msg; start = slot; finish = None; acked = false;
            rcvs = [] }
      | Ack { node; msg } ->
        (match Hashtbl.find_opt tbl (node, msg) with
         | Some b ->
           Hashtbl.replace tbl (node, msg)
             { b with finish = Some slot; acked = true }
         | None -> ())
      | Abort { node; msg } ->
        (match Hashtbl.find_opt tbl (node, msg) with
         | Some b -> Hashtbl.replace tbl (node, msg) { b with finish = Some slot }
         | None -> ())
      | Rcv { node; msg; from } ->
        (match Hashtbl.find_opt tbl (from, msg) with
         | Some b ->
           Hashtbl.replace tbl (from, msg)
             { b with rcvs = (node, slot) :: b.rcvs }
         | None -> ())
      | Wake _ | Crash _ | Recover _ | Note _ -> ())
    (Trace.events trace);
  Hashtbl.fold (fun _ b acc -> b :: acc) tbl []

(* Progress scoring: for listener [i], merge the active intervals of its
   graph-neighbors' broadcasts; every window of length [f] inside an
   active interval must contain a rcv at [i].  We check only the first
   window of each maximal interval — the binding case, and the literal
   reading of the spec's "interval of length f_prog throughout which u is
   broadcasting". *)
let progress_score ~graph ~f ~horizon broadcasts =
  let n = Graph.n graph in
  let rcv_slots = Array.make n [] in
  List.iter
    (fun (b : broadcast) -> List.iter (fun (node, slot) -> rcv_slots.(node) <- slot :: rcv_slots.(node)) b.rcvs)
    broadcasts;
  let checks = ref 0 and violations = ref 0 in
  for i = 0 to n - 1 do
    let neighbor_intervals =
      List.filter_map
        (fun (b : broadcast) ->
          if Graph.mem_edge graph i b.origin then
            let finish = Option.value b.finish ~default:horizon in
            if finish > b.start then Some (b.start, finish) else None
          else None)
        broadcasts
    in
    (* Merge overlapping intervals. *)
    let merged =
      List.sort compare neighbor_intervals
      |> List.fold_left
           (fun acc (s, e) ->
             match acc with
             | (s0, e0) :: rest when s <= e0 -> (s0, max e0 e) :: rest
             | _ -> (s, e) :: acc)
           []
      |> List.rev
    in
    List.iter
      (fun (s, e) ->
        if e - s >= f then begin
          incr checks;
          let served =
            List.exists (fun t -> t >= s && t <= s + f) rcv_slots.(i)
          in
          if not served then incr violations
        end)
      merged
  done;
  (!checks, !violations)

let check trace ~graph ~f_ack ~f_prog ~horizon =
  let bs = broadcasts_of_trace trace in
  let acked = List.filter (fun (b : broadcast) -> b.acked) bs in
  let aborted =
    List.filter (fun (b : broadcast) -> b.finish <> None && not b.acked) bs
  in
  let unfinished = List.filter (fun (b : broadcast) -> b.finish = None) bs in
  let ack_delays =
    List.map (fun (b : broadcast) -> Option.get b.finish - b.start) acked
  in
  let late_acks = List.length (List.filter (fun d -> d > f_ack) ack_delays) in
  let nice, not_nice =
    List.fold_left
      (fun (nice, not_nice) (b : broadcast) ->
        let ack_slot = Option.get b.finish in
        let nbrs = Graph.neighbors graph b.origin in
        let ok =
          Array.for_all
            (fun j ->
              List.exists (fun (node, slot) -> node = j && slot <= ack_slot)
                b.rcvs)
            nbrs
        in
        if ok then (nice + 1, not_nice) else (nice, not_nice + 1))
      (0, 0) acked
  in
  let progress_checks, progress_violations =
    progress_score ~graph ~f:f_prog ~horizon bs
  in
  { broadcasts = List.length bs;
    acked = List.length acked;
    aborted = List.length aborted;
    unfinished = List.length unfinished;
    ack_delays;
    late_acks;
    nice;
    not_nice;
    progress_checks;
    progress_violations }

(* Hard spec violations (the flight-recorder dump trigger): acks past
   f_ack plus unserved progress windows.  Aborted/unfinished broadcasts
   are not violations — the spec permits aborts and open horizons. *)
let violations r = r.late_acks + r.progress_violations

let pp ppf r =
  Fmt.pf ppf
    "spec: bcasts=%d acked=%d aborted=%d unfinished=%d late_acks=%d \
     nice=%d/%d progress=%d/%d ok"
    r.broadcasts r.acked r.aborted r.unfinished r.late_acks r.nice
    (r.nice + r.not_nice)
    (r.progress_checks - r.progress_violations)
    r.progress_checks
