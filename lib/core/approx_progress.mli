(** Algorithm 9.1 — fast approximate progress (paper Theorem 9.1).

    Epochs of Φ = Θ(log Λ) phases; per phase: estimate the reliability
    graph H̃̃^μ_p[S_φ], sparsify S_φ by the modified non-unique-label MIS,
    then transmit the bcast-message with probability p/Q. The machine is
    driven one slot at a time ({!decide} / {!on_receive} / {!end_slot}) so
    Algorithm 11.1 can interleave it with the acknowledgment algorithm. *)

open Sinr_geom
open Sinr_phys

type t

type rcv_event = { node : int; payload : Events.payload; from : int }

val create :
  Params.approg -> Config.t -> lambda:float -> n:int -> rng:Rng.t -> t

val schedule : t -> Params.schedule
(** The concrete slot layout in effect (epoch/phase/stage lengths). *)

val start : t -> node:int -> Events.payload -> unit
(** Give the node an ongoing broadcast; it joins S₁ at the next epoch. *)

val stop : t -> node:int -> unit
val has_payload : t -> node:int -> bool

val decide : t -> node:int -> Events.wire option
(** Transmission decision of the node for the current slot. *)

val on_receive : t -> receiver:int -> sender:int -> Events.wire -> unit
(** Feed one delivery of the current slot. *)

val end_slot : t -> rcv_event list
(** Close the current slot (stage transitions, MIS round completion, phase
    and epoch roll-over) and return the rcv outputs produced. *)

(** {1 Introspection} *)

val pos : t -> int
(** Slot index within the current epoch. *)

val epoch_index : t -> int
val current_phase : t -> int
val member : t -> node:int -> bool
(** Whether the node is currently in S_φ (and not dropped). *)

val drops_total : t -> int
(** Nodes that left an epoch due to unsuccessful communication (the W-set
    feed of Lemma 10.3), accumulated. *)

val last_h_graph : t -> Sinr_graph.Graph.t option
(** Symmetrized snapshot of the latest H̃̃ estimate (diagnostics). *)

val drain_rcv : t -> rcv_event list
(** Pull rcv outputs accumulated since the last drain (used by the combined
    MAC after even-slot deliveries; {!end_slot} drains implicitly). *)

(** {1 Causal tracing hooks} *)

val set_clock : t -> (unit -> int) -> unit
(** Install the engine-slot clock for the epoch/phase/stage spans the
    machine emits while tracing is enabled (Combined_mac installs
    [Engine.slot]; the default counts this machine's own slots). *)
