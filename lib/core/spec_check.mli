(** Execution checking against the absMAC specification (Section 4.4,
    Definition 12.2's niceness, and the progress window conditions).
    Replays a recorded trace and scores it for a given communication graph
    and delay bounds. *)

open Sinr_graph
open Sinr_engine

type report = {
  broadcasts : int;
  acked : int;
  aborted : int;
  unfinished : int;
  ack_delays : int list;
  late_acks : int;             (** acks later than f_ack *)
  nice : int;                  (** Def 12.2: rcv at every neighbor first *)
  not_nice : int;
  progress_checks : int;       (** qualifying neighbor-activity windows *)
  progress_violations : int;   (** windows with no rcv at the listener *)
}

val check :
  Trace.t -> graph:Graph.t -> f_ack:int -> f_prog:int -> horizon:int ->
  report
(** [graph] is the communication graph the spec is read against (G₁₋ε for
    acknowledgments/progress, G₁₋₂ε for approximate progress — pass the
    matching [f_prog]); [horizon] closes still-open broadcasts. *)

val violations : report -> int
(** Hard violations: [late_acks + progress_violations]. Non-zero triggers
    the flight-recorder dump in the chaos experiments. *)

val pp : report Fmt.t
