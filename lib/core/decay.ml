(* The BGI Decay strategy (Bar-Yehuda, Goldreich, Itai), as analyzed by the
   paper's Theorem 8.1.

   Each broadcasting node sweeps its transmission probability down from 1,
   halving every slot, over cycles of length log2(N~) + 1, and repeats the
   cycle.  (The original algorithm stops a cycle at the first
   collision-free slot, but that requires collision detection; the paper's
   lower bound explicitly notes that granting collision detection only
   strengthens the bound, and the standard CD-free usage is the cyclic
   sweep implemented here.)

   Theorem 8.1 shows this strategy needs Omega(Delta * log(1/eps)) slots
   for approximate progress on the two-balls construction; experiment E4
   measures exactly that against Algorithm 9.1. *)

open Sinr_geom
open Sinr_obs

(* Telemetry: the baseline's transmission volume and probability sweep. *)
let m_tx = Metrics.counter "decay.tx"
let m_slots = Metrics.counter "decay.slots"
let m_cycles = Metrics.counter "decay.cycles"

type t = {
  cycle_len : int;
  nodes : Events.payload option array;
  start_slot : int array; (* slot at which the node joined, aligns cycles *)
  rng : Rng.t;
}

let create ~n_tilde ~n ~rng =
  if n_tilde < 2 then invalid_arg "Decay.create: n_tilde < 2";
  { cycle_len = 1 + int_of_float (Float.ceil (Float.log2 (float_of_int n_tilde)));
    nodes = Array.make n None;
    start_slot = Array.make n 0;
    rng }

let cycle_len t = t.cycle_len

let start t ~node ~slot payload =
  t.nodes.(node) <- Some payload;
  t.start_slot.(node) <- slot

let stop t ~node = t.nodes.(node) <- None

let active t ~node = t.nodes.(node) <> None

(* Transmission decision at the global [slot]. Probability 2^-i where i is
   the position within the node's current cycle. *)
let decide t ~node ~slot =
  match t.nodes.(node) with
  | None -> None
  | Some payload ->
    let i = (slot - t.start_slot.(node)) mod t.cycle_len in
    Metrics.incr m_slots;
    if i = 0 then Metrics.incr m_cycles;
    let p = 1. /. float_of_int (1 lsl i) in
    if Rng.bernoulli t.rng p then begin
      Metrics.incr m_tx;
      Some (Events.Decay payload)
    end
    else None
