(* Algorithm 11.1 — the full absMAC implementation over the SINR simulator
   (paper Theorem 11.1).

   Two sub-algorithms run in parallel by slot interleaving:

     even engine slots : the acknowledgment algorithm of Theorem 5.1
                         (Halldorsson–Mitra Algorithm B.1, {!Hm_ack}),
     odd engine slots  : the approximate-progress Algorithm 9.1
                         ({!Approx_progress}).

   On a bcast(m)_i input the node wakes, hands m to both machines and runs
   for at most f_ack slots; the ack(m)_i output fires when Algorithm B.1
   halts (its probability budget is spent — Lemma B.20 guarantees delivery
   with probability 1 - eps_ack/2 by then) or at the f_ack cap, whichever
   comes first (the paper's "stop after f_ack rounds", proof of
   Theorem 5.1).  An abort(m)_i input silences the payload without an ack;
   the node keeps participating in the current epoch's coordination (the
   paper's abort clause (i)) because phase membership is only re-evaluated
   at epoch boundaries.

   rcv(m)_j outputs fire on data receptions from either half, deduplicated
   per (node, message).  This module implements {!Absmac_intf.S}. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_obs

(* Telemetry: the Algorithm 11.1 even/odd interleaving and absMAC events. *)
let m_slots_even = Metrics.counter "mac.slots_even"
let m_slots_odd = Metrics.counter "mac.slots_odd"
let m_bcasts = Metrics.counter "mac.bcasts"
let m_acks = Metrics.counter "mac.acks"
let m_acks_capped = Metrics.counter "mac.acks_capped"
let m_aborts = Metrics.counter "mac.aborts"
let m_rcvs = Metrics.counter "mac.rcvs"
let m_data_rejected = Metrics.counter "mac.data_rejected"
let m_crash_drops = Metrics.counter "mac.crash_drops"
let m_ack_delay = Metrics.histogram "mac.ack_delay"

type t = {
  engine : Events.wire Engine.t;
  hm : Hm_ack.t;
  approg : Approx_progress.t;
  lambda : float;
  exact_threshold : float option;
      (* Remark 4.6 exact mode: minimum received power (= P/R_{1-eps}^alpha)
         for a data reception to produce a rcv output; [None] = accept all *)
  fack_cap : int; (* engine slots *)
  bounds : Absmac_intf.bounds;
  mutable handlers : Absmac_intf.handlers;
  mutable raw_rcv_hook : (Approx_progress.rcv_event -> unit) option;
  seq : int array;
  ongoing : Events.payload option array;
  bcast_slot : int array;
  last_ack_capped : bool array;
  trace : Trace.t option;
  spans : Span.id array;     (* per-node root span of the ongoing bcast *)
  hm_spans : Span.id array;  (* its hm.bcast child *)
}

let create ?(ack_params = Params.default_ack)
    ?(approg_params = Params.default_approg) ?(exact = false) ?trace sinr
    ~rng =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let strong = Induced.strong config (Sinr.points sinr) in
  let delta = Sinr_graph.Graph.max_degree strong in
  let hm = Hm_ack.create ack_params ~lambda ~n ~rng:(Rng.split rng ~key:1) in
  let approg =
    Approx_progress.create approg_params config ~lambda ~n
      ~rng:(Rng.split rng ~key:2)
  in
  let sched = Approx_progress.schedule approg in
  (* HM runs on even slots only: its slot cap doubles in engine slots. *)
  let fack_cap =
    2
    * Params.f_ack_cap ~delta ~lambda ~eps_ack:ack_params.Params.eps_ack ()
  in
  (* Approximate progress is guaranteed within one full epoch; a broadcast
     may start just after an epoch boundary, so two epochs of odd slots
     bound the wait. *)
  let f_approg = 4 * sched.Params.epoch_slots in
  let bounds =
    { Absmac_intf.f_ack = fack_cap;
      f_prog = fack_cap; (* Theorem 6.1: no better G_{1-eps} progress bound *)
      f_approg;
      eps_ack = ack_params.Params.eps_ack;
      eps_prog = ack_params.Params.eps_ack;
      eps_approg = approg_params.Params.eps_approg }
  in
  let exact_threshold =
    if exact then
      Some
        (config.Config.power /. (Config.strong_range config ** config.Config.alpha))
    else None
  in
  let engine = Engine.create ?trace sinr in
  (* Span annotations from the sub-machines carry engine slots. *)
  Hm_ack.set_clock hm (fun () -> Engine.slot engine);
  Approx_progress.set_clock approg (fun () -> Engine.slot engine);
  { engine;
    hm;
    approg;
    lambda;
    exact_threshold;
    fack_cap;
    bounds;
    handlers = Absmac_intf.null_handlers;
    raw_rcv_hook = None;
    seq = Array.make n 0;
    ongoing = Array.make n None;
    bcast_slot = Array.make n 0;
    last_ack_capped = Array.make n false;
    trace;
    spans = Array.make n Span.none;
    hm_spans = Array.make n Span.none }

(* Exact local broadcast (Remark 4.6): with signal-strength measurement a
   node can reject data from outside the strong radius, because received
   power is a strictly decreasing function of distance under Eq. 1. *)
let accept_data t (d : Events.wire Engine.delivery) =
  match t.exact_threshold with
  | None -> true
  | Some thr ->
    let ok = d.Engine.power >= thr -. 1e-12 in
    if not ok then Metrics.incr m_data_rejected;
    ok

let n t = Engine.n t.engine
let now t = Engine.slot t.engine
let bounds t = t.bounds
let set_handlers t h = t.handlers <- h
let busy t ~node = t.ongoing.(node) <> None
let engine t = t.engine
let approg t = t.approg
let hm t = t.hm
let lambda t = t.lambda

(* Whether the node's most recent ack was forced by the f_ack cap rather
   than a natural Algorithm B.1 halt. *)
let last_ack_capped t ~node = t.last_ack_capped.(node)

(* absMAC events go to the bounded trace (when attached) and are mirrored
   into the flight-recorder ring while tracing is armed. *)
let record t ev =
  (match t.trace with
   | Some tr -> Trace.record tr ~slot:(now t) ev
   | None -> ());
  if Recorder.is_enabled () then
    Recorder.event ~slot:(now t) (Trace.event_to_json ev)

(* Close the node's hm.bcast and mac.bcast spans with a final [outcome]
   attribute ("ack" / "ack_capped" / "abort" / "crash_drop").  Guarded by
   the root id, so this is two array reads and a compare when tracing is
   off (or was off at bcast time). *)
let finish_spans t ~node ~outcome =
  let root = t.spans.(node) in
  if root <> Span.none then begin
    let slot = now t in
    let hm_span = t.hm_spans.(node) in
    if hm_span <> Span.none then begin
      Span.set_attr hm_span "slots_run"
        (Json.int (Hm_ack.slots_run t.hm ~node));
      Span.set_attr hm_span "fallbacks"
        (Json.int (Hm_ack.fallbacks t.hm ~node));
      Span.finish hm_span ~slot
    end;
    Span.set_attr root "outcome" (Json.Str outcome);
    Span.finish root ~slot;
    t.spans.(node) <- Span.none;
    t.hm_spans.(node) <- Span.none
  end

let bcast t ~node ~data =
  if busy t ~node then
    invalid_arg "Combined_mac.bcast: node already has an ongoing broadcast";
  let payload = { Events.origin = node; seq = t.seq.(node); data } in
  t.seq.(node) <- t.seq.(node) + 1;
  t.ongoing.(node) <- Some payload;
  t.bcast_slot.(node) <- now t;
  Metrics.incr m_bcasts;
  Engine.wake t.engine node;
  Hm_ack.start t.hm ~node payload;
  Approx_progress.start t.approg ~node payload;
  record t (Trace.Bcast { node; msg = payload.Events.seq });
  if Span.is_enabled () then begin
    let slot = now t in
    let root = Span.start ~name:"mac.bcast" ~slot () in
    Span.set_attr root "node" (Json.int node);
    Span.set_attr root "seq" (Json.int payload.Events.seq);
    Span.set_attr root "f_ack" (Json.int t.fack_cap);
    Span.set_attr root "f_approg"
      (Json.int t.bounds.Absmac_intf.f_approg);
    t.spans.(node) <- root;
    let hm_span = Span.start ~parent:root ~name:"hm.bcast" ~slot () in
    t.hm_spans.(node) <- hm_span;
    Hm_ack.set_span t.hm ~node hm_span
  end;
  payload

let abort t ~node =
  match t.ongoing.(node) with
  | None -> ()
  | Some payload ->
    t.ongoing.(node) <- None;
    finish_spans t ~node ~outcome:"abort";
    Hm_ack.stop t.hm ~node;
    Approx_progress.stop t.approg ~node;
    Metrics.incr m_aborts;
    record t (Trace.Abort { node; msg = payload.Events.seq })

let set_raw_rcv_hook t f = t.raw_rcv_hook <- Some f

let fire_rcvs t rcvs =
  List.iter
    (fun ({ Approx_progress.node; payload; from } as ev) ->
      Metrics.incr m_rcvs;
      record t (Trace.Rcv { node; msg = payload.Events.seq; from });
      (* Progress annotation on the originator's span — only while that
         broadcast is still the ongoing one (a rcv can trail an ack). *)
      (if Span.is_enabled () then
         let origin = payload.Events.origin in
         match t.ongoing.(origin) with
         | Some p when p.Events.seq = payload.Events.seq ->
           Span.annotate t.spans.(origin) ~slot:(now t)
             (Printf.sprintf "rcv@%d from=%d" node from)
         | Some _ | None -> ());
      (match t.raw_rcv_hook with Some f -> f ev | None -> ());
      t.handlers.Absmac_intf.on_rcv ~node ~payload)
    rcvs

let finish_ack t ~node payload ~capped =
  t.ongoing.(node) <- None;
  t.last_ack_capped.(node) <- capped;
  Metrics.incr m_acks;
  if capped then Metrics.incr m_acks_capped;
  Metrics.observe_int m_ack_delay (now t - t.bcast_slot.(node));
  finish_spans t ~node ~outcome:(if capped then "ack_capped" else "ack");
  Hm_ack.stop t.hm ~node;
  Approx_progress.stop t.approg ~node;
  record t (Trace.Ack { node; msg = payload.Events.seq });
  t.handlers.Absmac_intf.on_ack ~node ~payload

let step t =
  let slot = Engine.slot t.engine in
  let hm_slot = slot mod 2 = 0 in
  Metrics.incr (if hm_slot then m_slots_even else m_slots_odd);
  let decide v =
    if hm_slot then
      match Hm_ack.decide t.hm ~node:v with
      | Some w -> Engine.Transmit w
      | None -> Engine.Listen
    else
      match Approx_progress.decide t.approg ~node:v with
      | Some w -> Engine.Transmit w
      | None -> Engine.Listen
  in
  let deliveries = Engine.step t.engine ~decide in
  if hm_slot then begin
    List.iter
      (fun d ->
        (* Any decoded message feeds B.1's reception counter (lines 17-22);
           data payloads additionally produce rcv outputs. *)
        Hm_ack.on_receive t.hm ~node:d.Engine.receiver;
        match d.Engine.message with
        | Events.Data _ | Events.Decay _ ->
          if accept_data t d then
            Approx_progress.on_receive t.approg ~receiver:d.Engine.receiver
              ~sender:d.Engine.sender d.Engine.message
        | Events.Probe | Events.Neighbor_list _ | Events.Mis_round _ -> ())
      deliveries;
    fire_rcvs t (Approx_progress.drain_rcv t.approg)
  end
  else begin
    List.iter
      (fun d ->
        let data_wire =
          match d.Engine.message with
          | Events.Data _ | Events.Decay _ -> true
          | Events.Probe | Events.Neighbor_list _ | Events.Mis_round _ -> false
        in
        if (not data_wire) || accept_data t d then
          Approx_progress.on_receive t.approg ~receiver:d.Engine.receiver
            ~sender:d.Engine.sender d.Engine.message)
      deliveries;
    fire_rcvs t (Approx_progress.end_slot t.approg)
  end;
  (* Acknowledgments: B.1 halt or the f_ack cap.  A node that crashed with
     an ongoing broadcast must never ack (the ack cap is a timer, not a
     liveness proof): drop the payload as an abort, which Spec_check then
     counts as aborted rather than as a late-ack violation. *)
  Array.iteri
    (fun node slot0 ->
      match t.ongoing.(node) with
      | None -> ()
      | Some payload ->
        if Engine.is_crashed t.engine node then begin
          t.ongoing.(node) <- None;
          finish_spans t ~node ~outcome:"crash_drop";
          Hm_ack.stop t.hm ~node;
          Approx_progress.stop t.approg ~node;
          Metrics.incr m_crash_drops;
          record t (Trace.Abort { node; msg = payload.Events.seq });
          (* Flight-recorder trigger: a node died with a broadcast in
             flight.  One dump per run (dump_once), containing the just-
             finished crash_drop span and the history around it. *)
          if Recorder.is_enabled () then
            ignore (Recorder.dump_once ~reason:"crash-mid-broadcast" ())
        end
        else
          let halted = Hm_ack.halted t.hm ~node in
          if halted || now t - slot0 >= t.fack_cap then
            finish_ack t ~node payload ~capped:(not halted))
    t.bcast_slot
