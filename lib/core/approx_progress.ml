(* Algorithm 9.1 — the approximate-progress half of the absMAC
   implementation (paper Sections 9 and 10).

   Time is organized in *epochs*; each epoch runs Phi = Theta(log Lambda)
   *phases*; each phase, over a shrinking sender set
   S_1 ⊇ S_2 ⊇ ... ⊇ S_Phi, performs three stages:

     1. estimate the reliability graph H~~^mu_p[S_phi]  (2T slots):
        T slots of id probes transmitted with probability p, then T slots
        exchanging potential-neighbor lists; a mutual (potential, listed)
        pair becomes an H~~ edge;
     2. sparsify: compute S_{phi+1} as the dominator set of the modified
        Schneider–Wattenhofer MIS with fresh non-unique random labels, every
        CONGEST round simulated by T probability-p slots; a node that fails
        to hear all of its H~~ neighbors during a round drops out of the
        epoch (the paper's unsuccessful-communication rule);
     3. transmit the bcast-message itself for data_slots slots with
        probability p / Q, Q = Theta(log^alpha Lambda).

   Intuition (Section 9.1): each MIS round roughly doubles the minimum
   distance between remaining senders (Lemma 10.15), so within log Lambda
   phases every listener with a broadcasting G_{1-2eps}-neighbor sees some
   phase whose sender set is locally sparse enough for the p/Q data
   transmissions to reach it from a G_{1-eps}-neighbor — that is exactly
   the approximate-progress event of Definition 7.1.

   Epoch synchronization uses the shared slot counter (nodes joining wait
   for the next epoch boundary, the paper's Section 9.3 assumption); wakeup
   remains conditional.  The machine consumes one slot of behaviour at a
   time (decide / on_receive / end_slot) so that Algorithm 11.1 can
   interleave it with the acknowledgment algorithm on odd slots. *)

open Sinr_geom

open Sinr_mis
open Sinr_obs

(* Telemetry: the epoch machinery Theorem 9.1 charges slots to. *)
let m_epochs = Metrics.counter "approg.epochs"
let m_phases = Metrics.counter "approg.phases"
let m_mis_rounds = Metrics.counter "approg.mis_rounds"
let m_drops = Metrics.counter "approg.drops"
let m_probe_tx = Metrics.counter "approg.probe_tx"
let m_list_tx = Metrics.counter "approg.list_tx"
let m_mis_tx = Metrics.counter "approg.mis_tx"
let m_data_tx = Metrics.counter "approg.data_tx"
let m_data_rcv = Metrics.counter "approg.data_rcv"
let m_h_edges = Metrics.histogram "approg.h_edges"
let m_mis_winners = Metrics.histogram "approg.mis_winners"
let m_phase_members = Metrics.histogram "approg.phase_members"

type stage =
  | Probe_stage of int                  (* slot within [0, T) *)
  | List_stage of int                   (* slot within [0, T) *)
  | Mis_stage of { round : int; sub : int } (* CONGEST round, sub in [0, T) *)
  | Data_stage of int                   (* slot within [0, data_slots) *)

(* Bit-per-node membership columns (the engine's flat layout): [decide]
   touches them for every awake node every slot, so they live as packed
   bitmaps on [t] rather than as record fields scattered across the heap. *)
module Bits = Sinr_engine.State.Bits

(* Cold per-node phase tables; the hot scalar state (payload, membership)
   lives in flat columns on [t]. *)
type node_data = {
  mutable counts : (int, int) Hashtbl.t;
  mutable potential : int list;
  mutable listed_by : (int, unit) Hashtbl.t; (* senders whose list names us *)
  mutable h_neighbors : int list;
  mutable mis_heard : (int, Sw_mis.msg) Hashtbl.t;
}

type rcv_event = { node : int; payload : Events.payload; from : int }

type t = {
  params : Params.approg;
  sched : Params.schedule;
  n : int;
  rng : Rng.t;
  nodes : node_data array;
  payload : Events.payload option array; (* ongoing broadcast message m *)
  member : Bits.t;             (* in S_phi and still active this epoch *)
  phase_participant : Bits.t;  (* was in S_phi at phase start (beacons) *)
  emitted : (int * (int * int), unit) Hashtbl.t; (* (node, payload id) *)
  mutable mis : Sw_mis.t option;
  mutable labels : int array;
  mutable pos : int;        (* slot within the epoch, [0, epoch_slots) *)
  mutable epoch : int;
  mutable pending_rcv : rcv_event list;
  (* diagnostics *)
  mutable last_h_graph : Sinr_graph.Graph.t option;
  mutable drops_total : int;
  (* causal tracing: the epoch > phase > stage span stack currently open,
     rolled forward by [trace_slot] as the machine advances.  [clock]
     supplies engine slots (Combined_mac installs Engine.slot); the
     default counts this machine's own slots so standalone runs still get
     a monotone axis. *)
  mutable clock : unit -> int;
  mutable epoch_span : Span.id;
  mutable phase_span : Span.id;
  mutable stage_span : Span.id;
  mutable span_phase : int;
  mutable span_stage : int;
}

let fresh_node () =
  { counts = Hashtbl.create 8;
    potential = [];
    listed_by = Hashtbl.create 8;
    h_neighbors = [];
    mis_heard = Hashtbl.create 8 }

let reset_phase_tables nd =
  nd.counts <- Hashtbl.create 8;
  nd.potential <- [];
  nd.listed_by <- Hashtbl.create 8;
  nd.h_neighbors <- [];
  nd.mis_heard <- Hashtbl.create 8

(* Close the open span stack, innermost first (stage, then phase, then —
   when [epoch_too] — the epoch).  Integer compares when nothing is open. *)
let close_spans t ~epoch_too =
  let slot = t.clock () in
  if t.stage_span <> Span.none then begin
    Span.finish t.stage_span ~slot;
    t.stage_span <- Span.none
  end;
  if t.phase_span <> Span.none then begin
    Span.finish t.phase_span ~slot;
    t.phase_span <- Span.none
  end;
  if epoch_too && t.epoch_span <> Span.none then begin
    Span.finish t.epoch_span ~slot;
    t.epoch_span <- Span.none
  end

let begin_epoch t =
  close_spans t ~epoch_too:true;
  t.epoch <- t.epoch + 1;
  Metrics.incr m_epochs;
  Array.iteri
    (fun v nd ->
      let m = t.payload.(v) <> None in
      Bits.set t.member v m;
      Bits.set t.phase_participant v m;
      reset_phase_tables nd)
    t.nodes;
  t.mis <- None

let create params config ~lambda ~n ~rng =
  let params = Params.validate_approg params in
  let sched = Params.schedule config ~lambda params in
  let t =
    { params;
      sched;
      n;
      rng;
      nodes = Array.init n (fun _ -> fresh_node ());
      payload = Array.make n None;
      member = Bits.create n;
      phase_participant = Bits.create n;
      emitted = Hashtbl.create 64;
      mis = None;
      labels = Array.make n 0;
      pos = 0;
      epoch = -1;
      pending_rcv = [];
      last_h_graph = None;
      drops_total = 0;
      clock = (fun () -> 0);
      epoch_span = Span.none;
      phase_span = Span.none;
      stage_span = Span.none;
      span_phase = -1;
      span_stage = -1 }
  in
  t.clock <- (fun () -> (max 0 t.epoch * t.sched.Params.epoch_slots) + t.pos);
  begin_epoch t;
  t

let schedule t = t.sched
let pos t = t.pos
let epoch_index t = t.epoch
let member t ~node = Bits.get t.member node
let has_payload t ~node = t.payload.(node) <> None
let drops_total t = t.drops_total
let last_h_graph t = t.last_h_graph

let start t ~node payload = t.payload.(node) <- Some payload

let stop t ~node = t.payload.(node) <- None

let set_clock t f = t.clock <- f

(* Decode the position within the epoch into (phase, stage). *)
let stage_of t pos =
  let s = t.sched in
  let phase = pos / s.phase_slots in
  let o = pos mod s.phase_slots in
  let st =
    if o < s.t then Probe_stage o
    else if o < 2 * s.t then List_stage (o - (2 * s.t) + s.t)
    else begin
      let o' = o - (2 * s.t) in
      if o' < s.mis_rounds * s.t then
        Mis_stage { round = o' / s.t; sub = o' mod s.t }
      else Data_stage (o' - (s.mis_rounds * s.t))
    end
  in
  (phase, st)

let current_phase t = fst (stage_of t t.pos)

let decide t ~node =
  let nd = t.nodes.(node) in
  let _, st = stage_of t t.pos in
  match st with
  | Probe_stage _ ->
    if Bits.get t.member node && Rng.bernoulli t.rng t.params.p then begin
      Metrics.incr m_probe_tx;
      Some Events.Probe
    end
    else None
  | List_stage _ ->
    if Bits.get t.member node && Rng.bernoulli t.rng t.params.p then begin
      Metrics.incr m_list_tx;
      Some (Events.Neighbor_list nd.potential)
    end
    else None
  | Mis_stage { round; sub = _ } ->
    (* Dropped phase participants keep beaconing their status so that
       neighbors can distinguish protocol silence from loss (see Sw_mis). *)
    if Bits.get t.phase_participant node && Rng.bernoulli t.rng t.params.p
    then
      match t.mis with
      | None -> None
      | Some mis ->
        (match Sw_mis.outgoing mis node with
         | Some msg ->
           Metrics.incr m_mis_tx;
           Some (Events.Mis_round { round; msg })
         | None -> None)
    else None
  | Data_stage _ ->
    (match t.payload.(node) with
     | Some payload when Bits.get t.member node ->
       if Rng.bernoulli t.rng (t.params.p /. t.sched.q) then begin
         Metrics.incr m_data_tx;
         Some (Events.Data payload)
       end
       else None
     | Some _ | None -> None)

(* A rcv(m)_i output is emitted at most once per (node, message): protocols
   above the layer ([37]'s BSMB/BMMB) deduplicate anyway, and experiments
   that need raw reception times watch engine deliveries directly. *)
let emit_rcv t ~node ~payload ~from =
  let id = (node, Events.payload_id payload) in
  if payload.Events.origin <> node && not (Hashtbl.mem t.emitted id) then begin
    Hashtbl.add t.emitted id ();
    Metrics.incr m_data_rcv;
    t.pending_rcv <- { node; payload; from } :: t.pending_rcv
  end

let on_receive t ~receiver ~sender wire =
  let nd = t.nodes.(receiver) in
  let _, st = stage_of t t.pos in
  match wire, st with
  | Events.Probe, Probe_stage _ ->
    if Bits.get t.member receiver then begin
      let c = Option.value (Hashtbl.find_opt nd.counts sender) ~default:0 in
      Hashtbl.replace nd.counts sender (c + 1)
    end
  | Events.Neighbor_list ids, List_stage _ ->
    if Bits.get t.member receiver && List.mem receiver ids then
      Hashtbl.replace nd.listed_by sender ()
  | Events.Mis_round { round; msg }, Mis_stage { round = r; sub = _ } ->
    if Bits.get t.phase_participant receiver && round = r then
      Hashtbl.replace nd.mis_heard sender msg
  | Events.Data payload, _ -> emit_rcv t ~node:receiver ~payload ~from:sender
  | Events.Decay payload, _ -> emit_rcv t ~node:receiver ~payload ~from:sender
  | (Events.Probe | Events.Neighbor_list _ | Events.Mis_round _), _ ->
    (* Stale or out-of-stage coordination traffic is ignored. *)
    ()

(* ------------------------------------------------------------------ *)
(* Stage boundaries                                                     *)
(* ------------------------------------------------------------------ *)

let finish_probe_stage t =
  Array.iteri
    (fun v nd ->
      if Bits.get t.member v then begin
        let acc = ref [] in
        Hashtbl.iter
          (fun sender c ->
            if c >= t.sched.potential_threshold then acc := sender :: !acc)
          nd.counts;
        nd.potential <- List.sort compare !acc
      end)
    t.nodes

let finish_list_stage t =
  (* u's H~~ neighbors: potential neighbors v whose own list named u. *)
  let members = ref [] in
  Array.iteri
    (fun v nd ->
      if Bits.get t.member v then begin
        nd.h_neighbors <-
          List.filter (fun u -> Hashtbl.mem nd.listed_by u) nd.potential;
        members := v :: !members
      end)
    t.nodes;
  (* Fresh temporary labels and a fresh MIS machine for this phase. *)
  t.labels <-
    Labels.draw t.rng ~n:t.n ~participants:!members ~bits:t.sched.label_bits;
  t.mis <-
    Some
      (Sw_mis.create ~n:t.n ~participants:!members ~labels:t.labels
         ~label_bits:t.sched.label_bits ~stages:t.params.mis_stages);
  (* Diagnostic snapshot of the (asymmetric) estimate, symmetrized. *)
  let edges = ref [] in
  Array.iteri
    (fun v nd ->
      if Bits.get t.member v then
        List.iter (fun u -> if u > v then edges := (v, u) :: !edges)
          nd.h_neighbors)
    t.nodes;
  Metrics.observe_int m_h_edges (List.length !edges);
  Metrics.observe_int m_phase_members (List.length !members);
  t.last_h_graph <- Some (Sinr_graph.Graph.of_edges ~n:t.n !edges)

let finish_mis_round t =
  match t.mis with
  | None -> ()
  | Some mis ->
    (* Completeness check: a phase participant that missed any of its H~~
       neighbors this round has had unsuccessful communication and leaves
       the epoch; otherwise its neighbors' messages are delivered. *)
    Array.iteri
      (fun v nd ->
        if Bits.get t.member v then begin
          let missing =
            List.exists
              (fun u -> not (Hashtbl.mem nd.mis_heard u))
              nd.h_neighbors
          in
          if missing then begin
            Bits.set t.member v false;
            t.drops_total <- t.drops_total + 1;
            Metrics.incr m_drops;
            if t.phase_span <> Span.none then
              Span.annotate t.phase_span ~slot:(t.clock ())
                (Printf.sprintf "drop node=%d" v);
            Sw_mis.drop mis v
          end
          else
            List.iter
              (fun u ->
                match Hashtbl.find_opt nd.mis_heard u with
                | Some msg -> Sw_mis.deliver mis ~node:v ~payload:msg
                | None -> assert false)
              nd.h_neighbors
        end;
        nd.mis_heard <- Hashtbl.create 8)
      t.nodes;
    Metrics.incr m_mis_rounds;
    Sw_mis.advance mis

let finish_phase t =
  Metrics.incr m_phases;
  (match t.mis with
   | None -> ()
   | Some mis ->
     let dominator = Array.make t.n false in
     let winners = Sw_mis.dominators mis in
     List.iter (fun v -> dominator.(v) <- true) winners;
     Metrics.observe_int m_mis_winners (List.length winners);
     Array.iteri
       (fun v nd ->
         let m = Bits.get t.member v && dominator.(v) in
         Bits.set t.member v m;
         Bits.set t.phase_participant v m;
         reset_phase_tables nd)
       t.nodes);
  t.mis <- None

(* Pull the rcv outputs accumulated since the last drain.  Algorithm 11.1
   also routes its even-slot (acknowledgment algorithm) data receptions
   through [on_receive], and drains after those slots too. *)
let drain_rcv t =
  let out = List.rev t.pending_rcv in
  t.pending_rcv <- [];
  out

let stage_tag = function
  | Probe_stage _ -> 0
  | List_stage _ -> 1
  | Mis_stage _ -> 2
  | Data_stage _ -> 3

let stage_span_name = function
  | 0 -> "approg.probe"
  | 1 -> "approg.list"
  | 2 -> "approg.mis"
  | _ -> "approg.data"

(* Roll the epoch > phase > stage span stack so that it covers the slot
   about to close.  Runs once per Algorithm 9.1 slot, only with tracing
   armed (one load-and-branch otherwise, checked by the caller). *)
let trace_slot t =
  let slot = t.clock () in
  let phase, st = stage_of t t.pos in
  let tag = stage_tag st in
  if t.epoch_span = Span.none then begin
    t.epoch_span <- Span.start ~name:"approg.epoch" ~slot ();
    Span.set_attr t.epoch_span "epoch" (Json.int t.epoch);
    Span.set_attr t.epoch_span "epoch_slots"
      (Json.int t.sched.Params.epoch_slots)
  end;
  if t.phase_span = Span.none || t.span_phase <> phase then begin
    close_spans t ~epoch_too:false;
    t.phase_span <-
      Span.start ~parent:t.epoch_span ~name:"approg.phase" ~slot ();
    Span.set_attr t.phase_span "epoch" (Json.int t.epoch);
    Span.set_attr t.phase_span "phase" (Json.int phase);
    t.span_phase <- phase
  end;
  if t.stage_span = Span.none || t.span_stage <> tag then begin
    if t.stage_span <> Span.none then begin
      Span.finish t.stage_span ~slot;
      t.stage_span <- Span.none
    end;
    t.stage_span <-
      Span.start ~parent:t.phase_span ~name:(stage_span_name tag) ~slot ();
    (match st with
     | Mis_stage { round; _ } ->
       Span.set_attr t.stage_span "first_round" (Json.int round)
     | Probe_stage _ | List_stage _ | Data_stage _ -> ());
    t.span_stage <- tag
  end

(* Advance past the slot that just completed; returns the rcv outputs. *)
let end_slot t =
  let s = t.sched in
  if Span.is_enabled () then trace_slot t;
  let _, st = stage_of t t.pos in
  (match st with
   | Probe_stage o -> if o = s.t - 1 then finish_probe_stage t
   | List_stage o -> if o = s.t - 1 then finish_list_stage t
   | Mis_stage { round; sub } ->
     if sub = s.t - 1 then begin
       finish_mis_round t;
       if round = s.mis_rounds - 1 && s.data_slots = 0 then finish_phase t
     end
   | Data_stage o -> if o = s.data_slots - 1 then finish_phase t);
  t.pos <- t.pos + 1;
  if t.pos >= s.epoch_slots then begin
    t.pos <- 0;
    begin_epoch t
  end;
  drain_rcv t
