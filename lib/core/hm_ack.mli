(** Algorithm B.1 — Halldórsson–Mitra LocalBroadcast with local parameters
    (paper Appendix B), the acknowledgment half of the absMAC
    implementation (Theorem 5.1).

    The machine exposes one node-slot at a time so Algorithm 11.1 can
    interleave it with Algorithm 9.1 on even/odd slots. *)

open Sinr_geom

type t

val create : Params.ack -> lambda:float -> n:int -> rng:Rng.t -> t
(** The contention bound Ñ defaults to 4Λ² (Theorem 5.1) unless fixed in
    the parameters. *)

val n_tilde : t -> int
(** The contention bound Ñ in effect. *)

val start : t -> node:int -> Events.payload -> unit
(** Begin broadcasting a payload at a node (resets the machine state). *)

val stop : t -> node:int -> unit
(** Clear the node's broadcast (ack emitted, or abort). *)

val active : t -> node:int -> bool
(** Broadcasting and not yet halted. *)

val halted : t -> node:int -> bool
(** The probability budget is exhausted: the algorithm's halt condition,
    at which the MAC emits the acknowledgment. *)

val payload : t -> node:int -> Events.payload option
val slots_run : t -> node:int -> int
val fallbacks : t -> node:int -> int

val decide : t -> node:int -> Events.wire option
(** Consume one HM slot for the node: [Some wire] to transmit, [None] to
    listen. Call exactly once per HM slot per active node. *)

val on_receive : t -> node:int -> unit
(** Report that the node decoded some message during this HM slot
    (lines 17–22: reception counting and FallBack). *)

(** {1 Causal tracing hooks}

    Combined_mac opens one span per broadcast and hands it down; the
    machine annotates its halt and FallBack moments onto it. All no-ops
    while tracing is disabled. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the engine-slot clock used to stamp annotations (the default
    stamps 0). *)

val set_span : t -> node:int -> Sinr_obs.Span.id -> unit
(** Attach the node's ongoing-broadcast span; cleared by {!stop}. *)
