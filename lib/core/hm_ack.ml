(* Algorithm B.1 — the Halldorsson–Mitra LocalBroadcast algorithm, restated
   by the paper's Appendix B with local parameters and used by Theorem 5.1
   to implement absMAC acknowledgments.

   Per broadcasting node y the algorithm maintains a transmission
   probability p_y, a spent-probability budget tp_y and a reception counter
   rc_y:

     tp_y <- 0 ; p_y <- 1/(4*N~)
     loop                                (outer: "FallBack" target)
       p_y <- max(1/(128*N~), p_y/32) ; rc_y <- 0
       loop                              (inner: probability ramp)
         p_y <- min(1/16, 2*p_y)
         for j = 1 .. delta*log(N~/eps):
           transmit with probability p_y ; tp_y <- tp_y + p_y
           if tp_y > gamma'*log(N~/eps) then halt
           if a message was received then
             rc_y <- rc_y + 1
             if rc_y > 8*log(2*N~/eps) then FallBack

   N~ is an upper bound on the local contention; Theorem 5.1 instantiates
   N~ = 4*Lambda^2 so that only a (polynomial bound on) Lambda needs to be
   known.  Intuitively the ramp seeks the "right" probability ~1/contention;
   receiving many messages signals that the neighborhood is already at that
   level, so the node backs off (FallBack) instead of escalating.

   The machine exposes one node-slot of behaviour at a time so that
   Algorithm 11.1 can interleave it with Algorithm 9.1 on even/odd slots. *)

open Sinr_geom
open Sinr_obs

(* Telemetry: Algorithm B.1's round structure. *)
let m_slots = Metrics.counter "hm.slots"
let m_tx = Metrics.counter "hm.tx"
let m_rcv = Metrics.counter "hm.rcv"
let m_halts = Metrics.counter "hm.halts"
let m_fallbacks = Metrics.counter "hm.fallbacks"
let m_ramps = Metrics.counter "hm.ramps"
let m_broadcast_slots = Metrics.histogram "hm.broadcast_slots"

type node_state = {
  mutable payload : Events.payload option; (* ongoing broadcast, if any *)
  mutable p : float;
  mutable tp : float;
  mutable rc : int;
  mutable j : int;         (* position within the inner for-loop *)
  mutable ramp_pending : bool; (* double p before the next slot *)
  mutable halted : bool;
  mutable slots_run : int; (* HM slots consumed by the current broadcast *)
  mutable fallbacks : int;
}

type t = {
  n_tilde : int;
  inner_len : int;   (* delta * log2(N~/eps) *)
  tp_cap : float;    (* gamma' * log2(N~/eps) *)
  rc_cap : int;      (* fallback_threshold * log2(2*N~/eps) *)
  p_min : float;
  p_start : float;
  p_cap : float;
  nodes : node_state array;
  rng : Rng.t;
  spans : Span.id array;
      (* per-node causal span of the ongoing broadcast (Combined_mac owns
         open/close; this machine only annotates halt/fallback moments) *)
  mutable clock : unit -> int;
      (* engine-slot clock for span annotations; Combined_mac installs the
         real one, the default stamps 0 *)
}

let fresh_node () =
  { payload = None;
    p = 0.;
    tp = 0.;
    rc = 0;
    j = 0;
    ramp_pending = false;
    halted = false;
    slots_run = 0;
    fallbacks = 0 }

let create (params : Params.ack) ~lambda ~n ~rng =
  let params = Params.validate_ack params in
  let n_tilde =
    match params.contention_bound with
    | Some b -> max 2 b
    | None -> Params.contention_default ~lambda
  in
  let log_ratio =
    Float.max 1. (Float.log2 (float_of_int n_tilde /. params.eps_ack))
  in
  let log_ratio2 =
    Float.max 1. (Float.log2 (2. *. float_of_int n_tilde /. params.eps_ack))
  in
  { n_tilde;
    inner_len = max 1 (int_of_float (Float.ceil (params.delta_reps *. log_ratio)));
    tp_cap = params.tp_budget *. log_ratio;
    rc_cap =
      max 1 (int_of_float (Float.ceil (params.fallback_threshold *. log_ratio2)));
    p_min = 1. /. (params.p_min_div *. float_of_int n_tilde);
    p_start = 1. /. (params.p_start_div *. float_of_int n_tilde);
    p_cap = params.p_cap;
    nodes = Array.init n (fun _ -> fresh_node ());
    rng;
    spans = Array.make n Span.none;
    clock = (fun () -> 0) }

let n_tilde t = t.n_tilde

let start t ~node payload =
  let nd = t.nodes.(node) in
  nd.payload <- Some payload;
  (* Lines 1-5 followed by the first pass of line 7: the ramp doubles p on
     entry to each inner loop. *)
  nd.p <- Float.max t.p_min (t.p_start /. 32.);
  nd.tp <- 0.;
  nd.rc <- 0;
  nd.j <- 0;
  nd.ramp_pending <- true;
  nd.halted <- false;
  nd.slots_run <- 0;
  nd.fallbacks <- 0

let stop t ~node =
  let nd = t.nodes.(node) in
  nd.payload <- None;
  nd.halted <- false;
  t.spans.(node) <- Span.none

let set_clock t f = t.clock <- f
let set_span t ~node id = t.spans.(node) <- id

let active t ~node =
  let nd = t.nodes.(node) in
  nd.payload <> None && not nd.halted

let halted t ~node = t.nodes.(node).halted
let payload t ~node = t.nodes.(node).payload
let slots_run t ~node = t.nodes.(node).slots_run
let fallbacks t ~node = t.nodes.(node).fallbacks

(* One HM slot for [node]: returns the transmission decision.  Must be
   called exactly once per HM slot for each active node. *)
let decide t ~node =
  let nd = t.nodes.(node) in
  match nd.payload with
  | None -> None
  | Some _ when nd.halted -> None
  | Some payload ->
    if nd.ramp_pending then begin
      (* Line 7: p <- min(1/16, 2p). *)
      nd.p <- Float.min t.p_cap (2. *. nd.p);
      nd.ramp_pending <- false;
      Metrics.incr m_ramps
    end;
    nd.slots_run <- nd.slots_run + 1;
    Metrics.incr m_slots;
    let send = Rng.bernoulli t.rng nd.p in
    (* Line 13: tp accounts for the *probability*, not the outcome. *)
    nd.tp <- nd.tp +. nd.p;
    if nd.tp > t.tp_cap then begin
      (* lines 14-16 *)
      nd.halted <- true;
      Metrics.incr m_halts;
      Metrics.observe_int m_broadcast_slots nd.slots_run;
      if t.spans.(node) <> Span.none then
        Span.annotate t.spans.(node) ~slot:(t.clock ()) "hm.halt"
    end
    else begin
      nd.j <- nd.j + 1;
      if nd.j >= t.inner_len then begin
        (* End of the for-loop: the enclosing inner loop doubles p next. *)
        nd.j <- 0;
        nd.ramp_pending <- true
      end
    end;
    (* The halting slot still carries its transmission if one was drawn. *)
    if send then begin
      Metrics.incr m_tx;
      Some (Events.Data payload)
    end
    else None

(* Lines 17-22: a message was received during this HM slot. *)
let on_receive t ~node =
  let nd = t.nodes.(node) in
  match nd.payload with
  | None -> ()
  | Some _ when nd.halted -> ()
  | Some _ ->
    nd.rc <- nd.rc + 1;
    Metrics.incr m_rcv;
    if nd.rc > t.rc_cap then begin
      (* FallBack to line 4: shrink p, reset rc, restart the inner loop. *)
      nd.p <- Float.max t.p_min (nd.p /. 32.);
      nd.rc <- 0;
      nd.j <- 0;
      nd.ramp_pending <- true;
      nd.fallbacks <- nd.fallbacks + 1;
      Metrics.incr m_fallbacks;
      if t.spans.(node) <> Span.none then
        Span.annotate t.spans.(node) ~slot:(t.clock ())
          (Printf.sprintf "hm.fallback p=%.3g" nd.p)
    end
