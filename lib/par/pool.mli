(** Fixed-size domain pool for embarrassingly-parallel simulation work.

    Built on stdlib [Domain]/[Mutex]/[Condition] only (no domainslib). A
    pool of size [jobs] owns [jobs - 1] resident worker domains; the
    submitting domain always participates, so [jobs = 1] is the legacy
    sequential path and never touches a domain, a mutex or a condition
    variable.

    {b Determinism is a hard contract.} Every combinator hands tasks out by
    index and assembles results in task-index order, so for a pure task
    function the output is bit-identical whatever [jobs] is, including 1.
    Callers running randomized tasks must give task [i] its own child
    stream ([Rng.split ~key:i] — see {!map_seeded}); a task must never draw
    from a stream shared with another task.

    Nested submissions (a task calling back into the same pool) degrade to
    inline sequential execution rather than deadlocking, so library code
    can parallelize unconditionally.

    Telemetry (when [Sinr_obs.Metrics] is enabled): [par.tasks] counts
    tasks submitted, [par.steals_or_chunks] counts chunk claims,
    [par.workers] counts worker-domain spawns, and [par.task.ns] records
    per-chunk wall time in nanoseconds. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] resident workers ([jobs] is clamped to
    [>= 1]). The pool stays alive until {!shutdown}. *)

val jobs : t -> int

val in_flight : t -> int
(** Number of submissions (combinator calls) currently draining through
    the pool, on any path — parallel, sequential or nested-inline. The
    pool runs one parallel job at a time, so any non-zero value means new
    submissions will queue behind it (or run inline); admission-control
    layers (the sweep daemon's backpressure) read this as the saturation
    probe. *)

val saturated : t -> bool
(** [in_flight t > 0]. *)

val shutdown : t -> unit
(** Terminate and join the workers. Idempotent. Outstanding work finishes
    first (shutdown only takes effect between jobs). *)

(* ------------------------------------------------------------------ *)
(* Deterministic combinators                                           *)
(* ------------------------------------------------------------------ *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] applies [f] to every element; [res.(i) = f arr.(i)]
    with results placed by index. [chunk] (default: spread tasks roughly
    4 chunks per worker) sets how many consecutive indices one claim
    takes — raise it for very cheap tasks. Any exception raised by a task
    is re-raised in the caller after all claimed tasks finish. *)

val mapi : ?chunk:int -> t -> n:int -> (int -> 'b) -> 'b array
(** [mapi pool ~n f] is [map] over the index range [0 .. n-1]. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_reduce :
  ?chunk:int -> t -> n:int -> map:(int -> 'a) -> reduce:('acc -> 'a -> 'acc)
  -> init:'acc -> 'acc
(** [map_reduce pool ~n ~map ~reduce ~init] computes [map i] for every
    [i < n] in parallel, then folds the results {e sequentially in index
    order} in the calling domain: the reduction order (and therefore
    non-associative merges, e.g. float sums) is independent of [jobs]. *)

val map_seeded :
  ?chunk:int -> t -> rng:Sinr_geom.Rng.t -> n:int
  -> (int -> Sinr_geom.Rng.t -> 'b) -> 'b array
(** [map_seeded pool ~rng ~n f] runs [f i (Rng.split rng ~key:i)] for every
    task index — the RNG-splitting contract packaged: the parent stream is
    never advanced and task [i]'s draws depend only on [(seed, i)]. *)

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                 *)
(* ------------------------------------------------------------------ *)

val default_jobs : unit -> int
(** Current default parallelism: the last {!set_default_jobs}, else the
    [SINR_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the default (clamped to [>= 1]); the CLI [--jobs] flag lands
    here. Takes effect on the next {!get} (an existing shared pool of a
    different size is torn down and replaced). *)

val get : unit -> t
(** The process-shared pool, created lazily at {!default_jobs} size and
    re-created when the default changes. Never shut it down directly; it is
    torn down automatically at exit. *)

val with_jobs : int -> (t -> 'a) -> 'a
(** [with_jobs jobs f] runs [f] with a pool of exactly [jobs]: the shared
    pool when sizes match, else a temporary pool torn down after [f]. *)
