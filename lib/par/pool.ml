(* Fixed-size domain pool with deterministic task ordering.

   Scheduling is a shared claim counter under the pool mutex: whoever is
   idle (the jobs-1 resident workers plus the submitting domain itself)
   claims the next chunk of consecutive task indices, runs it unlocked, and
   reports back.  Work distribution is therefore dynamic — domains that get
   cheap chunks claim more — but every task knows its global index, so
   output placement (and the reduction order in [map_reduce]) never depends
   on which domain ran what.  Combined with the RNG-splitting contract
   (task i draws only from [Rng.split ~key:i]) this makes parallel runs
   bit-identical to sequential runs.

   A pool of size 1 has no workers and never touches the mutex: [jobs=1]
   is the legacy sequential path, not a degenerate parallel one. *)

open Sinr_obs

(* Handles created once at module init; updates are gated on the registry's
   enable flag and are domain-safe (see lib/obs).  [par.task.ns] observes
   land in each worker domain's private histogram shard — no lock, no
   cross-domain cache traffic on the chunk path — and merge exactly once
   the workers are joined. *)
let m_tasks = Metrics.counter "par.tasks"
let m_chunks = Metrics.counter "par.steals_or_chunks"
let m_workers = Metrics.counter "par.workers"
let m_task_ns = Metrics.histogram "par.task.ns"

type job = {
  run : int -> unit; (* execute chunk [c]; chunk range decoding is baked in *)
  total : int; (* number of chunks *)
  mutable next : int; (* next unclaimed chunk *)
  mutable finished : int; (* chunks fully executed *)
  mutable failed : (exn * Printexc.raw_backtrace) option; (* first failure *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  todo : Condition.t; (* workers wait here for a job *)
  idle : Condition.t; (* the submitter waits here for completion *)
  mutable job : job option;
  mutable quit : bool;
  mutable workers : unit Domain.t list;
  inflight : int Atomic.t; (* submissions currently draining (all paths) *)
}

let jobs t = t.size

let in_flight t = Atomic.get t.inflight

let saturated t = Atomic.get t.inflight > 0

(* Run one chunk with telemetry; never raises (the chunk body's exception
   is captured into the job). *)
let timed_chunk run c =
  Metrics.incr m_chunks;
  if Metrics.is_enabled () then begin
    let t0 = Unix.gettimeofday () in
    let r = try Ok (run c) with e -> Error (e, Printexc.get_raw_backtrace ()) in
    Metrics.observe m_task_ns ((Unix.gettimeofday () -. t0) *. 1e9);
    r
  end
  else try Ok (run c) with e -> Error (e, Printexc.get_raw_backtrace ())

(* Claim and execute chunks of [j] until none are left.  The pool mutex is
   held on entry and on exit; it is released while a chunk runs. *)
let rec drain t (j : job) =
  if j.next < j.total then begin
    let c = j.next in
    j.next <- j.next + 1;
    Mutex.unlock t.mutex;
    let r = timed_chunk j.run c in
    Mutex.lock t.mutex;
    (match r with
     | Ok () -> ()
     | Error eb -> if j.failed = None then j.failed <- Some eb);
    j.finished <- j.finished + 1;
    if j.finished = j.total then Condition.broadcast t.idle;
    drain t j
  end

let worker t =
  let rec loop () =
    match t.job with
    | Some j when j.next < j.total ->
      drain t j;
      loop ()
    | _ ->
      if t.quit then Mutex.unlock t.mutex
      else begin
        Condition.wait t.todo t.mutex;
        loop ()
      end
  in
  Mutex.lock t.mutex;
  loop ()

let create ~jobs =
  let size = max 1 jobs in
  let t =
    { size;
      mutex = Mutex.create ();
      todo = Condition.create ();
      idle = Condition.create ();
      job = None;
      quit = false;
      workers = [];
      inflight = Atomic.make 0 }
  in
  if size > 1 then begin
    t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    Metrics.add m_workers (size - 1)
  end;
  t

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.mutex;
    if t.quit then Mutex.unlock t.mutex
    else begin
      t.quit <- true;
      Condition.broadcast t.todo;
      let ws = t.workers in
      t.workers <- [];
      Mutex.unlock t.mutex;
      List.iter Domain.join ws
    end
  end

(* Execute [chunks] calls of [run] through the pool.  Sequential pools and
   nested submissions (a task re-entering the pool it runs on) execute
   inline in claim order — same results, no deadlock. *)
let run_job t ~chunks run =
  if chunks > 0 then begin
    Atomic.incr t.inflight;
    Fun.protect ~finally:(fun () -> Atomic.decr t.inflight) @@ fun () ->
    if t.size = 1 then
      for c = 0 to chunks - 1 do
        match timed_chunk run c with
        | Ok () -> ()
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      done
    else begin
      Mutex.lock t.mutex;
      if t.job <> None then begin
        Mutex.unlock t.mutex;
        for c = 0 to chunks - 1 do
          match timed_chunk run c with
          | Ok () -> ()
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        done
      end
      else begin
        let j = { run; total = chunks; next = 0; finished = 0; failed = None } in
        t.job <- Some j;
        Condition.broadcast t.todo;
        drain t j;
        while j.finished < j.total do
          Condition.wait t.idle t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex;
        match j.failed with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Deterministic combinators                                           *)
(* ------------------------------------------------------------------ *)

(* Roughly four claims per domain balances the tail of uneven tasks
   without making cheap tasks fight over the claim counter. *)
let default_chunk t ~n = max 1 (n / (t.size * 4))

let mapi ?chunk t ~n f =
  if n = 0 then [||]
  else begin
    Metrics.add m_tasks n;
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk t ~n
    in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    run_job t ~chunks:nchunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        for i = lo to hi - 1 do
          results.(i) <- Some (f i)
        done);
    Array.map Option.get results
  end

let map ?chunk t f arr =
  mapi ?chunk t ~n:(Array.length arr) (fun i -> f arr.(i))

let map_list ?chunk t f l = Array.to_list (map ?chunk t f (Array.of_list l))

let map_reduce ?chunk t ~n ~map ~reduce ~init =
  Array.fold_left reduce init (mapi ?chunk t ~n map)

let map_seeded ?chunk t ~rng ~n f =
  mapi ?chunk t ~n (fun i -> f i (Sinr_geom.Rng.split rng ~key:i))

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                 *)
(* ------------------------------------------------------------------ *)

let requested = ref None (* set_default_jobs, overrides the environment *)

let env_jobs () =
  match Sys.getenv_opt "SINR_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> Some j
     | Some _ | None -> None)

let default_jobs () =
  match !requested with
  | Some j -> j
  | None ->
    (match env_jobs () with
     | Some j -> j
     | None -> Domain.recommended_domain_count ())

let set_default_jobs j = requested := Some (max 1 j)

let shared = ref None
let shared_mutex = Mutex.create ()
let exit_hook = ref false

let get () =
  Mutex.lock shared_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shared_mutex) @@ fun () ->
  let want = default_jobs () in
  match !shared with
  | Some p when p.size = want -> p
  | prev ->
    Option.iter shutdown prev;
    let p = create ~jobs:want in
    shared := Some p;
    if not !exit_hook then begin
      exit_hook := true;
      (* Idle workers block on [todo]; join them before the runtime tears
         the process down. *)
      at_exit (fun () -> Option.iter shutdown !shared)
    end;
    p

let with_jobs jobs f =
  let jobs = max 1 jobs in
  if jobs = default_jobs () then f (get ())
  else begin
    let p = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
  end
