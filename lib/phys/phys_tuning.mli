(** Process-global tuning knobs for the physics fast path.

    Performance knobs only — none of them changes a clean-channel
    resolution outcome (the far-field mode is the one explicitly
    approximate opt-in, with a bounded interference error). Values are
    read once per [Sinr.create] and captured in the instance. *)

val cache_cap_bytes : unit -> int
(** Memory budget for [Gain_cache] rows, in bytes. Default 64 MiB,
    overridable with the [SINR_PHYS_CACHE_MB] environment variable.
    [0] disables row retention entirely (every row is recomputed into a
    per-domain scratch buffer). *)

val set_cache_cap_bytes : int -> unit
(** Clamped to [>= 0]. *)

val farfield_eps : unit -> float option
(** Relative interference error bound of the grid-pruned far-field mode;
    [None] (the default) keeps exact semantics. *)

val set_farfield : float option -> unit
(** Install (or clear) the far-field mode for simulators created from now
    on. Raises [Invalid_argument] unless the eps lies in (0, 1). *)

val par_threshold : unit -> int
(** Minimum node count before [Sinr.resolve] fans listeners out over the
    shared [Sinr_par.Pool] (and only when the pool default is > 1 job).
    Default 1024. *)

val set_par_threshold : int -> unit
(** Clamped to [>= 1]. *)
