(** Process-global tuning knobs for the physics fast path.

    Performance knobs only — none of them changes a clean-channel
    resolution outcome (the far-field mode is the one explicitly
    approximate opt-in, with a bounded interference error). Values are
    read once per [Sinr.create] and captured in the instance. *)

val cache_cap_bytes : unit -> int
(** Memory budget for [Gain_cache] rows, in bytes. Default 64 MiB,
    overridable with the [SINR_PHYS_CACHE_MB] environment variable.
    [0] disables row retention entirely (every row is recomputed into a
    per-domain scratch buffer). *)

val set_cache_cap_bytes : int -> unit
(** Clamped to [>= 0]. *)

val farfield_eps : unit -> float option
(** Relative interference error bound of the grid-pruned far-field mode;
    [None] (the default) keeps exact semantics. *)

val set_farfield : float option -> unit
(** Install (or clear) the far-field mode for simulators created from now
    on. Raises [Invalid_argument] unless the eps lies in (0, 1). *)

val par_threshold : unit -> int
(** Minimum node count before [Sinr.resolve] fans listeners out over the
    shared [Sinr_par.Pool] (and only when the pool default is > 1 job).
    Default 1024. *)

val set_par_threshold : int -> unit
(** Clamped to [>= 1]. *)

val sparse_threshold : unit -> int
(** Node count from which [Sinr.create] (with no explicit far-field mode)
    installs the sparse cell-aggregated resolution path. Default 4096,
    overridable with [SINR_SPARSE_THRESHOLD]; a non-positive value
    disables the automatic switch. Below the threshold resolution stays
    exact (bit-identical to [resolve_reference]). *)

val set_sparse_threshold : int -> unit
(** [n <= 0] disables the sparse path for simulators created from now
    on. *)

val sparse_eps : unit -> float
(** Relative interference error bound of the automatic sparse path (same
    semantics as the opt-in far-field eps). Default 0.5, overridable with
    [SINR_SPARSE_EPS]. *)

val set_sparse_eps : float -> unit
(** Raises [Invalid_argument] unless the eps lies in (0, 1). *)

val cache_node_ceiling : unit -> int
(** Node count above which [Gain_cache] is bypassed outright: no row is
    ever allocated, lookups evaluate the seed formula directly, and the
    decision is visible as the [phys.cache.bypassed] counter. Default
    8192, overridable with [SINR_CACHE_NODE_CEILING]. *)

val set_cache_node_ceiling : int -> unit
(** Clamped to [>= 0] ([0] bypasses the cache at every size). *)
