(** Sparse cell-aggregated slot resolution for large n.

    Resolves a slot touching only occupied grid cells: senders are
    bucketed into a fine grid (one sort, no per-cell allocation),
    listeners share one far-field sum per coarse cell, and coarse cells
    beyond decoding range of every occupied sender cell are skipped
    without visiting their members (exact — beta > 1 bounds the decodable
    range by R).  Far sender cells contribute center-distance aggregates
    with relative interference error at most [eps]; near senders and the
    best-sender candidate are always scored exactly.  Nothing n x n is
    ever materialized; per-slot memory is O(senders + coarse cells),
    held in domain-local scratch (safe under [Sinr_par.Pool] workers).

    Installed automatically by [Sinr.create] at
    [Phys_tuning.sparse_threshold] nodes and above (eps from
    [Phys_tuning.sparse_eps]) unless an explicit far-field mode is on. *)

type t

val create : Config.t -> Soa.t -> eps:float -> t
(** Build the grids over frozen position columns. Raises
    [Invalid_argument] unless [eps] lies in (0, 1). *)

val eps : t -> float
val fine_cells : t -> int
val coarse_cells : t -> int

val resolve :
  t -> ids:int array -> nsend:int -> mark:Bytes.t ->
  result:int option array -> unit
(** Score every listener against the senders [ids.(0 .. nsend-1)] (whose
    membership bitmap is [mark]), writing decoded senders into [result].
    Same calling convention as the exact kernels in [Sinr]. *)

val interference :
  t -> ids:int array -> nsend:int -> receiver:int -> float
(** The approximate total incoming power at [receiver], accumulated
    exactly as {!resolve} does (shared far sum + exact near terms) — for
    asserting the eps bound in tests. *)
