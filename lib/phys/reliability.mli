(** Monte-Carlo reference for the reliability graph H^μ_p[S] of paper
    Section 9.2: u -- v iff each receives the other with probability ≥ μ
    when every member of S transmits independently with probability p. *)

open Sinr_graph

type estimate

val estimate :
  ?trials:int -> ?jobs:int -> Sinr.t -> Sinr_geom.Rng.t -> set:int list ->
  p:float -> mu:float -> estimate
(** Estimate by [trials] (default 400) independent slot simulations.
    Requires [p ∈ (0, 1/2]] and [μ ∈ (0, p)].

    Trials run through [Sinr_par.Pool] on [jobs] domains (default:
    [Pool.default_jobs ()]; [1] forces the sequential path). Trial [t]
    draws only from [Rng.split rng ~key:t] and per-domain tallies merge by
    addition, so the result is bit-identical for every [jobs] setting. *)

val graph : estimate -> Graph.t
(** Edges whose reception probability is ≥ μ in both directions. *)

val success_prob : estimate -> int * int -> float
(** [(receiver, sender)] directed reception probability estimate. *)

val trials : estimate -> int
