(* Exact SINR reception resolution (paper Eq. 1).

   Given the set S of concurrently transmitting nodes, a listening node u
   decodes the message of v in S iff

     P/d(v,u)^alpha >= beta * (N + I(u) - P/d(v,u)^alpha)

   where I(u) = sum_{w in S} P/d(w,u)^alpha is the total incoming power.
   Because beta > 1, at most one sender can satisfy this at u, so reception
   resolves to at most one message per listener per slot.  Transmitters are
   half-duplex: a node in S never receives.  There is no collision
   detection: a listener that decodes nothing learns nothing (Section 4.6). *)

open Sinr_geom

type t = {
  config : Config.t;
  points : Point.t array;
}

let create config points =
  if Array.length points = 0 then invalid_arg "Sinr.create: no nodes";
  let dmin = Placement.min_pairwise_dist points in
  if dmin < 1. -. 1e-9 then
    invalid_arg
      (Fmt.str "Sinr.create: min pairwise distance %.4g violates the \
                near-field normalization (must be >= 1)" dmin);
  { config; points }

let config t = t.config
let points t = t.points
let n t = Array.length t.points

(* A per-slot channel perturbation, supplied by an adversary (lib/chaos):
   [noise_factor u] scales the ambient noise N seen by receiver u (jamming
   raises it), [gain ~sender ~receiver] scales the received power of one
   link (multiplicative fading makes gray-zone links flap).  The identity
   perturbation is factor 1 everywhere; [None] keeps the exact clean-channel
   fast path. *)
type perturb = {
  noise_factor : int -> float;
  gain : sender:int -> receiver:int -> float;
}

let no_perturb =
  { noise_factor = (fun _ -> 1.);
    gain = (fun ~sender:_ ~receiver:_ -> 1.) }

(* Received power at plane position [at] from a transmitter at [from]. *)
let power_between t ~from ~at =
  let d = Point.dist from at in
  if d <= 0. then invalid_arg "Sinr.power_between: coincident points";
  t.config.Config.power /. (d ** t.config.Config.alpha)

(* Total power arriving at [at] when exactly the nodes of [senders]
   transmit; [at] may be any plane position (Lemma 10.3 evaluates
   interference at arbitrary points i). *)
let interference_at t ~senders ~at =
  List.fold_left
    (fun acc s -> acc +. power_between t ~from:t.points.(s) ~at)
    0. senders

(* SINR of the link v -> u against the sender set (which must include v). *)
let link_sinr t ~senders ~sender:v ~receiver:u =
  let at = t.points.(u) in
  let signal = power_between t ~from:t.points.(v) ~at in
  let total = interference_at t ~senders ~at in
  signal /. (t.config.Config.noise +. total -. signal)

let reception ?perturb t ~senders ~receiver:u =
  if List.mem u senders then None
  else begin
    let p = Option.value perturb ~default:no_perturb in
    let at = t.points.(u) in
    let sender_powers =
      List.map
        (fun v ->
          ( v,
            power_between t ~from:t.points.(v) ~at
            *. p.gain ~sender:v ~receiver:u ))
        senders
    in
    let total = List.fold_left (fun acc (_, pw) -> acc +. pw) 0. sender_powers in
    let beta = t.config.Config.beta
    and noise = t.config.Config.noise *. p.noise_factor u in
    List.find_map
      (fun (v, pw) ->
        if pw >= beta *. (noise +. total -. pw) then Some v else None)
      sender_powers
  end

(* Resolve a whole slot: for every node, the sender it decodes (None for
   transmitters and for listeners that decode nothing).  O(|S| * n).
   [perturb] applies the slot's adversarial channel state; omitting it is
   the clean-channel fast path (no per-link closure calls). *)
let resolve ?perturb t ~senders =
  let n = Array.length t.points in
  let is_sender = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Sinr.resolve: sender out of range";
      is_sender.(s) <- true)
    senders;
  let result = Array.make n None in
  let beta = t.config.Config.beta and noise = t.config.Config.noise in
  (* For each listener: one pass accumulating total power while remembering
     the strongest sender; only the strongest can pass the beta > 1 test. *)
  (match perturb with
   | None ->
     for u = 0 to n - 1 do
       if not is_sender.(u) then begin
         let at = t.points.(u) in
         let total = ref 0. in
         let best = ref (-1) and best_pw = ref 0. in
         List.iter
           (fun v ->
             let pw = power_between t ~from:t.points.(v) ~at in
             total := !total +. pw;
             if pw > !best_pw then begin
               best_pw := pw;
               best := v
             end)
           senders;
         if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
         then result.(u) <- Some !best
       end
     done
   | Some p ->
     for u = 0 to n - 1 do
       if not is_sender.(u) then begin
         let at = t.points.(u) in
         let total = ref 0. in
         let best = ref (-1) and best_pw = ref 0. in
         List.iter
           (fun v ->
             let pw =
               power_between t ~from:t.points.(v) ~at
               *. p.gain ~sender:v ~receiver:u
             in
             total := !total +. pw;
             if pw > !best_pw then begin
               best_pw := pw;
               best := v
             end)
           senders;
         let noise = noise *. p.noise_factor u in
         if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
         then result.(u) <- Some !best
       end
     done);
  result

(* Is a single isolated transmission from v decodable at u?  Defines weak
   reachability: true iff d(v,u) <= R. *)
let in_range t v u =
  Point.dist t.points.(v) t.points.(u) <= Config.range t.config +. 1e-12
