(* Exact SINR reception resolution (paper Eq. 1).

   Given the set S of concurrently transmitting nodes, a listening node u
   decodes the message of v in S iff

     P/d(v,u)^alpha >= beta * (N + I(u) - P/d(v,u)^alpha)

   where I(u) = sum_{w in S} P/d(w,u)^alpha is the total incoming power.
   Because beta > 1, at most one sender can satisfy this at u, so reception
   resolves to at most one message per listener per slot.  Transmitters are
   half-duplex: a node in S never receives.  There is no collision
   detection: a listener that decodes nothing learns nothing (Section 4.6).

   Fast path (see DESIGN.md "Physics fast path").  The point set is frozen
   for the life of the simulator, so link powers are constants: resolution
   reads them from a per-receiver [Gain_cache] row (bit-identical to the
   direct formula) instead of re-deriving a sqrt and a libm pow per pair
   per slot.  Senders travel as an int array plus a membership bitmap held
   in per-domain scratch (no per-slot list/tuple churn), perturbed gains
   multiply the cached clean-channel power, listeners fan out over
   [Sinr_par.Pool] past [Phys_tuning.par_threshold], and the opt-in
   [Farfield] mode aggregates far interference with a bounded eps error.
   [resolve_reference] keeps the seed kernel verbatim so tests and benches
   can assert the equivalence. *)

open Sinr_geom
open Sinr_par
open Sinr_obs

let m_resolve_calls = Metrics.counter "phys.resolve.calls"
let m_resolve_links = Metrics.counter "phys.resolve.links"
let m_resolve_ns = Metrics.histogram "phys.resolve.ns"

type t = {
  config : Config.t;
  soa : Soa.t;  (* hot state: flat position columns, read by every kernel *)
  points : Point.t array Lazy.t;
      (* boxed record view, forced only by geometry/graph consumers
         (Induced, Spec_check, the experiments) — never by the hot path *)
  cache : Gain_cache.t;
  farfield : Farfield.t option;
  sparse : Sparse.t option;
  par_threshold : int;
}

(* Shared constructor body: [points] must be the record view of [soa]
   (lazily, so the column-first path at n = 10^6 never boxes a point). *)
let make config soa points =
  (* Tuning knobs are captured here: flipping them later never changes an
     existing simulator. *)
  let farfield =
    match Phys_tuning.farfield_eps () with
    | None -> None
    | Some eps -> Some (Farfield.create config (Lazy.force points) ~eps)
  in
  let sparse =
    (* The explicit opt-in far-field mode wins; otherwise large
       simulators auto-install the sparse cell-aggregated path. *)
    if farfield = None && Soa.length soa >= Phys_tuning.sparse_threshold ()
    then Some (Sparse.create config soa ~eps:(Phys_tuning.sparse_eps ()))
    else None
  in
  { config;
    soa;
    points;
    cache =
      Gain_cache.create config soa
        ~cap_bytes:(Phys_tuning.cache_cap_bytes ())
        ~node_ceiling:(Phys_tuning.cache_node_ceiling ());
    farfield;
    sparse;
    par_threshold = Phys_tuning.par_threshold () }

let validate_min_dist ~who points =
  let dmin = Placement.min_pairwise_dist points in
  if dmin < 1. -. 1e-9 then
    invalid_arg
      (Fmt.str "%s: min pairwise distance %.4g violates the \
                near-field normalization (must be >= 1)" who dmin)

let create config points =
  if Array.length points = 0 then invalid_arg "Sinr.create: no nodes";
  validate_min_dist ~who:"Sinr.create" points;
  make config (Soa.of_points points) (Lazy.from_val points)

(* Column-first constructor (streaming placements at large n).  [check]
   defaults to true; generators that guarantee the min-distance invariant
   by construction pass [~check:false] to skip the O(n) validation pass
   (and its temporary boxed view). *)
let create_soa ?(check = true) config soa =
  if Soa.length soa = 0 then invalid_arg "Sinr.create_soa: no nodes";
  if check then validate_min_dist ~who:"Sinr.create_soa" (Soa.to_points soa);
  make config soa (lazy (Soa.to_points soa))

let config t = t.config
let soa t = t.soa
let points t = Lazy.force t.points
let n t = Soa.length t.soa
let gain_cache t = t.cache
let farfield t = t.farfield
let sparse t = t.sparse

(* A per-slot channel perturbation, supplied by an adversary (lib/chaos):
   [noise_factor u] scales the ambient noise N seen by receiver u (jamming
   raises it), [gain ~sender ~receiver] scales the received power of one
   link (multiplicative fading makes gray-zone links flap).  The identity
   perturbation is factor 1 everywhere; [None] keeps the exact clean-channel
   fast path. *)
type perturb = {
  noise_factor : int -> float;
  gain : sender:int -> receiver:int -> float;
}

let no_perturb =
  { noise_factor = (fun _ -> 1.);
    gain = (fun ~sender:_ ~receiver:_ -> 1.) }

(* Received power at plane position [at] from a transmitter at [from]. *)
let power_between t ~from ~at =
  let d = Point.dist from at in
  if d <= 0. then invalid_arg "Sinr.power_between: coincident points";
  t.config.Config.power /. (d ** t.config.Config.alpha)

(* Cached received power of the node link v -> u (same value as
   [power_between] on their positions, read from the gain table when the
   receiver's row is resident). *)
let power t ~sender ~receiver = Gain_cache.pair t.cache ~sender ~receiver

(* Total power arriving at [at] when exactly the nodes of [senders]
   transmit; [at] may be any plane position (Lemma 10.3 evaluates
   interference at arbitrary points i). *)
let interference_at t ~senders ~at =
  let pts = Lazy.force t.points in
  List.fold_left (fun acc s -> acc +. power_between t ~from:pts.(s) ~at) 0. senders

(* SINR of the link v -> u against the sender set (which must include v). *)
let link_sinr t ~senders ~sender:v ~receiver:u =
  let pts = Lazy.force t.points in
  let at = pts.(u) in
  let signal = power_between t ~from:pts.(v) ~at in
  let total = interference_at t ~senders ~at in
  signal /. (t.config.Config.noise +. total -. signal)

(* ------------------------------------------------------------------ *)
(* Per-domain scratch                                                  *)
(* ------------------------------------------------------------------ *)

(* Sender ids + membership bitmap, and a row buffer for uncached gain
   rows.  Held in domain-local storage so Pool workers never share, with
   a busy flag so reentrant use (a perturb closure calling back into
   reception) falls back to fresh allocations instead of aliasing.  The
   bitmap invariant: all-zero between uses (resolve clears exactly the
   bits it set, under Fun.protect). *)
type sender_scratch = {
  mutable ids : int array;
  mutable mark : Bytes.t;
  mutable s_busy : bool;
}

type row_scratch = {
  mutable buf : Float.Array.t;
  mutable r_busy : bool;
}

let sender_key =
  Domain.DLS.new_key (fun () ->
      { ids = [||]; mark = Bytes.empty; s_busy = false })

let row_key =
  Domain.DLS.new_key (fun () ->
      { buf = Float.Array.create 0; r_busy = false })

let with_senders ~count ~n f =
  let sc = Domain.DLS.get sender_key in
  if sc.s_busy then
    f { ids = Array.make (max 1 count) 0;
        mark = Bytes.make n '\000';
        s_busy = true }
  else begin
    sc.s_busy <- true;
    if Array.length sc.ids < count then sc.ids <- Array.make count 0;
    if Bytes.length sc.mark < n then sc.mark <- Bytes.make n '\000';
    Fun.protect ~finally:(fun () -> sc.s_busy <- false) (fun () -> f sc)
  end

let with_row ~n f =
  let rc = Domain.DLS.get row_key in
  if rc.r_busy then f (Float.Array.create n)
  else begin
    rc.r_busy <- true;
    if Float.Array.length rc.buf < n then rc.buf <- Float.Array.create n;
    Fun.protect ~finally:(fun () -> rc.r_busy <- false) (fun () -> f rc.buf)
  end

(* ------------------------------------------------------------------ *)
(* Scoring kernel                                                      *)
(* ------------------------------------------------------------------ *)

(* Score listeners [lo..hi]: one row read per listener, one pass over the
   sender array accumulating total power while tracking the strongest
   sender — only the strongest can pass the beta > 1 test.  Iteration
   order matches the seed kernel's list order, so the float accumulation
   (and therefore every decision) is bit-identical. *)
let score_range t ~ids ~nsend ~mark ~rowbuf ~result ~lo ~hi =
  let beta = t.config.Config.beta and noise = t.config.Config.noise in
  for u = lo to hi do
    if Bytes.unsafe_get mark u = '\000' then begin
      let row = Gain_cache.row t.cache u ~scratch:rowbuf in
      let total = ref 0. in
      let best = ref (-1) and best_pw = ref 0. in
      for k = 0 to nsend - 1 do
        let v = Array.unsafe_get ids k in
        let pw = Float.Array.unsafe_get row v in
        total := !total +. pw;
        if pw > !best_pw then begin
          best_pw := pw;
          best := v
        end
      done;
      if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
      then result.(u) <- Some !best
    end
  done

(* The perturbed variant: adversarial gains multiply the cached
   clean-channel powers, exactly as the seed kernel multiplied the freshly
   computed ones. *)
let score_range_perturbed t p ~ids ~nsend ~mark ~rowbuf ~result ~lo ~hi =
  let beta = t.config.Config.beta and noise = t.config.Config.noise in
  for u = lo to hi do
    if Bytes.unsafe_get mark u = '\000' then begin
      let row = Gain_cache.row t.cache u ~scratch:rowbuf in
      let total = ref 0. in
      let best = ref (-1) and best_pw = ref 0. in
      for k = 0 to nsend - 1 do
        let v = Array.unsafe_get ids k in
        let pw = Float.Array.unsafe_get row v *. p.gain ~sender:v ~receiver:u in
        total := !total +. pw;
        if pw > !best_pw then begin
          best_pw := pw;
          best := v
        end
      done;
      let noise = noise *. p.noise_factor u in
      if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
      then result.(u) <- Some !best
    end
  done

(* Whole-slot resolution over a marked sender set.  Dispatch: perturbed
   slots run the sequential perturbed kernel (adversary closures are not
   required to be domain-safe); clean slots run the far-field kernel when
   one is installed, fan listeners out over the shared pool past the
   parallelism threshold, and otherwise run the sequential cached kernel. *)
let resolve_marked ?perturb t ~ids ~nsend ~mark =
  let n = Soa.length t.soa in
  let result = Array.make n None in
  if nsend > 0 then begin
    let telemetry = Metrics.is_enabled () in
    let run () =
      match perturb with
      | Some p ->
        with_row ~n (fun rowbuf ->
            score_range_perturbed t p ~ids ~nsend ~mark ~rowbuf ~result ~lo:0
              ~hi:(n - 1))
      | None ->
        (match t.sparse, t.farfield with
         | Some sp, _ ->
           (* Auto-installed sparse path (n >= Phys_tuning.sparse_threshold):
              occupied-cell iteration, shared per-coarse-cell far sums,
              exact silent-cell skipping.  Reported under the same
              profiler sub-stage as the opt-in far-field mode. *)
           let p0 = Profile.start () in
           Sparse.resolve sp ~ids ~nsend ~mark ~result;
           Profile.stop Profile.Farfield p0
         | None, Some ff ->
           (* Slot-phase profiler sub-stage: how much of resolve is the
              far-field aggregation (reported inside Resolve). *)
           let p0 = Profile.start () in
           with_row ~n (fun rowbuf ->
               Farfield.resolve ff ~cache:t.cache ~scratch:rowbuf ~ids ~nsend
                 ~mark ~result);
           Profile.stop Profile.Farfield p0
         | None, None ->
           if n >= t.par_threshold && Pool.default_jobs () > 1 then begin
             let pool = Pool.get () in
             let jobs = Pool.jobs pool in
             if jobs > 1 then begin
               (* Chunked listener ranges; each chunk writes a disjoint
                  slice of [result] and scores listeners independently, so
                  the outcome is bit-identical whatever the jobs count. *)
               let csize = max 64 ((n + (jobs * 4) - 1) / (jobs * 4)) in
               let nchunks = (n + csize - 1) / csize in
               ignore
                 (Pool.mapi ~chunk:1 pool ~n:nchunks (fun c ->
                      let lo = c * csize in
                      let hi = min (n - 1) (lo + csize - 1) in
                      with_row ~n (fun rowbuf ->
                          score_range t ~ids ~nsend ~mark ~rowbuf ~result ~lo
                            ~hi)))
             end
             else
               with_row ~n (fun rowbuf ->
                   score_range t ~ids ~nsend ~mark ~rowbuf ~result ~lo:0
                     ~hi:(n - 1))
           end
           else
             with_row ~n (fun rowbuf ->
                 score_range t ~ids ~nsend ~mark ~rowbuf ~result ~lo:0
                   ~hi:(n - 1)))
    in
    if telemetry then begin
      Metrics.incr m_resolve_calls;
      Metrics.add m_resolve_links (nsend * n);
      let r = Timer.start () in
      run ();
      Metrics.observe m_resolve_ns ((Timer.stop r).Timer.wall_s *. 1e9)
    end
    else run ()
  end;
  result

(* Copy + validate the sender list into scratch, then set the membership
   bitmap.  Validation happens before any bit is set, so a raise leaves
   the bitmap invariant (all-zero) intact. *)
let load_senders ~who ~n sc senders =
  let k = ref 0 in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg (who ^ ": sender out of range");
      sc.ids.(!k) <- s;
      incr k)
    senders;
  for i = 0 to !k - 1 do
    Bytes.unsafe_set sc.mark sc.ids.(i) '\001'
  done;
  !k

let clear_marks mark ids nsend =
  for i = 0 to nsend - 1 do
    Bytes.unsafe_set mark (Array.unsafe_get ids i) '\000'
  done

(* Resolve a whole slot: for every node, the sender it decodes (None for
   transmitters and for listeners that decode nothing).  O(|S| * n).
   [perturb] applies the slot's adversarial channel state; omitting it is
   the clean-channel fast path. *)
let resolve ?perturb t ~senders =
  let n = Soa.length t.soa in
  let count = List.length senders in
  with_senders ~count ~n @@ fun sc ->
  let nsend = load_senders ~who:"Sinr.resolve" ~n sc senders in
  Fun.protect
    ~finally:(fun () -> clear_marks sc.mark sc.ids nsend)
    (fun () -> resolve_marked ?perturb t ~ids:sc.ids ~nsend ~mark:sc.mark)

(* Array-scratch entry point (Reliability's Monte-Carlo trials): the first
   [nsenders] entries of [senders] transmit; the caller's array is only
   read. *)
let resolve_array ?perturb t ~senders ~nsenders =
  let n = Soa.length t.soa in
  if nsenders < 0 || nsenders > Array.length senders then
    invalid_arg "Sinr.resolve_array: nsenders out of bounds";
  for k = 0 to nsenders - 1 do
    let s = Array.unsafe_get senders k in
    if s < 0 || s >= n then invalid_arg "Sinr.resolve: sender out of range"
  done;
  with_senders ~count:0 ~n @@ fun sc ->
  for k = 0 to nsenders - 1 do
    Bytes.unsafe_set sc.mark (Array.unsafe_get senders k) '\001'
  done;
  Fun.protect
    ~finally:(fun () -> clear_marks sc.mark senders nsenders)
    (fun () -> resolve_marked ?perturb t ~ids:senders ~nsend:nsenders ~mark:sc.mark)

(* Single-listener reception through the same kernel: O(|S|) to mark the
   membership bitmap (the test [u in senders] is then O(1)), one row read,
   one scoring pass. *)
let reception ?perturb t ~senders ~receiver:u =
  let n = Soa.length t.soa in
  if u < 0 || u >= n then invalid_arg "Sinr.reception: receiver out of range";
  let count = List.length senders in
  with_senders ~count ~n @@ fun sc ->
  let nsend = load_senders ~who:"Sinr.reception" ~n sc senders in
  Fun.protect
    ~finally:(fun () -> clear_marks sc.mark sc.ids nsend)
    (fun () ->
      if Bytes.get sc.mark u <> '\000' || nsend = 0 then None
      else
        with_row ~n @@ fun rowbuf ->
        let row = Gain_cache.row t.cache u ~scratch:rowbuf in
        let p = Option.value perturb ~default:no_perturb in
        let total = ref 0. in
        let best = ref (-1) and best_pw = ref 0. in
        (match perturb with
         | None ->
           for k = 0 to nsend - 1 do
             let v = Array.unsafe_get sc.ids k in
             let pw = Float.Array.unsafe_get row v in
             total := !total +. pw;
             if pw > !best_pw then begin
               best_pw := pw;
               best := v
             end
           done
         | Some p ->
           for k = 0 to nsend - 1 do
             let v = Array.unsafe_get sc.ids k in
             let pw =
               Float.Array.unsafe_get row v *. p.gain ~sender:v ~receiver:u
             in
             total := !total +. pw;
             if pw > !best_pw then begin
               best_pw := pw;
               best := v
             end
           done);
        let beta = t.config.Config.beta in
        let noise = t.config.Config.noise *. p.noise_factor u in
        if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
        then Some !best
        else None)

(* ------------------------------------------------------------------ *)
(* Seed kernel, kept verbatim                                          *)
(* ------------------------------------------------------------------ *)

(* The pre-cache implementation: re-derives every link power (a sqrt and a
   libm pow per pair).  The fast path above must stay bit-identical to
   this; the equivalence is asserted by the phys_fast property suite and
   measured by `bench/main.exe phys`. *)
let resolve_reference ?perturb t ~senders =
  let pts = Lazy.force t.points in
  let n = Array.length pts in
  let is_sender = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Sinr.resolve: sender out of range";
      is_sender.(s) <- true)
    senders;
  let result = Array.make n None in
  let beta = t.config.Config.beta and noise = t.config.Config.noise in
  (match perturb with
   | None ->
     for u = 0 to n - 1 do
       if not is_sender.(u) then begin
         let at = pts.(u) in
         let total = ref 0. in
         let best = ref (-1) and best_pw = ref 0. in
         List.iter
           (fun v ->
             let pw = power_between t ~from:pts.(v) ~at in
             total := !total +. pw;
             if pw > !best_pw then begin
               best_pw := pw;
               best := v
             end)
           senders;
         if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
         then result.(u) <- Some !best
       end
     done
   | Some p ->
     for u = 0 to n - 1 do
       if not is_sender.(u) then begin
         let at = pts.(u) in
         let total = ref 0. in
         let best = ref (-1) and best_pw = ref 0. in
         List.iter
           (fun v ->
             let pw =
               power_between t ~from:pts.(v) ~at
               *. p.gain ~sender:v ~receiver:u
             in
             total := !total +. pw;
             if pw > !best_pw then begin
               best_pw := pw;
               best := v
             end)
           senders;
         let noise = noise *. p.noise_factor u in
         if !best >= 0 && !best_pw >= beta *. (noise +. !total -. !best_pw)
         then result.(u) <- Some !best
       end
     done);
  result

(* Is a single isolated transmission from v decodable at u?  Defines weak
   reachability: true iff d(v,u) <= R. *)
let in_range t v u =
  Soa.dist t.soa v u <= Config.range t.config +. 1e-12
