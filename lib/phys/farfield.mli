(** Grid-pruned far-field interference with a bounded relative error.

    Senders in cells whose center lies beyond {!threshold} from a listener
    are aggregated per cell (one pow per occupied far cell); everything
    nearer is scored exactly. The aggregated interference [I'] obeys
    [|I' - I| <= eps * I], and because the threshold exceeds the
    transmission range plus the cell half-diagonal, the best-sender
    candidate is always scored exactly — only near-threshold decisions can
    flip. Off by default; opt in via [Phys_tuning.set_farfield]. *)

open Sinr_geom

type t

val create : Config.t -> Point.t array -> eps:float -> t
(** Raises [Invalid_argument] unless [eps] lies in (0, 1). *)

val eps : t -> float
val threshold : t -> float
(** Minimum cell-center distance for aggregation:
    [max (h / ((1+eps)^(1/alpha) - 1)) (R + h)] with [h] the cell
    half-diagonal. *)

val cell_size : t -> float

val resolve :
  t -> cache:Gain_cache.t -> scratch:Float.Array.t -> ids:int array ->
  nsend:int -> mark:Bytes.t -> result:int option array -> unit
(** Score every listener ([mark.(u) = '\000']) against the first [nsend]
    senders of [ids], writing at most one decoded sender per listener
    into [result]. Near-cell powers read the listener's cached row
    ([scratch], length [>= n], holds rows past the cache cap). *)

val interference : t -> receiver:int -> senders:int list -> float
(** The approximated total interference at a node, for asserting the
    eps bound against [Sinr.interference_at]. *)
