(* Sparse cell-aggregated slot resolution for large n.

   The exact kernels walk every (listener, sender) pair: O(s * n) per slot,
   hopeless at n = 10^5..10^6.  This module resolves a slot touching only
   *occupied* grid cells, with cost O(s log s + A*(C + near pairs)) where
   s is the slot's sender count, C <= s the number of occupied sender
   cells and A the number of *active* listener cells — silent regions of
   the plane are never visited and nothing n x n is ever materialized.

   Two grids over the frozen [Soa] columns:

   - a fine grid (cell side ~R/2, doubled until the grid has O(n) cells
     even for pathological spreads like the two-lines construction)
     buckets the slot's senders: one sort of the sender ids by fine cell
     key, no per-cell allocation;
   - a coarse grid (4x4 fine cells) groups listeners: all listeners of a
     coarse cell share one far-field interference sum, computed once per
     (coarse cell, occupied fine cell) pair.

   Far/near split, as in [Farfield]: a sender cell whose center is at
   least max(Dmin, R + h) from the listener cell's center contributes its
   aggregate count * P/d(centers)^alpha; anything closer is scored
   exactly per listener.  With h the sum of the two cells' half-diagonals
   and Dmin = h / ((1+eps)^(1/alpha) - 1), the far sum's relative error
   is bounded by eps (each far pair's true distance is within [d-h, d+h]
   of the center distance, and d >= Dmin makes the power ratio at most
   1+eps).  The best-sender candidate is always scored exactly: decisions
   can flip only when the eps-perturbed interference crosses the beta
   threshold, never because the signal itself was approximated.

   Exact silence skipping: a listener can decode only a sender within
   R = (P / (beta N))^(1/alpha) (beta > 1 forces the best sender past the
   noise floor alone).  A coarse cell whose center is farther than
   R + h from every occupied sender cell's center therefore decodes
   nothing — the whole cell is skipped without looking at its members.
   This is exact, not part of the eps approximation.

   Per-slot state lives in domain-local scratch (the [Sinr] pattern:
   busy flag, grow-only arrays, stamp-based set membership), so
   Reliability's Pool workers can resolve concurrently on one instance.
   Determinism: for a fixed sender array the sort key is (fine cell,
   input position), so accumulation order — and every float — is a pure
   function of the input, whatever the domain count. *)

open Sinr_obs

let m_slots = Metrics.counter "phys.sparse.slots"
let m_active = Metrics.counter "phys.sparse.active_cells"
let m_near = Metrics.counter "phys.sparse.near_links"
let m_far = Metrics.counter "phys.sparse.far_cell_pairs"

type t = {
  power : float;
  alpha : float;
  half_alpha : float;
  alpha3 : bool;  (* d^alpha = d2 * sqrt d2 for the default alpha = 3 *)
  beta : float;
  noise : float;
  eps : float;
  x0 : float;
  y0 : float;
  cf : float;  (* fine cell side *)
  inv_cf : float;
  ncx : int;
  ncy : int;
  cc : float;  (* coarse cell side = 4 * cf *)
  mcx : int;
  mcy : int;
  mcells : int;
  active_r2 : float;  (* center-to-center radius of possibly-decoding cells *)
  window : float;     (* finite marking radius (active_r clamped to grid) *)
  threshold2 : float; (* squared center distance of the far/near split *)
  soa : Soa.t;
  fine_of : int array;    (* node -> fine cell key *)
  cstart : int array;     (* coarse cell -> offset into cmembers, len mcells+1 *)
  cmembers : int array;   (* node ids grouped by coarse cell *)
}

let coarse_k = 4

let create (config : Config.t) soa ~eps =
  if eps <= 0. || eps >= 1. then invalid_arg "Sparse.create: eps not in (0, 1)";
  let n = Soa.length soa in
  let alpha = config.Config.alpha in
  let r = Config.range config in
  let xmin, ymin, xmax, ymax = Soa.bounds soa in
  let spanx = xmax -. xmin and spany = ymax -. ymin in
  (* Fine cell ~R/2, doubled until the dense grid stays O(n) cells even
     for spread-out layouts (two-lines with a huge gap, say). *)
  let max_cells = max 4096 (8 * n) in
  let cf = ref (Float.max 1. (r /. 2.)) in
  let dims () =
    ( int_of_float (spanx /. !cf) + 1,
      int_of_float (spany /. !cf) + 1 )
  in
  let ncx = ref 0 and ncy = ref 0 in
  let cx, cy = dims () in
  ncx := cx;
  ncy := cy;
  while !ncx * !ncy > max_cells do
    cf := !cf *. 2.;
    let cx, cy = dims () in
    ncx := cx;
    ncy := cy
  done;
  let cf = !cf and ncx = !ncx and ncy = !ncy in
  let cc = float_of_int coarse_k *. cf in
  let mcx = (ncx + coarse_k - 1) / coarse_k in
  let mcy = (ncy + coarse_k - 1) / coarse_k in
  let mcells = mcx * mcy in
  let half_diag side = side *. sqrt 2. /. 2. in
  let h = half_diag cf +. half_diag cc in
  let denom = ((1. +. eps) ** (1. /. alpha)) -. 1. in
  let dmin = h /. denom in
  let threshold = Float.max dmin (r +. h) +. 1e-9 in
  let active_r = r +. h +. 1e-9 in
  (* Window stays finite even when R is (noise 0 makes it infinite): a
     radius covering the whole grid marks every cell, which is correct,
     just no longer sparse. *)
  let window =
    let diag = float_of_int (max mcx mcy) *. cc *. 2. in
    if Float.is_finite active_r then Float.min active_r diag else diag
  in
  let fine_of = Array.make n 0 in
  let clampi v hi = if v < 0 then 0 else if v > hi then hi else v in
  for i = 0 to n - 1 do
    let kx = clampi (int_of_float ((Soa.unsafe_x soa i -. xmin) /. cf)) (ncx - 1) in
    let ky = clampi (int_of_float ((Soa.unsafe_y soa i -. ymin) /. cf)) (ncy - 1) in
    fine_of.(i) <- (ky * ncx) + kx
  done;
  (* Counting sort of the nodes into their coarse cells. *)
  let coarse_of_fine key =
    let kx = key mod ncx and ky = key / ncx in
    ((ky / coarse_k) * mcx) + (kx / coarse_k)
  in
  let cstart = Array.make (mcells + 1) 0 in
  for i = 0 to n - 1 do
    let g = coarse_of_fine fine_of.(i) in
    cstart.(g + 1) <- cstart.(g + 1) + 1
  done;
  for g = 1 to mcells do
    cstart.(g) <- cstart.(g) + cstart.(g - 1)
  done;
  let fill = Array.copy cstart in
  let cmembers = Array.make n 0 in
  for i = 0 to n - 1 do
    let g = coarse_of_fine fine_of.(i) in
    cmembers.(fill.(g)) <- i;
    fill.(g) <- fill.(g) + 1
  done;
  { power = config.Config.power;
    alpha;
    half_alpha = alpha /. 2.;
    alpha3 = alpha = 3.;
    beta = config.Config.beta;
    noise = config.Config.noise;
    eps;
    x0 = xmin;
    y0 = ymin;
    cf;
    inv_cf = 1. /. cf;
    ncx;
    ncy;
    cc;
    mcx;
    mcy;
    mcells;
    active_r2 = active_r *. active_r;
    window;
    threshold2 = threshold *. threshold;
    soa;
    fine_of;
    cstart;
    cmembers }

let eps t = t.eps
let fine_cells t = t.ncx * t.ncy
let coarse_cells t = t.mcells

(* ------------------------------------------------------------------ *)
(* Per-domain slot scratch                                             *)
(* ------------------------------------------------------------------ *)

type scratch = {
  mutable cell_key : int array;     (* occupied fine cell -> fine key *)
  mutable cell_beg : int array;     (* -> first index in the sorted order *)
  mutable cell_cnt : int array;     (* -> sender count *)
  mutable cell_cx : float array;    (* -> cell center *)
  mutable cell_cy : float array;
  mutable near : int array;         (* near cell indices for one coarse cell *)
  mutable seen : int array;         (* coarse-cell stamps *)
  mutable active : int array;       (* marked coarse cells *)
  mutable stamp : int;
  mutable busy : bool;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { cell_key = [||];
        cell_beg = [||];
        cell_cnt = [||];
        cell_cx = [||];
        cell_cy = [||];
        near = [||];
        seen = [||];
        active = [||];
        stamp = 0;
        busy = false })

let fresh_scratch ~cells ~mcells =
  { cell_key = Array.make cells 0;
    cell_beg = Array.make cells 0;
    cell_cnt = Array.make cells 0;
    cell_cx = Array.make cells 0.;
    cell_cy = Array.make cells 0.;
    near = Array.make cells 0;
    seen = Array.make mcells 0;
    active = Array.make mcells 0;
    stamp = 0;
    busy = false }

let with_scratch ~cells ~mcells f =
  let sc = Domain.DLS.get scratch_key in
  if sc.busy then f (fresh_scratch ~cells ~mcells)
  else begin
    sc.busy <- true;
    if Array.length sc.cell_key < cells then begin
      sc.cell_key <- Array.make cells 0;
      sc.cell_beg <- Array.make cells 0;
      sc.cell_cnt <- Array.make cells 0;
      sc.cell_cx <- Array.make cells 0.;
      sc.cell_cy <- Array.make cells 0.;
      sc.near <- Array.make cells 0
    end;
    (* Fresh stamp arrays start zeroed; the running stamp is always >= 1,
       so grown entries can never read as marked. *)
    if Array.length sc.seen < mcells then begin
      sc.seen <- Array.make mcells 0;
      sc.active <- Array.make mcells 0
    end;
    Fun.protect ~finally:(fun () -> sc.busy <- false) (fun () -> f sc)
  end

(* ------------------------------------------------------------------ *)
(* Slot resolution                                                     *)
(* ------------------------------------------------------------------ *)

(* d^alpha from d^2, avoiding libm pow on the default alpha = 3. *)
let[@inline] pow_alpha t d2 =
  if t.alpha3 then d2 *. sqrt d2 else d2 ** t.half_alpha

(* Bucket the slot's senders by fine cell: sort keys (cell, position) so
   grouping is one linear walk and the within-cell order is the input
   order (deterministic accumulation).  Returns the sorted key array; the
   sender at sorted position [j] is [ids.(combo.(j) land mask)]. *)
let bucket t sc ~ids ~nsend =
  let stride =
    let s = ref 1 in
    while !s < nsend do
      s := !s * 2
    done;
    !s
  in
  let mask = stride - 1 in
  let combo =
    Array.init nsend (fun k -> (t.fine_of.(ids.(k)) * stride) + k)
  in
  Array.sort (fun a b -> compare (a : int) b) combo;
  let ncells = ref 0 in
  let k = ref 0 in
  while !k < nsend do
    let key = combo.(!k) / stride in
    let j = ref !k in
    while !j < nsend && combo.(!j) / stride = key do
      incr j
    done;
    let c = !ncells in
    sc.cell_key.(c) <- key;
    sc.cell_beg.(c) <- !k;
    sc.cell_cnt.(c) <- !j - !k;
    sc.cell_cx.(c) <-
      t.x0 +. ((float_of_int (key mod t.ncx) +. 0.5) *. t.cf);
    sc.cell_cy.(c) <-
      t.y0 +. ((float_of_int (key / t.ncx) +. 0.5) *. t.cf);
    incr ncells;
    k := !j
  done;
  (combo, mask, !ncells)

(* Mark every coarse cell whose center lies within the active radius of
   an occupied sender cell's center; cells outside cannot decode (see the
   header proof) and are never visited. *)
let mark_active t sc ~ncells =
  sc.stamp <- sc.stamp + 1;
  let stamp = sc.stamp in
  let nactive = ref 0 in
  let w = t.window in
  for c = 0 to ncells - 1 do
    let cx = sc.cell_cx.(c) and cy = sc.cell_cy.(c) in
    let gxlo = max 0 (int_of_float ((cx -. w -. t.x0) /. t.cc)) in
    let gxhi = min (t.mcx - 1) (int_of_float ((cx +. w -. t.x0) /. t.cc)) in
    let gylo = max 0 (int_of_float ((cy -. w -. t.y0) /. t.cc)) in
    let gyhi = min (t.mcy - 1) (int_of_float ((cy +. w -. t.y0) /. t.cc)) in
    for gy = gylo to gyhi do
      let gyc = t.y0 +. ((float_of_int gy +. 0.5) *. t.cc) in
      for gx = gxlo to gxhi do
        let g = (gy * t.mcx) + gx in
        if sc.seen.(g) <> stamp then begin
          let gxc = t.x0 +. ((float_of_int gx +. 0.5) *. t.cc) in
          let dx = gxc -. cx and dy = gyc -. cy in
          if (dx *. dx) +. (dy *. dy) <= t.active_r2 then begin
            sc.seen.(g) <- stamp;
            sc.active.(!nactive) <- g;
            incr nactive
          end
        end
      done
    done
  done;
  !nactive

let resolve t ~ids ~nsend ~mark ~(result : int option array) =
  if nsend > 0 then
    with_scratch ~cells:(max 1 nsend) ~mcells:(max 1 t.mcells) @@ fun sc ->
    let combo, mask, ncells = bucket t sc ~ids ~nsend in
    let nactive = mark_active t sc ~ncells in
    let telemetry = Metrics.is_enabled () in
    if telemetry then begin
      Metrics.incr m_slots;
      Metrics.add m_active nactive
    end;
    let near_links = ref 0 and far_pairs = ref 0 in
    let soa = t.soa in
    let power = t.power and beta = t.beta and noise = t.noise in
    for a = 0 to nactive - 1 do
      let g = sc.active.(a) in
      let mbeg = t.cstart.(g) and mend = t.cstart.(g + 1) in
      (* A marked cell with no members is still silent: skip. *)
      if mbeg < mend then begin
        let gxc = t.x0 +. ((float_of_int (g mod t.mcx) +. 0.5) *. t.cc) in
        let gyc = t.y0 +. ((float_of_int (g / t.mcx) +. 0.5) *. t.cc) in
        (* One pass over the occupied sender cells: aggregate the far
           ones into the shared sum, collect the near ones. *)
        let far = ref 0. in
        let nnear = ref 0 in
        for c = 0 to ncells - 1 do
          let dx = sc.cell_cx.(c) -. gxc and dy = sc.cell_cy.(c) -. gyc in
          let d2 = (dx *. dx) +. (dy *. dy) in
          if d2 >= t.threshold2 then
            far :=
              !far
              +. (float_of_int sc.cell_cnt.(c) *. (power /. pow_alpha t d2))
          else begin
            sc.near.(!nnear) <- c;
            incr nnear
          end
        done;
        if telemetry then far_pairs := !far_pairs + (ncells - !nnear);
        let far = !far and nnear = !nnear in
        let near_sz = ref 0 in
        for q = 0 to nnear - 1 do
          near_sz := !near_sz + sc.cell_cnt.(sc.near.(q))
        done;
        let near_sz = !near_sz in
        for m = mbeg to mend - 1 do
          let u = Array.unsafe_get t.cmembers m in
          if Bytes.unsafe_get mark u = '\000' then begin
            let ux = Soa.unsafe_x soa u and uy = Soa.unsafe_y soa u in
            let total = ref far in
            let best = ref (-1) and best_pw = ref 0. in
            for q = 0 to nnear - 1 do
              let c = Array.unsafe_get sc.near q in
              let jbeg = sc.cell_beg.(c) in
              for j = jbeg to jbeg + sc.cell_cnt.(c) - 1 do
                let v =
                  Array.unsafe_get ids (Array.unsafe_get combo j land mask)
                in
                let dx = Soa.unsafe_x soa v -. ux
                and dy = Soa.unsafe_y soa v -. uy in
                let d2 = (dx *. dx) +. (dy *. dy) in
                let pw = power /. pow_alpha t d2 in
                total := !total +. pw;
                if pw > !best_pw then begin
                  best_pw := pw;
                  best := v
                end
              done
            done;
            if telemetry then near_links := !near_links + near_sz;
            if !best >= 0
               && !best_pw >= beta *. (noise +. !total -. !best_pw)
            then result.(u) <- Some !best
          end
        done
      end
    done;
    if telemetry then begin
      Metrics.add m_near !near_links;
      Metrics.add m_far !far_pairs
    end

(* Approximate total incoming power at listener [u], exactly as the
   resolve kernel accumulates it (shared far sum of u's coarse cell plus
   exact near terms).  Exposed so tests can assert the eps bound against
   the exact interference sum. *)
let interference t ~ids ~nsend ~receiver:u =
  if nsend = 0 then 0.
  else
    with_scratch ~cells:(max 1 nsend) ~mcells:(max 1 t.mcells) @@ fun sc ->
    let combo, mask, ncells = bucket t sc ~ids ~nsend in
    let kx = t.fine_of.(u) mod t.ncx and ky = t.fine_of.(u) / t.ncx in
    let g = ((ky / coarse_k) * t.mcx) + (kx / coarse_k) in
    let gxc = t.x0 +. ((float_of_int (g mod t.mcx) +. 0.5) *. t.cc) in
    let gyc = t.y0 +. ((float_of_int (g / t.mcx) +. 0.5) *. t.cc) in
    let total = ref 0. in
    let ux = Soa.x t.soa u and uy = Soa.y t.soa u in
    for c = 0 to ncells - 1 do
      let dx = sc.cell_cx.(c) -. gxc and dy = sc.cell_cy.(c) -. gyc in
      let d2 = (dx *. dx) +. (dy *. dy) in
      if d2 >= t.threshold2 then
        total :=
          !total +. (float_of_int sc.cell_cnt.(c) *. (t.power /. pow_alpha t d2))
      else begin
        let jbeg = sc.cell_beg.(c) in
        for j = jbeg to jbeg + sc.cell_cnt.(c) - 1 do
          let v = ids.(combo.(j) land mask) in
          let dx = Soa.unsafe_x t.soa v -. ux
          and dy = Soa.unsafe_y t.soa v -. uy in
          let d2 = (dx *. dx) +. (dy *. dy) in
          total := !total +. (t.power /. pow_alpha t d2)
        done
      end
    done;
    !total
