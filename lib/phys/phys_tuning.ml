(* Process-global tuning knobs for the physics fast path.

   These are *performance* knobs, not model parameters: whatever their
   values, the clean-channel resolution outcome is bit-identical to the
   direct evaluation of Eq. 1 — except for the explicitly approximate
   far-field mode, which is off unless an eps is installed and whose
   relative interference error is bounded by that eps (see Farfield).

   The knobs are read once per [Sinr.create] and captured in the instance,
   so flipping them mid-run never changes the physics of an existing
   simulator — only simulators created afterwards. *)

let default_cache_mb = 64

let cache_cap = ref (
  match Sys.getenv_opt "SINR_PHYS_CACHE_MB" with
  | Some s ->
    (match int_of_string_opt s with
     | Some mb when mb >= 0 -> mb * 1024 * 1024
     | Some _ | None -> default_cache_mb * 1024 * 1024)
  | None -> default_cache_mb * 1024 * 1024)

let cache_cap_bytes () = !cache_cap
let set_cache_cap_bytes b = cache_cap := max 0 b

let farfield = ref None

let farfield_eps () = !farfield

let set_farfield = function
  | None -> farfield := None
  | Some eps ->
    if eps <= 0. || eps >= 1. then
      invalid_arg "Phys_tuning.set_farfield: eps must lie in (0, 1)";
    farfield := Some eps

(* Below this node count the per-chunk pool overhead dwarfs the scoring
   work, so resolve stays on the sequential path. *)
let par_thresh = ref 1024

let par_threshold () = !par_thresh
let set_par_threshold n = par_thresh := max 1 n
