(* Process-global tuning knobs for the physics fast path.

   These are *performance* knobs, not model parameters: whatever their
   values, the clean-channel resolution outcome is bit-identical to the
   direct evaluation of Eq. 1 — except for the explicitly approximate
   far-field mode, which is off unless an eps is installed and whose
   relative interference error is bounded by that eps (see Farfield).

   The knobs are read once per [Sinr.create] and captured in the instance,
   so flipping them mid-run never changes the physics of an existing
   simulator — only simulators created afterwards. *)

let default_cache_mb = 64

let cache_cap = ref (
  match Sys.getenv_opt "SINR_PHYS_CACHE_MB" with
  | Some s ->
    (match int_of_string_opt s with
     | Some mb when mb >= 0 -> mb * 1024 * 1024
     | Some _ | None -> default_cache_mb * 1024 * 1024)
  | None -> default_cache_mb * 1024 * 1024)

let cache_cap_bytes () = !cache_cap
let set_cache_cap_bytes b = cache_cap := max 0 b

let farfield = ref None

let farfield_eps () = !farfield

let set_farfield = function
  | None -> farfield := None
  | Some eps ->
    if eps <= 0. || eps >= 1. then
      invalid_arg "Phys_tuning.set_farfield: eps must lie in (0, 1)";
    farfield := Some eps

(* Below this node count the per-chunk pool overhead dwarfs the scoring
   work, so resolve stays on the sequential path. *)
let par_thresh = ref 1024

let par_threshold () = !par_thresh
let set_par_threshold n = par_thresh := max 1 n

(* ------------------------------------------------------------------ *)
(* Million-node knobs                                                  *)
(* ------------------------------------------------------------------ *)

(* From this node count on, a [Sinr.create] with no explicit far-field
   mode installs the sparse cell-aggregated resolution path (Sparse) —
   the only way 10^5..10^6-node slots stay sub-second.  Below it the
   exact kernels keep the bit-identity contract.  A non-positive value
   disables the automatic switch entirely. *)
let default_sparse_threshold = 4096

let sparse_thresh = ref (
  match Sys.getenv_opt "SINR_SPARSE_THRESHOLD" with
  | Some s ->
    (match int_of_string_opt s with
     | Some n when n > 0 -> n
     | Some _ -> max_int  (* <= 0 disables *)
     | None -> default_sparse_threshold)
  | None -> default_sparse_threshold)

let sparse_threshold () = !sparse_thresh
let set_sparse_threshold n = sparse_thresh := (if n <= 0 then max_int else n)

(* Relative interference error bound of the automatic sparse path (same
   eps semantics as the opt-in Farfield mode). *)
let default_sparse_eps = 0.5

let sparse_eps_v = ref (
  match Sys.getenv_opt "SINR_SPARSE_EPS" with
  | Some s ->
    (match float_of_string_opt s with
     | Some e when e > 0. && e < 1. -> e
     | Some _ | None -> default_sparse_eps)
  | None -> default_sparse_eps)

let sparse_eps () = !sparse_eps_v

let set_sparse_eps e =
  if e <= 0. || e >= 1. then
    invalid_arg "Phys_tuning.set_sparse_eps: eps must lie in (0, 1)";
  sparse_eps_v := e

(* Above this node count the Gain_cache refuses to allocate any rows at
   all (not merely byte-capping them): at large n even the row-pointer
   array is waste, and resolution has moved to cell aggregates anyway. *)
let default_cache_node_ceiling = 8192

let cache_ceiling = ref (
  match Sys.getenv_opt "SINR_CACHE_NODE_CEILING" with
  | Some s ->
    (match int_of_string_opt s with
     | Some n when n >= 0 -> n
     | Some _ | None -> default_cache_node_ceiling)
  | None -> default_cache_node_ceiling)

let cache_node_ceiling () = !cache_ceiling
let set_cache_node_ceiling n = cache_ceiling := max 0 n
