(* The reliability graph H^mu_p[S] of Daum et al. (paper Section 9.2).

   Fix a node set S, a transmission probability p in (0, 1/2] and a
   reliability threshold mu in (0, p).  Run the experiment where every node
   of S transmits independently with probability p (and nobody else
   transmits).  The edge (u, v), u, v in S, belongs to H^mu_p[S] iff u
   receives v's message with probability at least mu AND vice versa.

   The distributed algorithm below the MAC layer only *estimates* this graph
   (that estimate lives in lib/core); this module computes a Monte-Carlo
   reference used by tests, by the oracle variants of Algorithm 9.1 and by
   the ablation benches.

   The ~400 slot simulations are independent, so they run through
   [Sinr_par.Pool].  Determinism contract: trial t draws only from the
   child stream [Rng.split rng ~key:t], and chunk tallies are merged by
   integer addition, so the estimate is bit-identical for every [jobs]
   setting (including the sequential [jobs = 1] path). *)

open Sinr_graph
open Sinr_par

type estimate = {
  graph : Graph.t;                (* edges with both directions >= mu *)
  success_prob : (int * int) -> float; (* directed reception probability *)
  trials : int;
}

let estimate ?(trials = 400) ?jobs sinr rng ~set ~p ~mu =
  if p <= 0. || p > 0.5 then invalid_arg "Reliability.estimate: p not in (0, 1/2]";
  if mu <= 0. || mu >= p then invalid_arg "Reliability.estimate: mu not in (0, p)";
  let n = Sinr.n sinr in
  let members = Array.of_list set in
  let m = Array.length members in
  let in_set = Array.make n false in
  Array.iter (fun v -> in_set.(v) <- true) members;
  (* counts.(i_receiver * m + i_sender) over member indices *)
  let pos = Array.make n (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) members;
  (* One independent slot simulation, tallying into [counts].  The slot's
     senders are drawn into [scratch] (reused across the chunk's trials —
     no per-trial list allocation) by one bernoulli draw per member in
     member-index order: exactly the draw order of the seed's
     [Array.to_list members |> List.filter], so estimates stay
     bit-identical. *)
  let run_trial counts scratch t =
    let trng = Sinr_geom.Rng.split rng ~key:t in
    let nsend = ref 0 in
    for i = 0 to m - 1 do
      if Sinr_geom.Rng.bernoulli trng p then begin
        scratch.(!nsend) <- members.(i);
        incr nsend
      end
    done;
    if !nsend > 0 then begin
      let outcome = Sinr.resolve_array sinr ~senders:scratch ~nsenders:!nsend in
      Array.iter
        (fun u ->
          match outcome.(u) with
          | Some v when in_set.(v) ->
            let iu = pos.(u) and iv = pos.(v) in
            counts.((iu * m) + iv) <- counts.((iu * m) + iv) + 1
          | Some _ | None -> ())
        members
    end
  in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let counts =
    if jobs = 1 then begin
      let counts = Array.make (m * m) 0 in
      let scratch = Array.make m 0 in
      for t = 0 to trials - 1 do
        run_trial counts scratch t
      done;
      counts
    end
    else
      Pool.with_jobs jobs (fun pool ->
          (* Each pool task owns a chunk of trials, a private tally and a
             private sender scratch; tallies merge by addition, so
             chunking cannot change the result. *)
          let chunk = max 1 (trials / (Pool.jobs pool * 4)) in
          let nchunks = (trials + chunk - 1) / chunk in
          Pool.map_reduce ~chunk:1 pool ~n:nchunks
            ~map:(fun c ->
              let part = Array.make (m * m) 0 in
              let scratch = Array.make m 0 in
              let lo = c * chunk and hi = min trials ((c + 1) * chunk) in
              for t = lo to hi - 1 do
                run_trial part scratch t
              done;
              part)
            ~reduce:(fun acc part ->
              Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) part;
              acc)
            ~init:(Array.make (m * m) 0))
  in
  let prob (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n || pos.(u) < 0 || pos.(v) < 0 then 0.
    else float_of_int counts.((pos.(u) * m) + pos.(v)) /. float_of_int trials
  in
  let edges = ref [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let u = members.(i) and v = members.(j) in
      if prob (u, v) >= mu && prob (v, u) >= mu then
        edges := (u, v) :: !edges
    done
  done;
  { graph = Graph.of_edges ~n !edges; success_prob = prob; trials }

let graph e = e.graph
let success_prob e pair = e.success_prob pair
let trials e = e.trials
