(* Grid-pruned far-field interference (opt-in, bounded relative error).

   Interference in Eq. 1 is a global sum: every sender contributes to
   every listener, which makes exact resolution Theta(|S| * n) however
   sparse the far field is.  For large deployments most of that sum is
   contributed by senders many transmission ranges away, where the
   individual powers are tiny and smooth.  This module aggregates them.

   Construction: nodes are bucketed into square cells of side [cell]
   (default R/2 — the same square-grid geometry Grid_index uses for range
   queries and Lemma 10.3 uses for its ring argument).  Per slot, the
   senders are grouped by cell; per listener u, a cell whose center m is
   at distance D = d(u, m) >= threshold is "far" and contributes

       count(cell) * P / D^alpha

   — one pow per occupied far cell instead of one per far sender — while
   senders in near cells are scored exactly through the gain cache.

   Error bound (the eps_I contract).  Every sender w of a cell with
   center m satisfies |d(u,w) - d(u,m)| <= h where h = cell*sqrt(2)/2 is
   the half-diagonal.  For D >= Dmin = h / ((1+eps)^(1/alpha) - 1) the
   per-sender power ratio (d/D)^alpha lies in [1-eps, 1+eps] (both sides
   follow from convexity of x^alpha, alpha > 2), so the aggregated far
   interference I' obeys |I' - I_far| <= eps * I_far <= eps * I.

   Exactness of the decision set: the threshold also satisfies
   threshold >= R + h, so a far cell cannot contain any sender within the
   transmission range R — and a sender beyond R can never pass the beta
   test (P/d^alpha < beta*N there).  Hence the *best-sender* candidate is
   always scored exactly; only the interference term carries the bounded
   eps error, and a decision can differ from the exact kernel only for
   links within that margin of the beta threshold.

   Telemetry (when Sinr_obs.Metrics is enabled): phys.farfield.near_links
   (exactly scored sender-listener pairs), phys.farfield.pruned_links
   (pairs folded into a cell aggregate), phys.farfield.far_cells (cell
   aggregates evaluated). *)

open Sinr_geom
open Sinr_obs

let m_near = Metrics.counter "phys.farfield.near_links"
let m_pruned = Metrics.counter "phys.farfield.pruned_links"
let m_cells = Metrics.counter "phys.farfield.far_cells"

type t = {
  power : float;
  alpha : float;
  beta : float;
  noise : float;
  eps : float;
  cell : float;
  half_diag : float;
  threshold : float;
  points : Point.t array;
  cell_of : int array;       (* node -> compact cell id *)
  centers : Point.t array;   (* compact cell id -> cell center *)
  ncells : int;
}

let eps t = t.eps
let threshold t = t.threshold
let cell_size t = t.cell

let create (config : Config.t) points ~eps =
  if eps <= 0. || eps >= 1. then
    invalid_arg "Farfield.create: eps must lie in (0, 1)";
  let r = Config.range config in
  let cell = Float.max 1. (r /. 2.) in
  let half_diag = cell *. sqrt 2. /. 2. in
  let dmin = half_diag /. (((1. +. eps) ** (1. /. config.Config.alpha)) -. 1.) in
  let threshold = Float.max dmin (r +. half_diag) +. 1e-9 in
  let n = Array.length points in
  let keys = Hashtbl.create (max 16 n) in
  let cell_of = Array.make n 0 in
  let centers = ref [] in
  let ncells = ref 0 in
  Array.iteri
    (fun i (p : Point.t) ->
      let kx = int_of_float (Float.floor (p.Point.x /. cell))
      and ky = int_of_float (Float.floor (p.Point.y /. cell)) in
      let id =
        match Hashtbl.find_opt keys (kx, ky) with
        | Some id -> id
        | None ->
          let id = !ncells in
          incr ncells;
          Hashtbl.add keys (kx, ky) id;
          centers :=
            Point.make
              ((float_of_int kx +. 0.5) *. cell)
              ((float_of_int ky +. 0.5) *. cell)
            :: !centers;
          id
      in
      cell_of.(i) <- id)
    points;
  { power = config.Config.power;
    alpha = config.Config.alpha;
    beta = config.Config.beta;
    noise = config.Config.noise;
    eps;
    cell;
    half_diag;
    threshold;
    points;
    cell_of;
    centers = Array.of_list (List.rev !centers);
    ncells = !ncells }

(* Group the slot's senders by cell: [occupied] lists the distinct cell
   ids, [members]/[starts] is a counting-sort bucketing of the sender
   array.  O(|S| + ncells) per slot. *)
type slot = {
  occupied : int array;
  counts : int array;            (* per cell id *)
  starts : int array;            (* per cell id, offset into members *)
  members : int array;           (* senders grouped by cell *)
}

let bucket t ~ids ~nsend =
  let counts = Array.make t.ncells 0 in
  for k = 0 to nsend - 1 do
    let c = t.cell_of.(ids.(k)) in
    counts.(c) <- counts.(c) + 1
  done;
  let nocc = ref 0 in
  for c = 0 to t.ncells - 1 do
    if counts.(c) > 0 then incr nocc
  done;
  let occupied = Array.make !nocc 0 in
  let starts = Array.make t.ncells 0 in
  let off = ref 0 and oi = ref 0 in
  for c = 0 to t.ncells - 1 do
    if counts.(c) > 0 then begin
      occupied.(!oi) <- c;
      incr oi;
      starts.(c) <- !off;
      off := !off + counts.(c)
    end
  done;
  let members = Array.make nsend 0 in
  let cursor = Array.copy starts in
  for k = 0 to nsend - 1 do
    let c = t.cell_of.(ids.(k)) in
    members.(cursor.(c)) <- ids.(k);
    cursor.(c) <- cursor.(c) + 1
  done;
  { occupied; counts; starts; members }

(* Score every listener against the bucketed senders, writing decisions
   into [result].  Near cells read the listener's cached power row (fetched
   lazily, only for listeners that actually have a near cell — filled into
   [scratch] past the cache cap); far cells contribute one aggregate term
   each. *)
let resolve_into t ~cache ~scratch ~slot:s ~mark ~result =
  let nocc = Array.length s.occupied in
  let telemetry = Metrics.is_enabled () in
  let near_links = ref 0 and pruned = ref 0 and far_cells = ref 0 in
  for u = 0 to Array.length t.points - 1 do
    if Bytes.unsafe_get mark u = '\000' then begin
      let at = t.points.(u) in
      let row = ref None in
      let get_row () =
        match !row with
        | Some r -> r
        | None ->
          let r = Gain_cache.row cache u ~scratch in
          row := Some r;
          r
      in
      let total = ref 0. in
      let best = ref (-1) and best_pw = ref 0. in
      for ci = 0 to nocc - 1 do
        let c = s.occupied.(ci) in
        let d = Point.dist at t.centers.(c) in
        if d >= t.threshold then begin
          (* Far cell: all members aggregated at the center distance. *)
          total :=
            !total
            +. (float_of_int s.counts.(c) *. (t.power /. (d ** t.alpha)));
          if telemetry then begin
            pruned := !pruned + s.counts.(c);
            incr far_cells
          end
        end
        else begin
          let r = get_row () in
          let lo = s.starts.(c) in
          for k = lo to lo + s.counts.(c) - 1 do
            let v = s.members.(k) in
            let pw = Float.Array.unsafe_get r v in
            total := !total +. pw;
            if pw > !best_pw then begin
              best_pw := pw;
              best := v
            end
          done;
          if telemetry then near_links := !near_links + s.counts.(c)
        end
      done;
      if !best >= 0 && !best_pw >= t.beta *. (t.noise +. !total -. !best_pw)
      then result.(u) <- Some !best
    end
  done;
  if telemetry then begin
    Metrics.add m_near !near_links;
    Metrics.add m_pruned !pruned;
    Metrics.add m_cells !far_cells
  end

let resolve t ~cache ~scratch ~ids ~nsend ~mark ~result =
  resolve_into t ~cache ~scratch ~slot:(bucket t ~ids ~nsend) ~mark ~result

(* The approximated total interference at a node — what resolve's [total]
   accumulator sees, exposed so tests can assert the eps_I bound against
   the exact sum.  (Aggregation order differs from resolve's count*power
   product only in float rounding; both sides satisfy the bound.) *)
let interference t ~receiver ~senders =
  let at = t.points.(receiver) in
  List.fold_left
    (fun acc v ->
      let c = t.cell_of.(v) in
      let d = Point.dist at t.centers.(c) in
      if d >= t.threshold then acc +. (t.power /. (d ** t.alpha))
      else acc +. (t.power /. (Point.dist t.points.(v) at ** t.alpha)))
    0. senders
