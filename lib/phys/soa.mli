(** Structure-of-arrays node state: flat unboxed position columns.

    The million-node engine stores the deployment as two contiguous
    [Float.Array.t] columns instead of a [Point.t array]; kernels index the
    columns directly (no pointer chase, no boxed floats). [dist]/[dist2]
    evaluate exactly the [Point.dist]/[Point.dist2] float expressions, so
    switching a kernel to the column view is bit-identical.

    Transmit power stays the uniform [Config.power] scalar (the paper's
    uniform-power assumption) — no per-node column is needed. Columns are
    written once (streaming placement or {!of_points}) and then frozen. *)

open Sinr_geom

type t

val create : n:int -> t
(** [n] zeroed slots, to be filled by a streaming placement generator. *)

val length : t -> int

val set : t -> int -> x:float -> y:float -> unit
val x : t -> int -> float
val y : t -> int -> float

val unsafe_x : t -> int -> float
val unsafe_y : t -> int -> float

val get : t -> int -> Point.t
(** Boxed view of one node (allocates). *)

val of_points : Point.t array -> t
val to_points : t -> Point.t array
(** Materializes the record view (allocates n points). *)

val dist : t -> int -> int -> float
(** Bit-identical to [Point.dist] on the same coordinates. *)

val dist2 : t -> int -> int -> float

val dist_to : t -> int -> x:float -> y:float -> float
val dist2_to : t -> int -> x:float -> y:float -> float

val iter : (int -> float -> float -> unit) -> t -> unit

val bounds : t -> float * float * float * float
(** [(xmin, ymin, xmax, ymax)] of the columns, in one unboxed pass. *)
