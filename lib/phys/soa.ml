(* Structure-of-arrays node state: flat unboxed position columns.

   The record-based [Point.t array] view costs a pointer chase plus two
   boxed-float loads per coordinate access; at n = 10^5..10^6 nodes that
   layout dominates cache traffic in the resolution inner loops and makes
   streaming placement impossible (every candidate boxes a point).  This
   module stores the deployment as two [Float.Array.t] columns (unboxed,
   contiguous) that the physics kernels index directly.

   Bit-identity contract: [dist]/[dist2] evaluate exactly the float
   expressions of [Point.dist]/[Point.dist2] on the same coordinates, so a
   kernel switched from the record view to the column view produces the
   same bits.  Transmit power needs no column under the paper's
   uniform-power assumption (Section 4.2): it stays the single
   [Config.power] scalar.

   Columns are written once (during placement streaming or [of_points])
   and then frozen for the life of the simulator, like the record view
   they replace. *)

open Sinr_geom

type t = { n : int; xs : Float.Array.t; ys : Float.Array.t }

let create ~n =
  if n <= 0 then invalid_arg "Soa.create: n must be positive";
  { n; xs = Float.Array.make n 0.; ys = Float.Array.make n 0. }

let length t = t.n

let set t i ~x ~y =
  Float.Array.set t.xs i x;
  Float.Array.set t.ys i y

let x t i = Float.Array.get t.xs i
let y t i = Float.Array.get t.ys i

let unsafe_x t i = Float.Array.unsafe_get t.xs i
let unsafe_y t i = Float.Array.unsafe_get t.ys i

let get t i = Point.make (Float.Array.get t.xs i) (Float.Array.get t.ys i)

let of_points pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Soa.of_points: no points";
  let t = create ~n in
  for i = 0 to n - 1 do
    let p = pts.(i) in
    Float.Array.unsafe_set t.xs i (Point.x p);
    Float.Array.unsafe_set t.ys i (Point.y p)
  done;
  t

let to_points t = Array.init t.n (get t)

(* Same float expressions as [Point.dist2]/[Point.dist] — the column view
   must be bit-identical to the record view. *)
let dist2 t i j =
  let dx = Float.Array.unsafe_get t.xs i -. Float.Array.unsafe_get t.xs j
  and dy = Float.Array.unsafe_get t.ys i -. Float.Array.unsafe_get t.ys j in
  (dx *. dx) +. (dy *. dy)

let dist t i j = sqrt (dist2 t i j)

let dist2_to t i ~x ~y =
  let dx = Float.Array.unsafe_get t.xs i -. x
  and dy = Float.Array.unsafe_get t.ys i -. y in
  (dx *. dx) +. (dy *. dy)

let dist_to t i ~x ~y = sqrt (dist2_to t i ~x ~y)

let iter f t =
  for i = 0 to t.n - 1 do
    f i (Float.Array.unsafe_get t.xs i) (Float.Array.unsafe_get t.ys i)
  done

(* Column bounds without materializing a box of boxed points. *)
let bounds t =
  let xmin = ref Float.infinity and xmax = ref Float.neg_infinity in
  let ymin = ref Float.infinity and ymax = ref Float.neg_infinity in
  for i = 0 to t.n - 1 do
    let x = Float.Array.unsafe_get t.xs i
    and y = Float.Array.unsafe_get t.ys i in
    if x < !xmin then xmin := x;
    if x > !xmax then xmax := x;
    if y < !ymin then ymin := y;
    if y > !ymax then ymax := y
  done;
  (!xmin, !ymin, !xmax, !ymax)
