(** Exact SINR reception resolution (paper Eq. 1).

    Because β > 1 at most one concurrent sender is decodable per listener;
    transmitters are half-duplex; there is no collision detection. *)

open Sinr_geom

type t

val create : Config.t -> Point.t array -> t
(** Raises [Invalid_argument] if any pairwise distance is below 1 (the
    near-field normalization of Section 4.2). *)

val config : t -> Config.t
val points : t -> Point.t array
val n : t -> int

val power_between : t -> from:Point.t -> at:Point.t -> float
(** Received power [P/d^α] between two plane positions. *)

val interference_at : t -> senders:int list -> at:Point.t -> float
(** Total power arriving at a plane position from the given transmitters. *)

val link_sinr : t -> senders:int list -> sender:int -> receiver:int -> float
(** SINR of the link [sender → receiver] against [senders] (which must
    contain [sender]). *)

type perturb = {
  noise_factor : int -> float;
      (** multiplier on the ambient noise N seen by a receiver (jamming) *)
  gain : sender:int -> receiver:int -> float;
      (** multiplier on one link's received power (fading) *)
}
(** One slot's adversarial channel state (see [lib/chaos]). Factor 1
    everywhere is the identity; omitting the perturbation entirely keeps
    the clean-channel fast path. *)

val no_perturb : perturb
(** The identity perturbation. *)

val reception : ?perturb:perturb -> t -> senders:int list -> receiver:int -> int option
(** The sender decoded by [receiver] in a slot where exactly [senders]
    transmit; [None] if the receiver transmits or decodes nothing. *)

val resolve : ?perturb:perturb -> t -> senders:int list -> int option array
(** Per-node decoding outcome for a whole slot, in O(|senders| · n). *)

val in_range : t -> int -> int -> bool
(** Weak reachability: distance at most the transmission range R. *)
