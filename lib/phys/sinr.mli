(** Exact SINR reception resolution (paper Eq. 1).

    Because β > 1 at most one concurrent sender is decodable per listener;
    transmitters are half-duplex; there is no collision detection.

    Resolution runs on a cached-gain fast path (see DESIGN.md "Physics
    fast path"): link powers are read from a precomputed per-receiver row
    that stores bit-identical results of the seed formula, so outcomes —
    including every seeded experiment number — are unchanged. The seed
    kernel is kept as {!resolve_reference} for equivalence tests and
    benchmarks. *)

open Sinr_geom

type t

val create : Config.t -> Point.t array -> t
(** Raises [Invalid_argument] if any pairwise distance is below 1 (the
    near-field normalization of Section 4.2). Captures the current
    [Phys_tuning] knobs (gain-cache byte cap + node ceiling, optional
    far-field eps, sparse threshold/eps, parallelism threshold). From
    [Phys_tuning.sparse_threshold] nodes on (and with no explicit
    far-field mode) the sparse cell-aggregated path is installed. *)

val create_soa : ?check:bool -> Config.t -> Soa.t -> t
(** Column-first constructor for streaming placements at large n: the
    boxed [points] view is materialized lazily, only if something forces
    it. [check] (default true) validates the min-distance invariant;
    generators that guarantee it by construction pass [~check:false]. *)

val config : t -> Config.t

val soa : t -> Soa.t
(** The flat position columns every kernel reads. *)

val points : t -> Point.t array
(** The boxed record view (forces the lazy materialization at first use —
    geometry/graph consumers only, never the hot path). *)

val n : t -> int

val gain_cache : t -> Gain_cache.t
(** The instance's pairwise received-power table (for stats and tests). *)

val farfield : t -> Farfield.t option
(** The grid-pruned far-field state, when one was installed at creation. *)

val sparse : t -> Sparse.t option
(** The sparse cell-aggregated resolution state, when the node count
    reached [Phys_tuning.sparse_threshold] at creation. *)

val power_between : t -> from:Point.t -> at:Point.t -> float
(** Received power [P/d^α] between two plane positions. *)

val power : t -> sender:int -> receiver:int -> float
(** Received power of the node link [sender → receiver]; same value as
    {!power_between} on their positions, served from the gain cache when
    the receiver's row is resident. *)

val interference_at : t -> senders:int list -> at:Point.t -> float
(** Total power arriving at a plane position from the given transmitters. *)

val link_sinr : t -> senders:int list -> sender:int -> receiver:int -> float
(** SINR of the link [sender → receiver] against [senders] (which must
    contain [sender]). *)

type perturb = {
  noise_factor : int -> float;
      (** multiplier on the ambient noise N seen by a receiver (jamming) *)
  gain : sender:int -> receiver:int -> float;
      (** multiplier on one link's received power (fading) *)
}
(** One slot's adversarial channel state (see [lib/chaos]). Factor 1
    everywhere is the identity; omitting the perturbation entirely keeps
    the clean-channel fast path. Perturbed gains multiply the cached
    clean-channel powers. *)

val no_perturb : perturb
(** The identity perturbation. *)

val reception : ?perturb:perturb -> t -> senders:int list -> receiver:int -> int option
(** The sender decoded by [receiver] in a slot where exactly [senders]
    transmit; [None] if the receiver transmits or decodes nothing.
    Membership is one O(|senders|) bitmap pass (then O(1)); scoring goes
    through the shared cached kernel. *)

val resolve : ?perturb:perturb -> t -> senders:int list -> int option array
(** Per-node decoding outcome for a whole slot, in O(|senders| · n). *)

val resolve_array :
  ?perturb:perturb -> t -> senders:int array -> nsenders:int -> int option array
(** {!resolve} with the senders given as the first [nsenders] entries of a
    reusable array (only read) — the allocation-free entry point for
    Monte-Carlo trial loops. *)

val resolve_reference : ?perturb:perturb -> t -> senders:int list -> int option array
(** The seed kernel, verbatim: re-derives every link power per pair per
    slot. The fast path is asserted bit-identical to this by the test
    suite; `bench/main.exe phys` measures the gap. *)

val in_range : t -> int -> int -> bool
(** Weak reachability: distance at most the transmission range R. *)
