(** Precomputed n x n received-power table for a frozen point set.

    Entries are produced by evaluating the seed formula
    [power /. (dist v u ** alpha)] verbatim on the [Soa] columns, so
    reading the cache is bit-identical to computing on the fly. Rows fill
    lazily (first touch wins, atomic publication — safe under
    [Sinr_par.Pool] workers) until the byte budget is spent; past the cap
    rows are recomputed into the caller's scratch buffer.

    When the node count exceeds [node_ceiling] the cache is refused
    outright before any allocation: no row-pointer array exists, every
    lookup evaluates the formula directly, and the decision ticks the
    [phys.cache.bypassed] counter. *)

type t

val create : Config.t -> Soa.t -> cap_bytes:int -> node_ceiling:int -> t

val n : t -> int

val max_rows : t -> int
(** How many rows the byte budget admits (0 when bypassed). *)

val bypassed : t -> bool
(** The node count exceeded the ceiling: no row will ever be allocated. *)

val rows_cached : t -> int
val bytes_cached : t -> int

val row : t -> int -> scratch:Float.Array.t -> Float.Array.t
(** [row t u ~scratch] is receiver [u]'s power row: index [v] holds the
    received power of a transmission from [v] at [u] (diagonal 0, never
    meaningful). Returns the resident row, or fills [scratch] (length
    [>= n t]) and returns it when the cap is exhausted or the cache is
    bypassed. *)

val pair : t -> sender:int -> receiver:int -> float
(** One entry: cached when the receiver's row is resident, otherwise a
    direct evaluation of the same expression. Never triggers a row fill. *)

val compute : t -> sender:int -> receiver:int -> float
(** The uncached seed expression (exposed for tests). *)
