(* Precomputed pairwise received-power table.

   The point set of a [Sinr.t] is frozen for the life of the simulator, so
   the received power P/d(v,u)^alpha of every ordered pair is a constant of
   the deployment — yet the seed kernel re-derived it (a sqrt plus a libm
   pow) for every (sender, listener) pair of every slot.  This module
   stores the n x n table once, as flat unboxed rows.

   Bit-identity contract: a cached entry is produced by evaluating exactly
   the seed expression

       power /. (Point.dist points.(v) points.(u) ** alpha)

   (read off the [Soa] columns, whose [dist] is bit-identical to
   [Point.dist]) so reading the cache can never change a resolution
   outcome, a seeded experiment number or a Spec_check verdict.  The
   diagonal is stored as 0 and never read (a node is either the listener
   or a sender, and half-duplex listeners skip themselves).

   Memory cap, two levels:

   - Node ceiling: when n exceeds [node_ceiling] the cache is bypassed
     outright — no row-pointer array, no atomics, every lookup evaluates
     the seed formula directly.  An n x n table is quadratic by design;
     past ~10^4 nodes resolution runs on cell aggregates (Sparse) and a
     row cache is pure waste.  The decision is counted once per create on
     [phys.cache.bypassed].
   - Byte budget: below the ceiling, rows fill lazily (first touch wins)
     until the configured byte budget (Phys_tuning.cache_cap_bytes at
     Sinr.create time) is spent; past the cap a row is computed into the
     caller's per-domain scratch buffer and not retained.  Row publication
     goes through an [Atomic.t] per row, so concurrent Pool workers (the
     Reliability Monte-Carlo) either see a fully initialized row or build
     their own — a lost race wastes one row fill of identical values,
     never correctness.

   Telemetry (when Sinr_obs.Metrics is enabled): phys.cache.hits,
   phys.cache.fills (rows retained), phys.cache.scratch_rows (rows
   recomputed past the cap), phys.cache.bypassed (caches refused at the
   node ceiling). *)

open Sinr_obs

let m_hits = Metrics.counter "phys.cache.hits"
let m_fills = Metrics.counter "phys.cache.fills"
let m_scratch = Metrics.counter "phys.cache.scratch_rows"
let m_bypassed = Metrics.counter "phys.cache.bypassed"

type t = {
  power : float;
  alpha : float;
  soa : Soa.t;
  n : int;
  bypassed : bool;  (* n exceeded the node ceiling: no rows, ever *)
  rows : Float.Array.t option Atomic.t array;  (* empty when bypassed *)
  reserved : int Atomic.t;  (* rows admitted against the cap *)
  max_rows : int;
}

let create (config : Config.t) soa ~cap_bytes ~node_ceiling =
  let n = Soa.length soa in
  let row_bytes = max 1 (n * 8) in
  (* Refuse before allocating anything: past the ceiling even the
     row-pointer array (n words + n atomics) is quadratic-era waste. *)
  let bypassed = n > node_ceiling in
  if bypassed then Metrics.incr m_bypassed;
  { power = config.Config.power;
    alpha = config.Config.alpha;
    soa;
    n;
    bypassed;
    rows = (if bypassed then [||] else Array.init n (fun _ -> Atomic.make None));
    reserved = Atomic.make 0;
    max_rows = (if bypassed then 0 else max 0 (cap_bytes / row_bytes)) }

let n t = t.n
let max_rows t = t.max_rows
let bypassed t = t.bypassed

let rows_cached t = min t.max_rows (Atomic.get t.reserved)

let bytes_cached t = rows_cached t * t.n * 8

(* The seed formula, verbatim (Sinr.power_between inlined on node pairs). *)
let compute t ~sender:v ~receiver:u = t.power /. (Soa.dist t.soa v u ** t.alpha)

let fill_into t u (dst : Float.Array.t) =
  let soa = t.soa in
  let ux = Soa.unsafe_x soa u and uy = Soa.unsafe_y soa u in
  for v = 0 to t.n - 1 do
    Float.Array.unsafe_set dst v
      (if v = u then 0.
       else t.power /. (Soa.dist_to soa v ~x:ux ~y:uy ** t.alpha))
  done

(* Admit one more row against the byte budget. *)
let rec reserve t =
  let c = Atomic.get t.reserved in
  c < t.max_rows
  && (Atomic.compare_and_set t.reserved c (c + 1) || reserve t)

let row t u ~scratch =
  if t.bypassed then begin
    Metrics.incr m_scratch;
    fill_into t u scratch;
    scratch
  end
  else
    match Atomic.get t.rows.(u) with
    | Some r ->
      Metrics.incr m_hits;
      r
    | None ->
      if reserve t then begin
        let r = Float.Array.create t.n in
        fill_into t u r;
        Atomic.set t.rows.(u) (Some r);
        Metrics.incr m_fills;
        r
      end
      else begin
        Metrics.incr m_scratch;
        fill_into t u scratch;
        scratch
      end

(* Single-pair lookup (engine delivery power): O(1) when the receiver's
   row is resident, otherwise one direct evaluation — never a row fill. *)
let pair t ~sender ~receiver =
  if t.bypassed then compute t ~sender ~receiver
  else
    match Atomic.get t.rows.(receiver) with
    | Some r ->
      Metrics.incr m_hits;
      Float.Array.get r sender
    | None -> compute t ~sender ~receiver
