(** Uniform handle over absMAC implementations, so protocols run unchanged
    over the ideal MAC and over Algorithm 11.1 — the plug-and-play property
    of the absMAC theory. *)

open Sinr_mac

type t = {
  n : int;
  now : unit -> int;
  bounds : Absmac_intf.bounds;
  set_handlers : Absmac_intf.handlers -> unit;
  bcast : node:int -> data:int -> Events.payload;
  abort : node:int -> unit;
  busy : node:int -> bool;
  step : unit -> unit;
  alive : node:int -> bool;
}

val of_ideal : Ideal_mac.t -> t
val of_decay : Decay_mac.t -> t
val of_combined : Combined_mac.t -> t

(** {1 Retry with deadline}

    Under adversarial aborts and crashes (lib/chaos) a broadcast can die
    without an ack. {!with_retry} re-issues lost payloads with capped
    exponential backoff, using the layer's own [bounds.f_ack] as the
    per-attempt deadline. *)

type retry_stats = {
  reissues : int;   (** bcasts re-issued after an abort/timeout *)
  timeouts : int;   (** deadline expiries that forced an inner abort *)
  gave_up : int;    (** payloads dropped after [max_attempts] or a crash *)
  recovered : int;  (** payloads acked on a retry attempt, not the first *)
}

type retry = {
  driver : t;
      (** the wrapped driver — hand this to protocols instead of the inner
          one; its [abort] is intentional and cancels retries *)
  force_abort : node:int -> unit;
      (** adversarial abort: kills the in-flight broadcast but keeps the
          payload pending, so the wrapper backs off and retries it *)
  outstanding : unit -> int;
      (** payloads not yet acked or dropped *)
  stats : unit -> retry_stats;
}

val with_retry :
  ?max_attempts:int -> ?base_backoff:int -> ?deadline:int -> t -> retry
(** [with_retry inner] interposes on [inner]'s handlers (install protocol
    handlers through the returned driver afterwards). [max_attempts]
    (default 4) bounds total attempts per payload; [deadline] (default
    [inner.bounds.f_ack]) declares an in-flight attempt lost; backoff
    doubles from [base_backoff] (default [deadline/16], at least 1) and is
    capped at [deadline]. *)
