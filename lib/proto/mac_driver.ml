(* Uniform handle over absMAC implementations.

   Protocols above the layer ([37]'s BSMB/BMMB, Newport-style consensus)
   are written against this record of operations, so each protocol runs
   unchanged over the ideal graph-based MAC (for spec-level testing) and
   over Algorithm 11.1 on the SINR simulator (for the experiments) —
   exactly the plug-and-play property the absMAC theory advertises. *)

open Sinr_mac

type t = {
  n : int;
  now : unit -> int;
  bounds : Absmac_intf.bounds;
  set_handlers : Absmac_intf.handlers -> unit;
  bcast : node:int -> data:int -> Events.payload;
  abort : node:int -> unit;
  busy : node:int -> bool;
  step : unit -> unit;
  alive : node:int -> bool; (* false for crashed nodes *)
}

let of_ideal mac =
  { n = Ideal_mac.n mac;
    now = (fun () -> Ideal_mac.now mac);
    bounds = Ideal_mac.bounds mac;
    set_handlers = Ideal_mac.set_handlers mac;
    bcast = (fun ~node ~data -> Ideal_mac.bcast mac ~node ~data);
    abort = (fun ~node -> Ideal_mac.abort mac ~node);
    busy = (fun ~node -> Ideal_mac.busy mac ~node);
    step = (fun () -> Ideal_mac.step mac);
    alive = (fun ~node:_ -> true) }

let of_decay mac =
  { n = Decay_mac.n mac;
    now = (fun () -> Decay_mac.now mac);
    bounds = Decay_mac.bounds mac;
    set_handlers = Decay_mac.set_handlers mac;
    bcast = (fun ~node ~data -> Decay_mac.bcast mac ~node ~data);
    abort = (fun ~node -> Decay_mac.abort mac ~node);
    busy = (fun ~node -> Decay_mac.busy mac ~node);
    step = (fun () -> Decay_mac.step mac);
    alive =
      (fun ~node ->
        not (Sinr_engine.Engine.is_crashed (Decay_mac.engine mac) node)) }

let of_combined mac =
  { n = Combined_mac.n mac;
    now = (fun () -> Combined_mac.now mac);
    bounds = Combined_mac.bounds mac;
    set_handlers = Combined_mac.set_handlers mac;
    bcast = (fun ~node ~data -> Combined_mac.bcast mac ~node ~data);
    abort = (fun ~node -> Combined_mac.abort mac ~node);
    busy = (fun ~node -> Combined_mac.busy mac ~node);
    step = (fun () -> Combined_mac.step mac);
    alive =
      (fun ~node ->
        not (Sinr_engine.Engine.is_crashed (Combined_mac.engine mac) node)) }

(* ------------------------------------------------------------------ *)
(* Retry-with-deadline wrapper                                         *)
(* ------------------------------------------------------------------ *)

(* Under adversarial abort pressure and crash faults (lib/chaos) a bcast
   can die without an ack.  [with_retry] wraps a driver so that a payload
   whose broadcast was aborted — or stuck busy past the layer's own
   [bounds.f_ack] deadline — is re-issued with capped exponential backoff,
   up to [max_attempts] total attempts.  An abort through the *wrapped*
   driver is intentional (the environment cancelled the payload) and
   cancels its retries; aborts that bypass the wrapper (chaos forcing the
   inner layer, or a crash dropping the broadcast) are observed in [step]
   as "pending payload, not busy, no retry scheduled" and rescheduled. *)

module Metrics = Sinr_obs.Metrics

let m_retries = Metrics.counter "driver.retry.reissues"
let m_timeouts = Metrics.counter "driver.retry.timeouts"
let m_gave_up = Metrics.counter "driver.retry.gave_up"
let m_recovered = Metrics.counter "driver.retry.recovered"

type retry_stats = {
  reissues : int;   (* bcasts re-issued after an abort/timeout *)
  timeouts : int;   (* deadline expiries that forced an inner abort *)
  gave_up : int;    (* payloads dropped after max_attempts (or a crash) *)
  recovered : int;  (* payloads acked on a retry attempt (not the first) *)
}

type retry = {
  driver : t;
  force_abort : node:int -> unit;
      (* adversarial abort: kills the in-flight broadcast but keeps the
         payload pending, so the wrapper retries it *)
  outstanding : unit -> int;
  stats : unit -> retry_stats;
}

let with_retry ?(max_attempts = 4) ?base_backoff ?deadline inner =
  let n = inner.n in
  let deadline =
    match deadline with Some d -> d | None -> inner.bounds.Absmac_intf.f_ack
  in
  let base_backoff =
    match base_backoff with Some b -> max 1 b | None -> max 1 (deadline / 16)
  in
  let pending = Array.make n None in      (* data awaiting an ack *)
  let attempts = Array.make n 0 in
  let started = Array.make n 0 in         (* slot of the latest attempt *)
  let retry_at = Array.make n max_int in  (* max_int = no retry scheduled *)
  let live = ref 0 in                     (* pending payloads *)
  let reissues = ref 0 and timeouts = ref 0 in
  let gave_up = ref 0 and recovered = ref 0 in
  let user = ref Absmac_intf.null_handlers in
  inner.set_handlers
    { Absmac_intf.on_rcv =
        (fun ~node ~payload -> !user.Absmac_intf.on_rcv ~node ~payload);
      on_ack =
        (fun ~node ~payload ->
          if pending.(node) <> None then begin
            if attempts.(node) > 1 then begin
              incr recovered;
              Metrics.incr m_recovered
            end;
            pending.(node) <- None;
            attempts.(node) <- 0;
            retry_at.(node) <- max_int;
            decr live
          end;
          !user.Absmac_intf.on_ack ~node ~payload) };
  (* Exponential backoff from [base_backoff], capped at the deadline. *)
  let backoff k =
    min deadline (base_backoff * (1 lsl min k 20))
  in
  let drop node =
    pending.(node) <- None;
    attempts.(node) <- 0;
    retry_at.(node) <- max_int;
    incr gave_up;
    Metrics.incr m_gave_up;
    decr live
  in
  let schedule_retry node =
    if attempts.(node) >= max_attempts then drop node
    else retry_at.(node) <- inner.now () + backoff (attempts.(node) - 1)
  in
  let bcast ~node ~data =
    let p = inner.bcast ~node ~data in
    if pending.(node) = None then incr live;
    pending.(node) <- Some data;
    attempts.(node) <- 1;
    started.(node) <- inner.now ();
    retry_at.(node) <- max_int;
    p
  in
  let abort ~node =
    (* Intentional abort: forget the payload entirely. *)
    if pending.(node) <> None then begin
      pending.(node) <- None;
      attempts.(node) <- 0;
      retry_at.(node) <- max_int;
      decr live
    end;
    inner.abort ~node
  in
  let step () =
    inner.step ();
    let now = inner.now () in
    for v = 0 to n - 1 do
      match pending.(v) with
      | None -> ()
      | Some data ->
        if not (inner.alive ~node:v) then drop v
        else if inner.busy ~node:v then begin
          (* In flight.  The layer promised an ack within f_ack of the
             attempt; past the deadline, treat the attempt as lost. *)
          if now - started.(v) > deadline then begin
            incr timeouts;
            Metrics.incr m_timeouts;
            inner.abort ~node:v;
            schedule_retry v
          end
        end
        else if retry_at.(v) = max_int then
          (* Not busy, no ack, nothing scheduled: the attempt was aborted
             behind our back (chaos / crash-drop).  Back off and retry. *)
          schedule_retry v
        else if now >= retry_at.(v) then begin
          retry_at.(v) <- max_int;
          attempts.(v) <- attempts.(v) + 1;
          started.(v) <- now;
          incr reissues;
          Metrics.incr m_retries;
          ignore (inner.bcast ~node:v ~data)
        end
    done
  in
  let force_abort ~node = if inner.busy ~node then inner.abort ~node in
  { driver =
      { inner with
        bcast;
        abort;
        step;
        set_handlers = (fun h -> user := h) };
    force_abort;
    outstanding = (fun () -> !live);
    stats =
      (fun () ->
        { reissues = !reissues;
          timeouts = !timeouts;
          gave_up = !gave_up;
          recovered = !recovered }) }
