(** E-chaos — graceful degradation of Algorithm 11.1 under the lib/chaos
    adversaries (jamming, fading, crash–recover, abort pressure).

    One sweep axis per adversary, each varied with the others off; every
    point reports ack latency, approximate-progress latency, retry-wrapper
    activity and {!Sinr_mac.Spec_check} violation counts, aggregated over
    seeds.  Degradation curves are optionally written as JSON ([~out]). *)

type spec = {
  jam_duty : float;       (** fraction of each jam period jammed *)
  jam_mult : float;       (** noise multiplier during a burst *)
  jam_period : int;
  fading_sigma : float;   (** log-normal sigma on link gains *)
  crash_frac : float;     (** fraction of nodes crashed *)
  crash_downtime : int;   (** slots until recovery; [<= 0] = never *)
  abort_rate : float;     (** per-slot per-busy-node forced-abort prob. *)
}

val clean : spec
(** All adversaries off (the baseline row of every axis). *)

type outcome = {
  o_senders : int;
  o_acked : int;
  o_gave_up : int;
  o_unfinished : int;
  o_ack_mean : float;     (** slots, over acked payloads; nan when none *)
  o_ack_max : int;
  o_approg_watched : int;
  o_approg_done : int;
  o_approg_mean : float;  (** nan when no watched listener progressed *)
  o_reissues : int;
  o_timeouts : int;
  o_forced_aborts : int;
  o_crashes : int;
  o_late_acks : int;
  o_aborted : int;
  o_prog_checks : int;
  o_prog_violations : int;
  o_slots : int;
}

val run_scenario :
  ?n:int -> ?degree:int -> ?budget_mult:int -> seed:int -> spec -> outcome
(** One deployment + adversary + workload (every even node broadcasts once
    at slot 0 through {!Sinr_proto.Mac_driver.with_retry}), run until all
    payloads resolve or [budget_mult * f_ack] slots elapse.  Fully
    determined by [(n, degree, seed, spec)]. *)

type row = {
  axis : string;
  level : float;
  acked_frac : float;
  ack_mean : float;
  approg_frac : float;
  approg_mean : float;
  reissues : float;
  forced_aborts : float;
  crashes : float;
  gave_up : float;
  late_acks : float;
  aborted : float;
  prog_violations : float;
  prog_checks : float;
}

val run :
  ?jobs:int -> ?seeds:int list -> ?n:int -> ?degree:int ->
  ?axes:(string * float list * (float -> spec)) list ->
  ?out:string -> unit -> row list
(** The degradation sweep: per axis, per level, [run_scenario] over the
    seeds via {!Sweep.grid} (bit-identical whatever [jobs]); prints the
    aggregated table and, when [out] is given, writes the curves there as
    JSON. *)
