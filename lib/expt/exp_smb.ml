(* E5 — Table 2 and Theorem 12.7: global single-message broadcast.

   Three algorithms on the same deployments:

     ours          BSMB over the Algorithm 11.1 absMAC (Theorem 12.7),
     dgkn [14]     epoch machinery with w.h.p. parameters + relay,
     decay-flood   the [32]-class polylog(n)-per-hop baseline.

   Sweep (a) the diameter D on line deployments (Lambda small and fixed);
   sweep (b) the distance ratio Lambda at fixed n and density.  Table 2's
   claim: ours beats [14] across the board, and beats the [32]-class when
   log^{alpha+1} Lambda is small relative to log^2 n.

   Each (workload, seed) cell builds its deployment once and runs all
   three algorithms on it as one Sweep task; every algorithm keeps its own
   seeded stream, so the numbers match the former one-trial-per-algorithm
   loops exactly. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_proto

type row = {
  label : string;
  diameter : int;
  lambda : float;
  ours : Summary.t option;
  ours_timeouts : int;
  dgkn : Summary.t option;
  dgkn_timeouts : int;
  decay : Summary.t option;
  decay_timeouts : int;
}

type cell = {
  c_diameter : int;
  c_lambda : float;
  c_ours : float option;
  c_dgkn : float option;
  c_decay : float option;
}

let smb_cell (mk : int -> Workloads.deployment) ~max_slots seed =
  let d = mk seed in
  let ours =
    Global.smb d.Workloads.sinr
      ~rng:(Rng.create (0x0541 + seed))
      ~source:0 ~max_slots
  in
  let dgkn =
    Dgkn_broadcast.run d.Workloads.sinr
      ~rng:(Rng.create (0x0D64 + seed))
      ~source:0 ~max_slots
  in
  let decay =
    Decay_flood.run d.Workloads.sinr
      ~rng:(Rng.create (0x0DEC + seed))
      ~source:0 ~max_slots
  in
  { c_diameter = d.Workloads.profile.Induced.strong_diameter;
    c_lambda = d.Workloads.profile.Induced.lambda;
    c_ours = Report.opt_int_to_float ours.Global.completed;
    c_dgkn = Report.opt_int_to_float dgkn.Dgkn_broadcast.completed;
    c_decay = Report.opt_int_to_float decay.Decay_flood.completed }

let summarize_cells proj cells =
  let values = List.filter_map proj cells in
  let summary =
    match values with
    | [] -> None
    | _ -> Some (Summary.of_samples (Array.of_list values))
  in
  (summary, List.length cells - List.length values)

let row_of_cells ~label cells =
  let last = List.nth cells (List.length cells - 1) in
  let ours, ours_timeouts = summarize_cells (fun c -> c.c_ours) cells in
  let dgkn, dgkn_timeouts = summarize_cells (fun c -> c.c_dgkn) cells in
  let decay, decay_timeouts = summarize_cells (fun c -> c.c_decay) cells in
  { label;
    diameter = last.c_diameter;
    lambda = last.c_lambda;
    ours;
    ours_timeouts;
    dgkn;
    dgkn_timeouts;
    decay;
    decay_timeouts }

(* Run one sweep: [mk_of_param] names each workload and builds its seeded
   deployment; the full (param x seed) grid runs through the pool. *)
let sweep ~seeds ~params ~label_of ~mk_of ~max_slots =
  Sweep.grid ~params ~seeds (fun p seed -> smb_cell (mk_of p) ~max_slots seed)
  |> List.map (fun (p, cells) -> row_of_cells ~label:(label_of p) cells)

let print_rows ~title rows =
  let table =
    Table.create ~title
      ~header:
        [ "workload"; "D"; "Lambda"; "ours (Thm 12.7)"; "t/o"; "dgkn [14]";
          "t/o"; "decay-flood [32]"; "t/o" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.label;
          string_of_int r.diameter;
          Fmt.str "%.1f" r.lambda;
          Report.mean_cell r.ours;
          string_of_int r.ours_timeouts;
          Report.mean_cell r.dgkn;
          string_of_int r.dgkn_timeouts;
          Report.mean_cell r.decay;
          string_of_int r.decay_timeouts ])
    rows;
  Report.emit table

let winners rows =
  List.iter
    (fun r ->
      match (r.ours, r.dgkn) with
      | Some o, Some d ->
        Fmt.pr "  %s: ours/dgkn = %.2f (Table 2 predicts < 1)%s@." r.label
          (o.Summary.mean /. d.Summary.mean)
          (match r.decay with
           | Some dec ->
             Fmt.str ", ours/decay-flood = %.2f"
               (o.Summary.mean /. dec.Summary.mean)
           | None -> "")
      | _ -> Fmt.pr "  %s: incomplete@." r.label)
    rows

let run_diameter ?(seeds = [ 1; 2; 3 ]) ?(hops = [ 4; 8; 16 ]) () =
  Report.section "E5a: global SMB vs diameter (Table 2, Theorem 12.7)";
  let rows =
    sweep ~seeds ~params:hops
      ~label_of:(fun h -> Fmt.str "line D=%d" h)
      ~mk_of:(fun h seed ->
        ignore seed;
        Workloads.line ~hops:h ())
      ~max_slots:3_000_000
  in
  print_rows ~title:"completion slots, diameter sweep (Lambda ~ const)" rows;
  winners rows;
  rows

let run_size ?(seeds = [ 1; 2; 3 ]) ?(ns = [ 20; 40; 80 ]) ?(target_degree = 8) () =
  Report.section "E5c: global SMB vs network size (Table 2 crossover, n side)";
  let rows =
    sweep ~seeds ~params:ns
      ~label_of:(fun n -> Fmt.str "n=%d" n)
      ~mk_of:(fun n seed ->
        Workloads.connected
          (Rng.create (0x51E + (seed * 131) + n))
          (fun rng -> Workloads.uniform rng ~n ~target_degree))
      ~max_slots:3_000_000
  in
  print_rows
    ~title:"completion slots, size sweep (Lambda, density fixed: decay-flood \
            pays log^2 n, ours does not)"
    rows;
  winners rows;
  rows

let run_lambda ?(seeds = [ 1; 2; 3 ]) ?(ranges = [ 6.; 12.; 24. ]) ?(n = 36) () =
  Report.section "E5b: global SMB vs Lambda (Table 2 crossover)";
  let rows =
    sweep ~seeds ~params:ranges
      ~label_of:(fun range -> Fmt.str "R=%.0f" range)
      ~mk_of:(fun range seed ->
        Workloads.connected
          (Rng.create (0x7A + (seed * 101)))
          (fun rng -> Workloads.lambda_sweep rng ~range ~n ~per_range:6))
      ~max_slots:3_000_000
  in
  print_rows ~title:"completion slots, Lambda sweep (n, density fixed)" rows;
  winners rows;
  rows
