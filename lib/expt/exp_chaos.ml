(* E-chaos — graceful degradation of Algorithm 11.1 under adversarial
   channels and faults (lib/chaos).

   The absMAC guarantees (Theorems 5.1, 9.1, 11.1) are proved for a clean
   SINR channel and crash-free nodes.  This experiment measures what
   actually happens when the channel and the nodes misbehave: one axis per
   adversary (jam duty-cycle, fading sigma, crash fraction, abort rate),
   each swept with the others off, on the same uniform deployment.  Per
   point we record ack latency, approximate-progress latency and the spec
   violations scored by Spec_check — the degradation curves written to
   BENCH_chaos.json.

   Workload: every even node broadcasts once at slot 0 through the
   Mac_driver.with_retry wrapper (capped exponential backoff, f_ack
   deadline), so the curves show the *recovered* behaviour, with the retry
   cost visible in the latency column.

   Each (axis-level, seed) cell builds its own deployment, adversary and
   MAC from the cell's seed, and the adversaries draw via pure hash
   streams, so rows are bit-identical whatever the --jobs setting. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_engine
open Sinr_mac
open Sinr_proto
open Sinr_chaos
open Sinr_stats

(* ------------------------------------------------------------------ *)
(* Adversary specification                                             *)
(* ------------------------------------------------------------------ *)

type spec = {
  jam_duty : float;       (* fraction of each jam period jammed *)
  jam_mult : float;       (* noise multiplier during a burst *)
  jam_period : int;
  fading_sigma : float;   (* log-normal sigma on link gains *)
  crash_frac : float;     (* fraction of nodes crashed *)
  crash_downtime : int;   (* slots until recovery; <= 0 = never *)
  abort_rate : float;     (* per-slot per-busy-node forced-abort prob. *)
}

let clean =
  { jam_duty = 0.;
    jam_mult = 40.;
    jam_period = 64;
    fading_sigma = 0.;
    crash_frac = 0.;
    crash_downtime = 0;
    abort_rate = 0. }

let adversary_of_spec spec ~rng ~points ~n ~horizon =
  let parts = ref [] in
  if spec.abort_rate > 0. then
    parts := Chaos.abort_pressure ~rng:(Rng.split rng ~key:4) ~rate:spec.abort_rate :: !parts;
  if spec.crash_frac > 0. then
    parts :=
      Chaos.crash_recover ~rng:(Rng.split rng ~key:3) ~n ~frac:spec.crash_frac
        ~horizon ~downtime:spec.crash_downtime ()
      :: !parts;
  if spec.fading_sigma > 0. then
    parts := Chaos.fading ~rng:(Rng.split rng ~key:2) ~sigma:spec.fading_sigma ~n :: !parts;
  if spec.jam_duty > 0. then
    parts :=
      Chaos.jam ~period:spec.jam_period ~rng:(Rng.split rng ~key:1)
        ~duty:spec.jam_duty ~mult:spec.jam_mult points
      :: !parts;
  Chaos.all !parts

(* ------------------------------------------------------------------ *)
(* One scenario                                                        *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_senders : int;
  o_acked : int;
  o_gave_up : int;
  o_unfinished : int;
  o_ack_mean : float;   (* slots, over acked payloads; nan when none *)
  o_ack_max : int;
  o_approg_watched : int;
  o_approg_done : int;
  o_approg_mean : float; (* nan when none progressed *)
  o_reissues : int;
  o_timeouts : int;
  o_forced_aborts : int;
  o_crashes : int;
  o_late_acks : int;
  o_aborted : int;
  o_prog_checks : int;
  o_prog_violations : int;
  o_slots : int;
}

let run_scenario ?(n = 36) ?(degree = 6) ?(budget_mult = 6) ~seed spec =
  let rng = Rng.create (0xC4A0 + (7919 * seed)) in
  let d = Workloads.uniform (Rng.split rng ~key:1) ~n ~target_degree:degree in
  let sinr = d.Workloads.sinr in
  let n = Sinr.n sinr in
  let trace = Trace.create () in
  let mac = Combined_mac.create ~trace sinr ~rng:(Rng.split rng ~key:2) in
  let engine = Combined_mac.engine mac in
  let bounds = Combined_mac.bounds mac in
  let f_ack = bounds.Absmac_intf.f_ack in
  let inner = Mac_driver.of_combined mac in
  let retry = Mac_driver.with_retry inner in
  let driver = retry.Mac_driver.driver in
  let forced_aborts = ref 0 in
  let adversary =
    adversary_of_spec spec
      ~rng:(Rng.split rng ~key:3)
      ~points:(Sinr.points sinr) ~n ~horizon:f_ack
  in
  let sim =
    Chaos.sim_of_engine
      ~busy:(fun v -> inner.Mac_driver.busy ~node:v)
      ~abort:(fun v ->
        incr forced_aborts;
        retry.Mac_driver.force_abort ~node:v)
      engine
  in
  Chaos.install adversary sim engine;
  (* Workload: every even node broadcasts once at slot 0. *)
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
  let is_sender = Array.make n false in
  List.iter (fun v -> is_sender.(v) <- true) senders;
  let strong = d.Workloads.profile.Induced.strong in
  let approx = d.Workloads.profile.Induced.approx in
  (* Approximate-progress watch list (Definition 7.1): non-senders with at
     least one broadcasting G~-neighbor; progress = first rcv relayed by a
     strong neighbor. *)
  let watched = Array.make n false in
  let listeners =
    List.filter
      (fun i ->
        (not is_sender.(i))
        && Array.exists (fun u -> is_sender.(u)) (Graph.neighbors approx i))
      (List.init n Fun.id)
  in
  List.iter (fun i -> watched.(i) <- true) listeners;
  let first_prog = Array.make n None in
  Combined_mac.set_raw_rcv_hook mac (fun ev ->
      let i = ev.Approx_progress.node in
      if
        watched.(i) && first_prog.(i) = None
        && Graph.mem_edge strong i ev.Approx_progress.from
      then first_prog.(i) <- Some (Combined_mac.now mac));
  let ack_slots = ref [] in
  driver.Mac_driver.set_handlers
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack =
        (fun ~node:_ ~payload:_ ->
          (* All bcasts start at slot 0, so the ack slot is the payload's
             full latency including retry backoff. *)
          ack_slots := Combined_mac.now mac :: !ack_slots) };
  List.iter
    (fun v -> ignore (driver.Mac_driver.bcast ~node:v ~data:v))
    senders;
  let budget = ref (budget_mult * f_ack) in
  while retry.Mac_driver.outstanding () > 0 && !budget > 0 do
    Chaos.tick adversary sim;
    driver.Mac_driver.step ();
    decr budget
  done;
  let horizon = Engine.slot engine in
  (* Approximate progress is specified on G₁₋₂ε (Definition 7.1).  The
     literal f_approg window (4 epochs) outlives every broadcast here —
     broadcasts end at the f_ack cap — so it is vacuously satisfied;
     score the tightest window that can qualify instead, making the
     violation count a usable degradation signal. *)
  let report =
    Spec_check.check trace ~graph:approx ~f_ack
      ~f_prog:(min bounds.Absmac_intf.f_approg f_ack) ~horizon
  in
  (* Flight recorder: a scenario run under tracing that breaks the spec
     dumps the ring, so the failing message's span timeline survives the
     run (one dump per reason; see Recorder.dump_once). *)
  if Sinr_obs.Recorder.is_enabled () && Spec_check.violations report > 0 then
    ignore (Sinr_obs.Recorder.dump_once ~reason:"spec-violation" ());
  let stats = retry.Mac_driver.stats () in
  let acks = !ack_slots in
  let progs = List.filter_map (fun i -> first_prog.(i)) listeners in
  let meanf = function
    | [] -> Float.nan
    | l ->
      List.fold_left (fun a x -> a +. float_of_int x) 0. l
      /. float_of_int (List.length l)
  in
  { o_senders = List.length senders;
    o_acked = List.length acks;
    o_gave_up = stats.Mac_driver.gave_up;
    o_unfinished = retry.Mac_driver.outstanding ();
    o_ack_mean = meanf acks;
    o_ack_max = List.fold_left max 0 acks;
    o_approg_watched = List.length listeners;
    o_approg_done = List.length progs;
    o_approg_mean = meanf progs;
    o_reissues = stats.Mac_driver.reissues;
    o_timeouts = stats.Mac_driver.timeouts;
    o_forced_aborts = !forced_aborts;
    o_crashes =
      Trace.count trace (fun e ->
          match e.Trace.event with Trace.Crash _ -> true | _ -> false);
    o_late_acks = report.Spec_check.late_acks;
    o_aborted = report.Spec_check.aborted;
    o_prog_checks = report.Spec_check.progress_checks;
    o_prog_violations = report.Spec_check.progress_violations;
    o_slots = horizon }

(* ------------------------------------------------------------------ *)
(* Degradation sweep                                                   *)
(* ------------------------------------------------------------------ *)

type row = {
  axis : string;
  level : float;
  acked_frac : float;
  ack_mean : float;
  approg_frac : float;
  approg_mean : float;
  reissues : float;      (* per-seed means from here on *)
  forced_aborts : float;
  crashes : float;
  gave_up : float;
  late_acks : float;
  aborted : float;
  prog_violations : float;
  prog_checks : float;
}

let default_axes =
  [ ("jam", [ 0.0; 0.25; 0.5 ], fun l -> { clean with jam_duty = l });
    ("fading", [ 0.0; 0.75; 1.5 ], fun l -> { clean with fading_sigma = l });
    ( "crash",
      [ 0.0; 0.15; 0.3 ],
      fun l -> { clean with crash_frac = l; crash_downtime = 0 } );
    (* Per-slot rates sized against the f_ack timescale (~2000 slots):
       an attempt survives a window with (1-rate)^f_ack, so these levels
       span "mostly recovered by retries" to "about half the payloads
       lost even after 4 attempts". *)
    ("abort", [ 0.0; 2e-4; 1e-3 ], fun l -> { clean with abort_rate = l }) ]

let row_of_cells ~axis ~level cells =
  let nf = float_of_int (List.length cells) in
  let sum f = List.fold_left (fun a c -> a +. f c) 0. cells in
  let mean f = sum f /. nf in
  (* Mean over the seeds whose cell had any samples. *)
  let mean_defined f =
    let defined = List.filter (fun c -> not (Float.is_nan (f c))) cells in
    match defined with
    | [] -> Float.nan
    | l ->
      List.fold_left (fun a c -> a +. f c) 0. l /. float_of_int (List.length l)
  in
  { axis;
    level;
    acked_frac =
      sum (fun c -> float_of_int c.o_acked)
      /. Float.max 1. (sum (fun c -> float_of_int c.o_senders));
    ack_mean = mean_defined (fun c -> c.o_ack_mean);
    approg_frac =
      sum (fun c -> float_of_int c.o_approg_done)
      /. Float.max 1. (sum (fun c -> float_of_int c.o_approg_watched));
    approg_mean = mean_defined (fun c -> c.o_approg_mean);
    reissues = mean (fun c -> float_of_int c.o_reissues);
    forced_aborts = mean (fun c -> float_of_int c.o_forced_aborts);
    crashes = mean (fun c -> float_of_int c.o_crashes);
    gave_up = mean (fun c -> float_of_int c.o_gave_up);
    late_acks = mean (fun c -> float_of_int c.o_late_acks);
    aborted = mean (fun c -> float_of_int c.o_aborted);
    prog_violations = mean (fun c -> float_of_int c.o_prog_violations);
    prog_checks = mean (fun c -> float_of_int c.o_prog_checks) }

let json_of_rows rows =
  let open Sinr_obs.Json in
  let num v = if Float.is_nan v then Null else Num v in
  let point r =
    Obj
      [ ("level", Num r.level);
        ("acked_frac", num r.acked_frac);
        ("ack_mean_slots", num r.ack_mean);
        ("approg_frac", num r.approg_frac);
        ("approg_mean_slots", num r.approg_mean);
        ("reissues", num r.reissues);
        ("forced_aborts", num r.forced_aborts);
        ("crashes", num r.crashes);
        ("gave_up", num r.gave_up);
        ("late_acks", num r.late_acks);
        ("aborted", num r.aborted);
        ("progress_violations", num r.prog_violations);
        ("progress_checks", num r.prog_checks) ]
  in
  let axes =
    List.fold_left
      (fun acc r -> if List.mem r.axis acc then acc else acc @ [ r.axis ])
      [] rows
  in
  Obj
    [ ("label", Str "chaos");
      ( "axes",
        List
          (List.map
             (fun axis ->
               Obj
                 [ ("axis", Str axis);
                   ( "points",
                     List
                       (List.filter_map
                          (fun r -> if r.axis = axis then Some (point r) else None)
                          rows) ) ])
             axes) ) ]

let run ?jobs ?(seeds = [ 1; 2; 3 ]) ?(n = 36) ?(degree = 6)
    ?(axes = default_axes) ?out () =
  Report.section
    "E-chaos: graceful degradation under adversarial channel & faults";
  let params =
    List.concat_map
      (fun (axis, levels, make) ->
        List.map (fun l -> (axis, l, make l)) levels)
      axes
  in
  let rows =
    Sweep.grid ?jobs ~params ~seeds (fun (_, _, spec) seed ->
        run_scenario ~n ~degree ~seed spec)
    |> List.map (fun ((axis, level, _), cells) ->
           row_of_cells ~axis ~level cells)
  in
  let table =
    Table.create ~title:"degradation vs adversary strength"
      ~header:
        [ "axis"; "level"; "acked"; "ack mean"; "approg"; "approg mean";
          "reissues"; "gave up"; "late"; "aborted"; "prog viol" ]
      ()
  in
  let cell v = if Float.is_nan v then "-" else Fmt.str "%.1f" v in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.axis;
          Fmt.str "%g" r.level;
          Fmt.str "%.0f%%" (100. *. r.acked_frac);
          cell r.ack_mean;
          Fmt.str "%.0f%%" (100. *. r.approg_frac);
          cell r.approg_mean;
          cell r.reissues;
          cell r.gave_up;
          cell r.late_acks;
          cell r.aborted;
          Fmt.str "%.1f/%.1f" r.prog_violations r.prog_checks ])
    rows;
  Report.emit table;
  (match out with
   | None -> ()
   | Some path ->
     Sinr_obs.Sink.write_file path
       (Sinr_obs.Json.to_string_json (json_of_rows rows) ^ "\n");
     Fmt.pr "[chaos degradation curves written: %s]@." path);
  rows
