(** E1 — Table 1's f_ack row and Remark 5.3's Δ lower bound, on the star
    contention workload. *)

open Sinr_stats

type row = {
  delta : int;
  lambda : float;
  measured : Summary.t option;
  timeouts : int;
  nice_frac : float;
  formula : float;
}

val run : ?seeds:int list -> ?deltas:int list -> unit -> row list
(** Prints the table and the shape verdict; returns the rows. *)

(** {1 Cell-level surface}

    Exposed for the sweep daemon ([lib/serve]): one grid cell split into
    its cacheable deployment build and its measurement, so warm placements
    and gain-cache rows can be shared across jobs. Everything is
    deterministic in [(delta, seed)] —
    [star_cell_on (star_instance ~delta ~seed) ~seed] is bit-identical to
    the fused cell the sweep has always run. *)

type cell = {
  c_delta : int;          (** realized max degree of the instance *)
  c_lambda : float;
  c_mean : float option;  (** mean ack delay in slots; [None] = timeout *)
  c_nice : int;           (** acks preceded by all-neighbor receives *)
  c_total : int;
}

val star_instance :
  delta:int -> seed:int -> Workloads.deployment * int array
(** The seeded star deployment and its broadcasting leaves. *)

val star_cell_on :
  Workloads.deployment -> leaves:int array -> seed:int -> cell
(** Measure one cell on a prebuilt instance. *)

val star_cell : delta:int -> int -> cell
(** [star_cell_on] of [star_instance] — the fused cell. *)
