(* E1 — Table 1, f_ack row, plus Remark 5.3's Delta lower bound.

   Workload: the star construction (a hub with Delta broadcasting leaves)
   gives worst-case contention, plus uniform deployments for the typical
   case.  Every leaf broadcasts simultaneously; we record the bcast->ack
   delay of each and whether the broadcast was nice (all strong neighbors
   received it first).

   Expected shape (Theorem 5.1): delay grows linearly in Delta with a
   log(Lambda/eps) factor; Remark 5.3 says no implementation can beat
   Delta.

   Each (delta, seed) cell — one star build plus its full-ack simulation —
   runs as one Sweep task; all randomness comes from the cell's own seeded
   streams, so rows are identical whatever the jobs setting. *)

open Sinr_geom
open Sinr_stats
open Sinr_mac

type row = {
  delta : int;        (* realized max degree *)
  lambda : float;
  measured : Summary.t option;
  timeouts : int;
  nice_frac : float;  (* fraction of acks preceded by all-neighbor rcvs *)
  formula : float;
}

(* One grid cell: everything measured on one seeded star instance. *)
type cell = {
  c_delta : int;
  c_lambda : float;
  c_mean : float option; (* None = timeout *)
  c_nice : int;
  c_total : int;
}

(* The deployment build and the measurement are split so the sweep daemon
   can cache the former (placements + gain rows are expensive and fully
   determined by (delta, seed)) and re-run only the latter.  [Rng.split]
   derives the child from the parent's seed alone — not its stream
   position — so recreating the parent in each half yields exactly the
   streams the fused [star_cell] always used. *)
let star_instance ~delta ~seed =
  let rng = Rng.create (0x5A1 + seed) in
  let d, s = Workloads.star rng ~delta in
  (d, s.Placement.leaves)

let star_cell_on d ~leaves ~seed =
  let rng = Rng.create (0x5A1 + seed) in
  let samples =
    Measure.acks d.Workloads.sinr
      ~rng:(Rng.split rng ~key:1)
      ~senders:(Array.to_list leaves)
      ~max_slots:4_000_000
  in
  let nice = ref 0 and total = ref 0 in
  let mean =
    match samples with
    | [] -> None
    | _ ->
      List.iter
        (fun (a : Measure.ack_sample) ->
          incr total;
          if a.Measure.reached = a.Measure.neighbors then incr nice)
        samples;
      Some
        (List.fold_left
           (fun acc (a : Measure.ack_sample) ->
             acc +. float_of_int a.Measure.delay)
           0. samples
         /. float_of_int (List.length samples))
  in
  { c_delta = d.Workloads.profile.Sinr_phys.Induced.strong_degree;
    c_lambda = d.Workloads.profile.Sinr_phys.Induced.lambda;
    c_mean = mean;
    c_nice = !nice;
    c_total = !total }

let star_cell ~delta seed =
  let d, leaves = star_instance ~delta ~seed in
  star_cell_on d ~leaves ~seed

(* Aggregate one parameter's cells (in seed order): the profile columns
   come from the last seed, like the sequential fold they replace. *)
let row_of_cells cells =
  let eps_ack = Params.default_ack.Params.eps_ack in
  let last = List.nth cells (List.length cells - 1) in
  let means = List.filter_map (fun c -> c.c_mean) cells in
  let nice = List.fold_left (fun acc c -> acc + c.c_nice) 0 cells in
  let total = List.fold_left (fun acc c -> acc + c.c_total) 0 cells in
  { delta = last.c_delta;
    lambda = last.c_lambda;
    measured =
      (match means with
       | [] -> None
       | _ -> Some (Summary.of_samples (Array.of_list means)));
    timeouts = List.length cells - List.length means;
    nice_frac =
      (if total = 0 then 0. else float_of_int nice /. float_of_int total);
    formula =
      Params.f_ack_formula ~delta:last.c_delta ~lambda:last.c_lambda ~eps_ack }

let run ?(seeds = [ 1; 2; 3 ]) ?(deltas = [ 4; 8; 16; 32 ]) () =
  Report.section
    "E1: f_ack on the star construction (Table 1 row 1, Remark 5.3)";
  let table =
    Table.create ~title:"acknowledgment delay vs contention Delta"
      ~header:
        [ "delta"; "lambda"; "mean f_ack (slots)"; "timeouts"; "nice";
          "formula D*log(L/e)+logL*log(L/e)" ]
      ()
  in
  let rows =
    Sweep.grid ~params:deltas ~seeds (fun delta seed -> star_cell ~delta seed)
    |> List.map (fun (_, cells) -> row_of_cells cells)
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.delta;
          Fmt.str "%.1f" r.lambda;
          Report.mean_cell r.measured;
          string_of_int r.timeouts;
          Fmt.str "%.2f" r.nice_frac;
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  let usable = List.filter (fun r -> r.measured <> None) rows in
  let preds = Array.of_list (List.map (fun r -> r.formula) usable) in
  let ms =
    Array.of_list
      (List.map (fun r -> (Option.get r.measured).Summary.mean) usable)
  in
  print_endline (Report.shape_verdict ~label:"f_ack vs Theorem 5.1" preds ms);
  rows
