(** Parallel (parameter × seed) grid runner for the experiment harness,
    with a resumable cursor for checkpoint/resume.

    Each grid cell — one deployment build plus its simulation — runs as one
    [Sinr_par.Pool] task. The determinism contract of the pool carries
    over: results come back grouped by parameter in input order with seeds
    in input order, so an experiment's rows (and every value in them) are
    identical whatever the [jobs] setting.

    Cell functions must be self-contained: derive all randomness from the
    cell's own [(param, seed)] pair (the experiment modules all build
    [Rng.create (constant + seed)] streams), touch no shared mutable state,
    and print nothing — aggregation and table rendering happen in the
    calling domain afterwards.

    Because cells are pure in [(param, seed)], a grid can stop at any cell
    boundary and resume later (even in a different process) with results
    bit-identical to an uninterrupted run: {!cursor} holds the partial
    matrix, {!record} restores checkpointed cells, {!run_cursor} runs only
    what is missing. The sweep daemon ([lib/serve]) builds its
    checkpoint/resume on exactly this. *)

val cells : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving order: one task per element. [jobs] defaults
    to [Pool.default_jobs ()]. *)

val grid :
  ?jobs:int -> params:'p list -> seeds:int list -> ('p -> int -> 'c)
  -> ('p * 'c list) list
(** [grid ~params ~seeds f] evaluates [f param seed] for the full cartesian
    grid, one cell per task, and regroups: one entry per parameter in input
    order, carrying its cells in seed order. *)

(** {1 Resumable cursor} *)

type ('p, 'c) cursor
(** A (param × seed) matrix of optional cell results, in input order. *)

val cursor : params:'p list -> seeds:int list -> ('p, 'c) cursor
(** Fresh cursor with every cell missing. Raises [Invalid_argument] on an
    empty axis. *)

val total : ('p, 'c) cursor -> int
val completed : ('p, 'c) cursor -> int
val is_complete : ('p, 'c) cursor -> bool

val record : ('p, 'c) cursor -> 'p -> int -> 'c -> bool
(** [record c p s v] fills cell [(p, s)] if it belongs to the grid and is
    still missing; [false] (and no change) otherwise — so restoring from a
    stale or foreign checkpoint silently skips cells that don't belong.
    Parameters are matched with structural equality. *)

val remaining : ('p, 'c) cursor -> ('p * int) list
(** Missing cells in canonical grid order (params outer, seeds inner). *)

val completed_cells : ('p, 'c) cursor -> ('p * int * 'c) list
(** Filled cells in canonical grid order — the checkpoint payload. *)

val results : ('p, 'c) cursor -> ('p * 'c list) list
(** The {!grid}-shaped table. Raises [Invalid_argument] if any cell is
    missing. *)

val run_cursor :
  ?jobs:int -> ?chunk:int -> ?should_stop:(unit -> bool)
  -> ?on_chunk:(('p, 'c) cursor -> unit) -> ('p, 'c) cursor
  -> ('p -> int -> 'c) -> [ `Complete | `Stopped ]
(** Run the missing cells through the pool, [chunk] cells per batch (all
    of them when omitted). After each batch the results are recorded and
    [on_chunk] fires (checkpoint hook); before each batch [should_stop] is
    polled — [true] returns [`Stopped] at the cell boundary, leaving the
    cursor resumable. Results are independent of [chunk], [jobs] and any
    stop/resume history. *)
