(** Parallel (parameter × seed) grid runner for the experiment harness.

    Each grid cell — one deployment build plus its simulation — runs as one
    [Sinr_par.Pool] task. The determinism contract of the pool carries
    over: results come back grouped by parameter in input order with seeds
    in input order, so an experiment's rows (and every value in them) are
    identical whatever the [jobs] setting.

    Cell functions must be self-contained: derive all randomness from the
    cell's own [(param, seed)] pair (the experiment modules all build
    [Rng.create (constant + seed)] streams), touch no shared mutable state,
    and print nothing — aggregation and table rendering happen in the
    calling domain afterwards. *)

val cells : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving order: one task per element. [jobs] defaults
    to [Pool.default_jobs ()]. *)

val grid :
  ?jobs:int -> params:'p list -> seeds:int list -> ('p -> int -> 'c)
  -> ('p * 'c list) list
(** [grid ~params ~seeds f] evaluates [f param seed] for the full cartesian
    grid, one cell per task, and regroups: one entry per parameter in input
    order, carrying its cells in seed order. *)
