(* Parallel (parameter x seed) grid runner: flatten the grid, push it
   through the shared domain pool one cell per task, regroup in input
   order.  See the .mli for the cell-purity requirements. *)

open Sinr_par

let run_pool jobs f =
  match jobs with
  | None -> f (Pool.get ())
  | Some j -> Pool.with_jobs j f

let cells ?jobs f l =
  (* chunk:1 — grid cells are coarse (a whole deployment + simulation), so
     claim them one at a time for the best tail balance. *)
  run_pool jobs (fun pool -> Pool.map_list ~chunk:1 pool f l)

let grid ?jobs ~params ~seeds f =
  let cells_in =
    List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) params
  in
  let results = cells ?jobs (fun (p, s) -> f p s) cells_in in
  let nseeds = List.length seeds in
  (* Regroup the flat result list: consecutive [nseeds] runs belong to
     consecutive parameters, in input order. *)
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> invalid_arg "Sweep.grid: short result list"
      | x :: tl ->
        let xs, rest = take (k - 1) tl in
        (x :: xs, rest)
  in
  let rec regroup params results =
    match params with
    | [] -> []
    | p :: ps ->
      let mine, rest = take nseeds results in
      (p, mine) :: regroup ps rest
  in
  regroup params results
