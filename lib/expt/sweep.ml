(* Parallel (parameter x seed) grid runner: flatten the grid, push it
   through the shared domain pool one cell per task, regroup in input
   order.  See the .mli for the cell-purity requirements.

   The grid is materialized as a [cursor] — a (param x seed) matrix of
   optional results — so a partially-run grid can be checkpointed and
   resumed: restore the completed cells, run only the remaining ones, and
   the assembled table is identical to an uninterrupted run because every
   cell's randomness derives from its own (param, seed) pair, never from
   execution order.  [grid] is the run-to-completion special case. *)

open Sinr_par

let run_pool jobs f =
  match jobs with
  | None -> f (Pool.get ())
  | Some j -> Pool.with_jobs j f

let cells ?jobs f l =
  (* chunk:1 — grid cells are coarse (a whole deployment + simulation), so
     claim them one at a time for the best tail balance. *)
  run_pool jobs (fun pool -> Pool.map_list ~chunk:1 pool f l)

(* ------------------------------------------------------------------ *)
(* Resumable cursor                                                    *)
(* ------------------------------------------------------------------ *)

type ('p, 'c) cursor = {
  c_params : 'p array;
  c_seeds : int array;
  c_cells : 'c option array array; (* [param_index].(seed_index) *)
  mutable c_done : int;
}

let cursor ~params ~seeds =
  if params = [] then invalid_arg "Sweep.cursor: empty params";
  if seeds = [] then invalid_arg "Sweep.cursor: empty seeds";
  let nseeds = List.length seeds in
  { c_params = Array.of_list params;
    c_seeds = Array.of_list seeds;
    c_cells =
      Array.init (List.length params) (fun _ -> Array.make nseeds None);
    c_done = 0 }

let total c = Array.length c.c_params * Array.length c.c_seeds

let completed c = c.c_done

let is_complete c = c.c_done = total c

let find_index arr x =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if arr.(i) = x then Some i else go (i + 1) in
  go 0

let record c p s v =
  match (find_index c.c_params p, find_index c.c_seeds s) with
  | Some pi, Some si -> (
    match c.c_cells.(pi).(si) with
    | None ->
      c.c_cells.(pi).(si) <- Some v;
      c.c_done <- c.c_done + 1;
      true
    | Some _ -> false)
  | _ -> false

let remaining c =
  let acc = ref [] in
  for pi = Array.length c.c_params - 1 downto 0 do
    for si = Array.length c.c_seeds - 1 downto 0 do
      if c.c_cells.(pi).(si) = None then
        acc := (c.c_params.(pi), c.c_seeds.(si)) :: !acc
    done
  done;
  !acc

let completed_cells c =
  let acc = ref [] in
  for pi = Array.length c.c_params - 1 downto 0 do
    for si = Array.length c.c_seeds - 1 downto 0 do
      match c.c_cells.(pi).(si) with
      | Some v -> acc := (c.c_params.(pi), c.c_seeds.(si), v) :: !acc
      | None -> ()
    done
  done;
  !acc

let results c =
  if not (is_complete c) then
    invalid_arg
      (Printf.sprintf "Sweep.results: grid incomplete (%d/%d cells)"
         c.c_done (total c));
  Array.to_list
    (Array.mapi
       (fun pi p ->
         (p, Array.to_list (Array.map Option.get c.c_cells.(pi))))
       c.c_params)

(* Take the first [k] elements (all of them when k >= length). *)
let rec take k l =
  if k <= 0 then []
  else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl

let run_cursor ?jobs ?chunk ?(should_stop = fun () -> false) ?on_chunk c f =
  let rec loop () =
    if is_complete c then `Complete
    else if should_stop () then `Stopped
    else begin
      let rem = remaining c in
      let batch = match chunk with None -> rem | Some k -> take (max 1 k) rem in
      let results = cells ?jobs (fun (p, s) -> f p s) batch in
      List.iter2 (fun (p, s) v -> ignore (record c p s v)) batch results;
      Option.iter (fun g -> g c) on_chunk;
      loop ()
    end
  in
  loop ()

let grid ?jobs ~params ~seeds f =
  let c = cursor ~params ~seeds in
  (match run_cursor ?jobs c f with
   | `Complete -> ()
   | `Stopped -> assert false (* no should_stop installed *));
  results c
