(* E3 — Table 1, f_approg row (Theorem 9.1).

   Two sweeps on uniform deployments with half the nodes broadcasting:

   (a) density sweep: Delta grows by shrinking the deployment box; the
       pure Algorithm 9.1 progress delay must stay flat (polylog) while
       the measured acknowledgment delay on the same instance grows with
       Delta — the headline separation of Remark 11.2;

   (b) epsilon sweep: f_approg grows like log(1/eps) as the requested
       success probability rises.

   Each (parameter, seed) cell — one deployment build plus its progress
   and ack simulations — runs as one Sweep task. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_mac

let delays_summary samples =
  let ds =
    List.filter_map
      (fun s -> Option.map float_of_int s.Measure.delay)
      samples
  in
  match ds with
  | [] -> None
  | _ -> Some (Summary.of_samples (Array.of_list ds))

let success_frac samples =
  match samples with
  | [] -> 1.0
  | _ ->
    float_of_int
      (List.length (List.filter (fun s -> s.Measure.delay <> None) samples))
    /. float_of_int (List.length samples)

let avg = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

type density_row = {
  delta : int;
  lambda : float;
  approg_p90 : float option;  (* pure Algorithm 9.1 *)
  approg_success : float;
  ack_mean : float option;    (* contrast: f_ack on the same instance *)
  epoch_slots : int;
  approg_formula : float;
}

type density_cell = {
  dc_delta : int;
  dc_lambda : float;
  dc_epoch : int;
  dc_p90 : float option;
  dc_success : float;
  dc_ack_mean : float option;
}

let density_cell ~n ~side seed =
  let rng = Rng.create (0xA9 + (seed * 7919)) in
  let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
  let lambda = d.Workloads.profile.Induced.lambda in
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
  let sched =
    Params.schedule (Sinr.config d.Workloads.sinr) ~lambda
      Params.default_approg
  in
  let samples, _ =
    Measure.approx_progress_only d.Workloads.sinr
      ~rng:(Rng.split rng ~key:1) ~senders
      ~max_slots:(6 * sched.Params.epoch_slots)
  in
  let ack_samples =
    Measure.acks d.Workloads.sinr ~rng:(Rng.split rng ~key:2) ~senders
      ~max_slots:4_000_000
  in
  { dc_delta = d.Workloads.profile.Induced.strong_degree;
    dc_lambda = lambda;
    dc_epoch = sched.Params.epoch_slots;
    dc_p90 = Option.map (fun s -> s.Summary.p90) (delays_summary samples);
    dc_success = success_frac samples;
    dc_ack_mean =
      (match ack_samples with
       | [] -> None
       | _ ->
         Some
           (List.fold_left
              (fun acc (a : Measure.ack_sample) ->
                acc +. float_of_int a.Measure.delay)
              0. ack_samples
            /. float_of_int (List.length ack_samples))) }

let density_row_of_cells cells =
  let eps = Params.default_approg.Params.eps_approg in
  let last = List.nth cells (List.length cells - 1) in
  { delta = last.dc_delta;
    lambda = last.dc_lambda;
    approg_p90 = avg (List.filter_map (fun c -> c.dc_p90) cells);
    approg_success =
      (match avg (List.map (fun c -> c.dc_success) cells) with
       | Some v -> v
       | None -> 0.);
    ack_mean = avg (List.filter_map (fun c -> c.dc_ack_mean) cells);
    epoch_slots = last.dc_epoch;
    approg_formula =
      Params.f_approg_formula Config.default ~lambda:last.dc_lambda
        ~eps_approg:eps }

let run_density ?(seeds = [ 1; 2; 3 ]) ?(n = 60)
    ?(sides = [ 44.; 30.; 21.; 15. ]) () =
  Report.section
    "E3a: f_approg vs density (Table 1 row 3, Theorem 9.1 / Remark 11.2)";
  let table =
    Table.create
      ~title:
        "approximate progress stays polylog while acknowledgments grow \
         with Delta (n fixed, box shrinking)"
      ~header:
        [ "Delta"; "Lambda"; "approg p90"; "success"; "f_ack mean";
          "epoch slots"; "f_approg formula" ]
      ()
  in
  let rows =
    Sweep.grid ~params:sides ~seeds (fun side seed ->
        density_cell ~n ~side seed)
    |> List.map (fun (_, cells) -> density_row_of_cells cells)
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.delta;
          Fmt.str "%.1f" r.lambda;
          (match r.approg_p90 with Some v -> Fmt.str "%.0f" v | None -> "timeout");
          Fmt.str "%.2f" r.approg_success;
          (match r.ack_mean with Some v -> Fmt.str "%.0f" v | None -> "timeout");
          string_of_int r.epoch_slots;
          Fmt.str "%.0f" r.approg_formula ])
    rows;
  Report.emit table;
  (match
     ( List.filter_map (fun r -> r.approg_p90) rows,
       List.filter_map (fun r -> r.ack_mean) rows )
   with
   | (a0 :: _ as approgs), (k0 :: _ as acks)
     when List.length approgs = List.length rows
          && List.length acks = List.length rows ->
     let a_last = List.nth approgs (List.length approgs - 1) in
     let k_last = List.nth acks (List.length acks - 1) in
     Fmt.pr
       "separation: Delta grew %.1fx; approg delay grew %.2fx while ack \
        delay grew %.2fx@."
       (float_of_int (List.nth rows (List.length rows - 1)).delta
        /. float_of_int (List.hd rows).delta)
       (a_last /. a0) (k_last /. k0)
   | _ -> print_endline "separation: incomplete data");
  rows

type eps_row = {
  eps : float;
  p90 : float option;
  success : float;
  epoch_slots : int;
  formula : float;
}

type eps_cell = {
  ec_lambda : float;
  ec_epoch : int;
  ec_p90 : float option;
  ec_success : float;
}

let eps_cell ~n ~side ~eps seed =
  let params = { Params.default_approg with Params.eps_approg = eps } in
  let rng = Rng.create (0xE5 + (seed * 104729)) in
  let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
  let lambda = d.Workloads.profile.Induced.lambda in
  let sched =
    Params.schedule (Sinr.config d.Workloads.sinr) ~lambda params
  in
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
  let samples, _ =
    Measure.approx_progress_only ~params d.Workloads.sinr
      ~rng:(Rng.split rng ~key:1) ~senders
      ~max_slots:(6 * sched.Params.epoch_slots)
  in
  { ec_lambda = lambda;
    ec_epoch = sched.Params.epoch_slots;
    ec_p90 = Option.map (fun s -> s.Summary.p90) (delays_summary samples);
    ec_success = success_frac samples }

let eps_row_of_cells ~eps cells =
  let last = List.nth cells (List.length cells - 1) in
  { eps;
    p90 = avg (List.filter_map (fun c -> c.ec_p90) cells);
    success =
      (match avg (List.map (fun c -> c.ec_success) cells) with
       | Some v -> v
       | None -> 0.);
    epoch_slots = last.ec_epoch;
    formula =
      Params.f_approg_formula Config.default ~lambda:last.ec_lambda
        ~eps_approg:eps }

let run_eps ?(seeds = [ 1; 2; 3 ]) ?(n = 50) ?(side = 25.)
    ?(epsilons = [ 0.3; 0.15; 0.075 ]) () =
  Report.section "E3b: f_approg vs requested error probability eps_approg";
  let table =
    Table.create ~title:"epoch length and delay grow like log(1/eps)"
      ~header:[ "eps"; "p90 delay"; "success"; "epoch slots"; "formula" ]
      ()
  in
  let rows =
    Sweep.grid ~params:epsilons ~seeds (fun eps seed ->
        eps_cell ~n ~side ~eps seed)
    |> List.map (fun (eps, cells) -> eps_row_of_cells ~eps cells)
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ Fmt.str "%.3f" r.eps;
          (match r.p90 with Some v -> Fmt.str "%.0f" v | None -> "timeout");
          Fmt.str "%.2f" r.success;
          string_of_int r.epoch_slots;
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  List.iter
    (fun r ->
      if r.success < 1. -. r.eps then
        Fmt.pr
          "WARNING: success %.2f below the requested 1 - eps = %.2f at \
           eps=%.3f@."
          r.success (1. -. r.eps) r.eps)
    rows;
  rows
