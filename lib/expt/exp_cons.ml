(* E7 — Table 1, global consensus row (Corollary 5.5).

   Binary consensus over the enhanced absMAC on uniform deployments,
   sweeping n (with density fixed, so D grows as sqrt n); a crash-fault
   variant on dense deployments checks agreement/validity under failures.
   Expected shape: completion ~ D * (Delta + log Lambda) * log(n*Lambda).

   Each (n, seed) cell — deployment build plus the full consensus run —
   is one Sweep task; the crash sweep grids over (crash count, seed). *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_proto

type row = {
  n : int;
  delta : int;
  diameter : int;
  completed : Summary.t option;
  timeouts : int;
  agreement_ok : bool;
  validity_ok : bool;
  formula : float;
}

let formula ~n ~delta ~lambda ~diameter =
  let loglam = Float.max 1. (Float.log2 (Float.max 2. lambda)) in
  let lognl = Float.max 1. (Float.log2 (float_of_int n *. lambda)) in
  float_of_int diameter *. (float_of_int delta +. loglam) *. lognl

type cell = {
  c_delta : int;
  c_diameter : int;
  c_lambda : float;
  c_completed : float option;
  c_agreement : bool;
  c_validity : bool;
}

let cons_cell ~n ~target_degree seed =
  let rng = Rng.create (0xC05 + (seed * 61)) in
  let d =
    Workloads.connected (Rng.split rng ~key:0) (fun r ->
        Workloads.uniform r ~n ~target_degree)
  in
  let diameter = d.Workloads.profile.Induced.strong_diameter in
  let initial = Array.init n (fun v -> (v * 7) mod 3 = 0) in
  let r =
    Global.cons d.Workloads.sinr ~rng:(Rng.split rng ~key:1) ~initial
      ~rounds_bound:(2 * (diameter + 1))
      ~max_slots:30_000_000
  in
  { c_delta = d.Workloads.profile.Induced.strong_degree;
    c_diameter = diameter;
    c_lambda = d.Workloads.profile.Induced.lambda;
    c_completed = Report.opt_int_to_float r.Global.completed;
    c_agreement = r.Global.agreement;
    c_validity = r.Global.validity }

let row_of_cells ~n cells =
  let last = List.nth cells (List.length cells - 1) in
  let values = List.filter_map (fun c -> c.c_completed) cells in
  { n;
    delta = last.c_delta;
    diameter = last.c_diameter;
    completed =
      (match values with
       | [] -> None
       | _ -> Some (Summary.of_samples (Array.of_list values)));
    timeouts = List.length cells - List.length values;
    agreement_ok = List.for_all (fun c -> c.c_agreement) cells;
    validity_ok = List.for_all (fun c -> c.c_validity) cells;
    formula =
      formula ~n ~delta:last.c_delta ~lambda:last.c_lambda
        ~diameter:last.c_diameter }

let run ?(seeds = [ 1; 2; 3 ]) ?(ns = [ 12; 24; 48 ]) ?(target_degree = 8) () =
  Report.section "E7: network-wide consensus (Table 1, Corollary 5.5)";
  let table =
    Table.create ~title:"consensus completion vs network size"
      ~header:
        [ "n"; "Delta"; "D"; "completion mean"; "timeouts"; "agree";
          "valid"; "formula D(Delta+logL)log(nL)" ]
      ()
  in
  let rows =
    Sweep.grid ~params:ns ~seeds (fun n seed ->
        cons_cell ~n ~target_degree seed)
    |> List.map (fun (n, cells) -> row_of_cells ~n cells)
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.n;
          string_of_int r.delta;
          string_of_int r.diameter;
          Report.mean_cell r.completed;
          string_of_int r.timeouts;
          (if r.agreement_ok then "yes" else "NO");
          (if r.validity_ok then "yes" else "NO");
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  let usable = List.filter (fun r -> r.completed <> None) rows in
  let preds = Array.of_list (List.map (fun r -> r.formula) usable) in
  let ms =
    Array.of_list
      (List.map (fun r -> (Option.get r.completed).Summary.mean) usable)
  in
  print_endline
    (Report.shape_verdict ~label:"CONS ~ D(Δ+logΛ)log(nΛ)" preds ms);
  rows

type crash_row = {
  crashes : int;
  completed : bool;
  agreement : bool;
  validity : bool;
  deciders : int;
}

let crash_cell ~n ~crashes seed =
  let rng = Rng.create (0xCAFE + (seed * 71)) in
  let pts =
    Placement.uniform (Rng.split rng ~key:0) ~n
      ~box:(Box.square ~side:8.) ~min_dist:1.
  in
  let sinr = Sinr.create Config.default pts in
  let initial = Array.init n (fun v -> v mod 2 = 0) in
  let faults =
    Sinr_engine.Fault.random_crashes (Rng.split rng ~key:1) ~n
      ~count:crashes ~horizon:10_000 ~protect:[]
  in
  let r =
    Global.cons sinr ~rng:(Rng.split rng ~key:2) ~initial ~faults
      ~rounds_bound:6 ~max_slots:30_000_000
  in
  { crashes;
    completed = r.Global.completed <> None;
    agreement = r.Global.agreement;
    validity = r.Global.validity;
    deciders = r.Global.deciders }

let run_crashes ?(seeds = [ 1; 2; 3 ]) ?(n = 14) ?(crash_counts = [ 0; 2; 4 ])
    () =
  Report.section "E7b: consensus under crash faults";
  let table =
    Table.create ~title:"dense deployment, crashes injected mid-run"
      ~header:[ "crashes"; "completed"; "agreement"; "validity"; "deciders" ]
      ()
  in
  let rows =
    Sweep.grid ~params:crash_counts ~seeds (fun crashes seed ->
        crash_cell ~n ~crashes seed)
    |> List.concat_map snd
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.crashes;
          (if r.completed then "yes" else "NO");
          (if r.agreement then "yes" else "NO");
          (if r.validity then "yes" else "NO");
          string_of_int r.deciders ])
    rows;
  Report.emit table;
  rows
