(* Tests for the causal-tracing layer: Span ring semantics, the flight
   recorder's dump triggers (caller, crash-mid-broadcast, Spec_check
   violation), trace-report's per-message reconstruction against the
   Thm 5.1 / Thm 9.1 bounds, and the bench-diff regression gate. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_mac
open Sinr_obs

let cfg = Config.default

let line_net n spacing = Sinr.create cfg (Placement.line ~n ~spacing)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Fresh scratch directory per test (no Filename.temp_dir in this stdlib
   vintage; pid + counter keeps reruns and parallel suites apart). *)
let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Unix.mkdir d 0o700;
  d

(* Every test leaves the recorder disabled, empty and dumping to the cwd
   again: the rest of the suite must keep running untraced. *)
let with_recorder ?capacity ?dir f () =
  Recorder.configure ?capacity ?dir ();
  Recorder.clear ();
  Recorder.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Recorder.set_enabled false;
      Recorder.clear ();
      Recorder.configure ~capacity:Span.default_capacity ~dir:"." ())
    f

(* ---------------- Span basics ---------------- *)

let test_span_disabled_is_none () =
  Span.set_enabled false;
  let id = Span.start ~name:"x" ~slot:0 () in
  Alcotest.(check bool) "start returns none when off" true
    ((id :> int) = (Span.none :> int));
  (* Every operation on none is a no-op, not an error. *)
  Span.set_attr id "k" (Json.Num 1.);
  Span.annotate id ~slot:1 "note";
  Span.finish id ~slot:2;
  Span.record_event ~slot:0 (Json.Obj [ ("ev", Json.Str "x") ]);
  Alcotest.(check int) "ring untouched" 0 (List.length (Span.entries ()))

let test_span_parent_attrs_notes =
  with_recorder (fun () ->
      let root = Span.start ~name:"root" ~slot:10 () in
      Alcotest.(check bool) "live span has a real id" false
        ((root :> int) = (Span.none :> int));
      let child = Span.start ~parent:root ~name:"child" ~slot:11 () in
      Span.set_attr child "k" (Json.Num 7.);
      Span.set_attr child "k" (Json.Num 8.);
      (* replace, not append *)
      Span.annotate child ~slot:12 "first";
      Span.annotate child ~slot:13 "second";
      Span.finish child ~slot:14;
      Span.finish root ~slot:20;
      match Span.entries () with
      | [ Span.Span_entry c; Span.Span_entry r ] ->
        (* child finished first, so it enters the ring first *)
        Alcotest.(check string) "child name" "child" c.Span.name;
        Alcotest.(check bool) "child parent = root" true
          ((c.Span.parent :> int) = (r.Span.id :> int));
        Alcotest.(check int) "child start" 11 c.Span.start_slot;
        Alcotest.(check int) "child end" 14 c.Span.end_slot;
        Alcotest.(check (list (pair int string)))
          "notes stored newest-first" [ (13, "second"); (12, "first") ]
          c.Span.notes;
        Alcotest.(check int) "attr replaced" 1 (List.length c.Span.attrs);
        Alcotest.(check bool) "attr value is the newest" true
          (List.assoc "k" c.Span.attrs = Json.Num 8.);
        Alcotest.(check bool) "root is a root" true
          ((r.Span.parent :> int) = (Span.none :> int))
      | es ->
        Alcotest.failf "expected exactly two span entries, got %d"
          (List.length es))

let test_ring_eviction =
  with_recorder ~capacity:16 (fun () ->
      Alcotest.(check int) "capacity clamped as asked" 16 (Span.capacity ());
      for slot = 0 to 19 do
        Span.record_event ~slot (Json.Obj [ ("ev", Json.Str "tick") ])
      done;
      let es = Span.entries () in
      Alcotest.(check int) "ring holds capacity entries" 16 (List.length es);
      Alcotest.(check int) "overwrites counted" 4 (Span.dropped_count ());
      match es with
      | Span.Event_entry { slot; _ } :: _ ->
        Alcotest.(check int) "oldest survivor is slot 4" 4 slot
      | _ -> Alcotest.fail "expected an event entry first")

let test_disabled_mac_run_records_nothing () =
  Recorder.set_enabled false;
  Recorder.clear ();
  let mac = Combined_mac.create (line_net 3 3.) ~rng:(Rng.create 3) in
  ignore (Combined_mac.bcast mac ~node:0 ~data:1);
  for _ = 1 to 200 do
    Combined_mac.step mac
  done;
  Alcotest.(check int) "no ring entries from an untraced run" 0
    (List.length (Span.entries ()));
  Alcotest.(check int) "nothing dropped either" 0 (Span.dropped_count ())

(* ---------------- Recorder dumps ---------------- *)

let test_dump_roundtrip () =
  let dir = fresh_dir "sinr-trace-rt" in
  with_recorder ~dir
    (fun () ->
      let s = Span.start ~name:"unit.span" ~slot:3 () in
      Span.set_attr s "node" (Json.int 4);
      Span.finish s ~slot:9;
      Recorder.event ~slot:5
        (Json.Obj [ ("ev", Json.Str "rcv"); ("from", Json.int 4);
                    ("msg", Json.int 0) ]);
      let open_span = Span.start ~name:"unit.open" ~slot:7 () in
      ignore open_span;
      let path = Recorder.dump ~reason:"unit test!" () in
      Alcotest.(check bool) "default path sanitizes the reason" true
        (Filename.basename path = "flight-unit-test-.jsonl");
      let tr = Trace_report.load_file path in
      Alcotest.(check bool) "header carries the reason" true
        (List.assoc_opt "flight" tr.Trace_report.header
         = Some (Json.Str "unit test!"));
      Alcotest.(check int) "both spans present" 2
        (List.length tr.Trace_report.spans);
      Alcotest.(check int) "event present" 1
        (List.length tr.Trace_report.events);
      let opened =
        List.find
          (fun sp -> sp.Trace_report.s_name = "unit.open")
          tr.Trace_report.spans
      in
      Alcotest.(check bool) "open span dumped with no end" true
        (opened.Trace_report.s_end = None);
      (* dump_once: once per reason until clear *)
      Alcotest.(check bool) "first dump_once fires" true
        (Recorder.dump_once ~reason:"r1" () <> None);
      Alcotest.(check bool) "second is deduped" true
        (Recorder.dump_once ~reason:"r1" () = None);
      Recorder.clear ();
      Alcotest.(check bool) "clear re-arms the reason" true
        (Recorder.dump_once ~reason:"r1" () <> None))
    ()

let test_crash_mid_broadcast_dumps () =
  let dir = fresh_dir "sinr-trace-crash" in
  with_recorder ~dir
    (fun () ->
      let mac = Combined_mac.create (line_net 3 3.) ~rng:(Rng.create 5) in
      ignore (Combined_mac.bcast mac ~node:0 ~data:1);
      for _ = 1 to 6 do
        Combined_mac.step mac
      done;
      Engine.crash (Combined_mac.engine mac) 0;
      let path = Filename.concat dir "flight-crash-mid-broadcast.jsonl" in
      let budget = ref (Combined_mac.bounds mac).Absmac_intf.f_ack in
      while (not (Sys.file_exists path)) && !budget > 0 do
        Combined_mac.step mac;
        decr budget
      done;
      Alcotest.(check bool) "crash produced a flight dump" true
        (Sys.file_exists path);
      let tr = Trace_report.load_file path in
      let bcast =
        List.find
          (fun sp -> sp.Trace_report.s_name = "mac.bcast")
          tr.Trace_report.spans
      in
      Alcotest.(check bool) "root span closed as crash_drop" true
        (List.assoc_opt "outcome" bcast.Trace_report.s_attrs
         = Some (Json.Str "crash_drop"));
      let r = Trace_report.analyze tr in
      match r.Trace_report.messages with
      | [ m ] ->
        Alcotest.(check int) "originator" 0 m.Trace_report.m_node;
        Alcotest.(check string) "outcome" "crash_drop"
          m.Trace_report.m_outcome
      | ms -> Alcotest.failf "expected one message, got %d" (List.length ms))
    ()

(* ---------------- Spec_check violation -> flight recorder ----------- *)

(* A jammed channel makes Algorithm 11.1 miss its windows; E-chaos checks
   the run with Spec_check and, with the recorder armed, must leave a
   flight-spec-violation.jsonl behind whose spans reconstruct the failing
   message's epoch/phase timeline.  The harsh spec below violates on the
   first seed on this deployment; the short seed sweep keeps the test
   robust if kernel details shift the RNG stream. *)
let test_spec_violation_dumps_and_reconstructs () =
  let dir = fresh_dir "sinr-trace-spec" in
  with_recorder ~capacity:262_144 ~dir
    (fun () ->
      let harsh =
        { Sinr_expt.Exp_chaos.clean with
          jam_duty = 0.9;
          jam_mult = 1e9;
          jam_period = 20 }
      in
      let path = Filename.concat dir "flight-spec-violation.jsonl" in
      let seeds = [ 1; 2; 3; 4 ] in
      let violated =
        List.exists
          (fun seed ->
            if Sys.file_exists path then true
            else begin
              Recorder.clear ();
              let o =
                Sinr_expt.Exp_chaos.run_scenario ~n:16 ~degree:4 ~seed harsh
              in
              ignore o;
              Sys.file_exists path
            end)
          seeds
      in
      Alcotest.(check bool) "violating run dumped the recorder" true violated;
      let tr = Trace_report.load_file path in
      let r = Trace_report.analyze tr in
      Alcotest.(check bool) "messages reconstructed" true
        (r.Trace_report.messages <> []);
      (* Causality: every mac.bcast root has its B.1 child hanging off it. *)
      let roots =
        List.filter
          (fun sp -> sp.Trace_report.s_name = "mac.bcast")
          tr.Trace_report.spans
      in
      Alcotest.(check bool) "mac.bcast spans present" true (roots <> []);
      let has_hm_child root =
        List.exists
          (fun sp ->
            sp.Trace_report.s_name = "hm.bcast"
            && sp.Trace_report.s_parent = Some root.Trace_report.s_id)
          tr.Trace_report.spans
      in
      Alcotest.(check bool) "each root has an hm.bcast child" true
        (List.for_all has_hm_child roots);
      (* Timeline: the 9.1 epoch/phase machinery overlaps the messages. *)
      let horizon = r.Trace_report.horizon in
      let overlaps m sp =
        let m_end =
          Option.value m.Trace_report.m_end ~default:horizon
        in
        let sp_end =
          Option.value sp.Trace_report.s_end ~default:horizon
        in
        sp.Trace_report.s_start <= m_end
        && sp_end >= m.Trace_report.m_start
      in
      let m0 = List.hd r.Trace_report.messages in
      Alcotest.(check bool)
        "epoch/phase spans cover the first message's lifetime" true
        (List.exists (overlaps m0) r.Trace_report.approg_spans);
      (* The report renders without raising. *)
      ignore (Fmt.str "%a" Trace_report.pp r))
    ()

(* ---------------- trace-report on a synthetic dump ---------------- *)

let synthetic_lines =
  [ {|{"flight":"synthetic","open":0,"entries":5,"dropped":0}|};
    {|{"kind":"span","id":1,"parent":null,"name":"mac.bcast","start":0,"end":50,"attrs":{"node":0,"seq":0,"f_ack":100,"f_approg":40,"outcome":"ack"},"notes":[]}|};
    {|{"kind":"span","id":2,"parent":1,"name":"hm.bcast","start":0,"end":50,"attrs":{},"notes":[]}|};
    {|{"kind":"span","id":3,"parent":null,"name":"mac.bcast","start":10,"end":400,"attrs":{"node":2,"seq":0,"f_ack":100,"f_approg":40,"outcome":"ack_capped"},"notes":[]}|};
    {|{"kind":"span","id":4,"parent":null,"name":"approg.epoch","start":0,"end":300,"attrs":{"epoch":0,"epoch_slots":300},"notes":[]}|};
    {|{"kind":"span","id":5,"parent":4,"name":"approg.mis","start":6,"end":290,"attrs":{},"notes":[]}|};
    {|{"kind":"event","slot":20,"ev":"rcv","node":1,"msg":0,"from":0}|};
    {|{"kind":"event","slot":90,"ev":"rcv","node":1,"msg":0,"from":2}|} ]

let test_trace_report_synthetic () =
  let r = Trace_report.analyze (Trace_report.of_lines synthetic_lines) in
  Alcotest.(check int) "two messages" 2 (List.length r.Trace_report.messages);
  Alcotest.(check int) "horizon is the last slot" 400 r.Trace_report.horizon;
  (match r.Trace_report.messages with
   | [ ok_msg; late ] ->
     Alcotest.(check bool) "in-bound message unflagged" false
       (ok_msg.Trace_report.m_late_ack || ok_msg.Trace_report.m_late_prog);
     Alcotest.(check (option int)) "ack delay" (Some 50)
       ok_msg.Trace_report.m_ack_delay;
     Alcotest.(check (option int)) "progress delay" (Some 20)
       ok_msg.Trace_report.m_prog_delay;
     (* 390 > f_ack=100 and 80 > f_approg=40: both bounds blown. *)
     Alcotest.(check bool) "late ack flagged" true
       late.Trace_report.m_late_ack;
     Alcotest.(check bool) "late progress flagged" true
       late.Trace_report.m_late_prog
   | ms -> Alcotest.failf "expected 2 messages, got %d" (List.length ms));
  Alcotest.(check int) "one flagged message" 1 (Trace_report.flagged r);
  (match r.Trace_report.ack_pcts with
   | None -> Alcotest.fail "expected ack percentiles"
   | Some (p50, p90, p99) ->
     Alcotest.(check bool) "percentiles monotone" true
       (p50 <= p90 && p90 <= p99);
     Alcotest.(check bool) "percentiles within sample range" true
       (p50 >= 50. && p99 <= 390.));
  Alcotest.(check bool) "mis stage aggregated" true
    (List.exists
       (fun (name, count, slots) ->
         name = "approg.mis" && count = 1 && slots = 284)
       r.Trace_report.stages);
  let rendered = Fmt.str "%a" Trace_report.pp r in
  Alcotest.(check bool) "report flags the offender" true
    (contains rendered "EXCEEDS BOUND");
  Alcotest.(check bool) "offender breakdown names the epoch span" true
    (contains rendered "approg.epoch")

let test_trace_report_rejects_garbage () =
  Alcotest.check_raises "unknown kind"
    (Failure "unknown line kind \"blob\"")
    (fun () ->
      ignore (Trace_report.of_lines [ {|{"kind":"blob"}|} ]));
  Alcotest.(check bool) "malformed json raises Parse_error" true
    (try
       ignore (Trace_report.of_lines [ "{oops" ]);
       false
     with Json.Parse_error _ -> true)

(* ---------------- bench diff ---------------- *)

let test_bench_diff_directions () =
  Alcotest.(check bool) "seconds regress upward" true
    (Bench_diff.direction_of_name "bench.phys.seconds" = Bench_diff.Lower_better);
  Alcotest.(check bool) "latency regresses upward" true
    (Bench_diff.direction_of_name "mac.ack_latency" = Bench_diff.Lower_better);
  Alcotest.(check bool) "speedups regress downward" true
    (Bench_diff.direction_of_name "phys.bench.n64.speedup"
     = Bench_diff.Higher_better);
  Alcotest.(check bool) "unknown names get a band" true
    (Bench_diff.direction_of_name "obs.bench.ring_entries" = Bench_diff.Band)

let test_bench_diff_glob () =
  Alcotest.(check bool) "suffix glob" true
    (Bench_diff.glob_match "*.seconds" "a.b.seconds");
  Alcotest.(check bool) "no partial suffix" false
    (Bench_diff.glob_match "*.seconds" "a.b.second");
  Alcotest.(check bool) "infix glob" true
    (Bench_diff.glob_match "phys.*.speedup" "phys.bench.n64.speedup");
  Alcotest.(check bool) "literal must match exactly" false
    (Bench_diff.glob_match "abc" "abcd");
  Alcotest.(check bool) "star alone matches anything" true
    (Bench_diff.glob_match "*" "")

let statuses findings =
  List.map (fun f -> (f.Bench_diff.metric, f.Bench_diff.status)) findings

let test_bench_diff_gate () =
  let baseline =
    [ ("a.speedup", Metrics.Gauge_v 4.0);
      ("b.seconds", Metrics.Gauge_v 1.0);
      ("c.count", Metrics.Counter_v 100);
      ("d.gone", Metrics.Gauge_v 1.0) ]
  in
  let current =
    [ ("a.speedup", Metrics.Gauge_v 2.0);  (* 50% drop: regressed *)
      ("b.seconds", Metrics.Gauge_v 1.1);  (* within 25% band: ok *)
      ("c.count", Metrics.Counter_v 110);  (* within band: ok *)
      ("e.fresh", Metrics.Gauge_v 9.0) ]   (* new: not a regression *)
  in
  let findings = Bench_diff.diff ~baseline ~current () in
  let st = statuses findings in
  Alcotest.(check bool) "speedup drop regresses" true
    (List.assoc "a.speedup" st = Bench_diff.Regressed);
  Alcotest.(check bool) "small slowdown tolerated" true
    (List.assoc "b.seconds" st = Bench_diff.Ok);
  Alcotest.(check bool) "counter drift in band" true
    (List.assoc "c.count" st = Bench_diff.Ok);
  Alcotest.(check bool) "vanished metric is missing" true
    (List.assoc "d.gone" st = Bench_diff.Missing);
  Alcotest.(check bool) "new metric reported, harmless" true
    (List.assoc "e.fresh" st = Bench_diff.New_metric);
  let regs =
    List.map (fun f -> f.Bench_diff.metric)
      (Bench_diff.regressions findings)
  in
  Alcotest.(check (list string)) "gate fails on regressed + missing"
    [ "a.speedup"; "d.gone" ] (List.sort compare regs);
  (* Ignore globs pull metrics out of the gate entirely. *)
  let lenient =
    Bench_diff.diff ~ignores:[ "a.*"; "d.gone" ] ~baseline ~current ()
  in
  Alcotest.(check int) "ignored metrics cannot regress" 0
    (List.length (Bench_diff.regressions lenient));
  (* A wider tolerance forgives the speedup drop. *)
  let wide = Bench_diff.diff ~tolerance:0.6 ~baseline ~current () in
  Alcotest.(check int) "tolerance widens the band" 1
    (List.length (Bench_diff.regressions wide))
(* only d.gone left *)

let test_bench_diff_histogram_p50 () =
  let h p50 =
    Metrics.Histogram_v
      { Metrics.count = 10; sum = 100.; min = 1.; max = 50.; p50; p90 = 40.;
        p99 = 50. }
  in
  let findings =
    Bench_diff.diff
      ~baseline:[ ("x.latency", h 10.) ]
      ~current:[ ("x.latency", h 30.) ]
      ()
  in
  Alcotest.(check int) "p50 tripling regresses a latency histogram" 1
    (List.length (Bench_diff.regressions findings))

let suite =
  [ Alcotest.test_case "span: disabled start is none" `Quick
      test_span_disabled_is_none;
    Alcotest.test_case "span: parent links, attrs, notes" `Quick
      test_span_parent_attrs_notes;
    Alcotest.test_case "span: ring eviction keeps newest" `Quick
      test_ring_eviction;
    Alcotest.test_case "span: untraced MAC run records nothing" `Quick
      test_disabled_mac_run_records_nothing;
    Alcotest.test_case "recorder: dump round-trip + dump_once" `Quick
      test_dump_roundtrip;
    Alcotest.test_case "recorder: crash-mid-broadcast dumps" `Quick
      test_crash_mid_broadcast_dumps;
    Alcotest.test_case "recorder: spec violation dumps a timeline" `Slow
      test_spec_violation_dumps_and_reconstructs;
    Alcotest.test_case "trace-report: synthetic bounds check" `Quick
      test_trace_report_synthetic;
    Alcotest.test_case "trace-report: rejects garbage" `Quick
      test_trace_report_rejects_garbage;
    Alcotest.test_case "bench diff: direction heuristics" `Quick
      test_bench_diff_directions;
    Alcotest.test_case "bench diff: ignore globs" `Quick test_bench_diff_glob;
    Alcotest.test_case "bench diff: gate semantics" `Quick
      test_bench_diff_gate;
    Alcotest.test_case "bench diff: histograms compare on p50" `Quick
      test_bench_diff_histogram_p50 ]
