(* Tests for the sweep daemon (lib/serve): spec parsing, the resumable
   sweep cursor, queue admission/cancel, checkpoint/resume bit-identity,
   the /jobs HTTP surface, and the hardened request handling under it. *)

open Sinr_expt
open Sinr_obs
open Sinr_serve
module Sq = Sinr_serve.Queue

(* Clean, enabled registry per case; leave it disabled for the rest of the
   run (same discipline as test_obs). *)
let with_registry f () =
  Metrics.reset_for_tests ();
  Metrics.set_enabled true;
  Fun.protect ~finally:Metrics.reset_for_tests f

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sinr_serve_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- spec ---------------- *)

let test_spec_roundtrip () =
  let s =
    match Spec.of_string {|{"exp":"ack","params":[4,8],"seeds":[1,2,3]}|} with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check string) "exp" "ack" s.Spec.exp;
  Alcotest.(check (list int)) "params" [ 4; 8 ] s.Spec.params;
  Alcotest.(check (list int)) "seeds" [ 1; 2; 3 ] s.Spec.seeds;
  Alcotest.(check int) "cells" 6 (Spec.cells s);
  Alcotest.(check bool) "validates" true (Spec.validate s = Ok ());
  (* wire round trip *)
  (match Spec.of_json (Spec.to_json s) with
   | Ok s' -> Alcotest.(check bool) "roundtrip equal" true (Spec.equal s s')
   | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (* optional fields survive *)
  match
    Spec.of_string
      {|{"exp":"ack","params":[4],"seeds":[1],"jobs":2,"tag":"t-1"}|}
  with
  | Ok s ->
    Alcotest.(check (option int)) "jobs" (Some 2) s.Spec.jobs;
    Alcotest.(check (option string)) "tag" (Some "t-1") s.Spec.tag
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_spec_rejections () =
  let err input =
    match Spec.of_string input with
    | Error _ -> ()
    | Ok s -> (
      match Spec.validate s with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %s" input)
  in
  err {|not json|};
  err {|[1,2]|};
  err {|{"params":[1],"seeds":[1]}|};                       (* no exp *)
  err {|{"exp":"ack","params":[1],"seeds":[1],"bogus":1}|}; (* unknown *)
  err {|{"exp":"ack","params":"x","seeds":[1]}|};
  err {|{"exp":"ack","params":[],"seeds":[1]}|};            (* empty axis *)
  err {|{"exp":"ack","params":[1,1],"seeds":[1]}|};         (* duplicate *)
  err {|{"exp":"ack","params":[1],"seeds":[1],"jobs":0}|};
  err {|{"exp":"ack","params":[1],"seeds":[1],"tag":"../x"}|};
  (* grid cap *)
  let big = List.init 40 (fun i -> i + 1) in
  let s =
    { Spec.exp = "ack"; params = big; seeds = big; jobs = None; tag = None }
  in
  Alcotest.(check bool) "grid cap enforced" true (Spec.validate s <> Ok ())

let test_registry_resolve () =
  let spec params exp =
    { Spec.exp; params; seeds = [ 1 ]; jobs = None; tag = None }
  in
  (match Registry.resolve (spec [ 4 ] "ack") with
   | Ok r -> Alcotest.(check string) "param name" "delta" r.Registry.param_name
   | Error e -> Alcotest.failf "ack should resolve: %s" e);
  (match Registry.resolve (spec [ 4 ] "nope") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown experiment accepted");
  match Registry.resolve (spec [ 0 ] "ack") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range delta accepted"

(* ---------------- sweep cursor ---------------- *)

let test_cursor_basics () =
  let c = Sweep.cursor ~params:[ 10; 20 ] ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "total" 6 (Sweep.total c);
  Alcotest.(check int) "fresh is empty" 0 (Sweep.completed c);
  Alcotest.(check bool) "record" true (Sweep.record c 20 2 42);
  Alcotest.(check bool) "double record refused" false (Sweep.record c 20 2 7);
  Alcotest.(check bool) "foreign param refused" false (Sweep.record c 30 1 0);
  Alcotest.(check bool) "foreign seed refused" false (Sweep.record c 10 9 0);
  Alcotest.(check int) "one cell" 1 (Sweep.completed c);
  Alcotest.(check int) "remaining" 5 (List.length (Sweep.remaining c));
  Alcotest.check_raises "results on incomplete"
    (Invalid_argument "Sweep.results: grid incomplete (1/6 cells)") (fun () ->
      ignore (Sweep.results c));
  (* canonical order: params outer, seeds inner *)
  Alcotest.(check (list (pair int int)))
    "remaining order"
    [ (10, 1); (10, 2); (10, 3); (20, 1); (20, 3) ]
    (Sweep.remaining c)

let test_cursor_matches_grid () =
  let f p s = (p * 1000) + s in
  let params = [ 3; 1; 2 ] and seeds = [ 5; 4 ] in
  let via_grid = Sweep.grid ~jobs:1 ~params ~seeds f in
  (* chunked, stopped and resumed: same table *)
  let c = Sweep.cursor ~params ~seeds in
  let polls = ref 0 in
  (match
     Sweep.run_cursor ~jobs:1 ~chunk:1
       ~should_stop:(fun () ->
         incr polls;
         !polls > 2)
       c f
   with
   | `Stopped -> ()
   | `Complete -> Alcotest.fail "should have stopped");
  Alcotest.(check int) "stopped after 2 cells" 2 (Sweep.completed c);
  (match Sweep.run_cursor ~jobs:1 ~chunk:2 c f with
   | `Complete -> ()
   | `Stopped -> Alcotest.fail "no stop installed");
  Alcotest.(check bool) "resumed table equals grid" true
    (Sweep.results c = via_grid)

(* ---------------- queue ---------------- *)

let spec_ack ?jobs ?tag params seeds =
  { Spec.exp = "ack"; params; seeds; jobs; tag }

let test_queue_backpressure =
  with_registry (fun () ->
      let q = Sq.create ~max_queued:2 () in
      let ok s = match Sq.submit q s with
        | Ok j -> j
        | Error _ -> Alcotest.fail "unexpected rejection"
      in
      let j1 = ok (spec_ack [ 2 ] [ 1 ]) in
      let _j2 = ok (spec_ack [ 3 ] [ 1 ]) in
      Alcotest.(check int) "depth" 2 (Sq.depth q);
      (match Sq.submit q (spec_ack [ 4 ] [ 1 ]) with
       | Error (`Backpressure d) -> Alcotest.(check int) "depth seen" 2 d
       | Ok _ -> Alcotest.fail "cap not enforced");
      Alcotest.(check (option int)) "rejected metric" (Some 1)
        (Metrics.counter_peek "serve.jobs.rejected");
      Alcotest.(check (option int)) "submitted metric" (Some 2)
        (Metrics.counter_peek "serve.jobs.submitted");
      (* a running job still counts toward depth *)
      (match Sq.take q with
       | Some j -> Alcotest.(check int) "oldest first" j1.Sq.id j.Sq.id
       | None -> Alcotest.fail "take failed");
      Alcotest.(check int) "running counts" 2 (Sq.depth q);
      (match Sq.submit q (spec_ack [ 5 ] [ 1 ]) with
       | Error (`Backpressure _) -> ()
       | Ok _ -> Alcotest.fail "running job must count toward the cap");
      (* finishing frees a slot *)
      Sq.finish q j1 (`Done Json.Null);
      Alcotest.(check int) "done leaves depth" 1 (Sq.depth q);
      match Sq.submit q (spec_ack [ 6 ] [ 1 ]) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "slot not freed")

let test_queue_cancel () =
  let q = Sq.create () in
  let j =
    match Sq.submit q (spec_ack [ 2 ] [ 1 ]) with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit failed"
  in
  Alcotest.(check bool) "unknown id" true (Sq.cancel q 99 = `Not_found);
  Alcotest.(check bool) "queued cancels now" true
    (Sq.cancel q j.Sq.id = `Cancelled);
  Alcotest.(check bool) "cancel is idempotent" true
    (Sq.cancel q j.Sq.id = `Already_cancelled);
  (* a Done/Failed job is a real conflict, not idempotent success *)
  let jd =
    match Sq.submit q (spec_ack [ 4 ] [ 1 ]) with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit failed"
  in
  ignore (Sq.take q);
  Sq.finish q jd (`Done Json.Null);
  Alcotest.(check bool) "done conflicts" true
    (Sq.cancel q jd.Sq.id = `Already_finished);
  (* running: flag only, runner confirms *)
  let j2 =
    match Sq.submit q (spec_ack [ 3 ] [ 1 ]) with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit failed"
  in
  ignore (Sq.take q);
  Alcotest.(check bool) "running gets flagged" true
    (Sq.cancel q j2.Sq.id = `Cancelling);
  Alcotest.(check bool) "flag set" true (Atomic.get j2.Sq.cancel);
  Alcotest.(check bool) "still running" true (j2.Sq.state = Sq.Running)

(* ---------------- runner: checkpoint/resume bit-identity ------------- *)

(* One small but real grid: 2 deltas x 2 seeds of the ack experiment. *)
let bitid_spec ?jobs ?tag () = spec_ack ?jobs ?tag [ 2; 3 ] [ 1; 2 ]

let run_to_done ?should_stop ~dir q job =
  Runner.run_job ~checkpoint_every:1 ?should_stop ~dir q job

let table_string (job : Sq.job) =
  match job.Sq.table with
  | Some t -> Json.to_string_json t
  | None -> Alcotest.failf "job %d has no table (%s)" job.Sq.id
              (Sq.state_name job.Sq.state)

let test_resume_bit_identical () =
  (* uninterrupted reference run *)
  let dir1 = fresh_dir () in
  let q1 = Sq.create () in
  let j1 =
    match Sq.submit q1 (bitid_spec ~jobs:1 ()) with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit failed"
  in
  ignore (Sq.take q1);
  run_to_done ~dir:dir1 q1 j1;
  Alcotest.(check bool) "reference done" true (j1.Sq.state = Sq.Done);
  let t1 = table_string j1 in
  let ck1 = read_file (Runner.checkpoint_path ~dir:dir1 j1) in

  (* killed after one cell, then resumed *)
  let dir2 = fresh_dir () in
  let q2 = Sq.create () in
  let j2 =
    match Sq.submit q2 (bitid_spec ~jobs:1 ()) with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit failed"
  in
  ignore (Sq.take q2);
  let polls = ref 0 in
  run_to_done
    ~should_stop:(fun () ->
      incr polls;
      !polls >= 2)
    ~dir:dir2 q2 j2;
  Alcotest.(check bool) "drained job requeued" true (j2.Sq.state = Sq.Queued);
  Alcotest.(check int) "one cell before the kill" 1 j2.Sq.cells_done;
  (* the next process: take it again and run to completion *)
  ignore (Sq.take q2);
  run_to_done ~dir:dir2 q2 j2;
  Alcotest.(check bool) "resumed to done" true (j2.Sq.state = Sq.Done);
  Alcotest.(check int) "restored from checkpoint" 1 j2.Sq.restored;
  Alcotest.(check string) "table bit-identical after kill+resume" t1
    (table_string j2);
  Alcotest.(check string) "checkpoint bit-identical" ck1
    (read_file (Runner.checkpoint_path ~dir:dir2 j2));

  (* jobs invariance: a parallel run of the same grid, same bytes *)
  let dir3 = fresh_dir () in
  let q3 = Sq.create () in
  let j3 =
    match Sq.submit q3 (bitid_spec ~jobs:2 ()) with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit failed"
  in
  ignore (Sq.take q3);
  run_to_done ~dir:dir3 q3 j3;
  Alcotest.(check string) "table invariant under jobs" t1 (table_string j3)

let test_cancel_mid_grid =
  with_registry (fun () ->
      let dir = fresh_dir () in
      let q = Sq.create () in
      let job =
        match Sq.submit q (bitid_spec ~tag:"cancelme" ()) with
        | Ok j -> j
        | Error _ -> Alcotest.fail "submit failed"
      in
      ignore (Sq.take q);
      (* cancel through the public surface once the first cell lands: the
         runner must stop at the next cell boundary, not finish the grid *)
      Runner.run_job ~checkpoint_every:1
        ~should_stop:(fun () ->
          if job.Sq.cells_done >= 1 && not (Atomic.get job.Sq.cancel) then
            ignore (Sq.cancel q job.Sq.id);
          false)
        ~dir q job;
      Alcotest.(check bool) "cancelled" true (job.Sq.state = Sq.Cancelled);
      Alcotest.(check bool) "stopped mid-grid" true
        (job.Sq.cells_done >= 1 && job.Sq.cells_done < job.Sq.cells_total);
      Alcotest.(check (option int)) "metric" (Some 1)
        (Metrics.counter_peek "serve.jobs.cancelled");
      (* the checkpoint holds exactly the completed cells *)
      let ck = read_file (Runner.checkpoint_path ~dir job) in
      let lines =
        List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' ck)
      in
      Alcotest.(check int) "header + one line per done cell"
        (1 + job.Sq.cells_done) (List.length lines))

let test_checkpoint_restore_guards () =
  let spec = bitid_spec () in
  let dir = fresh_dir () in
  let path = Filename.concat dir "guard.ckpt.jsonl" in
  let c = Sweep.cursor ~params:spec.Spec.params ~seeds:spec.Spec.seeds in
  Alcotest.(check int) "missing file restores nothing" 0
    (Runner.restore ~path spec c);
  (* foreign spec: same shape, different experiment *)
  ignore (Sweep.record c 2 1 (Json.int 7));
  Runner.save ~path spec c;
  let c2 = Sweep.cursor ~params:spec.Spec.params ~seeds:spec.Spec.seeds in
  let foreign = { spec with Spec.exp = "chaos" } in
  Alcotest.(check int) "foreign spec rejected" 0
    (Runner.restore ~path foreign c2);
  (* matching spec restores; jobs/tag differences don't matter *)
  let retagged = { spec with Spec.jobs = Some 7; tag = Some "other" } in
  Alcotest.(check int) "jobs/tag ignored in matching" 1
    (Runner.restore ~path retagged c2);
  (* malformed cell lines are skipped, not fatal *)
  let garbled =
    read_file path ^ "not json\n{\"param\":999,\"seed\":1,\"cell\":1}\n"
  in
  let oc = open_out_bin path in
  output_string oc garbled;
  close_out oc;
  let c3 = Sweep.cursor ~params:spec.Spec.params ~seeds:spec.Spec.seeds in
  Alcotest.(check int) "garbage skipped" 1 (Runner.restore ~path spec c3)

(* ---------------- cache ---------------- *)

let test_cache_reuse_and_eviction =
  with_registry (fun () ->
      let builds = ref 0 in
      let build hops () =
        incr builds;
        (Workloads.line ~hops (), [| 0 |])
      in
      let unlimited = Cache.create ~cap_bytes:(fun () -> max_int) () in
      let d1, _ = Cache.find_or_build unlimited "a" (build 2) in
      let d1', _ = Cache.find_or_build unlimited "a" (build 2) in
      Alcotest.(check int) "one build" 1 !builds;
      Alcotest.(check bool) "same instance" true (d1 == d1');
      Alcotest.(check (option int)) "hit metric" (Some 1)
        (Metrics.counter_peek "serve.cache.hits");
      (* a 1-byte cap keeps only the newest entry *)
      let tiny = Cache.create ~cap_bytes:(fun () -> 1) () in
      builds := 0;
      ignore (Cache.find_or_build tiny "a" (build 2));
      ignore (Cache.find_or_build tiny "b" (build 3));
      Alcotest.(check int) "older entry evicted" 1 (Cache.length tiny);
      ignore (Cache.find_or_build tiny "a" (build 2));
      Alcotest.(check int) "evicted key rebuilds" 3 !builds;
      Alcotest.(check bool) "evictions counted" true
        (match Metrics.counter_peek "serve.cache.evictions" with
         | Some n -> n >= 2
         | None -> false))

(* ---------------- daemon HTTP surface ---------------- *)

let status_of response =
  match String.split_on_char ' ' response with
  | _http :: code :: _ -> int_of_string_opt code
  | _ -> None

let body_of response =
  let n = String.length response in
  let rec find i =
    if i + 4 > n then None
    else if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub response i (n - i)
  | None -> ""

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let post_jobs body =
  Printf.sprintf "POST /jobs HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
    (String.length body) body

let test_daemon_http () =
  let daemon = Daemon.create ~dir:(fresh_dir ()) ~max_queued:2 () in
  let handle = Http.handle ~handler:(Daemon.handler daemon) in
  (* submit *)
  let r = handle (post_jobs {|{"exp":"ack","params":[2],"seeds":[1]}|}) in
  Alcotest.(check (option int)) "submit accepted" (Some 202) (status_of r);
  Alcotest.(check bool) "reports id" true (has_sub (body_of r) {|"id":1|});
  (* bad submissions *)
  Alcotest.(check (option int)) "malformed json" (Some 400)
    (status_of (handle (post_jobs "{oops")));
  Alcotest.(check (option int)) "unknown experiment" (Some 400)
    (status_of
       (handle (post_jobs {|{"exp":"nope","params":[2],"seeds":[1]}|})));
  Alcotest.(check (option int)) "unknown field" (Some 400)
    (status_of
       (handle
          (post_jobs {|{"exp":"ack","params":[2],"seeds":[1],"x":1}|})));
  (* backpressure at the HTTP layer: cap 2, one queued already *)
  let r2 = handle (post_jobs {|{"exp":"ack","params":[3],"seeds":[1]}|}) in
  Alcotest.(check (option int)) "second accepted" (Some 202) (status_of r2);
  let r3 = handle (post_jobs {|{"exp":"ack","params":[4],"seeds":[1]}|}) in
  Alcotest.(check (option int)) "third rejected" (Some 429) (status_of r3);
  Alcotest.(check bool) "429 names the queue" true
    (has_sub (body_of r3) "queue full");
  (* listing and status *)
  let l = handle "GET /jobs HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "list ok" (Some 200) (status_of l);
  Alcotest.(check bool) "list carries depth" true
    (has_sub (body_of l) {|"depth":2|});
  let s = handle "GET /jobs/1 HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "status ok" (Some 200) (status_of s);
  Alcotest.(check bool) "status carries spec" true
    (has_sub (body_of s) {|"spec":|});
  Alcotest.(check (option int)) "missing job" (Some 404)
    (status_of (handle "GET /jobs/99 HTTP/1.1\r\n\r\n"));
  (* cancel: idempotent on a cancelled job, 409 only on done/failed *)
  Alcotest.(check (option int)) "cancel queued" (Some 200)
    (status_of (handle "DELETE /jobs/1 HTTP/1.1\r\n\r\n"));
  let again = handle "DELETE /jobs/1 HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "cancel again is idempotent 200" (Some 200)
    (status_of again);
  Alcotest.(check bool) "idempotent cancel reports state" true
    (has_sub (body_of again) {|"state":"cancelled"|});
  Alcotest.(check (option int)) "cancel missing" (Some 404)
    (status_of (handle "DELETE /jobs/99 HTTP/1.1\r\n\r\n"));
  (* run job 2 to done: cancelling finished work is a real 409 conflict *)
  while Daemon.step daemon do () done;
  Alcotest.(check (option int)) "cancel done conflicts" (Some 409)
    (status_of (handle "DELETE /jobs/2 HTTP/1.1\r\n\r\n"));
  (* method discipline on the namespace *)
  let m = handle "DELETE /jobs HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "DELETE /jobs is 405" (Some 405)
    (status_of m);
  Alcotest.(check bool) "Allow header" true (has_sub m "Allow: GET, POST");
  let m2 = handle "POST /jobs/1 HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "POST /jobs/:id is 405" (Some 405)
    (status_of m2);
  Alcotest.(check bool) "Allow header lists id methods" true
    (has_sub m2 "Allow: GET, DELETE");
  (* builtin routes still served below the handler *)
  Alcotest.(check (option int)) "healthz fallback" (Some 200)
    (status_of (handle "GET /healthz HTTP/1.1\r\n\r\n"))

(* ---------------- hardened request handling ---------------- *)

let test_http_hardening () =
  (* bounded request line/headers *)
  let huge = "GET /" ^ String.make (Http.max_header + 10) 'a' ^ " HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "oversized header is 431" (Some 431)
    (status_of (Http.handle huge));
  (* bounded body *)
  let big_decl =
    Printf.sprintf "POST /jobs HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
      (Http.max_body + 1)
  in
  Alcotest.(check (option int)) "oversized body is 413" (Some 413)
    (status_of (Http.handle big_decl));
  (* unknown methods are 405 with Allow, not dropped connections *)
  let m = Http.handle "PUT /metrics HTTP/1.1\r\n\r\n" in
  Alcotest.(check (option int)) "PUT is 405" (Some 405) (status_of m);
  Alcotest.(check bool) "Allow present" true (has_sub m "Allow:");
  (* every response, errors included, is framed for close *)
  List.iter
    (fun raw ->
      let r = Http.handle raw in
      Alcotest.(check bool)
        (Printf.sprintf "Content-Length on %S" raw)
        true
        (has_sub r "Content-Length: ");
      Alcotest.(check bool)
        (Printf.sprintf "Connection: close on %S" raw)
        true
        (has_sub r "Connection: close"))
    [ "GET /nope HTTP/1.1\r\n\r\n"; "PUT /metrics HTTP/1.1\r\n\r\n"; "??";
      "GET /healthz HTTP/1.1\r\n\r\n" ]

(* ---------------- WAL: encode, replay, torn tail, corruption -------- *)

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_wal_roundtrip =
  with_registry (fun () ->
      let spec = spec_ack ~jobs:2 ~tag:"w" [ 2 ] [ 1 ] in
      let evs =
        [ Wal.Submitted spec; Wal.Started 2; Wal.Checkpointed 3; Wal.Yielded;
          Wal.Strikes 2; Wal.Completed; Wal.Cancelled; Wal.Failed "boom";
          Wal.Quarantined "poison" ]
      in
      List.iter
        (fun ev ->
          let r = { Wal.job = 7; ev } in
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %s" (Wal.encode r))
            true
            (Wal.decode (Wal.encode r) = Some r))
        evs;
      (* a flipped payload byte fails the CRC *)
      let line = Wal.encode { Wal.job = 1; ev = Wal.Completed } in
      let b = Bytes.of_string line in
      let i = String.length line - 2 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Alcotest.(check bool) "bit flip detected" true
        (Wal.decode (Bytes.to_string b) = None);
      Alcotest.(check bool) "garbage rejected" true
        (Wal.decode "not a wal line" = None);
      (* append + replay round trip through a real file *)
      let dir = fresh_dir () in
      let records =
        [ { Wal.job = 1; ev = Wal.Submitted spec };
          { Wal.job = 1; ev = Wal.Started 1 };
          { Wal.job = 1; ev = Wal.Checkpointed 1 };
          { Wal.job = 1; ev = Wal.Completed } ]
      in
      let w = Wal.open_ ~fsync_every:2 ~dir () in
      List.iter (Wal.append w) records;
      Alcotest.(check bool) "writer healthy" true (Wal.healthy w);
      Wal.close w;
      let r = Wal.replay ~dir in
      Alcotest.(check bool) "no torn tail" false r.Wal.torn_tail;
      Alcotest.(check bool) "no corruption" false r.Wal.corrupt;
      Alcotest.(check bool) "records replayed" true (r.Wal.records = records);
      Alcotest.(check (option int)) "appends counted" (Some 4)
        (Metrics.counter_peek "serve.wal.appends"))

let test_wal_torn_tail =
  with_registry (fun () ->
      let spec = spec_ack [ 2 ] [ 1 ] in
      let dir = fresh_dir () in
      let records =
        [ { Wal.job = 1; ev = Wal.Submitted spec };
          { Wal.job = 1; ev = Wal.Started 1 };
          { Wal.job = 1; ev = Wal.Checkpointed 1 } ]
      in
      let w = Wal.open_ ~dir () in
      List.iter (Wal.append w) records;
      Wal.close w;
      (* SIGKILL mid-append residue: the final line is cut short *)
      let path = Wal.path ~dir in
      let raw = read_file path in
      write_raw path (String.sub raw 0 (String.length raw - 5));
      let r = Wal.replay ~dir in
      Alcotest.(check bool) "torn tail detected" true r.Wal.torn_tail;
      Alcotest.(check bool) "torn tail is not corruption" false r.Wal.corrupt;
      Alcotest.(check bool) "sound prefix kept" true
        (r.Wal.records = [ List.nth records 0; List.nth records 1 ]);
      (* the daemon restarts silently over a torn tail *)
      let d = Daemon.create ~dir () in
      Alcotest.(check bool) "daemon reports torn tail" true
        (Daemon.wal_recovery d = `Torn_tail);
      Alcotest.(check int) "job re-admitted" 1 (Daemon.recovered d);
      Daemon.close d)

let test_wal_corruption =
  with_registry (fun () ->
      let spec = spec_ack [ 2 ] [ 1 ] in
      let spec2 = spec_ack [ 3 ] [ 1 ] in
      let dir = fresh_dir () in
      let w = Wal.open_ ~dir () in
      List.iter (Wal.append w)
        [ { Wal.job = 1; ev = Wal.Submitted spec };
          { Wal.job = 1; ev = Wal.Started 1 };
          { Wal.job = 2; ev = Wal.Submitted spec2 } ];
      Wal.close w;
      (* flip a byte mid-log: a bad line with valid records after it *)
      let path = Wal.path ~dir in
      let lines = String.split_on_char '\n' (read_file path) in
      let mangled =
        List.mapi
          (fun i l -> if i = 1 then "00000000 {\"mangled\":true}" else l)
          lines
      in
      write_raw path (String.concat "\n" mangled);
      let r = Wal.replay ~dir in
      Alcotest.(check bool) "corruption detected" true r.Wal.corrupt;
      Alcotest.(check bool) "prefix before the damage kept" true
        (r.Wal.records = [ { Wal.job = 1; ev = Wal.Submitted spec } ]);
      (* the daemon moves the damaged file aside and restarts clean *)
      let d = Daemon.create ~dir () in
      (match Daemon.wal_recovery d with
       | `Quarantined p ->
         Alcotest.(check bool) "damaged wal preserved on disk" true
           (Sys.file_exists p)
       | `Clean | `Torn_tail -> Alcotest.fail "corruption not quarantined");
      Alcotest.(check int) "sound prefix re-admitted" 1 (Daemon.recovered d);
      Alcotest.(check bool) "job 1 survived" true
        (Sq.find (Daemon.queue d) 1 <> None);
      Alcotest.(check bool) "job 2 was lost to the damage" true
        (Sq.find (Daemon.queue d) 2 = None);
      (* the compacted log replays clean on the next start *)
      Daemon.close d;
      let r2 = Wal.replay ~dir in
      Alcotest.(check bool) "compacted log is sound" true
        ((not r2.Wal.corrupt) && not r2.Wal.torn_tail);
      (* two replays saw the damage: the explicit one above and the
         daemon's own recovery pass *)
      Alcotest.(check (option int)) "corruption counted" (Some 2)
        (Metrics.counter_peek "serve.wal.corrupt"))

let test_checkpoint_torn_tail () =
  (* Checkpoints are written atomically (temp+rename), but restore must
     still survive a half-written file from a foreign source. *)
  let spec = bitid_spec () in
  let dir = fresh_dir () in
  let path = Filename.concat dir "torn.ckpt.jsonl" in
  let c = Sweep.cursor ~params:spec.Spec.params ~seeds:spec.Spec.seeds in
  ignore (Sweep.record c 2 1 (Json.int 7));
  ignore (Sweep.record c 2 2 (Json.int 8));
  Runner.save ~path spec c;
  let raw = read_file path in
  write_raw path (String.sub raw 0 (String.length raw - 4));
  let c2 = Sweep.cursor ~params:spec.Spec.params ~seeds:spec.Spec.seeds in
  Alcotest.(check int) "clean prefix restored" 1
    (Runner.restore ~path spec c2)

(* ---------------- supervisor: retry, quarantine, budgets ------------ *)

module Fp = Sinr_chaos.Chaos.Failpoint

let with_failpoints f () =
  with_registry (fun () -> Fun.protect ~finally:Fp.clear f) ()

let tight_policy =
  { Supervisor.default_policy with
    Supervisor.base_backoff_s = 0.001;
    max_backoff_s = 0.002 }

let take_now q (job : Sq.job) =
  (* skip the backoff window deterministically *)
  match Sq.take ~now:(job.Sq.not_before +. 1.) q with
  | Some j when j.Sq.id = job.Sq.id -> ()
  | Some j -> Alcotest.failf "took job %d, wanted %d" j.Sq.id job.Sq.id
  | None -> Alcotest.fail "job not runnable"

let test_supervisor_retry =
  with_failpoints (fun () ->
      let dir = fresh_dir () in
      let q = Sq.create () in
      let job =
        match Sq.submit q (spec_ack [ 2 ] [ 1 ]) with
        | Ok j -> j
        | Error _ -> Alcotest.fail "submit failed"
      in
      let sup = Supervisor.create ~policy:tight_policy () in
      (* transient fault: the first cell evaluation throws, the next works *)
      Fp.arm "serve.cell" (Fp.Times 1);
      ignore (Sq.take q);
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "failed attempt requeues" true
        (job.Sq.state = Sq.Queued);
      Alcotest.(check int) "one strike" 1 job.Sq.attempts;
      Alcotest.(check bool) "backoff window scheduled" true
        (job.Sq.not_before > 0.);
      Alcotest.(check bool) "error names the attempt" true
        (match job.Sq.error with
         | Some e -> has_sub e "attempt 1 failed"
         | None -> false);
      (* inside the backoff window the job is not handed out *)
      Alcotest.(check bool) "take honors backoff" true
        (Sq.take ~now:(job.Sq.not_before -. 0.0005) q = None);
      take_now q job;
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "second attempt recovers" true
        (job.Sq.state = Sq.Done);
      Alcotest.(check int) "two attempts on record" 2 job.Sq.attempts;
      Alcotest.(check bool) "error cleared on success" true
        (job.Sq.error = None);
      Alcotest.(check (option int)) "attempts counted" (Some 2)
        (Metrics.counter_peek "serve.retry.attempts");
      Alcotest.(check (option int)) "retry scheduled" (Some 1)
        (Metrics.counter_peek "serve.retry.scheduled");
      Alcotest.(check (option int)) "recovery counted" (Some 1)
        (Metrics.counter_peek "serve.retry.recovered"))

let test_supervisor_quarantine =
  with_failpoints (fun () ->
      let dir = fresh_dir () in
      let q = Sq.create () in
      let job =
        match Sq.submit q (spec_ack ~tag:"poison" [ 2 ] [ 1 ]) with
        | Ok j -> j
        | Error _ -> Alcotest.fail "submit failed"
      in
      let sup =
        Supervisor.create
          ~policy:{ tight_policy with Supervisor.max_retries = 1 } ()
      in
      (* poison: every attempt throws *)
      Fp.arm "serve.cell" Fp.Always;
      ignore (Sq.take q);
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "first strike retries" true
        (job.Sq.state = Sq.Queued);
      take_now q job;
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "retry budget exhausted parks the job" true
        (job.Sq.state = Sq.Failed);
      Alcotest.(check bool) "parked as quarantined" true job.Sq.quarantined;
      Alcotest.(check int) "attempts = max_retries + 1" 2 job.Sq.attempts;
      Alcotest.(check bool) "verdict in the error" true
        (match job.Sq.error with
         | Some e -> has_sub e "quarantined after 2 strikes"
         | None -> false);
      Alcotest.(check bool) "flight-recorder dump attached" true
        (match job.Sq.dump with
         | Some p -> Sys.file_exists p
         | None -> false);
      Alcotest.(check (option int)) "gave up counted" (Some 1)
        (Metrics.counter_peek "serve.retry.gave_up");
      Alcotest.(check (option int)) "quarantine counted" (Some 1)
        (Metrics.counter_peek "serve.quarantine.jobs");
      (* one poison spec must not wedge the queue: the next job runs *)
      Fp.clear ();
      let j2 =
        match Sq.submit q (spec_ack [ 3 ] [ 1 ]) with
        | Ok j -> j
        | Error _ -> Alcotest.fail "submit failed"
      in
      ignore (Sq.take q);
      Supervisor.run sup ~dir q j2;
      Alcotest.(check bool) "queue survives the poison job" true
        (j2.Sq.state = Sq.Done))

let test_supervisor_deadline =
  with_failpoints (fun () ->
      let dir = fresh_dir () in
      let q = Sq.create () in
      let job =
        match Sq.submit q (spec_ack [ 2; 3 ] [ 1 ]) with
        | Ok j -> j
        | Error _ -> Alcotest.fail "submit failed"
      in
      (* a fake clock that jumps a full second per reading: any deadline
         under a second trips at the first cell boundary *)
      let tick = ref 0. in
      let now () = tick := !tick +. 1.; !tick in
      let sup =
        Supervisor.create
          ~policy:{ tight_policy with Supervisor.deadline_s = 0.5 } ~now ()
      in
      ignore (Sq.take q);
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "deadline is a strike, not a drain" true
        (job.Sq.state = Sq.Queued && job.Sq.attempts = 1);
      Alcotest.(check bool) "error names the deadline" true
        (match job.Sq.error with
         | Some e -> has_sub e "deadline"
         | None -> false);
      Alcotest.(check (option int)) "deadline metric" (Some 1)
        (Metrics.counter_peek "serve.deadline.exceeded"))

let test_supervisor_cell_timeout =
  with_failpoints (fun () ->
      let dir = fresh_dir () in
      let q = Sq.create () in
      let job =
        match Sq.submit q (spec_ack [ 2 ] [ 1 ]) with
        | Ok j -> j
        | Error _ -> Alcotest.fail "submit failed"
      in
      let sup =
        Supervisor.create
          ~policy:{ tight_policy with Supervisor.cell_timeout_s = 0.01 } ()
      in
      (* a stalled cell: sleeps past its budget, then returns *)
      Fp.arm "serve.cell" (Fp.Delay 0.05);
      ignore (Sq.take q);
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "over-budget cell is a strike" true
        (job.Sq.state = Sq.Queued && job.Sq.attempts = 1);
      Alcotest.(check bool) "cell timeout counted" true
        (match Metrics.counter_peek "serve.cell.timeouts" with
         | Some n -> n >= 1
         | None -> false);
      Fp.clear ();
      take_now q job;
      Supervisor.run sup ~dir q job;
      Alcotest.(check bool) "healthy retry completes" true
        (job.Sq.state = Sq.Done))

(* ---------------- daemon: crash recovery, readiness ------------------ *)

let test_daemon_crash_recovery =
  with_registry (fun () ->
      let spec_body =
        {|{"exp":"ack","params":[2,3],"seeds":[1,2],"jobs":1,"tag":"crash"}|}
      in
      (* uninterrupted reference run *)
      let ref_dir = fresh_dir () in
      let refd = Daemon.create ~dir:ref_dir ~checkpoint_every:1 () in
      let refh = Http.handle ~handler:(Daemon.handler refd) in
      Alcotest.(check (option int)) "reference submit" (Some 202)
        (status_of (refh (post_jobs spec_body)));
      while Daemon.step refd do () done;
      let ref_table = refh "GET /jobs/1/table HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "reference table served" (Some 200)
        (status_of ref_table);
      Daemon.close refd;

      (* hard-crash simulation: daemon A admits the job, checkpoints one
         cell mid-attempt, then the process "dies" — its in-memory state
         is discarded without any drain, close or fsync, exactly the
         SIGKILL residue (the real-signal version runs in `make
         crash-smoke` against the binary) *)
      let dir = fresh_dir () in
      let a = Daemon.create ~dir ~checkpoint_every:1 () in
      let ha = Http.handle ~handler:(Daemon.handler a) in
      Alcotest.(check (option int)) "crash-run submit" (Some 202)
        (status_of (ha (post_jobs spec_body)));
      let t409 = ha "GET /jobs/1/table HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "table before done is 409" (Some 409)
        (status_of t409);
      Alcotest.(check bool) "409 names the state" true
        (has_sub t409 "X-Job-State: queued");
      Wal.append (Daemon.wal a) { Wal.job = 1; ev = Wal.Started 1 };
      let job =
        match Sq.take (Daemon.queue a) with
        | Some j -> j
        | None -> Alcotest.fail "take failed"
      in
      let polls = ref 0 in
      Runner.run_job ~checkpoint_every:1
        ~should_stop:(fun () -> incr polls; !polls >= 2)
        ~dir (Daemon.queue a) job;
      Alcotest.(check int) "one cell checkpointed before the crash" 1
        job.Sq.cells_done;

      (* restart on the same directories *)
      let b = Daemon.create ~dir ~checkpoint_every:1 () in
      Alcotest.(check bool) "wal replays clean" true
        (Daemon.wal_recovery b = `Clean);
      Alcotest.(check int) "job recovered" 1 (Daemon.recovered b);
      let jb =
        match Sq.find (Daemon.queue b) 1 with
        | Some j -> j
        | None -> Alcotest.fail "recovered job missing"
      in
      Alcotest.(check int) "interrupted attempt is on record" 1
        jb.Sq.attempts;
      while Daemon.step b do () done;
      Alcotest.(check bool) "recovered job completes" true
        (jb.Sq.state = Sq.Done);
      Alcotest.(check int) "resumed from the checkpoint" 1 jb.Sq.restored;
      Alcotest.(check (option int)) "recovered metric" (Some 1)
        (Metrics.counter_peek "serve.jobs.recovered");
      let hb = Http.handle ~handler:(Daemon.handler b) in
      let tb = hb "GET /jobs/1/table HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "table after recovery" (Some 200)
        (status_of tb);
      Alcotest.(check string) "table byte-identical to uninterrupted run"
        (body_of ref_table) (body_of tb);
      Daemon.close b)

let test_daemon_recovery_quarantine =
  with_registry (fun () ->
      (* a job whose every previous attempt took the process down: three
         Started records, no closing record — past the default budget of
         2 retries, so recovery parks it before it wedges the loop again *)
      let dir = fresh_dir () in
      let spec = spec_ack ~tag:"wedge" [ 2 ] [ 1 ] in
      let w = Wal.open_ ~dir () in
      List.iter (Wal.append w)
        [ { Wal.job = 1; ev = Wal.Submitted spec };
          { Wal.job = 1; ev = Wal.Started 1 };
          { Wal.job = 1; ev = Wal.Started 2 };
          { Wal.job = 1; ev = Wal.Started 3 } ];
      Wal.close w;
      let d = Daemon.create ~dir () in
      let job =
        match Sq.find (Daemon.queue d) 1 with
        | Some j -> j
        | None -> Alcotest.fail "job missing after recovery"
      in
      Alcotest.(check bool) "parked at recovery" true
        (job.Sq.state = Sq.Failed && job.Sq.quarantined);
      Alcotest.(check bool) "verdict mentions recovery" true
        (match job.Sq.error with
         | Some e -> has_sub e "recovery"
         | None -> false);
      Alcotest.(check bool) "step refuses the parked job" false
        (Daemon.step d);
      (* a graceful drain (Yielded) is not a strike: same three attempts
         but each closed, so the job comes back runnable *)
      let dir2 = fresh_dir () in
      let w2 = Wal.open_ ~dir:dir2 () in
      List.iter (Wal.append w2)
        [ { Wal.job = 1; ev = Wal.Submitted spec };
          { Wal.job = 1; ev = Wal.Started 1 };
          { Wal.job = 1; ev = Wal.Yielded };
          { Wal.job = 1; ev = Wal.Started 2 };
          { Wal.job = 1; ev = Wal.Yielded };
          { Wal.job = 1; ev = Wal.Started 3 };
          { Wal.job = 1; ev = Wal.Yielded } ];
      Wal.close w2;
      let d2 = Daemon.create ~dir:dir2 () in
      let job2 =
        match Sq.find (Daemon.queue d2) 1 with
        | Some j -> j
        | None -> Alcotest.fail "job missing after recovery"
      in
      Alcotest.(check bool) "drained job comes back runnable" true
        (job2.Sq.state = Sq.Queued && not job2.Sq.quarantined);
      Alcotest.(check int) "drains are not strikes" 0 job2.Sq.attempts;
      Daemon.close d;
      Daemon.close d2)

let test_daemon_readyz =
  with_registry (fun () ->
      let daemon = Daemon.create ~dir:(fresh_dir ()) ~max_queued:1 () in
      let handle = Http.handle ~handler:(Daemon.handler daemon) in
      let r = handle "GET /readyz HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "idle daemon is ready" (Some 200)
        (status_of r);
      Alcotest.(check bool) "ready body" true
        (has_sub (body_of r) {|"ready":true|});
      (* saturated: depth at the cap *)
      Alcotest.(check (option int)) "fills the queue" (Some 202)
        (status_of (handle (post_jobs {|{"exp":"ack","params":[2],"seeds":[1]}|})));
      let r2 = handle "GET /readyz HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "saturated is 503" (Some 503)
        (status_of r2);
      Alcotest.(check bool) "names saturation" true
        (has_sub (body_of r2) {|"saturated"|});
      (* draining *)
      Daemon.request_drain daemon;
      let r3 = handle "GET /readyz HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "draining is 503" (Some 503)
        (status_of r3);
      Alcotest.(check bool) "names the drain" true
        (has_sub (body_of r3) {|"draining"|});
      (* liveness stays honest: the process is still up *)
      Alcotest.(check (option int)) "healthz still 200" (Some 200)
        (status_of (handle "GET /healthz HTTP/1.1\r\n\r\n"));
      Alcotest.(check (option int)) "readyz method discipline" (Some 405)
        (status_of (handle "DELETE /readyz HTTP/1.1\r\n\r\n"));
      Daemon.close daemon)

(* ---------------- event streams -------------------------------------- *)

let int_field k body =
  match Json.member k body with
  | Some v -> Option.value ~default:(-1) (Json.to_int v)
  | None -> -1

(* Two publisher domains interleave events for two jobs; each per-job
   subscriber must see exactly its own job's events in publish order,
   while the firehose sees everything with globally consistent seqs. *)
let test_events_isolation () =
  let t = Events.create () in
  let sub1 = Events.subscribe ~job:1 t in
  let sub2 = Events.subscribe ~job:2 t in
  let fire = Events.subscribe t in
  Alcotest.(check int) "three subscribers" 3 (Events.subscriber_count t);
  let n = 50 in
  let publisher job =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Events.publish t ~job ~typ:"cell"
            (Json.Obj [ ("job_id", Json.int job); ("i", Json.int i) ])
        done)
  in
  let d1 = publisher 1 and d2 = publisher 2 in
  Domain.join d1;
  Domain.join d2;
  let own_in_order job evs =
    let idx e = int_field "i" e.Events.body in
    List.for_all (fun e -> e.Events.job = job) evs
    && List.mapi (fun i e -> (i + 1, idx e)) evs
       |> List.for_all (fun (want, got) -> want = got)
  in
  let e1 = Events.poll sub1 and e2 = Events.poll sub2 in
  Alcotest.(check int) "job-1 sub sees all of job 1" n (List.length e1);
  Alcotest.(check int) "job-2 sub sees all of job 2" n (List.length e2);
  Alcotest.(check bool) "job-1 stream is own events in order" true
    (own_in_order 1 e1);
  Alcotest.(check bool) "job-2 stream is own events in order" true
    (own_in_order 2 e2);
  let strictly_increasing evs =
    let rec go = function
      | a :: (b :: _ as rest) -> a.Events.seq < b.Events.seq && go rest
      | _ -> true
    in
    go evs
  in
  Alcotest.(check bool) "per-job seqs strictly increase" true
    (strictly_increasing e1 && strictly_increasing e2);
  let all = Events.poll fire in
  Alcotest.(check int) "firehose sees both jobs" (2 * n) (List.length all);
  Alcotest.(check bool) "firehose seqs strictly increase" true
    (strictly_increasing all);
  Alcotest.(check bool) "firehose preserves each job's order" true
    (own_in_order 1 (List.filter (fun e -> e.Events.job = 1) all)
     && own_in_order 2 (List.filter (fun e -> e.Events.job = 2) all));
  Alcotest.(check int) "nothing dropped at default buffer" 0
    (Events.dropped sub1 + Events.dropped sub2 + Events.dropped fire);
  Events.unsubscribe t sub1;
  Events.unsubscribe t sub1 (* idempotent *);
  Alcotest.(check int) "unsubscribe detaches" 2 (Events.subscriber_count t)

(* A subscriber that never drains loses its oldest events — and only the
   publisher-side counters move; publish itself keeps returning. *)
let test_events_drop_policy =
  with_registry (fun () ->
      let t = Events.create ~buffer:4 () in
      let stalled = Events.subscribe ~job:1 t in
      let healthy = Events.subscribe ~job:1 t in
      for i = 1 to 10 do
        (* drain the healthy client every round; stall the other *)
        if Events.pending healthy > 0 then ignore (Events.poll healthy);
        Events.publish t ~job:1 ~typ:"cell" (Json.Obj [ ("i", Json.int i) ])
      done;
      Alcotest.(check int) "stalled client lost the oldest six" 6
        (Events.dropped stalled);
      Alcotest.(check (option int)) "global drop counter matches" (Some 6)
        (Metrics.counter_peek "serve.events.dropped");
      Alcotest.(check (option int)) "every publish counted" (Some 10)
        (Metrics.counter_peek "serve.events.published");
      (* newest-wins: the survivors are the last four, in order *)
      let left = Events.poll stalled in
      Alcotest.(check (list int)) "survivors are the newest events"
        [ 7; 8; 9; 10 ]
        (List.map (fun e -> int_field "i" e.Events.body) left);
      Alcotest.(check int) "healthy client dropped nothing" 0
        (Events.dropped healthy);
      Events.unsubscribe t stalled;
      Events.unsubscribe t healthy)

(* End-to-end over a real socket: the watch client, fed nothing but the
   SSE stream, reassembles the job's table byte-identically to what
   GET /jobs/:id/table serves. *)
let test_watch_reassembles_table =
  with_registry (fun () ->
      let daemon = Daemon.create ~dir:(fresh_dir ()) ~checkpoint_every:2 () in
      let server =
        Http.serve ~handler:(Daemon.handler daemon)
          ~stream_handler:(Daemon.stream_handler daemon) ~port:0 ()
      in
      Fun.protect
        ~finally:(fun () ->
          Http.stop server;
          Daemon.close daemon)
      @@ fun () ->
      let handle = Http.handle ~handler:(Daemon.handler daemon) in
      Alcotest.(check (option int)) "submit" (Some 202)
        (status_of
           (handle (post_jobs {|{"exp":"ack","params":[2,3,4],"seeds":[1,2]}|})));
      (* the watcher connects while the job is still queued, so the rows
         arrive live; the runner starts once the stream is up *)
      let watcher =
        Domain.spawn (fun () ->
            Watch.watch ~port:(Http.port server) ~job:1 ())
      in
      while Daemon.step daemon do () done;
      let outcome = Domain.join watcher in
      let table =
        match outcome with
        | Watch.Completed table -> table
        | Watch.Failed { error; _ } -> Alcotest.failf "watch failed: %s" error
        | Watch.Cancelled -> Alcotest.fail "watch saw a cancel"
        | Watch.Stream_error e -> Alcotest.failf "stream error: %s" e
      in
      let served = handle "GET /jobs/1/table HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "table endpoint agrees it is done"
        (Some 200) (status_of served);
      Alcotest.(check string) "watch table byte-identical to /table"
        (body_of served)
        (Json.to_string_json table ^ "\n");
      (* a watch attached after completion replays to the same bytes *)
      let replayed = Watch.watch ~port:(Http.port server) ~job:1 () in
      (match replayed with
       | Watch.Completed t2 ->
         Alcotest.(check string) "replay-only watch agrees"
           (Json.to_string_json table) (Json.to_string_json t2)
       | _ -> Alcotest.fail "replay watch did not complete");
      Alcotest.(check bool) "watching a missing job is an error" true
        (match Watch.watch ~port:(Http.port server) ~job:99 () with
         | Watch.Stream_error _ -> true
         | _ -> false))

(* Two jobs through the same daemon: each /jobs/:id/metrics page carries
   only its own job's labeled children. *)
let test_job_metrics_disjoint =
  with_registry (fun () ->
      let daemon = Daemon.create ~dir:(fresh_dir ()) () in
      let handle = Http.handle ~handler:(Daemon.handler daemon) in
      Alcotest.(check (option int)) "submit job 1" (Some 202)
        (status_of (handle (post_jobs {|{"exp":"ack","params":[2,3],"seeds":[1]}|})));
      Alcotest.(check (option int)) "submit job 2" (Some 202)
        (status_of (handle (post_jobs {|{"exp":"ack","params":[4],"seeds":[1,2]}|})));
      while Daemon.step daemon do () done;
      let m1 = handle "GET /jobs/1/metrics HTTP/1.1\r\n\r\n" in
      let m2 = handle "GET /jobs/2/metrics HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "job 1 metrics served" (Some 200)
        (status_of m1);
      Alcotest.(check (option int)) "job 2 metrics served" (Some 200)
        (status_of m2);
      Alcotest.(check bool) "job 1 page counts its own cells" true
        (has_sub (body_of m1) {|serve_cells_done{job_id="1"} 2|});
      Alcotest.(check bool) "job 2 page counts its own cells" true
        (has_sub (body_of m2) {|serve_cells_done{job_id="2"} 2|});
      Alcotest.(check bool) "job 1 page carries no job-2 labels" false
        (has_sub (body_of m1) {|job_id="2"|});
      Alcotest.(check bool) "job 2 page carries no job-1 labels" false
        (has_sub (body_of m2) {|job_id="1"|});
      (* the per-job cell latency histogram rides along *)
      Alcotest.(check bool) "job page carries its cell histogram" true
        (has_sub (body_of m1) {|serve_cell_seconds_count{job_id="1"}|});
      Alcotest.(check (option int)) "unknown job is 404" (Some 404)
        (status_of (handle "GET /jobs/99/metrics HTTP/1.1\r\n\r\n"));
      Alcotest.(check (option int)) "method discipline" (Some 405)
        (status_of (handle "DELETE /jobs/1/metrics HTTP/1.1\r\n\r\n"));
      Daemon.close daemon)

(* ---------------- http: slowloris guard ------------------------------ *)

let test_http_read_timeout () =
  let server = Http.serve ~read_timeout:0.2 ~port:0 () in
  Fun.protect ~finally:(fun () -> Http.stop server) @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Http.port server));
  (* open the request line but never finish the headers *)
  let partial = "GET /healthz HTTP/1.1\r\n" in
  ignore (Unix.write_substring fd partial 0 (String.length partial));
  let buf = Bytes.create 4096 in
  let rec read_all acc =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> acc
    | n -> read_all (acc ^ Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> acc
  in
  let resp = read_all "" in
  Alcotest.(check (option int)) "slow client gets 408" (Some 408)
    (status_of resp)

(* ---------------- bench diff: missing current snapshot -------------- *)

let test_bench_diff_missing_current () =
  let baseline =
    [ ("par.speedup", Metrics.Gauge_v 3.0);
      ("phys.seconds", Metrics.Gauge_v 1.5);
      ("host.slots_per_s", Metrics.Gauge_v 1e6) ]
  in
  let findings =
    Bench_diff.missing_current ~ignores:[ "host.*" ] ~baseline ()
  in
  Alcotest.(check int) "one finding per metric" 3 (List.length findings);
  let by_status st =
    List.filter (fun f -> f.Bench_diff.status = st) findings
  in
  Alcotest.(check int) "non-ignored are Missing" 2
    (List.length (by_status Bench_diff.Missing));
  Alcotest.(check int) "ignores respected" 1
    (List.length (by_status Bench_diff.Ignored));
  Alcotest.(check int) "gate fails on all missing" 2
    (List.length (Bench_diff.regressions findings));
  List.iter
    (fun f ->
      Alcotest.(check bool) "baseline value reported" true
        (f.Bench_diff.base <> None);
      Alcotest.(check bool) "no current value" true (f.Bench_diff.cur = None))
    findings

let suite =
  [ Alcotest.test_case "spec: roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec: rejections" `Quick test_spec_rejections;
    Alcotest.test_case "registry: resolve" `Quick test_registry_resolve;
    Alcotest.test_case "cursor: basics" `Quick test_cursor_basics;
    Alcotest.test_case "cursor: equals grid across stop/resume" `Quick
      test_cursor_matches_grid;
    Alcotest.test_case "queue: backpressure" `Quick test_queue_backpressure;
    Alcotest.test_case "queue: cancel states" `Quick test_queue_cancel;
    Alcotest.test_case "runner: kill+resume bit-identical" `Slow
      test_resume_bit_identical;
    Alcotest.test_case "runner: cancel mid-grid" `Slow test_cancel_mid_grid;
    Alcotest.test_case "runner: restore guards" `Quick
      test_checkpoint_restore_guards;
    Alcotest.test_case "cache: reuse and eviction" `Quick
      test_cache_reuse_and_eviction;
    Alcotest.test_case "daemon: /jobs http surface" `Quick test_daemon_http;
    Alcotest.test_case "http: hardened request handling" `Quick
      test_http_hardening;
    Alcotest.test_case "wal: encode/append/replay roundtrip" `Quick
      test_wal_roundtrip;
    Alcotest.test_case "wal: torn tail skipped" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal: corruption quarantined" `Quick
      test_wal_corruption;
    Alcotest.test_case "runner: torn checkpoint restores prefix" `Quick
      test_checkpoint_torn_tail;
    Alcotest.test_case "supervisor: transient fault retried" `Quick
      test_supervisor_retry;
    Alcotest.test_case "supervisor: poison job quarantined" `Quick
      test_supervisor_quarantine;
    Alcotest.test_case "supervisor: deadline is a strike" `Quick
      test_supervisor_deadline;
    Alcotest.test_case "supervisor: cell budget enforced" `Quick
      test_supervisor_cell_timeout;
    Alcotest.test_case "daemon: crash-restart bit-identical" `Slow
      test_daemon_crash_recovery;
    Alcotest.test_case "daemon: recovery quarantines wedgers" `Quick
      test_daemon_recovery_quarantine;
    Alcotest.test_case "daemon: /readyz honest readiness" `Quick
      test_daemon_readyz;
    Alcotest.test_case "events: per-job isolation and order" `Quick
      test_events_isolation;
    Alcotest.test_case "events: stalled client drops oldest" `Quick
      test_events_drop_policy;
    Alcotest.test_case "watch: SSE stream reassembles table" `Slow
      test_watch_reassembles_table;
    Alcotest.test_case "daemon: /jobs/:id/metrics disjoint" `Quick
      test_job_metrics_disjoint;
    Alcotest.test_case "http: slowloris read timeout" `Slow
      test_http_read_timeout;
    Alcotest.test_case "bench diff: missing current" `Quick
      test_bench_diff_missing_current ]
