(* Tests for the adversarial channel & fault-injection subsystem:
   lib/chaos adversaries, the engine's crash/recover trace events, the
   exact Fault sampler, the crashed-broadcaster ack semantics, the
   Mac_driver retry wrapper, and the jobs-invariance of the E-chaos
   degradation sweep. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_mac
open Sinr_proto
open Sinr_chaos

let cfg = Config.default

let line_net n spacing = Sinr.create cfg (Placement.line ~n ~spacing)

(* ---------------- Fault.random_crashes (exact sampler) ---------------- *)

let test_random_crashes_exact () =
  let plan =
    Fault.random_crashes (Rng.create 7) ~n:10 ~count:7 ~horizon:100
      ~protect:[ 0; 1 ]
  in
  Alcotest.(check int) "exactly count victims" 7 (List.length plan);
  let victims = List.map snd plan in
  Alcotest.(check int)
    "victims distinct" 7
    (List.length (List.sort_uniq compare victims));
  List.iter
    (fun (slot, v) ->
      Alcotest.(check bool) "victim unprotected" false (v = 0 || v = 1);
      Alcotest.(check bool) "slot in horizon" true (slot >= 0 && slot < 100))
    plan;
  Alcotest.(check (list (pair int int)))
    "sorted by slot" (List.sort compare plan) plan;
  (* Exhausting the eligible set exactly is fine... *)
  let full =
    Fault.random_crashes (Rng.create 8) ~n:10 ~count:8 ~horizon:5
      ~protect:[ 0; 1 ]
  in
  Alcotest.(check (list int))
    "full prefix takes every unprotected node"
    [ 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort compare (List.map snd full))

let test_random_crashes_invalid () =
  Alcotest.check_raises "count beyond eligible"
    (Invalid_argument
       "Fault.random_crashes: count 9 exceeds the 8 unprotected nodes")
    (fun () ->
      ignore
        (Fault.random_crashes (Rng.create 1) ~n:10 ~count:9 ~horizon:10
           ~protect:[ 0; 1 ]))

let test_fault_apply () =
  let eng = Engine.create (line_net 4 5.) in
  let plan = [ (0, 1); (5, 2) ] in
  let crashed, rest = Fault.apply plan eng in
  Alcotest.(check (list int)) "due crash applied" [ 1 ] crashed;
  Alcotest.(check (list (pair int int))) "future crash kept" [ (5, 2) ] rest;
  Alcotest.(check bool) "node 1 down" true (Engine.is_crashed eng 1);
  for _ = 1 to 5 do
    ignore (Engine.step eng ~decide:(fun _ -> Engine.Listen))
  done;
  let crashed, rest = Fault.apply rest eng in
  Alcotest.(check (list int)) "second crash at its slot" [ 2 ] crashed;
  Alcotest.(check (list (pair int int))) "plan drained" [] rest

(* ---------------- engine crash/recover tracing ---------------- *)

let test_crash_trace_idempotent () =
  let trace = Trace.create () in
  let eng = Engine.create ~trace (line_net 3 5.) in
  let crashes () =
    Trace.count trace (fun e ->
        match e.Trace.event with Trace.Crash _ -> true | _ -> false)
  in
  (* Crash before wake: legal, one event. *)
  Engine.crash eng 0;
  Alcotest.(check int) "crash recorded" 1 (crashes ());
  (* Double crash: idempotent, still one event. *)
  Engine.crash eng 0;
  Alcotest.(check int) "double-crash is a no-op" 1 (crashes ());
  (* A crashed node cannot be woken. *)
  Engine.wake eng 0;
  Alcotest.(check bool) "crashed node stays down" false (Engine.is_awake eng 0);
  (* Recover: node rejoins asleep, exactly one Recover event. *)
  Engine.revive eng 0;
  Engine.revive eng 0;
  Alcotest.(check int) "one recover event" 1
    (Trace.count trace (fun e ->
         match e.Trace.event with Trace.Recover _ -> true | _ -> false));
  Alcotest.(check bool) "revived" false (Engine.is_crashed eng 0);
  Alcotest.(check bool) "revived node is asleep" false (Engine.is_awake eng 0);
  (* A fresh down-phase records a fresh Crash event. *)
  Engine.crash eng 0;
  Alcotest.(check int) "second down-phase recorded" 2 (crashes ())

let test_no_wake_on_receive_still_delivers () =
  let eng = Engine.create ~wake_on_receive:false (line_net 2 5.) in
  Engine.wake eng 0;
  let ds =
    Engine.step eng ~decide:(fun v ->
        if v = 0 then Engine.Transmit "x" else Engine.Listen)
  in
  (* The opt-out suppresses the wake, not the delivery. *)
  (match ds with
   | [ d ] -> Alcotest.(check int) "delivered to 1" 1 d.Engine.receiver
   | _ -> Alcotest.fail "expected exactly one delivery");
  Alcotest.(check bool) "receiver asleep" false (Engine.is_awake eng 1)

(* ---------------- crashed broadcaster never acks ---------------- *)

let test_crash_mid_broadcast_no_ack () =
  let trace = Trace.create () in
  let sinr = line_net 4 3. in
  let mac = Combined_mac.create ~trace sinr ~rng:(Rng.create 3) in
  let acks = ref [] in
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node ~payload:_ -> acks := node :: !acks) };
  ignore (Combined_mac.bcast mac ~node:0 ~data:7);
  for _ = 1 to 10 do
    Combined_mac.step mac
  done;
  Engine.crash (Combined_mac.engine mac) 0;
  let f_ack = (Combined_mac.bounds mac).Absmac_intf.f_ack in
  for _ = 1 to f_ack + 2 do
    Combined_mac.step mac
  done;
  Alcotest.(check (list int)) "no ack from the crashed node" [] !acks;
  Alcotest.(check bool) "broadcast dropped" false (Combined_mac.busy mac ~node:0);
  let report =
    Spec_check.check trace
      ~graph:(Induced.strong cfg (Sinr.points sinr))
      ~f_ack ~f_prog:f_ack
      ~horizon:(Engine.slot (Combined_mac.engine mac))
  in
  (* The spec scores the dropped broadcast as aborted, not as a late ack. *)
  Alcotest.(check int) "aborted" 1 report.Spec_check.aborted;
  Alcotest.(check int) "no late acks" 0 report.Spec_check.late_acks;
  Alcotest.(check int) "nothing acked" 0 report.Spec_check.acked

(* ---------------- chaos adversaries ---------------- *)

let test_jam_blocks_reception () =
  let sinr = line_net 2 5. in
  Alcotest.(check (option int))
    "clean channel decodes" (Some 0)
    (Sinr.reception sinr ~senders:[ 0 ] ~receiver:1);
  let adv =
    Chaos.jam ~rng:(Rng.create 1) ~duty:1.0 ~mult:1e12 (Sinr.points sinr)
  in
  match adv.Chaos.perturb ~slot:0 with
  | None -> Alcotest.fail "duty 1.0 must jam every slot"
  | Some p ->
    Alcotest.(check (option int))
      "jammed channel decodes nothing" None
      (Sinr.reception ~perturb:p sinr ~senders:[ 0 ] ~receiver:1)

let test_jam_disk_is_local () =
  (* Jam a disk around node 1 only: node 2 still decodes. *)
  let sinr = line_net 3 4. in
  let pts = Sinr.points sinr in
  let adv =
    Chaos.jam ~disk:(pts.(1), 1.0) ~rng:(Rng.create 1) ~duty:1.0 ~mult:1e12
      pts
  in
  match adv.Chaos.perturb ~slot:0 with
  | None -> Alcotest.fail "duty 1.0 must jam every slot"
  | Some p ->
    Alcotest.(check (option int))
      "inside the disk: blocked" None
      (Sinr.reception ~perturb:p sinr ~senders:[ 0 ] ~receiver:1);
    Alcotest.(check (option int))
      "outside the disk: decodes" (Some 0)
      (Sinr.reception ~perturb:p sinr ~senders:[ 0 ] ~receiver:2)

let test_jam_duty_cycle () =
  let pts = (fun s -> Sinr.points s) (line_net 2 5.) in
  let adv = Chaos.jam ~period:10 ~rng:(Rng.create 5) ~duty:0.3 ~mult:4. pts in
  (* Every 10-slot window carries exactly a 3-slot burst. *)
  for window = 0 to 9 do
    let jammed = ref 0 in
    for off = 0 to 9 do
      if Option.is_some (adv.Chaos.perturb ~slot:((window * 10) + off)) then
        incr jammed
    done;
    Alcotest.(check int) "burst length per window" 3 !jammed
  done

let test_fading_pure_hash () =
  let gain_at adv ~slot ~sender ~receiver =
    match adv.Chaos.perturb ~slot with
    | None -> Alcotest.fail "fading with sigma>0 must perturb"
    | Some p -> p.Sinr.gain ~sender ~receiver
  in
  let a = Chaos.fading ~rng:(Rng.create 11) ~sigma:0.8 ~n:5 in
  let b = Chaos.fading ~rng:(Rng.create 11) ~sigma:0.8 ~n:5 in
  let g = gain_at a ~slot:3 ~sender:1 ~receiver:2 in
  (* Same seed: identical gains, in any evaluation order (pure hash). *)
  ignore (gain_at b ~slot:9 ~sender:4 ~receiver:0);
  Alcotest.(check (float 0.)) "bit-identical across instances" g
    (gain_at b ~slot:3 ~sender:1 ~receiver:2);
  Alcotest.(check (float 0.)) "re-evaluation is stable" g
    (gain_at a ~slot:3 ~sender:1 ~receiver:2);
  Alcotest.(check bool) "slots decorrelated" true
    (g <> gain_at a ~slot:4 ~sender:1 ~receiver:2);
  Alcotest.(check bool) "gain positive" true (g > 0.)

let test_compose_multiplies () =
  let pts = (fun s -> Sinr.points s) (line_net 2 5.) in
  let j1 = Chaos.jam ~rng:(Rng.create 1) ~duty:1.0 ~mult:2. pts in
  let j2 = Chaos.jam ~rng:(Rng.create 2) ~duty:1.0 ~mult:3. pts in
  match (Chaos.all [ j1; j2 ]).Chaos.perturb ~slot:0 with
  | None -> Alcotest.fail "composition of active jams must be active"
  | Some p ->
    Alcotest.(check (float 1e-9)) "noise factors multiply" 6.
      (p.Sinr.noise_factor 0)

let test_crash_recover_schedule () =
  let eng = Engine.create (line_net 10 5.) in
  let adv =
    Chaos.crash_recover ~rng:(Rng.create 4) ~n:10 ~frac:0.5 ~horizon:10
      ~downtime:5 ~protect:[ 0 ] ()
  in
  let sim = Chaos.sim_of_engine eng in
  let down_history = ref 0 in
  for _ = 0 to 30 do
    Chaos.tick adv sim;
    for v = 0 to 9 do
      if Engine.is_crashed eng v then down_history := max !down_history 1
    done;
    ignore (Engine.step eng ~decide:(fun _ -> Engine.Listen))
  done;
  Alcotest.(check int) "somebody went down" 1 !down_history;
  Alcotest.(check bool) "protected node never crashed" false
    (Engine.is_crashed eng 0);
  (* horizon + downtime elapsed: everyone is back up. *)
  for v = 0 to 9 do
    Alcotest.(check bool) "recovered" false (Engine.is_crashed eng v)
  done

let test_crash_recover_invalid () =
  Alcotest.(check bool) "over-subscribed frac rejected" true
    (try
       ignore
         (Chaos.crash_recover ~rng:(Rng.create 1) ~n:10 ~frac:0.9 ~horizon:10
            ~downtime:0
            ~protect:[ 0; 1 ] ());
       false
     with Invalid_argument _ -> true)

let test_abort_pressure_hits_busy_nodes () =
  let eng = Engine.create (line_net 4 5.) in
  Engine.crash eng 3;
  let aborted = ref [] in
  let sim =
    Chaos.sim_of_engine
      ~busy:(fun v -> v <> 2)
      ~abort:(fun v -> aborted := v :: !aborted)
      eng
  in
  let adv = Chaos.abort_pressure ~rng:(Rng.create 2) ~rate:1.0 in
  Chaos.tick adv sim;
  (* rate 1: every busy, non-crashed node is hit; idle (2) and crashed (3)
     are spared. *)
  Alcotest.(check (list int)) "busy live nodes aborted" [ 0; 1 ]
    (List.sort compare !aborted)

(* ---------------- Mac_driver retry wrapper ---------------- *)

let test_retry_recovers_forced_abort () =
  let sinr = line_net 3 3. in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 5) in
  let retry = Mac_driver.with_retry (Mac_driver.of_combined mac) in
  let driver = retry.Mac_driver.driver in
  let acked = ref false in
  driver.Mac_driver.set_handlers
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> acked := true) };
  ignore (driver.Mac_driver.bcast ~node:0 ~data:1);
  for _ = 1 to 5 do
    driver.Mac_driver.step ()
  done;
  retry.Mac_driver.force_abort ~node:0;
  Alcotest.(check int) "still pending after the forced abort" 1
    (retry.Mac_driver.outstanding ());
  let f_ack = driver.Mac_driver.bounds.Absmac_intf.f_ack in
  let budget = ref (4 * f_ack) in
  while retry.Mac_driver.outstanding () > 0 && !budget > 0 do
    driver.Mac_driver.step ();
    decr budget
  done;
  Alcotest.(check bool) "acked on retry" true !acked;
  let s = retry.Mac_driver.stats () in
  Alcotest.(check bool) "reissued" true (s.Mac_driver.reissues >= 1);
  Alcotest.(check int) "recovered" 1 s.Mac_driver.recovered;
  Alcotest.(check int) "nothing dropped" 0 s.Mac_driver.gave_up

let test_retry_intentional_abort_cancels () =
  let sinr = line_net 3 3. in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 6) in
  let retry = Mac_driver.with_retry (Mac_driver.of_combined mac) in
  let driver = retry.Mac_driver.driver in
  ignore (driver.Mac_driver.bcast ~node:0 ~data:1);
  for _ = 1 to 3 do
    driver.Mac_driver.step ()
  done;
  driver.Mac_driver.abort ~node:0;
  Alcotest.(check int) "payload forgotten" 0 (retry.Mac_driver.outstanding ());
  let f_ack = driver.Mac_driver.bounds.Absmac_intf.f_ack in
  for _ = 1 to (2 * f_ack) + 2 do
    driver.Mac_driver.step ()
  done;
  let s = retry.Mac_driver.stats () in
  Alcotest.(check int) "no reissues" 0 s.Mac_driver.reissues;
  Alcotest.(check bool) "no broadcast in flight" false
    (driver.Mac_driver.busy ~node:0)

let test_retry_drops_crashed_sender () =
  let sinr = line_net 3 3. in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 7) in
  let retry = Mac_driver.with_retry (Mac_driver.of_combined mac) in
  let driver = retry.Mac_driver.driver in
  ignore (driver.Mac_driver.bcast ~node:0 ~data:1);
  for _ = 1 to 3 do
    driver.Mac_driver.step ()
  done;
  Engine.crash (Combined_mac.engine mac) 0;
  for _ = 1 to 3 do
    driver.Mac_driver.step ()
  done;
  Alcotest.(check int) "crashed payload dropped" 0
    (retry.Mac_driver.outstanding ());
  Alcotest.(check int) "counted as gave_up" 1
    (retry.Mac_driver.stats ()).Mac_driver.gave_up

(* ---------------- E-chaos determinism ---------------- *)

let test_exp_chaos_jobs_invariant () =
  let axes =
    [ ("jam", [ 0.0; 0.5 ],
       fun l -> { Sinr_expt.Exp_chaos.clean with jam_duty = l }) ]
  in
  let run jobs =
    Sinr_expt.Exp_chaos.run ~jobs ~seeds:[ 1; 2 ] ~n:16 ~degree:4 ~axes ()
  in
  let r1 = run 1 and r2 = run 2 in
  (* Structural compare (not =): rows carry nan-able floats, and
     [compare nan nan = 0]. *)
  Alcotest.(check bool) "rows bit-identical across jobs" true
    (compare r1 r2 = 0);
  Alcotest.(check int) "one row per (axis, level)" 2 (List.length r1)

(* ---------------- process-level failpoints ---------------- *)

let test_failpoint_arming () =
  let module F = Chaos.Failpoint in
  F.clear ();
  Fun.protect ~finally:F.clear @@ fun () ->
  (* disarmed: a hit is a no-op *)
  F.hit "nowhere";
  (* Always: every hit raises until disarmed *)
  F.arm "poison" F.Always;
  Alcotest.check_raises "always raises" (F.Injected "poison") (fun () ->
      F.hit "poison");
  Alcotest.check_raises "still armed" (F.Injected "poison") (fun () ->
      F.hit "poison");
  F.disarm "poison";
  F.hit "poison";
  (* Times n: n hits raise, then auto-disarm *)
  F.arm "transient" (F.Times 2);
  Alcotest.check_raises "first hit" (F.Injected "transient") (fun () ->
      F.hit "transient");
  Alcotest.check_raises "second hit" (F.Injected "transient") (fun () ->
      F.hit "transient");
  F.hit "transient";
  Alcotest.(check bool) "auto-disarmed after n" true
    (F.armed "transient" = None);
  (* Delay: sleeps, never raises *)
  F.arm "stall" (F.Delay 0.01);
  let t0 = Unix.gettimeofday () in
  F.hit "stall";
  Alcotest.(check bool) "delay stalls the hit" true
    (Unix.gettimeofday () -. t0 >= 0.005)

let test_failpoint_spec () =
  let module F = Chaos.Failpoint in
  F.clear ();
  Fun.protect ~finally:F.clear @@ fun () ->
  let parsed = F.parse_spec "a=always,b=3,c=sleep:0.5,junk,d=wat" in
  Alcotest.(check bool) "always parsed" true
    (List.assoc_opt "a" parsed = Some F.Always);
  Alcotest.(check bool) "times parsed" true
    (List.assoc_opt "b" parsed = Some (F.Times 3));
  Alcotest.(check bool) "sleep parsed" true
    (List.assoc_opt "c" parsed = Some (F.Delay 0.5));
  Alcotest.(check bool) "malformed entries dropped" true
    (List.assoc_opt "d" parsed = None && List.length parsed = 3);
  (* from_env arms what the variable holds *)
  Unix.putenv "SINR_FAILPOINTS_TEST" "envpoint=always";
  Alcotest.(check int) "one armed from env" 1
    (F.from_env ~var:"SINR_FAILPOINTS_TEST" ());
  Alcotest.check_raises "env-armed point fires" (F.Injected "envpoint")
    (fun () -> F.hit "envpoint");
  Unix.putenv "SINR_FAILPOINTS_TEST" "";
  Alcotest.(check int) "empty env arms nothing" 0
    (F.from_env ~var:"SINR_FAILPOINTS_TEST" ())

let suite =
  [ Alcotest.test_case "fault: exact shuffle sampler" `Quick
      test_random_crashes_exact;
    Alcotest.test_case "failpoint: arm/times/delay" `Quick
      test_failpoint_arming;
    Alcotest.test_case "failpoint: spec and env parsing" `Quick
      test_failpoint_spec;
    Alcotest.test_case "fault: over-subscribed count rejected" `Quick
      test_random_crashes_invalid;
    Alcotest.test_case "fault: apply drains due crashes" `Quick
      test_fault_apply;
    Alcotest.test_case "engine: crash/recover traced, idempotent" `Quick
      test_crash_trace_idempotent;
    Alcotest.test_case "engine: wake_on_receive:false still delivers" `Quick
      test_no_wake_on_receive_still_delivers;
    Alcotest.test_case "mac: crashed broadcaster never acks" `Quick
      test_crash_mid_broadcast_no_ack;
    Alcotest.test_case "chaos: jam blocks reception" `Quick
      test_jam_blocks_reception;
    Alcotest.test_case "chaos: disk jam is local" `Quick test_jam_disk_is_local;
    Alcotest.test_case "chaos: jam duty-cycle burst length" `Quick
      test_jam_duty_cycle;
    Alcotest.test_case "chaos: fading is a pure hash" `Quick
      test_fading_pure_hash;
    Alcotest.test_case "chaos: composition multiplies factors" `Quick
      test_compose_multiplies;
    Alcotest.test_case "chaos: crash-recover schedule" `Quick
      test_crash_recover_schedule;
    Alcotest.test_case "chaos: over-subscribed crash frac rejected" `Quick
      test_crash_recover_invalid;
    Alcotest.test_case "chaos: abort pressure hits busy nodes" `Quick
      test_abort_pressure_hits_busy_nodes;
    Alcotest.test_case "retry: recovers a forced abort" `Quick
      test_retry_recovers_forced_abort;
    Alcotest.test_case "retry: intentional abort cancels" `Quick
      test_retry_intentional_abort_cancels;
    Alcotest.test_case "retry: crashed sender dropped" `Quick
      test_retry_drops_crashed_sender;
    Alcotest.test_case "exp_chaos: rows invariant under jobs" `Quick
      test_exp_chaos_jobs_invariant ]
