(* Tests for lib/par: the deterministic domain pool and the determinism
   contract of its integration points (Reliability Monte-Carlo kernel,
   experiment sweeps).

   The contract under test everywhere: for the same seed, parallel output
   is bit-identical to sequential output — [jobs] must never change a
   result, only the wall clock. *)

open Sinr_geom
open Sinr_par

(* ---------------- pool combinators ---------------- *)

let test_map_identity_and_order () =
  Pool.with_jobs 4 @@ fun pool ->
  Alcotest.(check int) "pool size" 4 (Pool.jobs pool);
  let input = Array.init 1003 Fun.id in
  Alcotest.(check (array int))
    "map places results by index"
    (Array.map (fun x -> x * x) input)
    (Pool.map pool (fun x -> x * x) input);
  (* A chunk size that does not divide n: the tail chunk must still land. *)
  Alcotest.(check (array int))
    "mapi with ragged chunking"
    (Array.init 1003 (fun i -> i - 500))
    (Pool.mapi ~chunk:7 pool ~n:1003 (fun i -> i - 500));
  Alcotest.(check (list string))
    "map_list preserves order"
    [ "0"; "1"; "2"; "3"; "4" ]
    (Pool.map_list pool string_of_int [ 0; 1; 2; 3; 4 ])

let test_map_reduce_index_order () =
  (* A non-commutative, non-associative reduce: only a sequential
     index-order fold in the caller gives this exact string whatever the
     chunking, which is precisely the documented contract. *)
  let expected =
    List.fold_left
      (fun acc i -> acc ^ ";" ^ string_of_int i)
      "init"
      (List.init 57 Fun.id)
  in
  List.iter
    (fun jobs ->
      Pool.with_jobs jobs @@ fun pool ->
      Alcotest.(check string)
        (Printf.sprintf "fold order independent of jobs=%d" jobs)
        expected
        (Pool.map_reduce ~chunk:3 pool ~n:57 ~map:string_of_int
           ~reduce:(fun acc s -> acc ^ ";" ^ s)
           ~init:"init"))
    [ 1; 2; 4 ]

let test_map_seeded_jobs_invariant () =
  let draw jobs =
    Pool.with_jobs jobs @@ fun pool ->
    Pool.map_seeded pool ~rng:(Rng.create 99) ~n:200 (fun i rng ->
        (* Several draws per task: any stream sharing between tasks would
           show up as a jobs-dependent result. *)
        float_of_int i +. Rng.float rng 1.0 +. Rng.float rng 1.0)
  in
  let seq = draw 1 in
  Alcotest.(check (array (float 0.0))) "jobs=4 bit-identical" seq (draw 4);
  Alcotest.(check (array (float 0.0))) "jobs=3 bit-identical" seq (draw 3)

let test_exception_propagates () =
  Pool.with_jobs 4 @@ fun pool ->
  Alcotest.check_raises "task failure re-raised in caller"
    (Failure "task 37") (fun () ->
      ignore
        (Pool.mapi ~chunk:1 pool ~n:100 (fun i ->
             if i = 37 then failwith "task 37" else i)));
  (* The pool survives a failed job and runs the next one normally. *)
  Alcotest.(check (array int))
    "pool usable after failure"
    (Array.init 100 Fun.id)
    (Pool.mapi pool ~n:100 Fun.id)

let test_nested_submission_runs_inline () =
  Pool.with_jobs 4 @@ fun pool ->
  let out =
    Pool.mapi ~chunk:1 pool ~n:8 (fun i ->
        (* Re-entering the same pool from a task must degrade to inline
           sequential execution, not deadlock. *)
        Array.fold_left ( + ) 0
          (Pool.mapi pool ~n:10 (fun j -> (i * 10) + j)))
  in
  Alcotest.(check (array int))
    "nested totals"
    (Array.init 8 (fun i -> (i * 100) + 45))
    out

let test_pool_telemetry_exact_after_join () =
  (* Worker domains write par.task.ns through their private histogram
     shards; once [shutdown] has joined them the merged totals are exact:
     one timing per chunk, one task count per element. *)
  Sinr_obs.Metrics.reset_for_tests ();
  Sinr_obs.Metrics.set_enabled true;
  Fun.protect ~finally:Sinr_obs.Metrics.reset_for_tests @@ fun () ->
  let pool = Pool.create ~jobs:4 in
  let out = Pool.mapi ~chunk:16 pool ~n:256 (fun i -> i * i) in
  Pool.shutdown pool;
  Alcotest.(check int) "result intact" (255 * 255) out.(255);
  let h = Sinr_obs.Metrics.histogram "par.task.ns" in
  Alcotest.(check int) "one timing per chunk" 16
    (Sinr_obs.Metrics.histogram_count h);
  Alcotest.(check (option int)) "task counter exact" (Some 256)
    (Sinr_obs.Metrics.counter_peek "par.tasks")

let test_default_jobs_override () =
  let prev = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs prev) @@ fun () ->
  Pool.set_default_jobs 3;
  Alcotest.(check int) "override visible" 3 (Pool.default_jobs ());
  Alcotest.(check int) "shared pool resized" 3 (Pool.jobs (Pool.get ()));
  Pool.set_default_jobs 0;
  Alcotest.(check int) "clamped to >= 1" 1 (Pool.default_jobs ())

(* ---------------- Reliability Monte-Carlo determinism ---------------- *)

let test_reliability_jobs_invariant () =
  let estimate jobs =
    let rng = Rng.create 5 in
    let pts =
      Placement.uniform rng ~n:40 ~box:(Box.square ~side:18.) ~min_dist:1.
    in
    let sinr = Sinr_phys.Sinr.create Sinr_phys.Config.default pts in
    Sinr_phys.Reliability.estimate ~trials:240 ~jobs sinr
      (Rng.split rng ~key:1)
      ~set:(List.init 40 Fun.id) ~p:0.3 ~mu:0.02
  in
  let seq = estimate 1 and par = estimate 4 in
  Alcotest.(check bool) "same reliability graph" true
    (Sinr_graph.Graph.equal
       (Sinr_phys.Reliability.graph seq)
       (Sinr_phys.Reliability.graph par));
  Alcotest.(check bool) "graph is non-trivial" true
    (Sinr_graph.Graph.num_edges (Sinr_phys.Reliability.graph seq) > 0);
  for u = 0 to 39 do
    for v = 0 to 39 do
      let p1 = Sinr_phys.Reliability.success_prob seq (u, v) in
      let p4 = Sinr_phys.Reliability.success_prob par (u, v) in
      if p1 <> p4 then
        Alcotest.failf "success_prob (%d,%d): jobs=1 %.6f <> jobs=4 %.6f" u v
          p1 p4
    done
  done

(* ---------------- sweep / experiment determinism ---------------- *)

let test_grid_shape_and_order () =
  let grid jobs =
    Sinr_expt.Sweep.grid ~jobs ~params:[ "a"; "b"; "c" ] ~seeds:[ 10; 20 ]
      (fun p s -> Printf.sprintf "%s/%d" p s)
  in
  let expected =
    [ ("a", [ "a/10"; "a/20" ]);
      ("b", [ "b/10"; "b/20" ]);
      ("c", [ "c/10"; "c/20" ]) ]
  in
  Alcotest.(check (list (pair string (list string))))
    "grouped by param in input order, seeds in input order"
    expected (grid 1);
  Alcotest.(check (list (pair string (list string))))
    "same grouping at jobs=4" expected (grid 4)

let test_exp_sweep_jobs_invariant () =
  (* A full experiment through the parallel grid: the emitted rows — every
     float, summary and count in them — must be identical whatever the
     shared pool's size. *)
  let rows jobs =
    let prev = Pool.default_jobs () in
    Pool.set_default_jobs jobs;
    Fun.protect ~finally:(fun () -> Pool.set_default_jobs prev) @@ fun () ->
    Sinr_expt.Exp_ack.run ~seeds:[ 1; 2 ] ~deltas:[ 3; 5 ] ()
  in
  let seq = rows 1 and par = rows 4 in
  Alcotest.(check int) "row count" (List.length seq) (List.length par);
  Alcotest.(check bool) "rows bit-identical across jobs" true
    (Stdlib.compare seq par = 0)

let suite =
  [ Alcotest.test_case "map identity and order" `Quick
      test_map_identity_and_order;
    Alcotest.test_case "map_reduce folds in index order" `Quick
      test_map_reduce_index_order;
    Alcotest.test_case "map_seeded jobs-invariant" `Quick
      test_map_seeded_jobs_invariant;
    Alcotest.test_case "task exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "nested submission runs inline" `Quick
      test_nested_submission_runs_inline;
    Alcotest.test_case "pool telemetry exact after join" `Quick
      test_pool_telemetry_exact_after_join;
    Alcotest.test_case "default jobs override" `Quick
      test_default_jobs_override;
    Alcotest.test_case "reliability estimate jobs-invariant" `Quick
      test_reliability_jobs_invariant;
    Alcotest.test_case "sweep grid shape" `Quick test_grid_shape_and_order;
    Alcotest.test_case "experiment rows jobs-invariant" `Quick
      test_exp_sweep_jobs_invariant ]
