(* The million-node path: structure-of-arrays state must be bit-identical
   to the record-based seed path (columns, engine step, streaming
   placement), the gain-cache node ceiling must refuse rows without
   changing outcomes, and the auto-installed sparse resolution must honour
   its eps interference bound and its exact silent-cell skipping. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_obs

let cfg = Config.default (* alpha=3 beta=1.5 N=1 eps=0.1, R=12 *)

let outcome = Alcotest.(array (option int))

(* Constant-density uniform deployment (the project's standard scaling
   box: side ~4.4 sqrt n keeps ~20 nodes in range at R=12). *)
let deployment rng ~n =
  let side = 8. +. (4.4 *. sqrt (float_of_int n)) in
  Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1.

(* Sparser wide-area deployment so genuinely far sender cells exist. *)
let wide_deployment rng ~n ~side =
  Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1.

let random_senders rng ~n ~p =
  List.filter (fun _ -> Rng.bernoulli rng p) (List.init n Fun.id)

let perturb_of rng ~key =
  let r = Rng.split rng ~key in
  { Sinr.noise_factor = (fun u -> 1. +. (4. *. Rng.hash_unit r 1 u));
    gain =
      (fun ~sender ~receiver ->
        exp (0.4 *. Rng.hash_gaussian r sender receiver)) }

(* ---------------- column view = record view ---------------- *)

let test_soa_bit_identical_distances () =
  let rng = Rng.create 901 in
  let pts = deployment rng ~n:200 in
  let soa = Soa.of_points pts in
  let n = Array.length pts in
  Alcotest.(check int) "length" n (Soa.length soa);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not (Float.equal (Point.dist pts.(i) pts.(j)) (Soa.dist soa i j))
      then
        Alcotest.failf "Soa.dist differs from Point.dist at (%d,%d)" i j
    done
  done;
  let back = Soa.to_points soa in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Fmt.str "roundtrip %d" i)
        true (Point.equal p back.(i)))
    pts

(* The column-path resolvers (create and create_soa are the same columns
   underneath) vs the seed kernel, at the named sizes, clean + perturbed. *)
let test_column_path_matches_reference () =
  let rng = Rng.create 902 in
  List.iter
    (fun n ->
      let r = Rng.split rng ~key:n in
      let pts = deployment r ~n in
      let n = Array.length pts in
      let sinr = Sinr.create cfg pts in
      let via_soa = Sinr.create_soa cfg (Soa.of_points pts) in
      Alcotest.(check bool)
        (Fmt.str "no sparse below threshold (n=%d)" n)
        true
        (Sinr.sparse sinr = None);
      for case = 0 to 2 do
        let cr = Rng.split r ~key:(1000 + case) in
        let senders = random_senders cr ~n ~p:0.05 in
        let expected = Sinr.resolve_reference sinr ~senders in
        Alcotest.check outcome
          (Fmt.str "resolve n=%d case %d" n case)
          expected
          (Sinr.resolve sinr ~senders);
        Alcotest.check outcome
          (Fmt.str "resolve via create_soa n=%d case %d" n case)
          expected
          (Sinr.resolve via_soa ~senders);
        let arr = Array.of_list senders in
        Alcotest.check outcome
          (Fmt.str "resolve_array n=%d case %d" n case)
          expected
          (Sinr.resolve_array sinr ~senders:arr
             ~nsenders:(Array.length arr));
        let p = perturb_of cr ~key:case in
        Alcotest.check outcome
          (Fmt.str "perturbed n=%d case %d" n case)
          (Sinr.resolve_reference ~perturb:p sinr ~senders)
          (Sinr.resolve ~perturb:p sinr ~senders)
      done)
    [ 16; 256; 1024 ]

(* ---------------- engine step = seed semantics ---------------- *)

(* Drive the column-state engine and an independent seed-semantics model
   (descending-order sender list + resolve_reference) through identical
   slots — including crashes, recoveries and perturbed (chaos) slots —
   and demand identical deliveries, wake states and totals. *)
let test_engine_step_bit_identical () =
  let rng = Rng.create 903 in
  List.iter
    (fun n ->
      let r = Rng.split rng ~key:n in
      let pts = deployment r ~n in
      let n = Array.length pts in
      let sinr = Sinr.create cfg pts in
      let eng = Engine.create sinr in
      Engine.wake_all eng;
      Engine.set_perturb eng (fun ~slot ->
          if slot mod 3 = 2 then Some (perturb_of r ~key:slot) else None);
      (* Reference model state *)
      let ref_awake = Array.make n true in
      let ref_crashed = Array.make n false in
      let crash_at slot v = (slot * 7919) + v in
      let crashes =
        List.init (max 1 (n / 8)) (fun i ->
            let v = Rng.int r n in
            (i mod 6, v, crash_at (i mod 6) v))
      in
      for slot = 0 to 11 do
        (* Apply scheduled crashes (and one recovery wave at slot 8). *)
        List.iter
          (fun (s, v, _) ->
            if s = slot then begin
              Engine.crash eng v;
              ref_crashed.(v) <- true;
              ref_awake.(v) <- false
            end)
          crashes;
        if slot = 8 then
          List.iter
            (fun (_, v, _) ->
              if ref_crashed.(v) then begin
                Engine.revive eng v;
                Engine.wake eng v;
                ref_crashed.(v) <- false;
                ref_awake.(v) <- true
              end)
            crashes;
        let decide v =
          if Rng.hash_unit r slot v < 0.2 then Engine.Transmit (slot, v)
          else Engine.Listen
        in
        (* Seed semantics: ascending scan consing, so the sender list is
           descending; resolve_reference consumes it in that order. *)
        let senders = ref [] in
        for v = 0 to n - 1 do
          if ref_awake.(v) && (not ref_crashed.(v)) && Rng.hash_unit r slot v < 0.2
          then senders := v :: !senders
        done;
        let perturb =
          if slot mod 3 = 2 then Some (perturb_of r ~key:slot) else None
        in
        let expected =
          if !senders = [] then Array.make n None
          else Sinr.resolve_reference ?perturb sinr ~senders:!senders
        in
        let expected_deliveries = ref [] in
        for u = n - 1 downto 0 do
          if not ref_crashed.(u) then
            match expected.(u) with
            | Some v ->
              expected_deliveries := (u, v) :: !expected_deliveries;
              if not ref_crashed.(u) then ref_awake.(u) <- true
            | None -> ()
        done;
        let got = Engine.step eng ~decide in
        let got_pairs =
          List.map (fun d -> (d.Engine.receiver, d.Engine.sender)) got
        in
        Alcotest.(check (list (pair int int)))
          (Fmt.str "deliveries n=%d slot %d" n slot)
          !expected_deliveries got_pairs
      done;
      for v = 0 to n - 1 do
        Alcotest.(check bool)
          (Fmt.str "awake %d" v)
          ref_awake.(v) (Engine.is_awake eng v);
        Alcotest.(check bool)
          (Fmt.str "crashed %d" v)
          ref_crashed.(v)
          (Engine.is_crashed eng v)
      done)
    [ 16; 256 ]

(* A decide/on_deliver callback that raises must not poison the reusable
   slot buffers: the next slot still matches the reference. *)
let test_engine_step_exception_safe () =
  let rng = Rng.create 904 in
  let pts = deployment rng ~n:32 in
  let n = Array.length pts in
  let sinr = Sinr.create cfg pts in
  let eng = Engine.create sinr in
  Engine.wake_all eng;
  (try
     ignore
       (Engine.step eng ~decide:(fun v ->
            if v = 7 then failwith "boom" else Engine.Transmit v));
     Alcotest.fail "decide exception swallowed"
   with Failure _ -> ());
  let senders = ref [] in
  for v = 0 to n - 1 do
    if v mod 3 = 0 then senders := v :: !senders
  done;
  let expected = Sinr.resolve_reference sinr ~senders:!senders in
  let got =
    Engine.step eng ~decide:(fun v ->
        if v mod 3 = 0 then Engine.Transmit v else Engine.Listen)
  in
  List.iter
    (fun d ->
      Alcotest.(check (option int))
        (Fmt.str "post-exception delivery at %d" d.Engine.receiver)
        (Some d.Engine.sender)
        expected.(d.Engine.receiver))
    got;
  let expected_count =
    Array.fold_left
      (fun acc o -> match o with Some _ -> acc + 1 | None -> acc)
      0 expected
  in
  Alcotest.(check int) "post-exception delivery count" expected_count
    (List.length got)

(* ---------------- streaming placement ---------------- *)

let test_uniform_stream_invariant_and_equivalence () =
  let n = 600 in
  let side = 8. +. (4.4 *. sqrt (float_of_int n)) in
  let box = Box.square ~side in
  let soa = Soa.create ~n in
  let rng = Rng.create 905 in
  Placement.uniform_stream rng ~n ~box ~min_dist:1.
    ~set:(fun i ~x ~y -> Soa.set soa i ~x ~y)
    ~x:(Soa.x soa) ~y:(Soa.y soa);
  let pts = Soa.to_points soa in
  Alcotest.(check bool) "min distance >= 1" true
    (Placement.min_pairwise_dist pts >= 1.);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "inside box" true (Box.contains box p))
    pts;
  (* check:false trusts the generator; the physics must still match the
     reference on the resulting columns. *)
  let sinr = Sinr.create_soa ~check:false cfg soa in
  let senders = random_senders rng ~n ~p:0.03 in
  Alcotest.check outcome "stream placement resolve"
    (Sinr.resolve_reference sinr ~senders)
    (Sinr.resolve sinr ~senders)

(* ---------------- gain-cache node ceiling ---------------- *)

let test_cache_node_ceiling_refuses_rows () =
  let prev = Phys_tuning.cache_node_ceiling () in
  Phys_tuning.set_cache_node_ceiling 10;
  Fun.protect ~finally:(fun () -> Phys_tuning.set_cache_node_ceiling prev)
  @@ fun () ->
  Metrics.reset_for_tests ();
  Fun.protect ~finally:Metrics.reset_for_tests @@ fun () ->
  Metrics.set_enabled true;
  let rng = Rng.create 906 in
  let pts = deployment rng ~n:40 in
  let n = Array.length pts in
  let sinr = Sinr.create cfg pts in
  let gc = Sinr.gain_cache sinr in
  Alcotest.(check bool) "bypassed above ceiling" true (Gain_cache.bypassed gc);
  (* Refusal happens before allocation: the row table itself is empty. *)
  Alcotest.(check int) "max_rows 0" 0 (Gain_cache.max_rows gc);
  Alcotest.(check int) "rows_cached 0" 0 (Gain_cache.rows_cached gc);
  Alcotest.(check int) "bytes_cached 0" 0 (Gain_cache.bytes_cached gc);
  let senders = random_senders rng ~n ~p:0.2 in
  Alcotest.check outcome "bypassed resolve matches reference"
    (Sinr.resolve_reference sinr ~senders)
    (Sinr.resolve sinr ~senders);
  Alcotest.(check int) "still no rows after resolving" 0
    (Gain_cache.rows_cached gc);
  Alcotest.(check bool) "phys.cache.bypassed counter ticked" true
    (match Metrics.counter_peek "phys.cache.bypassed" with
     | Some c -> c >= 1
     | None -> false);
  let small = Sinr.create cfg (deployment rng ~n:8) in
  Alcotest.(check bool) "below ceiling the cache engages" false
    (Gain_cache.bypassed (Sinr.gain_cache small))

(* ---------------- sparse resolution ---------------- *)

let with_sparse ~threshold ~eps f =
  let pt = Phys_tuning.sparse_threshold () in
  let pe = Phys_tuning.sparse_eps () in
  Phys_tuning.set_sparse_threshold threshold;
  Phys_tuning.set_sparse_eps eps;
  Fun.protect
    ~finally:(fun () ->
      Phys_tuning.set_sparse_threshold pt;
      Phys_tuning.set_sparse_eps pe)
    f

let sparse_of sinr =
  match Sinr.sparse sinr with
  | Some sp -> sp
  | None -> Alcotest.fail "sparse not installed"

(* With a single transmitter there is no far-field approximation to lean
   on: every decodable listener is near (threshold > R) and scored
   exactly, and every listener beyond range must stay silent even though
   its coarse cell is skipped without being visited.  The sparse path must
   therefore be bit-identical to the seed kernel. *)
let test_sparse_silence_is_exact () =
  with_sparse ~threshold:16 ~eps:0.5 @@ fun () ->
  let rng = Rng.create 907 in
  let pts = wide_deployment rng ~n:300 ~side:600. in
  let n = Array.length pts in
  let sinr = Sinr.create cfg pts in
  let sp = sparse_of sinr in
  Alcotest.(check bool) "grids built" true
    (Sparse.fine_cells sp > 0 && Sparse.coarse_cells sp > 0);
  Alcotest.(check (float 1e-9)) "eps recorded" 0.5 (Sparse.eps sp);
  for case = 0 to 9 do
    let sender = Rng.int (Rng.split rng ~key:case) n in
    Alcotest.check outcome
      (Fmt.str "single sender %d bit-identical" sender)
      (Sinr.resolve_reference sinr ~senders:[ sender ])
      (Sinr.resolve sinr ~senders:[ sender ])
  done

let test_sparse_interference_bound () =
  let eps = 0.15 in
  with_sparse ~threshold:16 ~eps @@ fun () ->
  let rng = Rng.create 908 in
  let pts = wide_deployment rng ~n:120 ~side:300. in
  let n = Array.length pts in
  let sinr = Sinr.create cfg pts in
  let sp = sparse_of sinr in
  let aggregated_something = ref false in
  for case = 0 to 9 do
    let r = Rng.split rng ~key:(100 + case) in
    let senders =
      List.filter (fun _ -> Rng.bernoulli r 0.3) (List.init n Fun.id)
    in
    if senders <> [] then begin
      let ids = Array.of_list senders in
      let nsend = Array.length ids in
      for u = 0 to n - 1 do
        if not (List.mem u senders) then begin
          let exact =
            Sinr.interference_at sinr ~senders ~at:(Sinr.points sinr).(u)
          in
          let approx = Sparse.interference sp ~ids ~nsend ~receiver:u in
          if not (Float.equal exact approx) then aggregated_something := true;
          if Float.abs (approx -. exact) > (eps *. exact) +. 1e-9 then
            Alcotest.failf
              "eps bound violated at %d (case %d): exact %.6g approx %.6g"
              u case exact approx
        end
      done
    end
  done;
  Alcotest.(check bool) "some far cell was actually aggregated" true
    !aggregated_something

(* Sparse decisions may differ from exact only for links whose SINR sits
   within the eps interference margin of the beta threshold (best sender
   is exact, so only the denominator is approximate). *)
let test_sparse_decisions_near_exact () =
  let eps = 0.15 in
  let rng = Rng.create 909 in
  let pts = wide_deployment rng ~n:150 ~side:320. in
  let n = Array.length pts in
  let senders =
    List.filter (fun _ -> Rng.bernoulli rng 0.3) (List.init n Fun.id)
  in
  let sinr_exact = Sinr.create cfg pts in
  Alcotest.(check bool) "exact instance has no sparse" true
    (Sinr.sparse sinr_exact = None);
  let exact = Sinr.resolve_reference sinr_exact ~senders in
  let sparse_out =
    with_sparse ~threshold:16 ~eps @@ fun () ->
    let sinr_sp = Sinr.create cfg pts in
    ignore (sparse_of sinr_sp);
    Sinr.resolve sinr_sp ~senders
  in
  let beta = cfg.Config.beta and noise = cfg.Config.noise in
  let flips = ref 0 in
  Array.iteri
    (fun u exp_u ->
      if exp_u <> sparse_out.(u) && not (List.mem u senders) then begin
        incr flips;
        let at = (Sinr.points sinr_exact).(u) in
        let best_pw =
          List.fold_left
            (fun acc v ->
              Float.max acc
                (Sinr.power_between sinr_exact
                   ~from:(Sinr.points sinr_exact).(v) ~at))
            0. senders
        in
        let total = Sinr.interference_at sinr_exact ~senders ~at in
        let rhs = beta *. (noise +. total -. best_pw) in
        let ratio = best_pw /. rhs in
        if ratio < 1. /. (1. +. (3. *. eps)) || ratio > 1. +. (3. *. eps)
        then
          Alcotest.failf "decision flip outside eps margin at %d: ratio %.4f"
            u ratio
      end)
    exact;
  ignore !flips

(* An explicit far-field request wins over auto-sparse; disabling the
   threshold (<= 0) turns auto-sparse off entirely. *)
let test_sparse_install_rules () =
  let rng = Rng.create 910 in
  let pts = wide_deployment rng ~n:40 ~side:150. in
  (with_sparse ~threshold:16 ~eps:0.3 @@ fun () ->
   Phys_tuning.set_farfield (Some 0.2);
   Fun.protect ~finally:(fun () -> Phys_tuning.set_farfield None)
   @@ fun () ->
   let sinr = Sinr.create cfg pts in
   Alcotest.(check bool) "explicit farfield wins" true
     (Sinr.farfield sinr <> None && Sinr.sparse sinr = None));
  with_sparse ~threshold:0 ~eps:0.3 @@ fun () ->
  let sinr = Sinr.create cfg pts in
  Alcotest.(check bool) "threshold <= 0 disables auto-sparse" true
    (Sinr.sparse sinr = None)

let suite =
  [ Alcotest.test_case "soa distances bit-identical" `Quick
      test_soa_bit_identical_distances;
    Alcotest.test_case "column path matches reference (16/256/1024)" `Slow
      test_column_path_matches_reference;
    Alcotest.test_case "engine step bit-identical incl. crashes" `Slow
      test_engine_step_bit_identical;
    Alcotest.test_case "engine step exception-safe buffers" `Quick
      test_engine_step_exception_safe;
    Alcotest.test_case "uniform_stream invariant + equivalence" `Quick
      test_uniform_stream_invariant_and_equivalence;
    Alcotest.test_case "gain-cache node ceiling bypass" `Quick
      test_cache_node_ceiling_refuses_rows;
    Alcotest.test_case "sparse: single-sender bit-identical" `Quick
      test_sparse_silence_is_exact;
    Alcotest.test_case "sparse: interference eps bound" `Slow
      test_sparse_interference_bound;
    Alcotest.test_case "sparse: decisions near exact" `Quick
      test_sparse_decisions_near_exact;
    Alcotest.test_case "sparse: install rules" `Quick
      test_sparse_install_rules ]
