(* The physics fast path: the cached/scratch/parallel/array kernels must be
   bit-identical to the seed implementation (Sinr.resolve_reference) across
   random placements, sender sets and chaos-style perturbations, and the
   far-field mode must honour its eps_I interference bound. *)

open Sinr_geom
open Sinr_phys

let cfg = Config.default (* alpha=3 beta=1.5 N=1 eps=0.1, R=12 *)

let outcome = Alcotest.(array (option int))

(* A deterministic pseudo-random deployment + sender set per case index. *)
let random_case rng ~case =
  let r = Rng.split rng ~key:case in
  let n = 2 + Rng.int r 38 in
  (* Box side scales with sqrt n: constant density (so interference is
     non-trivial) and enough room for dart-throwing placement. *)
  let side = 6. +. (3. *. sqrt (float_of_int n)) +. Rng.float r 10. in
  let pts = Placement.uniform r ~n ~box:(Box.square ~side) ~min_dist:1. in
  let n = Array.length pts in
  let senders =
    List.filter (fun _ -> Rng.bernoulli r 0.35) (List.init n Fun.id)
  in
  (pts, senders)

(* A chaos-style perturbation built from pure hash streams (jamming noise +
   log-normal fading), keyed by the case index. *)
let perturb_of rng ~case =
  let r = Rng.split rng ~key:(10_000 + case) in
  { Sinr.noise_factor = (fun u -> 1. +. (4. *. Rng.hash_unit r 1 u));
    gain =
      (fun ~sender ~receiver ->
        exp (0.4 *. Rng.hash_gaussian r sender receiver)) }

let check_case ~label sinr ~senders ~perturb =
  let expected = Sinr.resolve_reference ?perturb sinr ~senders in
  let got = Sinr.resolve ?perturb sinr ~senders in
  Alcotest.check outcome label expected got

(* ---------------- cached kernel (default) ---------------- *)

let test_cached_matches_reference () =
  let rng = Rng.create 71 in
  for case = 0 to 149 do
    let pts, senders = random_case rng ~case in
    let sinr = Sinr.create cfg pts in
    check_case ~label:(Fmt.str "clean case %d" case) sinr ~senders
      ~perturb:None;
    check_case
      ~label:(Fmt.str "perturbed case %d" case)
      sinr ~senders
      ~perturb:(Some (perturb_of rng ~case))
  done

(* ---------------- scratch rows (cache cap exhausted) ---------------- *)

let test_scratch_matches_reference () =
  let prev = Phys_tuning.cache_cap_bytes () in
  Phys_tuning.set_cache_cap_bytes 0;
  Fun.protect ~finally:(fun () -> Phys_tuning.set_cache_cap_bytes prev)
  @@ fun () ->
  let rng = Rng.create 72 in
  for case = 0 to 74 do
    let pts, senders = random_case rng ~case in
    let sinr = Sinr.create cfg pts in
    Alcotest.(check int)
      "no rows retained" 0
      (Gain_cache.rows_cached (Sinr.gain_cache sinr));
    check_case ~label:(Fmt.str "scratch case %d" case) sinr ~senders
      ~perturb:None;
    check_case
      ~label:(Fmt.str "scratch perturbed %d" case)
      sinr ~senders
      ~perturb:(Some (perturb_of rng ~case))
  done

let test_cache_cap_partial () =
  (* A cap admitting exactly 3 rows: resolution stays exact, retention
     stops at the budget. *)
  let rng = Rng.create 73 in
  let pts = Placement.uniform rng ~n:20 ~box:(Box.square ~side:25.) ~min_dist:1. in
  let n = Array.length pts in
  let prev = Phys_tuning.cache_cap_bytes () in
  Phys_tuning.set_cache_cap_bytes (3 * n * 8);
  Fun.protect ~finally:(fun () -> Phys_tuning.set_cache_cap_bytes prev)
  @@ fun () ->
  let sinr = Sinr.create cfg pts in
  let senders = [ 0; 3; 7 ] in
  check_case ~label:"capped cache" sinr ~senders ~perturb:None;
  let cache = Sinr.gain_cache sinr in
  Alcotest.(check int) "rows at cap" 3 (Gain_cache.rows_cached cache);
  Alcotest.(check int) "bytes at cap" (3 * n * 8) (Gain_cache.bytes_cached cache);
  (* Still exact on a second, different sender set. *)
  check_case ~label:"capped cache, slot 2" sinr ~senders:[ 1; 2 ] ~perturb:None

(* ---------------- parallel listener fan-out ---------------- *)

let test_parallel_matches_reference () =
  let prev_thresh = Phys_tuning.par_threshold () in
  let prev_jobs = Sinr_par.Pool.default_jobs () in
  Phys_tuning.set_par_threshold 4;
  Sinr_par.Pool.set_default_jobs 3;
  Fun.protect
    ~finally:(fun () ->
      Phys_tuning.set_par_threshold prev_thresh;
      Sinr_par.Pool.set_default_jobs prev_jobs)
  @@ fun () ->
  let rng = Rng.create 74 in
  for case = 0 to 59 do
    let pts, senders = random_case rng ~case in
    let sinr = Sinr.create cfg pts in
    check_case ~label:(Fmt.str "parallel case %d" case) sinr ~senders
      ~perturb:None
  done

(* ---------------- array entry point & reception ---------------- *)

let test_resolve_array_matches_list () =
  let rng = Rng.create 75 in
  for case = 0 to 39 do
    let pts, senders = random_case rng ~case in
    let sinr = Sinr.create cfg pts in
    (* Oversized scratch with trailing garbage that must be ignored. *)
    let scratch = Array.make (Array.length pts + 5) 0 in
    List.iteri (fun i s -> scratch.(i) <- s) senders;
    Alcotest.check outcome
      (Fmt.str "array case %d" case)
      (Sinr.resolve sinr ~senders)
      (Sinr.resolve_array sinr ~senders:scratch
         ~nsenders:(List.length senders))
  done;
  Alcotest.(check bool) "nsenders bound checked" true
    (let sinr = Sinr.create cfg [| Point.make 0. 0.; Point.make 5. 0. |] in
     try
       ignore (Sinr.resolve_array sinr ~senders:[| 0 |] ~nsenders:2);
       false
     with Invalid_argument _ -> true)

let test_reception_matches_reference () =
  let rng = Rng.create 76 in
  for case = 0 to 39 do
    let pts, senders = random_case rng ~case in
    let sinr = Sinr.create cfg pts in
    let p = perturb_of rng ~case in
    let clean = Sinr.resolve_reference sinr ~senders in
    let pert = Sinr.resolve_reference ~perturb:p sinr ~senders in
    for u = 0 to Array.length pts - 1 do
      Alcotest.(check (option int))
        (Fmt.str "reception %d/%d" case u)
        clean.(u)
        (Sinr.reception sinr ~senders ~receiver:u);
      Alcotest.(check (option int))
        (Fmt.str "reception perturbed %d/%d" case u)
        pert.(u)
        (Sinr.reception ~perturb:p sinr ~senders ~receiver:u)
    done
  done

let test_power_matches_power_between () =
  let rng = Rng.create 77 in
  let pts = Placement.uniform rng ~n:12 ~box:(Box.square ~side:20.) ~min_dist:1. in
  let sinr = Sinr.create cfg pts in
  (* Touch the cache through one resolve so some rows are resident. *)
  ignore (Sinr.resolve sinr ~senders:[ 0; 1 ]);
  Array.iteri
    (fun u _ ->
      Array.iteri
        (fun v _ ->
          if u <> v then
            Alcotest.(check bool)
              (Fmt.str "power %d->%d" v u)
              true
              (Float.equal
                 (Sinr.power_between sinr ~from:pts.(v) ~at:pts.(u))
                 (Sinr.power sinr ~sender:v ~receiver:u)))
        pts)
    pts

(* ---------------- reliability estimate bit-identity ---------------- *)

let test_reliability_matches_seed_trial_loop () =
  (* Re-run the seed trial loop by hand (list filtering + reference
     resolve) and demand the production estimate matches count-for-count. *)
  let rng = Rng.create 78 in
  let pts = Placement.uniform rng ~n:14 ~box:(Box.square ~side:16.) ~min_dist:1. in
  let n = Array.length pts in
  let sinr = Sinr.create cfg pts in
  let set = List.init n Fun.id in
  let trials = 120 and p = 0.3 and mu = 0.02 in
  let est_rng = Rng.split rng ~key:1 in
  let est = Reliability.estimate ~trials ~jobs:1 sinr est_rng ~set ~p ~mu in
  let members = Array.of_list set in
  let counts = Array.make (n * n) 0 in
  for t = 0 to trials - 1 do
    let trng = Rng.split est_rng ~key:t in
    let senders =
      Array.to_list members |> List.filter (fun _ -> Rng.bernoulli trng p)
    in
    if senders <> [] then begin
      let outcome = Sinr.resolve_reference sinr ~senders in
      Array.iter
        (fun u ->
          match outcome.(u) with
          | Some v -> counts.((u * n) + v) <- counts.((u * n) + v) + 1
          | None -> ())
        members
    end
  done;
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let expected = float_of_int counts.((u * n) + v) /. float_of_int trials in
      let got = Reliability.success_prob est (u, v) in
      if not (Float.equal expected got) then
        Alcotest.failf "success_prob (%d,%d): seed loop %.6f <> estimate %.6f"
          u v expected got
    done
  done

(* ---------------- far field ---------------- *)

let with_farfield eps f =
  Phys_tuning.set_farfield (Some eps);
  Fun.protect ~finally:(fun () -> Phys_tuning.set_farfield None) f

(* A sparse wide-area deployment so genuinely far pairs exist. *)
let wide_deployment r ~n ~side =
  Placement.uniform r ~n ~box:(Box.square ~side) ~min_dist:1.

let test_farfield_interference_bound () =
  let eps = 0.15 in
  with_farfield eps @@ fun () ->
  let rng = Rng.create 79 in
  let pts = wide_deployment rng ~n:60 ~side:220. in
  let n = Array.length pts in
  let sinr = Sinr.create cfg pts in
  let ff =
    match Sinr.farfield sinr with
    | Some ff -> ff
    | None -> Alcotest.fail "farfield not installed"
  in
  Alcotest.(check (float 1e-9)) "eps recorded" eps (Farfield.eps ff);
  let pruned_something = ref false in
  for case = 0 to 29 do
    let r = Rng.split rng ~key:(100 + case) in
    let senders =
      List.filter (fun _ -> Rng.bernoulli r 0.4) (List.init n Fun.id)
    in
    if senders <> [] then
      for u = 0 to n - 1 do
        if not (List.mem u senders) then begin
        let exact =
          Sinr.interference_at sinr ~senders
            ~at:(Sinr.points sinr).(u)
        in
        let approx = Farfield.interference ff ~receiver:u ~senders in
        if not (Float.equal exact approx) then pruned_something := true;
        if Float.abs (approx -. exact) > (eps *. exact) +. 1e-9 then
          Alcotest.failf
            "eps_I bound violated at %d (case %d): exact %.6g approx %.6g"
            u case exact approx
        end
      done
  done;
  Alcotest.(check bool) "some interference was actually aggregated" true
    !pruned_something

let test_farfield_decisions_near_exact () =
  (* Far-field decisions may differ from exact only for links within the
     eps interference margin of the beta threshold. *)
  let eps = 0.15 in
  let exact_outcomes, ff_outcomes, sinr_exact =
    let rng = Rng.create 80 in
    let pts = wide_deployment rng ~n:80 ~side:260. in
    let n = Array.length pts in
    let senders =
      List.filter (fun _ -> Rng.bernoulli rng 0.3) (List.init n Fun.id)
    in
    let sinr_exact = Sinr.create cfg pts in
    let exact = Sinr.resolve_reference sinr_exact ~senders in
    let ff_out =
      with_farfield eps @@ fun () ->
      let sinr_ff = Sinr.create cfg pts in
      Alcotest.(check bool) "farfield installed" true
        (Sinr.farfield sinr_ff <> None);
      Sinr.resolve sinr_ff ~senders
    in
    ((exact, senders), ff_out, sinr_exact)
  in
  let exact, senders = exact_outcomes in
  let beta = cfg.Config.beta and noise = cfg.Config.noise in
  Array.iteri
    (fun u exp_u ->
      if exp_u <> ff_outcomes.(u) && not (List.mem u senders) then begin
        (* The disputed candidate is the exact strongest sender; check its
           margin against the threshold. *)
        let at = (Sinr.points sinr_exact).(u) in
        let best_pw =
          List.fold_left
            (fun acc v ->
              Float.max acc (Sinr.power_between sinr_exact ~from:(Sinr.points sinr_exact).(v) ~at))
            0. senders
        in
        let total = Sinr.interference_at sinr_exact ~senders ~at in
        let rhs = beta *. (noise +. total -. best_pw) in
        let ratio = best_pw /. rhs in
        if ratio < 1. /. (1. +. (3. *. eps)) || ratio > 1. +. (3. *. eps) then
          Alcotest.failf
            "decision flip outside eps margin at %d: ratio %.4f" u ratio
      end)
    exact

let test_farfield_threshold_exceeds_range () =
  with_farfield 0.1 @@ fun () ->
  let rng = Rng.create 81 in
  let pts = wide_deployment rng ~n:20 ~side:120. in
  let sinr = Sinr.create cfg pts in
  match Sinr.farfield sinr with
  | None -> Alcotest.fail "farfield not installed"
  | Some ff ->
    Alcotest.(check bool) "threshold > R" true
      (Farfield.threshold ff > Config.range cfg)

let test_farfield_validation () =
  Alcotest.(check bool) "eps >= 1 rejected" true
    (try Phys_tuning.set_farfield (Some 1.0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "eps <= 0 rejected" true
    (try Phys_tuning.set_farfield (Some 0.); false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "cached kernel = seed kernel (300 cases)" `Quick
      test_cached_matches_reference;
    Alcotest.test_case "scratch rows = seed kernel (cap 0)" `Quick
      test_scratch_matches_reference;
    Alcotest.test_case "partial cache cap stays exact" `Quick
      test_cache_cap_partial;
    Alcotest.test_case "parallel listeners = seed kernel" `Quick
      test_parallel_matches_reference;
    Alcotest.test_case "resolve_array = resolve" `Quick
      test_resolve_array_matches_list;
    Alcotest.test_case "reception = seed kernel per listener" `Quick
      test_reception_matches_reference;
    Alcotest.test_case "cached power = power_between" `Quick
      test_power_matches_power_between;
    Alcotest.test_case "reliability = seed trial loop" `Quick
      test_reliability_matches_seed_trial_loop;
    Alcotest.test_case "farfield eps_I interference bound" `Quick
      test_farfield_interference_bound;
    Alcotest.test_case "farfield decisions near-exact" `Quick
      test_farfield_decisions_near_exact;
    Alcotest.test_case "farfield threshold exceeds range" `Quick
      test_farfield_threshold_exceeds_range;
    Alcotest.test_case "farfield eps validation" `Quick
      test_farfield_validation ]
