let () =
  Alcotest.run "sinr_local_broadcast"
    [ ("geom", Test_geom.suite);
      ("graph", Test_graph.suite);
      ("stats", Test_stats.suite);
      ("phys", Test_phys.suite);
      ("engine", Test_engine.suite);
      ("mis", Test_mis.suite);
      ("mac", Test_mac.suite);
      ("proto", Test_proto.suite);
      ("mac_ext", Test_mac_ext.suite);
      ("expt", Test_expt.suite);
      ("phys_ext", Test_phys_ext.suite);
      ("proto_ext", Test_proto_ext.suite);
      ("spec", Test_spec.suite);
      ("epoch", Test_epoch.suite);
      ("engine_ext", Test_engine_ext.suite);
      ("decay_mac", Test_decay_mac.suite);
      ("mis_ext", Test_mis_ext.suite);
      ("expt_e2e", Test_expt_e2e.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("par", Test_par.suite);
      ("chaos", Test_chaos.suite);
      ("phys_fast", Test_phys_fast.suite);
      ("serve", Test_serve.suite);
      ("scale", Test_scale.suite) ]
