(* Tests for the telemetry subsystem (lib/obs) and its instrumentation of
   the simulation stack. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_obs

(* Every test starts from a clean, enabled registry and leaves the registry
   disabled (the rest of the suite must keep running uninstrumented).
   [reset_for_tests] also invalidates shards left behind by domains spawned
   in earlier cases, so cases cannot observe each other's histograms. *)
let with_registry f () =
  Metrics.reset_for_tests ();
  Metrics.set_enabled true;
  Fun.protect ~finally:Metrics.reset_for_tests f

(* ---------------- registry basics ---------------- *)

let test_disabled_is_noop () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test.noop_counter" in
  let h = Metrics.histogram "test.noop_hist" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe h 3.0;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h);
  Alcotest.(check bool) "snapshot omits dead metrics" true
    (not (List.mem_assoc "test.noop_counter" (Metrics.snapshot ())))

let test_counter_and_gauge =
  with_registry (fun () ->
      let c = Metrics.counter "test.c" in
      let g = Metrics.gauge "test.g" in
      Metrics.incr c;
      Metrics.add c 4;
      Metrics.set g 2.5;
      Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
      Alcotest.(check (float 1e-9)) "gauge" 2.5 (Metrics.gauge_value g);
      (* get-or-create returns the same handle *)
      Metrics.incr (Metrics.counter "test.c");
      Alcotest.(check int) "shared handle" 6 (Metrics.counter_value c);
      Alcotest.(check (option int)) "peek" (Some 6)
        (Metrics.counter_peek "test.c");
      (* registering the same name as another kind is an error *)
      Alcotest.check_raises "kind clash"
        (Invalid_argument "Metrics: test.c already registered as a counter")
        (fun () -> ignore (Metrics.gauge "test.c")))

let test_histogram_buckets =
  with_registry (fun () ->
      let h = Metrics.histogram "test.h" in
      (* All mass at a single value: clamping to observed min/max makes
         every quantile exact regardless of bucket width. *)
      for _ = 1 to 100 do
        Metrics.observe h 5.0
      done;
      Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
      Alcotest.(check (float 1e-9)) "sum" 500.0 (Metrics.histogram_sum h);
      List.iter
        (fun q ->
          Alcotest.(check (float 1e-9)) "point mass quantile" 5.0
            (Metrics.quantile h q))
        [ 0.5; 0.9; 0.99 ])

let test_histogram_quantiles =
  with_registry (fun () ->
      let h = Metrics.histogram "test.hq" in
      (* 90 observations in [1,2) and 10 in [64,128): p50 must sit in the
         low bucket, p99 in the high one, and the estimates must be
         monotone in q. *)
      for _ = 1 to 90 do
        Metrics.observe h 1.0
      done;
      for _ = 1 to 10 do
        Metrics.observe h 100.0
      done;
      let p50 = Metrics.quantile h 0.5 in
      let p90 = Metrics.quantile h 0.9 in
      let p99 = Metrics.quantile h 0.99 in
      Alcotest.(check bool) "p50 in low bucket" true (p50 >= 1.0 && p50 < 2.0);
      Alcotest.(check bool) "p99 in high bucket" true
        (p99 >= 64.0 && p99 <= 128.0);
      Alcotest.(check bool) "monotone" true (p50 <= p90 && p90 <= p99);
      (* negative / NaN observations are clamped, not dropped *)
      Metrics.observe h (-3.0);
      Alcotest.(check int) "clamped obs counted" 101
        (Metrics.histogram_count h);
      Alcotest.(check (float 1e-9)) "clamped to zero -> min" 0.0
        (Metrics.quantile h 0.0))

(* The standalone estimator behind both Metrics.quantile and trace-report's
   percentile lines: monotone in q over arbitrary bucket shapes, clamped to
   the observed extremes, nan when empty. *)
let test_estimate_quantile_monotone () =
  let grid =
    [ 0.0; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999; 1.0 ]
  in
  let check_dist name values =
    let counts = Array.make Metrics.nbuckets 0 in
    let lo = ref infinity and hi = ref neg_infinity in
    List.iter
      (fun v ->
        if v < !lo then lo := v;
        if v > !hi then hi := v;
        let i = Metrics.bucket_of v in
        counts.(i) <- counts.(i) + 1)
      values;
    let total = List.length values in
    let q p =
      Metrics.estimate_quantile ~counts ~total ~lo:!lo ~hi:!hi p
    in
    let estimates = List.map q grid in
    let rec monotone = function
      | a :: (b :: _ as rest) -> a <= b && monotone rest
      | _ -> true
    in
    Alcotest.(check bool) (name ^ " monotone over the grid") true
      (monotone estimates);
    List.iter
      (fun e ->
        Alcotest.(check bool) (name ^ " clamped to [lo, hi]") true
          (e >= !lo && e <= !hi))
      estimates
  in
  check_dist "uniform" (List.init 100 (fun i -> float_of_int (i + 1)));
  check_dist "point mass" (List.init 50 (fun _ -> 17.0));
  check_dist "bimodal"
    (List.init 90 (fun _ -> 1.5) @ List.init 10 (fun _ -> 900.));
  check_dist "powers"
    (List.init 20 (fun i -> Float.of_int (1 lsl (i mod 10))));
  check_dist "single sample" [ 3.25 ];
  (* Empty input: nan, not an exception. *)
  Alcotest.(check bool) "empty input is nan" true
    (Float.is_nan
       (Metrics.estimate_quantile
          ~counts:(Array.make Metrics.nbuckets 0)
          ~total:0 ~lo:infinity ~hi:neg_infinity 0.5))

let test_reset =
  with_registry (fun () ->
      let c = Metrics.counter "test.reset_c" in
      let h = Metrics.histogram "test.reset_h" in
      Metrics.incr c;
      Metrics.observe h 1.0;
      Metrics.reset ();
      Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
      Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h);
      Alcotest.(check int) "snapshot empty" 0
        (List.length (Metrics.snapshot ())))

let test_reset_for_tests () =
  Metrics.reset_for_tests ();
  Metrics.set_enabled true;
  let c = Metrics.counter "rft.c" in
  let h = Metrics.histogram "rft.h" in
  Metrics.incr c;
  Metrics.observe h 2.0;
  Metrics.reset_for_tests ();
  Alcotest.(check bool) "registry left disabled" false (Metrics.is_enabled ());
  Metrics.incr c;
  (* gated off: must not count *)
  Alcotest.(check int) "counter zeroed and gated" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_count h);
  (* Handles created before the reset keep working afterwards. *)
  Metrics.set_enabled true;
  Fun.protect ~finally:Metrics.reset_for_tests @@ fun () ->
  Metrics.incr c;
  Metrics.observe h 4.0;
  Alcotest.(check int) "handle alive after reset" 1 (Metrics.counter_value c);
  Alcotest.(check (float 1e-9)) "shard re-created after reset" 4.0
    (Metrics.histogram_sum h)

(* ---------------- domain safety ---------------- *)

let test_multi_domain_stress =
  with_registry (fun () ->
      (* Four domains hammer the same counter, gauge and histogram through
         the public API, each fetching its own handles so concurrent
         get-or-create registration is exercised too.  Counters and
         histogram totals are exact (atomics / per-histogram lock), so the
         checks are equalities, not bounds. *)
      let domains = 4 and incrs = 25_000 and observes = 5_000 in
      let spawned =
        Array.init domains (fun d ->
            Domain.spawn (fun () ->
                let c = Metrics.counter "stress.c" in
                let g = Metrics.gauge "stress.g" in
                let h = Metrics.histogram "stress.h" in
                for _ = 1 to incrs do
                  Metrics.incr c
                done;
                Metrics.add c 5;
                Metrics.set g (float_of_int d);
                for _ = 1 to observes do
                  Metrics.observe h 2.0
                done))
      in
      Array.iter Domain.join spawned;
      Alcotest.(check int) "counter total exact"
        ((domains * incrs) + (domains * 5))
        (Metrics.counter_value (Metrics.counter "stress.c"));
      let h = Metrics.histogram "stress.h" in
      Alcotest.(check int) "histogram count exact" (domains * observes)
        (Metrics.histogram_count h);
      Alcotest.(check (float 1e-6)) "histogram sum exact"
        (2.0 *. float_of_int (domains * observes))
        (Metrics.histogram_sum h);
      Alcotest.(check (float 1e-9)) "point-mass quantile survives" 2.0
        (Metrics.quantile h 0.5);
      let g = Metrics.gauge_value (Metrics.gauge "stress.g") in
      Alcotest.(check bool) "gauge holds one of the written values" true
        (List.mem g [ 0.; 1.; 2.; 3. ]);
      (* The registry itself stayed consistent under concurrent create. *)
      Alcotest.(check int) "three metrics registered" 3
        (List.length (Metrics.snapshot ())))

(* Sharding must be a pure representation change: the same observation
   stream split across four domains merges to the exact single-domain
   result — bucket-for-bucket and observation-for-observation — with the
   sum agreeing up to float re-association, and the merged snapshot is
   deterministic (two quiescent reads agree structurally). *)
let test_shard_merge_matches_single_domain =
  with_registry (fun () ->
      let domains = 4 and per = 5_000 in
      let value d i = float_of_int (((i * 7) + (d * 13)) mod 1000) in
      let single = Metrics.histogram "shard.single" in
      for d = 0 to domains - 1 do
        for i = 0 to per - 1 do
          Metrics.observe single (value d i)
        done
      done;
      let spawned =
        Array.init domains (fun d ->
            Domain.spawn (fun () ->
                let h = Metrics.histogram "shard.merged" in
                for i = 0 to per - 1 do
                  Metrics.observe h (value d i)
                done))
      in
      Array.iter Domain.join spawned;
      let merged = Metrics.histogram "shard.merged" in
      Alcotest.(check int) "count exact" (Metrics.histogram_count single)
        (Metrics.histogram_count merged);
      Alcotest.(check (array int)) "buckets identical"
        (Metrics.histogram_buckets single)
        (Metrics.histogram_buckets merged);
      Alcotest.(check (float 1e-6)) "sum agrees"
        (Metrics.histogram_sum single)
        (Metrics.histogram_sum merged);
      let s = Metrics.summarize single and m = Metrics.summarize merged in
      Alcotest.(check (float 0.)) "min exact" s.Metrics.min m.Metrics.min;
      Alcotest.(check (float 0.)) "max exact" s.Metrics.max m.Metrics.max;
      List.iter
        (fun q ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "q=%.2f identical" q)
            (Metrics.quantile single q) (Metrics.quantile merged q))
        [ 0.5; 0.9; 0.99 ];
      Alcotest.(check bool) "quiescent snapshot is stable" true
        (Metrics.snapshot () = Metrics.snapshot ()))

(* ---------------- json + sink round-trip ---------------- *)

let test_json_parse () =
  let j = Json.parse {|{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}|} in
  Alcotest.(check (option int)) "nested int"
    (Some (-3))
    (Option.bind (Json.member "b" j) (fun b ->
         Option.bind (Json.member "c" b) Json.to_int));
  (match Json.member "a" j with
   | Some (Json.List [ Json.Num one; Json.Num h; Json.Str s; Json.Bool true;
                       Json.Null ]) ->
     Alcotest.(check (float 1e-9)) "1" 1.0 one;
     Alcotest.(check (float 1e-9)) "2.5" 2.5 h;
     Alcotest.(check string) "escape" "x\n" s
   | _ -> Alcotest.fail "unexpected array shape");
  Alcotest.(check bool) "malformed rejected" true
    (Json.parse_opt "{broken" = None);
  Alcotest.(check bool) "trailing garbage rejected" true
    (Json.parse_opt "1 2" = None)

let test_json_escapes () =
  (* \u escapes: ASCII, 2-byte and 3-byte UTF-8 targets. *)
  (match Json.parse {|"\u0041\u00e9\u20ac"|} with
   | Json.Str s ->
     Alcotest.(check string) "unicode escapes decode to UTF-8"
       "A\xc3\xa9\xe2\x82\xac" s
   | _ -> Alcotest.fail "expected a string");
  (match Json.parse {|"\b\f\/\\\""|} with
   | Json.Str s ->
     Alcotest.(check string) "rare escapes" "\b\012/\\\"" s
   | _ -> Alcotest.fail "expected a string");
  (* Control characters render as \u escapes and survive a round trip. *)
  let original = Json.Str "tab\there\x01\x1f" in
  let printed = Json.to_string_json original in
  Alcotest.(check bool) "control chars escaped on output" true
    (String.for_all (fun c -> Char.code c >= 0x20) printed);
  Alcotest.(check bool) "string round-trips" true
    (Json.parse printed = original);
  Alcotest.(check bool) "bad unicode escape rejected" true
    (Json.parse_opt {|"\uZZZZ"|} = None);
  Alcotest.(check bool) "truncated unicode escape rejected" true
    (Json.parse_opt {|"\u00|} = None);
  Alcotest.(check bool) "unknown escape rejected" true
    (Json.parse_opt {|"\q"|} = None);
  Alcotest.(check bool) "unterminated string rejected" true
    (Json.parse_opt {|"abc|} = None)

let test_json_numbers () =
  let num s =
    match Json.parse s with
    | Json.Num f -> f
    | _ -> Alcotest.failf "%s did not parse to a number" s
  in
  Alcotest.(check (float 1e-9)) "exponent" 2500. (num "2.5e3");
  Alcotest.(check (float 1e-12)) "negative exponent" (-0.005) (num "-0.5E-2");
  Alcotest.(check (float 1e294)) "huge but finite" 1e308 (num "1e308");
  (* The sink prints infinities as +-1e999 (out of double range, so they
     parse straight back to infinities) and NaN as null. *)
  Alcotest.(check bool) "1e999 overflows to infinity" true
    (num "1e999" = infinity);
  Alcotest.(check bool) "-1e999 overflows to -infinity" true
    (num "-1e999" = neg_infinity);
  Alcotest.(check string) "infinity prints as 1e999" "1e999"
    (Json.to_string_json (Json.Num infinity));
  Alcotest.(check bool) "infinity round-trips" true
    (Json.parse (Json.to_string_json (Json.Num infinity)) = Json.Num infinity);
  Alcotest.(check string) "nan prints as null" "null"
    (Json.to_string_json (Json.Num Float.nan));
  Alcotest.(check bool) "lone minus rejected" true
    (Json.parse_opt "-" = None);
  Alcotest.(check bool) "double dot rejected" true
    (Json.parse_opt "1.2.3" = None)

let test_json_deep_nesting () =
  let depth = 200 in
  let deep_list =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "7"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let rec unwrap d j =
    match j with
    | Json.List [ inner ] -> unwrap (d + 1) inner
    | Json.Num f -> (d, f)
    | _ -> Alcotest.fail "unexpected shape in deep list"
  in
  let d, f = unwrap 0 (Json.parse deep_list) in
  Alcotest.(check int) "all layers parsed" depth d;
  Alcotest.(check (float 1e-9)) "payload intact" 7. f;
  (* Deep objects, and the printer survives the same depth. *)
  let deep_obj =
    String.concat "" (List.init depth (fun _ -> {|{"k":|}))
    ^ "null"
    ^ String.make depth '}'
  in
  let j = Json.parse deep_obj in
  Alcotest.(check bool) "deep object round-trips" true
    (Json.parse (Json.to_string_json j) = j)

let test_json_trailing_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (Json.parse_opt s = None))
    [ "[1,]"; {|{"a":1,}|}; "{} x"; "[] []"; "1 2"; {|"a" "b"|}; "tru";
      "nul"; "[1 2]"; {|{"a" 1}|}; "," ];
  (* Leading/trailing whitespace is not garbage. *)
  Alcotest.(check bool) "surrounding whitespace accepted" true
    (Json.parse "  [1, 2]  \n" = Json.List [ Json.Num 1.; Json.Num 2. ])

let value_eq a b =
  match (a, b) with
  | Metrics.Counter_v x, Metrics.Counter_v y -> x = y
  | Metrics.Gauge_v x, Metrics.Gauge_v y -> Float.abs (x -. y) < 1e-9
  | Metrics.Histogram_v x, Metrics.Histogram_v y ->
    x.Metrics.count = y.Metrics.count
    && Float.abs (x.Metrics.sum -. y.Metrics.sum) < 1e-6
    && Float.abs (x.Metrics.p50 -. y.Metrics.p50) < 1e-6
    && Float.abs (x.Metrics.p99 -. y.Metrics.p99) < 1e-6
  | _ -> false

let test_snapshot_roundtrip =
  with_registry (fun () ->
      Metrics.incr (Metrics.counter "rt.count");
      Metrics.add (Metrics.counter "rt.count") 41;
      Metrics.set (Metrics.gauge "rt.gauge") 3.25;
      let h = Metrics.histogram "rt.hist" in
      List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0; 4.0; 150.0 ];
      let snap = Metrics.snapshot () in
      let line = Sink.snapshot_to_jsonl ~label:"test" snap in
      let parsed = Json.parse (String.trim line) in
      Alcotest.(check (option string)) "label survives" (Some "test")
        (Option.bind (Json.member "label" parsed) Json.to_string);
      match Sink.snapshot_of_json parsed with
      | None -> Alcotest.fail "snapshot_of_json failed"
      | Some snap' ->
        Alcotest.(check int) "same cardinality" (List.length snap)
          (List.length snap');
        List.iter2
          (fun (n, v) (n', v') ->
            Alcotest.(check string) "name order" n n';
            Alcotest.(check bool) (n ^ " value survives") true
              (value_eq v v'))
          snap snap')

(* write_file goes through a temp-and-rename: the destination either holds
   the old contents or the new ones, and no *.tmp.* residue survives. *)
let test_atomic_write_file () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sinr-obs-atomic-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
  let path = Filename.concat dir "snap.json" in
  Sink.write_file path "first\n";
  Sink.write_file path "second\n";
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "overwrite lands the new contents" "second\n"
    contents;
  Alcotest.(check (list string)) "no temp residue" [ "snap.json" ]
    (Array.to_list (Sys.readdir dir) |> List.sort compare);
  Sys.remove path;
  Unix.rmdir dir

let has_sub text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let count_sub text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go acc i =
    if i + nl > tl then acc
    else if String.sub text i nl = needle then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  if nl = 0 then 0 else go 0 0

(* Line-by-line validator for the Prometheus text exposition format (what a
   real scraper parses): comment lines must be well-formed HELP/TYPE
   headers, everything else must be [name[{labels}] value] with a name in
   [a-zA-Z0-9_:] and a parseable value. *)
let check_prometheus_text what text =
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let valid_value v =
    v = "NaN" || v = "+Inf" || v = "-Inf" || float_of_string_opt v <> None
  in
  let valid_sample line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    !i > 0
    &&
    let j =
      if !i < n && line.[!i] = '{' then
        match String.index_from_opt line !i '}' with
        | Some k -> k + 1
        | None -> -1
      else !i
    in
    j > 0 && j < n
    && line.[j] = ' '
    && valid_value (String.sub line (j + 1) (n - j - 1))
  in
  let valid_header line =
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; typ ] ->
      String.for_all is_name_char name
      && List.mem typ [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]
    | "#" :: "HELP" :: name :: _ -> String.for_all is_name_char name
    | _ -> false
  in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check bool) (what ^ " is non-empty") true (lines <> [ "" ]);
  List.iter
    (fun line ->
      let ok =
        if String.length line > 0 && line.[0] = '#' then valid_header line
        else valid_sample line
      in
      if not ok then Alcotest.failf "%s: invalid exposition line %S" what line)
    lines

let test_prometheus =
  with_registry (fun () ->
      Metrics.add (Metrics.counter "prom.requests") 7;
      Metrics.set (Metrics.gauge "prom.depth") 1.5;
      Metrics.observe (Metrics.histogram "prom.lat") 2.0;
      let text = Sink.snapshot_to_prometheus (Metrics.snapshot ()) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("contains " ^ needle) true (has_sub text needle))
        [ "# TYPE prom_requests counter"; "prom_requests 7";
          "prom_depth 1.5"; "# TYPE prom_lat summary";
          "prom_lat{quantile=\"0.5\"} 2"; "prom_lat_count 1" ];
      check_prometheus_text "snapshot exposition" text)

let test_prometheus_hardening () =
  (* Escaping helpers: label values escape backslash, quote and newline;
     HELP text escapes backslash and newline but keeps quotes. *)
  Alcotest.(check string) "label escaping" {|a\\b\"c\nd|}
    (Sink.prom_escape_label "a\\b\"c\nd");
  Alcotest.(check string) "help escaping keeps quotes" "say \"hi\"\\nbye"
    (Sink.prom_escape_help "say \"hi\"\nbye");
  (* Distinct dotted names can collapse to one exposition family; HELP and
     TYPE must still appear exactly once per family, and a hostile metric
     name must not inject extra exposition lines through the help text. *)
  let snap =
    [ ("dup.name", Metrics.Counter_v 1);
      ("dup_name", Metrics.Counter_v 2);
      ("weird\nname", Metrics.Gauge_v 1.0) ]
  in
  let text = Sink.snapshot_to_prometheus snap in
  Alcotest.(check int) "TYPE once for the collapsed family" 1
    (count_sub text "# TYPE dup_name counter");
  Alcotest.(check int) "HELP once for the collapsed family" 1
    (count_sub text "# HELP dup_name ");
  Alcotest.(check int) "both samples still emitted" 2
    (count_sub text "\ndup_name ");
  Alcotest.(check bool) "newline in name escaped in help" true
    (has_sub text "sinr_sim metric weird\\nname");
  check_prometheus_text "hardened exposition" text

(* ---------------- labeled metrics ---------------- *)

let test_labels =
  with_registry (fun () ->
      (* Canonicalization: key order is irrelevant — the same label set
         interns to the same registry child. *)
      let a = Metrics.labels [ ("job_id", "7"); ("kind", "x") ] in
      let b = Metrics.labels [ ("kind", "x"); ("job_id", "7") ] in
      Alcotest.(check string) "canonical order" (a :> string) (b :> string);
      let c1 = Metrics.counter_with "lbl.cells" a in
      let c2 = Metrics.counter_with "lbl.cells" b in
      Metrics.incr c1;
      Metrics.add c2 2;
      Alcotest.(check int) "one interned child" 3 (Metrics.counter_value c1);
      (* the bare family is a distinct series *)
      Metrics.incr (Metrics.counter "lbl.cells");
      Alcotest.(check int) "bare family separate" 1
        (Metrics.counter_value (Metrics.counter "lbl.cells"));
      (* split_name round-trips, escapes included *)
      let tricky = Metrics.labels [ ("k", "a\"b\\c\nd") ] in
      Alcotest.(check (pair string (list (pair string string))))
        "split_name round-trip"
        ("lbl.cells", [ ("k", "a\"b\\c\nd") ])
        (Metrics.split_name ("lbl.cells" ^ (tricky :> string)));
      Alcotest.(check (pair string (list (pair string string))))
        "bare name" ("plain", [])
        (Metrics.split_name "plain");
      (* a malformed suffix is not labels — total, degrades to bare *)
      Alcotest.(check (pair string (list (pair string string))))
        "malformed degrades" ("x{oops", [])
        (Metrics.split_name "x{oops");
      (match Metrics.labels [ ("9bad", "v") ] with
       | (_ : Metrics.labels) -> Alcotest.fail "invalid key accepted"
       | exception Invalid_argument _ -> ());
      (match Metrics.labels [ ("k", "1"); ("k", "2") ] with
       | (_ : Metrics.labels) -> Alcotest.fail "duplicate key accepted"
       | exception Invalid_argument _ -> ());
      (* Prometheus rendering: labeled children under one family header,
         quantile merged into the label set. *)
      Metrics.set
        (Metrics.gauge_with "lbl.g" (Metrics.labels [ ("job_id", "1") ]))
        2.0;
      Metrics.observe (Metrics.histogram_with "lbl.h" a) 1.0;
      let text = Sink.snapshot_to_prometheus (Metrics.snapshot ()) in
      Alcotest.(check bool) "labeled counter sample" true
        (has_sub text "lbl_cells{job_id=\"7\",kind=\"x\"} 3");
      Alcotest.(check bool) "bare sample kept" true
        (has_sub text "\nlbl_cells 1");
      Alcotest.(check int) "TYPE once for family with children" 1
        (count_sub text "# TYPE lbl_cells counter");
      Alcotest.(check bool) "labeled gauge" true
        (has_sub text "lbl_g{job_id=\"1\"} 2");
      Alcotest.(check bool) "quantile merged into label set" true
        (has_sub text "lbl_h{job_id=\"7\",kind=\"x\",quantile=\"0.5\"} 1");
      Alcotest.(check bool) "labeled histogram count" true
        (has_sub text "lbl_h_count{job_id=\"7\",kind=\"x\"} 1");
      check_prometheus_text "labeled exposition" text)

(* ---------------- span ambient context ---------------- *)

let test_span_context =
  with_registry (fun () ->
      Recorder.clear ();
      Recorder.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Recorder.set_enabled false;
          Recorder.clear ())
      @@ fun () ->
      Span.with_context
        [ ("job_id", Json.int 7) ]
        (fun () ->
          let sp = Span.start ~name:"ctx.inside" ~slot:0 () in
          Span.finish sp ~slot:1);
      let sp = Span.start ~name:"ctx.outside" ~slot:0 () in
      Span.finish sp ~slot:1;
      let dump = Recorder.to_jsonl ~reason:"t" () in
      Alcotest.(check bool) "inside span stamped" true
        (has_sub dump "\"job_id\":7");
      (* ?job keeps the stamped span, drops the rest *)
      let filtered = Recorder.to_jsonl ~job:7 ~reason:"t" () in
      Alcotest.(check bool) "filter keeps stamped" true
        (has_sub filtered "ctx.inside");
      Alcotest.(check bool) "filter drops unstamped" true
        (not (has_sub filtered "ctx.outside"));
      (* context restored on exit *)
      let dump2 = Recorder.to_jsonl ~job:7 ~reason:"t" () in
      Alcotest.(check bool) "context scoped" true
        (not (has_sub dump2 "ctx.outside")))

(* ---------------- procstat ticker ---------------- *)

let test_procstat_ticker =
  with_registry (fun () ->
      let tk = Procstat.start_ticker ~period_s:0.05 () in
      Fun.protect ~finally:(fun () -> Procstat.stop_ticker tk) @@ fun () ->
      (* the first sample is immediate, modulo domain start latency *)
      let gauge_pos k =
        match List.assoc_opt k (Metrics.snapshot ()) with
        | Some (Metrics.Gauge_v g) -> g > 0.
        | _ -> false
      in
      let rec wait n =
        if gauge_pos "proc.rss_kb" then ()
        else if n = 0 then Alcotest.fail "proc.rss_kb never sampled"
        else begin
          Unix.sleepf 0.02;
          wait (n - 1)
        end
      in
      wait 100;
      List.iter
        (fun k -> Alcotest.(check bool) (k ^ " live") true (gauge_pos k))
        [ "proc.rss_kb"; "proc.hwm_kb"; "gc.heap_words" ];
      Procstat.stop_ticker tk;
      (* idempotent *)
      Procstat.stop_ticker tk)

(* ---------------- embedded HTTP server ---------------- *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
      path
  in
  let (_ : int) = Unix.write_substring sock req 0 (String.length req) in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read sock chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    end
  in
  drain ();
  Buffer.contents buf

let status_of response =
  match String.split_on_char ' ' response with
  | _http :: code :: _ -> int_of_string_opt code
  | _ -> None

let body_of response =
  let n = String.length response in
  let rec find i =
    if i + 4 > n then None
    else if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub response i (n - i)
  | None -> ""

let test_http_endpoints =
  with_registry (fun () ->
      Metrics.add (Metrics.counter "http.requests") 3;
      Metrics.set (Metrics.gauge "http.depth") 0.5;
      let h = Metrics.histogram "http.lat" in
      List.iter (Metrics.observe h) [ 1.0; 2.0; 300.0 ];
      let srv = Http.serve ~port:0 () in
      Fun.protect ~finally:(fun () -> Http.stop srv) @@ fun () ->
      let port = Http.port srv in
      Alcotest.(check bool) "kernel assigned a port" true (port > 0);
      let health = http_get port "/healthz" in
      Alcotest.(check (option int)) "healthz 200" (Some 200) (status_of health);
      (* /healthz is JSON now: status, build version, start time, uptime. *)
      (match Json.parse_opt (body_of health) with
       | None -> Alcotest.failf "healthz body is not JSON: %S" (body_of health)
       | Some j ->
         Alcotest.(check (option string)) "healthz status"
           (Some "ok")
           (match Json.member "status" j with
            | Some (Json.Str s) -> Some s
            | _ -> None);
         Alcotest.(check (option string)) "healthz version"
           (Some Build_info.version)
           (match Json.member "version" j with
            | Some (Json.Str s) -> Some s
            | _ -> None);
         Alcotest.(check bool) "healthz uptime present" true
           (match Json.member "uptime_s" j with
            | Some (Json.Num u) -> u >= 0.
            | _ -> false));
      (* build.info: constant-1 gauge labeled with the version. *)
      Alcotest.(check bool) "build.info labeled gauge" true
        (has_sub (body_of (http_get port "/metrics"))
           (Printf.sprintf "build_info{version=\"%s\"} 1" Build_info.version));
      let metrics = http_get port "/metrics" in
      Alcotest.(check (option int)) "metrics 200" (Some 200)
        (status_of metrics);
      let body = body_of metrics in
      check_prometheus_text "GET /metrics" body;
      Alcotest.(check bool) "served the live counter" true
        (has_sub body "http_requests 3");
      let spans = http_get port "/spans" in
      Alcotest.(check (option int)) "spans 200" (Some 200) (status_of spans);
      (* The ring may be empty, but whatever comes back must be JSONL:
         every non-empty line parses as a JSON object. *)
      List.iter
        (fun line ->
          if line <> "" && Json.parse_opt line = None then
            Alcotest.failf "GET /spans: invalid JSONL line %S" line)
        (String.split_on_char '\n' (body_of spans));
      Alcotest.(check (option int)) "unknown path is 404" (Some 404)
        (status_of (http_get port "/nope"));
      (* Routing corner cases, via the socket-free unit surface. *)
      Alcotest.(check (option int)) "POST rejected" (Some 405)
        (status_of (Http.response_for "POST /metrics HTTP/1.1\r\n\r\n"));
      Alcotest.(check (option int)) "garbage rejected" (Some 400)
        (status_of (Http.response_for "??"));
      Alcotest.(check (option int)) "query string ignored" (Some 200)
        (status_of (Http.response_for "GET /healthz?x=1 HTTP/1.1\r\n\r\n")))

(* /spans?last=N: the ring is served newest-N-capped (default
   Http.default_spans_last) and the header owns up to the truncation. *)
let test_spans_last_cap =
  with_registry (fun () ->
      Recorder.clear ();
      Recorder.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Recorder.set_enabled false;
          Recorder.clear ())
      @@ fun () ->
      for i = 1 to 10 do
        let sp = Span.start ~name:"cap.span" ~slot:i () in
        Span.finish sp ~slot:i
      done;
      let srv = Http.serve ~port:0 () in
      Fun.protect ~finally:(fun () -> Http.stop srv) @@ fun () ->
      let port = Http.port srv in
      let entries body =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
      in
      let all = entries (body_of (http_get port "/spans")) in
      let total = List.length all - 1 (* minus header *) in
      Alcotest.(check bool) "spans recorded" true (total >= 10);
      let capped = entries (body_of (http_get port "/spans?last=3")) in
      Alcotest.(check int) "capped to header + 3" 4 (List.length capped);
      (match Json.parse_opt (List.hd capped) with
       | None -> Alcotest.fail "capped header is not JSON"
       | Some h ->
         Alcotest.(check (option int)) "entries counts what is served"
           (Some 3)
           (Option.bind (Json.member "entries" h) Json.to_int);
         Alcotest.(check (option int)) "total_entries reports the ring"
           (Some total)
           (Option.bind (Json.member "total_entries" h) Json.to_int));
      (* a nonsense value falls back to the default cap, not unbounded *)
      let fallback = entries (body_of (http_get port "/spans?last=-5")) in
      Alcotest.(check int) "negative last = default cap"
        (List.length all) (List.length fallback))

(* ---------------- timer ---------------- *)

let test_timer =
  with_registry (fun () ->
      (* Cons cells allocate on the minor heap (large arrays would go
         straight to the major heap and leave minor_words at 0). *)
      let x, span = Timer.time (fun () -> List.length (List.init 1000 Fun.id)) in
      Alcotest.(check int) "result passthrough" 1000 x;
      Alcotest.(check bool) "wall time non-negative" true (span.Timer.wall_s >= 0.);
      Alcotest.(check bool) "allocated" true (span.Timer.minor_words > 0.);
      ignore (Timer.record ~prefix:"test.span" (fun () -> ()));
      Alcotest.(check bool) "recorded histogram" true
        (Metrics.histogram_count (Metrics.histogram "test.span.ns") = 1))

(* ---------------- trace ring buffer ---------------- *)

let test_trace_eviction_keeps_newest () =
  let t = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.record t ~slot:i (Trace.Note (string_of_int i))
  done;
  let evs = Trace.events t in
  Alcotest.(check bool) "bounded" true (List.length evs <= 10);
  (* Newest entry always survives; retained slots are contiguous at the
     tail of the recorded sequence. *)
  let slots = List.map (fun e -> e.Trace.slot) evs in
  let newest = List.nth slots (List.length slots - 1) in
  Alcotest.(check int) "newest kept" 25 newest;
  let oldest = List.hd slots in
  Alcotest.(check (list int)) "contiguous tail"
    (List.init (List.length slots) (fun i -> oldest + i))
    slots;
  Alcotest.(check int) "dropped accounts for the rest"
    (25 - List.length slots) (Trace.dropped t)

let test_trace_full_capacity_stack_safety () =
  (* The default 100k-capacity buffer, filled to the brim: find_first and
     the eviction path must both be stack-safe. *)
  let t = Trace.create () in
  for i = 0 to 100_000 do
    Trace.record t ~slot:i (Trace.Note "x")
  done;
  (match Trace.find_first t (fun e -> e.Trace.slot mod 97 = 0) with
   | Some e -> Alcotest.(check int) "oldest match" 0 (e.Trace.slot mod 97)
   | None -> Alcotest.fail "expected a match");
  Alcotest.(check bool) "evicted half once" true (Trace.dropped t > 0)

let test_trace_jsonl () =
  let t = Trace.create () in
  Trace.record t ~slot:3 (Trace.Bcast { node = 1; msg = 9 });
  Trace.record t ~slot:4 (Trace.Rcv { node = 2; msg = 9; from = 1 });
  let lines =
    String.split_on_char '\n' (String.trim (Trace.to_jsonl t))
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let first = Json.parse (List.hd lines) in
  Alcotest.(check (option string)) "event tag" (Some "bcast")
    (Option.bind (Json.member "ev" first) Json.to_string);
  Alcotest.(check (option int)) "slot field" (Some 3)
    (Option.bind (Json.member "slot" first) Json.to_int)

(* ---------------- engine hooks + instrumentation ---------------- *)

let cfg = Config.default

let test_run_on_slot () =
  let eng =
    Engine.create ~wake_on_receive:false
      (Sinr.create cfg (Placement.line ~n:2 ~spacing:5.))
  in
  Engine.wake eng 0;
  let slots_seen = ref [] in
  let deliveries_seen = ref 0 in
  let slots =
    Engine.run eng
      ~on_slot:(fun ~slot ds ->
        slots_seen := slot :: !slots_seen;
        deliveries_seen := !deliveries_seen + List.length ds)
      ~decide:(fun _ -> Engine.Transmit "m")
      ~stop:(fun () -> false)
      ~max_slots:7
  in
  Alcotest.(check int) "slots executed" 7 slots;
  Alcotest.(check (list int)) "on_slot fired in order" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.rev !slots_seen);
  Alcotest.(check int) "deliveries threaded" (Engine.delivery_total eng)
    !deliveries_seen

let test_engine_counters =
  with_registry (fun () ->
      let eng =
        Engine.create ~wake_on_receive:false
          (Sinr.create cfg (Placement.line ~n:2 ~spacing:5.))
      in
      Engine.wake eng 0;
      for _ = 1 to 5 do
        ignore (Engine.step eng ~decide:(fun _ -> Engine.Transmit "m"))
      done;
      let peek n = Option.value ~default:0 (Metrics.counter_peek n) in
      Alcotest.(check int) "engine.slots" 5 (peek "engine.slots");
      Alcotest.(check int) "engine.tx" 5 (peek "engine.tx");
      Alcotest.(check int) "engine.deliveries" 5 (peek "engine.deliveries");
      Alcotest.(check int) "engine.wakeups" 1 (peek "engine.wakeups");
      let h = Metrics.histogram "engine.slot_deliveries" in
      Alcotest.(check int) "slot histogram count" 5
        (Metrics.histogram_count h))

(* ---------------- slot-phase profiler ---------------- *)

let test_profile_report =
  with_registry (fun () ->
      Alcotest.(check bool) "no profiled slots -> no report" true
        (Profile.report () = None);
      let slots = 60 in
      Profile.with_enabled (fun () ->
          let eng =
            Engine.create ~wake_on_receive:false
              (Sinr.create cfg (Placement.line ~n:2 ~spacing:5.))
          in
          Engine.wake eng 0;
          for _ = 1 to slots do
            ignore (Engine.step eng ~decide:(fun _ -> Engine.Transmit "m"))
          done);
      Alcotest.(check bool) "profiler left disabled" false
        (Profile.is_enabled ());
      match Profile.report () with
      | None -> Alcotest.fail "expected a report"
      | Some r ->
        Alcotest.(check int) "every stepped slot profiled" slots
          r.Profile.slots;
        Alcotest.(check bool) "wall time measured" true (r.Profile.step_ns > 0.);
        Alcotest.(check (list string)) "stage rows in order"
          [ "decide"; "perturb"; "resolve"; "delivery"; "telemetry"; "other" ]
          (List.map (fun row -> row.Profile.r_stage) r.Profile.rows);
        List.iter
          (fun row ->
            Alcotest.(check bool) (row.Profile.r_stage ^ " share >= 0") true
              (row.Profile.r_share >= 0.))
          r.Profile.rows;
        let total_share =
          List.fold_left (fun acc row -> acc +. row.Profile.r_share) 0.
            r.Profile.rows
        in
        if not (total_share >= 99.9 && total_share <= 105.0) then
          Alcotest.failf "stage shares sum to %.2f%%, expected ~100%%"
            total_share;
        (* The per-stage histograms flow through the normal snapshot. *)
        Alcotest.(check int) "profile.step.ns in the registry" slots
          (Metrics.histogram_count (Metrics.histogram "profile.step.ns")))

(* ---------------- instrumented approx-progress smoke ---------------- *)

let test_approg_instrumented_smoke =
  with_registry (fun () ->
      let rng = Rng.create 77 in
      let pts =
        Placement.uniform rng ~n:40 ~box:(Box.square ~side:25.) ~min_dist:1.
      in
      let sinr = Sinr.create cfg pts in
      let lambda = Sinr_phys.Induced.lambda cfg pts in
      let sched =
        Sinr_mac.Params.schedule cfg ~lambda Sinr_mac.Params.default_approg
      in
      let senders = List.filter (fun v -> v mod 2 = 0) (List.init 40 Fun.id) in
      let _samples, _machine =
        Sinr_mac.Measure.approx_progress_only sinr ~rng:(Rng.create 78)
          ~senders
          ~max_slots:(2 * sched.Sinr_mac.Params.epoch_slots)
      in
      let peek n = Option.value ~default:0 (Metrics.counter_peek n) in
      let slots = peek "engine.slots" in
      let tx = peek "engine.tx" in
      let deliveries = peek "engine.deliveries" in
      let epochs = peek "approg.epochs" in
      let phases = peek "approg.phases" in
      Alcotest.(check bool) "ran some slots" true (slots > 0);
      Alcotest.(check bool) "transmitted" true (tx > 0);
      Alcotest.(check bool) "delivered" true (deliveries > 0);
      Alcotest.(check bool) "at least one epoch" true (epochs >= 1);
      (* Slot accounting: completed phases fit in the slots executed (each
         phase costs phase_slots engine slots), with one-epoch slack for
         the epoch begun at machine creation. *)
      Alcotest.(check bool) "phases consistent with slots" true
        (phases * sched.Sinr_mac.Params.phase_slots
         <= slots + sched.Sinr_mac.Params.epoch_slots);
      Alcotest.(check bool) "epochs consistent with slots" true
        ((epochs - 1) * sched.Sinr_mac.Params.epoch_slots <= slots);
      (* A transmission is decoded by at most (n-1) listeners (and under
         beta > 1 at most one sender is decodable per listener per slot). *)
      Alcotest.(check bool) "deliveries bounded by tx fan-out" true
        (deliveries <= tx * 39);
      Alcotest.(check bool) "engine totals agree with metrics" true
        (deliveries <= slots * 40);
      (* The per-slot delivery histogram covered every slot. *)
      Alcotest.(check int) "delivery histogram count = slots" slots
        (Metrics.histogram_count (Metrics.histogram "engine.slot_deliveries")))

let suite =
  [ Alcotest.test_case "disabled registry is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
    Alcotest.test_case "histogram point mass" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "reset_for_tests isolates cases" `Quick
      test_reset_for_tests;
    Alcotest.test_case "multi-domain stress (exact totals)" `Quick
      test_multi_domain_stress;
    Alcotest.test_case "shard merge matches single domain" `Quick
      test_shard_merge_matches_single_domain;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json numbers (exponents, infinities)" `Quick
      test_json_numbers;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "json trailing garbage" `Quick
      test_json_trailing_garbage;
    Alcotest.test_case "quantile estimator monotone" `Quick
      test_estimate_quantile_monotone;
    Alcotest.test_case "atomic write_file" `Quick test_atomic_write_file;
    Alcotest.test_case "snapshot jsonl round-trip" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
    Alcotest.test_case "labeled metrics (intern, split, exposition)" `Quick
      test_labels;
    Alcotest.test_case "span ambient context stamps job_id" `Quick
      test_span_context;
    Alcotest.test_case "procstat ticker gauges" `Quick test_procstat_ticker;
    Alcotest.test_case "/spans?last cap" `Quick test_spans_last_cap;
    Alcotest.test_case "prometheus hardening (escapes, one header per family)"
      `Quick test_prometheus_hardening;
    Alcotest.test_case "http /metrics /healthz /spans endpoints" `Quick
      test_http_endpoints;
    Alcotest.test_case "timer spans" `Quick test_timer;
    Alcotest.test_case "trace eviction keeps newest" `Quick
      test_trace_eviction_keeps_newest;
    Alcotest.test_case "trace 100k stack safety" `Quick
      test_trace_full_capacity_stack_safety;
    Alcotest.test_case "trace jsonl export" `Quick test_trace_jsonl;
    Alcotest.test_case "run on_slot hook" `Quick test_run_on_slot;
    Alcotest.test_case "engine counters" `Quick test_engine_counters;
    Alcotest.test_case "profile report (shares sum to ~100%)" `Quick
      test_profile_report;
    Alcotest.test_case "instrumented approg smoke" `Quick
      test_approg_instrumented_smoke ]
