(* Command-line driver for the SINR local-broadcast stack.

   Subcommands:
     profile    build a deployment and print its induced-graph profile
     smb        run global single-message broadcast (ours + baselines)
     cons       run network-wide consensus
     approg     measure approximate progress on a deployment
     chaos      run the absMAC under adversarial channels/faults (lib/chaos)
     exp        run a named bench experiment (same ids as bench/main.exe)
     obs        run an instrumented workload and print the metric snapshot
     phys       check the physics fast path against the seed kernel
     scale      run the large-n engine workload and gate slots/s + peak RSS
     serve      run the sweep daemon (job queue, WAL, SSE event streams)
     watch      follow one daemon job live over its SSE event stream
     trace-report  analyze a flight-recorder dump against the theorem bounds
     profile-report  profile where slot time goes, per engine stage

   The run subcommands take --serve PORT: the run executes with telemetry
   enabled and an embedded HTTP server on 127.0.0.1:PORT serving GET
   /metrics (Prometheus text of the live snapshot), /healthz and /spans
   for its duration, so long sweeps can be scraped mid-flight.

   The run subcommands take --phys-farfield EPS: opt into the grid-pruned
   far-field interference mode with relative error bound EPS (DESIGN.md
   "Physics fast path"; default is the exact kernel).

   The run subcommands take --metrics-out FILE: the run executes with the
   telemetry registry enabled and its final snapshot is written to FILE as
   one JSONL object (see DESIGN.md "Observability").  --prometheus-out
   FILE additionally renders the same snapshot as Prometheus text, and
   --trace-out FILE arms the causal tracing layer (Span/Recorder) and
   dumps the flight-recorder ring to FILE after the run — feed that file
   to `sinr_sim trace-report`.

   They also take --jobs N, which sets the worker-domain count of the
   shared [Sinr_par.Pool] used by the Monte-Carlo and sweep kernels
   (default: $SINR_JOBS, else the recommended domain count; N=1 is the
   legacy sequential path).  Outputs are bit-identical for every N — see
   DESIGN.md "Parallel execution". *)

open Cmdliner
open Sinr_geom
open Sinr_phys
open Sinr_expt
open Sinr_obs

(* ---------------- shared arguments ---------------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let degree_arg =
  Arg.(value & opt int 8
       & info [ "degree" ] ~docv:"DEG"
           ~doc:"Target strong-graph degree of the uniform deployment.")

let range_arg =
  Arg.(value & opt float 12.0
       & info [ "range" ] ~docv:"R" ~doc:"Transmission range R (sets Lambda).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable telemetry for the run and write the final metric \
                 snapshot to $(docv) as one JSONL object.")

let prom_out_arg =
  Arg.(value & opt (some string) None
       & info [ "prometheus-out" ] ~docv:"FILE"
           ~doc:"Enable telemetry for the run and write the final snapshot \
                 to $(docv) as Prometheus text exposition.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable causal tracing (spans + flight recorder) for the \
                 run and dump the recorder ring to $(docv) as JSONL; \
                 analyze it with $(b,sinr_sim trace-report).")

let serve_arg =
  Arg.(value & opt (some int) None
       & info [ "serve" ] ~docv:"PORT"
           ~doc:"Serve live observability over HTTP on 127.0.0.1:$(docv) \
                 for the duration of the run: $(b,GET /metrics) (Prometheus \
                 text of the live snapshot), $(b,/healthz), and $(b,/spans) \
                 (flight-recorder ring as JSONL). Implies telemetry. \
                 $(docv)=0 lets the kernel pick a free port (printed).")

let serve_port_file_arg =
  Arg.(value & opt (some string) None
       & info [ "serve-port-file" ] ~docv:"PATH"
           ~doc:"With $(b,--serve), write the bound port number to $(docv) \
                 (atomic temp+rename) once the server is up — the reliable \
                 way to find the kernel-picked port of $(b,--serve 0).")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains for parallel kernels (Monte-Carlo \
                 reliability, experiment sweeps). $(docv)=1 forces the \
                 legacy sequential path; the default comes from \
                 $(b,SINR_JOBS), else the recommended domain count. \
                 Results are bit-identical whatever $(docv) is.")

(* The --jobs flag lands in the shared-pool default, which every parallel
   kernel downstream (Sweep grids, Reliability.estimate) picks up. *)
let set_jobs = function
  | None -> ()
  | Some j -> Sinr_par.Pool.set_default_jobs j

let farfield_arg =
  Arg.(value & opt (some float) None
       & info [ "phys-farfield" ] ~docv:"EPS"
           ~doc:"Opt into the grid-pruned far-field interference mode: \
                 distant senders are aggregated per grid cell with relative \
                 interference error at most $(docv) (in (0,1)). The default \
                 is the exact kernel.")

(* The flag lands in the Phys_tuning knob, which every Sinr.create from
   here on captures. *)
let set_farfield = function
  | None -> ()
  | Some eps ->
    (try Phys_tuning.set_farfield (Some eps)
     with Invalid_argument _ ->
       Fmt.epr "sinr_sim: --phys-farfield expects EPS in (0, 1), got %g@." eps;
       Stdlib.exit 2)

(* Probe that [path] is creatable/writable before a (possibly long) run so
   a bad path fails fast instead of discarding the finished simulation's
   output.  Append mode: no truncation of an existing file. *)
let probe_writable path =
  match open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path with
  | oc -> close_out_noerr oc
  | exception Sys_error e ->
    Fmt.epr "sinr_sim: cannot write output: %s@." e;
    Stdlib.exit 1

(* Start the embedded observability server (when --serve was given) and
   say where it listens; the caller stops it when the run is over.  The
   port file (--serve-port-file) is written atomically after the bind, so
   a watcher that sees the file can connect immediately. *)
let start_server ?handler ?port_file = function
  | None -> None
  | Some port ->
    (match Http.serve ?handler ~port () with
     | s ->
       Fmt.pr "[serving /metrics /healthz /spans on http://127.0.0.1:%d]@."
         (Http.port s);
       Option.iter
         (fun path ->
           Sink.write_file path (string_of_int (Http.port s) ^ "\n");
           Fmt.pr "[port written: %s]@." path)
         port_file;
       Some s
     | exception Unix.Unix_error (e, _, _) ->
       Fmt.epr "sinr_sim: cannot serve on port %d: %s@." port
         (Unix.error_message e);
       Stdlib.exit 1)

(* Run [f] with telemetry/tracing per the output flags — and, with --serve,
   the live HTTP endpoint up for the duration — then write the metric
   snapshot (JSONL and/or Prometheus) and the flight-recorder dump to
   their files. *)
let with_obs ~label ~metrics_out ~prom_out ~trace_out ~serve ?serve_port_file
    f =
  let need_metrics =
    metrics_out <> None || prom_out <> None || serve <> None
  in
  if not (need_metrics || trace_out <> None) then f ()
  else begin
    List.iter
      (fun o -> Option.iter probe_writable o)
      [ metrics_out; prom_out; trace_out;
        (if serve <> None then serve_port_file else None) ];
    if need_metrics then begin
      Metrics.reset ();
      Metrics.set_enabled true
    end;
    if trace_out <> None then begin
      Recorder.clear ();
      Recorder.set_enabled true
    end;
    let server = start_server ?port_file:serve_port_file serve in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Http.stop server;
        Metrics.set_enabled false;
        Recorder.set_enabled false)
      f;
    if need_metrics then begin
      let snap = Metrics.snapshot () in
      Option.iter
        (fun path ->
          Sink.write_snapshot ~label path snap;
          Fmt.pr "[metrics written: %s]@." path)
        metrics_out;
      Option.iter
        (fun path ->
          Sink.write_file path (Sink.snapshot_to_prometheus snap);
          Fmt.pr "[prometheus written: %s]@." path)
        prom_out
    end;
    Option.iter
      (fun path ->
        let p = Recorder.dump ~path ~reason:label () in
        Fmt.pr "[trace written: %s]@." p)
      trace_out
  end

let deployment ~seed ~n ~degree ~range =
  let config = Config.with_range ~range () in
  Workloads.uniform ~config (Rng.create seed) ~n ~target_degree:degree

let pp_profile (d : Workloads.deployment) =
  let p = d.Workloads.profile in
  Fmt.pr "deployment %s@." d.Workloads.name;
  Fmt.pr "  config        %a@." Config.pp (Sinr.config d.Workloads.sinr);
  Fmt.pr "  Lambda        %.2f@." p.Induced.lambda;
  Fmt.pr "  Delta(G1-e)   %d@." p.Induced.strong_degree;
  Fmt.pr "  D(G1-e)       %d@." p.Induced.strong_diameter;
  Fmt.pr "  D(G1-2e)      %d@." p.Induced.approx_diameter;
  Fmt.pr "  connected     %b@."
    (Sinr_graph.Components.is_connected p.Induced.strong)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run seed n degree range = pp_profile (deployment ~seed ~n ~degree ~range) in
  Cmd.v
    (Cmd.info "profile" ~doc:"Build a deployment and print its profile.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg)

(* ---------------- smb ---------------- *)

let smb_cmd =
  let run seed n degree range farfield metrics_out prom_out trace_out jobs
      serve serve_port_file =
    set_jobs jobs;
    set_farfield farfield;
    with_obs ~label:"smb" ~metrics_out ~prom_out ~trace_out ~serve
      ?serve_port_file
    @@ fun () ->
    let d = deployment ~seed ~n ~degree ~range in
    pp_profile d;
    let budget = 40_000_000 in
    let ours =
      Sinr_proto.Global.smb d.Workloads.sinr
        ~rng:(Rng.create (seed + 1))
        ~source:0 ~max_slots:budget
    in
    (match ours.Sinr_proto.Global.completed with
     | Some t -> Fmt.pr "ours (Thm 12.7):   %d slots@." t
     | None ->
       Fmt.pr "ours (Thm 12.7):   timeout (%d/%d reached)@."
         ours.Sinr_proto.Global.reached n);
    let dgkn =
      Sinr_proto.Dgkn_broadcast.run d.Workloads.sinr
        ~rng:(Rng.create (seed + 2))
        ~source:0 ~max_slots:budget
    in
    (match dgkn.Sinr_proto.Dgkn_broadcast.completed with
     | Some t -> Fmt.pr "dgkn [14]:         %d slots@." t
     | None -> Fmt.pr "dgkn [14]:         timeout@.");
    let decay =
      Sinr_proto.Decay_flood.run d.Workloads.sinr
        ~rng:(Rng.create (seed + 3))
        ~source:0 ~max_slots:budget
    in
    match decay.Sinr_proto.Decay_flood.completed with
    | Some t -> Fmt.pr "decay-flood [32]:  %d slots@." t
    | None -> Fmt.pr "decay-flood [32]:  timeout@."
  in
  Cmd.v
    (Cmd.info "smb"
       ~doc:"Global single-message broadcast: ours vs the baselines.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ farfield_arg
          $ metrics_out_arg $ prom_out_arg $ trace_out_arg $ jobs_arg
          $ serve_arg $ serve_port_file_arg)

(* ---------------- cons ---------------- *)

let cons_cmd =
  let crashes_arg =
    Arg.(value & opt int 0
         & info [ "crashes" ] ~docv:"K" ~doc:"Crash K nodes mid-run.")
  in
  let run seed n degree range crashes farfield metrics_out prom_out trace_out
      jobs serve serve_port_file =
    set_jobs jobs;
    set_farfield farfield;
    with_obs ~label:"cons" ~metrics_out ~prom_out ~trace_out ~serve
      ?serve_port_file
    @@ fun () ->
    let d = deployment ~seed ~n ~degree ~range in
    pp_profile d;
    let rng = Rng.create (seed + 10) in
    let initial = Array.init n (fun _ -> Rng.bool rng) in
    let faults =
      if crashes = 0 then Sinr_engine.Fault.none
      else
        Sinr_engine.Fault.random_crashes (Rng.split rng ~key:1) ~n
          ~count:crashes ~horizon:10_000 ~protect:[]
    in
    let diameter = d.Workloads.profile.Induced.strong_diameter in
    let r =
      Sinr_proto.Global.cons d.Workloads.sinr ~rng:(Rng.split rng ~key:2)
        ~initial ~faults
        ~rounds_bound:(2 * (diameter + 1))
        ~max_slots:200_000_000
    in
    (match r.Sinr_proto.Global.completed with
     | Some t -> Fmt.pr "completed in %d slots@." t
     | None -> Fmt.pr "timeout@.");
    Fmt.pr "agreement=%b validity=%b deciders=%d crashed=%d@."
      r.Sinr_proto.Global.agreement r.Sinr_proto.Global.validity
      r.Sinr_proto.Global.deciders r.Sinr_proto.Global.crashed
  in
  Cmd.v
    (Cmd.info "cons" ~doc:"Network-wide consensus over the absMAC.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ crashes_arg
          $ farfield_arg $ metrics_out_arg $ prom_out_arg $ trace_out_arg
          $ jobs_arg $ serve_arg $ serve_port_file_arg)

(* ---------------- approg ---------------- *)

let approg_cmd =
  let run seed n degree range farfield metrics_out prom_out trace_out jobs
      serve serve_port_file =
    set_jobs jobs;
    set_farfield farfield;
    with_obs ~label:"approg" ~metrics_out ~prom_out ~trace_out ~serve
      ?serve_port_file
    @@ fun () ->
    let d = deployment ~seed ~n ~degree ~range in
    pp_profile d;
    let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
    let sched =
      Sinr_mac.Params.schedule
        (Sinr.config d.Workloads.sinr)
        ~lambda:d.Workloads.profile.Induced.lambda
        Sinr_mac.Params.default_approg
    in
    Fmt.pr "epoch layout: Phi=%d T=%d mis_rounds=%d data=%d epoch=%d slots@."
      sched.Sinr_mac.Params.phi sched.Sinr_mac.Params.t
      sched.Sinr_mac.Params.mis_rounds sched.Sinr_mac.Params.data_slots
      sched.Sinr_mac.Params.epoch_slots;
    let samples, machine =
      Sinr_mac.Measure.approx_progress_only d.Workloads.sinr
        ~rng:(Rng.create (seed + 4))
        ~senders
        ~max_slots:(6 * sched.Sinr_mac.Params.epoch_slots)
    in
    let ok = List.filter (fun s -> s.Sinr_mac.Measure.delay <> None) samples in
    Fmt.pr "listeners with a broadcasting G~-neighbor: %d@."
      (List.length samples);
    Fmt.pr "progressed: %d (%.0f%%), drops=%d@." (List.length ok)
      (100.
       *. float_of_int (List.length ok)
       /. float_of_int (max 1 (List.length samples)))
      (Sinr_mac.Approx_progress.drops_total machine);
    match List.filter_map (fun s -> s.Sinr_mac.Measure.delay) samples with
    | [] -> ()
    | ds ->
      let arr = Array.of_list (List.map float_of_int ds) in
      Fmt.pr "delays: %a@." Sinr_stats.Summary.pp
        (Sinr_stats.Summary.of_samples arr)
  in
  Cmd.v
    (Cmd.info "approg"
       ~doc:"Measure approximate progress of Algorithm 9.1 on a deployment.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ farfield_arg
          $ metrics_out_arg $ prom_out_arg $ trace_out_arg $ jobs_arg
          $ serve_arg $ serve_port_file_arg)

(* ---------------- chaos ---------------- *)

(* One adversarial scenario (lib/chaos) on the uniform deployment: even
   nodes broadcast through the retry wrapper while the requested
   adversaries run; prints the degradation report.  The full sweep with
   curves is `sinr_sim exp chaos` (or bench/main.exe chaos). *)
let chaos_cmd =
  let jam_arg =
    Arg.(value & opt float 0.
         & info [ "jam" ] ~docv:"DUTY"
             ~doc:"Jamming duty-cycle in [0,1]: fraction of each 64-slot \
                   window jammed (noise x40) at a random phase.")
  in
  let fading_arg =
    Arg.(value & opt float 0.
         & info [ "fading" ] ~docv:"SIGMA"
             ~doc:"Log-normal fading: per-slot per-link gain multiplier \
                   exp($(docv)*N(0,1)).")
  in
  let crash_frac_arg =
    Arg.(value & opt float 0.
         & info [ "crash-frac" ] ~docv:"F"
             ~doc:"Crash a random $(docv) fraction of the nodes at random \
                   slots within the first f_ack window.")
  in
  let downtime_arg =
    Arg.(value & opt int 0
         & info [ "downtime" ] ~docv:"SLOTS"
             ~doc:"Crashed nodes recover after $(docv) slots (0 = never).")
  in
  let abort_rate_arg =
    Arg.(value & opt float 0.
         & info [ "abort-rate" ] ~docv:"P"
             ~doc:"Per-slot probability that each busy node's broadcast is \
                   adversarially aborted.")
  in
  let run seed n degree jam fading crash_frac downtime abort_rate farfield
      metrics_out prom_out trace_out jobs serve serve_port_file =
    set_jobs jobs;
    set_farfield farfield;
    with_obs ~label:"chaos" ~metrics_out ~prom_out ~trace_out ~serve
      ?serve_port_file
    @@ fun () ->
    let spec =
      { Exp_chaos.clean with
        Exp_chaos.jam_duty = jam;
        fading_sigma = fading;
        crash_frac;
        crash_downtime = downtime;
        abort_rate }
    in
    let o = Exp_chaos.run_scenario ~n ~degree ~seed spec in
    Fmt.pr "adversaries: jam=%.2f fading=%.2f crash=%.2f(down %d) abort=%.3f@."
      jam fading crash_frac downtime abort_rate;
    Fmt.pr "acked %d/%d (gave up %d, unfinished %d) in %d slots@."
      o.Exp_chaos.o_acked o.Exp_chaos.o_senders o.Exp_chaos.o_gave_up
      o.Exp_chaos.o_unfinished o.Exp_chaos.o_slots;
    if o.Exp_chaos.o_acked > 0 then
      Fmt.pr "ack latency: mean %.1f max %d slots@." o.Exp_chaos.o_ack_mean
        o.Exp_chaos.o_ack_max;
    Fmt.pr "approx progress: %d/%d listeners" o.Exp_chaos.o_approg_done
      o.Exp_chaos.o_approg_watched;
    if o.Exp_chaos.o_approg_done > 0 then
      Fmt.pr ", mean %.1f slots" o.Exp_chaos.o_approg_mean;
    Fmt.pr "@.";
    Fmt.pr "retries: %d reissues, %d timeouts; chaos: %d forced aborts, %d \
            crashes@."
      o.Exp_chaos.o_reissues o.Exp_chaos.o_timeouts
      o.Exp_chaos.o_forced_aborts o.Exp_chaos.o_crashes;
    Fmt.pr "spec: %d late acks, %d aborted, %d/%d progress violations@."
      o.Exp_chaos.o_late_acks o.Exp_chaos.o_aborted
      o.Exp_chaos.o_prog_violations o.Exp_chaos.o_prog_checks
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the absMAC under adversarial channel conditions and \
             faults, and report the degradation.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ jam_arg $ fading_arg
          $ crash_frac_arg $ downtime_arg $ abort_rate_arg $ farfield_arg
          $ metrics_out_arg $ prom_out_arg $ trace_out_arg $ jobs_arg
          $ serve_arg $ serve_port_file_arg)

(* ---------------- exp ---------------- *)

let exp_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID"
             ~doc:"Experiment id (table1-ack, fig1-progress-lb, \
                   table1-approg, thm8-decay, table2-smb, table1-mmb, \
                   table1-cons, ablation, mac-compare, capacity, chaos).")
  in
  let run id metrics_out prom_out trace_out jobs serve serve_port_file =
    set_jobs jobs;
    with_obs ~label:("exp:" ^ id) ~metrics_out ~prom_out ~trace_out ~serve
      ?serve_port_file
    @@ fun () ->
    match id with
    | "table1-ack" -> ignore (Exp_ack.run ())
    | "fig1-progress-lb" -> ignore (Exp_progress_lb.run ())
    | "table1-approg" ->
      ignore (Exp_approg.run_density ());
      ignore (Exp_approg.run_eps ())
    | "thm8-decay" -> ignore (Exp_decay_lb.run ())
    | "table2-smb" ->
      ignore (Exp_smb.run_diameter ());
      ignore (Exp_smb.run_lambda ());
      ignore (Exp_smb.run_size ())
    | "table1-mmb" -> ignore (Exp_mmb.run ())
    | "table1-cons" ->
      ignore (Exp_cons.run ());
      ignore (Exp_cons.run_crashes ())
    | "ablation" -> ignore (Exp_ablation.run ())
    | "mac-compare" -> ignore (Exp_mac_compare.run ())
    | "capacity" -> ignore (Exp_capacity.run ())
    | "chaos" -> ignore (Exp_chaos.run ~out:"BENCH_chaos.json" ())
    | other ->
      Fmt.epr "unknown experiment %S@." other;
      exit 2
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run a named experiment (see DESIGN.md index).")
    Term.(const run $ id_arg $ metrics_out_arg $ prom_out_arg $ trace_out_arg
          $ jobs_arg $ serve_arg $ serve_port_file_arg)

(* ---------------- obs ---------------- *)

(* Run the full Algorithm 11.1 stack under telemetry on a standard workload
   (simultaneous broadcasts from every even node, run to the last ack) and
   print the snapshot.  This exercises every instrumented layer: engine
   slot accounting, B.1 acknowledgments on even slots, the Algorithm 9.1
   epoch machinery on odd slots, and the MAC's ack bookkeeping. *)
let obs_cmd =
  let format_arg =
    Arg.(value
         & opt (enum [ ("pretty", `Pretty); ("json", `Json); ("prom", `Prom) ])
             `Pretty
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Snapshot rendering: $(b,pretty) (aligned table), \
                   $(b,json) (one JSONL object), or $(b,prom) \
                   (Prometheus text exposition).")
  in
  let slots_arg =
    Arg.(value & opt int 200_000
         & info [ "max-slots" ] ~docv:"SLOTS"
             ~doc:"Slot budget for the instrumented workload.")
  in
  let run seed n degree range format max_slots metrics_out prom_out trace_out
      serve serve_port_file =
    List.iter (Option.iter probe_writable) [ metrics_out; prom_out; trace_out ];
    let d = deployment ~seed ~n ~degree ~range in
    let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
    Metrics.reset ();
    Metrics.set_enabled true;
    if trace_out <> None then begin
      Recorder.clear ();
      Recorder.set_enabled true
    end;
    let server = start_server ?port_file:serve_port_file serve in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Http.stop server;
        Metrics.set_enabled false;
        Recorder.set_enabled false)
      (fun () ->
        ignore
          (Sinr_mac.Measure.acks d.Workloads.sinr
             ~rng:(Rng.create (seed + 4))
             ~senders ~max_slots));
    let snap = Metrics.snapshot () in
    (match format with
     | `Pretty -> Fmt.pr "%a" Sink.pp_snapshot snap
     | `Json -> print_string (Sink.snapshot_to_jsonl ~label:"obs" snap)
     | `Prom -> print_string (Sink.snapshot_to_prometheus snap));
    (match metrics_out with
     | None -> ()
     | Some path ->
       Sink.write_snapshot ~label:"obs" path snap;
       Fmt.pr "[metrics written: %s]@." path);
    (match prom_out with
     | None -> ()
     | Some path ->
       Sink.write_file path (Sink.snapshot_to_prometheus snap);
       Fmt.pr "[prometheus written: %s]@." path);
    match trace_out with
    | None -> ()
    | Some path ->
      ignore (Recorder.dump ~path ~reason:"obs" ());
      Fmt.pr "[trace written: %s]@." path
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:"Run an instrumented absMAC workload and print the telemetry \
             snapshot.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ format_arg
          $ slots_arg $ metrics_out_arg $ prom_out_arg $ trace_out_arg
          $ serve_arg $ serve_port_file_arg)

(* ---------------- trace-report ---------------- *)

(* Offline analysis of a flight-recorder dump: per-message f_ack / f_approg
   latencies with percentiles against the bounds the MAC recorded into the
   mac.bcast span attributes, plus the Algorithm 9.1 epoch/phase timeline
   for any message that exceeded them.  --strict turns flagged messages
   into a non-zero exit for CI. *)
let trace_report_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"Flight-recorder JSONL dump (from --trace-out or a \
                   flight-*.jsonl written on violation/crash).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit 1 when any message exceeds its ack or progress \
                   bound.")
  in
  let job_filter_arg =
    Arg.(value & opt (some int) None
         & info [ "job" ] ~docv:"ID"
             ~doc:"Only analyze spans/events carrying a job_id attribute \
                   equal to $(docv) (daemon jobs stamp every span with \
                   their id).")
  in
  (* Daemon attempts stamp every span/event with a job_id; --job narrows
     a mixed dump (several jobs through one process) to one job's story. *)
  let filter_job id (tr : Trace_report.trace) =
    let has fields =
      match List.assoc_opt "job_id" fields with
      | Some j -> Json.to_int j = Some id
      | None -> false
    in
    { tr with
      Trace_report.spans =
        List.filter
          (fun (s : Trace_report.span_rec) -> has s.Trace_report.s_attrs)
          tr.Trace_report.spans;
      events =
        List.filter
          (fun (e : Trace_report.event_rec) -> has e.Trace_report.e_fields)
          tr.Trace_report.events }
  in
  let run file strict job =
    match Trace_report.load_file file with
    | exception Sys_error msg ->
      Fmt.epr "sinr_sim trace-report: %s@." msg;
      exit 2
    | exception Json.Parse_error msg ->
      Fmt.epr "sinr_sim trace-report: %s: malformed JSON: %s@." file msg;
      exit 2
    | exception Failure msg ->
      Fmt.epr "sinr_sim trace-report: %s@." msg;
      exit 2
    | trace ->
      let trace =
        match job with None -> trace | Some id -> filter_job id trace
      in
      let r = Trace_report.analyze trace in
      Fmt.pr "%a" Trace_report.pp r;
      if strict && Trace_report.flagged r > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:"Analyze a flight-recorder dump: per-message ack/progress \
             latency percentiles against the Thm 5.1 / Thm 9.1 bounds.")
    Term.(const run $ file_arg $ strict_arg $ job_filter_arg)

(* ---------------- phys ---------------- *)

(* Self-check of the physics fast path (DESIGN.md "Physics fast path"):
   resolve the same random slots through the cached kernel and through the
   seed kernel (Sinr.resolve_reference) and demand bit-identical outcomes;
   then a small throughput sample and, when --phys-farfield is given, the
   observed far-field interference error against its eps bound.  Exits 1 on
   any mismatch, so `make phys-smoke` can gate CI on it. *)
let phys_cmd =
  let cases_arg =
    Arg.(value & opt int 80
         & info [ "cases" ] ~docv:"K"
             ~doc:"Number of random slots to check for equivalence.")
  in
  let run seed n degree range cases farfield metrics_out prom_out trace_out
      jobs serve serve_port_file =
    set_jobs jobs;
    set_farfield farfield;
    with_obs ~label:"phys" ~metrics_out ~prom_out ~trace_out ~serve
      ?serve_port_file
    @@ fun () ->
    let d = deployment ~seed ~n ~degree ~range in
    let sinr = d.Workloads.sinr in
    let n = Sinr.n sinr in
    let rng = Rng.create (seed + 20) in
    let slot_senders case =
      let r = Rng.split rng ~key:case in
      List.filter (fun _ -> Rng.bernoulli r 0.3) (List.init n Fun.id)
    in
    (* Equivalence: exact unless the far-field mode was requested. *)
    let mismatches = ref 0 and checked = ref 0 in
    for case = 0 to cases - 1 do
      let senders = slot_senders case in
      if senders <> [] then begin
        incr checked;
        if Sinr.resolve sinr ~senders <> Sinr.resolve_reference sinr ~senders
        then incr mismatches
      end
    done;
    let exact = farfield = None in
    Fmt.pr "equivalence: %d/%d slots %s (%d mismatch%s)@." (!checked - !mismatches)
      !checked
      (if exact then "bit-identical to the seed kernel"
       else "compared against the exact kernel")
      !mismatches
      (if !mismatches = 1 then "" else "es");
    (* Far-field error sample: the observed relative interference error
       must stay within the advertised eps bound. *)
    (match Sinr.farfield sinr with
     | None -> ()
     | Some ff ->
       let worst = ref 0. in
       for case = 0 to min 19 (cases - 1) do
         let senders = slot_senders case in
         if senders <> [] then
           for u = 0 to n - 1 do
             if not (List.mem u senders) then begin
               let exact =
                 Sinr.interference_at sinr ~senders ~at:(Sinr.points sinr).(u)
               in
               let approx = Farfield.interference ff ~receiver:u ~senders in
               if exact > 0. then
                 worst := Float.max !worst (Float.abs (approx -. exact) /. exact)
             end
           done
       done;
       Fmt.pr "farfield: eps=%.3f threshold=%.1f cell=%.1f observed max \
               relative interference error %.4f@."
         (Farfield.eps ff) (Farfield.threshold ff) (Farfield.cell_size ff)
         !worst;
       if !worst > Farfield.eps ff then begin
         Fmt.epr "sinr_sim phys: far-field error exceeds its eps bound@.";
         Stdlib.exit 1
       end);
    (* Throughput sample: cached kernel vs seed kernel on one busy slot. *)
    let senders = List.filter (fun v -> v mod 4 = 0) (List.init n Fun.id) in
    let rate f =
      f ();
      let rec go reps =
        let t = Unix.gettimeofday () in
        for _ = 1 to reps do f () done;
        let dt = Unix.gettimeofday () -. t in
        if dt >= 0.2 then float_of_int reps /. dt else go (reps * 4)
      in
      go 1
    in
    let cached = rate (fun () -> ignore (Sinr.resolve sinr ~senders)) in
    let reference =
      rate (fun () -> ignore (Sinr.resolve_reference sinr ~senders))
    in
    Fmt.pr "throughput: n=%d |S|=%d cached %.0f slots/s, seed %.0f slots/s \
            (%.1fx)@."
      n (List.length senders) cached reference (cached /. reference);
    let cache = Sinr.gain_cache sinr in
    Fmt.pr "gain cache: %d/%d rows resident, %d bytes (cap admits %d rows)@."
      (Gain_cache.rows_cached cache)
      n
      (Gain_cache.bytes_cached cache)
      (Gain_cache.max_rows cache);
    if !mismatches > 0 then begin
      Fmt.epr "sinr_sim phys: fast path diverged from the seed kernel@.";
      Stdlib.exit 1
    end
  in
  Cmd.v
    (Cmd.info "phys"
       ~doc:"Check the physics fast path against the seed kernel (exit 1 \
             on divergence) and sample its throughput.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ cases_arg
          $ farfield_arg $ metrics_out_arg $ prom_out_arg $ trace_out_arg
          $ jobs_arg $ serve_arg $ serve_port_file_arg)

(* ---------------- scale ---------------- *)

(* The million-node smoke (DESIGN.md §15): stream a uniform deployment
   straight into position columns, run the engine on the auto-installed
   sparse resolution path, and print slot throughput and the process RSS
   high-water mark.  --assert-slots-per-s / --assert-rss-mb turn the two
   numbers into exit-1 gates, so `make scale-smoke` can hold the scale
   floor in CI. *)
let scale_cmd =
  let scale_n_arg =
    Arg.(value & opt int 100_000
         & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let slots_arg =
    Arg.(value & opt int 50
         & info [ "slots" ] ~docv:"S" ~doc:"Slots to run.")
  in
  let assert_rate_arg =
    Arg.(value & opt (some float) None
         & info [ "assert-slots-per-s" ] ~docv:"RATE"
             ~doc:"Exit 1 unless the run sustains at least $(docv) slots \
                   per second.")
  in
  let assert_rss_arg =
    Arg.(value & opt (some float) None
         & info [ "assert-rss-mb" ] ~docv:"MB"
             ~doc:"Exit 1 if the process peak RSS (VmHWM) exceeds $(docv) \
                   MiB.")
  in
  let run seed n slots assert_rate assert_rss =
    if n < 2 then begin
      Fmt.epr "sinr_sim scale: --n must be at least 2@.";
      Stdlib.exit 2
    end;
    if slots < 1 then begin
      Fmt.epr "sinr_sim scale: --slots must be positive@.";
      Stdlib.exit 2
    end;
    let rng = Rng.create seed in
    let t0 = Unix.gettimeofday () in
    (* Constant density: ~20 in-range neighbours per node at R = 12. *)
    let side = 4.4 *. sqrt (float_of_int n) in
    let soa = Soa.create ~n in
    Placement.uniform_stream rng ~n ~box:(Box.square ~side) ~min_dist:1.
      ~set:(fun i ~x ~y -> Soa.set soa i ~x ~y)
      ~x:(Soa.x soa) ~y:(Soa.y soa);
    let sinr = Sinr.create_soa ~check:false Config.default soa in
    let eng = Sinr_engine.Engine.create sinr in
    Sinr_engine.Engine.wake_all eng;
    let setup_s = Unix.gettimeofday () -. t0 in
    (* Expected transmitters per slot: the scale bench's load curve. *)
    let senders = max 64 (min 1000 (n / 333)) in
    let p = float_of_int senders /. float_of_int n in
    let decide v =
      if Rng.hash_unit rng (Sinr_engine.Engine.slot eng) v < p then
        Sinr_engine.Engine.Transmit v
      else Sinr_engine.Engine.Listen
    in
    let t1 = Unix.gettimeofday () in
    for _ = 1 to slots do
      ignore (Sinr_engine.Engine.step eng ~decide)
    done;
    let run_s = Unix.gettimeofday () -. t1 in
    let rate = float_of_int slots /. Float.max run_s 1e-9 in
    let rss_mb = Procstat.peak_rss_mb () in
    Fmt.pr
      "scale: n=%d %d slots in %.2fs (%.1f slots/s)   setup %.2fs   tx %d \
       deliveries %d   sparse %b   peak RSS %s@."
      n slots run_s rate setup_s
      (Sinr_engine.Engine.tx_total eng)
      (Sinr_engine.Engine.delivery_total eng)
      (Sinr.sparse sinr <> None)
      (match rss_mb with
       | Some mb -> Fmt.str "%.0f MiB" mb
       | None -> "n/a");
    Option.iter
      (fun floor ->
        if rate < floor then begin
          Fmt.epr "sinr_sim scale: %.1f slots/s under the %.1f floor@." rate
            floor;
          Stdlib.exit 1
        end)
      assert_rate;
    Option.iter
      (fun cap ->
        match rss_mb with
        | None ->
          Fmt.epr "sinr_sim scale: --assert-rss-mb given but /proc is \
                   unavailable@.";
          Stdlib.exit 2
        | Some mb ->
          if mb > cap then begin
            Fmt.epr "sinr_sim scale: peak RSS %.0f MiB over the %.0f MiB \
                     cap@." mb cap;
            Stdlib.exit 1
          end)
      assert_rss
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Run the large-n engine workload (streamed placement, sparse \
             resolution) and gate its slot throughput and peak RSS.")
    Term.(const run $ seed_arg $ scale_n_arg $ slots_arg $ assert_rate_arg
          $ assert_rss_arg)

(* ---------------- serve ---------------- *)

(* Sweep-as-a-service: the lib/serve daemon behind the embedded HTTP
   server.  The accept domain answers the /jobs API (and the builtin
   /metrics /healthz /spans); this main loop runs the queued jobs one at a
   time through the checkpointing runner.  SIGINT/SIGTERM request a drain:
   the in-flight chunk of cells finishes, the checkpoint lands, the
   running job returns to Queued, the flight recorder is dumped, and the
   process exits 0 — a later `sinr_sim serve` in the same --dir resumes
   the job bit-identically from its checkpoint. *)
let serve_cmd =
  let port_arg =
    Arg.(value & opt int 0
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Listen on 127.0.0.1:$(docv); 0 (the default) lets the \
                   kernel pick a free port — read it from \
                   $(b,--serve-port-file).")
  in
  let dir_arg =
    Arg.(value & opt string "."
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory for job checkpoints and recorder dumps \
                   (created if missing).")
  in
  let queue_cap_arg =
    Arg.(value & opt int 8
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Admission cap: queued + running jobs beyond $(docv) are \
                   rejected with 429.")
  in
  let checkpoint_arg =
    Arg.(value & opt int 4
         & info [ "checkpoint-every" ] ~docv:"CELLS"
             ~doc:"Snapshot a running job's completed cells every $(docv) \
                   cells (atomic temp+rename JSONL).")
  in
  let wal_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "wal-dir" ] ~docv:"DIR"
             ~doc:"Directory for the write-ahead log (default: $(b,--dir)). \
                   Restarting with the same $(docv) replays the WAL and \
                   resumes in-flight jobs from their checkpoints.")
  in
  let deadline_arg =
    Arg.(value & opt float 0.
         & info [ "job-deadline" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget per job attempt; past it the attempt \
                   counts as a strike and is retried with backoff. 0 (the \
                   default) disables the deadline.")
  in
  let cell_timeout_arg =
    Arg.(value & opt float 0.
         & info [ "cell-timeout" ] ~docv:"SECONDS"
             ~doc:"Budget per sweep cell (enforced at cell completion); a \
                   cell past it fails the attempt. 0 (the default) \
                   disables the budget.")
  in
  let max_retries_arg =
    Arg.(value & opt int 2
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"Failed attempts beyond the first before a job is \
                   quarantined (parked as failed with a flight-recorder \
                   dump).")
  in
  let run port port_file dir wal_dir queue_cap checkpoint_every deadline
      cell_timeout max_retries jobs farfield =
    set_jobs jobs;
    set_farfield farfield;
    let wal_dir = Option.value wal_dir ~default:dir in
    List.iter
      (fun d ->
        try Unix.mkdir d 0o755 with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        | Unix.Unix_error (e, _, _) ->
          Fmt.epr "sinr_sim serve: cannot create %s: %s@." d
            (Unix.error_message e);
          Stdlib.exit 1)
      [ dir; wal_dir ];
    Option.iter probe_writable port_file;
    Metrics.reset ();
    Metrics.set_enabled true;
    Recorder.clear ();
    Recorder.configure ~dir ();
    Recorder.set_enabled true;
    (let armed = Sinr_chaos.Chaos.Failpoint.from_env () in
     if armed > 0 then Fmt.pr "[failpoints armed from env: %d]@." armed);
    let policy =
      { Sinr_serve.Supervisor.default_policy with
        Sinr_serve.Supervisor.deadline_s = deadline;
        cell_timeout_s = cell_timeout;
        max_retries }
    in
    let daemon =
      Sinr_serve.Daemon.create ~dir ~wal_dir ~max_queued:queue_cap
        ~checkpoint_every ~policy ()
    in
    (match Sinr_serve.Daemon.wal_recovery daemon with
     | `Clean -> ()
     | `Torn_tail -> Fmt.pr "[wal: torn final record skipped]@."
     | `Quarantined path ->
       Fmt.pr "[wal: corrupt log quarantined to %s; sound prefix kept]@." path);
    let recovered = Sinr_serve.Daemon.recovered daemon in
    if recovered > 0 then
      Fmt.pr "[wal: %d job%s recovered; resuming from checkpoints]@." recovered
        (if recovered = 1 then "" else "s");
    let server =
      match
        Http.serve
          ~handler:(Sinr_serve.Daemon.handler daemon)
          ~stream_handler:(Sinr_serve.Daemon.stream_handler daemon)
          ~port ()
      with
      | s -> s
      | exception Unix.Unix_error (e, _, _) ->
        Fmt.epr "sinr_sim serve: cannot serve on port %d: %s@." port
          (Unix.error_message e);
        Stdlib.exit 1
    in
    Fmt.pr
      "[serve: POST/GET /jobs, GET /jobs/:id[/table|/metrics|/events], \
       DELETE /jobs/:id, GET /events + /metrics /healthz /readyz /spans \
       on http://127.0.0.1:%d]@."
      (Http.port server);
    Option.iter
      (fun path ->
        Sink.write_file path (string_of_int (Http.port server) ^ "\n");
        Fmt.pr "[port written: %s]@." path)
      port_file;
    let drain _ = Sinr_serve.Daemon.request_drain daemon in
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    let reported = Hashtbl.create 16 in
    let report_finished () =
      List.iter
        (fun (j : Sinr_serve.Queue.job) ->
          let terminal =
            match j.Sinr_serve.Queue.state with
            | Sinr_serve.Queue.Done | Sinr_serve.Queue.Failed
            | Sinr_serve.Queue.Cancelled -> true
            | _ -> false
          in
          if terminal && not (Hashtbl.mem reported j.Sinr_serve.Queue.id)
          then begin
            Hashtbl.replace reported j.Sinr_serve.Queue.id ();
            Fmt.pr "[job %d %s: %d/%d cells]@." j.Sinr_serve.Queue.id
              (Sinr_serve.Queue.state_name j.Sinr_serve.Queue.state)
              j.Sinr_serve.Queue.cells_done j.Sinr_serve.Queue.cells_total
          end)
        (Sinr_serve.Queue.jobs (Sinr_serve.Daemon.queue daemon))
    in
    while not (Sinr_serve.Daemon.draining daemon) do
      if Sinr_serve.Daemon.step daemon then report_finished ()
      else (try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    report_finished ();
    let dump =
      Recorder.dump
        ~path:(Filename.concat dir "serve-drain.jsonl")
        ~reason:"serve-drain" ()
    in
    Fmt.pr "[drained; trace written: %s]@." dump;
    Http.stop server;
    Sinr_serve.Daemon.close daemon;
    Metrics.set_enabled false;
    Recorder.set_enabled false
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the sweep daemon: accept sweep specs over HTTP \
             (POST /jobs), run them under supervision (WAL, deadlines, \
             retries, quarantine), drain gracefully on SIGINT/SIGTERM and \
             resume bit-identically after a crash.")
    Term.(const run $ port_arg $ serve_port_file_arg $ dir_arg $ wal_dir_arg
          $ queue_cap_arg $ checkpoint_arg $ deadline_arg $ cell_timeout_arg
          $ max_retries_arg $ jobs_arg $ farfield_arg)

(* ---------------- watch ---------------- *)

(* Live view of one daemon job, driven purely by its SSE event stream
   (GET /jobs/:id/events): progress lines, rows as they land, retries
   and an ETA go to stderr; once the job is done the final table —
   byte-identical to GET /jobs/:id/table — is printed on stdout.  Exit
   codes: 0 done, 1 failed/quarantined/cancelled, 2 stream trouble. *)
let watch_cmd =
  let job_arg =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"JOB" ~doc:"Job id to watch.")
  in
  let port_arg =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT" ~doc:"Daemon port.")
  in
  let port_file_arg =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"PATH"
             ~doc:"Read the daemon port from $(docv) (the file written by \
                   $(b,sinr_sim serve --serve-port-file)).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Daemon host.")
  in
  let run job port port_file host =
    let port =
      match (port, port_file) with
      | Some p, _ -> p
      | None, Some path -> (
        match
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> input_line ic)
        with
        | line -> (
          match int_of_string_opt (String.trim line) with
          | Some p -> p
          | None ->
            Fmt.epr "sinr_sim watch: %s does not contain a port@." path;
            Stdlib.exit 2)
        | exception (Sys_error _ | End_of_file) ->
          Fmt.epr "sinr_sim watch: cannot read port from %s@." path;
          Stdlib.exit 2)
      | None, None ->
        Fmt.epr "sinr_sim watch: one of --port / --port-file is required@.";
        Stdlib.exit 2
    in
    let t0 = Unix.gettimeofday () in
    let total = ref 0 and cells_done = ref 0 and base = ref 0 in
    let sync_done body =
      match Option.bind (Json.member "cells_done" body) Json.to_int with
      | Some d -> cells_done := max !cells_done d
      | None -> ()
    in
    let eta () =
      let progressed = !cells_done - !base in
      if progressed > 0 && !total > !cells_done then
        let per_cell = (Unix.gettimeofday () -. t0) /. float_of_int progressed in
        Printf.sprintf ", eta %.0fs" (per_cell *. float_of_int (!total - !cells_done))
      else ""
    in
    let str k body =
      match Json.member k body with Some (Json.Str s) -> Some s | _ -> None
    in
    let on_event ~typ body =
      match typ with
      | "hello" ->
        (match Option.bind (Json.member "cells_total" body) Json.to_int with
         | Some t -> total := t
         | None -> ());
        sync_done body;
        base := !cells_done;
        Fmt.epr "[watch job %d: %s, %d/%d cells, %s]@." job
          (Option.value ~default:"?" (str "exp" body))
          !cells_done !total
          (Option.value ~default:"?" (str "state" body))
      | "cell" ->
        if str "phase" body = Some "done" then incr cells_done
      | "checkpoint" ->
        sync_done body;
        Fmt.epr "[%d/%d cells%s]@." !cells_done !total (eta ())
      | "row" -> (
        match
          ( Option.bind (Json.member "param" body) Json.to_int,
            Json.member "cells" body )
        with
        | Some p, Some (Json.List cs) ->
          Fmt.epr "[row param=%d: %d cells]@." p (List.length cs)
        | _ -> ())
      | "retry" ->
        Fmt.epr "[retry: attempt %d failed (%s)]@."
          (Option.value ~default:0
             (Option.bind (Json.member "attempt" body) Json.to_int))
          (Option.value ~default:"?" (str "error" body))
      | "quarantine" ->
        Fmt.epr "[quarantined: %s]@."
          (Option.value ~default:"?" (str "reason" body))
      | "state" -> (
        sync_done body;
        match str "state" body with
        | Some s -> Fmt.epr "[state: %s, %d/%d cells]@." s !cells_done !total
        | None -> ())
      | _ -> ()
    in
    match Sinr_serve.Watch.watch ~host ~on_event ~port ~job () with
    | Sinr_serve.Watch.Completed table ->
      print_string (Json.to_string_json table ^ "\n")
    | Sinr_serve.Watch.Failed { quarantined; error } ->
      Fmt.epr "sinr_sim watch: job %d %s: %s@." job
        (if quarantined then "quarantined" else "failed")
        error;
      Stdlib.exit 1
    | Sinr_serve.Watch.Cancelled ->
      Fmt.epr "sinr_sim watch: job %d cancelled@." job;
      Stdlib.exit 1
    | Sinr_serve.Watch.Stream_error msg ->
      Fmt.epr "sinr_sim watch: %s@." msg;
      Stdlib.exit 2
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Follow one daemon job live over its SSE event stream; print \
             progress to stderr and, once done, the final table (identical \
             to GET /jobs/:id/table) to stdout. Exits 1 on \
             failure/quarantine/cancel, 2 on stream trouble.")
    Term.(const run $ job_arg $ port_arg $ port_file_arg $ host_arg)

(* ---------------- profile-report ---------------- *)

(* Where does a slot's wall time go?  Runs the standard instrumented
   workload (even nodes broadcast through Algorithm 11.1 to the last ack)
   with the slot-phase profiler armed, then prints the per-stage table —
   share of slot time, p50/p99 per stage — aggregated from the
   [profile.*.ns] histograms.  The same rows flow through --metrics-out /
   --prometheus-out / --serve like any other metric. *)
let profile_report_cmd =
  let slots_arg =
    Arg.(value & opt int 50_000
         & info [ "max-slots" ] ~docv:"SLOTS"
             ~doc:"Slot budget for the profiled workload.")
  in
  let run seed n degree range max_slots farfield jobs serve serve_port_file
      metrics_out prom_out =
    set_jobs jobs;
    set_farfield farfield;
    List.iter (Option.iter probe_writable) [ metrics_out; prom_out ];
    let d = deployment ~seed ~n ~degree ~range in
    let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
    Metrics.reset ();
    let server = start_server ?port_file:serve_port_file serve in
    Fun.protect ~finally:(fun () -> Option.iter Http.stop server)
    @@ fun () ->
    Profile.with_enabled (fun () ->
        ignore
          (Sinr_mac.Measure.acks d.Workloads.sinr
             ~rng:(Rng.create (seed + 4))
             ~senders ~max_slots));
    match Profile.report () with
    | None ->
      Fmt.epr "sinr_sim profile-report: no slots were profiled@.";
      Stdlib.exit 1
    | Some r ->
      Fmt.pr "%a" Profile.pp_report r;
      let snap = Metrics.snapshot () in
      Option.iter
        (fun path ->
          Sink.write_snapshot ~label:"profile-report" path snap;
          Fmt.pr "[metrics written: %s]@." path)
        metrics_out;
      Option.iter
        (fun path ->
          Sink.write_file path (Sink.snapshot_to_prometheus snap);
          Fmt.pr "[prometheus written: %s]@." path)
        prom_out
  in
  Cmd.v
    (Cmd.info "profile-report"
       ~doc:"Profile an instrumented absMAC workload and print the \
             per-stage slot-time table (share, p50, p99).")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ slots_arg
          $ farfield_arg $ jobs_arg $ serve_arg $ serve_port_file_arg
          $ metrics_out_arg $ prom_out_arg)

let () =
  let doc = "Local broadcast layer for the SINR network model — simulator" in
  let info = Cmd.info "sinr_sim" ~version:Build_info.version ~doc in
  (* Cmdliner renders the one-letter node-count option as [-n]; the
     double-dash spelling [--n] is common enough to accept as an alias. *)
  let argv = Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [ profile_cmd; smb_cmd; cons_cmd; approg_cmd; chaos_cmd; exp_cmd;
            obs_cmd; phys_cmd; scale_cmd; serve_cmd; watch_cmd;
            trace_report_cmd; profile_report_cmd ]))
