(* Command-line driver for the SINR local-broadcast stack.

   Subcommands:
     profile    build a deployment and print its induced-graph profile
     smb        run global single-message broadcast (ours + baselines)
     cons       run network-wide consensus
     approg     measure approximate progress on a deployment
     exp        run a named bench experiment (same ids as bench/main.exe) *)

open Cmdliner
open Sinr_geom
open Sinr_phys
open Sinr_expt

(* ---------------- shared arguments ---------------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let degree_arg =
  Arg.(value & opt int 8
       & info [ "degree" ] ~docv:"DEG"
           ~doc:"Target strong-graph degree of the uniform deployment.")

let range_arg =
  Arg.(value & opt float 12.0
       & info [ "range" ] ~docv:"R" ~doc:"Transmission range R (sets Lambda).")

let deployment ~seed ~n ~degree ~range =
  let config = Config.with_range ~range () in
  Workloads.uniform ~config (Rng.create seed) ~n ~target_degree:degree

let pp_profile (d : Workloads.deployment) =
  let p = d.Workloads.profile in
  Fmt.pr "deployment %s@." d.Workloads.name;
  Fmt.pr "  config        %a@." Config.pp (Sinr.config d.Workloads.sinr);
  Fmt.pr "  Lambda        %.2f@." p.Induced.lambda;
  Fmt.pr "  Delta(G1-e)   %d@." p.Induced.strong_degree;
  Fmt.pr "  D(G1-e)       %d@." p.Induced.strong_diameter;
  Fmt.pr "  D(G1-2e)      %d@." p.Induced.approx_diameter;
  Fmt.pr "  connected     %b@."
    (Sinr_graph.Components.is_connected p.Induced.strong)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run seed n degree range = pp_profile (deployment ~seed ~n ~degree ~range) in
  Cmd.v
    (Cmd.info "profile" ~doc:"Build a deployment and print its profile.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg)

(* ---------------- smb ---------------- *)

let smb_cmd =
  let run seed n degree range =
    let d = deployment ~seed ~n ~degree ~range in
    pp_profile d;
    let budget = 40_000_000 in
    let ours =
      Sinr_proto.Global.smb d.Workloads.sinr
        ~rng:(Rng.create (seed + 1))
        ~source:0 ~max_slots:budget
    in
    (match ours.Sinr_proto.Global.completed with
     | Some t -> Fmt.pr "ours (Thm 12.7):   %d slots@." t
     | None ->
       Fmt.pr "ours (Thm 12.7):   timeout (%d/%d reached)@."
         ours.Sinr_proto.Global.reached n);
    let dgkn =
      Sinr_proto.Dgkn_broadcast.run d.Workloads.sinr
        ~rng:(Rng.create (seed + 2))
        ~source:0 ~max_slots:budget
    in
    (match dgkn.Sinr_proto.Dgkn_broadcast.completed with
     | Some t -> Fmt.pr "dgkn [14]:         %d slots@." t
     | None -> Fmt.pr "dgkn [14]:         timeout@.");
    let decay =
      Sinr_proto.Decay_flood.run d.Workloads.sinr
        ~rng:(Rng.create (seed + 3))
        ~source:0 ~max_slots:budget
    in
    match decay.Sinr_proto.Decay_flood.completed with
    | Some t -> Fmt.pr "decay-flood [32]:  %d slots@." t
    | None -> Fmt.pr "decay-flood [32]:  timeout@."
  in
  Cmd.v
    (Cmd.info "smb"
       ~doc:"Global single-message broadcast: ours vs the baselines.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg)

(* ---------------- cons ---------------- *)

let cons_cmd =
  let crashes_arg =
    Arg.(value & opt int 0
         & info [ "crashes" ] ~docv:"K" ~doc:"Crash K nodes mid-run.")
  in
  let run seed n degree range crashes =
    let d = deployment ~seed ~n ~degree ~range in
    pp_profile d;
    let rng = Rng.create (seed + 10) in
    let initial = Array.init n (fun _ -> Rng.bool rng) in
    let faults =
      if crashes = 0 then Sinr_engine.Fault.none
      else
        Sinr_engine.Fault.random_crashes (Rng.split rng ~key:1) ~n
          ~count:crashes ~horizon:10_000 ~protect:[]
    in
    let diameter = d.Workloads.profile.Induced.strong_diameter in
    let r =
      Sinr_proto.Global.cons d.Workloads.sinr ~rng:(Rng.split rng ~key:2)
        ~initial ~faults
        ~rounds_bound:(2 * (diameter + 1))
        ~max_slots:200_000_000
    in
    (match r.Sinr_proto.Global.completed with
     | Some t -> Fmt.pr "completed in %d slots@." t
     | None -> Fmt.pr "timeout@.");
    Fmt.pr "agreement=%b validity=%b deciders=%d crashed=%d@."
      r.Sinr_proto.Global.agreement r.Sinr_proto.Global.validity
      r.Sinr_proto.Global.deciders r.Sinr_proto.Global.crashed
  in
  Cmd.v
    (Cmd.info "cons" ~doc:"Network-wide consensus over the absMAC.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg $ crashes_arg)

(* ---------------- approg ---------------- *)

let approg_cmd =
  let run seed n degree range =
    let d = deployment ~seed ~n ~degree ~range in
    pp_profile d;
    let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
    let sched =
      Sinr_mac.Params.schedule
        (Sinr.config d.Workloads.sinr)
        ~lambda:d.Workloads.profile.Induced.lambda
        Sinr_mac.Params.default_approg
    in
    Fmt.pr "epoch layout: Phi=%d T=%d mis_rounds=%d data=%d epoch=%d slots@."
      sched.Sinr_mac.Params.phi sched.Sinr_mac.Params.t
      sched.Sinr_mac.Params.mis_rounds sched.Sinr_mac.Params.data_slots
      sched.Sinr_mac.Params.epoch_slots;
    let samples, machine =
      Sinr_mac.Measure.approx_progress_only d.Workloads.sinr
        ~rng:(Rng.create (seed + 4))
        ~senders
        ~max_slots:(6 * sched.Sinr_mac.Params.epoch_slots)
    in
    let ok = List.filter (fun s -> s.Sinr_mac.Measure.delay <> None) samples in
    Fmt.pr "listeners with a broadcasting G~-neighbor: %d@."
      (List.length samples);
    Fmt.pr "progressed: %d (%.0f%%), drops=%d@." (List.length ok)
      (100.
       *. float_of_int (List.length ok)
       /. float_of_int (max 1 (List.length samples)))
      (Sinr_mac.Approx_progress.drops_total machine);
    match List.filter_map (fun s -> s.Sinr_mac.Measure.delay) samples with
    | [] -> ()
    | ds ->
      let arr = Array.of_list (List.map float_of_int ds) in
      Fmt.pr "delays: %a@." Sinr_stats.Summary.pp
        (Sinr_stats.Summary.of_samples arr)
  in
  Cmd.v
    (Cmd.info "approg"
       ~doc:"Measure approximate progress of Algorithm 9.1 on a deployment.")
    Term.(const run $ seed_arg $ n_arg $ degree_arg $ range_arg)

(* ---------------- exp ---------------- *)

let exp_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID"
             ~doc:"Experiment id (table1-ack, fig1-progress-lb, \
                   table1-approg, thm8-decay, table2-smb, table1-mmb, \
                   table1-cons, ablation, mac-compare, capacity).")
  in
  let run id =
    match id with
    | "table1-ack" -> ignore (Exp_ack.run ())
    | "fig1-progress-lb" -> ignore (Exp_progress_lb.run ())
    | "table1-approg" ->
      ignore (Exp_approg.run_density ());
      ignore (Exp_approg.run_eps ())
    | "thm8-decay" -> ignore (Exp_decay_lb.run ())
    | "table2-smb" ->
      ignore (Exp_smb.run_diameter ());
      ignore (Exp_smb.run_lambda ());
      ignore (Exp_smb.run_size ())
    | "table1-mmb" -> ignore (Exp_mmb.run ())
    | "table1-cons" ->
      ignore (Exp_cons.run ());
      ignore (Exp_cons.run_crashes ())
    | "ablation" -> ignore (Exp_ablation.run ())
    | "mac-compare" -> ignore (Exp_mac_compare.run ())
    | "capacity" -> ignore (Exp_capacity.run ())
    | other ->
      Fmt.epr "unknown experiment %S@." other;
      exit 2
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run a named experiment (see DESIGN.md index).")
    Term.(const run $ id_arg)

let () =
  let doc = "Local broadcast layer for the SINR network model — simulator" in
  let info = Cmd.info "sinr_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ profile_cmd; smb_cmd; cons_cmd; approg_cmd; exp_cmd ]))
