(* Extended MIS machine tests: state-machine details, absorbing states,
   round accounting, driver contract. *)

open Sinr_graph
open Sinr_mis

let path n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let mk ?(stages = 2) ?(label_bits = 4) ~labels n =
  Sw_mis.create ~n ~participants:(List.init n Fun.id) ~labels ~label_bits
    ~stages

(* Drive one reliable round by hand over a graph. *)
let one_round g mis =
  for v = 0 to Graph.n g - 1 do
    match Sw_mis.outgoing mis v with
    | None -> ()
    | Some m ->
      Array.iter
        (fun u -> Sw_mis.deliver mis ~node:u ~payload:m)
        (Graph.neighbors g v)
  done;
  Sw_mis.advance mis

let test_dominator_absorbing () =
  let g = path 3 in
  let mis = mk ~labels:[| 1; 2; 3 |] 3 in
  Sw_mis.run_congest g mis;
  (* Node 0 (smallest label, endpoint) must be a dominator; feeding more
     rounds cannot change resolved states. *)
  let before = List.init 3 (fun v -> Sw_mis.status mis v) in
  one_round g mis;
  one_round g mis;
  let after = List.init 3 (fun v -> Sw_mis.status mis v) in
  Alcotest.(check bool) "states stable after finish" true (before = after)

let test_path_unique_labels_exact () =
  (* Labels 1..n on a path: the parallel election needn't match sequential
     greedy, but it must produce a maximal independent set containing the
     global minimum. *)
  let g = path 5 in
  let mis = mk ~labels:[| 1; 2; 3; 4; 5 |] 5 in
  Sw_mis.run_congest g mis;
  let doms = Sw_mis.dominators mis in
  Alcotest.(check bool) "is an MIS" true
    (Mis_check.is_mis g ~universe:[ 0; 1; 2; 3; 4 ] doms);
  Alcotest.(check bool) "global minimum elected" true (List.mem 0 doms)

let test_two_nodes_equal_labels_stall () =
  let g = path 2 in
  let mis = mk ~labels:[| 3; 3 |] 2 in
  Sw_mis.run_congest g mis;
  Alcotest.(check (list int)) "nobody elected under a perfect tie" []
    (Sw_mis.dominators mis);
  Alcotest.(check bool) "unresolved" false (Sw_mis.resolved mis)

let test_rounds_accounting () =
  let g = path 4 in
  let mis = mk ~labels:[| 1; 2; 3; 4 |] 4 in
  let total = Sw_mis.total_rounds mis in
  for _ = 1 to total do
    Alcotest.(check bool) "not finished before total" false (Sw_mis.finished mis);
    one_round g mis
  done;
  Alcotest.(check bool) "finished exactly at total" true (Sw_mis.finished mis)

let test_beacons_from_resolved_nodes () =
  (* Dominated and dominator nodes keep beaconing (loss detectability). *)
  let g = path 3 in
  let mis = mk ~labels:[| 1; 2; 3 |] 3 in
  Sw_mis.run_congest g mis;
  for v = 0 to 2 do
    Alcotest.(check bool) "beacon present" true (Sw_mis.outgoing mis v <> None)
  done

let test_non_participant_silent () =
  let mis =
    Sw_mis.create ~n:3 ~participants:[ 0; 2 ] ~labels:[| 1; 9; 2 |]
      ~label_bits:4 ~stages:2
  in
  Alcotest.(check bool) "non-participant silent" true
    (Sw_mis.outgoing mis 1 = None)

let test_drop_is_absorbing_for_unresolved () =
  let g = path 4 in
  let mis = mk ~labels:[| 4; 3; 2; 1 |] 4 in
  Sw_mis.drop mis 1;
  Sw_mis.run_congest g mis;
  Alcotest.(check bool) "dropped never dominates" true
    (not (List.mem 1 (Sw_mis.dominators mis)))

(* Star graphs: the center or the leaves win depending on labels. *)
let test_star_center_wins () =
  let star = Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let mis = mk ~labels:[| 1; 5; 6; 7; 8 |] 5 in
  Sw_mis.run_congest star mis;
  Alcotest.(check (list int)) "center alone" [ 0 ]
    (List.sort compare (Sw_mis.dominators mis))

let test_star_leaves_win () =
  let star = Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let mis = mk ~labels:[| 9; 1; 2; 3; 4 |] 5 in
  Sw_mis.run_congest star mis;
  Alcotest.(check (list int)) "all leaves" [ 1; 2; 3; 4 ]
    (List.sort compare (Sw_mis.dominators mis))

let test_clique_with_tied_minimum () =
  (* A clique whose two smallest labels collide.  The tied pair cannot
     elect itself, but a third competitor's bit-reduced value can undercut
     the tie and resolve the clique — either way the outcome must be an
     independent set, and on a clique that means at most one dominator. *)
  let n = 8 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  let g = Graph.of_edges ~n !edges in
  let labels = [| 1; 1; 5; 6; 7; 8; 9; 10 |] in
  let mis = mk ~labels n in
  Sw_mis.run_congest g mis;
  let doms = Sw_mis.dominators mis in
  Alcotest.(check bool) "at most one dominator on a clique" true
    (List.length doms <= 1);
  Alcotest.(check bool) "independent" true (Mis_check.is_independent g doms);
  Alcotest.(check bool) "tied nodes never both elected" true
    (not (List.mem 0 doms && List.mem 1 doms))

let suite =
  [ Alcotest.test_case "dominator absorbing" `Quick test_dominator_absorbing;
    Alcotest.test_case "path unique labels exact" `Quick
      test_path_unique_labels_exact;
    Alcotest.test_case "equal labels stall" `Quick
      test_two_nodes_equal_labels_stall;
    Alcotest.test_case "rounds accounting" `Quick test_rounds_accounting;
    Alcotest.test_case "beacons from resolved nodes" `Quick
      test_beacons_from_resolved_nodes;
    Alcotest.test_case "non-participant silent" `Quick test_non_participant_silent;
    Alcotest.test_case "drop absorbing" `Quick test_drop_is_absorbing_for_unresolved;
    Alcotest.test_case "star center wins" `Quick test_star_center_wins;
    Alcotest.test_case "star leaves win" `Quick test_star_leaves_win;
    Alcotest.test_case "clique with tied minimum" `Quick
      test_clique_with_tied_minimum ]
