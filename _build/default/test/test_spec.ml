(* Spec conformance: recorded executions checked against the absMAC
   specification predicates (Section 4.4, Definition 12.2, Definition 7.1)
   via Spec_check — exactly on the ideal MAC, statistically on the SINR
   implementation. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_engine
open Sinr_mac

let cfg = Config.default

let path_graph n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let bounds =
  { Absmac_intf.f_ack = 15;
    f_prog = 4;
    f_approg = 4;
    eps_ack = 0.;
    eps_prog = 0.;
    eps_approg = 0. }

let run_ideal ?policy ~slots ~actions graph =
  let trace = Trace.create () in
  let mac = Ideal_mac.create ?policy ~trace graph ~bounds ~rng:(Rng.create 5) in
  actions mac;
  for _ = 1 to slots do
    Ideal_mac.step mac
  done;
  (trace, Ideal_mac.now mac)

let test_ideal_random_conforms () =
  let g = path_graph 6 in
  let trace, horizon =
    run_ideal ~slots:200 g ~actions:(fun mac ->
        ignore (Ideal_mac.bcast mac ~node:0 ~data:1);
        ignore (Ideal_mac.bcast mac ~node:3 ~data:2);
        ignore (Ideal_mac.bcast mac ~node:5 ~data:3))
  in
  let r =
    Spec_check.check trace ~graph:g ~f_ack:bounds.Absmac_intf.f_ack
      ~f_prog:bounds.Absmac_intf.f_prog ~horizon
  in
  Alcotest.(check int) "three broadcasts" 3 r.Spec_check.broadcasts;
  Alcotest.(check int) "all acked" 3 r.Spec_check.acked;
  Alcotest.(check int) "no late acks" 0 r.Spec_check.late_acks;
  Alcotest.(check int) "all nice" 0 r.Spec_check.not_nice;
  Alcotest.(check int) "no progress violations" 0
    r.Spec_check.progress_violations;
  Alcotest.(check bool) "progress was actually checked" true
    (r.Spec_check.progress_checks > 0)

let test_ideal_adversarial_conforms_tightly () =
  let g = path_graph 4 in
  let trace, horizon =
    run_ideal ~policy:Ideal_mac.Adversarial ~slots:100 g ~actions:(fun mac ->
        ignore (Ideal_mac.bcast mac ~node:1 ~data:1))
  in
  let r =
    Spec_check.check trace ~graph:g ~f_ack:bounds.Absmac_intf.f_ack
      ~f_prog:bounds.Absmac_intf.f_prog ~horizon
  in
  Alcotest.(check int) "no late acks" 0 r.Spec_check.late_acks;
  Alcotest.(check (list int)) "ack exactly at the bound"
    [ bounds.Absmac_intf.f_ack ] r.Spec_check.ack_delays;
  Alcotest.(check int) "nice even at the latest schedule" 0
    r.Spec_check.not_nice;
  Alcotest.(check int) "no progress violations" 0
    r.Spec_check.progress_violations

let test_ideal_abort_recorded () =
  let g = path_graph 3 in
  let trace, horizon =
    run_ideal ~slots:50 g ~actions:(fun mac ->
        ignore (Ideal_mac.bcast mac ~node:0 ~data:1);
        Ideal_mac.abort mac ~node:0)
  in
  let r =
    Spec_check.check trace ~graph:g ~f_ack:bounds.Absmac_intf.f_ack
      ~f_prog:bounds.Absmac_intf.f_prog ~horizon
  in
  Alcotest.(check int) "one broadcast" 1 r.Spec_check.broadcasts;
  Alcotest.(check int) "zero acked" 0 r.Spec_check.acked;
  Alcotest.(check int) "one aborted" 1 r.Spec_check.aborted

let test_spec_check_flags_violations () =
  (* Feed a hand-built bad trace: an ack later than f_ack with a missing
     neighbor rcv, and a long neighbor-activity window with no rcv. *)
  let g = path_graph 3 in
  let trace = Trace.create () in
  Trace.record trace ~slot:0 (Trace.Bcast { node = 1; msg = 0 });
  Trace.record trace ~slot:2 (Trace.Rcv { node = 0; msg = 0; from = 1 });
  (* neighbor 2 never receives; ack at 40 > f_ack = 15 *)
  Trace.record trace ~slot:40 (Trace.Ack { node = 1; msg = 0 });
  let r =
    Spec_check.check trace ~graph:g ~f_ack:15 ~f_prog:4 ~horizon:60
  in
  Alcotest.(check int) "late ack flagged" 1 r.Spec_check.late_acks;
  Alcotest.(check int) "not nice flagged" 1 r.Spec_check.not_nice;
  (* Node 2's window [0,40] of length >= f_prog has no rcv. *)
  Alcotest.(check bool) "progress violation flagged" true
    (r.Spec_check.progress_violations >= 1)

let test_violating_policy_is_caught () =
  (* The deliberately spec-breaking scheduler must light up every flag of
     the checker: a starved neighbor (not nice), a late ack, and a missed
     progress window. *)
  let g = path_graph 5 in
  let trace, horizon =
    run_ideal ~policy:(Ideal_mac.Violating 1.0) ~slots:200 g
      ~actions:(fun mac -> ignore (Ideal_mac.bcast mac ~node:2 ~data:1))
  in
  let r =
    Spec_check.check trace ~graph:g ~f_ack:bounds.Absmac_intf.f_ack
      ~f_prog:bounds.Absmac_intf.f_prog ~horizon
  in
  Alcotest.(check bool) "late ack flagged" true (r.Spec_check.late_acks >= 1);
  Alcotest.(check bool) "not nice flagged" true (r.Spec_check.not_nice >= 1);
  Alcotest.(check bool) "progress violation flagged" true
    (r.Spec_check.progress_violations >= 1)

let test_violating_policy_rate () =
  (* With violation probability ~1/2 over many broadcasts, both conforming
     and violating executions must appear. *)
  let g = path_graph 3 in
  let trace = Trace.create () in
  let mac =
    Ideal_mac.create ~policy:(Ideal_mac.Violating 0.5) ~trace g ~bounds
      ~rng:(Rng.create 17)
  in
  for i = 0 to 19 do
    ignore (Ideal_mac.bcast mac ~node:(i mod 3) ~data:i);
    for _ = 1 to 2 * bounds.Absmac_intf.f_ack do
      Ideal_mac.step mac
    done
  done;
  let r =
    Spec_check.check trace ~graph:g ~f_ack:bounds.Absmac_intf.f_ack
      ~f_prog:bounds.Absmac_intf.f_prog ~horizon:(Ideal_mac.now mac)
  in
  Alcotest.(check int) "all broadcasts tracked" 20 r.Spec_check.broadcasts;
  Alcotest.(check bool) "some nice" true (r.Spec_check.nice > 0);
  Alcotest.(check bool) "some not nice" true (r.Spec_check.not_nice > 0)

let test_combined_mac_statistical_conformance () =
  (* The SINR implementation, checked statistically: acks within the cap
     (always, by construction), most broadcasts nice, and approximate
     progress (checked against G_{1-2eps} with f_approg) mostly served. *)
  let rng = Rng.create 99 in
  let pts =
    Placement.uniform rng ~n:30 ~box:(Box.square ~side:20.) ~min_dist:1.
  in
  let sinr = Sinr.create cfg pts in
  let trace = Trace.create () in
  let mac = Combined_mac.create ~trace sinr ~rng:(Rng.split rng ~key:1) in
  let senders = [ 0; 6; 12; 18; 24 ] in
  List.iter (fun v -> ignore (Combined_mac.bcast mac ~node:v ~data:v)) senders;
  let outstanding () = List.exists (fun v -> Combined_mac.busy mac ~node:v) senders in
  let budget = ref ((Combined_mac.bounds mac).Absmac_intf.f_ack + 10) in
  while outstanding () && !budget > 0 do
    Combined_mac.step mac;
    decr budget
  done;
  let horizon = Combined_mac.now mac in
  let strong = Induced.strong cfg pts in
  let r =
    Spec_check.check trace ~graph:strong
      ~f_ack:(Combined_mac.bounds mac).Absmac_intf.f_ack
      ~f_prog:(Combined_mac.bounds mac).Absmac_intf.f_ack ~horizon
  in
  Alcotest.(check int) "all acked" (List.length senders) r.Spec_check.acked;
  Alcotest.(check int) "acks within the cap" 0 r.Spec_check.late_acks;
  Alcotest.(check bool) "most broadcasts nice (eps_ack = 0.1)" true
    (r.Spec_check.not_nice <= 1);
  (* Approximate progress against G~ with the f_approg bound. *)
  let approx = Induced.approx cfg pts in
  let ra =
    Spec_check.check trace ~graph:approx
      ~f_ack:(Combined_mac.bounds mac).Absmac_intf.f_ack
      ~f_prog:(Combined_mac.bounds mac).Absmac_intf.f_approg ~horizon
  in
  Alcotest.(check bool) "approx progress mostly served" true
    (ra.Spec_check.progress_violations
     <= max 1 (ra.Spec_check.progress_checks / 10))

let suite =
  [ Alcotest.test_case "ideal random conforms" `Quick test_ideal_random_conforms;
    Alcotest.test_case "ideal adversarial tight" `Quick
      test_ideal_adversarial_conforms_tightly;
    Alcotest.test_case "ideal abort recorded" `Quick test_ideal_abort_recorded;
    Alcotest.test_case "checker flags violations" `Quick
      test_spec_check_flags_violations;
    Alcotest.test_case "violating policy caught" `Quick
      test_violating_policy_is_caught;
    Alcotest.test_case "violating policy rate" `Quick
      test_violating_policy_rate;
    Alcotest.test_case "combined MAC statistical conformance" `Slow
      test_combined_mac_statistical_conformance ]
