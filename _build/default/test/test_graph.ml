(* Tests for the graph substrate. *)

open Sinr_geom
open Sinr_graph

let path n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

(* ---------------- Graph ---------------- *)

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (1, 2); (2, 2) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "edges deduped, self-loop dropped" 2 (Graph.num_edges g);
  Alcotest.(check bool) "mem 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "mem symmetric" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "no self loop" false (Graph.mem_edge g 2 2);
  Alcotest.(check bool) "absent" false (Graph.mem_edge g 0 3)

let test_degrees () =
  let g = path 5 in
  Alcotest.(check int) "endpoint degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "inner degree" 2 (Graph.degree g 2);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check int) "complete max degree" 4 (Graph.max_degree (complete 5))

let test_of_predicate () =
  let g = Graph.of_predicate ~n:6 (fun u v -> (u + v) mod 2 = 1) in
  Graph.iter_edges g (fun u v ->
      Alcotest.(check int) "parity edge" 1 ((u + v) mod 2));
  Alcotest.(check int) "bipartite count" 9 (Graph.num_edges g)

let test_induced () =
  let g = cycle 6 in
  let sub = Graph.induced g [ 0; 1; 2 ] in
  Alcotest.(check int) "kept edges" 2 (Graph.num_edges sub);
  Alcotest.(check bool) "cut edge gone" false (Graph.mem_edge sub 2 3);
  Alcotest.(check bool) "inner edge kept" true (Graph.mem_edge sub 0 1)

let test_union_subgraph () =
  let a = Graph.of_edges ~n:4 [ (0, 1) ] in
  let b = Graph.of_edges ~n:4 [ (2, 3) ] in
  let u = Graph.union a b in
  Alcotest.(check int) "union edges" 2 (Graph.num_edges u);
  Alcotest.(check bool) "a sub u" true (Graph.is_subgraph ~sub:a ~super:u);
  Alcotest.(check bool) "u not sub a" false (Graph.is_subgraph ~sub:u ~super:a)

(* ---------------- Bfs ---------------- *)

let test_bfs_distances () =
  let g = path 6 in
  let d = Bfs.distances g ~src:0 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4; 5 |] d

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let d = Bfs.distances g ~src:0 in
  Alcotest.(check bool) "unreachable" true (d.(3) = Bfs.unreachable);
  Alcotest.(check bool) "hop_distance none" true
    (Bfs.hop_distance g 0 3 = None)

let test_diameter () =
  Alcotest.(check int) "path diameter" 7 (Bfs.diameter (path 8));
  Alcotest.(check int) "cycle diameter" 4 (Bfs.diameter (cycle 8));
  Alcotest.(check int) "complete diameter" 1 (Bfs.diameter (complete 5));
  Alcotest.(check int) "isolated diameter" 0 (Bfs.diameter (Graph.empty 3))

let test_ball () =
  let g = path 7 in
  let b = List.sort compare (Bfs.ball g ~src:3 ~r:2) in
  Alcotest.(check (list int)) "ball r=2" [ 1; 2; 3; 4; 5 ] b;
  let b0 = Bfs.ball g ~src:3 ~r:0 in
  Alcotest.(check (list int)) "ball r=0 is self" [ 3 ] b0

let test_ball_of_set () =
  let g = path 10 in
  let b = List.sort compare (Bfs.ball_of_set g ~srcs:[ 0; 9 ] ~r:1) in
  Alcotest.(check (list int)) "two balls" [ 0; 1; 8; 9 ] b

(* ---------------- Components ---------------- *)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check int) "count" 3 (Components.count g);
  Alcotest.(check bool) "not connected" false (Components.is_connected g);
  Alcotest.(check bool) "path connected" true (Components.is_connected (path 4));
  let comps = Components.components g in
  Alcotest.(check int) "component list length" 3 (List.length comps)

let test_same_components () =
  let a = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  let b = Graph.of_edges ~n:5 [ (0, 2); (2, 1); (4, 3) ] in
  let c = Graph.of_edges ~n:5 [ (0, 1); (2, 3); (3, 4) ] in
  Alcotest.(check bool) "same partition" true (Components.same_components a b);
  Alcotest.(check bool) "different partition" false
    (Components.same_components a c)

(* ---------------- Mis_check ---------------- *)

let test_mis_check () =
  let g = path 5 in
  Alcotest.(check bool) "independent" true
    (Mis_check.is_independent g [ 0; 2; 4 ]);
  Alcotest.(check bool) "not independent" false
    (Mis_check.is_independent g [ 0; 1 ]);
  Alcotest.(check bool) "maximal" true
    (Mis_check.is_mis g ~universe:[ 0; 1; 2; 3; 4 ] [ 0; 2; 4 ]);
  Alcotest.(check bool) "not maximal" false
    (Mis_check.is_mis g ~universe:[ 0; 1; 2; 3; 4 ] [ 0 ]);
  Alcotest.(check (float 1e-9)) "coverage of {0}" 0.4
    (Mis_check.coverage g ~universe:[ 0; 1; 2; 3; 4 ] [ 0 ])

(* ---------------- Growth ---------------- *)

let test_growth_disc_graph () =
  let r = Rng.create 5 in
  let pts =
    Placement.uniform r ~n:120 ~box:(Box.square ~side:40.) ~min_dist:1.
  in
  let g =
    Graph.of_predicate ~n:120 (fun u v -> Point.dist pts.(u) pts.(v) <= 3.)
  in
  Alcotest.(check bool) "disc graph growth bounded (r=2)" true
    (Growth.check_bound g ~r:2);
  Alcotest.(check bool) "ball size bound (Lemma 4.2)" true
    (Growth.check_ball_size g ~r:2)

let test_greedy_independent () =
  let g = path 6 in
  let ind = Growth.greedy_independent g [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "independent" true (Mis_check.is_independent g ind);
  Alcotest.(check (list int)) "greedy picks evens" [ 0; 2; 4 ] ind

(* ---------------- Geo_metrics ---------------- *)

let test_lambda () =
  let pts = [| Point.make 0. 0.; Point.make 1. 0.; Point.make 5. 0. |] in
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check (float 1e-9)) "lambda = 4/1" 4.0 (Geo_metrics.lambda g pts);
  Alcotest.(check (float 1e-9)) "lambda_of_radius" 6.0
    (Geo_metrics.lambda_of_radius ~radius:6.0 pts);
  Alcotest.(check (float 1e-9)) "edgeless lambda" 1.0
    (Geo_metrics.lambda (Graph.empty 3) pts)

(* ---------------- properties ---------------- *)

let random_graph_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    let pair = map2 (fun a b -> (a mod n, b mod n)) (int_bound 1000) (int_bound 1000) in
    list_size (int_bound (2 * n)) pair >|= fun edges -> (n, edges))

let arb_random_graph =
  QCheck.make ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es)))
    random_graph_gen

let prop_bfs_triangle =
  QCheck.Test.make ~name:"bfs distances satisfy triangle inequality" ~count:100
    arb_random_graph (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let d0 = Bfs.distances g ~src:0 in
      let ok = ref true in
      Graph.iter_edges g (fun u v ->
          if d0.(u) <> Bfs.unreachable && d0.(v) <> Bfs.unreachable then
            if abs (d0.(u) - d0.(v)) > 1 then ok := false);
      !ok)

let prop_greedy_mis_is_mis =
  QCheck.Test.make ~name:"greedy independent set is maximal independent"
    ~count:100 arb_random_graph (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let universe = List.init n Fun.id in
      let ind = Growth.greedy_independent g universe in
      Mis_check.is_mis g ~universe ind)

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the nodes" ~count:100
    arb_random_graph (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let comps = Components.components g in
      let all = List.sort compare (List.concat comps) in
      all = List.init n Fun.id)

let suite =
  [ Alcotest.test_case "of_edges basic" `Quick test_of_edges_basic;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "of_predicate" `Quick test_of_predicate;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "union/subgraph" `Quick test_union_subgraph;
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "ball" `Quick test_ball;
    Alcotest.test_case "ball of set" `Quick test_ball_of_set;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "same components" `Quick test_same_components;
    Alcotest.test_case "mis check" `Quick test_mis_check;
    Alcotest.test_case "growth bounded disc graph" `Quick test_growth_disc_graph;
    Alcotest.test_case "greedy independent" `Quick test_greedy_independent;
    Alcotest.test_case "lambda" `Quick test_lambda;
    QCheck_alcotest.to_alcotest prop_bfs_triangle;
    QCheck_alcotest.to_alcotest prop_greedy_mis_is_mis;
    QCheck_alcotest.to_alcotest prop_components_partition ]
