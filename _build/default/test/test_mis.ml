(* Tests for the modified Schneider–Wattenhofer MIS. *)

open Sinr_geom
open Sinr_graph
open Sinr_mis

let test_log_star () =
  Alcotest.(check int) "log* 1" 0 (Log_star.log_star 1.);
  Alcotest.(check int) "log* 2" 1 (Log_star.log_star 2.);
  Alcotest.(check int) "log* 4" 2 (Log_star.log_star 4.);
  Alcotest.(check int) "log* 16" 3 (Log_star.log_star 16.);
  Alcotest.(check int) "log* 65536" 4 (Log_star.log_star 65536.);
  Alcotest.(check int) "log* 2^20" 5 (Log_star.log_star (2. ** 20.))

let test_bits () =
  Alcotest.(check int) "bits 0" 1 (Log_star.bits 0);
  Alcotest.(check int) "bits 1" 1 (Log_star.bits 1);
  Alcotest.(check int) "bits 7" 3 (Log_star.bits 7);
  Alcotest.(check int) "bits 8" 4 (Log_star.bits 8)

let test_labels () =
  let rng = Rng.create 2 in
  let labels = Labels.draw rng ~n:10 ~participants:[ 1; 3; 5 ] ~bits:8 in
  Alcotest.(check int) "non participant zero" 0 labels.(0);
  List.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (labels.(v) >= 1 && labels.(v) < 256))
    [ 1; 3; 5 ];
  let u = Labels.unique ~n:5 ~participants:[ 0; 2; 4 ] in
  Alcotest.(check bool) "unique labels distinct" true
    (List.sort_uniq compare [ u.(0); u.(2); u.(4) ] |> List.length = 3)

let test_bits_for_bounds () =
  let b = Labels.bits_for ~lambda:16. ~eps_approg:0.1 () in
  Alcotest.(check bool) "reasonable" true (b >= 4 && b <= 24)

(* Geometric growth-bounded test graph: a unit-disk style graph. *)
let disk_graph rng n side radius =
  let pts = Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1. in
  Graph.of_predicate ~n (fun u v -> Point.dist pts.(u) pts.(v) <= radius)

let run_mis ?(stages = 3) ~labels graph participants =
  let n = Graph.n graph in
  let label_bits =
    Array.fold_left (fun acc l -> max acc (Log_star.bits l)) 1 labels
  in
  let mis =
    Sw_mis.create ~n ~participants ~labels ~label_bits ~stages
  in
  Sw_mis.run_congest graph mis;
  mis

let test_mis_unique_labels_is_mis () =
  let rng = Rng.create 7 in
  for trial = 1 to 8 do
    let g = disk_graph (Rng.split rng ~key:trial) 60 25. 4. in
    let participants = List.init 60 Fun.id in
    let labels = Labels.unique ~n:60 ~participants in
    let mis = run_mis ~labels g participants in
    let doms = Sw_mis.dominators mis in
    Alcotest.(check bool) "independent" true (Mis_check.is_independent g doms);
    Alcotest.(check bool) "resolved with unique labels" true
      (Sw_mis.resolved mis);
    Alcotest.(check bool) "maximal" true
      (Mis_check.is_mis g ~universe:participants doms)
  done

let test_mis_random_labels_independent () =
  let rng = Rng.create 9 in
  for trial = 1 to 8 do
    let key = 100 + trial in
    let g = disk_graph (Rng.split rng ~key) 60 25. 4. in
    let participants = List.init 60 Fun.id in
    let labels =
      Labels.draw (Rng.split rng ~key:(200 + trial)) ~n:60 ~participants ~bits:12
    in
    let mis = run_mis ~labels g participants in
    let doms = Sw_mis.dominators mis in
    Alcotest.(check bool) "independent" true (Mis_check.is_independent g doms);
    (* Random 12-bit labels over 60 nodes: near-maximal with overwhelming
       probability; require decent coverage. *)
    Alcotest.(check bool) "coverage high" true
      (Mis_check.coverage g ~universe:participants doms > 0.9)
  done

let test_mis_adversarial_equal_labels () =
  (* All labels equal: everything ties; the set must stay independent (and
     will be empty or tiny), and unresolved nodes are ignored. *)
  let g = disk_graph (Rng.create 31) 30 18. 4. in
  let participants = List.init 30 Fun.id in
  let labels = Array.make 30 5 in
  let mis = run_mis ~labels g participants in
  let doms = Sw_mis.dominators mis in
  Alcotest.(check bool) "independent under collisions" true
    (Mis_check.is_independent g doms)

let test_mis_subset_participants () =
  let g = disk_graph (Rng.create 41) 50 22. 4. in
  let participants = List.filter (fun v -> v mod 2 = 0) (List.init 50 Fun.id) in
  let labels = Labels.unique ~n:50 ~participants in
  let mis = run_mis ~labels g participants in
  let doms = Sw_mis.dominators mis in
  List.iter
    (fun v ->
      Alcotest.(check bool) "dominators are participants" true (v mod 2 = 0))
    doms;
  Alcotest.(check bool) "independent" true (Mis_check.is_independent g doms);
  (* Maximal within the participant-induced subgraph. *)
  let sub = Graph.induced g participants in
  Alcotest.(check bool) "maximal among participants" true
    (Mis_check.is_mis sub ~universe:participants doms)

let test_mis_empty_graph () =
  let g = Graph.empty 5 in
  let participants = List.init 5 Fun.id in
  let labels = Labels.unique ~n:5 ~participants in
  let mis = run_mis ~labels g participants in
  Alcotest.(check (list int)) "all isolated nodes join" [ 0; 1; 2; 3; 4 ]
    (List.sort compare (Sw_mis.dominators mis))

let test_mis_drop_excludes () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let participants = [ 0; 1; 2 ] in
  let labels = Labels.unique ~n:3 ~participants in
  let mis =
    Sw_mis.create ~n:3 ~participants ~labels ~label_bits:4 ~stages:2
  in
  Sw_mis.drop mis 0;
  Sw_mis.run_congest g mis;
  Alcotest.(check bool) "dropped node not dominator" true
    (not (List.mem 0 (Sw_mis.dominators mis)));
  Alcotest.(check bool) "still independent" true
    (Mis_check.is_independent g (Sw_mis.dominators mis))

let test_mis_total_rounds_shape () =
  (* Runtime must scale with log* of the label range, not with n. *)
  let mk n bits =
    Sw_mis.create ~n ~participants:(List.init n Fun.id)
      ~labels:(Array.make n 1) ~label_bits:bits ~stages:3
  in
  let small = Sw_mis.total_rounds (mk 10 8) in
  let large_n = Sw_mis.total_rounds (mk 1000 8) in
  Alcotest.(check int) "independent of n" small large_n;
  let more_bits = Sw_mis.total_rounds (mk 10 24) in
  Alcotest.(check bool) "grows (mildly) with label bits" true
    (more_bits >= small)

let test_greedy_mis_oracle () =
  let g = disk_graph (Rng.create 51) 40 20. 4. in
  let universe = List.init 40 Fun.id in
  let mis = Greedy_mis.compute g ~universe in
  Alcotest.(check bool) "is mis" true (Mis_check.is_mis g ~universe mis)

let test_greedy_mis_priority () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let mis = Greedy_mis.compute ~priority:[| 5; 1; 5 |] g ~universe:[ 0; 1; 2 ] in
  Alcotest.(check (list int)) "lowest priority first" [ 1 ] mis

(* Property: independence holds for arbitrary graphs and arbitrary labels. *)
let prop_mis_always_independent =
  let gen =
    QCheck.Gen.(
      int_range 2 25 >>= fun n ->
      list_size (int_bound (2 * n))
        (map2 (fun a b -> (a mod n, b mod n)) (int_bound 1000) (int_bound 1000))
      >>= fun edges ->
      array_size (return n) (int_range 1 15) >|= fun labels ->
      (n, edges, labels))
  in
  QCheck.Test.make ~name:"sw_mis independent on arbitrary graphs/labels"
    ~count:150
    (QCheck.make gen)
    (fun (n, edges, labels) ->
      let g = Graph.of_edges ~n edges in
      let mis =
        Sw_mis.create ~n ~participants:(List.init n Fun.id) ~labels
          ~label_bits:4 ~stages:2
      in
      Sw_mis.run_congest g mis;
      Mis_check.is_independent g (Sw_mis.dominators mis))

let suite =
  [ Alcotest.test_case "log star" `Quick test_log_star;
    Alcotest.test_case "bits" `Quick test_bits;
    Alcotest.test_case "labels" `Quick test_labels;
    Alcotest.test_case "bits_for bounds" `Quick test_bits_for_bounds;
    Alcotest.test_case "unique labels give MIS" `Quick
      test_mis_unique_labels_is_mis;
    Alcotest.test_case "random labels independent + covering" `Quick
      test_mis_random_labels_independent;
    Alcotest.test_case "adversarial equal labels" `Quick
      test_mis_adversarial_equal_labels;
    Alcotest.test_case "subset participants" `Quick test_mis_subset_participants;
    Alcotest.test_case "empty graph" `Quick test_mis_empty_graph;
    Alcotest.test_case "drop excludes" `Quick test_mis_drop_excludes;
    Alcotest.test_case "total rounds shape" `Quick test_mis_total_rounds_shape;
    Alcotest.test_case "greedy mis oracle" `Quick test_greedy_mis_oracle;
    Alcotest.test_case "greedy mis priority" `Quick test_greedy_mis_priority;
    QCheck_alcotest.to_alcotest prop_mis_always_independent ]
