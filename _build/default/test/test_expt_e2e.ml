(* End-to-end smoke tests of every bench experiment at miniature scale:
   each must produce rows without raising, so bench/main.exe cannot rot.
   (Stdout output is produced; alcotest captures it per test.) *)

open Sinr_expt

let test_e1_ack () =
  let rows = Exp_ack.run ~seeds:[ 1 ] ~deltas:[ 4; 8 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "no timeout" true (r.Exp_ack.timeouts = 0);
      Alcotest.(check bool) "formula positive" true (r.Exp_ack.formula > 0.))
    rows;
  (* Bigger delta, bigger measured ack. *)
  match rows with
  | [ a; b ] ->
    let mean r =
      match r.Exp_ack.measured with
      | Some s -> s.Sinr_stats.Summary.mean
      | None -> 0.
    in
    Alcotest.(check bool) "monotone in delta" true (mean b > mean a)
  | _ -> Alcotest.fail "expected two rows"

let test_e3_approg_density () =
  let rows = Exp_approg.run_density ~seeds:[ 1 ] ~n:40 ~sides:[ 28.; 16. ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "success high" true (r.Exp_approg.approg_success > 0.7))
    rows

let test_e3_approg_eps () =
  let rows =
    Exp_approg.run_eps ~seeds:[ 1 ] ~n:30 ~side:18. ~epsilons:[ 0.3; 0.1 ] ()
  in
  (match rows with
   | [ loose; tight ] ->
     Alcotest.(check bool) "epoch grows as eps shrinks" true
       (tight.Exp_approg.epoch_slots > loose.Exp_approg.epoch_slots)
   | _ -> Alcotest.fail "expected two rows")

let test_e4_decay () =
  let rows = Exp_decay_lb.run ~seeds:[ 1 ] ~deltas:[ 32; 64 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "decay completed" 0 r.Exp_decay_lb.decay_timeouts;
      Alcotest.(check int) "approg completed" 0 r.Exp_decay_lb.approg_timeouts)
    rows

let test_e5_smb_diameter () =
  let rows = Exp_smb.run_diameter ~seeds:[ 1 ] ~hops:[ 4; 8 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ours completed" true (r.Exp_smb.ours <> None);
      Alcotest.(check bool) "ours beats dgkn" true
        (match (r.Exp_smb.ours, r.Exp_smb.dgkn) with
         | Some o, Some d -> o.Sinr_stats.Summary.mean < d.Sinr_stats.Summary.mean
         | _ -> false))
    rows

let test_e6_mmb () =
  let rows = Exp_mmb.run ~seeds:[ 1 ] ~n:20 ~target_degree:8 ~ks:[ 1; 2 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ours completed" true (r.Exp_mmb.completed <> None);
      Alcotest.(check bool) "naive completed" true (r.Exp_mmb.naive <> None))
    rows

let test_e7_cons () =
  let rows = Exp_cons.run ~seeds:[ 1 ] ~ns:[ 10; 16 ] ~target_degree:7 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "agreement" true r.Exp_cons.agreement_ok;
      Alcotest.(check bool) "validity" true r.Exp_cons.validity_ok;
      Alcotest.(check int) "completed" 0 r.Exp_cons.timeouts)
    rows

let test_e7b_crashes () =
  let rows = Exp_cons.run_crashes ~seeds:[ 1 ] ~n:12 ~crash_counts:[ 0; 2 ] () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "completed" true r.Exp_cons.completed;
      Alcotest.(check bool) "agreement" true r.Exp_cons.agreement;
      Alcotest.(check bool) "validity" true r.Exp_cons.validity)
    rows

let test_e8_ablation () =
  let rows = Exp_ablation.run ~seeds:[ 1 ] ~n:30 ~side:18. () in
  Alcotest.(check bool) "rows produced" true (List.length rows >= 8);
  List.iter
    (fun r ->
      Alcotest.(check bool) "epoch positive" true (r.Exp_ablation.epoch_slots > 0))
    rows

let test_e9_mac_compare () =
  let rows = Exp_mac_compare.run ~seed:3 () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "acks measured" true (r.Exp_mac_compare.ack_mean <> None))
    rows

let suite =
  [ Alcotest.test_case "E1 ack mini" `Slow test_e1_ack;
    Alcotest.test_case "E3a density mini" `Slow test_e3_approg_density;
    Alcotest.test_case "E3b eps mini" `Slow test_e3_approg_eps;
    Alcotest.test_case "E4 decay mini" `Slow test_e4_decay;
    Alcotest.test_case "E5a smb mini" `Slow test_e5_smb_diameter;
    Alcotest.test_case "E6 mmb mini" `Slow test_e6_mmb;
    Alcotest.test_case "E7 cons mini" `Slow test_e7_cons;
    Alcotest.test_case "E7b crashes mini" `Slow test_e7b_crashes;
    Alcotest.test_case "E8 ablation mini" `Slow test_e8_ablation;
    Alcotest.test_case "E9 mac compare mini" `Slow test_e9_mac_compare ]
