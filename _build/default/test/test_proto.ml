(* Tests for the protocols above the MAC layer: BMMB/BSMB, consensus, the
   Table 2 baselines, and the global runners over the full SINR stack. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_mac
open Sinr_proto

let cfg = Config.default

let path_graph n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let bounds =
  { Absmac_intf.f_ack = 10;
    f_prog = 3;
    f_approg = 3;
    eps_ack = 0.;
    eps_prog = 0.;
    eps_approg = 0. }

let ideal_driver ?policy ?(seed = 3) graph =
  Mac_driver.of_ideal (Ideal_mac.create ?policy graph ~bounds ~rng:(Rng.create seed))

let uniform_net seed n side =
  let rng = Rng.create seed in
  let pts = Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1. in
  Sinr.create cfg pts

(* ---------------- BMMB over the ideal MAC ---------------- *)

let test_bsmb_ideal_path () =
  let n = 8 in
  let proto = Bmmb.create (ideal_driver (path_graph n)) in
  Bmmb.arrive proto ~node:0 ~msg:42;
  let completed =
    Bmmb.run_until_complete proto ~nodes:(List.init n Fun.id) ~msgs:[ 42 ]
      ~max_steps:10_000
  in
  Alcotest.(check bool) "completed" true (completed <> None);
  (* Delivery times are monotone along the path (each hop needs the MAC). *)
  let slot v = Option.get (Bmmb.delivery_slot proto ~node:v ~msg:42) in
  for v = 0 to n - 2 do
    Alcotest.(check bool) "monotone along path" true (slot v <= slot (v + 1))
  done;
  (* Runtime is bounded by (D+1) * f_ack plus slack: [37]'s shape. *)
  Alcotest.(check bool) "completion bounded" true
    (Option.get completed <= (n + 1) * bounds.Absmac_intf.f_ack)

let test_bsmb_ideal_adversarial () =
  let n = 6 in
  let proto =
    Bmmb.create (ideal_driver ~policy:Ideal_mac.Adversarial (path_graph n))
  in
  Bmmb.arrive proto ~node:0 ~msg:1;
  let completed =
    Bmmb.run_until_complete proto ~nodes:(List.init n Fun.id) ~msgs:[ 1 ]
      ~max_steps:10_000
  in
  Alcotest.(check bool) "completes under adversarial scheduling" true
    (completed <> None)

let test_bmmb_ideal_multi () =
  let n = 6 in
  let proto = Bmmb.create (ideal_driver (path_graph n)) in
  let msgs = [ 10; 20; 30 ] in
  Bmmb.arrive proto ~node:0 ~msg:10;
  Bmmb.arrive proto ~node:5 ~msg:20;
  Bmmb.arrive proto ~node:2 ~msg:30;
  let completed =
    Bmmb.run_until_complete proto ~nodes:(List.init n Fun.id) ~msgs
      ~max_steps:20_000
  in
  Alcotest.(check bool) "completed" true (completed <> None);
  (* Exactly-once delivery per (node, message). *)
  Alcotest.(check int) "delivery count" (n * 3)
    (List.length (Bmmb.deliveries proto));
  let ids = List.map (fun d -> (d.Bmmb.node, d.Bmmb.msg)) (Bmmb.deliveries proto) in
  Alcotest.(check int) "unique deliveries" (n * 3)
    (List.length (List.sort_uniq compare ids))

let test_bmmb_arrive_delivers_immediately () =
  let proto = Bmmb.create (ideal_driver (path_graph 3)) in
  Bmmb.arrive proto ~node:1 ~msg:5;
  Alcotest.(check bool) "origin delivered at arrive" true
    (Bmmb.delivered proto ~node:1 ~msg:5)

let test_bmmb_disconnected_times_out () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] (* 2, 3 unreachable *) in
  let proto = Bmmb.create (ideal_driver g) in
  Bmmb.arrive proto ~node:0 ~msg:1;
  let completed =
    Bmmb.run_until_complete proto ~nodes:[ 0; 1; 2; 3 ] ~msgs:[ 1 ]
      ~max_steps:500
  in
  Alcotest.(check bool) "no completion" true (completed = None);
  Alcotest.(check bool) "component reached" true (Bmmb.delivered proto ~node:1 ~msg:1);
  Alcotest.(check bool) "others not" false (Bmmb.delivered proto ~node:2 ~msg:1)

(* ---------------- Consensus over the ideal MAC ---------------- *)

let run_ideal_consensus ?(n = 7) ~initial ~rounds_bound () =
  let proto =
    Consensus.create (ideal_driver (path_graph n)) ~initial ~rounds_bound
  in
  let completed = Consensus.run proto ~max_steps:100_000 in
  (proto, completed)

let test_consensus_ideal_basic () =
  let n = 7 in
  let initial = Array.init n (fun v -> v mod 2 = 0) in
  let proto, completed = run_ideal_consensus ~n ~initial ~rounds_bound:(2 * n) () in
  Alcotest.(check bool) "terminates" true (completed <> None);
  Alcotest.(check bool) "agreement" true (Consensus.agreement proto);
  Alcotest.(check bool) "validity" true (Consensus.validity proto);
  (* Flood-max decides the highest id's initial value. *)
  Alcotest.(check (option bool)) "max id wins" (Some initial.(n - 1))
    (Consensus.decision proto ~node:0)

let test_consensus_ideal_unanimous () =
  let n = 5 in
  let initial = Array.make n true in
  let proto, _ = run_ideal_consensus ~n ~initial ~rounds_bound:(2 * n) () in
  for v = 0 to n - 1 do
    Alcotest.(check (option bool)) "unanimous true" (Some true)
      (Consensus.decision proto ~node:v)
  done

let test_consensus_decisions_irrevocable () =
  let n = 4 in
  let initial = [| true; false; true; false |] in
  let proto, _ = run_ideal_consensus ~n ~initial ~rounds_bound:(2 * n) () in
  let d0 = Consensus.decision proto ~node:0 in
  for _ = 1 to 100 do
    Consensus.step proto
  done;
  Alcotest.(check (option bool)) "unchanged" d0 (Consensus.decision proto ~node:0)

(* ---------------- Full SINR stack ---------------- *)

let test_global_smb_sinr () =
  let sinr = uniform_net 61 25 16. in
  let r = Global.smb sinr ~rng:(Rng.create 62) ~source:0 ~max_slots:3_000_000 in
  Alcotest.(check bool) "completed" true (r.Global.completed <> None);
  Alcotest.(check int) "all reached" 25 r.Global.reached

let test_global_mmb_sinr () =
  let sinr = uniform_net 63 20 14. in
  let sources = [ (0, 100); (7, 200); (13, 300) ] in
  let r = Global.mmb sinr ~rng:(Rng.create 64) ~sources ~max_slots:5_000_000 in
  Alcotest.(check bool) "completed" true (r.Global.completed <> None);
  Alcotest.(check int) "all reached" 20 r.Global.reached

let test_global_cons_sinr () =
  let sinr = uniform_net 65 15 12. in
  let initial = Array.init 15 (fun v -> v mod 3 = 0) in
  let prof = Induced.profile cfg (Sinr.points sinr) in
  let r =
    Global.cons sinr ~rng:(Rng.create 66) ~initial
      ~rounds_bound:(2 * (prof.Induced.strong_diameter + 1))
      ~max_slots:30_000_000
  in
  Alcotest.(check bool) "completed" true (r.Global.completed <> None);
  Alcotest.(check bool) "agreement" true r.Global.agreement;
  Alcotest.(check bool) "validity" true r.Global.validity;
  Alcotest.(check int) "all decided" 15 r.Global.deciders

let test_global_cons_with_crashes () =
  (* A dense clique-ish deployment so that crashes cannot disconnect it. *)
  let sinr = uniform_net 67 12 8. in
  let n = 12 in
  let initial = Array.init n (fun v -> v mod 2 = 1) in
  let prof = Induced.profile cfg (Sinr.points sinr) in
  Alcotest.(check bool) "dense (diameter 1)" true
    (prof.Induced.strong_diameter = 1);
  let faults = [ (100, 3); (5_000, 8) ] in
  let r =
    Global.cons sinr ~rng:(Rng.create 68) ~initial ~faults
      ~rounds_bound:6 ~max_slots:30_000_000
  in
  Alcotest.(check bool) "completed" true (r.Global.completed <> None);
  Alcotest.(check bool) "agreement among survivors" true r.Global.agreement;
  Alcotest.(check bool) "validity" true r.Global.validity;
  Alcotest.(check int) "two crashed" 2 r.Global.crashed;
  Alcotest.(check int) "survivors decided" (n - 2) r.Global.deciders

(* ---------------- Baselines ---------------- *)

let test_dgkn_baseline_completes () =
  let sinr = uniform_net 71 20 14. in
  let r =
    Dgkn_broadcast.run sinr ~rng:(Rng.create 72) ~source:0
      ~max_slots:3_000_000
  in
  Alcotest.(check bool) "completed" true (r.Dgkn_broadcast.completed <> None);
  Alcotest.(check int) "all informed" 20 r.Dgkn_broadcast.informed

let test_decay_flood_completes () =
  let sinr = uniform_net 73 20 14. in
  let r =
    Decay_flood.run sinr ~rng:(Rng.create 74) ~source:0 ~max_slots:500_000
  in
  Alcotest.(check bool) "completed" true (r.Decay_flood.completed <> None);
  Alcotest.(check int) "all informed" 20 r.Decay_flood.informed

let suite =
  [ Alcotest.test_case "bsmb over ideal path" `Quick test_bsmb_ideal_path;
    Alcotest.test_case "bsmb adversarial scheduler" `Quick
      test_bsmb_ideal_adversarial;
    Alcotest.test_case "bmmb multi-message" `Quick test_bmmb_ideal_multi;
    Alcotest.test_case "bmmb arrive delivers" `Quick
      test_bmmb_arrive_delivers_immediately;
    Alcotest.test_case "bmmb disconnected times out" `Quick
      test_bmmb_disconnected_times_out;
    Alcotest.test_case "consensus ideal basic" `Quick test_consensus_ideal_basic;
    Alcotest.test_case "consensus unanimous" `Quick test_consensus_ideal_unanimous;
    Alcotest.test_case "consensus irrevocable" `Quick
      test_consensus_decisions_irrevocable;
    Alcotest.test_case "global smb over sinr" `Slow test_global_smb_sinr;
    Alcotest.test_case "global mmb over sinr" `Slow test_global_mmb_sinr;
    Alcotest.test_case "global cons over sinr" `Slow test_global_cons_sinr;
    Alcotest.test_case "global cons with crashes" `Slow
      test_global_cons_with_crashes;
    Alcotest.test_case "dgkn baseline completes" `Slow test_dgkn_baseline_completes;
    Alcotest.test_case "decay flood completes" `Quick test_decay_flood_completes ]
