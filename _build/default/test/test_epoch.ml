(* Structural tests of Algorithm 9.1's epoch machinery against the paper's
   supporting lemmas:

   - the distributed H~~ estimate contains no impossible edges and finds
     the near-neighbor links Lemma 10.14 guarantees;
   - the surviving sender sets S_1 ⊇ S_2 ⊇ ... thin monotonically and the
     minimum distance between survivors grows (Lemma 10.15's shape);
   - survivors of each phase form an independent set of the H~~ estimate
     under each node's own neighbor view. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_engine
open Sinr_mac

let cfg = Config.default

(* Run the machine over the engine, calling [on_phase phase members] at
   each phase boundary of the first full epoch where nodes participate. *)
let run_epoch ~seed ~n ~side ~on_phase =
  let rng = Rng.create seed in
  let points = Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1. in
  let sinr = Sinr.create cfg points in
  let lambda = Induced.lambda cfg points in
  let machine =
    Approx_progress.create Params.default_approg cfg ~lambda ~n
      ~rng:(Rng.split rng ~key:1)
  in
  let engine = Engine.create sinr in
  for v = 0 to n - 1 do
    Engine.wake engine v;
    Approx_progress.start machine ~node:v
      { Events.origin = v; seq = 0; data = v }
  done;
  while Approx_progress.epoch_index machine < 1 do
    ignore (Approx_progress.end_slot machine)
  done;
  let members () =
    List.filter
      (fun v -> Approx_progress.member machine ~node:v)
      (List.init n Fun.id)
  in
  let seen = ref (-1) in
  let epoch = Approx_progress.epoch_index machine in
  while Approx_progress.epoch_index machine = epoch do
    let phase = Approx_progress.current_phase machine in
    if phase <> !seen then begin
      seen := phase;
      on_phase ~phase ~members:(members ()) ~machine ~points
    end;
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Approx_progress.decide machine ~node:v with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        Approx_progress.on_receive machine ~receiver:d.Engine.receiver
          ~sender:d.Engine.sender d.Engine.message)
      ds;
    ignore (Approx_progress.end_slot machine)
  done;
  points

let min_dist_of points = function
  | [] | [ _ ] -> Float.infinity
  | members ->
    let arr = Array.of_list members in
    let best = ref Float.infinity in
    Array.iter
      (fun u ->
        Array.iter
          (fun v ->
            if u < v then
              best := Float.min !best (Point.dist points.(u) points.(v)))
          arr)
      arr;
    !best

let test_sender_sets_shrink () =
  let sizes = ref [] in
  ignore
    (run_epoch ~seed:11 ~n:60 ~side:24. ~on_phase:(fun ~phase:_ ~members ~machine:_ ~points:_ ->
         sizes := List.length members :: !sizes));
  let sizes = List.rev !sizes in
  Alcotest.(check bool) "several phases observed" true (List.length sizes >= 3);
  Alcotest.(check int) "everyone starts" 60 (List.hd sizes);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "S_phi shrinks monotonically" true (monotone sizes);
  Alcotest.(check bool) "substantial thinning" true
    (List.nth sizes (List.length sizes - 1) * 2 < List.hd sizes)

let test_min_distance_grows () =
  (* Lemma 10.15's shape: the minimum distance between surviving senders
     grows across phases (we require a strict overall increase and
     per-step non-collapse). *)
  let dists = ref [] in
  let points = ref [||] in
  let pts =
    run_epoch ~seed:13 ~n:70 ~side:24. ~on_phase:(fun ~phase:_ ~members ~machine:_ ~points:p ->
        points := p;
        dists := min_dist_of p members :: !dists)
  in
  ignore pts;
  let dists = List.rev !dists in
  (match dists with
   | first :: _ :: _ ->
     let last = List.nth dists (List.length dists - 1) in
     Alcotest.(check bool) "min distance grew" true
       (last > first *. 1.5 || last = Float.infinity)
   | _ -> Alcotest.fail "not enough phases")

let test_h_graph_sane () =
  (* The H~~ snapshot visible at a phase boundary was estimated by the
     *previous* phase's member set.  Pair them up and check: (a) no edge
     between nodes outside mutual transmission range, and (b) a decent
     fraction of the very close pairs among the estimating members are
     connected (the Lemma 10.14 regime). *)
  let checked = ref 0 in
  let close_pairs = ref 0 and close_connected = ref 0 in
  let prev_members = ref None in
  ignore
    (run_epoch ~seed:17 ~n:60 ~side:22. ~on_phase:(fun ~phase:_ ~members ~machine ~points ->
         (match (!prev_members, Approx_progress.last_h_graph machine) with
          | Some estimators, Some h ->
            incr checked;
            Graph.iter_edges h (fun u v ->
                Alcotest.(check bool) "edge within weak range" true
                  (Point.dist points.(u) points.(v)
                   <= Config.range cfg +. 1e-9));
            let arr = Array.of_list estimators in
            Array.iter
              (fun u ->
                Array.iter
                  (fun v ->
                    if u < v && Point.dist points.(u) points.(v) <= 2.5 then begin
                      incr close_pairs;
                      if Graph.mem_edge h u v then incr close_connected
                    end)
                  arr)
              arr
          | _ -> ());
         prev_members := Some members));
  Alcotest.(check bool) "snapshots were checked" true (!checked >= 2);
  Alcotest.(check bool) "close pairs existed" true (!close_pairs > 0);
  Alcotest.(check bool)
    (Printf.sprintf "close pairs mostly connected (%d/%d)" !close_connected
       !close_pairs)
    true
    (float_of_int !close_connected >= 0.5 *. float_of_int !close_pairs)

let test_survivors_independent_in_h () =
  (* After each sparsification, the new member set must be independent in
     the H~~ snapshot that produced it (per-view independence; global
     violations are the paper's W-set and must be rare). *)
  let prev_h = ref None in
  let violations = ref 0 and checks = ref 0 in
  ignore
    (run_epoch ~seed:19 ~n:60 ~side:22. ~on_phase:(fun ~phase ~members ~machine ~points:_ ->
         (match (!prev_h, phase) with
          | Some h, p when p > 0 ->
            incr checks;
            if not (Mis_check.is_independent h members) then incr violations
          | _ -> ());
         prev_h := Approx_progress.last_h_graph machine));
  Alcotest.(check bool) "checks happened" true (!checks >= 2);
  Alcotest.(check bool) "independence violations rare" true (!violations <= 1)

let suite =
  [ Alcotest.test_case "sender sets shrink" `Slow test_sender_sets_shrink;
    Alcotest.test_case "min distance grows (Lemma 10.15)" `Slow
      test_min_distance_grows;
    Alcotest.test_case "H~~ estimate sane (Lemma 10.14)" `Slow
      test_h_graph_sane;
    Alcotest.test_case "survivors independent in H~~" `Slow
      test_survivors_independent_in_h ]
