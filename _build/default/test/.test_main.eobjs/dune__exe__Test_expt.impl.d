test/test_expt.ml: Alcotest Array Components Config Exp_progress_lb Graph Induced List Placement Report Rng Sinr_expt Sinr_geom Sinr_graph Sinr_mac Sinr_phys Sinr_stats String Workloads
