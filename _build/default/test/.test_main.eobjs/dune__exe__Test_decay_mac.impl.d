test/test_decay_mac.ml: Absmac_intf Alcotest Box Config Decay_mac Fun List Placement Point Rng Sinr Sinr_geom Sinr_mac Sinr_phys Sinr_proto
