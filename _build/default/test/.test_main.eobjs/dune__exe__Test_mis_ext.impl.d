test/test_mis_ext.ml: Alcotest Array Fun Graph List Mis_check Sinr_graph Sinr_mis Sw_mis
