test/test_graph.ml: Alcotest Array Bfs Box Components Fun Geo_metrics Graph Growth List Mis_check Placement Point Printf QCheck QCheck_alcotest Rng Sinr_geom Sinr_graph String
