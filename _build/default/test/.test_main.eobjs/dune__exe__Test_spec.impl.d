test/test_spec.ml: Absmac_intf Alcotest Box Combined_mac Config Graph Ideal_mac Induced List Placement Rng Sinr Sinr_engine Sinr_geom Sinr_graph Sinr_mac Sinr_phys Spec_check Trace
