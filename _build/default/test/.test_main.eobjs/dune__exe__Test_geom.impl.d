test/test_geom.ml: Alcotest Array Box Float Fun Grid_index List Placement Point QCheck QCheck_alcotest Rng Sinr_geom
