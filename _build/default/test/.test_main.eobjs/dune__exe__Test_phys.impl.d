test/test_phys.ml: Alcotest Array Box Config Float Fun Graph Growth Induced List Placement Point Reliability Rng Sinr Sinr_geom Sinr_graph Sinr_phys
