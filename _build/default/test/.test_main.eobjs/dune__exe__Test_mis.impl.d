test/test_mis.ml: Alcotest Array Box Fun Graph Greedy_mis Labels List Log_star Mis_check Placement Point QCheck QCheck_alcotest Rng Sinr_geom Sinr_graph Sinr_mis Sw_mis
