test/test_engine.ml: Alcotest Box Config Engine Fault List Placement Rng Sinr Sinr_engine Sinr_geom Sinr_phys Trace
