test/test_phys_ext.ml: Alcotest Array Box Config Float Fun Graph Induced List Placement Point QCheck QCheck_alcotest Reliability Rng Sinr Sinr_geom Sinr_graph Sinr_mac Sinr_phys
