test/test_expt_e2e.ml: Alcotest Exp_ablation Exp_ack Exp_approg Exp_cons Exp_decay_lb Exp_mac_compare Exp_mmb Exp_smb List Sinr_expt Sinr_stats
