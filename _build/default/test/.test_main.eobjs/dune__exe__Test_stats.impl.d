test/test_stats.ml: Alcotest Array Fit Float List QCheck QCheck_alcotest Sinr_stats String Summary Table
