(* Extended SINR physics properties. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys

let cfg = Config.default

(* Compile-time conformance: both MAC implementations satisfy the absMAC
   interface of the specification module. *)
module _ : Sinr_mac.Absmac_intf.S = Sinr_mac.Combined_mac
module _ : Sinr_mac.Absmac_intf.S = Sinr_mac.Ideal_mac
module _ : Sinr_mac.Absmac_intf.S = Sinr_mac.Decay_mac

let test_power_decreasing () =
  let sinr = Sinr.create cfg [| Point.make 0. 0.; Point.make 5. 0. |] in
  let at = Point.make 0. 0. in
  let p1 = Sinr.power_between sinr ~from:(Point.make 3. 0.) ~at in
  let p2 = Sinr.power_between sinr ~from:(Point.make 6. 0.) ~at in
  Alcotest.(check bool) "closer is stronger" true (p1 > p2);
  (* Doubling the distance divides power by 2^alpha. *)
  Alcotest.(check (float 1e-6)) "path loss exponent"
    (2. ** cfg.Config.alpha) (p1 /. p2)

let test_interference_additive () =
  let pts =
    [| Point.make 0. 0.; Point.make 4. 0.; Point.make 8. 0.; Point.make 0. 7. |]
  in
  let sinr = Sinr.create cfg pts in
  let at = Point.make 2. 2. in
  let i12 = Sinr.interference_at sinr ~senders:[ 1; 2 ] ~at in
  let i1 = Sinr.interference_at sinr ~senders:[ 1 ] ~at in
  let i2 = Sinr.interference_at sinr ~senders:[ 2 ] ~at in
  Alcotest.(check (float 1e-9)) "additive" (i1 +. i2) i12;
  Alcotest.(check (float 1e-9)) "empty set" 0.
    (Sinr.interference_at sinr ~senders:[] ~at)

let test_link_sinr_manual () =
  (* Triangle: sender at 0, receiver at 6, interferer at 14. *)
  let pts = [| Point.make 0. 0.; Point.make 6. 0.; Point.make 14. 0. |] in
  let sinr = Sinr.create cfg pts in
  let p = cfg.Config.power and a = cfg.Config.alpha and n0 = cfg.Config.noise in
  let signal = p /. (6. ** a) in
  let interf = p /. (8. ** a) in
  let expect = signal /. (n0 +. interf) in
  Alcotest.(check (float 1e-9)) "matches Eq. 1" expect
    (Sinr.link_sinr sinr ~senders:[ 0; 2 ] ~sender:0 ~receiver:1)

let test_reception_empty_senders () =
  let sinr = Sinr.create cfg [| Point.make 0. 0.; Point.make 5. 0. |] in
  Alcotest.(check (option int)) "silence" None
    (Sinr.reception sinr ~senders:[] ~receiver:1);
  Alcotest.(check bool) "resolve silence" true
    (Array.for_all (fun s -> s = None) (Sinr.resolve sinr ~senders:[]))

let test_in_range_matches_weak_graph () =
  let rng = Rng.create 5 in
  let pts = Placement.uniform rng ~n:40 ~box:(Box.square ~side:30.) ~min_dist:1. in
  let sinr = Sinr.create cfg pts in
  let weak = Induced.weak cfg pts in
  for u = 0 to 39 do
    for v = u + 1 to 39 do
      Alcotest.(check bool) "in_range = weak edge" (Graph.mem_edge weak u v)
        (Sinr.in_range sinr u v)
    done
  done

let test_graph_a_monotone () =
  let rng = Rng.create 6 in
  let pts = Placement.uniform rng ~n:50 ~box:(Box.square ~side:30.) ~min_dist:1. in
  let g1 = Induced.graph_a cfg pts ~a:0.5 in
  let g2 = Induced.graph_a cfg pts ~a:0.8 in
  let g3 = Induced.graph_a cfg pts ~a:1.0 in
  Alcotest.(check bool) "0.5 sub 0.8" true (Graph.is_subgraph ~sub:g1 ~super:g2);
  Alcotest.(check bool) "0.8 sub 1.0" true (Graph.is_subgraph ~sub:g2 ~super:g3)

let test_reliability_crowding_hurts () =
  (* A pair alone has a higher link probability than the same pair inside a
     crowded co-located set: the contention effect the H-graph captures. *)
  let rng = Rng.create 7 in
  let crowd =
    Placement.uniform rng ~n:20 ~box:(Box.square ~side:8.) ~min_dist:1.
  in
  let sinr = Sinr.create cfg crowd in
  let pair_est =
    Reliability.estimate ~trials:600 sinr (Rng.split rng ~key:1)
      ~set:[ 0; 1 ] ~p:0.4 ~mu:0.01
  in
  let crowd_est =
    Reliability.estimate ~trials:600 sinr (Rng.split rng ~key:2)
      ~set:(List.init 20 Fun.id) ~p:0.4 ~mu:0.01
  in
  let p_pair = Reliability.success_prob pair_est (1, 0) in
  let p_crowd = Reliability.success_prob crowd_est (1, 0) in
  Alcotest.(check bool) "crowding reduces link probability" true
    (p_crowd < p_pair)

let test_fig1_lambda () =
  (* On the Figure 1 construction, Lambda = R(1-eps) / 1 = gap-ish. *)
  let gap = 50. in
  let tl = Placement.two_lines ~delta:5 ~spacing:1. ~gap in
  let c = Config.with_range ~range:(gap /. 0.9) () in
  let lambda = Induced.lambda c tl.Placement.points in
  Alcotest.(check bool) "lambda ~ gap" true (Float.abs (lambda -. gap) < 1.)

(* Property: the strong graph never contains an edge longer than the
   strong radius (over random deployments). *)
let prop_strong_edge_lengths =
  QCheck.Test.make ~name:"strong edges within the strong radius" ~count:25
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let pts =
        Placement.uniform rng ~n:30 ~box:(Box.square ~side:25.) ~min_dist:1.
      in
      let strong = Induced.strong cfg pts in
      let ok = ref true in
      Graph.iter_edges strong (fun u v ->
          if Point.dist pts.(u) pts.(v) > Config.strong_range cfg +. 1e-9 then
            ok := false);
      !ok)

(* Property: a lone transmission is decoded by exactly the weak neighbors
   of the transmitter. *)
let prop_lone_transmission_reaches_weak_neighbors =
  QCheck.Test.make ~name:"lone transmission = weak neighborhood" ~count:25
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let pts =
        Placement.uniform rng ~n:25 ~box:(Box.square ~side:25.) ~min_dist:1.
      in
      let sinr = Sinr.create cfg pts in
      let weak = Induced.weak cfg pts in
      let sender = seed mod 25 in
      let out = Sinr.resolve sinr ~senders:[ sender ] in
      let ok = ref true in
      Array.iteri
        (fun u got ->
          if u <> sender then begin
            let expect = Graph.mem_edge weak sender u in
            if (got = Some sender) <> expect then ok := false
          end)
        out;
      !ok)

let suite =
  [ Alcotest.test_case "power decreasing" `Quick test_power_decreasing;
    Alcotest.test_case "interference additive" `Quick test_interference_additive;
    Alcotest.test_case "link sinr manual" `Quick test_link_sinr_manual;
    Alcotest.test_case "reception empty senders" `Quick
      test_reception_empty_senders;
    Alcotest.test_case "in_range = weak graph" `Quick
      test_in_range_matches_weak_graph;
    Alcotest.test_case "graph_a monotone" `Quick test_graph_a_monotone;
    Alcotest.test_case "reliability crowding hurts" `Quick
      test_reliability_crowding_hurts;
    Alcotest.test_case "fig1 lambda" `Quick test_fig1_lambda;
    QCheck_alcotest.to_alcotest prop_strong_edge_lengths;
    QCheck_alcotest.to_alcotest prop_lone_transmission_reaches_weak_neighbors ]
