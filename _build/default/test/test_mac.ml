(* Tests for the absMAC layer: parameters, the ideal reference MAC, the
   Halldorsson–Mitra acknowledgment machine, Decay, Algorithm 9.1 and the
   combined Algorithm 11.1. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_mac

let cfg = Config.default

(* ---------------- Params ---------------- *)

let test_schedule_monotone_in_lambda () =
  let s1 = Params.schedule cfg ~lambda:4. Params.default_approg in
  let s2 = Params.schedule cfg ~lambda:64. Params.default_approg in
  Alcotest.(check bool) "phi grows" true (s2.Params.phi > s1.Params.phi);
  Alcotest.(check bool) "q grows" true (s2.Params.q > s1.Params.q);
  Alcotest.(check bool) "epoch grows" true
    (s2.Params.epoch_slots > s1.Params.epoch_slots)

let test_schedule_layout () =
  let s = Params.schedule cfg ~lambda:10. Params.default_approg in
  Alcotest.(check int) "phase layout"
    s.Params.phase_slots
    ((2 * s.Params.t) + (s.Params.mis_rounds * s.Params.t) + s.Params.data_slots);
  Alcotest.(check int) "epoch layout" s.Params.epoch_slots
    (s.Params.phi * s.Params.phase_slots);
  Alcotest.(check bool) "threshold >= 1" true (s.Params.potential_threshold >= 1)

let test_params_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "p > 1/2 rejected" true
    (bad (fun () ->
         Params.validate_approg { Params.default_approg with Params.p = 0.6 }));
  Alcotest.(check bool) "mu >= p rejected" true
    (bad (fun () ->
         Params.validate_approg { Params.default_approg with Params.mu = 0.5 }));
  Alcotest.(check bool) "eps out of range rejected" true
    (bad (fun () ->
         Params.validate_approg
           { Params.default_approg with Params.eps_approg = 1.5 }))

let test_formulas_monotone () =
  let f1 = Params.f_ack_formula ~delta:10 ~lambda:10. ~eps_ack:0.1 in
  let f2 = Params.f_ack_formula ~delta:100 ~lambda:10. ~eps_ack:0.1 in
  Alcotest.(check bool) "f_ack grows with delta" true (f2 > f1);
  let g1 = Params.f_approg_formula cfg ~lambda:10. ~eps_approg:0.1 in
  let g2 = Params.f_approg_formula cfg ~lambda:100. ~eps_approg:0.1 in
  Alcotest.(check bool) "f_approg grows with lambda" true (g2 > g1);
  (* The headline gap: f_approg is degree-free. *)
  let with_smaller_eps = Params.f_approg_formula cfg ~lambda:10. ~eps_approg:0.01 in
  Alcotest.(check bool) "f_approg grows as eps shrinks" true (with_smaller_eps > g1)

let test_contention_default () =
  Alcotest.(check int) "4 lambda^2" 400 (Params.contention_default ~lambda:10.)

(* ---------------- Ideal MAC ---------------- *)

let path_graph n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let bounds =
  { Absmac_intf.f_ack = 20;
    f_prog = 5;
    f_approg = 5;
    eps_ack = 0.;
    eps_prog = 0.;
    eps_approg = 0. }

let run_ideal ?(policy = Ideal_mac.Random) ~slots graph k =
  let mac = Ideal_mac.create ~policy graph ~bounds ~rng:(Rng.create 5) in
  let rcvs = ref [] and acks = ref [] in
  Ideal_mac.set_handlers mac
    { Absmac_intf.on_rcv =
        (fun ~node ~payload ->
          rcvs := (Ideal_mac.now mac, node, payload) :: !rcvs);
      on_ack =
        (fun ~node ~payload ->
          acks := (Ideal_mac.now mac, node, payload) :: !acks) };
  k mac;
  for _ = 1 to slots do
    Ideal_mac.step mac
  done;
  (List.rev !rcvs, List.rev !acks)

let test_ideal_delivers_all_neighbors () =
  let g = path_graph 5 in
  let rcvs, acks =
    run_ideal ~slots:30 g (fun mac ->
        ignore (Ideal_mac.bcast mac ~node:2 ~data:7))
  in
  let receivers = List.sort compare (List.map (fun (_, v, _) -> v) rcvs) in
  Alcotest.(check (list int)) "both neighbors" [ 1; 3 ] receivers;
  (match acks with
   | [ (slot, node, payload) ] ->
     Alcotest.(check int) "ack at sender" 2 node;
     Alcotest.(check bool) "ack within f_ack" true (slot <= 20);
     Alcotest.(check int) "payload data" 7 payload.Events.data;
     List.iter
       (fun (s, _, _) ->
         Alcotest.(check bool) "rcv before ack" true (s <= slot))
       rcvs
   | _ -> Alcotest.fail "expected exactly one ack")

let test_ideal_adversarial_timing () =
  let g = path_graph 3 in
  let rcvs, acks =
    run_ideal ~policy:Ideal_mac.Adversarial ~slots:40 g (fun mac ->
        ignore (Ideal_mac.bcast mac ~node:0 ~data:0))
  in
  (* Node 0 has one neighbor: its rcv lands exactly at f_prog, the ack at
     f_ack. *)
  (match rcvs with
   | [ (slot, 1, _) ] -> Alcotest.(check int) "rcv at f_prog" 5 slot
   | _ -> Alcotest.fail "expected one rcv at node 1");
  (match acks with
   | [ (slot, 0, _) ] -> Alcotest.(check int) "ack at f_ack" 20 slot
   | _ -> Alcotest.fail "expected one ack")

let test_ideal_busy_and_abort () =
  let g = path_graph 3 in
  let mac = Ideal_mac.create g ~bounds ~rng:(Rng.create 1) in
  ignore (Ideal_mac.bcast mac ~node:0 ~data:1);
  Alcotest.(check bool) "busy" true (Ideal_mac.busy mac ~node:0);
  Alcotest.(check bool) "double bcast rejected" true
    (try ignore (Ideal_mac.bcast mac ~node:0 ~data:2); false
     with Invalid_argument _ -> true);
  Ideal_mac.abort mac ~node:0;
  Alcotest.(check bool) "not busy after abort" false (Ideal_mac.busy mac ~node:0);
  let acked = ref false in
  Ideal_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> acked := true) };
  for _ = 1 to 50 do
    Ideal_mac.step mac
  done;
  Alcotest.(check bool) "aborted bcast never acks" false !acked

let test_ideal_isolated_node_acks () =
  let g = Graph.empty 2 in
  let _, acks =
    run_ideal ~slots:40 g (fun mac -> ignore (Ideal_mac.bcast mac ~node:0 ~data:1))
  in
  Alcotest.(check int) "isolated ack arrives" 1 (List.length acks)

(* ---------------- Hm_ack ---------------- *)

let mk_hm ?(eps = 0.1) ~lambda n =
  Hm_ack.create
    { Params.default_ack with Params.eps_ack = eps }
    ~lambda ~n ~rng:(Rng.create 11)

let dummy_payload = { Events.origin = 0; seq = 0; data = 0 }

let test_hm_halts_without_reception () =
  let hm = mk_hm ~lambda:4. 1 in
  Hm_ack.start hm ~node:0 dummy_payload;
  let steps = ref 0 in
  while Hm_ack.active hm ~node:0 && !steps < 100_000 do
    ignore (Hm_ack.decide hm ~node:0);
    incr steps
  done;
  Alcotest.(check bool) "halted" true (Hm_ack.halted hm ~node:0);
  Alcotest.(check bool) "bounded slots" true (!steps < 100_000);
  Alcotest.(check int) "slots accounted" !steps (Hm_ack.slots_run hm ~node:0)

let test_hm_fallback_on_receptions () =
  let hm = mk_hm ~lambda:4. 1 in
  Hm_ack.start hm ~node:0 dummy_payload;
  (* Pound the node with receptions: fallbacks must trigger. *)
  for _ = 1 to 2000 do
    ignore (Hm_ack.decide hm ~node:0);
    Hm_ack.on_receive hm ~node:0
  done;
  Alcotest.(check bool) "fallbacks occurred" true (Hm_ack.fallbacks hm ~node:0 > 0)

let test_hm_contention_slows_halt () =
  (* More receptions => lower probabilities => later halt. *)
  let run ~noisy =
    let hm = mk_hm ~lambda:4. 1 in
    Hm_ack.start hm ~node:0 dummy_payload;
    let steps = ref 0 in
    while Hm_ack.active hm ~node:0 && !steps < 1_000_000 do
      ignore (Hm_ack.decide hm ~node:0);
      if noisy then Hm_ack.on_receive hm ~node:0;
      incr steps
    done;
    !steps
  in
  Alcotest.(check bool) "noisy slower" true (run ~noisy:true > run ~noisy:false)

let test_hm_stop_resets () =
  let hm = mk_hm ~lambda:4. 2 in
  Hm_ack.start hm ~node:0 dummy_payload;
  ignore (Hm_ack.decide hm ~node:0);
  Hm_ack.stop hm ~node:0;
  Alcotest.(check bool) "inactive" false (Hm_ack.active hm ~node:0);
  Alcotest.(check bool) "decide is None when stopped" true
    (Hm_ack.decide hm ~node:0 = None);
  Alcotest.(check bool) "other node unaffected" false (Hm_ack.active hm ~node:1)

let test_hm_pair_delivery () =
  (* Two nodes in range: by the halt, the listener has received the
     payload (Lemma B.20 at tiny scale). *)
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let sinr = Sinr.create cfg pts in
  let engine = Sinr_engine.Engine.create sinr in
  let hm = mk_hm ~lambda:(Induced.lambda cfg pts) 2 in
  Sinr_engine.Engine.wake engine 0;
  Hm_ack.start hm ~node:0 dummy_payload;
  let got = ref false in
  let steps = ref 0 in
  while Hm_ack.active hm ~node:0 && !steps < 200_000 do
    let ds =
      Sinr_engine.Engine.step engine ~decide:(fun v ->
          match Hm_ack.decide hm ~node:v with
          | Some w -> Sinr_engine.Engine.Transmit w
          | None -> Sinr_engine.Engine.Listen)
    in
    List.iter
      (fun d -> if d.Sinr_engine.Engine.receiver = 1 then got := true)
      ds;
    incr steps
  done;
  Alcotest.(check bool) "halted" true (Hm_ack.halted hm ~node:0);
  Alcotest.(check bool) "neighbor received before halt" true !got

(* ---------------- Decay ---------------- *)

let test_decay_cycle () =
  let d = Decay.create ~n_tilde:16 ~n:2 ~rng:(Rng.create 3) in
  Alcotest.(check int) "cycle length" 5 (Decay.cycle_len d);
  Alcotest.(check bool) "inactive decides None" true
    (Decay.decide d ~node:0 ~slot:0 = None);
  Decay.start d ~node:0 ~slot:0 dummy_payload;
  (* Slot 0 of a cycle transmits with probability 1. *)
  Alcotest.(check bool) "slot 0 always transmits" true
    (Decay.decide d ~node:0 ~slot:0 <> None);
  Alcotest.(check bool) "cycle restart transmits" true
    (Decay.decide d ~node:0 ~slot:5 <> None);
  Decay.stop d ~node:0;
  Alcotest.(check bool) "stopped" false (Decay.active d ~node:0)

(* ---------------- Approx_progress (Algorithm 9.1) ---------------- *)

let uniform_net seed n side =
  let rng = Rng.create seed in
  let pts = Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1. in
  Sinr.create cfg pts

let test_approg_epoch_rollover () =
  let sinr = uniform_net 21 20 15. in
  let lambda = Induced.lambda cfg (Sinr.points sinr) in
  let m =
    Approx_progress.create Params.default_approg cfg ~lambda ~n:20
      ~rng:(Rng.create 2)
  in
  let sched = Approx_progress.schedule m in
  Alcotest.(check int) "epoch 0" 0 (Approx_progress.epoch_index m);
  for _ = 1 to sched.Params.epoch_slots do
    ignore (Approx_progress.end_slot m)
  done;
  Alcotest.(check int) "epoch 1" 1 (Approx_progress.epoch_index m);
  Alcotest.(check int) "pos wrapped" 0 (Approx_progress.pos m)

let test_approg_membership_waits_for_epoch () =
  let sinr = uniform_net 22 20 15. in
  let lambda = Induced.lambda cfg (Sinr.points sinr) in
  let m =
    Approx_progress.create Params.default_approg cfg ~lambda ~n:20
      ~rng:(Rng.create 2)
  in
  let sched = Approx_progress.schedule m in
  (* Joining mid-epoch does not make the node a member... *)
  ignore (Approx_progress.end_slot m);
  Approx_progress.start m ~node:3 dummy_payload;
  Alcotest.(check bool) "not yet a member" false (Approx_progress.member m ~node:3);
  (* ...until the next epoch boundary. *)
  for _ = 1 to sched.Params.epoch_slots do
    ignore (Approx_progress.end_slot m)
  done;
  Alcotest.(check bool) "member next epoch" true (Approx_progress.member m ~node:3)

let test_approg_progress_small_net () =
  let sinr = uniform_net 23 50 25. in
  let senders = [ 0; 10; 20; 30; 40 ] in
  let sched =
    Params.schedule cfg
      ~lambda:(Induced.lambda cfg (Sinr.points sinr))
      Params.default_approg
  in
  let samples, machine =
    Measure.approx_progress_only sinr ~rng:(Rng.create 31) ~senders
      ~max_slots:(6 * sched.Params.epoch_slots)
  in
  let progressed = List.filter (fun s -> s.Measure.delay <> None) samples in
  Alcotest.(check bool) "samples exist" true (List.length samples > 5);
  (* eps_approg = 0.1: demand at least 80% progressed within 5 epochs. *)
  Alcotest.(check bool) "most listeners progressed" true
    (float_of_int (List.length progressed)
     >= 0.8 *. float_of_int (List.length samples));
  Alcotest.(check bool) "few drops" true
    (Approx_progress.drops_total machine
     < 3 * 5 * (1 + Approx_progress.epoch_index machine))

let test_approg_vacuous_on_fig1 () =
  (* Theorem 6.1's construction: U-V links have length exactly R(1-eps),
     which exceeds R(1-2eps) — approximate progress demands nothing there.
     This is exactly how the new spec escapes the lower bound. *)
  let gap = Config.strong_range cfg in
  let tl = Placement.two_lines ~delta:5 ~spacing:1. ~gap in
  let approx = Induced.approx cfg tl.Placement.points in
  let covered =
    Measure.covered_listeners ~approx_graph:approx
      ~senders:(Array.to_list tl.Placement.senders)
      ~n:(Array.length tl.Placement.points)
  in
  Alcotest.(check (list int)) "no covered listeners across lines" [] covered

let test_approg_rcv_dedup () =
  let sinr = uniform_net 24 30 18. in
  let senders = [ 0; 5 ] in
  let sched =
    Params.schedule cfg
      ~lambda:(Induced.lambda cfg (Sinr.points sinr))
      Params.default_approg
  in
  let samples, _ =
    Measure.approx_progress_only sinr ~rng:(Rng.create 33) ~senders
      ~max_slots:(4 * sched.Params.epoch_slots)
  in
  (* delay is first-rcv; dedup means a listener never reports twice; the
     Measure API already encodes that — here we check samples are unique. *)
  let ids = List.map (fun s -> s.Measure.listener) samples in
  Alcotest.(check int) "unique listeners" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* ---------------- Theorem 6.1 / Figure 1 combinatorics ---------------- *)

let fig1 delta =
  (* Parameters chosen as in the paper: R(1-eps) = 10*delta.  The gap is
     nudged just inside the strong radius so the cross links survive float
     round-trips through the power computation. *)
  let gap0 = 10. *. float_of_int delta in
  let range = gap0 /. (1. -. cfg.Config.eps) in
  let c = Config.with_range ~range ~eps:cfg.Config.eps () in
  let gap = Config.strong_range c *. (1. -. 1e-9) in
  let tl = Placement.two_lines ~delta ~spacing:1. ~gap in
  (c, tl, Sinr.create c tl.Placement.points)

let test_fig1_pairing () =
  let c, tl, _ = fig1 6 in
  let strong = Induced.strong c tl.Placement.points in
  (* Each sender's only cross-line strong neighbor is its partner. *)
  Array.iteri
    (fun i v ->
      let cross =
        List.filter (fun u -> u >= 6) (Array.to_list (Graph.neighbors strong v))
      in
      Alcotest.(check (list int)) "single partner" [ tl.Placement.receivers.(i) ]
        cross)
    tl.Placement.senders

let test_fig1_single_sender_delivers () =
  let _, tl, sinr = fig1 6 in
  let v = tl.Placement.senders.(2) and u = tl.Placement.receivers.(2) in
  Alcotest.(check (option int)) "partner decodes" (Some v)
    (Sinr.reception sinr ~senders:[ v ] ~receiver:u)

let test_fig1_two_senders_block_everything () =
  let _, tl, sinr = fig1 6 in
  (* Any two concurrent senders: no cross-line reception anywhere. *)
  let pairs = [ (0, 1); (0, 5); (2, 3); (1, 4) ] in
  List.iter
    (fun (i, j) ->
      let senders = [ tl.Placement.senders.(i); tl.Placement.senders.(j) ] in
      Array.iter
        (fun u ->
          Alcotest.(check (option int))
            (Printf.sprintf "no delivery at u with senders %d,%d" i j) None
            (Sinr.reception sinr ~senders ~receiver:u))
        tl.Placement.receivers)
    pairs

let test_fig1_round_robin_needs_delta_slots () =
  (* The optimal centralized schedule transmits one v_i per slot.  The MAC
     only raises rcv events for messages from G_{1-eps}-neighbors (the
     Theorem 6.1 assumption), and u_j's only broadcasting strong neighbor
     is v_j — so the last receiver makes progress at slot delta:
     f_prog >= Delta. *)
  let delta = 6 in
  let c, tl, sinr = fig1 delta in
  let strong = Induced.strong c tl.Placement.points in
  let first = Array.make (Array.length tl.Placement.points) None in
  for slot = 0 to delta - 1 do
    let senders = [ tl.Placement.senders.(slot) ] in
    let out = Sinr.resolve sinr ~senders in
    Array.iteri
      (fun u s ->
        match s with
        | Some v when Graph.mem_edge strong u v && first.(u) = None ->
          first.(u) <- Some (slot + 1)
        | Some _ | None -> ())
      out
  done;
  let receiver_times =
    Array.to_list tl.Placement.receivers
    |> List.filter_map (fun u -> first.(u))
  in
  Alcotest.(check int) "every receiver reached" delta
    (List.length receiver_times);
  Alcotest.(check int) "last receiver waits delta slots" delta
    (List.fold_left max 0 receiver_times)

(* ---------------- Combined MAC (Algorithm 11.1) ---------------- *)

let test_combined_bcast_rcv_ack () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0.; Point.make 10. 0. |] in
  let sinr = Sinr.create cfg pts in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 41) in
  let rcvs = ref [] and acks = ref [] in
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv =
        (fun ~node ~payload -> rcvs := (Combined_mac.now mac, node, payload) :: !rcvs);
      on_ack =
        (fun ~node ~payload -> acks := (Combined_mac.now mac, node, payload) :: !acks) };
  let p = Combined_mac.bcast mac ~node:1 ~data:99 in
  Alcotest.(check bool) "busy after bcast" true (Combined_mac.busy mac ~node:1);
  let budget = ref (Combined_mac.bounds mac).Absmac_intf.f_ack in
  while !acks = [] && !budget > 0 do
    Combined_mac.step mac;
    decr budget
  done;
  (match !acks with
   | [ (slot, 1, payload) ] ->
     Alcotest.(check bool) "ack within f_ack" true
       (slot <= (Combined_mac.bounds mac).Absmac_intf.f_ack);
     Alcotest.(check bool) "same payload" true
       (Events.payload_id payload = Events.payload_id p)
   | _ -> Alcotest.fail "expected one ack at node 1");
  Alcotest.(check bool) "not busy after ack" false (Combined_mac.busy mac ~node:1);
  (* Both neighbors received before the ack. *)
  let receivers = List.sort_uniq compare (List.map (fun (_, v, _) -> v) !rcvs) in
  Alcotest.(check (list int)) "neighbors got rcv" [ 0; 2 ] receivers;
  let ack_slot = match !acks with [ (s, _, _) ] -> s | _ -> 0 in
  List.iter
    (fun (s, _, _) -> Alcotest.(check bool) "rcv before ack" true (s <= ack_slot))
    !rcvs

let test_combined_rcv_dedup () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let sinr = Sinr.create cfg pts in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 43) in
  let count = ref 0 in
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> incr count);
      on_ack = (fun ~node:_ ~payload:_ -> ()) };
  ignore (Combined_mac.bcast mac ~node:0 ~data:1);
  for _ = 1 to 4000 do
    Combined_mac.step mac
  done;
  Alcotest.(check int) "exactly one rcv for one payload" 1 !count

let test_combined_abort () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let sinr = Sinr.create cfg pts in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 44) in
  let acked = ref false in
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> acked := true) };
  ignore (Combined_mac.bcast mac ~node:0 ~data:1);
  Combined_mac.step mac;
  Combined_mac.abort mac ~node:0;
  Alcotest.(check bool) "not busy" false (Combined_mac.busy mac ~node:0);
  for _ = 1 to ((Combined_mac.bounds mac).Absmac_intf.f_ack + 10) do
    Combined_mac.step mac
  done;
  Alcotest.(check bool) "no ack after abort" false !acked

let test_combined_double_bcast_rejected () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let sinr = Sinr.create cfg pts in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 45) in
  ignore (Combined_mac.bcast mac ~node:0 ~data:1);
  Alcotest.(check bool) "rejected" true
    (try ignore (Combined_mac.bcast mac ~node:0 ~data:2); false
     with Invalid_argument _ -> true)

let test_combined_deterministic () =
  let run seed =
    let sinr = uniform_net 46 20 15. in
    let mac = Combined_mac.create sinr ~rng:(Rng.create seed) in
    let ack_slot = ref 0 in
    Combined_mac.set_handlers mac
      { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
        on_ack = (fun ~node:_ ~payload:_ -> ack_slot := Combined_mac.now mac) };
    ignore (Combined_mac.bcast mac ~node:0 ~data:1);
    let budget = ref 100_000 in
    while !ack_slot = 0 && !budget > 0 do
      Combined_mac.step mac;
      decr budget
    done;
    !ack_slot
  in
  Alcotest.(check int) "same seed same ack slot" (run 7) (run 7)

(* ---------------- Measure.acks sanity ---------------- *)

let test_measure_acks_all_delivered () =
  let sinr = uniform_net 47 30 20. in
  let senders = [ 0; 7; 15; 22 ] in
  let samples =
    Measure.acks sinr ~rng:(Rng.create 48) ~senders ~max_slots:400_000
  in
  Alcotest.(check int) "sample per sender" (List.length senders)
    (List.length samples);
  List.iter
    (fun s ->
      Alcotest.(check bool) "reached <= neighbors" true
        (s.Measure.reached <= s.Measure.neighbors);
      Alcotest.(check bool) "positive delay" true (s.Measure.delay > 0))
    samples;
  (* eps_ack = 0.1: demand most broadcasts were nice. *)
  let nice =
    List.filter (fun s -> s.Measure.reached = s.Measure.neighbors) samples
  in
  Alcotest.(check bool) "most broadcasts nice" true
    (List.length nice >= List.length samples - 1)

let test_covered_listeners () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  Alcotest.(check (list int)) "covered" [ 1 ]
    (Measure.covered_listeners ~approx_graph:g ~senders:[ 0 ] ~n:4);
  Alcotest.(check (list int)) "sender not covered" [ 0; 2 ]
    (Measure.covered_listeners ~approx_graph:g ~senders:[ 1 ] ~n:4)

let suite =
  [ Alcotest.test_case "schedule monotone in lambda" `Quick
      test_schedule_monotone_in_lambda;
    Alcotest.test_case "schedule layout" `Quick test_schedule_layout;
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "formulas monotone" `Quick test_formulas_monotone;
    Alcotest.test_case "contention default" `Quick test_contention_default;
    Alcotest.test_case "ideal: delivers all neighbors" `Quick
      test_ideal_delivers_all_neighbors;
    Alcotest.test_case "ideal: adversarial timing" `Quick
      test_ideal_adversarial_timing;
    Alcotest.test_case "ideal: busy and abort" `Quick test_ideal_busy_and_abort;
    Alcotest.test_case "ideal: isolated node acks" `Quick
      test_ideal_isolated_node_acks;
    Alcotest.test_case "hm: halts without reception" `Quick
      test_hm_halts_without_reception;
    Alcotest.test_case "hm: fallback on receptions" `Quick
      test_hm_fallback_on_receptions;
    Alcotest.test_case "hm: contention slows halt" `Quick
      test_hm_contention_slows_halt;
    Alcotest.test_case "hm: stop resets" `Quick test_hm_stop_resets;
    Alcotest.test_case "hm: pair delivery" `Quick test_hm_pair_delivery;
    Alcotest.test_case "decay cycle" `Quick test_decay_cycle;
    Alcotest.test_case "approg: epoch rollover" `Quick test_approg_epoch_rollover;
    Alcotest.test_case "approg: membership waits for epoch" `Quick
      test_approg_membership_waits_for_epoch;
    Alcotest.test_case "approg: progress on small net" `Slow
      test_approg_progress_small_net;
    Alcotest.test_case "approg: vacuous on Fig 1" `Quick
      test_approg_vacuous_on_fig1;
    Alcotest.test_case "approg: rcv dedup" `Slow test_approg_rcv_dedup;
    Alcotest.test_case "fig1: unique pairing" `Quick test_fig1_pairing;
    Alcotest.test_case "fig1: single sender delivers" `Quick
      test_fig1_single_sender_delivers;
    Alcotest.test_case "fig1: two senders block everything" `Quick
      test_fig1_two_senders_block_everything;
    Alcotest.test_case "fig1: round robin needs delta slots" `Quick
      test_fig1_round_robin_needs_delta_slots;
    Alcotest.test_case "combined: bcast/rcv/ack" `Quick test_combined_bcast_rcv_ack;
    Alcotest.test_case "combined: rcv dedup" `Quick test_combined_rcv_dedup;
    Alcotest.test_case "combined: abort" `Quick test_combined_abort;
    Alcotest.test_case "combined: double bcast rejected" `Quick
      test_combined_double_bcast_rejected;
    Alcotest.test_case "combined: deterministic" `Quick test_combined_deterministic;
    Alcotest.test_case "measure: acks all delivered" `Slow
      test_measure_acks_all_delivered;
    Alcotest.test_case "measure: covered listeners" `Quick test_covered_listeners ]
