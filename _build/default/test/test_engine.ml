(* Tests for the synchronous simulation engine. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine

let cfg = Config.default

let line_net n spacing =
  Sinr.create cfg (Placement.line ~n ~spacing)

let test_wakeup_semantics () =
  let eng = Engine.create (line_net 3 5.) in
  Alcotest.(check bool) "initially asleep" false (Engine.is_awake eng 0);
  Engine.wake eng 0;
  Alcotest.(check bool) "woken" true (Engine.is_awake eng 0);
  Alcotest.(check (list int)) "awake set" [ 0 ] (Engine.awake_nodes eng)

let test_asleep_nodes_do_not_transmit () =
  let eng = Engine.create (line_net 2 5.) in
  (* Nobody awake: decide must not be consulted; no deliveries. *)
  let consulted = ref false in
  let ds =
    Engine.step eng ~decide:(fun _ -> consulted := true; Engine.Listen)
  in
  Alcotest.(check bool) "decide not consulted" false !consulted;
  Alcotest.(check int) "no deliveries" 0 (List.length ds)

let test_delivery_and_wake_on_receive () =
  let eng = Engine.create (line_net 2 5.) in
  Engine.wake eng 0;
  let ds =
    Engine.step eng ~decide:(fun v ->
        if v = 0 then Engine.Transmit "hello" else Engine.Listen)
  in
  (match ds with
   | [ d ] ->
     Alcotest.(check int) "receiver" 1 d.Engine.receiver;
     Alcotest.(check int) "sender" 0 d.Engine.sender;
     Alcotest.(check string) "message" "hello" d.Engine.message
   | _ -> Alcotest.fail "expected exactly one delivery");
  Alcotest.(check bool) "receiver woke up" true (Engine.is_awake eng 1)

let test_no_wake_on_receive_opt_out () =
  let eng = Engine.create ~wake_on_receive:false (line_net 2 5.) in
  Engine.wake eng 0;
  let _ =
    Engine.step eng ~decide:(fun v ->
        if v = 0 then Engine.Transmit "x" else Engine.Listen)
  in
  Alcotest.(check bool) "receiver stays asleep" false (Engine.is_awake eng 1)

let test_crashed_nodes_silent () =
  let eng = Engine.create (line_net 2 5.) in
  Engine.wake eng 0;
  Engine.wake eng 1;
  Engine.crash eng 0;
  let ds =
    Engine.step eng ~decide:(fun _ -> Engine.Transmit "x")
  in
  (* Node 0 crashed: it neither transmits nor receives; node 1 transmits but
     no listener remains. *)
  Alcotest.(check int) "no deliveries" 0 (List.length ds);
  Alcotest.(check bool) "crashed not awake" false (Engine.is_awake eng 0);
  Alcotest.(check bool) "crashed cannot rewake" false
    (Engine.wake eng 0; Engine.is_awake eng 0)

let test_slot_counter_and_totals () =
  (* wake_on_receive off so node 1 stays a pure listener. *)
  let eng = Engine.create ~wake_on_receive:false (line_net 2 5.) in
  Engine.wake eng 0;
  for _ = 1 to 5 do
    ignore (Engine.step eng ~decide:(fun _ -> Engine.Transmit "m"))
  done;
  Alcotest.(check int) "slots" 5 (Engine.slot eng);
  Alcotest.(check int) "tx total" 5 (Engine.tx_total eng);
  Alcotest.(check int) "deliveries" 5 (Engine.delivery_total eng)

let test_run_stop_condition () =
  let eng = Engine.create (line_net 2 5.) in
  Engine.wake eng 0;
  let got = ref false in
  let slots =
    Engine.run eng
      ~on_deliver:(fun _ -> got := true)
      ~decide:(fun _ -> Engine.Transmit "m")
      ~stop:(fun () -> !got)
      ~max_slots:100
  in
  Alcotest.(check bool) "stopped early" true (slots < 100);
  Alcotest.(check bool) "delivered" true !got

let test_run_max_slots () =
  let eng = Engine.create (line_net 2 100.) in
  (* Out of range: nothing ever delivered, must hit the slot cap. *)
  Engine.wake eng 0;
  let slots =
    Engine.run eng
      ~decide:(fun _ -> Engine.Transmit "m")
      ~stop:(fun () -> false)
      ~max_slots:37
  in
  Alcotest.(check int) "cap respected" 37 slots

let test_determinism_same_seed () =
  (* Full pipeline determinism: same seed, same deployment, same protocol
     randomness => identical delivery counts. *)
  let run_once seed =
    let rng = Rng.create seed in
    let pts =
      Placement.uniform rng ~n:30 ~box:(Box.square ~side:30.) ~min_dist:1.
    in
    let eng = Engine.create (Sinr.create cfg pts) in
    Engine.wake_all eng;
    for _ = 1 to 50 do
      ignore
        (Engine.step eng ~decide:(fun _ ->
             if Rng.bernoulli rng 0.2 then Engine.Transmit "m"
             else Engine.Listen))
    done;
    (Engine.tx_total eng, Engine.delivery_total eng)
  in
  Alcotest.(check bool) "same totals" true (run_once 99 = run_once 99);
  Alcotest.(check bool) "different seed usually differs" true
    (run_once 99 <> run_once 100)

(* ---------------- Trace ---------------- *)

let test_trace_order_and_count () =
  let t = Trace.create () in
  Trace.record t ~slot:1 (Trace.Bcast { node = 0; msg = 7 });
  Trace.record t ~slot:2 (Trace.Rcv { node = 1; msg = 7; from = 0 });
  Trace.record t ~slot:3 (Trace.Ack { node = 0; msg = 7 });
  let evs = Trace.events t in
  Alcotest.(check int) "count" 3 (List.length evs);
  (match evs with
   | { Trace.slot = 1; event = Trace.Bcast _ } :: _ -> ()
   | _ -> Alcotest.fail "oldest first");
  Alcotest.(check int) "rcv count" 1
    (Trace.count t (fun e ->
         match e.Trace.event with Trace.Rcv _ -> true | _ -> false))

let test_trace_capacity () =
  let t = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.record t ~slot:i (Trace.Note "x")
  done;
  Alcotest.(check bool) "dropped some" true (Trace.dropped t > 0);
  Alcotest.(check bool) "bounded" true (List.length (Trace.events t) <= 11)

let test_trace_find_first () =
  let t = Trace.create () in
  Trace.record t ~slot:5 (Trace.Ack { node = 1; msg = 3 });
  Trace.record t ~slot:9 (Trace.Ack { node = 2; msg = 3 });
  (match
     Trace.find_first t (fun e ->
         match e.Trace.event with Trace.Ack _ -> true | _ -> false)
   with
   | Some { Trace.slot; _ } -> Alcotest.(check int) "first ack slot" 5 slot
   | None -> Alcotest.fail "expected an ack")

(* ---------------- Fault ---------------- *)

let test_fault_plan () =
  let rng = Rng.create 4 in
  let plan =
    Fault.random_crashes rng ~n:10 ~count:3 ~horizon:50 ~protect:[ 0; 1 ]
  in
  Alcotest.(check int) "three crashes" 3 (List.length plan);
  List.iter
    (fun (slot, v) ->
      Alcotest.(check bool) "not protected" true (v <> 0 && v <> 1);
      Alcotest.(check bool) "slot in horizon" true (slot >= 0 && slot < 50))
    plan

let test_fault_apply () =
  let eng = Engine.create (line_net 4 5.) in
  Engine.wake_all eng;
  let plan = [ (0, 2); (100, 3) ] in
  let crashed, rest = Fault.apply plan eng in
  Alcotest.(check (list int)) "crashed now" [ 2 ] crashed;
  Alcotest.(check int) "one pending" 1 (List.length rest);
  Alcotest.(check bool) "engine reflects crash" true (Engine.is_crashed eng 2)

let suite =
  [ Alcotest.test_case "wakeup semantics" `Quick test_wakeup_semantics;
    Alcotest.test_case "asleep nodes do not transmit" `Quick
      test_asleep_nodes_do_not_transmit;
    Alcotest.test_case "delivery + wake on receive" `Quick
      test_delivery_and_wake_on_receive;
    Alcotest.test_case "wake_on_receive opt out" `Quick
      test_no_wake_on_receive_opt_out;
    Alcotest.test_case "crashed nodes silent" `Quick test_crashed_nodes_silent;
    Alcotest.test_case "slot counter and totals" `Quick
      test_slot_counter_and_totals;
    Alcotest.test_case "run stop condition" `Quick test_run_stop_condition;
    Alcotest.test_case "run max slots" `Quick test_run_max_slots;
    Alcotest.test_case "determinism per seed" `Quick test_determinism_same_seed;
    Alcotest.test_case "trace order and count" `Quick test_trace_order_and_count;
    Alcotest.test_case "trace capacity" `Quick test_trace_capacity;
    Alcotest.test_case "trace find first" `Quick test_trace_find_first;
    Alcotest.test_case "fault plan" `Quick test_fault_plan;
    Alcotest.test_case "fault apply" `Quick test_fault_apply ]
