(* Tests for the geometry substrate. *)

open Sinr_geom

let rng () = Rng.create 42

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let c1 = Rng.split parent ~key:1 and c2 = Rng.split parent ~key:2 in
  let s1 = List.init 50 (fun _ -> Rng.int c1 1_000_000) in
  let s2 = List.init 50 (fun _ -> Rng.int c2 1_000_000) in
  Alcotest.(check bool) "different streams" true (s1 <> s2)

let test_rng_split_reproducible () =
  let mk () = Rng.split (Rng.create 9) ~key:33 in
  let a = mk () and b = mk () in
  Alcotest.(check int) "same derived stream" (Rng.int a 9999) (Rng.int b 9999)

let test_rng_bernoulli_extremes () =
  let r = rng () in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.)

let test_rng_bernoulli_rate () =
  let r = rng () in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_int_range () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Rng.int_range r 5 9 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 9)
  done

let test_rng_shuffle_permutes () =
  let r = rng () in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* ---------------- Point ---------------- *)

let test_point_dist () =
  let a = Point.make 0. 0. and b = Point.make 3. 4. in
  Alcotest.(check (float 1e-9)) "3-4-5" 5.0 (Point.dist a b);
  Alcotest.(check (float 1e-9)) "squared" 25.0 (Point.dist2 a b)

let test_point_linf () =
  let a = Point.make 0. 0. and b = Point.make 3. 4. in
  Alcotest.(check (float 1e-9)) "linf" 4.0 (Point.dist_linf a b)

let test_point_algebra () =
  let a = Point.make 1. 2. and b = Point.make 3. 5. in
  Alcotest.(check bool) "add" true
    (Point.equal (Point.add a b) (Point.make 4. 7.));
  Alcotest.(check bool) "sub" true
    (Point.equal (Point.sub b a) (Point.make 2. 3.));
  Alcotest.(check bool) "scale" true
    (Point.equal (Point.scale 2. a) (Point.make 2. 4.))

let test_point_on_circle () =
  let c = Point.make 1. 1. in
  let p = Point.on_circle ~center:c ~r:2. ~theta:0. in
  Alcotest.(check (float 1e-9)) "radius" 2.0 (Point.dist c p)

(* ---------------- Box ---------------- *)

let test_box_contains () =
  let b = Box.square ~side:10. in
  Alcotest.(check bool) "inside" true (Box.contains b (Point.make 5. 5.));
  Alcotest.(check bool) "outside" false (Box.contains b (Point.make 11. 5.))

let test_box_of_points () =
  let pts = [| Point.make 1. 2.; Point.make 4. 0.; Point.make 2. 5. |] in
  let b = Box.of_points pts in
  Alcotest.(check (float 1e-9)) "width" 3.0 (Box.width b);
  Alcotest.(check (float 1e-9)) "height" 5.0 (Box.height b);
  Array.iter
    (fun p -> Alcotest.(check bool) "contains all" true (Box.contains b p))
    pts

let test_box_sample_inside () =
  let r = rng () in
  let b = Box.make ~xmin:2. ~ymin:3. ~xmax:7. ~ymax:4. in
  for _ = 1 to 200 do
    Alcotest.(check bool) "sample inside" true (Box.contains b (Box.sample r b))
  done

let test_box_invalid () =
  Alcotest.check_raises "inverted box"
    (Invalid_argument "Box.make: inverted box") (fun () ->
      ignore (Box.make ~xmin:1. ~ymin:0. ~xmax:0. ~ymax:1.))

(* ---------------- Grid_index ---------------- *)

let test_grid_within_matches_bruteforce () =
  let r = rng () in
  let pts =
    Array.init 120 (fun _ ->
        Point.make (Rng.float r 50.) (Rng.float r 50.))
  in
  let idx = Grid_index.create ~cell:5.0 pts in
  for _ = 1 to 30 do
    let center = Point.make (Rng.float r 50.) (Rng.float r 50.) in
    let radius = Rng.float r 15. in
    let got = List.sort compare (Grid_index.within idx ~center ~r:radius) in
    let expect =
      List.filter
        (fun i -> Point.dist pts.(i) center <= radius)
        (List.init (Array.length pts) Fun.id)
    in
    Alcotest.(check (list int)) "grid = brute force" expect got
  done

let test_grid_nearest_other () =
  let pts = [| Point.make 0. 0.; Point.make 3. 0.; Point.make 10. 0. |] in
  let idx = Grid_index.create ~cell:2. pts in
  (match Grid_index.nearest_other idx 0 with
   | Some (j, d) ->
     Alcotest.(check int) "nearest id" 1 j;
     Alcotest.(check (float 1e-9)) "nearest dist" 3.0 d
   | None -> Alcotest.fail "expected a neighbor");
  let single = Grid_index.create ~cell:2. [| Point.origin |] in
  Alcotest.(check bool) "singleton has none" true
    (Grid_index.nearest_other single 0 = None)

(* ---------------- Placement ---------------- *)

let test_uniform_min_dist () =
  let r = rng () in
  let pts = Placement.uniform r ~n:150 ~box:(Box.square ~side:60.) ~min_dist:1. in
  Alcotest.(check int) "count" 150 (Array.length pts);
  Alcotest.(check bool) "min dist" true (Placement.min_pairwise_dist pts >= 1.)

let test_uniform_too_crowded () =
  let r = rng () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Placement.uniform r ~n:100 ~box:(Box.square ~side:5.) ~min_dist:1.);
       false
     with Placement.Placement_failed _ -> true)

let test_jittered_grid () =
  let r = rng () in
  let pts = Placement.jittered_grid r ~nx:8 ~ny:7 ~spacing:3. ~jitter:0.5 in
  Alcotest.(check int) "count" 56 (Array.length pts);
  Alcotest.(check bool) "min dist" true (Placement.min_pairwise_dist pts >= 1.)

let test_line () =
  let pts = Placement.line ~n:10 ~spacing:2. in
  Alcotest.(check int) "count" 10 (Array.length pts);
  Alcotest.(check (float 1e-9)) "spacing" 2.0
    (Point.dist pts.(0) pts.(1));
  Alcotest.(check (float 1e-9)) "length" 18.0
    (Point.dist pts.(0) pts.(9))

let test_two_lines_structure () =
  let tl = Placement.two_lines ~delta:5 ~spacing:1. ~gap:50. in
  Alcotest.(check int) "total points" 10 (Array.length tl.points);
  Array.iteri
    (fun i v ->
      let u = tl.receivers.(i) in
      Alcotest.(check (float 1e-9)) "paired distance = gap" 50.
        (Point.dist tl.points.(v) tl.points.(u)))
    tl.senders;
  (* Cross links other than the paired one are strictly longer. *)
  Alcotest.(check bool) "unpaired strictly longer" true
    (Point.dist tl.points.(tl.senders.(0)) tl.points.(tl.receivers.(1)) > 50.)

let test_two_balls_structure () =
  let r = rng () in
  let tb = Placement.two_balls r ~delta:20 ~radius:8. ~center_dist:40. in
  Alcotest.(check int) "ball1 size" 2 (Array.length tb.ball1);
  Alcotest.(check int) "ball2 size" 20 (Array.length tb.ball2);
  Alcotest.(check bool) "min dist" true
    (Placement.min_pairwise_dist tb.points >= 1.);
  (* Every ball2 node is far from every ball1 node. *)
  Array.iter
    (fun i ->
      Array.iter
        (fun j ->
          Alcotest.(check bool) "balls separated" true
            (Point.dist tb.points.(i) tb.points.(j) >= 40. -. 16.))
        tb.ball2)
    tb.ball1

let test_star_structure () =
  let r = rng () in
  let s = Placement.star r ~delta:12 ~radius:5. in
  Alcotest.(check int) "points" 13 (Array.length s.points);
  Array.iter
    (fun leaf ->
      Alcotest.(check bool) "leaf in radius" true
        (Point.dist s.points.(s.hub) s.points.(leaf) <= 5.))
    s.leaves;
  Alcotest.(check bool) "min dist" true
    (Placement.min_pairwise_dist s.points >= 1.)

let test_clusters () =
  let r = rng () in
  let pts =
    Placement.clusters r ~k:3 ~per_cluster:10 ~cluster_radius:4.
      ~centers_box:(Box.square ~side:80.)
  in
  Alcotest.(check int) "count" 30 (Array.length pts);
  Alcotest.(check bool) "min dist" true (Placement.min_pairwise_dist pts >= 1.)

let test_line_with_blob () =
  let r = rng () in
  let pts =
    Placement.line_with_blob r ~line_n:10 ~spacing:4. ~blob_n:15 ~blob_radius:6.
  in
  Alcotest.(check int) "count" 25 (Array.length pts);
  Alcotest.(check bool) "min dist" true (Placement.min_pairwise_dist pts >= 1.)

let test_min_pairwise_brute_agreement () =
  let r = rng () in
  for _ = 1 to 10 do
    let pts =
      Placement.uniform r ~n:40 ~box:(Box.square ~side:30.) ~min_dist:1.
    in
    let brute = ref Float.infinity in
    Array.iteri
      (fun i p ->
        Array.iteri
          (fun j q -> if i < j then brute := Float.min !brute (Point.dist p q))
          pts)
      pts;
    Alcotest.(check (float 1e-9)) "grid = brute" !brute
      (Placement.min_pairwise_dist pts)
  done

(* QCheck properties *)

let prop_dist_symmetric =
  QCheck.Test.make ~name:"point distance symmetric" ~count:200
    QCheck.(quad (float_bound_exclusive 100.) (float_bound_exclusive 100.)
              (float_bound_exclusive 100.) (float_bound_exclusive 100.))
    (fun (x1, y1, x2, y2) ->
      let a = Point.make x1 y1 and b = Point.make x2 y2 in
      Float.abs (Point.dist a b -. Point.dist b a) < 1e-9)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    QCheck.(triple (pair (float_bound_exclusive 50.) (float_bound_exclusive 50.))
              (pair (float_bound_exclusive 50.) (float_bound_exclusive 50.))
              (pair (float_bound_exclusive 50.) (float_bound_exclusive 50.)))
    (fun ((x1, y1), (x2, y2), (x3, y3)) ->
      let a = Point.make x1 y1
      and b = Point.make x2 y2
      and c = Point.make x3 y3 in
      Point.dist a c <= Point.dist a b +. Point.dist b c +. 1e-9)

let prop_linf_le_l2 =
  QCheck.Test.make ~name:"L-inf <= L2" ~count:200
    QCheck.(quad (float_bound_exclusive 100.) (float_bound_exclusive 100.)
              (float_bound_exclusive 100.) (float_bound_exclusive 100.))
    (fun (x1, y1, x2, y2) ->
      let a = Point.make x1 y1 and b = Point.make x2 y2 in
      Point.dist_linf a b <= Point.dist a b +. 1e-9)

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng split reproducible" `Quick test_rng_split_reproducible;
    Alcotest.test_case "rng bernoulli extremes" `Quick test_rng_bernoulli_extremes;
    Alcotest.test_case "rng bernoulli rate" `Quick test_rng_bernoulli_rate;
    Alcotest.test_case "rng int_range" `Quick test_rng_int_range;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "point distance" `Quick test_point_dist;
    Alcotest.test_case "point linf" `Quick test_point_linf;
    Alcotest.test_case "point algebra" `Quick test_point_algebra;
    Alcotest.test_case "point on_circle" `Quick test_point_on_circle;
    Alcotest.test_case "box contains" `Quick test_box_contains;
    Alcotest.test_case "box of_points" `Quick test_box_of_points;
    Alcotest.test_case "box sample inside" `Quick test_box_sample_inside;
    Alcotest.test_case "box invalid" `Quick test_box_invalid;
    Alcotest.test_case "grid within = brute force" `Quick
      test_grid_within_matches_bruteforce;
    Alcotest.test_case "grid nearest_other" `Quick test_grid_nearest_other;
    Alcotest.test_case "uniform min dist" `Quick test_uniform_min_dist;
    Alcotest.test_case "uniform too crowded" `Quick test_uniform_too_crowded;
    Alcotest.test_case "jittered grid" `Quick test_jittered_grid;
    Alcotest.test_case "line" `Quick test_line;
    Alcotest.test_case "two_lines structure" `Quick test_two_lines_structure;
    Alcotest.test_case "two_balls structure" `Quick test_two_balls_structure;
    Alcotest.test_case "star structure" `Quick test_star_structure;
    Alcotest.test_case "clusters" `Quick test_clusters;
    Alcotest.test_case "line with blob" `Quick test_line_with_blob;
    Alcotest.test_case "min pairwise = brute" `Quick
      test_min_pairwise_brute_agreement;
    QCheck_alcotest.to_alcotest prop_dist_symmetric;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_linf_le_l2 ]
