(* Extended protocol tests: exact-mode composition, [37] runtime-bound
   sanity, crash interactions, baseline invariants. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_engine
open Sinr_mac
open Sinr_proto

let cfg = Config.default

let uniform_net seed n side =
  let rng = Rng.create seed in
  Sinr.create cfg (Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1.)

let path_graph n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(* ---------------- BMMB over the exact-mode MAC ---------------- *)

let test_bmmb_over_exact_mac () =
  let sinr = uniform_net 201 20 14. in
  let mac = Combined_mac.create ~exact:true sinr ~rng:(Rng.create 202) in
  let proto = Bmmb.create (Mac_driver.of_combined mac) in
  Bmmb.arrive proto ~node:0 ~msg:1;
  let completed =
    Bmmb.run_until_complete proto ~nodes:(List.init 20 Fun.id) ~msgs:[ 1 ]
      ~max_steps:3_000_000
  in
  Alcotest.(check bool) "completes in exact mode" true (completed <> None)

(* ---------------- [37] runtime bound sanity (Theorem 12.1) ------------ *)

let test_bsmb_runtime_bound_ideal () =
  (* Over the ideal MAC with zero failure probability, Theorem 12.1 gives
     completion within (c3*D + c2*ln(n/g')) * f_prog with c2 = 2, c3 = 3
     (plus the per-hop queueing the basic protocol adds, bounded by f_ack
     per hop).  Check the conservative combination. *)
  let n = 10 in
  let bounds =
    { Absmac_intf.f_ack = 12;
      f_prog = 4;
      f_approg = 4;
      eps_ack = 0.;
      eps_prog = 0.;
      eps_approg = 0. }
  in
  let mac =
    Ideal_mac.create ~policy:Ideal_mac.Adversarial (path_graph n) ~bounds
      ~rng:(Rng.create 203)
  in
  let proto = Bmmb.create (Mac_driver.of_ideal mac) in
  Bmmb.arrive proto ~node:0 ~msg:1;
  match
    Bmmb.run_until_complete proto ~nodes:(List.init n Fun.id) ~msgs:[ 1 ]
      ~max_steps:100_000
  with
  | None -> Alcotest.fail "did not complete"
  | Some t ->
    let d = float_of_int (n - 1) in
    let bound =
      ((3. *. d) +. (2. *. log (float_of_int n)))
      *. float_of_int bounds.Absmac_intf.f_ack
    in
    Alcotest.(check bool) "within the Theorem 12.1 envelope" true
      (float_of_int t <= bound)

(* ---------------- Crashes and broadcast ---------------- *)

let test_bmmb_with_crashed_node () =
  (* Crash a node mid-broadcast on a dense network: the rest completes. *)
  let sinr = uniform_net 204 15 10. in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 205) in
  let proto = Bmmb.create (Mac_driver.of_combined mac) in
  Bmmb.arrive proto ~node:0 ~msg:9;
  Engine.crash (Combined_mac.engine mac) 7;
  let completed =
    Bmmb.run_until_complete proto ~nodes:(List.init 15 Fun.id) ~msgs:[ 9 ]
      ~max_steps:3_000_000
  in
  Alcotest.(check bool) "survivors complete" true (completed <> None);
  Alcotest.(check bool) "crashed node never delivered" false
    (Bmmb.delivered proto ~node:7 ~msg:9)

(* ---------------- Consensus details ---------------- *)

let test_consensus_validation () =
  let mac =
    Ideal_mac.create (path_graph 3)
      ~bounds:
        { Absmac_intf.f_ack = 5; f_prog = 2; f_approg = 2; eps_ack = 0.;
          eps_prog = 0.; eps_approg = 0. }
      ~rng:(Rng.create 206)
  in
  let driver = Mac_driver.of_ideal mac in
  Alcotest.(check bool) "bad initial size rejected" true
    (try ignore (Consensus.create driver ~initial:[| true |] ~rounds_bound:2); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad rounds_bound rejected" true
    (try
       ignore
         (Consensus.create driver ~initial:[| true; false; true |] ~rounds_bound:0);
       false
     with Invalid_argument _ -> true)

let test_consensus_decided_slots () =
  let n = 5 in
  let bounds =
    { Absmac_intf.f_ack = 8; f_prog = 3; f_approg = 3; eps_ack = 0.;
      eps_prog = 0.; eps_approg = 0. }
  in
  let mac = Ideal_mac.create (path_graph n) ~bounds ~rng:(Rng.create 207) in
  let proto =
    Consensus.create (Mac_driver.of_ideal mac)
      ~initial:(Array.init n (fun v -> v mod 2 = 0))
      ~rounds_bound:(2 * n)
  in
  ignore (Consensus.run proto ~max_steps:10_000);
  let decide_at = 2 * n * bounds.Absmac_intf.f_ack in
  for v = 0 to n - 1 do
    match Consensus.decided_slot proto ~node:v with
    | Some slot ->
      Alcotest.(check bool) "decided at or after the deadline" true
        (slot >= decide_at)
    | None -> Alcotest.fail "expected a decision"
  done

let test_consensus_initial_values_copied () =
  let bounds =
    { Absmac_intf.f_ack = 5; f_prog = 2; f_approg = 2; eps_ack = 0.;
      eps_prog = 0.; eps_approg = 0. }
  in
  let mac = Ideal_mac.create (path_graph 3) ~bounds ~rng:(Rng.create 208) in
  let initial = [| true; false; true |] in
  let proto =
    Consensus.create (Mac_driver.of_ideal mac) ~initial ~rounds_bound:4
  in
  initial.(0) <- false;
  Alcotest.(check bool) "defensive copy" true
    (Consensus.initial_values proto).(0)

(* ---------------- Baselines invariants ---------------- *)

let test_dgkn_informed_matches_completion () =
  let sinr = uniform_net 209 18 13. in
  let r = Dgkn_broadcast.run sinr ~rng:(Rng.create 210) ~source:0
      ~max_slots:3_000_000
  in
  Alcotest.(check bool) "completed implies all informed" true
    (r.Dgkn_broadcast.completed = None || r.Dgkn_broadcast.informed = 18)

let test_decay_flood_budget_respected () =
  (* A disconnected deployment cannot complete; the run must stop at the
     budget with a partial count. *)
  let pts = [| Point.make 0. 0.; Point.make 5. 0.; Point.make 500. 0. |] in
  let sinr = Sinr.create cfg pts in
  let r = Decay_flood.run sinr ~rng:(Rng.create 211) ~source:0 ~max_slots:200 in
  Alcotest.(check bool) "no completion" true (r.Decay_flood.completed = None);
  Alcotest.(check int) "partial reach" 2 r.Decay_flood.informed

let test_mac_driver_alive_tracks_crash () =
  let sinr = uniform_net 212 5 8. in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 213) in
  let driver = Mac_driver.of_combined mac in
  Alcotest.(check bool) "alive" true (driver.Mac_driver.alive ~node:3);
  Engine.crash (Combined_mac.engine mac) 3;
  Alcotest.(check bool) "dead after crash" false (driver.Mac_driver.alive ~node:3)

(* ---------------- BMMB properties over random graphs ---------------- *)

let prop_bmmb_exactly_once =
  QCheck.Test.make ~name:"bmmb delivers exactly once per (node, msg)" ~count:30
    QCheck.(pair (int_range 1 500) (int_range 2 12))
    (fun (seed, n) ->
      (* Random connected graph: a path plus random chords. *)
      let rng = Rng.create seed in
      let chords =
        List.init (n / 2) (fun _ -> (Rng.int rng n, Rng.int rng n))
      in
      let g =
        Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)) @ chords)
      in
      let bounds =
        { Absmac_intf.f_ack = 6; f_prog = 2; f_approg = 2; eps_ack = 0.;
          eps_prog = 0.; eps_approg = 0. }
      in
      let mac = Ideal_mac.create g ~bounds ~rng:(Rng.split rng ~key:1) in
      let proto = Bmmb.create (Mac_driver.of_ideal mac) in
      Bmmb.arrive proto ~node:0 ~msg:1;
      Bmmb.arrive proto ~node:(n - 1) ~msg:2;
      (match
         Bmmb.run_until_complete proto ~nodes:(List.init n Fun.id)
           ~msgs:[ 1; 2 ] ~max_steps:50_000
       with
       | None -> false
       | Some _ ->
         let ds = Bmmb.deliveries proto in
         List.length ds = 2 * n
         && List.length (List.sort_uniq compare
                           (List.map (fun d -> (d.Bmmb.node, d.Bmmb.msg)) ds))
            = 2 * n))

let prop_consensus_agreement_random_graphs =
  QCheck.Test.make ~name:"consensus agreement+validity on random graphs"
    ~count:30
    QCheck.(pair (int_range 1 500) (int_range 2 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let chords =
        List.init n (fun _ -> (Rng.int rng n, Rng.int rng n))
      in
      let g =
        Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)) @ chords)
      in
      let bounds =
        { Absmac_intf.f_ack = 6; f_prog = 2; f_approg = 2; eps_ack = 0.;
          eps_prog = 0.; eps_approg = 0. }
      in
      let mac = Ideal_mac.create g ~bounds ~rng:(Rng.split rng ~key:1) in
      let initial = Array.init n (fun v -> Rng.bool rng && v >= 0) in
      let proto =
        Consensus.create (Mac_driver.of_ideal mac) ~initial
          ~rounds_bound:(2 * n)
      in
      match Consensus.run proto ~max_steps:50_000 with
      | None -> false
      | Some _ -> Consensus.agreement proto && Consensus.validity proto)

let suite =
  [ Alcotest.test_case "bmmb over exact-mode MAC" `Slow test_bmmb_over_exact_mac;
    Alcotest.test_case "bsmb runtime bound (Thm 12.1)" `Quick
      test_bsmb_runtime_bound_ideal;
    Alcotest.test_case "bmmb with crashed node" `Slow test_bmmb_with_crashed_node;
    Alcotest.test_case "consensus validation" `Quick test_consensus_validation;
    Alcotest.test_case "consensus decided slots" `Quick
      test_consensus_decided_slots;
    Alcotest.test_case "consensus initial values copied" `Quick
      test_consensus_initial_values_copied;
    Alcotest.test_case "dgkn informed matches completion" `Quick
      test_dgkn_informed_matches_completion;
    Alcotest.test_case "decay flood budget respected" `Quick
      test_decay_flood_budget_respected;
    Alcotest.test_case "mac driver alive tracks crash" `Quick
      test_mac_driver_alive_tracks_crash;
    QCheck_alcotest.to_alcotest prop_bmmb_exactly_once;
    QCheck_alcotest.to_alcotest prop_consensus_agreement_random_graphs ]
