(* Extended engine tests: conservation invariants under random driving,
   wake/crash interactions, BMMB FIFO order, Theorem 12.6's component
   hypothesis on standard workloads. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_engine
open Sinr_mac
open Sinr_proto

let cfg = Config.default

(* Invariants under random transmission patterns:
   - deliveries per slot <= listeners (n - senders);
   - a transmitting node never appears as a receiver;
   - tx_total counts every Transmit decision. *)
let prop_engine_conservation =
  QCheck.Test.make ~name:"engine conservation invariants" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let pts =
        Placement.uniform rng ~n:20 ~box:(Box.square ~side:20.) ~min_dist:1.
      in
      let eng = Engine.create (Sinr.create cfg pts) in
      Engine.wake_all eng;
      let ok = ref true in
      let expected_tx = ref 0 in
      for _ = 1 to 30 do
        let senders = ref [] in
        let ds =
          Engine.step eng ~decide:(fun v ->
              if Rng.bernoulli rng 0.3 then begin
                incr expected_tx;
                senders := v :: !senders;
                Engine.Transmit v
              end
              else Engine.Listen)
        in
        if List.length ds > 20 - List.length !senders then ok := false;
        List.iter
          (fun d ->
            if List.mem d.Engine.receiver !senders then ok := false;
            if not (List.mem d.Engine.sender !senders) then ok := false;
            if d.Engine.message <> d.Engine.sender then ok := false)
          ds
      done;
      !ok && Engine.tx_total eng = !expected_tx)

let test_wake_idempotent () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let eng = Engine.create (Sinr.create cfg pts) in
  Engine.wake eng 0;
  Engine.wake eng 0;
  Alcotest.(check (list int)) "single wake entry" [ 0 ] (Engine.awake_nodes eng)

let test_crash_then_wake_all () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0.; Point.make 10. 0. |] in
  let eng = Engine.create (Sinr.create cfg pts) in
  Engine.crash eng 1;
  Engine.wake_all eng;
  Alcotest.(check (list int)) "crashed excluded from wake_all" [ 0; 2 ]
    (Engine.awake_nodes eng)

let test_crashed_receiver_gets_nothing () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let eng = Engine.create (Sinr.create cfg pts) in
  Engine.wake eng 0;
  Engine.crash eng 1;
  let ds =
    Engine.step eng ~decide:(fun _ -> Engine.Transmit "x")
  in
  Alcotest.(check int) "no delivery to crashed" 0 (List.length ds)

(* BMMB FIFO: two messages arriving at the same node are broadcast in
   arrival order ([37]'s bcastq is a FIFO queue). *)
let test_bmmb_fifo_order () =
  let g = Graph.of_edges ~n:2 [ (0, 1) ] in
  let bounds =
    { Absmac_intf.f_ack = 10; f_prog = 3; f_approg = 3; eps_ack = 0.;
      eps_prog = 0.; eps_approg = 0. }
  in
  let mac =
    Ideal_mac.create ~policy:Ideal_mac.Adversarial g ~bounds
      ~rng:(Rng.create 301)
  in
  let proto = Bmmb.create (Mac_driver.of_ideal mac) in
  Bmmb.arrive proto ~node:0 ~msg:11;
  Bmmb.arrive proto ~node:0 ~msg:22;
  ignore
    (Bmmb.run_until_complete proto ~nodes:[ 0; 1 ] ~msgs:[ 11; 22 ]
       ~max_steps:1000);
  let s1 = Option.get (Bmmb.delivery_slot proto ~node:1 ~msg:11) in
  let s2 = Option.get (Bmmb.delivery_slot proto ~node:1 ~msg:22) in
  Alcotest.(check bool) "fifo order preserved" true (s1 < s2)

(* Theorem 12.6's hypothesis on our standard workloads: the strong and
   approximation graphs have the same connected components. *)
let test_same_components_standard_workloads () =
  let check_deployment (d : Sinr_expt.Workloads.deployment) =
    Sinr_graph.Components.same_components d.Sinr_expt.Workloads.profile.Induced.strong
      d.Sinr_expt.Workloads.profile.Induced.approx
  in
  let rng = Rng.create 303 in
  let line_ok = check_deployment (Sinr_expt.Workloads.line ~hops:8 ()) in
  Alcotest.(check bool) "line workload" true line_ok;
  let ok = ref 0 in
  for k = 1 to 5 do
    let d =
      Sinr_expt.Workloads.connected (Rng.split rng ~key:k) (fun r ->
          Sinr_expt.Workloads.uniform r ~n:40 ~target_degree:10)
    in
    if check_deployment d then incr ok
  done;
  (* Dense connected deployments virtually always satisfy the hypothesis;
     tolerate one marginal instance. *)
  Alcotest.(check bool) "uniform workloads mostly satisfy Thm 12.6" true
    (!ok >= 4)

let suite =
  [ QCheck_alcotest.to_alcotest prop_engine_conservation;
    Alcotest.test_case "wake idempotent" `Quick test_wake_idempotent;
    Alcotest.test_case "crash excluded from wake_all" `Quick
      test_crash_then_wake_all;
    Alcotest.test_case "crashed receiver gets nothing" `Quick
      test_crashed_receiver_gets_nothing;
    Alcotest.test_case "bmmb fifo order" `Quick test_bmmb_fifo_order;
    Alcotest.test_case "Thm 12.6 components hypothesis" `Quick
      test_same_components_standard_workloads ]
