(* Extended MAC-layer tests: exact local broadcast (Remark 4.6), the oracle
   machine, traces, wire contents, and engine power reporting. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_engine
open Sinr_mac

let cfg = Config.default (* R = 12, strong 10.8, approx 9.6 *)

(* A 3-node line where node 2 is a weak-only neighbor of node 0:
   d(0,1) = 5 (strong), d(0,2) = 11.5 in (10.8, 12). *)
let weak_link_pts =
  [| Point.make 0. 0.; Point.make 5. 0.; Point.make 11.5 0. |]

let test_engine_reports_power () =
  let sinr = Sinr.create cfg weak_link_pts in
  let eng = Engine.create sinr in
  Engine.wake eng 0;
  let ds = Engine.step eng ~decide:(fun _ -> Engine.Transmit "m") in
  List.iter
    (fun d ->
      let dist = Point.dist weak_link_pts.(0) weak_link_pts.(d.Engine.receiver) in
      let expect = cfg.Config.power /. (dist ** cfg.Config.alpha) in
      Alcotest.(check (float 1e-9)) "power = P/d^alpha" expect d.Engine.power)
    ds;
  Alcotest.(check int) "both listeners decoded" 2 (List.length ds)

let run_mac ?exact ~slots pts ~senders =
  let sinr = Sinr.create cfg pts in
  let mac = Combined_mac.create ?exact sinr ~rng:(Rng.create 77) in
  let rcvs = ref [] in
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node ~payload:_ -> rcvs := node :: !rcvs);
      on_ack = (fun ~node:_ ~payload:_ -> ()) };
  List.iter (fun v -> ignore (Combined_mac.bcast mac ~node:v ~data:v)) senders;
  for _ = 1 to slots do
    Combined_mac.step mac
  done;
  List.sort_uniq compare !rcvs

let test_exact_mode_filters_weak_links () =
  (* Non-exact: the weak-only node 2 eventually gets a rcv; exact: never. *)
  let plain = run_mac ~slots:6000 weak_link_pts ~senders:[ 0 ] in
  Alcotest.(check (list int)) "plain mode reaches both" [ 1; 2 ] plain;
  let exact = run_mac ~exact:true ~slots:6000 weak_link_pts ~senders:[ 0 ] in
  Alcotest.(check (list int)) "exact mode reaches only the strong neighbor"
    [ 1 ] exact

let test_exact_mode_keeps_strong_boundary () =
  (* A receiver exactly at the strong radius must still be served. *)
  let d = Config.strong_range cfg *. (1. -. 1e-9) in
  let pts = [| Point.make 0. 0.; Point.make d 0. |] in
  let got = run_mac ~exact:true ~slots:6000 pts ~senders:[ 0 ] in
  Alcotest.(check (list int)) "boundary neighbor served" [ 1 ] got

(* ---------------- Oracle machine ---------------- *)

let uniform_net seed n side =
  let rng = Rng.create seed in
  Sinr.create cfg (Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1.)

let test_oracle_progress () =
  let sinr = uniform_net 81 40 22. in
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init 40 Fun.id) in
  let samples =
    Measure.approx_progress_oracle sinr ~rng:(Rng.create 82) ~senders
      ~max_slots:50_000
  in
  let ok = List.filter (fun s -> s.Measure.delay <> None) samples in
  Alcotest.(check bool) "has listeners" true (List.length samples > 0);
  Alcotest.(check bool) "most progressed" true
    (float_of_int (List.length ok) >= 0.8 *. float_of_int (List.length samples))

let test_oracle_faster_than_distributed () =
  let sinr = uniform_net 83 40 22. in
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init 40 Fun.id) in
  let sched =
    Params.schedule cfg
      ~lambda:(Induced.lambda cfg (Sinr.points sinr))
      Params.default_approg
  in
  let mean samples =
    let ds =
      List.filter_map
        (fun (s : Measure.approg_sample) -> Option.map float_of_int s.Measure.delay)
        samples
    in
    List.fold_left ( +. ) 0. ds /. float_of_int (max 1 (List.length ds))
  in
  let dist, _ =
    Measure.approx_progress_only sinr ~rng:(Rng.create 84) ~senders
      ~max_slots:(6 * sched.Params.epoch_slots)
  in
  let orac =
    Measure.approx_progress_oracle sinr ~rng:(Rng.create 85) ~senders
      ~max_slots:(6 * sched.Params.epoch_slots)
  in
  Alcotest.(check bool) "oracle strictly faster" true (mean orac < mean dist)

let test_oracle_membership_epochs () =
  let sinr = uniform_net 86 10 12. in
  let m = Approx_oracle.create Params.default_approg sinr ~rng:(Rng.create 87) in
  Alcotest.(check bool) "no members initially" true
    (List.for_all (fun v -> not (Approx_oracle.member m ~node:v)) (List.init 10 Fun.id));
  Approx_oracle.start m ~node:3 { Events.origin = 3; seq = 0; data = 0 };
  for _ = 1 to Approx_oracle.epoch_slots m do
    ignore (Approx_oracle.end_slot m)
  done;
  Alcotest.(check int) "epoch advanced" 1 (Approx_oracle.epoch_index m);
  Alcotest.(check bool) "joined at epoch boundary" true
    (Approx_oracle.member m ~node:3)

(* ---------------- Traces through the combined MAC ---------------- *)

let test_combined_trace_records () =
  let pts = [| Point.make 0. 0.; Point.make 5. 0. |] in
  let sinr = Sinr.create cfg pts in
  let trace = Trace.create () in
  let mac = Combined_mac.create ~trace sinr ~rng:(Rng.create 88) in
  ignore (Combined_mac.bcast mac ~node:0 ~data:1);
  let budget = ref 100_000 in
  while Combined_mac.busy mac ~node:0 && !budget > 0 do
    Combined_mac.step mac;
    decr budget
  done;
  let count kind =
    Trace.count trace (fun e ->
        match (e.Trace.event, kind) with
        | Trace.Bcast _, `B | Trace.Rcv _, `R | Trace.Ack _, `A -> true
        | _ -> false)
  in
  Alcotest.(check int) "one bcast" 1 (count `B);
  Alcotest.(check int) "one rcv" 1 (count `R);
  Alcotest.(check int) "one ack" 1 (count `A);
  (* Event order: bcast before rcv before ack. *)
  let slot_of kind =
    match
      Trace.find_first trace (fun e ->
          match (e.Trace.event, kind) with
          | Trace.Bcast _, `B | Trace.Rcv _, `R | Trace.Ack _, `A -> true
          | _ -> false)
    with
    | Some e -> e.Trace.slot
    | None -> -1
  in
  Alcotest.(check bool) "bcast <= rcv" true (slot_of `B <= slot_of `R);
  Alcotest.(check bool) "rcv <= ack" true (slot_of `R <= slot_of `A)

(* ---------------- HM wire contents ---------------- *)

let test_hm_transmits_its_payload () =
  let hm =
    Hm_ack.create Params.default_ack ~lambda:4. ~n:1 ~rng:(Rng.create 90)
  in
  let payload = { Events.origin = 0; seq = 5; data = 42 } in
  Hm_ack.start hm ~node:0 payload;
  let seen = ref false in
  for _ = 1 to 50_000 do
    match Hm_ack.decide hm ~node:0 with
    | Some (Events.Data p) ->
      seen := true;
      Alcotest.(check bool) "payload preserved" true
        (Events.payload_id p = (0, 5) && p.Events.data = 42)
    | Some _ -> Alcotest.fail "HM must transmit Data wires"
    | None -> ()
  done;
  Alcotest.(check bool) "transmitted at least once" true !seen

(* ---------------- Measure.progress source statistics ---------------- *)

let test_progress_can_come_from_weak_links_by_default () =
  (* Remark 4.6: without range detection, rcv events may originate from
     transmitters outside G_{1-eps} but inside G_1.  Verify our MAC indeed
     reports such receptions on the weak-link construction. *)
  let sinr = Sinr.create cfg weak_link_pts in
  let mac = Combined_mac.create sinr ~rng:(Rng.create 91) in
  let weak_hits = ref 0 in
  let strong = Induced.strong cfg weak_link_pts in
  Combined_mac.set_raw_rcv_hook mac (fun ev ->
      if not (Graph.mem_edge strong ev.Approx_progress.node ev.Approx_progress.from)
      then incr weak_hits);
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> ()) };
  ignore (Combined_mac.bcast mac ~node:0 ~data:1);
  for _ = 1 to 8000 do
    Combined_mac.step mac
  done;
  Alcotest.(check bool) "weak-link rcv observed" true (!weak_hits > 0)

let suite =
  [ Alcotest.test_case "engine reports received power" `Quick
      test_engine_reports_power;
    Alcotest.test_case "exact mode filters weak links" `Quick
      test_exact_mode_filters_weak_links;
    Alcotest.test_case "exact mode keeps strong boundary" `Quick
      test_exact_mode_keeps_strong_boundary;
    Alcotest.test_case "oracle progress" `Quick test_oracle_progress;
    Alcotest.test_case "oracle faster than distributed" `Slow
      test_oracle_faster_than_distributed;
    Alcotest.test_case "oracle membership epochs" `Quick
      test_oracle_membership_epochs;
    Alcotest.test_case "combined trace records" `Quick test_combined_trace_records;
    Alcotest.test_case "hm transmits its payload" `Quick
      test_hm_transmits_its_payload;
    Alcotest.test_case "weak-link rcv by default (Remark 4.6)" `Quick
      test_progress_can_come_from_weak_links_by_default ]
