(* Tests for the SINR physics: Eq. 1 semantics, induced graphs, reliability
   graphs. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys

let cfg = Config.default (* alpha=3 beta=1.5 N=1 eps=0.1, R=12 *)

(* ---------------- Config ---------------- *)

let test_config_range_roundtrip () =
  let c = Config.with_range ~range:20. () in
  Alcotest.(check (float 1e-9)) "range" 20.0 (Config.range c);
  Alcotest.(check (float 1e-9)) "strong range" 18.0 (Config.strong_range c);
  Alcotest.(check (float 1e-9)) "approx range" 16.0 (Config.approx_range c)

let test_config_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "alpha <= 2 rejected" true
    (bad (fun () -> Config.make ~alpha:2.0 ~beta:1.5 ~noise:1. ~power:1. ~eps:0.1));
  Alcotest.(check bool) "beta <= 1 rejected" true
    (bad (fun () -> Config.make ~alpha:3.0 ~beta:1.0 ~noise:1. ~power:1. ~eps:0.1));
  Alcotest.(check bool) "eps >= 1/2 rejected" true
    (bad (fun () -> Config.make ~alpha:3.0 ~beta:1.5 ~noise:1. ~power:1. ~eps:0.5))

(* ---------------- Sinr reception ---------------- *)

let two_nodes d = [| Point.make 0. 0.; Point.make d 0. |]

let test_single_sender_in_range () =
  let s = Sinr.create cfg (two_nodes 10.) in
  Alcotest.(check (option int)) "received" (Some 0)
    (Sinr.reception s ~senders:[ 0 ] ~receiver:1)

let test_single_sender_at_range () =
  let s = Sinr.create cfg (two_nodes (Config.range cfg)) in
  Alcotest.(check (option int)) "boundary received" (Some 0)
    (Sinr.reception s ~senders:[ 0 ] ~receiver:1)

let test_single_sender_out_of_range () =
  let s = Sinr.create cfg (two_nodes (Config.range cfg +. 0.5)) in
  Alcotest.(check (option int)) "not received" None
    (Sinr.reception s ~senders:[ 0 ] ~receiver:1)

let test_sender_does_not_receive () =
  let s = Sinr.create cfg (two_nodes 5.) in
  Alcotest.(check (option int)) "half duplex" None
    (Sinr.reception s ~senders:[ 0; 1 ] ~receiver:0)

let test_collision_blocks_both () =
  (* Receiver equidistant between two senders: equal powers, beta > 1 means
     neither decodes. *)
  let pts = [| Point.make 0. 0.; Point.make 10. 0.; Point.make 5. 0. |] in
  let s = Sinr.create cfg pts in
  Alcotest.(check (option int)) "collision" None
    (Sinr.reception s ~senders:[ 0; 1 ] ~receiver:2)

let test_capture_effect () =
  (* A much closer sender survives a distant interferer. *)
  let pts = [| Point.make 0. 0.; Point.make 2. 0.; Point.make 60. 0. |] in
  let s = Sinr.create cfg pts in
  Alcotest.(check (option int)) "capture" (Some 0)
    (Sinr.reception s ~senders:[ 0; 2 ] ~receiver:1)

let test_at_most_one_decodable () =
  (* beta > 1: whatever the geometry, a listener decodes at most one sender.
     resolve returns a single option per node by construction; check the
     stronger SINR statement directly. *)
  let r = Rng.create 11 in
  for _ = 1 to 20 do
    let pts =
      Placement.uniform r ~n:30 ~box:(Box.square ~side:40.) ~min_dist:1.
    in
    let s = Sinr.create cfg pts in
    let senders =
      List.filter (fun _ -> Rng.bernoulli r 0.4) (List.init 30 Fun.id)
    in
    if senders <> [] then
      for u = 0 to 29 do
        if not (List.mem u senders) then begin
          let decodable =
            List.filter
              (fun v ->
                Sinr.link_sinr s ~senders ~sender:v ~receiver:u
                >= cfg.Config.beta)
              senders
          in
          Alcotest.(check bool) "at most one decodable" true
            (List.length decodable <= 1)
        end
      done
  done

let test_resolve_agrees_with_reception () =
  let r = Rng.create 13 in
  let pts = Placement.uniform r ~n:25 ~box:(Box.square ~side:30.) ~min_dist:1. in
  let s = Sinr.create cfg pts in
  for _ = 1 to 10 do
    let senders =
      List.filter (fun _ -> Rng.bernoulli r 0.3) (List.init 25 Fun.id)
    in
    let resolved = Sinr.resolve s ~senders in
    for u = 0 to 24 do
      Alcotest.(check (option int)) "resolve = reception"
        (Sinr.reception s ~senders ~receiver:u)
        resolved.(u)
    done
  done

let test_interference_monotone () =
  (* Adding a sender never helps any link's SINR. *)
  let pts =
    [| Point.make 0. 0.; Point.make 8. 0.; Point.make 20. 0.; Point.make 30. 0. |]
  in
  let s = Sinr.create cfg pts in
  let before = Sinr.link_sinr s ~senders:[ 0 ] ~sender:0 ~receiver:1 in
  let after = Sinr.link_sinr s ~senders:[ 0; 2 ] ~sender:0 ~receiver:1 in
  Alcotest.(check bool) "more interference, lower sinr" true (after < before)

let test_near_field_rejected () =
  Alcotest.(check bool) "min distance enforced" true
    (try ignore (Sinr.create cfg (two_nodes 0.5)); false
     with Invalid_argument _ -> true)

(* ---------------- Induced graphs ---------------- *)

let test_induced_nesting () =
  let r = Rng.create 17 in
  let pts = Placement.uniform r ~n:80 ~box:(Box.square ~side:50.) ~min_dist:1. in
  let weak = Induced.weak cfg pts in
  let strong = Induced.strong cfg pts in
  let approx = Induced.approx cfg pts in
  Alcotest.(check bool) "approx <= strong" true
    (Graph.is_subgraph ~sub:approx ~super:strong);
  Alcotest.(check bool) "strong <= weak" true
    (Graph.is_subgraph ~sub:strong ~super:weak)

let test_induced_radius_exact () =
  let d = Config.strong_range cfg in
  let pts = [| Point.make 0. 0.; Point.make d 0.; Point.make (d +. 0.2) 10. |] in
  let strong = Induced.strong cfg pts in
  Alcotest.(check bool) "edge at exactly R(1-eps)" true (Graph.mem_edge strong 0 1);
  Alcotest.(check bool) "no edge beyond" false (Graph.mem_edge strong 0 2)

let test_lambda_positive () =
  let pts = [| Point.make 0. 0.; Point.make 2. 0. |] in
  Alcotest.(check (float 1e-9)) "lambda = R(1-eps)/2"
    (Config.strong_range cfg /. 2.)
    (Induced.lambda cfg pts)

let test_profile_consistent () =
  let r = Rng.create 19 in
  let pts = Placement.uniform r ~n:60 ~box:(Box.square ~side:30.) ~min_dist:1. in
  let p = Induced.profile cfg pts in
  Alcotest.(check int) "degree matches" (Graph.max_degree p.strong)
    p.strong_degree;
  Alcotest.(check bool) "approx diameter >= strong diameter" true
    (p.approx_diameter >= p.strong_diameter)

let test_growth_bound_sinr_graph () =
  (* SINR-induced graphs are growth bounded (footnote 3 / Definition 4.1). *)
  let r = Rng.create 23 in
  let pts = Placement.uniform r ~n:150 ~box:(Box.square ~side:60.) ~min_dist:1. in
  let g = Induced.strong cfg pts in
  Alcotest.(check bool) "growth bound r=1" true (Growth.check_bound g ~r:1);
  Alcotest.(check bool) "growth bound r=3" true (Growth.check_bound g ~r:3)

(* ---------------- Reliability graph ---------------- *)

let test_reliability_isolated_pair () =
  (* Two nodes alone: reception prob = p * (1 - p); with p = 0.5 and mu
     below 0.25 the edge must appear. *)
  let pts = two_nodes 5. in
  let s = Sinr.create cfg pts in
  let r = Rng.create 3 in
  let e = Reliability.estimate ~trials:800 s r ~set:[ 0; 1 ] ~p:0.5 ~mu:0.15 in
  Alcotest.(check bool) "edge present" true
    (Graph.mem_edge (Reliability.graph e) 0 1);
  let prob = Reliability.success_prob e (1, 0) in
  Alcotest.(check bool) "prob near p(1-p)" true (Float.abs (prob -. 0.25) < 0.07)

let test_reliability_out_of_range () =
  let pts = two_nodes (Config.range cfg +. 2.) in
  let s = Sinr.create cfg pts in
  let r = Rng.create 3 in
  let e = Reliability.estimate ~trials:300 s r ~set:[ 0; 1 ] ~p:0.5 ~mu:0.1 in
  Alcotest.(check bool) "no edge out of range" false
    (Graph.mem_edge (Reliability.graph e) 0 1)

let test_reliability_validation () =
  let s = Sinr.create cfg (two_nodes 5.) in
  let r = Rng.create 3 in
  Alcotest.(check bool) "mu >= p rejected" true
    (try
       ignore (Reliability.estimate s r ~set:[ 0; 1 ] ~p:0.3 ~mu:0.3);
       false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "config range roundtrip" `Quick test_config_range_roundtrip;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "single sender in range" `Quick test_single_sender_in_range;
    Alcotest.test_case "single sender at range" `Quick test_single_sender_at_range;
    Alcotest.test_case "single sender out of range" `Quick
      test_single_sender_out_of_range;
    Alcotest.test_case "half duplex" `Quick test_sender_does_not_receive;
    Alcotest.test_case "collision blocks both" `Quick test_collision_blocks_both;
    Alcotest.test_case "capture effect" `Quick test_capture_effect;
    Alcotest.test_case "at most one decodable (beta>1)" `Quick
      test_at_most_one_decodable;
    Alcotest.test_case "resolve = reception" `Quick
      test_resolve_agrees_with_reception;
    Alcotest.test_case "interference monotone" `Quick test_interference_monotone;
    Alcotest.test_case "near field rejected" `Quick test_near_field_rejected;
    Alcotest.test_case "induced graphs nested" `Quick test_induced_nesting;
    Alcotest.test_case "induced radius exact" `Quick test_induced_radius_exact;
    Alcotest.test_case "lambda" `Quick test_lambda_positive;
    Alcotest.test_case "profile consistent" `Quick test_profile_consistent;
    Alcotest.test_case "sinr graph growth bounded" `Quick
      test_growth_bound_sinr_graph;
    Alcotest.test_case "reliability isolated pair" `Quick
      test_reliability_isolated_pair;
    Alcotest.test_case "reliability out of range" `Quick
      test_reliability_out_of_range;
    Alcotest.test_case "reliability validation" `Quick test_reliability_validation ]
