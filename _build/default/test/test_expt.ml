(* Tests for the experiment harness: workload builders, report helpers and
   the cheap experiments end to end. *)

open Sinr_geom
open Sinr_graph
open Sinr_phys
open Sinr_expt

let rng () = Rng.create 1234

let test_uniform_workload_profile () =
  let d = Workloads.uniform (rng ()) ~n:60 ~target_degree:8 in
  let p = d.Workloads.profile in
  Alcotest.(check bool) "degree in the right ballpark" true
    (p.Induced.strong_degree >= 4 && p.Induced.strong_degree <= 24);
  Alcotest.(check bool) "lambda >= 1" true (p.Induced.lambda >= 1.)

let test_uniform_degree_scales_with_target () =
  let lo = Workloads.uniform (rng ()) ~n:60 ~target_degree:4 in
  let hi = Workloads.uniform (rng ()) ~n:60 ~target_degree:16 in
  Alcotest.(check bool) "denser target, higher degree" true
    (hi.Workloads.profile.Induced.strong_degree
     > lo.Workloads.profile.Induced.strong_degree)

let test_lambda_sweep_scales () =
  let small = Workloads.lambda_sweep (rng ()) ~range:6. ~n:30 ~per_range:6 in
  let large = Workloads.lambda_sweep (rng ()) ~range:24. ~n:30 ~per_range:6 in
  Alcotest.(check bool) "lambda grows with range" true
    (large.Workloads.profile.Induced.lambda
     > small.Workloads.profile.Induced.lambda)

let test_star_workload () =
  let d, s = Workloads.star (rng ()) ~delta:10 in
  Alcotest.(check int) "hub + leaves" 11 (Array.length s.Placement.leaves + 1);
  (* The hub is adjacent to every leaf in the strong graph. *)
  let strong = d.Workloads.profile.Induced.strong in
  Array.iter
    (fun leaf ->
      Alcotest.(check bool) "hub-leaf edge" true
        (Graph.mem_edge strong s.Placement.hub leaf))
    s.Placement.leaves

let test_fig1_workload () =
  let d, tl = Workloads.fig1 ~delta:5 in
  let strong = d.Workloads.profile.Induced.strong in
  (* delta cross edges, each sender paired uniquely. *)
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "paired" true
        (Graph.mem_edge strong v tl.Placement.receivers.(i)))
    tl.Placement.senders;
  (* No G_{1-2eps} cross edges: the vacuousness property. *)
  let approx = d.Workloads.profile.Induced.approx in
  Array.iter
    (fun v ->
      Array.iter
        (fun u ->
          Alcotest.(check bool) "no approx cross edge" false
            (Graph.mem_edge approx v u))
        tl.Placement.receivers)
    tl.Placement.senders

let test_two_balls_workload () =
  let d, tb = Workloads.two_balls (rng ()) ~delta:40 in
  Alcotest.(check int) "ball2 size" 40 (Array.length tb.Placement.ball2);
  let strong = d.Workloads.profile.Induced.strong in
  (* B1's nodes are strong neighbors of each other... *)
  Alcotest.(check bool) "b1 pair connected" true
    (Graph.mem_edge strong tb.Placement.ball1.(0) tb.Placement.ball1.(1));
  (* ...but no B1-B2 edge exists (the balls are 1.5R apart). *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          Alcotest.(check bool) "balls disconnected" false
            (Graph.mem_edge strong a b))
        tb.Placement.ball2)
    tb.Placement.ball1

let test_line_workload () =
  let d = Workloads.line ~hops:10 () in
  Alcotest.(check int) "diameter = hops" 10
    d.Workloads.profile.Induced.strong_diameter;
  Alcotest.(check bool) "connected" true
    (Components.is_connected d.Workloads.profile.Induced.strong)

(* ---------------- Report helpers ---------------- *)

let test_trials_counts_timeouts () =
  let summary, timeouts =
    Report.trials ~seeds:[ 1; 2; 3; 4 ] (fun seed ->
        if seed mod 2 = 0 then Some (float_of_int seed) else None)
  in
  Alcotest.(check int) "timeouts" 2 timeouts;
  match summary with
  | Some s -> Alcotest.(check (float 1e-9)) "mean of survivors" 3.0 s.Sinr_stats.Summary.mean
  | None -> Alcotest.fail "expected a summary"

let test_trials_all_timeout () =
  let summary, timeouts = Report.trials ~seeds:[ 1; 2 ] (fun _ -> None) in
  Alcotest.(check int) "all timed out" 2 timeouts;
  Alcotest.(check bool) "no summary" true (summary = None)

let test_shape_verdict_perfect () =
  let v =
    Report.shape_verdict ~label:"x" [| 1.; 2.; 4. |] [| 3.; 6.; 12. |]
  in
  Alcotest.(check bool) "mentions R^2" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       m = 0 || go 0
     in
     contains v "R^2=1.000" && contains v "growth ratio 1.00")

(* ---------------- Cheap experiments end-to-end ---------------- *)

let test_exp_progress_lb_end_to_end () =
  let rows = Exp_progress_lb.run ~deltas:[ 3; 5 ] () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "blocking verified" true r.Exp_progress_lb.pair_blockings_ok;
      Alcotest.(check int) "optimal = delta" r.Exp_progress_lb.delta
        r.Exp_progress_lb.optimal_progress;
      Alcotest.(check int) "vacuous coverage" 0 r.Exp_progress_lb.covered_by_approx)
    rows

let test_formula_helpers () =
  Alcotest.(check bool) "f_ack formula positive" true
    (Sinr_mac.Params.f_ack_formula ~delta:5 ~lambda:8. ~eps_ack:0.1 > 0.);
  Alcotest.(check bool) "f_approg formula positive" true
    (Sinr_mac.Params.f_approg_formula Config.default ~lambda:8. ~eps_approg:0.1
     > 0.)

let suite =
  [ Alcotest.test_case "uniform workload profile" `Quick
      test_uniform_workload_profile;
    Alcotest.test_case "uniform degree scales" `Quick
      test_uniform_degree_scales_with_target;
    Alcotest.test_case "lambda sweep scales" `Quick test_lambda_sweep_scales;
    Alcotest.test_case "star workload" `Quick test_star_workload;
    Alcotest.test_case "fig1 workload" `Quick test_fig1_workload;
    Alcotest.test_case "two balls workload" `Quick test_two_balls_workload;
    Alcotest.test_case "line workload" `Quick test_line_workload;
    Alcotest.test_case "trials counts timeouts" `Quick test_trials_counts_timeouts;
    Alcotest.test_case "trials all timeout" `Quick test_trials_all_timeout;
    Alcotest.test_case "shape verdict perfect" `Quick test_shape_verdict_perfect;
    Alcotest.test_case "exp progress lb end-to-end" `Quick
      test_exp_progress_lb_end_to_end;
    Alcotest.test_case "formula helpers" `Quick test_formula_helpers ]
