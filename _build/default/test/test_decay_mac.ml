(* Tests for the Decay-based absMAC comparison implementation. *)

open Sinr_geom
open Sinr_phys
open Sinr_mac

let cfg = Config.default

let pair_sinr d = Sinr.create cfg [| Point.make 0. 0.; Point.make d 0. |]

let test_bcast_rcv_ack () =
  let mac = Decay_mac.create (pair_sinr 5.) ~rng:(Rng.create 1) in
  let rcvs = ref [] and acks = ref [] in
  Decay_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node ~payload:_ -> rcvs := node :: !rcvs);
      on_ack = (fun ~node ~payload:_ -> acks := node :: !acks) };
  ignore (Decay_mac.bcast mac ~node:0 ~data:5);
  Alcotest.(check bool) "busy" true (Decay_mac.busy mac ~node:0);
  let budget = ref ((Decay_mac.bounds mac).Absmac_intf.f_ack + 5) in
  while Decay_mac.busy mac ~node:0 && !budget > 0 do
    Decay_mac.step mac;
    decr budget
  done;
  Alcotest.(check (list int)) "neighbor received" [ 1 ] !rcvs;
  Alcotest.(check (list int)) "sender acked" [ 0 ] !acks

let test_ack_at_budget () =
  let mac = Decay_mac.create (pair_sinr 5.) ~rng:(Rng.create 2) in
  let ack_slot = ref 0 in
  Decay_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> ack_slot := Decay_mac.now mac) };
  ignore (Decay_mac.bcast mac ~node:0 ~data:1);
  for _ = 1 to (Decay_mac.bounds mac).Absmac_intf.f_ack + 5 do
    Decay_mac.step mac
  done;
  Alcotest.(check int) "ack exactly at the budget"
    (Decay_mac.bounds mac).Absmac_intf.f_ack !ack_slot

let test_abort_no_ack () =
  let mac = Decay_mac.create (pair_sinr 5.) ~rng:(Rng.create 3) in
  let acked = ref false in
  Decay_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> acked := true) };
  ignore (Decay_mac.bcast mac ~node:0 ~data:1);
  Decay_mac.step mac;
  Decay_mac.abort mac ~node:0;
  for _ = 1 to (Decay_mac.bounds mac).Absmac_intf.f_ack + 5 do
    Decay_mac.step mac
  done;
  Alcotest.(check bool) "no ack after abort" false !acked;
  Alcotest.(check bool) "not busy" false (Decay_mac.busy mac ~node:0)

let test_rcv_dedup () =
  let mac = Decay_mac.create (pair_sinr 5.) ~rng:(Rng.create 4) in
  let count = ref 0 in
  Decay_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> incr count);
      on_ack = (fun ~node:_ ~payload:_ -> ()) };
  ignore (Decay_mac.bcast mac ~node:0 ~data:1);
  for _ = 1 to 500 do
    Decay_mac.step mac
  done;
  Alcotest.(check int) "single rcv despite repeats" 1 !count

let test_double_bcast_rejected () =
  let mac = Decay_mac.create (pair_sinr 5.) ~rng:(Rng.create 5) in
  ignore (Decay_mac.bcast mac ~node:0 ~data:1);
  Alcotest.(check bool) "rejected" true
    (try ignore (Decay_mac.bcast mac ~node:0 ~data:2); false
     with Invalid_argument _ -> true)

let test_budget_scales_with_lambda () =
  (* f_ack ~ N~ log N~ with N~ = 4*Lambda^2: doubling the range must grow
     the budget superlinearly. *)
  let mk range =
    let c = Config.with_range ~range () in
    let sinr = Sinr.create c [| Point.make 0. 0.; Point.make 5. 0. |] in
    (Decay_mac.bounds (Decay_mac.create sinr ~rng:(Rng.create 6))).Absmac_intf.f_ack
  in
  let small = mk 12. and large = mk 24. in
  Alcotest.(check bool) "budget grows > 4x when lambda doubles" true
    (large > 4 * small)

let test_bmmb_over_decay_mac () =
  (* The plug-and-play property: BMMB runs unchanged over this MAC too. *)
  let rng = Rng.create 7 in
  let pts = Placement.uniform rng ~n:12 ~box:(Box.square ~side:10.) ~min_dist:1. in
  let sinr = Sinr.create cfg pts in
  let mac = Decay_mac.create sinr ~rng:(Rng.split rng ~key:1) in
  let proto = Sinr_proto.Bmmb.create (Sinr_proto.Mac_driver.of_decay mac) in
  Sinr_proto.Bmmb.arrive proto ~node:0 ~msg:1;
  let completed =
    Sinr_proto.Bmmb.run_until_complete proto ~nodes:(List.init 12 Fun.id)
      ~msgs:[ 1 ] ~max_steps:2_000_000
  in
  Alcotest.(check bool) "bmmb completes over decay mac" true (completed <> None)

let suite =
  [ Alcotest.test_case "bcast/rcv/ack" `Quick test_bcast_rcv_ack;
    Alcotest.test_case "ack at budget" `Quick test_ack_at_budget;
    Alcotest.test_case "abort no ack" `Quick test_abort_no_ack;
    Alcotest.test_case "rcv dedup" `Quick test_rcv_dedup;
    Alcotest.test_case "double bcast rejected" `Quick test_double_bcast_rejected;
    Alcotest.test_case "budget scales with lambda" `Quick
      test_budget_scales_with_lambda;
    Alcotest.test_case "bmmb over decay mac" `Slow test_bmmb_over_decay_mac ]
