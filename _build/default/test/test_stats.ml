(* Tests for the statistics substrate. *)

open Sinr_stats

let test_summary_basic () =
  let s = Summary.of_samples [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "count" 5 s.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.stddev

let test_summary_single () =
  let s = Summary.of_samples [| 7. |] in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.stddev

let test_summary_empty () =
  Alcotest.(check bool) "raises" true
    (try ignore (Summary.of_samples [||]); false
     with Invalid_argument _ -> true)

let test_percentile_interpolation () =
  let xs = [| 0.; 10. |] in
  Alcotest.(check (float 1e-9)) "p50 interpolates" 5.0 (Summary.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Summary.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Summary.percentile xs 1.)

let test_fit_linear_exact () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> 3. +. (2. *. x)) xs in
  let a, b, r2 = Fit.linear xs ys in
  Alcotest.(check (float 1e-9)) "intercept" 3.0 a;
  Alcotest.(check (float 1e-9)) "slope" 2.0 b;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r2

let test_fit_proportional () =
  let preds = [| 1.; 2.; 4. |] in
  let ys = [| 3.; 6.; 12. |] in
  let c, r2 = Fit.proportional preds ys in
  Alcotest.(check (float 1e-9)) "scale" 3.0 c;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r2

let test_fit_proportional_noisy () =
  let preds = [| 1.; 2.; 4.; 8. |] in
  let ys = [| 3.1; 5.9; 12.2; 23.8 |] in
  let c, r2 = Fit.proportional preds ys in
  Alcotest.(check bool) "scale near 3" true (Float.abs (c -. 3.) < 0.1);
  Alcotest.(check bool) "r2 high" true (r2 > 0.99)

let test_fit_power_law () =
  let xs = [| 1.; 2.; 4.; 8.; 16. |] in
  let ys = Array.map (fun x -> 5. *. (x ** 1.5)) xs in
  let c, k, r2 = Fit.power_law xs ys in
  Alcotest.(check (float 1e-6)) "coef" 5.0 c;
  Alcotest.(check (float 1e-6)) "exponent" 1.5 k;
  Alcotest.(check (float 1e-6)) "r2" 1.0 r2

let test_growth_ratio () =
  let preds = [| 1.; 10. |] and ys = [| 2.; 20. |] in
  Alcotest.(check (float 1e-9)) "matched growth" 1.0 (Fit.growth_ratio preds ys)

let test_table_render () =
  let t =
    Table.create ~title:"demo" ~header:[ "a"; "b" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 4 && String.sub out 0 4 = "demo");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "row rendered" true (contains out "| yy | 22 |")

let test_table_bad_row () =
  let t = Table.create ~title:"t" ~header:[ "a"; "b" ] () in
  Alcotest.(check bool) "raises" true
    (try Table.add_row t [ "only-one" ]; false
     with Invalid_argument _ -> true)

let test_table_csv () =
  let t = Table.create ~title:"t" ~header:[ "a"; "b" ] () in
  Table.add_row t [ "1"; "x,y" ];
  Alcotest.(check string) "csv quoting" "a,b\n1,\"x,y\"\n" (Table.to_csv t)

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Summary.of_samples (Array.of_list xs) in
      s.min <= s.mean +. 1e-9 && s.mean <= s.max +. 1e-9)

let prop_proportional_r2_le_1 =
  QCheck.Test.make ~name:"proportional fit r2 <= 1" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 20)
              (pair (float_range 0.1 100.) (float_range 0.1 100.)))
    (fun pairs ->
      let preds = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      let _, r2 = Fit.proportional preds ys in
      r2 <= 1.0 +. 1e-9)

let suite =
  [ Alcotest.test_case "summary basic" `Quick test_summary_basic;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "percentile interpolation" `Quick
      test_percentile_interpolation;
    Alcotest.test_case "linear fit exact" `Quick test_fit_linear_exact;
    Alcotest.test_case "proportional fit" `Quick test_fit_proportional;
    Alcotest.test_case "proportional fit noisy" `Quick
      test_fit_proportional_noisy;
    Alcotest.test_case "power law fit" `Quick test_fit_power_law;
    Alcotest.test_case "growth ratio" `Quick test_growth_ratio;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table bad row" `Quick test_table_bad_row;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    QCheck_alcotest.to_alcotest prop_summary_bounds;
    QCheck_alcotest.to_alcotest prop_proportional_r2_le_1 ]
