(** Geometric metrics of plane-embedded graphs, in particular the distance
    ratio Λ that parameterizes all of the paper's bounds. *)

open Sinr_geom

val max_edge_len : Graph.t -> Point.t array -> float
val min_edge_len : Graph.t -> Point.t array -> float

val lambda : Graph.t -> Point.t array -> float
(** Λ_G: longest edge length over smallest pairwise node distance
    (1.0 for edgeless graphs). *)

val lambda_of_radius : radius:float -> Point.t array -> float
(** Λ as the paper's table defines it: R₁₋ε over the smallest pairwise node
    distance. *)

val avg_degree : Graph.t -> float
