lib/graphlib/bfs.ml: Array Graph List Queue
