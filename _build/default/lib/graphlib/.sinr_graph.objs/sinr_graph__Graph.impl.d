lib/graphlib/graph.ml: Array Fmt Fun List
