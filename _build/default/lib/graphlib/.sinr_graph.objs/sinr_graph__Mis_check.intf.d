lib/graphlib/mis_check.mli: Graph
