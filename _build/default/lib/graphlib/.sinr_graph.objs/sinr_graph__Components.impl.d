lib/graphlib/components.ml: Array Graph Hashtbl Queue
