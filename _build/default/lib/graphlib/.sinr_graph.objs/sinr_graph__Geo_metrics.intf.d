lib/graphlib/geo_metrics.mli: Graph Point Sinr_geom
