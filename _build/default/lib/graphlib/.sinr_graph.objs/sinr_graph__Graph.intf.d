lib/graphlib/graph.mli: Fmt
