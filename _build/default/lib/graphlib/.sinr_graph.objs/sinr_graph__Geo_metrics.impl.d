lib/graphlib/geo_metrics.ml: Array Float Graph Placement Point Sinr_geom
