lib/graphlib/components.mli: Graph
