lib/graphlib/growth.ml: Array Bfs Graph List
