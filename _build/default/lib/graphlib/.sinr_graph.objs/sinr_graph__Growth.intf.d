lib/graphlib/growth.mli: Graph
