lib/graphlib/bfs.mli: Graph
