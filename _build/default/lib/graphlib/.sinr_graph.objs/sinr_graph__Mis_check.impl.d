lib/graphlib/mis_check.ml: Array Graph List
