(** Breadth-first search utilities: hop distances, diameters and the
    r-neighborhoods N₍G,r₎ used throughout the paper's analysis. *)

val unreachable : int
(** Sentinel distance for nodes not reachable from the source. *)

val distances : Graph.t -> src:int -> int array
(** Hop distance from [src] to every node; {!unreachable} if disconnected. *)

val hop_distance : Graph.t -> int -> int -> int option

val eccentricity : Graph.t -> src:int -> int
(** Largest finite hop distance from [src]. *)

val diameter : ?within:int -> Graph.t -> int
(** Exact diameter of the connected component containing [within]
    (default: node 0). Runs a BFS per component node. *)

val ball : Graph.t -> src:int -> r:int -> int list
(** Closed r-neighborhood N₍G,r₎(src), including [src] itself. *)

val ball_of_set : Graph.t -> srcs:int list -> r:int -> int list
(** N₍G,r₎(W): union of closed r-neighborhoods of the set [srcs]. *)
