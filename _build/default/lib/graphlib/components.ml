(* Connected components.

   The paper assumes G_{1-eps} is connected (Section 4.6) and Theorem 12.6
   needs the connected components of G and G-tilde to have the same vertex
   sets; experiments check both with this module. *)

(* Component label of every node; labels are 0-based and dense. *)
let labels g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if label.(v) = -1 then begin
      let id = !next in
      incr next;
      let q = Queue.create () in
      label.(v) <- id;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let w = Queue.pop q in
        Array.iter
          (fun u ->
            if label.(u) = -1 then begin
              label.(u) <- id;
              Queue.add u q
            end)
          (Graph.neighbors g w)
      done
    end
  done;
  label

let count g =
  let label = labels g in
  1 + Array.fold_left max (-1) label

let is_connected g = Graph.n g = 0 || count g = 1

let components g =
  let label = labels g in
  let k = 1 + Array.fold_left max (-1) label in
  let buckets = Array.make k [] in
  for v = Graph.n g - 1 downto 0 do
    buckets.(label.(v)) <- v :: buckets.(label.(v))
  done;
  Array.to_list buckets

(* Do two graphs on the same node set induce the same partition into
   components?  (The hypothesis of Theorem 12.6.) *)
let same_components a b =
  Graph.n a = Graph.n b
  && begin
       (* The map la.(v) <-> lb.(v) must be a bijection between labels:
          a pair (x, y) together with (x, y') for y <> y' breaks it. *)
       let la = labels a and lb = labels b in
       let n = Graph.n a in
       let ok = ref true in
       let by_a : (int, int) Hashtbl.t = Hashtbl.create 16 in
       let by_b : (int, int) Hashtbl.t = Hashtbl.create 16 in
       for v = 0 to n - 1 do
         (match Hashtbl.find_opt by_a la.(v) with
          | None -> Hashtbl.add by_a la.(v) lb.(v)
          | Some y -> if y <> lb.(v) then ok := false);
         match Hashtbl.find_opt by_b lb.(v) with
         | None -> Hashtbl.add by_b lb.(v) la.(v)
         | Some x -> if x <> la.(v) then ok := false
       done;
       !ok
     end
