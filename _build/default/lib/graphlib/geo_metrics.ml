(* Geometric metrics of embedded graphs.

   Lambda_G — the ratio between the longest edge and the shortest pairwise
   node distance — parameterizes every bound in the paper (Section 4.3 uses
   Lambda for G_{1-eps}).  These helpers compute it and related quantities
   for a graph whose nodes carry plane coordinates. *)

open Sinr_geom

(* Longest Euclidean edge length of the embedded graph. *)
let max_edge_len g pts =
  let best = ref 0. in
  Graph.iter_edges g (fun u v ->
      let d = Point.dist pts.(u) pts.(v) in
      if d > !best then best := d);
  !best

(* Shortest Euclidean edge length. *)
let min_edge_len g pts =
  let best = ref Float.infinity in
  Graph.iter_edges g (fun u v ->
      let d = Point.dist pts.(u) pts.(v) in
      if d < !best then best := d);
  !best

(* Lambda_G := (max edge length) / (min pairwise node distance).
   1.0 for edgeless graphs by convention. *)
let lambda g pts =
  if Graph.num_edges g = 0 then 1.0
  else begin
    let dmin = Placement.min_pairwise_dist pts in
    if dmin <= 0. then invalid_arg "Geo_metrics.lambda: coincident points";
    Float.max 1.0 (max_edge_len g pts /. dmin)
  end

(* The ratio used in Section 4.2's table: R_{1-eps} over the shortest
   pairwise distance.  Agrees with [lambda] when the longest edge realizes
   (almost) the full strong-connectivity radius. *)
let lambda_of_radius ~radius pts =
  let dmin = Placement.min_pairwise_dist pts in
  if dmin = Float.infinity then 1.0 else Float.max 1.0 (radius /. dmin)

(* Average degree, a convenient density summary for experiment reports. *)
let avg_degree g =
  let n = Graph.n g in
  if n = 0 then 0.
  else 2. *. float_of_int (Graph.num_edges g) /. float_of_int n
