(* Checking independent sets and (locally) maximal independent sets.

   The sparsification step of Algorithm 9.1 computes independent sets that
   are only *locally* maximal (Definition 10.6); these predicates are the
   reference checkers used by tests and by the oracle variants of the
   algorithm. *)

let is_independent g set =
  let mask = Array.make (Graph.n g) false in
  List.iter (fun v -> mask.(v) <- true) set;
  let ok = ref true in
  List.iter
    (fun v ->
      Array.iter (fun u -> if mask.(u) then ok := false) (Graph.neighbors g v))
    set;
  !ok

(* Is [set] maximal within [universe]?  Every node of [universe] must be in
   the set or adjacent to a member (Section 4.1's MIS definition, where the
   universe may be a subset S' of the vertices). *)
let is_maximal_within g ~universe set =
  let mask = Array.make (Graph.n g) false in
  List.iter (fun v -> mask.(v) <- true) set;
  List.for_all
    (fun v ->
      mask.(v)
      || Array.exists (fun u -> mask.(u)) (Graph.neighbors g v))
    universe

let is_mis g ~universe set =
  is_independent g set && is_maximal_within g ~universe set

(* Fraction of [universe] covered by the closed neighborhood of [set]:
   tests of the modified MIS with non-unique labels measure how close to
   maximal the output is. *)
let coverage g ~universe set =
  match universe with
  | [] -> 1.0
  | _ ->
    let mask = Array.make (Graph.n g) false in
    List.iter (fun v -> mask.(v) <- true) set;
    let covered =
      List.filter
        (fun v ->
          mask.(v) || Array.exists (fun u -> mask.(u)) (Graph.neighbors g v))
        universe
    in
    float_of_int (List.length covered) /. float_of_int (List.length universe)
