(* Breadth-first search: hop distances, diameters, r-neighborhoods.

   The paper's runtime bounds are stated in terms of hop distances and
   diameters of the SINR-induced graphs (D_{G_{1-eps}}, D_{G_{1-2eps}}) and
   its analysis manipulates r-neighborhoods N_{G,r}(v) (Section 4.1). *)

let unreachable = max_int

(* Hop distances from [src]; [unreachable] marks disconnected nodes. *)
let distances g ~src =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Bfs.distances: bad source";
  let dist = Array.make n unreachable in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun u ->
        if dist.(u) = unreachable then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
      (Graph.neighbors g v)
  done;
  dist

let hop_distance g u v =
  let d = (distances g ~src:u).(v) in
  if d = unreachable then None else Some d

(* Eccentricity of [src] restricted to its connected component. *)
let eccentricity g ~src =
  let dist = distances g ~src in
  Array.fold_left
    (fun acc d -> if d <> unreachable && d > acc then d else acc)
    0 dist

(* Exact diameter of the component containing [within] (default: the
   component of node 0), by running a BFS from every node of that
   component.  Fine for experiment-scale graphs (n <= a few thousand). *)
let diameter ?(within = 0) g =
  let from_within = distances g ~src:within in
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if from_within.(v) <> unreachable then begin
      let e = eccentricity g ~src:v in
      if e > !best then best := e
    end
  done;
  !best

(* Closed r-neighborhood N_{G,r}(v) = { u | d_G(v,u) <= r } (includes v),
   matching the paper's definition in Section 4.1. *)
let ball g ~src ~r =
  let n = Graph.n g in
  let dist = Array.make n unreachable in
  let q = Queue.create () in
  let acc = ref [ src ] in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if dist.(v) < r then
      Array.iter
        (fun u ->
          if dist.(u) = unreachable then begin
            dist.(u) <- dist.(v) + 1;
            acc := u :: !acc;
            Queue.add u q
          end)
        (Graph.neighbors g v)
  done;
  List.rev !acc

(* N_{G,r}(W) for a node set W: union of the members' r-neighborhoods. *)
let ball_of_set g ~srcs ~r =
  let n = Graph.n g in
  let dist = Array.make n unreachable in
  let q = Queue.create () in
  let acc = ref [] in
  List.iter
    (fun s ->
      if dist.(s) = unreachable then begin
        dist.(s) <- 0;
        acc := s :: !acc;
        Queue.add s q
      end)
    srcs;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if dist.(v) < r then
      Array.iter
        (fun u ->
          if dist.(u) = unreachable then begin
            dist.(u) <- dist.(v) + 1;
            acc := u :: !acc;
            Queue.add u q
          end)
        (Graph.neighbors g v)
  done;
  List.rev !acc
