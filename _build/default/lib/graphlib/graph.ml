(* Simple undirected graphs over nodes {0, ..., n-1}.

   SINR-induced connectivity graphs (G_{1-eps}, G_{1-2eps}), reliability
   graphs (H^mu_p[S]) and their estimates all share this representation:
   adjacency arrays sorted by neighbor id, with node ids doubling as indices
   into the placement array. *)

type t = {
  n : int;
  adj : int array array; (* adj.(v) sorted ascending, no self loops, no dups *)
}

let n t = t.n

let neighbors t v = t.adj.(v)

let degree t v = Array.length t.adj.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !best then best := degree t v
  done;
  !best

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else begin
    (* Binary search in the sorted adjacency row. *)
    let row = t.adj.(u) in
    let lo = ref 0 and hi = ref (Array.length row - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if row.(mid) = v then found := true
      else if row.(mid) < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let normalize_row v row =
  let row = List.sort_uniq compare row in
  let row = List.filter (fun u -> u <> v) row in
  Array.of_list row

let of_edges ~n edges =
  let tmp = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: node out of range";
      if u <> v then begin
        tmp.(u) <- v :: tmp.(u);
        tmp.(v) <- u :: tmp.(v)
      end)
    edges;
  { n; adj = Array.mapi normalize_row tmp }

(* Build from a symmetric predicate; [candidates v] prunes the pairs that
   need testing (e.g. a spatial range query), defaulting to all nodes. *)
let of_predicate ~n ?candidates pred =
  let candidates =
    match candidates with
    | Some f -> f
    | None -> fun _ -> List.init n Fun.id
  in
  let tmp = Array.make n [] in
  for v = 0 to n - 1 do
    List.iter
      (fun u -> if u > v && pred v u then begin
           tmp.(v) <- u :: tmp.(v);
           tmp.(u) <- v :: tmp.(u)
         end)
      (candidates v)
  done;
  { n; adj = Array.mapi normalize_row tmp }

let empty n = { n; adj = Array.make n [||] }

let edges t =
  let acc = ref [] in
  for v = 0 to t.n - 1 do
    Array.iter (fun u -> if u > v then acc := (v, u) :: !acc) t.adj.(v)
  done;
  List.rev !acc

let num_edges t =
  let c = ref 0 in
  for v = 0 to t.n - 1 do
    c := !c + Array.length t.adj.(v)
  done;
  !c / 2

let iter_edges t f =
  for v = 0 to t.n - 1 do
    Array.iter (fun u -> if u > v then f v u) t.adj.(v)
  done

(* Subgraph induced by the node set [keep] (as original ids; the result keeps
   the original id space, dropping edges incident to removed nodes). *)
let induced t keep =
  let mask = Array.make t.n false in
  List.iter
    (fun v ->
      if v < 0 || v >= t.n then invalid_arg "Graph.induced: node out of range";
      mask.(v) <- true)
    keep;
  let adj =
    Array.mapi
      (fun v row ->
        if not mask.(v) then [||]
        else Array.of_list (List.filter (fun u -> mask.(u)) (Array.to_list row)))
      t.adj
  in
  { n = t.n; adj }

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: size mismatch";
  let adj =
    Array.init a.n (fun v ->
        normalize_row v (Array.to_list a.adj.(v) @ Array.to_list b.adj.(v)))
  in
  { n = a.n; adj }

let is_subgraph ~sub ~super =
  sub.n = super.n
  && begin
       let ok = ref true in
       iter_edges sub (fun u v -> if not (mem_edge super u v) then ok := false);
       !ok
     end

let equal a b =
  a.n = b.n
  && begin
       let ok = ref true in
       for v = 0 to a.n - 1 do
         if a.adj.(v) <> b.adj.(v) then ok := false
       done;
       !ok
     end

let pp ppf t =
  Fmt.pf ppf "graph(n=%d, m=%d)" t.n (num_edges t)
