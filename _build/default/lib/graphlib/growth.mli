(** Growth-bounded graphs (paper Definition 4.1 and Lemma 4.2).

    Disc-induced graphs in the plane satisfy the packing bound
    [f(r) = (2r+1)²], used as the default bounding function throughout. *)

val default_bound : int -> int
(** [f(r) = (2r+1)²]. *)

val greedy_independent : Graph.t -> int list -> int list
(** Greedy independent subset of the given node list, in list order. *)

val max_independent_in_balls : Graph.t -> r:int -> int
(** Largest greedy independent set found inside any r-neighborhood. *)

val check_bound : ?bound:(int -> int) -> Graph.t -> r:int -> bool
(** Empirical check of Definition 4.1 via the greedy witness. *)

val check_ball_size : ?bound:(int -> int) -> Graph.t -> r:int -> bool
(** Empirical check of Lemma 4.2: |N₍G,r₎(v)| ≤ Δ·f(r) for every node. *)
