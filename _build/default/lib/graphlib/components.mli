(** Connected components of undirected graphs. *)

val labels : Graph.t -> int array
(** Dense 0-based component label per node. *)

val count : Graph.t -> int
val is_connected : Graph.t -> bool

val components : Graph.t -> int list list
(** Node lists of each component, in label order. *)

val same_components : Graph.t -> Graph.t -> bool
(** Whether two graphs on the same node set induce the same partition into
    connected components (the hypothesis of the paper's Theorem 12.6). *)
