(* Growth-bounded graphs (Definition 4.1).

   A graph is polynomially growth-bounded with bounding function f when any
   independent set inside an r-neighborhood has at most f(r) members.  Disc-
   induced graphs in the plane are growth-bounded with the standard packing
   bound f(r) = (2r+1)^2: an independent set of a unit-disc-like graph packs
   unit-separated points into a disc of radius r+1/2 (in units of the
   connectivity radius). *)

let default_bound r = ((2 * r) + 1) * ((2 * r) + 1)

(* Greedy independent set inside a node list: a cheap witness that is large
   enough to expose violations of a claimed bound in tests. *)
let greedy_independent g nodes =
  let mask = Array.make (Graph.n g) false in
  let blocked = Array.make (Graph.n g) false in
  let acc = ref [] in
  List.iter
    (fun v ->
      if not (blocked.(v) || mask.(v)) then begin
        mask.(v) <- true;
        acc := v :: !acc;
        Array.iter (fun u -> blocked.(u) <- true) (Graph.neighbors g v)
      end)
    nodes;
  List.rev !acc

(* Check the growth bound empirically at radius [r] around every node, using
   the greedy witness.  Returns the worst observed independent-set size. *)
let max_independent_in_balls g ~r =
  let worst = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let ball = Bfs.ball g ~src:v ~r in
    let ind = greedy_independent g ball in
    let k = List.length ind in
    if k > !worst then worst := k
  done;
  !worst

let check_bound ?(bound = default_bound) g ~r =
  max_independent_in_balls g ~r <= bound r

(* Lemma 4.2 / A.1: |N_{G,r}(v)| <= Delta * f(r).  Verify it empirically. *)
let check_ball_size ?(bound = default_bound) g ~r =
  let delta = max 1 (Graph.max_degree g) in
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if List.length (Bfs.ball g ~src:v ~r) > delta * bound r then ok := false
  done;
  !ok
