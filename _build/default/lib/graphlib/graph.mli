(** Undirected graphs over nodes [{0, ..., n-1}].

    The representation used for every graph in the project: SINR-induced
    connectivity graphs, reliability graphs and their distributed estimates.
    Node ids are indices into the placement array. *)

type t

val n : t -> int
(** Number of nodes (including isolated ones). *)

val neighbors : t -> int -> int array
(** Sorted neighbor ids; never contains the node itself. The returned array
    is owned by the graph and must not be mutated. *)

val degree : t -> int -> int
val max_degree : t -> int
val mem_edge : t -> int -> int -> bool

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list; self-loops are dropped and duplicates merged. *)

val of_predicate :
  n:int -> ?candidates:(int -> int list) -> (int -> int -> bool) -> t
(** [of_predicate ~n pred] connects [u -- v] iff [pred u v] for [u < v].
    [candidates v] may prune the tested pairs (e.g. with a spatial index). *)

val empty : int -> t

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v]. *)

val num_edges : t -> int
val iter_edges : t -> (int -> int -> unit) -> unit

val induced : t -> int list -> t
(** Subgraph induced by a node set. Keeps the original id space; nodes
    outside the set become isolated. *)

val union : t -> t -> t
(** Edge union of two graphs on the same node set. *)

val is_subgraph : sub:t -> super:t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
