(** Reference checkers for (maximal) independent sets. *)

val is_independent : Graph.t -> int list -> bool

val is_maximal_within : Graph.t -> universe:int list -> int list -> bool
(** Every node of [universe] is in the set or adjacent to a member. *)

val is_mis : Graph.t -> universe:int list -> int list -> bool

val coverage : Graph.t -> universe:int list -> int list -> float
(** Fraction of [universe] dominated by the closed neighborhood of the set
    (1.0 when maximal; tests use this to quantify near-maximality of the
    non-unique-label MIS). *)
