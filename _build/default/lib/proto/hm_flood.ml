(* Flooding built directly on Halldorsson–Mitra local broadcast — the
   "derived from [29]" comparator of the paper's Sections 2.1 and 3:

     global SMB:  every informed node performs one HM local broadcast of
                  the message; runtime O(D * (Delta log n + log^2 n));
     global MMB:  the naive pipeline broadcasts the k messages one after
                  another, hence O((D + k) * (Delta log(n+k) + log^2(n+k)))
                  — the multiplicative D*Delta behaviour that the absMAC
                  route (Theorem 12.7) replaces by an additive one.

   The MMB experiment (E6) uses this as its second baseline. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_mac

type result = {
  completed : int option;
  informed : int;
}

(* One flood: informed nodes run Algorithm B.1 for the payload; reception
   informs and recruits the receiver. *)
let smb ?ack_params sinr ~rng ~source ~max_slots =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let ack_params = Option.value ack_params ~default:Params.default_ack in
  let hm = Hm_ack.create ack_params ~lambda ~n ~rng in
  let engine = Engine.create sinr in
  let payload = { Events.origin = source; seq = 0; data = 0 } in
  let informed = Array.make n false in
  let informed_count = ref 1 in
  informed.(source) <- true;
  Engine.wake engine source;
  Hm_ack.start hm ~node:source payload;
  let completed = ref None in
  let budget = ref max_slots in
  while !completed = None && !budget > 0 do
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Hm_ack.decide hm ~node:v with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        let u = d.Engine.receiver in
        Hm_ack.on_receive hm ~node:u;
        if not informed.(u) then begin
          informed.(u) <- true;
          incr informed_count;
          Engine.wake engine u;
          Hm_ack.start hm ~node:u payload
        end)
      ds;
    if !informed_count = n then completed := Some (Engine.slot engine);
    decr budget
  done;
  { completed = !completed; informed = !informed_count }

(* The naive pipeline: one full flood per message, sequentially.  Returns
   the total slots, or None if any flood failed. *)
let mmb_sequential ?ack_params sinr ~rng ~sources ~max_slots =
  let total = ref 0 in
  let ok = ref true in
  List.iteri
    (fun i (source, _msg) ->
      if !ok then begin
        let r =
          smb ?ack_params sinr
            ~rng:(Rng.split rng ~key:(1000 + i))
            ~source
            ~max_slots:(max 0 (max_slots - !total))
        in
        match r.completed with
        | Some t -> total := !total + t
        | None -> ok := false
      end)
    sources;
  if !ok then { completed = Some !total; informed = Sinr.n sinr }
  else { completed = None; informed = 0 }
