(* The Basic Multi-Message Broadcast (BMMB) protocol of Khabbazian,
   Kowalski, Kuhn and Lynch [37], as restated in the paper's proof of
   Theorem 12.6:

     Every process i maintains a FIFO queue bcastq and a set rcvd, both
     initially empty.  If i is not currently sending a message on the MAC
     layer and bcastq is not empty, it sends the head of the queue with a
     bcast output.  If i receives a message from the environment via
     arrive(m)_i, it immediately delivers m to the environment, and adds m
     to the back of bcastq and to rcvd.  If i receives m from the MAC layer
     via rcv(m)_i, it discards it when m is in rcvd; otherwise it delivers
     m, and adds m to bcastq and rcvd.

   BSMB (single-message broadcast) is the k = 1 special case with the
   message starting at a designated node i_0.

   Theorem 12.6 is what makes this correct over our *approximate-progress*
   MAC: once a message is received — whether the transmitter was a
   G~-neighbor or a G-neighbor — it is enqueued exactly once, so replacing
   (f_prog, G) by (f_approg, G~) changes only the runtime accounting. *)

type delivery = { node : int; msg : int; at : int }

type t = {
  mac : Mac_driver.t;
  bcastq : int Queue.t array;
  rcvd : (int, unit) Hashtbl.t array;
  mutable deliveries : delivery list; (* newest first *)
  delivered_at : (int * int, int) Hashtbl.t; (* (node, msg) -> slot *)
}

let deliver t ~node ~msg =
  if not (Hashtbl.mem t.delivered_at (node, msg)) then begin
    let at = t.mac.Mac_driver.now () in
    Hashtbl.add t.delivered_at (node, msg) at;
    t.deliveries <- { node; msg; at } :: t.deliveries
  end

let handle_message t ~node ~msg =
  if not (Hashtbl.mem t.rcvd.(node) msg) then begin
    Hashtbl.add t.rcvd.(node) msg ();
    deliver t ~node ~msg;
    Queue.add msg t.bcastq.(node)
  end

let create mac =
  let t =
    { mac;
      bcastq = Array.init mac.Mac_driver.n (fun _ -> Queue.create ());
      rcvd = Array.init mac.Mac_driver.n (fun _ -> Hashtbl.create 8);
      deliveries = [];
      delivered_at = Hashtbl.create 64 }
  in
  mac.Mac_driver.set_handlers
    { Sinr_mac.Absmac_intf.on_rcv =
        (fun ~node ~payload ->
          handle_message t ~node ~msg:payload.Sinr_mac.Events.data);
      on_ack = (fun ~node:_ ~payload:_ -> ()) };
  t

(* arrive(m)_i: the environment inputs message [msg] at [node]. *)
let arrive t ~node ~msg = handle_message t ~node ~msg

(* One protocol step: trigger pending bcasts, then advance the MAC. *)
let step t =
  for node = 0 to t.mac.Mac_driver.n - 1 do
    if t.mac.Mac_driver.alive ~node
       && (not (t.mac.Mac_driver.busy ~node))
       && not (Queue.is_empty t.bcastq.(node))
    then begin
      let msg = Queue.pop t.bcastq.(node) in
      ignore (t.mac.Mac_driver.bcast ~node ~data:msg)
    end
  done;
  t.mac.Mac_driver.step ()

let delivered t ~node ~msg = Hashtbl.mem t.delivered_at (node, msg)

let delivery_slot t ~node ~msg = Hashtbl.find_opt t.delivered_at (node, msg)

let deliveries t = List.rev t.deliveries

(* Run until every alive node in [nodes] has delivered every message of
   [msgs], or [max_steps] MAC steps elapse.  Returns the completion time. *)
let run_until_complete t ~nodes ~msgs ~max_steps =
  let complete () =
    List.for_all
      (fun node ->
        (not (t.mac.Mac_driver.alive ~node))
        || List.for_all (fun msg -> delivered t ~node ~msg) msgs)
      nodes
  in
  let steps = ref 0 in
  while (not (complete ())) && !steps < max_steps do
    step t;
    incr steps
  done;
  if complete () then Some (t.mac.Mac_driver.now ()) else None
