(* Global problems over the full SINR stack: the paper's headline
   applications.

   - SMB  (Theorem 12.7, first bound): BSMB = BMMB with k = 1 over
     Algorithm 11.1;
   - MMB  (Theorem 12.7, second bound): BMMB with k messages;
   - CONS (Corollary 5.5): consensus over the enhanced MAC, with optional
     crash injection.

   Each runner builds the combined MAC on the deployment, runs the
   protocol to completion and reports the completion slot. *)

open Sinr_phys
open Sinr_engine
open Sinr_mac

(* The paper's global algorithms pick the MAC-layer error probabilities
   as a function of the problem size (proof of Theorem 12.7: eps_ack =
   eps_SMB / (2n) for SMB and eps_MMB / (2kn) for MMB; Theorem 5.4:
   eps = eps_CONS / n^4-ish).  A fixed per-broadcast eps would let some
   one-shot relay miss a neighbor and strand the protocol.  When the
   caller does not fix the parameters, scale them here. *)
let scaled_ack ?ack_params ~units () =
  match ack_params with
  | Some p -> p
  | None ->
    { Params.default_ack with
      Params.eps_ack =
        Float.min Params.default_ack.Params.eps_ack
          (0.5 /. float_of_int (max 1 units)) }

let make_driver ?ack_params ?approg_params sinr ~rng ~units =
  let ack_params = scaled_ack ?ack_params ~units () in
  let mac = Combined_mac.create ~ack_params ?approg_params sinr ~rng in
  (mac, Mac_driver.of_combined mac)

type broadcast_result = {
  completed : int option;
  reached : int; (* nodes holding all messages when the run stopped *)
}

let mmb ?ack_params ?approg_params sinr ~rng ~sources ~max_slots =
  let n = Sinr.n sinr in
  let units = n * max 1 (List.length sources) in
  let _, driver = make_driver ?ack_params ?approg_params sinr ~rng ~units in
  let proto = Bmmb.create driver in
  List.iter (fun (node, msg) -> Bmmb.arrive proto ~node ~msg) sources;
  let msgs = List.map snd sources in
  let nodes = List.init n Fun.id in
  let completed =
    Bmmb.run_until_complete proto ~nodes ~msgs ~max_steps:max_slots
  in
  let reached =
    List.length
      (List.filter
         (fun node -> List.for_all (fun msg -> Bmmb.delivered proto ~node ~msg) msgs)
         nodes)
  in
  { completed; reached }

let smb ?ack_params ?approg_params sinr ~rng ~source ~max_slots =
  mmb ?ack_params ?approg_params sinr ~rng ~sources:[ (source, 0) ] ~max_slots

type cons_result = {
  completed : int option;
  agreement : bool;
  validity : bool;
  deciders : int;
  crashed : int;
}

let cons ?ack_params ?approg_params ?(faults = Fault.none) sinr ~rng ~initial
    ~rounds_bound ~max_slots =
  let ack_params =
    scaled_ack ?ack_params ~units:(Array.length initial * rounds_bound) ()
  in
  let mac = Combined_mac.create ~ack_params ?approg_params sinr ~rng in
  let driver = Mac_driver.of_combined mac in
  let proto = Consensus.create driver ~initial ~rounds_bound in
  let plan = ref faults in
  let steps = ref 0 in
  while (not (Consensus.all_decided proto)) && !steps < max_slots do
    let crashed_now, rest = Fault.apply !plan (Combined_mac.engine mac) in
    ignore crashed_now;
    plan := rest;
    Consensus.step proto;
    incr steps
  done;
  let n = Combined_mac.n mac in
  let deciders = ref 0 and crashed = ref 0 in
  for v = 0 to n - 1 do
    if Engine.is_crashed (Combined_mac.engine mac) v then incr crashed
    else if Consensus.decision proto ~node:v <> None then incr deciders
  done;
  { completed =
      (if Consensus.all_decided proto then Some (Combined_mac.now mac) else None);
    agreement = Consensus.agreement proto;
    validity = Consensus.validity proto;
    deciders = !deciders;
    crashed = !crashed }
