(** Uniform handle over absMAC implementations, so protocols run unchanged
    over the ideal MAC and over Algorithm 11.1 — the plug-and-play property
    of the absMAC theory. *)

open Sinr_mac

type t = {
  n : int;
  now : unit -> int;
  bounds : Absmac_intf.bounds;
  set_handlers : Absmac_intf.handlers -> unit;
  bcast : node:int -> data:int -> Events.payload;
  abort : node:int -> unit;
  busy : node:int -> bool;
  step : unit -> unit;
  alive : node:int -> bool;
}

val of_ideal : Ideal_mac.t -> t
val of_decay : Decay_mac.t -> t
val of_combined : Combined_mac.t -> t
