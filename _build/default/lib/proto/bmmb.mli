(** The Basic Multi-Message Broadcast protocol of [37] (paper Theorem 12.5 /
    12.6); BSMB is the k = 1 case. Runs over any {!Mac_driver.t}. *)

type delivery = { node : int; msg : int; at : int }

type t

val create : Mac_driver.t -> t
(** Installs the protocol's MAC handlers (replacing any existing ones). *)

val arrive : t -> node:int -> msg:int -> unit
(** arrive(m)ᵢ: the environment inputs a message at a node. Messages are
    identified by integers and must be globally unique. *)

val step : t -> unit
(** Trigger pending bcasts, then advance the MAC one time unit. *)

val delivered : t -> node:int -> msg:int -> bool
val delivery_slot : t -> node:int -> msg:int -> int option
val deliveries : t -> delivery list
(** Oldest first; each (node, msg) pair appears at most once. *)

val run_until_complete :
  t -> nodes:int list -> msgs:int list -> max_steps:int -> int option
(** Steps until every alive node of [nodes] delivered every message, or
    the budget runs out. Returns the completion time. *)
