(** Network-wide binary consensus over an enhanced absMAC, with the
    O(D·f_ack) time profile of the paper's Theorem 5.4 / Corollary 5.5
    (flood-max stand-in for wPAXOS [44] — see DESIGN.md substitution 2). *)

type t

val create : Mac_driver.t -> initial:bool array -> rounds_bound:int -> t
(** [rounds_bound] is the hop budget (≥ the diameter w.h.p.): nodes decide
    after [rounds_bound · f_ack] MAC time units. Installs MAC handlers. *)

val step : t -> unit
val run : t -> max_steps:int -> int option
(** Steps until every alive node decided; returns the completion time. *)

val decision : t -> node:int -> bool option
val decided_slot : t -> node:int -> int option
val initial_values : t -> bool array
val all_decided : t -> bool

val agreement : t -> bool
(** No two decided nodes hold different values. *)

val validity : t -> bool
(** Every decided value is some node's initial value. *)
