(* Global single-message broadcast by Decay flooding.

   The classic BGI recipe adapted to the SINR model: every informed node
   runs the Decay probability sweep with the network size n known (cycles
   of length log n + 1), and every reception informs the receiver.  Its
   per-hop cost is polylog(n) and independent of Lambda — the character of
   the Jurdzinski et al. [32] class of algorithms that Table 2's crossover
   (log^{alpha+1} Lambda vs log^2 n) is about; DESIGN.md documents this
   substitution.

   Unlike the absMAC stack this baseline assumes n is known, exactly like
   [32] assumes synchronous wakeup and geometry knowledge. *)

open Sinr_phys
open Sinr_engine
open Sinr_mac

type result = {
  completed : int option;
  informed : int;
}

let run sinr ~rng ~source ~max_slots =
  let n = Sinr.n sinr in
  let decay = Decay.create ~n_tilde:(max 2 n) ~n ~rng in
  let engine = Engine.create sinr in
  let payload = { Events.origin = source; seq = 0; data = 0 } in
  let informed = Array.make n false in
  let informed_count = ref 1 in
  informed.(source) <- true;
  Engine.wake engine source;
  Decay.start decay ~node:source ~slot:0 payload;
  let completed = ref None in
  let budget = ref max_slots in
  while !completed = None && !budget > 0 do
    let slot = Engine.slot engine in
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Decay.decide decay ~node:v ~slot with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        let u = d.Engine.receiver in
        if not informed.(u) then begin
          informed.(u) <- true;
          incr informed_count;
          Decay.start decay ~node:u ~slot:(Engine.slot engine) payload
        end)
      ds;
    if !informed_count = n then completed := Some (Engine.slot engine);
    decr budget
  done;
  { completed = !completed; informed = !informed_count }
