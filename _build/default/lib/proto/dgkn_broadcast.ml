(* Global single-message broadcast in the style of Daum, Gilbert, Kuhn and
   Newport [14] — the algorithm the paper's Table 2 improves on.

   DGKN's broadcast is the *global, w.h.p.-parameterized* ancestor of
   Algorithm 9.1: informed nodes run the same epoch machinery (reliability
   graph estimation, MIS sparsification, data transmissions), every node
   that receives the message joins the broadcasting set immediately, and
   all probability guarantees are taken with high probability in n — which
   is what the paper's localized analysis removes.  We therefore realize
   the baseline by running the Approx_progress machine with

     eps_approg = 1/n   (the network-wide union bound; T gains the log n
                         factor that the paper's Theorem 9.1 sheds), and
     relay-on-receive   (raw receptions immediately start the epoch
                         machinery at the receiver).

   This reproduces the O(D log^{alpha+1} Lambda log n) runtime shape of
   [14] that Table 2 compares against. *)

open Sinr_phys
open Sinr_engine
open Sinr_mac

type result = {
  completed : int option; (* slot at which all nodes were informed *)
  informed : int;         (* nodes informed when the run stopped *)
}

let run ?(params = Params.default_approg) sinr ~rng ~source ~max_slots =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let params =
    { params with Params.eps_approg = Float.min 0.5 (1. /. float_of_int n) }
  in
  let machine = Approx_progress.create params config ~lambda ~n ~rng in
  let engine = Engine.create sinr in
  let payload = { Events.origin = source; seq = 0; data = 0 } in
  let informed = Array.make n false in
  let informed_count = ref 1 in
  informed.(source) <- true;
  Engine.wake engine source;
  Approx_progress.start machine ~node:source payload;
  let completed = ref None in
  let budget = ref max_slots in
  while !completed = None && !budget > 0 do
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Approx_progress.decide machine ~node:v with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        (* Relay rule of [14]: receiving the broadcast message makes the
           receiver a broadcaster (from the next epoch on). *)
        (match d.Engine.message with
         | Events.Data _ | Events.Decay _ ->
           let u = d.Engine.receiver in
           if not informed.(u) then begin
             informed.(u) <- true;
             incr informed_count;
             Approx_progress.start machine ~node:u payload
           end
         | Events.Probe | Events.Neighbor_list _ | Events.Mis_round _ -> ());
        Approx_progress.on_receive machine ~receiver:d.Engine.receiver
          ~sender:d.Engine.sender d.Engine.message)
      ds;
    ignore (Approx_progress.end_slot machine);
    if !informed_count = n then completed := Some (Engine.slot engine);
    decr budget
  done;
  { completed = !completed; informed = !informed_count }
