(** Global SMB baseline in the style of Daum–Gilbert–Kuhn–Newport [14]:
    the epoch machinery with network-wide w.h.p. parameters (ε = 1/n) and
    relay-on-receive. The Table 2 comparison target. *)

open Sinr_geom
open Sinr_phys
open Sinr_mac

type result = {
  completed : int option; (** slot at which all nodes were informed *)
  informed : int;         (** nodes informed when the run stopped *)
}

val run :
  ?params:Params.approg -> Sinr.t -> rng:Rng.t -> source:int ->
  max_slots:int -> result
