(** Global SMB / MMB / consensus over the full SINR absMAC stack — the
    paper's Theorem 12.7 and Corollary 5.5 applications. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_mac

type broadcast_result = {
  completed : int option;
  reached : int;  (** nodes holding all messages when the run stopped *)
}

val smb :
  ?ack_params:Params.ack -> ?approg_params:Params.approg -> Sinr.t ->
  rng:Rng.t -> source:int -> max_slots:int -> broadcast_result

val mmb :
  ?ack_params:Params.ack -> ?approg_params:Params.approg -> Sinr.t ->
  rng:Rng.t -> sources:(int * int) list -> max_slots:int -> broadcast_result
(** [sources] pairs each input node with its (unique) message id. *)

type cons_result = {
  completed : int option;
  agreement : bool;
  validity : bool;
  deciders : int;
  crashed : int;
}

val cons :
  ?ack_params:Params.ack -> ?approg_params:Params.approg ->
  ?faults:Fault.plan -> Sinr.t -> rng:Rng.t -> initial:bool array ->
  rounds_bound:int -> max_slots:int -> cons_result
