(** Global SMB by Decay flooding with n known — the [32]-class comparison
    baseline of Table 2 (see DESIGN.md substitution 3). *)

open Sinr_geom
open Sinr_phys

type result = {
  completed : int option;
  informed : int;
}

val run : Sinr.t -> rng:Rng.t -> source:int -> max_slots:int -> result
