(* Uniform handle over absMAC implementations.

   Protocols above the layer ([37]'s BSMB/BMMB, Newport-style consensus)
   are written against this record of operations, so each protocol runs
   unchanged over the ideal graph-based MAC (for spec-level testing) and
   over Algorithm 11.1 on the SINR simulator (for the experiments) —
   exactly the plug-and-play property the absMAC theory advertises. *)

open Sinr_mac

type t = {
  n : int;
  now : unit -> int;
  bounds : Absmac_intf.bounds;
  set_handlers : Absmac_intf.handlers -> unit;
  bcast : node:int -> data:int -> Events.payload;
  abort : node:int -> unit;
  busy : node:int -> bool;
  step : unit -> unit;
  alive : node:int -> bool; (* false for crashed nodes *)
}

let of_ideal mac =
  { n = Ideal_mac.n mac;
    now = (fun () -> Ideal_mac.now mac);
    bounds = Ideal_mac.bounds mac;
    set_handlers = Ideal_mac.set_handlers mac;
    bcast = (fun ~node ~data -> Ideal_mac.bcast mac ~node ~data);
    abort = (fun ~node -> Ideal_mac.abort mac ~node);
    busy = (fun ~node -> Ideal_mac.busy mac ~node);
    step = (fun () -> Ideal_mac.step mac);
    alive = (fun ~node:_ -> true) }

let of_decay mac =
  { n = Decay_mac.n mac;
    now = (fun () -> Decay_mac.now mac);
    bounds = Decay_mac.bounds mac;
    set_handlers = Decay_mac.set_handlers mac;
    bcast = (fun ~node ~data -> Decay_mac.bcast mac ~node ~data);
    abort = (fun ~node -> Decay_mac.abort mac ~node);
    busy = (fun ~node -> Decay_mac.busy mac ~node);
    step = (fun () -> Decay_mac.step mac);
    alive =
      (fun ~node ->
        not (Sinr_engine.Engine.is_crashed (Decay_mac.engine mac) node)) }

let of_combined mac =
  { n = Combined_mac.n mac;
    now = (fun () -> Combined_mac.now mac);
    bounds = Combined_mac.bounds mac;
    set_handlers = Combined_mac.set_handlers mac;
    bcast = (fun ~node ~data -> Combined_mac.bcast mac ~node ~data);
    abort = (fun ~node -> Combined_mac.abort mac ~node);
    busy = (fun ~node -> Combined_mac.busy mac ~node);
    step = (fun () -> Combined_mac.step mac);
    alive =
      (fun ~node ->
        not (Sinr_engine.Engine.is_crashed (Combined_mac.engine mac) node)) }
